// Scheduling-path scaling bench: how fast can the simulated master
// chew through large DAGs? Unlike the figure benches this measures
// *our* wall-clock (master bookkeeping + event engine), not simulated
// time — the regime of observation O6, where fine-grained workflows
// are limited by the scheduler rather than the modeled hardware.
//
// Shapes:
//   wide  — N independent tasks (maximum ready-set pressure),
//   deep  — one N-task chain (maximum event-path pressure),
//   grid  — W lanes x N/W levels (both pressures at once).
//
// Emits machine-readable JSON (default BENCH_sched_scaling.json) so
// future PRs have a perf trajectory to compare against.
//
// Usage: bench_sched_scaling [--smoke] [--large] [--sizes=10000,...]
//                            [--out=BENCH_sched_scaling.json]

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/logging.h"
#include "common/strings.h"
#include "hw/cluster.h"
#include "runtime/simulated_executor.h"
#include "runtime/task_graph.h"

namespace taskbench::bench {
namespace {

using runtime::Dir;
using runtime::TaskGraph;
using runtime::TaskSpec;

constexpr uint64_t kBlockBytes = 1 << 20;  // 1 MiB blocks
constexpr int kSharedInputs = 1024;        // wide tasks share input blocks
constexpr int kGridWidth = 512;

perf::TaskCost SmallCost() {
  perf::TaskCost cost;
  cost.parallel.flops = 1e6;
  cost.parallel.bytes = 1e6;
  cost.serial.flops = 1e4;
  cost.serial.bytes = 1e4;
  cost.input_bytes = kBlockBytes;
  cost.output_bytes = kBlockBytes;
  return cost;
}

TaskSpec SpecFor(runtime::DataId in, runtime::DataId out) {
  TaskSpec spec;
  spec.type = "scale_task";
  spec.cost = SmallCost();
  spec.processor = Processor::kCpu;
  spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
  return spec;
}

/// N independent tasks; inputs cycle over a shared pool of blocks so
/// the locality scheduler has real (and varied) homes to weigh.
TaskGraph WideGraph(int64_t n) {
  TaskGraph graph;
  std::vector<runtime::DataId> inputs;
  inputs.reserve(kSharedInputs);
  for (int i = 0; i < kSharedInputs; ++i) {
    inputs.push_back(graph.AddData(kBlockBytes));
  }
  for (int64_t t = 0; t < n; ++t) {
    const runtime::DataId out = graph.AddData(kBlockBytes);
    TB_CHECK_OK(
        graph.Submit(SpecFor(inputs[static_cast<size_t>(t % kSharedInputs)],
                             out)).status());
  }
  return graph;
}

/// One chain of N tasks, each reading its predecessor's output.
TaskGraph DeepGraph(int64_t n) {
  TaskGraph graph;
  runtime::DataId prev = graph.AddData(kBlockBytes);
  for (int64_t t = 0; t < n; ++t) {
    const runtime::DataId out = graph.AddData(kBlockBytes);
    TB_CHECK_OK(graph.Submit(SpecFor(prev, out)).status());
    prev = out;
  }
  return graph;
}

/// kGridWidth independent lanes of N/kGridWidth levels each.
TaskGraph GridGraph(int64_t n) {
  TaskGraph graph;
  const int64_t levels = std::max<int64_t>(1, n / kGridWidth);
  std::vector<runtime::DataId> lane(kGridWidth);
  for (int w = 0; w < kGridWidth; ++w) {
    lane[static_cast<size_t>(w)] = graph.AddData(kBlockBytes);
  }
  for (int64_t l = 0; l < levels; ++l) {
    for (int w = 0; w < kGridWidth; ++w) {
      const runtime::DataId out = graph.AddData(kBlockBytes);
      TB_CHECK_OK(
          graph.Submit(SpecFor(lane[static_cast<size_t>(w)], out)).status());
      lane[static_cast<size_t>(w)] = out;
    }
  }
  return graph;
}

struct Row {
  std::string shape;
  int64_t tasks = 0;
  std::string policy;
  double wall_s = 0;
  double makespan = 0;
  uint64_t sim_events = 0;
  double events_per_s = 0;
  double decisions_per_s = 0;
};

Row RunOne(const std::string& shape, int64_t n, SchedulingPolicy policy) {
  TaskGraph graph = shape == "wide"   ? WideGraph(n)
                    : shape == "deep" ? DeepGraph(n)
                                      : GridGraph(n);
  runtime::RunOptions options;
  options.storage = hw::StorageArchitecture::kLocalDisk;
  options.policy = policy;
  runtime::SimulatedExecutor executor(hw::MinotauroCluster(), options);

  const auto t0 = std::chrono::steady_clock::now();
  auto report = executor.Execute(graph);
  const auto t1 = std::chrono::steady_clock::now();
  TB_CHECK_OK(report.status());

  Row row;
  row.shape = shape;
  row.tasks = graph.num_tasks();
  row.policy = ToString(policy);
  row.wall_s = std::chrono::duration<double>(t1 - t0).count();
  row.makespan = report->makespan;
  row.sim_events = report->sim_events;
  const double wall = row.wall_s > 0 ? row.wall_s : 1e-9;
  row.events_per_s = static_cast<double>(row.sim_events) / wall;
  row.decisions_per_s = static_cast<double>(row.tasks) / wall;
  return row;
}

std::string ToJson(const std::vector<Row>& rows) {
  std::string out = "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out += StrFormat(
        "  {\"shape\": \"%s\", \"tasks\": %lld, \"policy\": \"%s\", "
        "\"wall_s\": %.6f, \"makespan_s\": %.6f, \"sim_events\": %llu, "
        "\"events_per_s\": %.1f, \"decisions_per_s\": %.1f}%s\n",
        r.shape.c_str(), static_cast<long long>(r.tasks), r.policy.c_str(),
        r.wall_s, r.makespan, static_cast<unsigned long long>(r.sim_events),
        r.events_per_s, r.decisions_per_s, i + 1 < rows.size() ? "," : "");
  }
  out += "]\n";
  return out;
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  std::vector<int64_t> sizes;
  if (args.Has("sizes")) {
    for (const std::string& s : Split(args.GetString("sizes"), ',')) {
      if (s.empty()) continue;
      errno = 0;
      char* end = nullptr;
      const long long n = std::strtoll(s.c_str(), &end, 10);
      if (errno != 0 || end == s.c_str() || *end != '\0' || n <= 0) {
        std::fprintf(stderr, "error: --sizes expects positive integers, got '%s'\n",
                     s.c_str());
        return 2;
      }
      sizes.push_back(n);
    }
  } else if (args.GetBool("smoke", false).value_or(false)) {
    sizes = {10'000};
  } else if (args.GetBool("large", false).value_or(false)) {
    sizes = {10'000, 100'000, 1'000'000};
  } else {
    sizes = {10'000, 100'000};
  }
  const std::string out_path =
      args.GetString("out", "BENCH_sched_scaling.json");

  std::printf("%-6s %10s %16s %10s %12s %14s %14s\n", "shape", "tasks",
              "policy", "wall_s", "sim_events", "events/s", "decisions/s");
  std::vector<Row> rows;
  for (int64_t n : sizes) {
    for (const char* shape : {"wide", "deep", "grid"}) {
      for (auto policy : {SchedulingPolicy::kTaskGenerationOrder,
                          SchedulingPolicy::kDataLocality,
                          SchedulingPolicy::kCostModel}) {
        const Row row = RunOne(shape, n, policy);
        std::printf("%-6s %10lld %16s %10.3f %12llu %14.0f %14.0f\n",
                    row.shape.c_str(), static_cast<long long>(row.tasks),
                    row.policy.c_str(), row.wall_s,
                    static_cast<unsigned long long>(row.sim_events),
                    row.events_per_s, row.decisions_per_s);
        std::fflush(stdout);
        rows.push_back(row);
      }
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  TB_CHECK(f != nullptr) << "cannot open " << out_path;
  const std::string json = ToJson(rows);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace taskbench::bench

int main(int argc, char** argv) { return taskbench::bench::Main(argc, argv); }
