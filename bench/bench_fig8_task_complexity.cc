// Figure 8: task computational complexity in Matmul. Compares the
// user-code GPU speedup of matmul_func (O(N^3)) and add_func (O(N))
// across block sizes on the 8 GB dataset, plus the average stage
// times per task (parallel fraction CPU/GPU and CPU-GPU
// communication). Paper shapes: matmul_func speedups scale with
// block size up to ~21x; add_func is slower on GPU at every size
// because communication dominates its tiny parallel fraction.

#include "bench_common.h"

#include "algos/matmul.h"
#include "perf/cost_model.h"

namespace tb = taskbench;

int main() {
  tb::bench::PrintHeader("Figure 8", "task computational complexity (Matmul)");

  const tb::perf::CostModel model(tb::hw::MinotauroCluster());
  tb::analysis::TextTable table(
      {"block", "N", "matmul_func spdup", "add_func spdup", "P.Frac CPU",
       "P.Frac GPU", "Comm"});

  // 8 GB dataset = 32768^2; grid g x g -> N = 32768 / g.
  // Block sizes 32, 128, 512, 2048 MB (8192 MB has no add_func and
  // OOMs on GPU, which the paper also skips in this figure).
  for (int64_t g : {16, 8, 4, 2}) {
    const int64_t n = 32768 / g;
    const tb::perf::TaskCost mm = tb::algos::MatmulFuncCost(n, n, n, false);
    const tb::perf::TaskCost add = tb::algos::AddFuncCost(n, n);

    const double mm_cpu = model.CpuParallelFraction(mm);
    const double mm_gpu =
        model.GpuParallelFraction(mm) + model.CpuGpuComm(mm);
    const double add_cpu = model.CpuParallelFraction(add);
    const double add_gpu =
        model.GpuParallelFraction(add) + model.CpuGpuComm(add);

    table.AddRow(
        {tb::HumanBytes(mm.input_bytes / 2),
         tb::StrFormat("%lld", static_cast<long long>(n)),
         tb::analysis::FormatSpeedup(
             tb::analysis::SignedSpeedup(mm_cpu, mm_gpu)),
         tb::analysis::FormatSpeedup(
             tb::analysis::SignedSpeedup(add_cpu, add_gpu)),
         tb::HumanSeconds(mm_cpu),
         tb::HumanSeconds(model.GpuParallelFraction(mm)),
         tb::HumanSeconds(model.CpuGpuComm(mm))});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "Paper anchors: matmul_func user-code speedup grows with block size\n"
      "to ~21x at 2048 MB; add_func's O(N) complexity is two orders of\n"
      "magnitude below matmul_func's O(N^3), so communication dominates\n"
      "and its GPU 'speedup' is negative at every block size.\n");
  return 0;
}
