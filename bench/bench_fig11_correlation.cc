// Figure 11: Spearman correlation matrix of the key features. Runs
// the full correlation sample set (the Figure 7/10 configurations,
// the extra small datasets, a 100-cluster sweep and an FMA sweep —
// mirroring the paper's 192-sample design), one-hot encodes the
// categorical factors, and prints the 15-feature Spearman matrix
// plus a comparison of the paper's headline coefficients.

#include "bench_common.h"

#include <cmath>
#include <tuple>

#include "analysis/factor_space.h"
#include "stats/feature_table.h"

namespace tb = taskbench;

int main() {
  tb::bench::PrintHeader("Figure 11",
                         "Spearman correlation matrix of key features");

  const auto configs = tb::analysis::CorrelationSampleConfigs();
  std::printf("running %zu experiment configurations...\n", configs.size());

  std::vector<tb::analysis::ExperimentResult> results;
  int oom = 0;
  for (const auto& config : configs) {
    auto result = tb::analysis::RunExperiment(config);
    TB_CHECK_OK(result.status());
    if (result->oom) ++oom;
    results.push_back(std::move(result).value());
  }
  std::printf("done: %zu samples (%d GPU-OOM configurations dropped)\n\n",
              results.size() - static_cast<size_t>(oom), oom);

  auto table = tb::analysis::BuildFeatureTableFromResults(results);
  TB_CHECK_OK(table.status());
  const auto dropped = table->DropConstantColumns();
  for (const auto& name : dropped) {
    std::printf("dropped constant feature: %s\n", name.c_str());
  }
  auto matrix = table->SpearmanMatrix();
  TB_CHECK_OK(matrix.status());
  std::printf("%s\n", matrix->ToString().c_str());

  // Headline coefficients the paper reports (Section 5.4).
  struct Anchor {
    const char* a;
    const char* b;
    double paper;
  };
  const std::vector<Anchor> anchors = {
      {"parallel-task-exec-time", "block-size", 0.398},
      {"parallel-task-exec-time", "parallel-fraction", 0.377},
      {"parallel-task-exec-time", "computational-complexity", 0.499},
      {"parallel-task-exec-time", "dag-max-width", -0.005},
      {"parallel-task-exec-time", "dataset-size", -0.009},
      {"parallel-task-exec-time", "storage=shared-disk", 0.194},
      {"parallel-task-exec-time", "storage=local-disk", -0.194},
      {"parallel-task-exec-time", "scheduling=task-gen-order", -0.065},
      {"parallel-task-exec-time", "processor=CPU", 0.066},
      {"algorithm-specific-param", "computational-complexity", 0.836},
      {"block-size", "grid-dimension", -0.778},
      {"grid-dimension", "dag-max-width", 0.961},
      {"processor=CPU", "processor=GPU", -1.0},
      {"storage=shared-disk", "scheduling=task-gen-order", 0.425},
  };
  tb::analysis::TextTable anchors_table(
      {"feature pair", "measured rho", "paper rho"});
  for (const Anchor& anchor : anchors) {
    auto rho = matrix->At(anchor.a, anchor.b);
    anchors_table.AddRow(
        {std::string(anchor.a) + " ~ " + anchor.b,
         rho.ok() && !std::isnan(*rho) ? tb::StrFormat("%+.3f", *rho)
                                       : "n/a",
         tb::StrFormat("%+.3f", anchor.paper)});
  }
  std::printf("%s", anchors_table.ToString().c_str());

  // The algorithm-specific parameter is only defined for K-means
  // (#clusters); pooling it with Matmul's placeholder zero washes its
  // correlations out. Within the K-means samples its effect matches
  // the paper's strong coefficients.
  std::vector<tb::analysis::ExperimentResult> kmeans_only;
  for (const auto& result : results) {
    if (result.config.algorithm == tb::analysis::Algorithm::kKMeans) {
      kmeans_only.push_back(result);
    }
  }
  auto ktable = tb::analysis::BuildFeatureTableFromResults(kmeans_only);
  TB_CHECK_OK(ktable.status());
  auto kmatrix = ktable->SpearmanMatrix();
  TB_CHECK_OK(kmatrix.status());
  tb::analysis::TextTable ksub({"K-means-only feature pair", "measured rho",
                                "paper rho"});
  for (const auto& [a, b, paper] :
       std::vector<std::tuple<const char*, const char*, double>>{
           {"algorithm-specific-param", "computational-complexity", 0.836},
           {"algorithm-specific-param", "parallel-fraction", 0.532},
           {"algorithm-specific-param", "parallel-task-exec-time", 0.263}}) {
    auto rho = kmatrix->At(a, b);
    ksub.AddRow({std::string(a) + " ~ " + b,
                 rho.ok() && !std::isnan(*rho)
                     ? tb::StrFormat("%+.3f", *rho)
                     : "n/a",
                 tb::StrFormat("%+.3f", paper)});
  }
  std::printf("\n%s", ksub.ToString().c_str());
  std::printf(
      "\nThe signs and relative strengths are the comparison target; exact\n"
      "magnitudes depend on the exact sample mix (see EXPERIMENTS.md).\n");
  return 0;
}
