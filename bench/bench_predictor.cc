// Extension: the learned performance model of Section 5.4.3 ("put
// learning models into play... predict the ideal block size").
// Trains a regression tree on two thirds of the correlation sample
// set and evaluates on the held-out third: per-sample relative error,
// feature importances (the learned analogue of Figure 11), and
// whether the model picks near-optimal configurations without
// simulating the candidates.

#include "bench_common.h"

#include <algorithm>
#include <cmath>

#include "analysis/factor_space.h"
#include "analysis/predictor.h"

namespace tb = taskbench;
using tb::analysis::ExperimentConfig;
using tb::analysis::ExperimentResult;
using tb::analysis::PerformancePredictor;

int main() {
  tb::bench::PrintHeader(
      "Extension: learned performance model",
      "regression tree over the factor features (Section 5.4.3)");

  const auto configs = tb::analysis::CorrelationSampleConfigs();
  std::printf("running %zu configurations for ground truth...\n",
              configs.size());
  std::vector<ExperimentResult> all;
  for (const auto& config : configs) {
    auto result = tb::analysis::RunExperiment(config);
    TB_CHECK_OK(result.status());
    if (!result->oom) all.push_back(std::move(*result));
  }

  // Deterministic 2:1 split interleaved across the sweep order so
  // both sets span all algorithms/factors.
  std::vector<ExperimentResult> train, test;
  for (size_t i = 0; i < all.size(); ++i) {
    (i % 3 == 2 ? test : train).push_back(all[i]);
  }
  auto predictor = PerformancePredictor::Train(train);
  TB_CHECK_OK(predictor.status());
  auto forest = PerformancePredictor::TrainForest(train);
  TB_CHECK_OK(forest.status());
  std::printf("trained on %zu samples, evaluating on %zu held-out "
              "samples\n\n",
              train.size(), test.size());

  auto held_out_ratios = [&](const PerformancePredictor& model) {
    std::vector<double> ratios;
    for (const ExperimentResult& sample : test) {
      auto predicted = model.PredictSeconds(sample);
      TB_CHECK_OK(predicted.status());
      ratios.push_back(std::max(*predicted / sample.parallel_task_time,
                                sample.parallel_task_time / *predicted));
    }
    std::sort(ratios.begin(), ratios.end());
    return ratios;
  };
  const auto tree_ratios = held_out_ratios(*predictor);
  const auto forest_ratios = held_out_ratios(*forest);
  auto pct = [](const std::vector<double>& r, double p) {
    return r[static_cast<size_t>(p * (r.size() - 1))];
  };
  tb::analysis::TextTable errors(
      {"percentile", "single tree", "bagged forest (25 trees)"});
  for (const auto& [label, p] :
       std::vector<std::pair<const char*, double>>{
           {"p50", 0.5}, {"p75", 0.75}, {"p90", 0.9}, {"worst", 1.0}}) {
    errors.AddRow({label, tb::StrFormat("%.2fx", pct(tree_ratios, p)),
                   tb::StrFormat("%.2fx", pct(forest_ratios, p))});
  }
  std::printf("%s\n", errors.ToString().c_str());

  // Learned feature importances — the model's own view of the key
  // factors, to hold against Figure 11.
  tb::analysis::TextTable importance_table({"feature", "importance"});
  const auto importance = forest->FeatureImportance();
  const auto& names = PerformancePredictor::FeatureNames();
  std::vector<size_t> order(names.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return importance[a] > importance[b]; });
  for (size_t i : order) {
    importance_table.AddRow(
        {names[i], tb::StrFormat("%.3f", importance[i])});
  }
  std::printf("%s\n", importance_table.ToString().c_str());

  // End use: pick the block dimension + processor for the paper's two
  // workloads WITHOUT simulating the candidates, then compare the
  // chosen configuration's true time against the exhaustive optimum.
  struct Workload {
    const char* name;
    ExperimentConfig base;
    std::vector<std::pair<int64_t, int64_t>> grids;
  };
  std::vector<Workload> workloads;
  {
    ExperimentConfig kmeans;
    kmeans.algorithm = tb::analysis::Algorithm::kKMeans;
    kmeans.dataset = tb::data::PaperDatasets::KMeans10GB();
    kmeans.iterations = 1;
    workloads.push_back(
        {"K-means 10 GB", kmeans, tb::analysis::KMeansPaperGrids()});
    ExperimentConfig matmul;
    matmul.algorithm = tb::analysis::Algorithm::kMatmul;
    matmul.dataset = tb::data::PaperDatasets::Matmul8GB();
    workloads.push_back(
        {"Matmul 8 GB", matmul, tb::analysis::MatmulPaperGrids()});
  }
  tb::analysis::TextTable choices({"workload", "model's pick",
                                   "true time of pick", "exhaustive best",
                                   "regret"});
  for (const Workload& workload : workloads) {
    auto choice = predictor->PredictBest(workload.base, workload.grids);
    TB_CHECK_OK(choice.status());
    ExperimentConfig chosen = workload.base;
    chosen.grid_rows = choice->grid_rows;
    chosen.grid_cols = choice->grid_cols;
    chosen.processor = choice->processor;
    auto chosen_truth = tb::analysis::RunExperiment(chosen);
    TB_CHECK_OK(chosen_truth.status());

    double best = 1e300;
    for (const auto& [gr, gc] : workload.grids) {
      for (tb::Processor proc : {tb::Processor::kCpu, tb::Processor::kGpu}) {
        ExperimentConfig config = workload.base;
        config.grid_rows = gr;
        config.grid_cols = gc;
        config.processor = proc;
        auto truth = tb::analysis::RunExperiment(config);
        TB_CHECK_OK(truth.status());
        if (!truth->oom) best = std::min(best, truth->parallel_task_time);
      }
    }
    choices.AddRow(
        {workload.name,
         tb::StrFormat("%lldx%lld on %s",
                       static_cast<long long>(choice->grid_rows),
                       static_cast<long long>(choice->grid_cols),
                       tb::ToString(choice->processor).c_str()),
         tb::StrFormat("%.2f s", chosen_truth->parallel_task_time),
         tb::StrFormat("%.2f s", best),
         tb::StrFormat("%+.0f%%",
                       (chosen_truth->parallel_task_time / best - 1) *
                           100)});
  }
  std::printf("%s\n", choices.ToString().c_str());
  std::printf(
      "One trained model replaces the exhaustive reruns the paper's\n"
      "intro describes: block size and processor are chosen from cheap\n"
      "structural features alone.\n");
  return 0;
}
