// Ablation: per-decision scheduler overhead. The paper attributes
// part of the fine-grained-task penalty to task scheduling overhead
// (Table 1, Sections 3.2/5.3) but cannot vary it on a production
// runtime. The simulator can: this sweep scales the master's
// per-decision cost and shows the penalty grows with the number of
// tasks — the master serializes dispatch, so 256 fine-grained tasks
// absorb 256x the per-decision cost while 8 coarse tasks barely
// notice.

#include "bench_common.h"

#include "algos/kmeans.h"
#include "runtime/simulated_executor.h"

namespace tb = taskbench;
using tb::analysis::ExperimentConfig;

int main() {
  tb::bench::PrintHeader("Ablation: scheduler overhead",
                         "per-decision master cost x task granularity");

  tb::analysis::TextTable table(
      {"grid", "0 ms", "1 ms", "5 ms", "20 ms", "slowdown 0->20ms"});
  for (int64_t g : {8, 32, 128, 256}) {
    std::vector<std::string> row{
        tb::StrFormat("%lldx1", static_cast<long long>(g))};
    double base = 0;
    double worst = 0;
    for (double overhead : {0.0, 1e-3, 5e-3, 20e-3}) {
      ExperimentConfig config;
      config.algorithm = tb::analysis::Algorithm::kKMeans;
      config.dataset = tb::data::PaperDatasets::KMeans10GB();
      config.grid_rows = g;
      config.iterations = 1;
      config.processor = tb::Processor::kCpu;

      // RunExperiment does not expose the override, so run the
      // executor directly on the same workflow graph.
      tb::runtime::RunOptions exec_options = config.run;
      exec_options.scheduler_overhead_override_s = overhead;
      auto spec = tb::data::GridSpec::CreateFromGridDim(config.dataset, g, 1);
      TB_CHECK_OK(spec.status());
      tb::algos::KMeansOptions koptions;
      koptions.iterations = 1;
      auto wf = tb::algos::BuildKMeans(*spec, koptions);
      TB_CHECK_OK(wf.status());
      tb::runtime::SimulatedExecutor executor(config.cluster, exec_options);
      auto report = executor.Execute(wf->graph);
      TB_CHECK_OK(report.status());
      if (overhead == 0.0) base = report->makespan;
      worst = report->makespan;
      row.push_back(tb::StrFormat("%.1f s", report->makespan));
    }
    row.push_back(tb::StrFormat("%.2fx", worst / base));
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Fine-grained grids amplify scheduler cost; coarse grids hide it.\n"
      "This is the mechanism behind the data-locality policy penalty the\n"
      "paper observes on shared disk for low-complexity tasks (O6).\n");
  return 0;
}
