// Microbenchmarks of the real execution substrate (google-benchmark):
// the dense kernels, the serializer, the DAG builder and the
// discrete-event engine. These are the pieces whose real performance
// the library depends on; everything figure-related lives in the
// bench_fig* binaries.

#include <benchmark/benchmark.h>

#include "algos/kmeans.h"
#include "algos/matmul.h"
#include "common/random.h"
#include "data/generators.h"
#include "data/matrix.h"
#include "runtime/task_graph.h"
#include "sim/bandwidth_resource.h"
#include "sim/simulator.h"
#include "storage/serializer.h"

namespace tb = taskbench;

namespace {

tb::data::Matrix RandomMatrix(int64_t n, uint64_t seed) {
  tb::data::Matrix m(n, n);
  tb::Rng rng(seed);
  tb::data::FillUniform(&m, &rng);
  return m;
}

void BM_DenseMultiply(benchmark::State& state) {
  const int64_t n = state.range(0);
  const tb::data::Matrix a = RandomMatrix(n, 1);
  const tb::data::Matrix b = RandomMatrix(n, 2);
  for (auto _ : state) {
    auto c = tb::data::Multiply(a, b);
    benchmark::DoNotOptimize(c->data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_DenseMultiply)->Arg(64)->Arg(128)->Arg(256);

void BM_DenseAdd(benchmark::State& state) {
  const int64_t n = state.range(0);
  const tb::data::Matrix a = RandomMatrix(n, 1);
  const tb::data::Matrix b = RandomMatrix(n, 2);
  for (auto _ : state) {
    auto c = tb::data::Add(a, b);
    benchmark::DoNotOptimize(c->data());
  }
  state.SetBytesProcessed(state.iterations() * 3 * n * n * 8);
}
BENCHMARK(BM_DenseAdd)->Arg(256)->Arg(1024);

void BM_SerializeRoundTrip(benchmark::State& state) {
  const int64_t n = state.range(0);
  const tb::data::Matrix m = RandomMatrix(n, 3);
  for (auto _ : state) {
    std::vector<uint8_t> bytes;
    tb::storage::Serializer::Serialize(m, &bytes);
    auto restored = tb::storage::Serializer::Deserialize(bytes);
    benchmark::DoNotOptimize(restored->data());
  }
  state.SetBytesProcessed(state.iterations() * 2 * n * n * 8);
}
BENCHMARK(BM_SerializeRoundTrip)->Arg(128)->Arg(512);

void BM_DagBuildMatmul(benchmark::State& state) {
  const int64_t g = state.range(0);
  auto spec = tb::data::GridSpec::CreateFromGridDim(
      tb::data::DatasetSpec{"bench", 32768, 32768}, g, g);
  for (auto _ : state) {
    auto wf = tb::algos::BuildMatmul(*spec, tb::algos::MatmulOptions{});
    benchmark::DoNotOptimize(wf->graph.num_tasks());
  }
  state.SetItemsProcessed(state.iterations() * g * g * g);
}
BENCHMARK(BM_DagBuildMatmul)->Arg(4)->Arg(8)->Arg(16);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    tb::sim::Simulator sim;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < 10000) sim.After(1.0, chain);
    };
    sim.After(1.0, chain);
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_BandwidthContention(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    tb::sim::Simulator sim;
    tb::sim::BandwidthResourceOptions options;
    options.capacity_bps = 6e9;
    options.per_flow_cap_bps = 0.6e9;
    tb::sim::BandwidthResource disk(&sim, options);
    int done = 0;
    for (int i = 0; i < flows; ++i) {
      disk.Transfer(40'000'000, [&done] { ++done; });
    }
    sim.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_BandwidthContention)->Arg(16)->Arg(128);

void BM_KMeansPartialSumKernel(benchmark::State& state) {
  const int64_t rows = state.range(0);
  auto spec = tb::data::GridSpec::CreateFromGridDim(
      tb::data::DatasetSpec{"x", rows, 16}, 1, 1);
  tb::algos::KMeansOptions options;
  options.materialize = true;
  options.blobs = true;
  options.num_clusters = 8;
  options.iterations = 1;
  auto wf = tb::algos::BuildKMeans(*spec, options);
  const auto& kernel = wf->graph.task(0).spec.kernel;
  const tb::data::Matrix& block = *wf->graph.data(wf->blocks[0]).value;
  const tb::data::Matrix& centroids =
      *wf->graph.data(wf->centroids).value;
  for (auto _ : state) {
    tb::data::Matrix partial;
    std::vector<const tb::data::Matrix*> inputs{&block, &centroids};
    std::vector<tb::data::Matrix*> outputs{&partial};
    auto status = kernel(inputs, outputs);
    benchmark::DoNotOptimize(status.ok());
  }
  state.SetItemsProcessed(state.iterations() * rows * 16 * 8);
}
BENCHMARK(BM_KMeansPartialSumKernel)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
