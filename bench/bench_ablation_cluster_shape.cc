// Ablation: cluster shape (cores : GPU devices ratio). Figure 1's
// -1.20x parallel-task "speedup" is driven by the 128-core vs
// 32-device imbalance: GPU tasks get 4x less task-level parallelism.
// This sweep varies the number of GPU devices per node and shows the
// parallel-task speedup crossing from negative to positive as the
// device count approaches the core count.

#include "bench_common.h"

#include "algos/kmeans.h"
#include "runtime/simulated_executor.h"

namespace tb = taskbench;

int main() {
  tb::bench::PrintHeader(
      "Ablation: cluster shape",
      "GPU devices per node vs parallel-task speedup (K-means 10 GB)");

  auto spec = tb::data::GridSpec::CreateFromGridDim(
      tb::data::PaperDatasets::KMeans10GB(), 256, 1);
  TB_CHECK_OK(spec.status());

  auto run = [&](tb::Processor proc, int gpus_per_node) {
    tb::hw::ClusterSpec cluster = tb::hw::MinotauroCluster();
    cluster.gpus_per_node = gpus_per_node;
    tb::algos::KMeansOptions options;
    options.iterations = 1;
    options.processor = proc;
    auto wf = tb::algos::BuildKMeans(*spec, options);
    TB_CHECK_OK(wf.status());
    tb::runtime::SimulatedExecutor executor(
        cluster, tb::runtime::RunOptions{});
    auto report = executor.Execute(wf->graph);
    TB_CHECK_OK(report.status());
    return report->MeanLevelTime();
  };

  const double cpu_time = run(tb::Processor::kCpu, 4);
  tb::analysis::TextTable table({"GPUs/node", "total GPUs", "GPU p.tasks",
                                 "CPU p.tasks", "speedup"});
  for (int gpus : {1, 2, 4, 8, 16}) {
    const double gpu_time = run(tb::Processor::kGpu, gpus);
    table.AddRow({tb::StrFormat("%d", gpus),
                  tb::StrFormat("%d", gpus * 8),
                  tb::StrFormat("%.1f s", gpu_time),
                  tb::StrFormat("%.1f s", cpu_time),
                  tb::analysis::FormatSpeedup(
                      tb::analysis::SignedSpeedup(cpu_time, gpu_time))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "With the paper's 4 devices/node the GPU loses at the parallel-task\n"
      "level (Figure 1's negative speedup); matching device and core\n"
      "counts recovers the thread-level gains. Task-level and thread-level\n"
      "parallelism must be balanced jointly — the paper's core thesis.\n");
  return 0;
}
