// Scale-out plane bench: the multi-process executor's accountability
// numbers.
//
//   scaleout — wall time and tasks/sec for the same wide matmul DAG
//              on the 1-thread pool (in-process baseline), then on
//              1/2/4 forked shm workers, each worker count with the
//              per-worker block cache off and on. Speedups are
//              reported vs the uncached 1-worker multi-process run,
//              so they isolate scaling of the process plane from the
//              serialize-through-shm tax (which the p1-vs-t1 ratio
//              exposes separately, and which the cached rows show
//              the versioned block cache buying back).
//   exact    — every leg's outputs are compared bit-for-bit against
//              the thread-pool baseline; the bench aborts on any
//              divergence, so a committed JSON implies correctness.
//
// The >= 1.5x two-to-four-worker scaling target only means anything
// with >= 4 physical cores; the JSON records the host shape so
// readers (and CI) can tell a real regression from a narrow machine.
//
// Usage: bench_scaleout [--smoke] [--workers=1,2,4]
//                       [--out=BENCH_scaleout.json]

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/args.h"
#include "common/logging.h"
#include "common/strings.h"
#include "data/matrix.h"
#include "hw/topology.h"
#include "runtime/multiproc_executor.h"
#include "runtime/task_graph.h"
#include "runtime/thread_pool_executor.h"

namespace taskbench::bench {
namespace {

using runtime::Dir;
using runtime::TaskGraph;
using runtime::TaskSpec;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

data::Matrix RandomMatrix(int64_t n, uint64_t seed) {
  data::Matrix m(n, n);
  uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (int64_t i = 0; i < m.size(); ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    m.data()[i] = static_cast<double>(state >> 40) / (1 << 24) - 0.5;
  }
  return m;
}

/// Wide embarrassingly-parallel DAG: `tasks` independent n x n
/// matmuls over two shared inputs, the same shape the thread-pool
/// bench uses so the two trajectories are comparable.
TaskGraph MatmulDag(int64_t tasks, int64_t n,
                    std::vector<runtime::DataId>* outs) {
  TaskGraph graph;
  const runtime::DataId a = graph.AddData(RandomMatrix(n, 3));
  const runtime::DataId b = graph.AddData(RandomMatrix(n, 4));
  for (int64_t t = 0; t < tasks; ++t) {
    const runtime::DataId out =
        graph.AddData(static_cast<uint64_t>(n * n * 8));
    outs->push_back(out);
    TaskSpec spec;
    spec.type = "matmul";
    spec.params = {{a, Dir::kIn}, {b, Dir::kIn}, {out, Dir::kOut}};
    spec.kernel = [](const std::vector<const data::Matrix*>& inputs,
                     const std::vector<data::Matrix*>& outputs) -> Status {
      TB_ASSIGN_OR_RETURN(*outputs[0],
                          data::Multiply(*inputs[0], *inputs[1]));
      return Status::OK();
    };
    TB_CHECK_OK(graph.Submit(spec).status());
  }
  return graph;
}

struct Row {
  std::string exec;  // "threads-1", "procs-N", "procs-N-cache"
  int workers = 0;
  bool cache = false;
  bool oversubscribed = false;
  int64_t tasks = 0;
  double wall_s = 0;
  double tasks_per_s = 0;
  double speedup_vs_p1 = 0;  // process-plane scaling, p1 = 1.0
  double vs_threads1 = 0;    // shm-tax gap: throughput / threads-1
};

std::string ToJson(const std::vector<Row>& rows, int hw_threads) {
  bool any_oversubscribed = false;
  for (const Row& r : rows) any_oversubscribed |= r.oversubscribed;
  std::string out = "{\n";
  // Host shape first: the scaling targets only mean anything when the
  // worker counts fit the machine, so a reader (or CI) must see the
  // oversubscription verdict before any number.
  out += StrFormat("  \"hardware_threads\": %d,\n", hw_threads);
  out += StrFormat("  \"oversubscribed\": %s,\n",
                   any_oversubscribed ? "true" : "false");
  out += StrFormat("  \"cpu_model\": \"%s\",\n", hw::HostCpuModel().c_str());
  out += StrFormat("  \"numa_domains\": %d,\n",
                   hw::DetectTopology().num_domains());
  out += "  \"bit_exact\": true,\n";
  out += "  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out += StrFormat(
        "    {\"exec\": \"%s\", \"workers\": %d, \"cache\": %s, "
        "\"oversubscribed\": %s, "
        "\"tasks\": %lld, \"wall_s\": %.6f, \"tasks_per_s\": %.1f, "
        "\"speedup_vs_1proc\": %.3f, \"vs_threads1\": %.3f}%s\n",
        r.exec.c_str(), r.workers, r.cache ? "true" : "false",
        r.oversubscribed ? "true" : "false", static_cast<long long>(r.tasks),
        r.wall_s, r.tasks_per_s, r.speedup_vs_p1, r.vs_threads1,
        i + 1 < rows.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  const bool smoke = args.GetBool("smoke", false).value_or(false);
  const std::string out_path = args.GetString("out", "BENCH_scaleout.json");
  const int hw_threads =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));

  if (!runtime::MultiProcExecutor::Supported()) {
    std::fprintf(stderr, "multi-process execution unsupported here\n");
    return 2;
  }

  std::vector<int> worker_counts;
  if (args.Has("workers")) {
    for (const std::string& s : Split(args.GetString("workers"), ',')) {
      if (s.empty()) continue;
      errno = 0;
      char* end = nullptr;
      const long n = std::strtol(s.c_str(), &end, 10);
      if (errno != 0 || end == s.c_str() || *end != '\0' || n <= 0) {
        std::fprintf(stderr,
                     "error: --workers expects positive integers, got '%s'\n",
                     s.c_str());
        return 2;
      }
      worker_counts.push_back(static_cast<int>(n));
    }
  } else {
    worker_counts = {1, 2, 4};
  }

  const int64_t tasks = smoke ? 16 : std::max<int64_t>(64, 16 * hw_threads);
  const int64_t n = smoke ? 64 : 384;

  std::vector<runtime::DataId> outs;
  TaskGraph baseline_graph = MatmulDag(tasks, n, &outs);
  runtime::RunOptions thread_options;
  thread_options.num_threads = 1;
  thread_options.use_storage = false;
  runtime::ThreadPoolExecutor baseline(thread_options);

  std::printf("%-14s %8s %10s %10s %12s %9s\n", "exec", "workers", "tasks",
              "wall_s", "tasks/s", "vs_p1");
  std::vector<Row> rows;
  {
    const double t0 = Now();
    auto report = baseline.Execute(baseline_graph);
    const double wall = Now() - t0;
    TB_CHECK_OK(report.status());
    Row row;
    row.exec = "threads-1";
    row.workers = 1;
    row.tasks = static_cast<int64_t>(report->records.size());
    row.wall_s = wall;
    row.tasks_per_s = static_cast<double>(row.tasks) / std::max(wall, 1e-9);
    row.vs_threads1 = 1.0;
    std::printf("%-14s %8d %10lld %10.3f %12.1f %9s\n", row.exec.c_str(),
                row.workers, static_cast<long long>(row.tasks), row.wall_s,
                row.tasks_per_s, "-");
    rows.push_back(row);
  }
  const double t1_tps = rows.front().tasks_per_s;

  // Each worker count runs twice: the plain process plane, then with
  // the per-worker block cache on. The cached rows show how much of
  // the p1-vs-t1 serialize-through-shm gap the cache closes; their
  // speedup column stays relative to the *uncached* 1-proc leg so the
  // two trajectories share one axis.
  double p1_tps = 0;
  for (const int workers : worker_counts) {
    if (workers > hw_threads) {
      std::fprintf(stderr,
                   "warning: %d workers oversubscribe %d hardware thread(s); "
                   "scaling numbers from this leg are not meaningful\n",
                   workers, hw_threads);
    }
    for (const bool cache : {false, true}) {
      std::vector<runtime::DataId> ignored;
      TaskGraph graph = MatmulDag(tasks, n, &ignored);
      runtime::RunOptions options;
      options.num_procs = workers;
      options.block_cache = cache;
      runtime::MultiProcExecutor executor(options);
      const double t0 = Now();
      auto report = executor.Execute(graph);
      const double wall = Now() - t0;
      TB_CHECK_OK(report.status());

      // The committed number is only worth having if the values are
      // right: every output must match the thread-pool run bit-exact.
      for (const runtime::DataId d : outs) {
        auto got = executor.FetchData(graph, d);
        auto want = baseline.FetchData(baseline_graph, d);
        TB_CHECK_OK(got.status());
        TB_CHECK_OK(want.status());
        TB_CHECK(*got == *want) << "datum " << d << " diverged at " << workers
                                << " workers (cache " << cache << ")";
      }

      Row row;
      row.exec = StrFormat(cache ? "procs-%d-cache" : "procs-%d", workers);
      row.workers = workers;
      row.cache = cache;
      row.oversubscribed = workers > hw_threads;
      row.tasks = static_cast<int64_t>(report->records.size());
      row.wall_s = wall;
      row.tasks_per_s = static_cast<double>(row.tasks) / std::max(wall, 1e-9);
      if (!cache && workers == worker_counts.front()) p1_tps = row.tasks_per_s;
      row.speedup_vs_p1 = p1_tps > 0 ? row.tasks_per_s / p1_tps : 0;
      row.vs_threads1 = t1_tps > 0 ? row.tasks_per_s / t1_tps : 0;
      std::printf("%-14s %8d %10lld %10.3f %12.1f %9.2f%s\n", row.exec.c_str(),
                  row.workers, static_cast<long long>(row.tasks), row.wall_s,
                  row.tasks_per_s, row.speedup_vs_p1,
                  row.oversubscribed ? "  (oversubscribed)" : "");
      std::fflush(stdout);
      rows.push_back(row);
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  TB_CHECK(f != nullptr) << "cannot open " << out_path;
  const std::string json = ToJson(rows, hw_threads);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace taskbench::bench

int main(int argc, char** argv) { return taskbench::bench::Main(argc, argv); }
