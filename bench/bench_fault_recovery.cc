// Fault-recovery study (extension beyond the paper's fault-free
// measurements): how the simulated makespan degrades as deterministic
// faults are injected, and what the recovery machinery pays for it.
// Series:
//   (a) transient storage faults — makespan and retry volume vs the
//       per-op failure probability, both storage architectures;
//   (b) node crashes — makespan, recomputed tasks and lost blocks vs
//       the number of nodes crashing mid-run (local disk, where block
//       loss forces lineage recovery);
//   (c) degraded hardware — one slow node vs one lost GPU.
// Every row replays a fixed seeded FaultPlan, so reruns print
// identical numbers.

#include <cstdio>
#include <vector>

#include "bench_common.h"

#include "runtime/fault.h"

namespace tb = taskbench;
using tb::analysis::Algorithm;
using tb::analysis::ExperimentConfig;
using tb::runtime::FaultEvent;
using tb::runtime::FaultKind;

namespace {

ExperimentConfig BaseConfig() {
  ExperimentConfig config;
  config.algorithm = Algorithm::kKMeans;
  config.dataset = tb::data::PaperDatasets::KMeans10GB();
  config.grid_rows = 256;
  config.iterations = 3;
  config.processor = tb::Processor::kCpu;
  config.run.max_retries = 12;
  config.run.retry_backoff_s = 1e-3;
  return config;
}

void StorageFaultSweep() {
  std::printf("--- (a) transient storage faults, K-means 10 GB 256x1 ---\n");
  tb::analysis::TextTable table({"storage", "fault rate", "makespan",
                                 "slowdown", "storage faults", "retries"});
  for (tb::hw::StorageArchitecture storage :
       {tb::hw::StorageArchitecture::kLocalDisk,
        tb::hw::StorageArchitecture::kSharedDisk}) {
    double baseline = 0;
    // The wide merge task reads all 256 partials in one attempt, so
    // its survival probability is (1-p)^257 — rates much above 1e-3
    // exhaust any sane retry budget (by design: the CLI reports that
    // as a clean ResourceExhausted error).
    for (double rate : {0.0, 1e-4, 5e-4, 2e-3}) {
      ExperimentConfig config = BaseConfig();
      config.run.storage = storage;
      config.run.faults.storage_fault_rate = rate;
      config.run.faults.seed = 42;
      const auto result = tb::bench::MustRun(config);
      if (rate == 0.0) baseline = result.makespan;
      table.AddRow(
          {tb::hw::ToString(storage),
           tb::StrFormat("%g", rate),
           tb::StrFormat("%.2f s", result.makespan),
           tb::StrFormat("%.2fx", result.makespan / baseline),
           tb::StrFormat("%lld",
                         static_cast<long long>(
                             result.report.faults.storage_faults)),
           tb::StrFormat("%lld", static_cast<long long>(
                                     result.report.faults.retries))});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

void NodeCrashSweep() {
  std::printf("--- (b) node crashes at makespan/2, local disk ---\n");
  ExperimentConfig fault_free = BaseConfig();
  fault_free.run.storage = tb::hw::StorageArchitecture::kLocalDisk;
  const double baseline = tb::bench::MustRun(fault_free).makespan;
  tb::analysis::TextTable table({"crashed nodes", "makespan", "slowdown",
                                 "recomputed", "lost blocks", "retries"});
  for (int crashes : {0, 1, 2, 4}) {
    ExperimentConfig config = BaseConfig();
    config.run.storage = tb::hw::StorageArchitecture::kLocalDisk;
    for (int n = 0; n < crashes; ++n) {
      FaultEvent crash;
      crash.kind = FaultKind::kNodeCrash;
      crash.time = baseline / 2;
      crash.node = n + 1;
      config.run.faults.events.push_back(crash);
    }
    const auto result = tb::bench::MustRun(config);
    const tb::runtime::FaultStats& faults = result.report.faults;
    table.AddRow(
        {tb::StrFormat("%d", crashes),
         tb::StrFormat("%.2f s", result.makespan),
         tb::StrFormat("%.2fx", result.makespan / baseline),
         tb::StrFormat("%lld", static_cast<long long>(faults.recomputed_tasks)),
         tb::StrFormat("%lld", static_cast<long long>(faults.lost_blocks)),
         tb::StrFormat("%lld", static_cast<long long>(faults.retries))});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void DegradedHardware() {
  std::printf("--- (c) degraded hardware, K-means 10 GB 256x1 (GPU) ---\n");
  ExperimentConfig gpu = BaseConfig();
  gpu.processor = tb::Processor::kGpu;
  const double baseline = tb::bench::MustRun(gpu).makespan;
  tb::analysis::TextTable table({"fault", "makespan", "slowdown"});
  table.AddRow({"none", tb::StrFormat("%.2f s", baseline), "1.00x"});

  for (const char* spec : {"slow@0:n0:x4", "gpuloss@0:n0"}) {
    ExperimentConfig config = gpu;
    auto plan = tb::runtime::FaultPlan::Parse(spec);
    TB_CHECK_OK(plan.status());
    config.run.faults = *plan;
    const auto result = tb::bench::MustRun(config);
    table.AddRow({spec, tb::StrFormat("%.2f s", result.makespan),
                  tb::StrFormat("%.2fx", result.makespan / baseline)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  tb::bench::PrintHeader(
      "Fault recovery",
      "makespan degradation and recovery cost under deterministic "
      "fault injection (extension; not a paper figure)");
  StorageFaultSweep();
  NodeCrashSweep();
  DegradedHardware();
  return 0;
}
