// Real-workflow scenario sweep: the committed WfFormat fixtures (a
// trimmed Montage-class instance, the diamond) and two WfBench-style
// synthetic instances (heavy-tailed runtimes; straggler injection
// with a GPU type mix) through the three scheduling policies — task
// generation order, data locality, cost model — on the simulated
// Minotauro cluster.
//
// All legs are simulation-only builds (materialize=false), so the
// graphs carry the true WfFormat byte sizes and every run is
// deterministic: each row records the report digest, the JSON
// records their FNV fold as digest_total, and re-running the bench
// must reproduce both bit-for-bit (the CI smoke diffs two runs).
//
// Usage: bench_wf_scenarios [--smoke] [--out=BENCH_wf_scenarios.json]
//                           [--fixtures=DIR]   (default ../tests/data/wf)

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/digest.h"
#include "common/args.h"
#include "common/logging.h"
#include "common/strings.h"
#include "hw/cluster.h"
#include "runtime/simulated_executor.h"
#include "wf/build.h"
#include "wf/generator.h"
#include "wf/import.h"
#include "wf/instance.h"

namespace taskbench::bench {
namespace {

struct Variant {
  const char* name;
  SchedulingPolicy policy;
};

constexpr Variant kVariants[] = {
    {"fifo", SchedulingPolicy::kTaskGenerationOrder},
    {"locality", SchedulingPolicy::kDataLocality},
    {"cost", SchedulingPolicy::kCostModel},
};

struct Row {
  std::string scenario;
  std::string variant;
  int tasks = 0;
  unsigned long long bytes = 0;
  double makespan = 0;
  double overhead = 0;
  uint64_t digest = 0;
};

wf::Instance LoadFixture(const std::string& dir, const char* file) {
  const std::string path = dir + "/" + file;
  std::ifstream in(path, std::ios::binary);
  TB_CHECK(in.good()) << "cannot open fixture " << path
                      << " (set --fixtures=DIR)";
  std::ostringstream text;
  text << in.rdbuf();
  auto instance = wf::ImportWfFormat(text.str());
  TB_CHECK_OK(instance.status());
  return *std::move(instance);
}

/// One scenario x policy leg: sim-only build at true byte sizes.
Row RunLeg(const std::string& scenario, const wf::Instance& instance,
           const Variant& v) {
  wf::BuildOptions build;
  build.materialize = false;
  auto built = wf::BuildInstance(instance, build);
  TB_CHECK_OK(built.status());
  runtime::RunOptions options;
  options.policy = v.policy;
  auto report =
      runtime::SimulatedExecutor(hw::MinotauroCluster(), options)
          .Execute(built->graph);
  TB_CHECK_OK(report.status());
  Row row;
  row.scenario = scenario;
  row.variant = v.name;
  row.tasks = static_cast<int>(built->graph.num_tasks());
  row.bytes = built->stats.total_bytes;
  row.makespan = report->makespan;
  row.overhead = report->scheduler_overhead;
  row.digest = check::DigestReport(*report);
  return row;
}

std::string ToJson(const std::vector<Row>& rows, bool smoke) {
  uint64_t total = check::kFnvOffsetBasis;
  std::string out = "{\n";
  out += StrFormat("  \"smoke\": %s,\n", smoke ? "true" : "false");
  out += "  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const std::string digest = StrFormat(
        "%016llx", static_cast<unsigned long long>(r.digest));
    total = check::Fnv1a(total, digest);
    out += StrFormat(
        "    {\"scenario\": \"%s\", \"policy\": \"%s\", "
        "\"tasks\": %d, \"total_bytes\": %llu, "
        "\"makespan_s\": %.6f, \"scheduler_overhead_s\": %.6f, "
        "\"report_digest\": \"%s\"}%s\n",
        r.scenario.c_str(), r.variant.c_str(), r.tasks, r.bytes,
        r.makespan, r.overhead, digest.c_str(),
        i + 1 < rows.size() ? "," : "");
  }
  out += "  ],\n";
  out += StrFormat("  \"digest_total\": \"%016llx\"\n",
                   static_cast<unsigned long long>(total));
  out += "}\n";
  return out;
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  const bool smoke = args.GetBool("smoke", false).value_or(false);
  const std::string out_path =
      args.GetString("out", "BENCH_wf_scenarios.json");
  const std::string fixtures =
      args.GetString("fixtures", "../tests/data/wf");

  // The two committed fixtures plus two synthetic instances. The
  // smoke run shrinks the synthetic shapes; the fixtures are tiny
  // enough to run as committed either way.
  struct Scenario {
    std::string name;
    wf::Instance instance;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      {"montage-trimmed", LoadFixture(fixtures, "montage_trimmed.json")});
  scenarios.push_back({"diamond", LoadFixture(fixtures, "diamond.json")});

  wf::GenOptions heavy;
  heavy.seed = 7;
  heavy.name = "wfbench-heavytail";
  heavy.levels = smoke ? 3 : 6;
  heavy.width = smoke ? 3 : 8;
  heavy.max_parents = 3;
  heavy.heavy_tail_alpha = 1.3;
  heavy.input_bytes = 4 << 20;
  scenarios.push_back({heavy.name, wf::GenerateWfBench(heavy)});

  wf::GenOptions strag;
  strag.seed = 11;
  strag.name = "wfbench-straggler";
  strag.levels = smoke ? 3 : 5;
  strag.width = smoke ? 3 : 10;
  strag.max_parents = 2;
  strag.straggler_fraction = 0.2;
  strag.straggler_factor = 8;
  strag.types = wf::DefaultTaskTypes(2);
  scenarios.push_back({strag.name, wf::GenerateWfBench(strag)});

  std::vector<Row> rows;
  std::printf("%-20s %-10s %6s %12s %12s  %s\n", "scenario", "policy",
              "tasks", "makespan_s", "overhead_s", "digest");
  for (const Scenario& s : scenarios) {
    for (const Variant& v : kVariants) {
      Row row = RunLeg(s.name, s.instance, v);
      std::printf("%-20s %-10s %6d %12.6f %12.6f  %016llx\n",
                  row.scenario.c_str(), row.variant.c_str(), row.tasks,
                  row.makespan, row.overhead,
                  static_cast<unsigned long long>(row.digest));
      rows.push_back(std::move(row));
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  TB_CHECK(f != nullptr) << "cannot open " << out_path;
  const std::string json = ToJson(rows, smoke);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace taskbench::bench

int main(int argc, char** argv) { return taskbench::bench::Main(argc, argv); }
