// Observations O1-O6: programmatic verification. Re-runs the sweeps
// behind Sections 5.1-5.3 and feeds the measurements through the
// observation validators, printing PASS/FAIL with the evidence.

#include "bench_common.h"

#include "algos/kmeans.h"
#include "algos/matmul.h"
#include "analysis/factor_space.h"
#include "analysis/observations.h"
#include "perf/cost_model.h"

namespace tb = taskbench;
using tb::analysis::Algorithm;
using tb::analysis::ExperimentConfig;

namespace {

void Print(const tb::analysis::ObservationCheck& check) {
  std::printf("[%s] %s\n      %s\n      evidence: %s\n\n",
              check.holds ? "PASS" : "FAIL", check.id.c_str(),
              check.statement.c_str(), check.evidence.c_str());
}

}  // namespace

int main() {
  tb::bench::PrintHeader("Observations O1-O6",
                         "programmatic verification of the paper's findings");
  const tb::perf::CostModel model(tb::hw::MinotauroCluster());

  // O1: K-means user-code speedups across block sizes stay flat.
  {
    std::vector<double> speedups;
    for (int64_t g : {256, 128, 64, 32, 16, 8, 4}) {
      const auto cost = tb::algos::PartialSumCost(12500000 / g, 100, 10);
      if (!model.CheckGpuFit(cost).ok()) continue;
      const double serial = model.SerialFraction(cost);
      const double cpu = model.CpuParallelFraction(cost) + serial;
      const double gpu = model.GpuParallelFraction(cost) + serial +
                         model.CpuGpuComm(cost);
      speedups.push_back(cpu / gpu);
    }
    Print(tb::analysis::CheckO1(speedups));
  }

  // O2: parallel-task speedups need full (de-)serialization
  // parallelism, not coarse grains. K-means 10 GB sweep.
  {
    std::vector<tb::analysis::TaskCountSpeedup> points;
    for (int64_t g : {4, 8, 16, 32, 64, 128, 256}) {
      ExperimentConfig config;
      config.algorithm = Algorithm::kKMeans;
      config.dataset = tb::data::PaperDatasets::KMeans10GB();
      config.grid_rows = g;
      config.iterations = 1;
      config.processor = tb::Processor::kCpu;
      const auto cpu = tb::bench::MustRun(config);
      config.processor = tb::Processor::kGpu;
      const auto gpu = tb::bench::MustRun(config);
      if (cpu.oom || gpu.oom) continue;
      points.push_back({g, tb::analysis::SignedSpeedup(
                               cpu.parallel_task_time,
                               gpu.parallel_task_time)});
    }
    Print(tb::analysis::CheckO2(points, 32));
  }

  // O3: low-complexity add_func speedups do not grow with granularity.
  {
    std::vector<double> speedups;
    for (int64_t g : {16, 8, 4, 2}) {
      const int64_t n = 32768 / g;
      const auto cost = tb::algos::AddFuncCost(n, n);
      const double cpu = model.CpuParallelFraction(cost);
      const double gpu =
          model.GpuParallelFraction(cost) + model.CpuGpuComm(cost);
      speedups.push_back(tb::analysis::SignedSpeedup(cpu, gpu));
    }
    Print(tb::analysis::CheckO3(speedups));
  }

  // O4: speedups scale with the algorithm-specific parameter.
  {
    std::vector<double> by_param;
    for (int clusters : {10, 100, 1000}) {
      const auto cost = tb::algos::PartialSumCost(12500000 / 64, 100,
                                                  clusters);
      const double serial = model.SerialFraction(cost);
      const double cpu = model.CpuParallelFraction(cost) + serial;
      const double gpu = model.GpuParallelFraction(cost) + serial +
                         model.CpuGpuComm(cost);
      by_param.push_back(cpu / gpu);
    }
    Print(tb::analysis::CheckO4(by_param));
  }

  // O5/O6: policy sensitivity per storage architecture (K-means).
  {
    auto sweep = [&](tb::hw::StorageArchitecture storage) {
      tb::analysis::PolicySensitivityInput input;
      for (int64_t g : {16, 32, 64, 128, 256}) {
        for (tb::Processor proc :
             {tb::Processor::kCpu, tb::Processor::kGpu}) {
          for (tb::SchedulingPolicy policy :
               {tb::SchedulingPolicy::kTaskGenerationOrder,
                tb::SchedulingPolicy::kDataLocality}) {
            ExperimentConfig config;
            config.algorithm = Algorithm::kKMeans;
            config.dataset = tb::data::PaperDatasets::KMeans10GB();
            config.grid_rows = g;
            config.iterations = 1;
            config.processor = proc;
            config.run.storage = storage;
            config.run.policy = policy;
            const auto result = tb::bench::MustRun(config);
            TB_CHECK(!result.oom);
            auto& series =
                proc == tb::Processor::kCpu
                    ? (policy == tb::SchedulingPolicy::kTaskGenerationOrder
                           ? input.cpu_gen_order
                           : input.cpu_locality)
                    : (policy == tb::SchedulingPolicy::kTaskGenerationOrder
                           ? input.gpu_gen_order
                           : input.gpu_locality);
            series.push_back(result.parallel_task_time);
          }
        }
      }
      return input;
    };
    const auto local = sweep(tb::hw::StorageArchitecture::kLocalDisk);
    const auto shared = sweep(tb::hw::StorageArchitecture::kSharedDisk);
    Print(tb::analysis::CheckO5(local));
    Print(tb::analysis::CheckO6(local, shared));
  }
  return 0;
}
