// Scheduler-policy ablation: the two paper policies (task-generation
// order, data locality) against the cost-model family, with the cost
// model's two mechanisms — speculative straggler hedging and CPU->GPU
// escalation — toggled independently so each one's contribution is
// visible in isolation.
//
//   straggler — 4 nodes x 2 cores, local disk, one node 10x slow from
//               t~0: a wide batch of independent one-second tasks.
//               The paper policies ride out the slow node; the cost
//               model duplicates its stragglers onto healthy nodes
//               and cancels the originals. Hedging is the only lever
//               here (no GPUs), so cost-no-hedge collapses onto the
//               locality line.
//   hybrid    — 8 cores + 2 GPUs, hybrid placement, fault-free:
//               CPU-specified tasks a device finishes ~6x faster.
//               Only the cost model escalates them past the 2x
//               benefit bar, so escalation is the only lever here and
//               cost-no-esc collapses onto the fifo line.
//
// All legs are simulated, hence deterministic: the committed JSON is
// reproducible bit-for-bit. In the full run the bench aborts unless
// cost beats both paper policies on the straggler workload, so a
// committed BENCH_sched_policies.json implies the win.
//
// Usage: bench_sched_policies [--smoke] [--out=BENCH_sched_policies.json]

#include <cstdio>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/units.h"
#include "hw/cluster.h"
#include "runtime/fault.h"
#include "runtime/simulated_executor.h"
#include "runtime/task_graph.h"

namespace taskbench::bench {
namespace {

using runtime::Dir;
using runtime::RunOptions;
using runtime::TaskGraph;
using runtime::TaskSpec;

/// `n` independent CPU-specified tasks of ~`cpu_seconds` on one core;
/// `gpu_benefit` > 0 additionally shapes the GPU efficiency curve so
/// a device would finish each ~that many times faster.
TaskGraph CpuTasks(int n, double cpu_seconds, double gpu_benefit) {
  TaskGraph graph;
  for (int i = 0; i < n; ++i) {
    const runtime::DataId in = graph.AddData(1024);
    const runtime::DataId out = graph.AddData(1024);
    TaskSpec spec;
    spec.type = "crunch";
    spec.processor = Processor::kCpu;
    spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
    spec.cost.parallel.flops = cpu_seconds * 16e9;
    spec.cost.gpu_curve.peak_fraction = gpu_benefit * 16e9 / 360e9;
    spec.cost.gpu_working_set_bytes = 64 * kMiB;
    spec.cost.input_bytes = 1024;
    spec.cost.output_bytes = 1024;
    TB_CHECK_OK(graph.Submit(std::move(spec)).status());
  }
  return graph;
}

struct Variant {
  const char* name;
  SchedulingPolicy policy;
  bool disable_hedging;
  bool disable_escalation;
};

constexpr Variant kVariants[] = {
    {"fifo", SchedulingPolicy::kTaskGenerationOrder, false, false},
    {"locality", SchedulingPolicy::kDataLocality, false, false},
    {"cost", SchedulingPolicy::kCostModel, false, false},
    {"cost-no-hedge", SchedulingPolicy::kCostModel, true, false},
    {"cost-no-esc", SchedulingPolicy::kCostModel, false, true},
    {"cost-base", SchedulingPolicy::kCostModel, true, true},
};

struct Row {
  std::string workload;
  std::string variant;
  double makespan = 0;
  double overhead = 0;
  long long hedges = 0;
  int gpu_tasks = 0;
};

Row RunLeg(const char* workload, const Variant& v,
           const hw::ClusterSpec& cluster, const TaskGraph& graph,
           const RunOptions& base) {
  RunOptions options = base;
  options.policy = v.policy;
  options.sched.disable_hedging = v.disable_hedging;
  options.sched.disable_escalation = v.disable_escalation;
  auto report = runtime::SimulatedExecutor(cluster, options).Execute(graph);
  TB_CHECK_OK(report.status());
  Row row;
  row.workload = workload;
  row.variant = v.name;
  row.makespan = report->makespan;
  row.overhead = report->scheduler_overhead;
  row.hedges = report->faults.hedges;
  for (const runtime::TaskRecord& rec : report->records) {
    if (rec.processor == Processor::kGpu) ++row.gpu_tasks;
  }
  return row;
}

std::string ToJson(const std::vector<Row>& rows, bool smoke) {
  std::string out = "{\n";
  out += StrFormat("  \"smoke\": %s,\n", smoke ? "true" : "false");
  out += "  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out += StrFormat(
        "    {\"workload\": \"%s\", \"variant\": \"%s\", "
        "\"makespan_s\": %.6f, \"scheduler_overhead_s\": %.6f, "
        "\"hedges\": %lld, \"gpu_tasks\": %d}%s\n",
        r.workload.c_str(), r.variant.c_str(), r.makespan, r.overhead,
        r.hedges, r.gpu_tasks, i + 1 < rows.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

double MakespanOf(const std::vector<Row>& rows, const std::string& workload,
                  const std::string& variant) {
  for (const Row& r : rows) {
    if (r.workload == workload && r.variant == variant) return r.makespan;
  }
  TB_CHECK(false) << "missing leg " << workload << "/" << variant;
  return 0;
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  const bool smoke = args.GetBool("smoke", false).value_or(false);
  const std::string out_path =
      args.GetString("out", "BENCH_sched_policies.json");

  std::printf("Scheduler-policy ablation (%s)\n",
              smoke ? "smoke" : "full");
  std::printf("%-10s %-14s %11s %11s %7s %9s\n", "workload", "variant",
              "makespan_s", "overhead_s", "hedges", "gpu_tasks");
  std::vector<Row> rows;

  {
    // Straggler-heavy: one node 10x slow. The pool drains before the
    // slow node frees up, so its only stragglers are first-wave tasks
    // — exactly the ones hedging can duplicate while the healthy
    // nodes still generate scheduling edges.
    hw::ClusterSpec cluster = hw::SingleNode(2, 0);
    cluster.num_nodes = 4;
    const TaskGraph graph = CpuTasks(smoke ? 12 : 24, 1.0, 0.0);
    RunOptions base;
    base.storage = hw::StorageArchitecture::kLocalDisk;
    runtime::FaultEvent slow;
    slow.kind = runtime::FaultKind::kSlowNode;
    slow.time = 0.01;
    slow.node = 1;
    slow.factor = 10.0;
    base.faults.events.push_back(slow);
    for (const Variant& v : kVariants) {
      Row row = RunLeg("straggler", v, cluster, graph, base);
      std::printf("%-10s %-14s %11.3f %11.4f %7lld %9d\n",
                  row.workload.c_str(), row.variant.c_str(), row.makespan,
                  row.overhead, row.hedges, row.gpu_tasks);
      rows.push_back(std::move(row));
    }
  }

  {
    // Hybrid skew: CPU-specified, GPU-friendly tasks next to two idle
    // GPUs. Only escalation can use them.
    const hw::ClusterSpec cluster = hw::SingleNode(8, 2);
    const TaskGraph graph = CpuTasks(smoke ? 6 : 10, 3.0, 6.0);
    RunOptions base;
    base.storage = hw::StorageArchitecture::kLocalDisk;
    base.hybrid = true;
    for (const Variant& v : kVariants) {
      Row row = RunLeg("hybrid", v, cluster, graph, base);
      std::printf("%-10s %-14s %11.3f %11.4f %7lld %9d\n",
                  row.workload.c_str(), row.variant.c_str(), row.makespan,
                  row.overhead, row.hedges, row.gpu_tasks);
      rows.push_back(std::move(row));
    }
  }

  // The committed JSON must carry the headline result: on the
  // straggler workload the cost model beats both paper policies, and
  // each mechanism is separately attributable.
  if (!smoke) {
    const double cost = MakespanOf(rows, "straggler", "cost");
    TB_CHECK(cost < MakespanOf(rows, "straggler", "fifo"))
        << "cost model did not beat task-generation order";
    TB_CHECK(cost < MakespanOf(rows, "straggler", "locality"))
        << "cost model did not beat data locality";
    TB_CHECK(MakespanOf(rows, "hybrid", "cost") <
             MakespanOf(rows, "hybrid", "cost-no-esc"))
        << "escalation did not pay off on the hybrid workload";
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  TB_CHECK(f != nullptr) << "cannot open " << out_path;
  const std::string json = ToJson(rows, smoke);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace taskbench::bench

int main(int argc, char** argv) { return taskbench::bench::Main(argc, argv); }
