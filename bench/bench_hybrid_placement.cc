// Extension: hybrid CPU+GPU placement. The paper's "resource wastage"
// challenge — CPUs idle while GPU tasks queue on 32 devices — solved
// by letting GPU-targeted tasks spill onto free CPU cores (and fall
// back to CPU instead of OOM-failing). Compares CPU-only, GPU-only
// and hybrid execution of the paper's K-means and Matmul workloads.

#include "bench_common.h"

#include "algos/kmeans.h"
#include "algos/matmul.h"
#include "runtime/simulated_executor.h"

namespace tb = taskbench;

namespace {

struct Outcome {
  bool oom = false;
  double time = 0;
  int cpu_tasks = 0;
  int gpu_tasks = 0;
  double utilization = 0;  // over all 160 slots (128 cores + 32 GPUs)
};

Outcome RunKMeans(int64_t grid, tb::Processor target, bool hybrid) {
  auto spec = tb::data::GridSpec::CreateFromGridDim(
      tb::data::PaperDatasets::KMeans10GB(), grid, 1);
  TB_CHECK_OK(spec.status());
  tb::algos::KMeansOptions options;
  options.iterations = 1;
  options.processor = target;
  auto wf = tb::algos::BuildKMeans(*spec, options);
  TB_CHECK_OK(wf.status());
  tb::runtime::RunOptions exec;
  exec.hybrid = hybrid;
  auto report = tb::runtime::SimulatedExecutor(tb::hw::MinotauroCluster(),
                                               exec)
                    .Execute(wf->graph);
  Outcome outcome;
  if (!report.ok()) {
    TB_CHECK(report.status().IsOutOfMemory()) << report.status().ToString();
    outcome.oom = true;
    return outcome;
  }
  outcome.time = report->MeanLevelTime();
  const tb::hw::ClusterSpec cluster = tb::hw::MinotauroCluster();
  outcome.utilization =
      report->SlotUtilization(cluster.total_cores() + cluster.total_gpus());
  for (const auto& rec : report->records) {
    (rec.processor == tb::Processor::kCpu ? outcome.cpu_tasks
                                          : outcome.gpu_tasks)++;
  }
  return outcome;
}

}  // namespace

int main() {
  tb::bench::PrintHeader(
      "Extension: hybrid placement",
      "CPU-only vs GPU-only vs hybrid (K-means 10 GB, Minotauro)");

  tb::analysis::TextTable table({"grid", "CPU-only", "GPU-only", "hybrid",
                                 "hybrid split (CPU/GPU)",
                                 "util GPU-only/hybrid",
                                 "hybrid vs best pure"});
  for (int64_t grid : {8, 32, 64, 128, 256}) {
    const Outcome cpu = RunKMeans(grid, tb::Processor::kCpu, false);
    const Outcome gpu = RunKMeans(grid, tb::Processor::kGpu, false);
    const Outcome hybrid = RunKMeans(grid, tb::Processor::kGpu, true);
    const double best_pure =
        gpu.oom ? cpu.time : std::min(cpu.time, gpu.time);
    table.AddRow(
        {tb::StrFormat("%lldx1", static_cast<long long>(grid)),
         tb::StrFormat("%.2f s", cpu.time),
         gpu.oom ? "GPU OOM" : tb::StrFormat("%.2f s", gpu.time),
         tb::StrFormat("%.2f s", hybrid.time),
         tb::StrFormat("%d/%d", hybrid.cpu_tasks, hybrid.gpu_tasks),
         gpu.oom ? tb::StrFormat("-/%.0f%%", hybrid.utilization * 100)
                 : tb::StrFormat("%.0f%%/%.0f%%", gpu.utilization * 100,
                                 hybrid.utilization * 100),
         tb::StrFormat("%+.0f%%",
                       (best_pure / hybrid.time - 1.0) * 100.0)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Hybrid keeps all 160 execution slots busy: at fine granularities\n"
      "the 96+ otherwise-idle CPU cores absorb the task-parallelism gap\n"
      "that makes pure GPU execution lose (Figure 1's -1.20x), and\n"
      "OOM-infeasible granularities degrade to CPU instead of failing.\n");
  return 0;
}
