// Figure 12: generalizability — the Fused-Multiply-Add Matmul
// implementation follows the same trends as the dislib Matmul of
// Figure 8: user-code speedup grows with block size, the parallel
// fraction dominates communication for large blocks.

#include "bench_common.h"

#include "algos/matmul.h"
#include "perf/cost_model.h"

namespace tb = taskbench;

int main() {
  tb::bench::PrintHeader("Figure 12",
                         "Matmul FMA user-code analysis (generalizability)");

  const tb::perf::CostModel model(tb::hw::MinotauroCluster());
  tb::analysis::TextTable table({"block", "N", "UsrCode spdup (FMA)",
                                 "UsrCode spdup (dislib)", "P.Frac CPU",
                                 "P.Frac GPU", "Comm"});
  for (int64_t g : {16, 8, 4, 2, 1}) {
    const int64_t n = 32768 / g;
    const tb::perf::TaskCost fma = tb::algos::MatmulFuncCost(n, n, n, true);
    const tb::perf::TaskCost dislib =
        tb::algos::MatmulFuncCost(n, n, n, false);

    auto user_speedup = [&](const tb::perf::TaskCost& cost)
        -> std::string {
      if (!model.CheckGpuFit(cost).ok()) return "GPU OOM";
      const double cpu = model.CpuParallelFraction(cost);
      const double gpu =
          model.GpuParallelFraction(cost) + model.CpuGpuComm(cost);
      return tb::analysis::FormatSpeedup(
          tb::analysis::SignedSpeedup(cpu, gpu));
    };

    table.AddRow({tb::HumanBytes(fma.input_bytes / 2),
                  tb::StrFormat("%lld", static_cast<long long>(n)),
                  user_speedup(fma), user_speedup(dislib),
                  tb::HumanSeconds(model.CpuParallelFraction(fma)),
                  tb::HumanSeconds(model.GpuParallelFraction(fma)),
                  tb::HumanSeconds(model.CpuGpuComm(fma))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Same trends as Figure 8 with a slightly lower kernel efficiency:\n"
      "the analysis method generalizes across implementations of the same\n"
      "algorithm family (Section 5.5.1).\n");
  return 0;
}
