// Block-cache bench: the repeated-deserialization tax and what the
// versioned block cache buys back.
//
//   workload — `tasks` independent reductions over the same two large
//              shared inputs, each touching one row (O(n) compute
//              against O(n^2) deserialization), the worst case for an
//              uncached data plane: every read re-deserializes a
//              multi-megabyte block that never changes.
//   legs     — threads-1 storage mode and 1/2-worker multi-process,
//              each with the cache off and on, all compared bit-exact
//              against the in-memory thread-pool baseline.
//   guard    — for each executor family the cache-on run must produce
//              the same output digest as the cache-off run; the bench
//              aborts on mismatch, so a green run doubles as the CI
//              cache-determinism check.
//
// Speedups are informational (hosts vary); the digests are enforced.
//
// Usage: bench_blockcache [--smoke] [--out=BENCH_blockcache.json]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/args.h"
#include "common/logging.h"
#include "common/strings.h"
#include "data/matrix.h"
#include "hw/topology.h"
#include "obs/metrics.h"
#include "runtime/multiproc_executor.h"
#include "runtime/task_graph.h"
#include "runtime/thread_pool_executor.h"

namespace taskbench::bench {
namespace {

using runtime::Dir;
using runtime::TaskGraph;
using runtime::TaskSpec;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

data::Matrix RandomMatrix(int64_t n, uint64_t seed) {
  data::Matrix m(n, n);
  uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (int64_t i = 0; i < m.size(); ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    m.data()[i] = static_cast<double>(state >> 40) / (1 << 24) - 0.5;
  }
  return m;
}

/// `tasks` independent row reductions over two shared n x n inputs.
/// Each task reads both full blocks but computes over a single row,
/// so on an uncached storage data plane the wall time is dominated by
/// deserializing the same two blocks over and over.
TaskGraph RowSumDag(int64_t tasks, int64_t n,
                    std::vector<runtime::DataId>* outs) {
  TaskGraph graph;
  const runtime::DataId a = graph.AddData(RandomMatrix(n, 11));
  const runtime::DataId b = graph.AddData(RandomMatrix(n, 12));
  for (int64_t t = 0; t < tasks; ++t) {
    const runtime::DataId out = graph.AddData(64);
    outs->push_back(out);
    TaskSpec spec;
    spec.type = "rowsum";
    spec.params = {{a, Dir::kIn}, {b, Dir::kIn}, {out, Dir::kOut}};
    const int64_t row = t % n;
    spec.kernel = [row](const std::vector<const data::Matrix*>& inputs,
                        const std::vector<data::Matrix*>& outputs) -> Status {
      const data::Matrix& x = *inputs[0];
      const data::Matrix& y = *inputs[1];
      double sum = 0;
      for (int64_t c = 0; c < x.cols(); ++c) sum += x.At(row, c);
      for (int64_t c = 0; c < y.cols(); ++c) sum -= y.At(row, c);
      *outputs[0] = data::Matrix(1, 1, sum);
      return Status::OK();
    };
    TB_CHECK_OK(graph.Submit(spec).status());
  }
  return graph;
}

/// FNV-1a over the raw bytes of every output in task order. Bitwise:
/// two legs share a digest iff they produced identical doubles.
uint64_t DigestOutputs(const runtime::Executor& executor,
                       const TaskGraph& graph,
                       const std::vector<runtime::DataId>& outs) {
  uint64_t h = 14695981039346656037ull;
  for (const runtime::DataId d : outs) {
    auto m = executor.Fetch(graph, d);
    TB_CHECK_OK(m.status());
    const unsigned char* bytes =
        reinterpret_cast<const unsigned char*>(m->data());
    const size_t len = static_cast<size_t>(m->size()) * sizeof(double);
    for (size_t i = 0; i < len; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  }
  return h;
}

struct Row {
  std::string exec;  // "threads-1" or "procs-N"
  bool cache = false;
  int workers = 0;
  int64_t tasks = 0;
  double wall_s = 0;
  double tasks_per_s = 0;
  uint64_t digest = 0;
  double speedup_vs_nocache = 0;  // same exec, cache off = 1.0
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
};

std::string ToJson(const std::vector<Row>& rows, int hw_threads,
                   int64_t tasks, int64_t n) {
  std::string out = "{\n";
  out += StrFormat("  \"hardware_threads\": %d,\n", hw_threads);
  out += StrFormat("  \"cpu_model\": \"%s\",\n", hw::HostCpuModel().c_str());
  out += StrFormat("  \"tasks\": %lld,\n", static_cast<long long>(tasks));
  out += StrFormat("  \"block_dim\": %lld,\n", static_cast<long long>(n));
  out += "  \"bit_exact\": true,\n";
  out += "  \"digests_match_cache_off\": true,\n";
  out += "  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out += StrFormat(
        "    {\"exec\": \"%s\", \"cache\": %s, \"workers\": %d, "
        "\"wall_s\": %.6f, \"tasks_per_s\": %.1f, "
        "\"speedup_vs_nocache\": %.3f, \"cache_hits\": %lld, "
        "\"cache_misses\": %lld, \"digest\": \"%016llx\"}%s\n",
        r.exec.c_str(), r.cache ? "true" : "false", r.workers, r.wall_s,
        r.tasks_per_s, r.speedup_vs_nocache,
        static_cast<long long>(r.cache_hits),
        static_cast<long long>(r.cache_misses),
        static_cast<unsigned long long>(r.digest),
        i + 1 < rows.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  const bool smoke = args.GetBool("smoke", false).value_or(false);
  const std::string out_path = args.GetString("out", "BENCH_blockcache.json");
  const int hw_threads =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));

  const int64_t tasks = smoke ? 16 : 64;
  const int64_t n = smoke ? 192 : 768;

  // Reference leg: 1-thread in-memory run. Every other leg's outputs
  // must match it bit-for-bit.
  std::vector<runtime::DataId> outs;
  TaskGraph baseline_graph = RowSumDag(tasks, n, &outs);
  runtime::RunOptions base_options;
  base_options.num_threads = 1;
  base_options.use_storage = false;
  runtime::ThreadPoolExecutor baseline(base_options);
  TB_CHECK_OK(baseline.Execute(baseline_graph).status());
  const uint64_t want_digest = DigestOutputs(baseline, baseline_graph, outs);

  struct Leg {
    std::string exec;
    int threads = 0;  // > 0: thread pool (storage mode)
    int procs = 0;    // > 0: multi-process
    bool cache = false;
  };
  std::vector<Leg> legs = {
      {"threads-1", 1, 0, false}, {"threads-1", 1, 0, true},
      {"procs-1", 0, 1, false},   {"procs-1", 0, 1, true},
      {"procs-2", 0, 2, false},   {"procs-2", 0, 2, true},
  };
  if (!runtime::MultiProcExecutor::Supported()) {
    std::fprintf(stderr,
                 "multi-process execution unsupported here; "
                 "running thread-pool legs only\n");
    legs.resize(2);
  }

  std::printf("%-10s %6s %10s %12s %12s %8s %8s\n", "exec", "cache", "wall_s",
              "tasks/s", "vs_nocache", "hits", "misses");
  std::vector<Row> rows;
  double nocache_tps = 0;
  uint64_t nocache_digest = 0;
  for (const Leg& leg : legs) {
    std::vector<runtime::DataId> ignored;
    TaskGraph graph = RowSumDag(tasks, n, &ignored);
    runtime::RunOptions options;
    options.block_cache = leg.cache;
    obs::MetricsRegistry metrics;
    options.metrics = &metrics;

    Row row;
    row.exec = leg.exec;
    row.cache = leg.cache;
    row.tasks = tasks;
    if (leg.threads > 0) {
      options.num_threads = leg.threads;
      options.use_storage = true;
      row.workers = leg.threads;
      runtime::ThreadPoolExecutor executor(options);
      const double t0 = Now();
      TB_CHECK_OK(executor.Execute(graph).status());
      row.wall_s = Now() - t0;
      row.digest = DigestOutputs(executor, graph, outs);
    } else {
      options.num_procs = leg.procs;
      row.workers = leg.procs;
      runtime::MultiProcExecutor executor(options);
      const double t0 = Now();
      TB_CHECK_OK(executor.Execute(graph).status());
      row.wall_s = Now() - t0;
      row.digest = DigestOutputs(executor, graph, outs);
    }
    row.tasks_per_s = static_cast<double>(tasks) / std::max(row.wall_s, 1e-9);
    row.cache_hits = metrics.counter("cache.hits")->value();
    row.cache_misses = metrics.counter("cache.misses")->value();

    TB_CHECK(row.digest == want_digest)
        << leg.exec << (leg.cache ? "-cache" : "") << " diverged from the "
        << "in-memory baseline";
    if (!leg.cache) {
      nocache_tps = row.tasks_per_s;
      nocache_digest = row.digest;
      row.speedup_vs_nocache = 1.0;
    } else {
      // The determinism guard: caching must not change a single bit.
      TB_CHECK(row.digest == nocache_digest)
          << leg.exec << ": cache-on digest diverged from cache-off";
      row.speedup_vs_nocache =
          nocache_tps > 0 ? row.tasks_per_s / nocache_tps : 0;
    }
    std::printf("%-10s %6s %10.3f %12.1f %12s %8lld %8lld\n", row.exec.c_str(),
                row.cache ? "on" : "off", row.wall_s, row.tasks_per_s,
                row.cache
                    ? StrFormat("%.2fx", row.speedup_vs_nocache).c_str()
                    : "-",
                static_cast<long long>(row.cache_hits),
                static_cast<long long>(row.cache_misses));
    std::fflush(stdout);
    rows.push_back(row);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  TB_CHECK(f != nullptr) << "cannot open " << out_path;
  const std::string json = ToJson(rows, hw_threads, tasks, n);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace taskbench::bench

int main(int argc, char** argv) { return taskbench::bench::Main(argc, argv); }
