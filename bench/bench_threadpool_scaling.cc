// Real-execution fast-path bench: the two numbers the thread-pool
// rework is accountable for.
//
//   kernel  — single-thread 2048^2 matmul, blocked vs the pre-PR
//             naive loops (the kernel-dispatch seam lets us time both
//             from one binary). Target: >= 3x.
//   scaling — strong scaling of the work-stealing executor over a
//             wide embarrassingly-parallel matmul DAG, tasks/sec and
//             parallel efficiency vs the 1-thread run. Target: >= 0.7
//             efficiency at the hardware core count.
//   overhead — tasks/sec on near-empty tasks (pure scheduling path),
//             the executor-side analogue of bench_sched_scaling.
//
// Emits machine-readable JSON (default BENCH_threadpool.json) so
// future PRs have a perf trajectory to compare against.
//
// Usage: bench_threadpool_scaling [--smoke] [--threads=1,2,4]
//                                 [--out=BENCH_threadpool.json]

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/args.h"
#include "common/logging.h"
#include "common/strings.h"
#include "data/kernels.h"
#include "data/matrix.h"
#include "hw/topology.h"
#include "runtime/thread_pool_executor.h"
#include "runtime/task_graph.h"

namespace taskbench::bench {
namespace {

using runtime::Dir;
using runtime::TaskGraph;
using runtime::TaskSpec;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

data::Matrix RandomMatrix(int64_t n, uint64_t seed) {
  data::Matrix m(n, n);
  uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (int64_t i = 0; i < m.size(); ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    m.data()[i] = static_cast<double>(state >> 40) / (1 << 24) - 0.5;
  }
  return m;
}

struct KernelRow {
  int64_t n = 0;
  double naive_s = 0;
  double blocked_s = 0;
  double speedup = 0;
};

/// Times one Multiply variant; the best of `reps` runs (noise on a
/// shared machine only ever slows a run down).
double TimeMultiply(const data::Matrix& a, const data::Matrix& b,
                    data::KernelVariant variant, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const double t0 = Now();
    auto c = variant == data::KernelVariant::kNaive
                 ? data::naive::Multiply(a, b)
                 : data::blocked::Multiply(a, b);
    TB_CHECK_OK(c.status());
    best = std::min(best, Now() - t0);
    // Defeat dead-code elimination across the timing loop.
    volatile double sink = c->At(0, 0);
    (void)sink;
  }
  return best;
}

KernelRow RunKernelComparison(int64_t n, int reps) {
  const data::Matrix a = RandomMatrix(n, 1);
  const data::Matrix b = RandomMatrix(n, 2);
  KernelRow row;
  row.n = n;
  row.naive_s = TimeMultiply(a, b, data::KernelVariant::kNaive, reps);
  row.blocked_s = TimeMultiply(a, b, data::KernelVariant::kBlocked, reps);
  row.speedup = row.naive_s / row.blocked_s;
  return row;
}

struct ScaleRow {
  std::string section;  // "scaling" or "overhead"
  int threads = 0;
  bool oversubscribed = false;  // threads > hardware cores
  int64_t tasks = 0;
  double wall_s = 0;
  double tasks_per_s = 0;
  double speedup = 0;     // vs the 1-thread row of the same section
  double efficiency = 0;  // speedup / threads
};

/// Wide embarrassingly-parallel DAG: `tasks` independent n x n
/// matmuls over two shared inputs. Memory mode, so the measured cost
/// is kernels + scheduling, not serialization.
TaskGraph MatmulDag(int64_t tasks, int64_t n) {
  TaskGraph graph;
  const runtime::DataId a = graph.AddData(RandomMatrix(n, 3));
  const runtime::DataId b = graph.AddData(RandomMatrix(n, 4));
  for (int64_t t = 0; t < tasks; ++t) {
    const runtime::DataId out =
        graph.AddData(static_cast<uint64_t>(n * n * 8));
    TaskSpec spec;
    spec.type = "matmul";
    spec.params = {{a, Dir::kIn}, {b, Dir::kIn}, {out, Dir::kOut}};
    spec.kernel = [](const std::vector<const data::Matrix*>& inputs,
                     const std::vector<data::Matrix*>& outputs) -> Status {
      TB_ASSIGN_OR_RETURN(*outputs[0],
                          data::Multiply(*inputs[0], *inputs[1]));
      return Status::OK();
    };
    TB_CHECK_OK(graph.Submit(spec).status());
  }
  return graph;
}

/// Near-empty tasks: measures the executor's scheduling overhead.
TaskGraph TinyDag(int64_t tasks) {
  TaskGraph graph;
  const runtime::DataId a = graph.AddData(data::Matrix(1, 1, 1.0));
  for (int64_t t = 0; t < tasks; ++t) {
    const runtime::DataId out = graph.AddData(static_cast<uint64_t>(8));
    TaskSpec spec;
    spec.type = "tiny";
    spec.params = {{a, Dir::kIn}, {out, Dir::kOut}};
    spec.kernel = [](const std::vector<const data::Matrix*>& inputs,
                     const std::vector<data::Matrix*>& outputs) -> Status {
      *outputs[0] = *inputs[0];
      return Status::OK();
    };
    TB_CHECK_OK(graph.Submit(spec).status());
  }
  return graph;
}

ScaleRow RunDag(const std::string& section, TaskGraph graph, int threads) {
  runtime::RunOptions options;
  options.num_threads = threads;
  options.use_storage = false;
  runtime::ThreadPoolExecutor executor(options);
  const double t0 = Now();
  auto report = executor.Execute(graph);
  const double wall = Now() - t0;
  TB_CHECK_OK(report.status());
  ScaleRow row;
  row.section = section;
  row.threads = threads;
  row.tasks = static_cast<int64_t>(report->records.size());
  row.wall_s = wall;
  row.tasks_per_s = static_cast<double>(row.tasks) / (wall > 0 ? wall : 1e-9);
  return row;
}

std::string ToJson(const KernelRow& kernel,
                   const std::vector<ScaleRow>& rows, int hw_threads) {
  std::string out = "{\n";
  out += StrFormat(
      "  \"kernel_matmul\": {\"n\": %lld, \"naive_s\": %.6f, "
      "\"blocked_s\": %.6f, \"speedup\": %.3f},\n",
      static_cast<long long>(kernel.n), kernel.naive_s, kernel.blocked_s,
      kernel.speedup);
  // Host metadata: a committed trajectory is only comparable to runs
  // on a like host, so say what produced it.
  out += StrFormat("  \"hardware_threads\": %d,\n", hw_threads);
  out += StrFormat("  \"cpu_model\": \"%s\",\n", hw::HostCpuModel().c_str());
  out += StrFormat("  \"numa_domains\": %d,\n",
                   hw::DetectTopology().num_domains());
  out += "  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    out += StrFormat(
        "    {\"section\": \"%s\", \"threads\": %d, \"oversubscribed\": %s, "
        "\"tasks\": %lld, "
        "\"wall_s\": %.6f, \"tasks_per_s\": %.1f, \"speedup\": %.3f, "
        "\"efficiency\": %.3f}%s\n",
        r.section.c_str(), r.threads, r.oversubscribed ? "true" : "false",
        static_cast<long long>(r.tasks),
        r.wall_s, r.tasks_per_s, r.speedup, r.efficiency,
        i + 1 < rows.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  const bool smoke = args.GetBool("smoke", false).value_or(false);
  const std::string out_path = args.GetString("out", "BENCH_threadpool.json");
  const int hw_threads =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));

  std::vector<int> thread_counts;
  if (args.Has("threads")) {
    for (const std::string& s : Split(args.GetString("threads"), ',')) {
      if (s.empty()) continue;
      errno = 0;
      char* end = nullptr;
      const long n = std::strtol(s.c_str(), &end, 10);
      if (errno != 0 || end == s.c_str() || *end != '\0' || n <= 0) {
        std::fprintf(stderr,
                     "error: --threads expects positive integers, got '%s'\n",
                     s.c_str());
        return 2;
      }
      thread_counts.push_back(static_cast<int>(n));
    }
  } else {
    // Fixed 1-2-4-8 matrix plus the hardware count, oversubscribing
    // where the host is narrower. A host-derived matrix collapses to
    // a single {1} row on 1-core CI machines and records no scaling
    // trajectory at all; oversubscribed rows at least pin down the
    // scheduling overhead under contention.
    thread_counts = {1, 2, 4, 8};
    if (std::find(thread_counts.begin(), thread_counts.end(), hw_threads) ==
        thread_counts.end()) {
      thread_counts.push_back(hw_threads);
      std::sort(thread_counts.begin(), thread_counts.end());
    }
  }

  // --- Kernel speedup (single thread, fixed variant on each side).
  const int64_t kernel_n = smoke ? 256 : 2048;
  const int reps = smoke ? 2 : 3;
  std::printf("kernel matmul n=%lld ...\n", static_cast<long long>(kernel_n));
  const KernelRow kernel = RunKernelComparison(kernel_n, reps);
  std::printf("  naive %.3fs  blocked %.3fs  speedup %.2fx\n",
              kernel.naive_s, kernel.blocked_s, kernel.speedup);

  // --- Strong scaling over the wide matmul DAG + tiny-task overhead.
  const int64_t matmul_tasks =
      smoke ? 16 : std::max<int64_t>(64, 16 * hw_threads);
  const int64_t matmul_n = smoke ? 64 : 384;
  const int64_t tiny_tasks = smoke ? 2'000 : 50'000;

  std::printf("%-9s %8s %10s %10s %12s %9s %11s\n", "section", "threads",
              "tasks", "wall_s", "tasks/s", "speedup", "efficiency");
  std::vector<ScaleRow> rows;
  for (const char* section : {"scaling", "overhead"}) {
    double base_tps = 0;
    for (int threads : thread_counts) {
      ScaleRow row =
          std::string(section) == "scaling"
              ? RunDag(section, MatmulDag(matmul_tasks, matmul_n), threads)
              : RunDag(section, TinyDag(tiny_tasks), threads);
      if (threads == thread_counts.front()) {
        base_tps = row.tasks_per_s / threads;
      }
      row.oversubscribed = threads > hw_threads;
      row.speedup = base_tps > 0 ? row.tasks_per_s / base_tps : 0;
      row.efficiency = row.speedup / threads;
      std::printf("%-9s %8d %10lld %10.3f %12.1f %9.2f %11.2f%s\n",
                  row.section.c_str(), row.threads,
                  static_cast<long long>(row.tasks), row.wall_s,
                  row.tasks_per_s, row.speedup, row.efficiency,
                  row.oversubscribed ? "  (oversubscribed)" : "");
      std::fflush(stdout);
      rows.push_back(row);
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  TB_CHECK(f != nullptr) << "cannot open " << out_path;
  const std::string json = ToJson(kernel, rows, hw_threads);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace taskbench::bench

int main(int argc, char** argv) { return taskbench::bench::Main(argc, argv); }
