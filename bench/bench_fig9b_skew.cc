// Figure 9b: the effect of data skew. The paper generates skewed
// variants (50% of elements concentrated into narrow regions) of a
// 2 GB Matmul and a 1 GB K-means dataset and finds the task user
// code execution time unchanged. We verify the same property with
// REAL kernel executions at a laptop-friendly scale: identical block
// shapes, uniform vs skewed contents, measured wall-clock per task.

#include "bench_common.h"

#include <algorithm>

#include "algos/kmeans.h"
#include "algos/matmul.h"
#include "runtime/thread_pool_executor.h"

namespace tb = taskbench;

namespace {

/// Median of the per-task kernel times of `type` over `runs` runs
/// (the paper also runs each experiment repeatedly and aggregates).
double MedianKernelTime(tb::runtime::TaskGraph& graph,
                        const std::string& type) {
  tb::runtime::RunOptions options;
  options.num_threads = 2;
  options.use_storage = false;
  tb::runtime::ThreadPoolExecutor executor(options);
  auto report = executor.Execute(graph);
  TB_CHECK_OK(report.status());
  std::vector<double> times;
  for (const auto& rec : report->records) {
    if (rec.type == type) times.push_back(rec.stages.parallel_fraction);
  }
  TB_CHECK(!times.empty());
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

double MatmulKernelTime(double skew, uint64_t seed) {
  // Skew only changes values, never shapes, so we inject skewed
  // blocks by regenerating the A blocks with FillSkewed.
  auto spec = tb::data::GridSpec::CreateFromGridDim(
      tb::data::DatasetSpec{"m", 768, 768}, 2, 2);
  TB_CHECK_OK(spec.status());
  tb::algos::MatmulOptions options;
  options.materialize = true;
  options.seed = seed;
  auto wf = tb::algos::BuildMatmul(*spec, options);
  TB_CHECK_OK(wf.status());
  if (skew > 0) {
    for (auto& row : wf->a) {
      for (tb::runtime::DataId id : row) {
        auto& value = *wf->graph.mutable_data(id).value;
        tb::Rng rng(seed ^ static_cast<uint64_t>(id));
        tb::data::FillSkewed(&value, &rng, skew);
      }
    }
  }
  return MedianKernelTime(wf->graph, "matmul_func");
}

double KMeansKernelTime(double skew, uint64_t seed) {
  auto spec = tb::data::GridSpec::CreateFromGridDim(
      tb::data::DatasetSpec{"x", 20000, 16}, 4, 1);
  TB_CHECK_OK(spec.status());
  tb::algos::KMeansOptions options;
  options.materialize = true;
  options.num_clusters = 10;
  options.iterations = 2;
  options.skew = skew;
  options.seed = seed;
  auto wf = tb::algos::BuildKMeans(*spec, options);
  TB_CHECK_OK(wf.status());
  return MedianKernelTime(wf->graph, "partial_sum");
}

}  // namespace

int main() {
  tb::bench::PrintHeader("Figure 9b",
                         "data skew has no effect on task user code time");

  tb::analysis::TextTable table(
      {"workload", "0% skew", "50% skew", "ratio", "paper"});
  // Min over several repeats: the standard noise-robust estimator for
  // short wall-clock measurements.
  double mm_uniform = 1e300, mm_skew = 1e300, km_uniform = 1e300,
         km_skew = 1e300;
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    mm_uniform = std::min(mm_uniform, MatmulKernelTime(0.0, seed));
    mm_skew = std::min(mm_skew, MatmulKernelTime(0.5, seed));
    km_uniform = std::min(km_uniform, KMeansKernelTime(0.0, seed));
    km_skew = std::min(km_skew, KMeansKernelTime(0.5, seed));
  }
  table.AddRow({"Matmul (real kernels)", tb::HumanSeconds(mm_uniform),
                tb::HumanSeconds(mm_skew),
                tb::StrFormat("%.2f", mm_skew / mm_uniform), "~1.00"});
  table.AddRow({"K-means (real kernels)", tb::HumanSeconds(km_uniform),
                tb::HumanSeconds(km_skew),
                tb::StrFormat("%.2f", km_skew / km_uniform), "~1.00"});
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "The kernels are oblivious to value distributions (no data-dependent\n"
      "branches over block contents), so skew leaves user-code time\n"
      "unchanged — matching Section 5.2.3. The analytic cost model is\n"
      "skew-free by construction (costs depend on shapes only).\n");
  return 0;
}
