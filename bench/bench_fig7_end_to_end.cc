// Figure 7: end-to-end performance analysis. For each algorithm and
// dataset, sweeps the block dimension and reports, per block size:
// the GPU speedup over CPU at three granularities (parallel
// fraction, user code, parallel tasks) and the stage times the
// bottom charts plot (parallel fraction, serial + CPU-GPU comm, and
// data (de-)serialization). Large-granularity GPU configurations hit
// the device-memory wall and are annotated "GPU OOM" exactly as in
// the paper.

#include "bench_common.h"

#include "analysis/factor_space.h"

namespace tb = taskbench;
using tb::analysis::Algorithm;
using tb::analysis::ExperimentConfig;

namespace {

void RunSweep(const char* title, Algorithm algorithm,
              const tb::data::DatasetSpec& dataset,
              const std::vector<std::pair<int64_t, int64_t>>& grids,
              const char* main_task) {
  std::printf("--- %s ---\n", title);
  tb::analysis::TextTable table({"block", "grid", "P.Frac spdup",
                                 "UsrCode spdup", "P.Tasks spdup",
                                 "P.Frac CPU", "Ser+Comm GPU", "De/Ser"});
  for (const auto& [gr, gc] : grids) {
    ExperimentConfig config;
    config.algorithm = algorithm;
    config.dataset = dataset;
    config.grid_rows = gr;
    config.grid_cols = gc;
    config.iterations = 1;

    config.processor = tb::Processor::kCpu;
    const auto cpu = tb::bench::MustRun(config);
    config.processor = tb::Processor::kGpu;
    const auto gpu = tb::bench::MustRun(config);

    const std::string block = tb::bench::BlockLabel(cpu.block_bytes);
    const std::string grid = tb::StrFormat(
        "%lldx%lld", static_cast<long long>(gr), static_cast<long long>(gc));
    if (gpu.oom) {
      table.AddRow({block, grid, "GPU OOM", "GPU OOM", "GPU OOM", "-", "-",
                    "-"});
      continue;
    }
    const auto& scpu = cpu.stages_by_type.at(main_task);
    const auto& sgpu = gpu.stages_by_type.at(main_task);
    table.AddRow(
        {block, grid,
         tb::analysis::FormatSpeedup(tb::analysis::SignedSpeedup(
             scpu.parallel_fraction, sgpu.parallel_fraction)),
         tb::analysis::FormatSpeedup(tb::analysis::SignedSpeedup(
             scpu.user_code(), sgpu.user_code())),
         tb::analysis::FormatSpeedup(tb::analysis::SignedSpeedup(
             cpu.parallel_task_time, gpu.parallel_task_time)),
         tb::HumanSeconds(scpu.parallel_fraction),
         tb::HumanSeconds(sgpu.serial_fraction + sgpu.cpu_gpu_comm),
         tb::HumanSeconds(sgpu.deserialize + sgpu.serialize)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  tb::bench::PrintHeader("Figure 7",
                         "end-to-end analysis across block dimensions");

  RunSweep("Figure 7a left: Matmul 8 GB", Algorithm::kMatmul,
           tb::data::PaperDatasets::Matmul8GB(),
           tb::analysis::MatmulPaperGrids(), "matmul_func");
  RunSweep("Figure 7a right: Matmul 32 GB", Algorithm::kMatmul,
           tb::data::PaperDatasets::Matmul32GB(),
           tb::analysis::MatmulPaperGrids(), "matmul_func");
  RunSweep("Figure 7b left: K-means 10 GB", Algorithm::kKMeans,
           tb::data::PaperDatasets::KMeans10GB(),
           tb::analysis::KMeansPaperGrids(), "partial_sum");
  RunSweep("Figure 7b right: K-means 100 GB", Algorithm::kKMeans,
           tb::data::PaperDatasets::KMeans100GB(),
           tb::analysis::KMeansPaperGrids(), "partial_sum");

  std::printf(
      "Paper shapes to compare against (Section 5.1): parallel-fraction\n"
      "speedups scale with block size until GPU OOM; user-code speedups\n"
      "are damped ~20-35%% by communication for Matmul and stay flat for\n"
      "K-means (serial fraction dominates); parallel-task speedups peak\n"
      "when (de-)serialization is fully parallelized and are negative for\n"
      "the smallest blocks.\n");
  return 0;
}
