// Telemetry bench: what does run telemetry cost, and how fast does
// the streaming trace exporter move? Three measurements per size:
//
//   run-off    — simulated run, telemetry disabled (the baseline every
//                other bench measures),
//   run-on     — same run with a MetricsRegistry attached; the delta
//                is the collection overhead, which must stay in the
//                noise (the instruments are pre-resolved pointers),
//   trace      — StreamChromeTrace of the run's report into a
//                discarding stream; reported as events/second. The
//                writer streams one event at a time, so this holds at
//                a million tasks without materializing the document.
//
// Emits machine-readable JSON (default BENCH_telemetry.json).
//
// Usage: bench_telemetry [--smoke] [--large] [--sizes=100000,...]
//                        [--out=BENCH_telemetry.json]

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/logging.h"
#include "common/strings.h"
#include "hw/cluster.h"
#include "obs/metrics.h"
#include "obs/trace_writer.h"
#include "runtime/simulated_executor.h"
#include "runtime/task_graph.h"
#include "runtime/trace.h"

namespace taskbench::bench {
namespace {

using runtime::Dir;
using runtime::TaskGraph;
using runtime::TaskSpec;

constexpr uint64_t kBlockBytes = 1 << 20;
constexpr int kGridWidth = 512;

/// Counts bytes and drops them — measures formatting, not disk.
class NullBuffer : public std::streambuf {
 public:
  uint64_t written = 0;

 protected:
  int overflow(int c) override {
    ++written;
    return c;
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    written += static_cast<uint64_t>(n);
    return n;
  }
};

perf::TaskCost SmallCost() {
  perf::TaskCost cost;
  cost.parallel.flops = 1e6;
  cost.parallel.bytes = 1e6;
  cost.serial.flops = 1e4;
  cost.serial.bytes = 1e4;
  cost.input_bytes = kBlockBytes;
  cost.output_bytes = kBlockBytes;
  return cost;
}

/// kGridWidth lanes x n/kGridWidth levels (the sched-scaling "grid"
/// shape: steady ready-set and event pressure).
TaskGraph GridGraph(int64_t n) {
  TaskGraph graph;
  const int64_t levels = std::max<int64_t>(1, n / kGridWidth);
  std::vector<runtime::DataId> lane(kGridWidth);
  for (int w = 0; w < kGridWidth; ++w) {
    lane[static_cast<size_t>(w)] = graph.AddData(kBlockBytes);
  }
  for (int64_t l = 0; l < levels; ++l) {
    for (int w = 0; w < kGridWidth; ++w) {
      const runtime::DataId out = graph.AddData(kBlockBytes);
      TaskSpec spec;
      spec.type = "telemetry_task";
      spec.cost = SmallCost();
      spec.processor = Processor::kCpu;
      spec.params = {{lane[static_cast<size_t>(w)], Dir::kIn},
                     {out, Dir::kOut}};
      TB_CHECK_OK(graph.Submit(spec).status());
      lane[static_cast<size_t>(w)] = out;
    }
  }
  return graph;
}

struct Row {
  int64_t tasks = 0;
  double run_off_s = 0;
  double run_on_s = 0;
  double overhead_pct = 0;
  double trace_s = 0;
  uint64_t trace_events = 0;
  uint64_t trace_bytes = 0;
  double trace_events_per_s = 0;
};

double Secs(std::chrono::steady_clock::time_point t0,
            std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

Row RunOne(int64_t n) {
  Row row;
  runtime::RunOptions options;
  options.storage = hw::StorageArchitecture::kLocalDisk;

  runtime::RunReport report;
  {
    TaskGraph graph = GridGraph(n);
    row.tasks = graph.num_tasks();
    runtime::SimulatedExecutor executor(hw::MinotauroCluster(), options);
    const auto t0 = std::chrono::steady_clock::now();
    auto r = executor.Execute(graph);
    const auto t1 = std::chrono::steady_clock::now();
    TB_CHECK_OK(r.status());
    row.run_off_s = Secs(t0, t1);
    report = std::move(*r);
  }
  {
    TaskGraph graph = GridGraph(n);
    obs::MetricsRegistry registry;
    options.metrics = &registry;
    runtime::SimulatedExecutor executor(hw::MinotauroCluster(), options);
    const auto t0 = std::chrono::steady_clock::now();
    auto r = executor.Execute(graph);
    const auto t1 = std::chrono::steady_clock::now();
    TB_CHECK_OK(r.status());
    row.run_on_s = Secs(t0, t1);
    TB_CHECK(registry.counter("sched.decisions")->value() == row.tasks);
  }
  row.overhead_pct = row.run_off_s > 0
                         ? (row.run_on_s / row.run_off_s - 1.0) * 100.0
                         : 0;
  {
    NullBuffer sink;
    std::ostream out(&sink);
    const auto t0 = std::chrono::steady_clock::now();
    runtime::StreamChromeTrace(report, out);
    const auto t1 = std::chrono::steady_clock::now();
    row.trace_s = Secs(t0, t1);
    row.trace_bytes = sink.written;
    // One task slice + >= 1 stage slices per record, plus metadata;
    // count the records as the meaningful unit.
    row.trace_events = static_cast<uint64_t>(report.records.size());
    const double wall = row.trace_s > 0 ? row.trace_s : 1e-9;
    row.trace_events_per_s = static_cast<double>(row.trace_events) / wall;
  }
  return row;
}

std::string ToJson(const std::vector<Row>& rows) {
  std::string out = "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out += StrFormat(
        "  {\"tasks\": %lld, \"run_off_s\": %.6f, \"run_on_s\": %.6f, "
        "\"telemetry_overhead_pct\": %.2f, \"trace_s\": %.6f, "
        "\"trace_bytes\": %llu, \"trace_tasks_per_s\": %.1f}%s\n",
        static_cast<long long>(r.tasks), r.run_off_s, r.run_on_s,
        r.overhead_pct, r.trace_s,
        static_cast<unsigned long long>(r.trace_bytes),
        r.trace_events_per_s, i + 1 < rows.size() ? "," : "");
  }
  out += "]\n";
  return out;
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  std::vector<int64_t> sizes;
  if (args.Has("sizes")) {
    for (const std::string& s : Split(args.GetString("sizes"), ',')) {
      if (s.empty()) continue;
      errno = 0;
      char* end = nullptr;
      const long long n = std::strtoll(s.c_str(), &end, 10);
      if (errno != 0 || end == s.c_str() || *end != '\0' || n <= 0) {
        std::fprintf(stderr,
                     "error: --sizes expects positive integers, got '%s'\n",
                     s.c_str());
        return 2;
      }
      sizes.push_back(n);
    }
  } else if (args.GetBool("smoke", false).value_or(false)) {
    sizes = {10'000};
  } else if (args.GetBool("large", false).value_or(false)) {
    sizes = {100'000, 1'000'000};
  } else {
    sizes = {100'000};
  }
  const std::string out_path = args.GetString("out", "BENCH_telemetry.json");

  std::printf("%10s %10s %10s %10s %10s %12s %14s\n", "tasks", "run_off",
              "run_on", "ovh_%", "trace_s", "trace_MB", "trace_tasks/s");
  std::vector<Row> rows;
  for (int64_t n : sizes) {
    const Row row = RunOne(n);
    std::printf("%10lld %10.3f %10.3f %10.2f %10.3f %12.1f %14.0f\n",
                static_cast<long long>(row.tasks), row.run_off_s,
                row.run_on_s, row.overhead_pct, row.trace_s,
                static_cast<double>(row.trace_bytes) / 1e6,
                row.trace_events_per_s);
    std::fflush(stdout);
    rows.push_back(row);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  TB_CHECK(f != nullptr) << "cannot open " << out_path;
  const std::string json = ToJson(rows);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace taskbench::bench

int main(int argc, char** argv) { return taskbench::bench::Main(argc, argv); }
