// Generalizability extension (Section 5.5.1 future work, implemented):
// places four algorithms on the parallel-fraction / arithmetic-
// intensity spectrum and shows how the two axes jointly decide GPU
// benefit — the "more data points between the two extreme cases" the
// paper calls for.
//
//   matmul_func   : fully parallel, compute-bound  -> GPU wins big
//   transpose_func: fully parallel, zero intensity -> GPU always loses
//   grad_func     : mostly parallel, low intensity -> GPU breaks even
//   partial_sum   : partially parallel             -> serial-capped

#include "bench_common.h"

#include "algos/kmeans.h"
#include "algos/logreg.h"
#include "algos/matmul.h"
#include "algos/transpose.h"
#include "perf/cost_model.h"

namespace tb = taskbench;

int main() {
  tb::bench::PrintHeader(
      "Generalizability extension",
      "four algorithms on the parallel-fraction x intensity spectrum");

  const tb::perf::CostModel model(tb::hw::MinotauroCluster());

  struct Row {
    const char* task;
    tb::perf::TaskCost cost;
  };
  // Comparable data volume per task (~600 MB blocks).
  const int64_t mm_n = 4096;            // 128 MB blocks, 3 of them
  const int64_t rows = 12500000 / 16;   // ~600 MB K-means/logreg block
  const std::vector<Row> rows_spec = {
      {"matmul_func (O(N^3))",
       tb::algos::MatmulFuncCost(mm_n, mm_n, mm_n, false)},
      {"transpose_func (0 flops)",
       tb::algos::TransposeFuncCost(8192, 8192)},
      {"grad_func (logreg)", tb::algos::GradFuncCost(rows, 101)},
      {"partial_sum (K-means)", tb::algos::PartialSumCost(rows, 100, 10)},
  };

  tb::analysis::TextTable table({"task", "parallel frac (CPU basis)",
                                 "flops/byte", "UsrCode spdup", "verdict"});
  for (const Row& row : rows_spec) {
    const double serial = model.SerialFraction(row.cost);
    const double p_cpu = model.CpuParallelFraction(row.cost);
    const double cpu = p_cpu + serial;
    const double gpu = model.GpuParallelFraction(row.cost) + serial +
                       model.CpuGpuComm(row.cost);
    const double speedup = cpu / gpu;
    const double intensity =
        row.cost.parallel.bytes > 0
            ? row.cost.parallel.flops / row.cost.parallel.bytes
            : 0;
    const char* verdict = speedup > 2.0   ? "GPU wins"
                          : speedup > 0.95 ? "break-even"
                                           : "GPU loses";
    table.AddRow({row.task, tb::StrFormat("%.2f", p_cpu / (p_cpu + serial)),
                  tb::StrFormat("%.2f", intensity),
                  tb::analysis::FormatSpeedup(
                      tb::analysis::SignedSpeedup(cpu, gpu)),
                  verdict});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Neither axis alone predicts GPU benefit: transpose is 100%%\n"
      "parallel yet always loses (zero arithmetic intensity); logreg\n"
      "parallelizes well but transfers as many bytes as it processes, so\n"
      "the bus erases the win; K-means reuses the transferred block K\n"
      "times yet stays capped by its serial fraction. Only the joint view\n"
      "— the paper's multi-factor thesis — explains the outcomes.\n");
  return 0;
}
