// Figure 10: the effects of storage architecture and scheduling
// policy on parallel task execution time. Full simulated sweeps:
// {local, shared} disk x {task generation order, data locality} x
// {CPU, GPU} across the paper's block dimensions, for Matmul 8 GB
// (10a) and K-means 10 GB (10b). Paper shapes: local disk is
// insensitive to the policy (O5); shared disk reacts more, most
// visibly for the low-complexity K-means tasks (O6); times rise for
// coarse grains then drop at the single-task maximum; Matmul GPU
// OOMs at the maximum block size.

#include "bench_common.h"

#include "analysis/factor_space.h"

namespace tb = taskbench;
using tb::analysis::Algorithm;
using tb::analysis::ExperimentConfig;

namespace {

void RunGrid(const char* title, Algorithm algorithm,
             const tb::data::DatasetSpec& dataset,
             const std::vector<std::pair<int64_t, int64_t>>& grids) {
  std::printf("--- %s ---\n", title);
  tb::analysis::TextTable table(
      {"block", "grid", "proc", "local+gen", "local+loc", "shared+gen",
       "shared+loc"});
  for (const auto& [gr, gc] : grids) {
    for (tb::Processor proc : {tb::Processor::kCpu, tb::Processor::kGpu}) {
      ExperimentConfig config;
      config.algorithm = algorithm;
      config.dataset = dataset;
      config.grid_rows = gr;
      config.grid_cols = gc;
      config.iterations = 1;
      config.processor = proc;

      std::vector<std::string> row;
      uint64_t block_bytes = 0;
      bool oom = false;
      for (tb::hw::StorageArchitecture storage :
           {tb::hw::StorageArchitecture::kLocalDisk,
            tb::hw::StorageArchitecture::kSharedDisk}) {
        for (tb::SchedulingPolicy policy :
             {tb::SchedulingPolicy::kTaskGenerationOrder,
              tb::SchedulingPolicy::kDataLocality}) {
          config.run.storage = storage;
          config.run.policy = policy;
          const auto result = tb::bench::MustRun(config);
          block_bytes = result.block_bytes;
          if (result.oom) {
            oom = true;
            row.push_back("OOM");
          } else {
            row.push_back(
                tb::StrFormat("%.1f s", result.parallel_task_time));
          }
        }
      }
      std::vector<std::string> full_row{
          tb::bench::BlockLabel(block_bytes),
          tb::StrFormat("%lldx%lld", static_cast<long long>(gr),
                        static_cast<long long>(gc)),
          tb::ToString(proc) + (oom ? " (GPU OOM)" : "")};
      for (auto& cell : row) full_row.push_back(std::move(cell));
      table.AddRow(std::move(full_row));
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  tb::bench::PrintHeader(
      "Figure 10", "storage architecture x scheduling policy effects");
  RunGrid("Figure 10a: Matmul 8 GB", Algorithm::kMatmul,
          tb::data::PaperDatasets::Matmul8GB(),
          tb::analysis::MatmulPaperGrids());
  RunGrid("Figure 10b: K-means 10 GB, 10 clusters", Algorithm::kKMeans,
          tb::data::PaperDatasets::KMeans10GB(),
          tb::analysis::KMeansPaperGrids());
  return 0;
}
