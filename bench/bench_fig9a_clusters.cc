// Figure 9a: the algorithm-specific parameter (#clusters) in K-means.
// Sweeps 10 / 100 / 1000 clusters across the paper's block sizes on
// the 10 GB dataset and reports the user-code GPU speedup plus the
// stage times (parallel fraction CPU/GPU, serial fraction, CPU-GPU
// communication). Paper shapes: speedups grow with #clusters (~1.5x,
// ~2x that, up to ~7x higher) but NOT with block size; large-block +
// many-cluster configurations hit GPU OOM.

#include "bench_common.h"

#include "algos/kmeans.h"
#include "perf/cost_model.h"

namespace tb = taskbench;

int main() {
  tb::bench::PrintHeader(
      "Figure 9a", "algorithm-specific parameter (#clusters) in K-means");

  const tb::perf::CostModel model(tb::hw::MinotauroCluster());
  for (int clusters : {10, 100, 1000}) {
    std::printf("--- %d clusters ---\n", clusters);
    tb::analysis::TextTable table({"block", "grid", "UsrCode spdup",
                                   "P.Frac CPU", "S.Frac", "P.Frac GPU",
                                   "Comm"});
    for (int64_t g : {256, 128, 64, 32, 16, 8, 4, 2, 1}) {
      const int64_t rows = 12500000 / g;
      const tb::perf::TaskCost cost =
          tb::algos::PartialSumCost(rows, 100, clusters);
      const std::string block =
          tb::HumanBytes(static_cast<uint64_t>(rows) * 100 * 8);
      const std::string grid =
          tb::StrFormat("%lldx1", static_cast<long long>(g));
      if (!model.CheckGpuFit(cost).ok()) {
        table.AddRow({block, grid, "GPU OOM", "-", "-", "-", "-"});
        continue;
      }
      const double serial = model.SerialFraction(cost);
      const double cpu_user = model.CpuParallelFraction(cost) + serial;
      const double gpu_user = model.GpuParallelFraction(cost) + serial +
                              model.CpuGpuComm(cost);
      table.AddRow({block, grid,
                    tb::analysis::FormatSpeedup(
                        tb::analysis::SignedSpeedup(cpu_user, gpu_user)),
                    tb::HumanSeconds(model.CpuParallelFraction(cost)),
                    tb::HumanSeconds(serial),
                    tb::HumanSeconds(model.GpuParallelFraction(cost)),
                    tb::HumanSeconds(model.CpuGpuComm(cost))});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf(
      "Paper anchors: 10 clusters -> marginal speedups (<1.5x, parallel\n"
      "fraction below serial + comm); 100 clusters -> ~2x the 10-cluster\n"
      "speedup; 1000 clusters -> up to ~7x higher than 10 clusters, OOM\n"
      "from mid block sizes on. Speedups do not scale with block size:\n"
      "#clusters dominates the complexity.\n");
  return 0;
}
