#ifndef TASKBENCH_BENCH_BENCH_COMMON_H_
#define TASKBENCH_BENCH_BENCH_COMMON_H_

// Shared helpers for the figure-regeneration benches. Each bench
// binary prints the rows/series of one of the paper's figures or
// tables, with the paper's reported values alongside where the paper
// states them, so EXPERIMENTS.md can record paper-vs-measured.

#include <cstdio>
#include <string>

#include "analysis/experiment.h"
#include "analysis/report.h"
#include "common/logging.h"
#include "common/strings.h"
#include "data/generators.h"

namespace taskbench::bench {

/// Prints the standard bench header.
inline void PrintHeader(const char* figure, const char* description) {
  std::printf("==============================================================="
              "=\n%s — %s\n"
              "================================================================"
              "\n\n",
              figure, description);
}

/// Runs one experiment, aborting the bench on non-OOM failure.
inline analysis::ExperimentResult MustRun(
    const analysis::ExperimentConfig& config) {
  auto result = analysis::RunExperiment(config);
  TB_CHECK_OK(result.status());
  return std::move(result).value();
}

/// The paper's block-size label for a config: nominal dataset MB
/// divided by the number of blocks (it labels Matmul in binary MB and
/// K-means in decimal MB; we label with real bytes instead).
inline std::string BlockLabel(uint64_t block_bytes) {
  return HumanBytes(block_bytes);
}

}  // namespace taskbench::bench

#endif  // TASKBENCH_BENCH_BENCH_COMMON_H_
