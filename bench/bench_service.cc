// Resident-service bench: control-plane throughput and per-tenant
// tail latency of WorkflowService under skewed multi-tenant load.
//
//   load     — three tenants offer geometrically skewed Poisson rates
//              (base, 2x, 4x) through the open-loop driver for the
//              measurement window; tenant-0 additionally cancels
//              every 4th of its own submissions. The service runs the
//              graphs on the simulated executor, so makespans are
//              simulated seconds (deterministic) while queue waits
//              and submissions/s are wall-clock service-plane
//              numbers.
//   cancel   — a deterministic slot-accounting check on a gated
//              thread-pool service: at max_in_flight capacity a
//              Submit is rejected, cancelling a queued submission
//              admits the next one immediately. The committed JSON
//              asserts it (`cancellation_frees_slots`).
//
// Usage: bench_service [--smoke] [--duration=S] [--rate=HZ]
//                      [--runners=N] [--out=BENCH_service.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/args.h"
#include "common/logging.h"
#include "common/strings.h"
#include "data/matrix.h"
#include "obs/json.h"
#include "runtime/executor_factory.h"
#include "runtime/thread_pool_executor.h"
#include "service/load.h"
#include "service/workflow_service.h"

namespace taskbench::bench {
namespace {

using runtime::DataId;
using runtime::Dir;
using runtime::TaskGraph;
using runtime::TaskSpec;
using service::ServiceOptions;
using service::ServiceReport;
using service::SubmitOptions;
using service::TenantLoad;
using service::WorkflowService;

/// Deterministic demonstration that cancelling a queued submission
/// frees its admission slot immediately: a single gated runner holds
/// the service at max_in_flight, the next Submit is rejected, and a
/// Cancel makes the one after that admissible. Returns true when the
/// sequence behaves exactly that way.
bool CancellationFreesSlots() {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> entered{false};

  auto one_task_graph = [&](bool gated) {
    TaskGraph graph;
    const DataId in = graph.AddData(data::Matrix(2, 2, 1.0));
    const DataId out = graph.AddData(static_cast<uint64_t>(32));
    TaskSpec spec;
    spec.type = "unit";
    spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
    spec.kernel = [&mu, &cv, &release, &entered, gated](
                      const std::vector<const data::Matrix*>& inputs,
                      const std::vector<data::Matrix*>& outputs) -> Status {
      if (gated) {
        entered.store(true);
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
      }
      *outputs[0] = *inputs[0];
      return Status::OK();
    };
    TB_CHECK_OK(graph.Submit(std::move(spec)).status());
    return graph;
  };

  runtime::RunOptions exec_options;
  exec_options.num_threads = 2;
  exec_options.use_storage = false;
  ServiceOptions options;
  options.num_runners = 1;
  options.max_in_flight = 2;
  WorkflowService service(
      std::make_shared<runtime::ThreadPoolExecutor>(exec_options), options);

  auto running = service.Submit(one_task_graph(/*gated=*/true));
  TB_CHECK_OK(running.status());
  while (!entered.load()) std::this_thread::yield();
  auto queued = service.Submit(one_task_graph(false));
  TB_CHECK_OK(queued.status());

  const bool rejected_at_cap =
      service.Submit(one_task_graph(false)).status().IsRejectedAdmission();
  auto cancel = service.Cancel(*queued);
  TB_CHECK_OK(cancel.status());
  auto readmitted = service.Submit(one_task_graph(false));
  const bool slot_freed = readmitted.ok();

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  TB_CHECK_OK(service.Wait(*running).status());
  if (slot_freed) TB_CHECK_OK(service.Wait(*readmitted).status());
  return rejected_at_cap && *cancel && slot_freed;
}

std::string LatencyJson(const service::LatencySummary& s) {
  return StrFormat(
      "{\"count\": %lld, \"mean_s\": %.6g, \"p50_s\": %.6g, "
      "\"p95_s\": %.6g, \"p99_s\": %.6g}",
      static_cast<long long>(s.count), s.mean, s.p50, s.p95, s.p99);
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  const bool smoke = args.GetBool("smoke", false).value_or(false);
  const double duration_s =
      args.GetDouble("duration", smoke ? 1.0 : 5.0).value_or(5.0);
  const double base_rate_hz = args.GetDouble("rate", 8.0).value_or(8.0);
  const int runners = static_cast<int>(args.GetInt("runners", 4).value_or(4));
  const std::string out_path = args.GetString("out", "BENCH_service.json");

  const bool cancel_frees_slots = CancellationFreesSlots();
  TB_CHECK(cancel_frees_slots) << "queued-cancel did not free its slot";

  runtime::ExecutorSpec spec;
  spec.kind = runtime::ExecutorKind::kSim;
  auto executor = runtime::MakeExecutor(spec);
  TB_CHECK_OK(executor.status());

  ServiceOptions options;
  options.num_runners = runners;
  options.max_in_flight = 8 * runners;
  WorkflowService workflow_service(std::move(*executor), options);

  std::vector<TenantLoad> loads;
  std::vector<double> rates;
  for (int i = 0; i < 3; ++i) {
    TenantLoad load;
    load.tenant = StrFormat("tenant-%d", i);
    load.arrivals.rate_hz = base_rate_hz * (1 << i);  // skew: 1x/2x/4x
    load.seed = 1000 + static_cast<uint64_t>(i);
    if (i == 0) load.cancel_every = 4;
    rates.push_back(load.arrivals.rate_hz);
    loads.push_back(std::move(load));
  }

  const auto t0 = std::chrono::steady_clock::now();
  auto stats = service::RunOpenLoad(&workflow_service, loads, duration_s);
  TB_CHECK_OK(stats.status());
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  workflow_service.Shutdown();
  const ServiceReport report = workflow_service.Report();
  TB_CHECK(report.still_queued == 0 && report.still_running == 0)
      << "stuck submissions after drain";
  const double submissions_per_s =
      static_cast<double>(stats->admitted) / std::max(wall_s, 1e-9);

  std::printf("%-10s %9s %9s %9s %9s %12s %12s\n", "tenant", "rate/s",
              "admitted", "done", "cancel", "mk_p50_s", "mk_p99_s");
  std::string tenants_json;
  for (size_t i = 0; i < report.tenants.size(); ++i) {
    const service::TenantReport& t = report.tenants[i];
    std::printf("%-10s %9.1f %9lld %9lld %9lld %12.4f %12.4f\n",
                t.tenant.c_str(), rates[i],
                static_cast<long long>(t.submitted),
                static_cast<long long>(t.completed),
                static_cast<long long>(t.cancelled), t.makespan.p50,
                t.makespan.p99);
    tenants_json += StrFormat(
        "    {\"tenant\": \"%s\", \"offered_rate_hz\": %.3f, "
        "\"submitted\": %lld, \"rejected\": %lld, \"completed\": %lld, "
        "\"failed\": %lld, \"cancelled\": %lld, \"expired\": %lld,\n"
        "     \"makespan\": %s,\n"
        "     \"queue_wait\": %s}%s\n",
        JsonEscape(t.tenant).c_str(), rates[i],
        static_cast<long long>(t.submitted),
        static_cast<long long>(t.rejected),
        static_cast<long long>(t.completed),
        static_cast<long long>(t.failed),
        static_cast<long long>(t.cancelled),
        static_cast<long long>(t.expired), LatencyJson(t.makespan).c_str(),
        LatencyJson(t.queue_wait).c_str(),
        i + 1 < report.tenants.size() ? "," : "");
  }
  std::printf("admitted %lld of %lld offered (%lld rejected) in %.2fs -> "
              "%.1f submissions/s; cancellation_frees_slots: %s\n",
              static_cast<long long>(stats->admitted),
              static_cast<long long>(stats->offered),
              static_cast<long long>(stats->rejected), wall_s,
              submissions_per_s, cancel_frees_slots ? "true" : "false");

  std::string json = "{\n";
  json += StrFormat("  \"smoke\": %s,\n", smoke ? "true" : "false");
  json += StrFormat("  \"duration_s\": %.3f,\n", duration_s);
  json += "  \"executor\": \"simulated\",\n";
  json += StrFormat("  \"runners\": %d,\n", runners);
  json += StrFormat("  \"max_in_flight\": %d,\n", options.max_in_flight);
  json += "  \"arrivals\": \"poisson\",\n";
  json += StrFormat("  \"offered\": %lld,\n",
                    static_cast<long long>(stats->offered));
  json += StrFormat("  \"admitted\": %lld,\n",
                    static_cast<long long>(stats->admitted));
  json += StrFormat("  \"rejected\": %lld,\n",
                    static_cast<long long>(stats->rejected));
  json += StrFormat("  \"driver_cancelled\": %lld,\n",
                    static_cast<long long>(stats->cancelled));
  json += StrFormat("  \"submissions_per_s\": %.1f,\n", submissions_per_s);
  json += StrFormat("  \"cancellation_frees_slots\": %s,\n",
                    cancel_frees_slots ? "true" : "false");
  json += "  \"tenants\": [\n" + tenants_json + "  ]\n}\n";
  TB_CHECK_OK(obs::ValidateJson(json));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  TB_CHECK(f != nullptr) << "cannot open " << out_path;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace taskbench::bench

int main(int argc, char** argv) { return taskbench::bench::Main(argc, argv); }
