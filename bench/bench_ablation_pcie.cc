// Ablation: bus interconnect generation. Section 5.5.2 cites faster
// buses (NVLink, CXL) as hardware mitigations for the CPU-GPU
// communication bottleneck. This ablation swaps the PCIe 3.0 model
// for an NVLink-class bus and re-evaluates the Figure 8 task types:
// the low-complexity add_func — hopeless on PCIe — becomes
// GPU-competitive, while matmul_func barely moves (compute bound).

#include "bench_common.h"

#include "algos/matmul.h"
#include "perf/cost_model.h"

namespace tb = taskbench;

namespace {

std::string UserSpeedup(const tb::perf::CostModel& model,
                        const tb::perf::TaskCost& cost) {
  if (!model.CheckGpuFit(cost).ok()) return "GPU OOM";
  const double cpu =
      model.CpuParallelFraction(cost) + model.SerialFraction(cost);
  const double gpu = model.GpuParallelFraction(cost) +
                     model.SerialFraction(cost) + model.CpuGpuComm(cost);
  return tb::analysis::FormatSpeedup(tb::analysis::SignedSpeedup(cpu, gpu));
}

}  // namespace

int main() {
  tb::bench::PrintHeader(
      "Ablation: bus interconnect",
      "PCIe 3.0 (pageable) vs NVLink-class CPU-GPU bus");

  tb::hw::ClusterSpec pcie_cluster = tb::hw::MinotauroCluster();
  tb::hw::ClusterSpec nvlink_cluster = tb::hw::MinotauroCluster();
  nvlink_cluster.bus = tb::hw::NvlinkClass();
  const tb::perf::CostModel pcie(pcie_cluster);
  const tb::perf::CostModel nvlink(nvlink_cluster);

  tb::analysis::TextTable table({"block", "task", "PCIe 3.0 spdup",
                                 "NVLink-class spdup"});
  for (int64_t g : {16, 8, 4, 2}) {
    const int64_t n = 32768 / g;
    const auto mm = tb::algos::MatmulFuncCost(n, n, n, false);
    const auto add = tb::algos::AddFuncCost(n, n);
    const std::string block = tb::HumanBytes(mm.input_bytes / 2);
    table.AddRow({block, "matmul_func", UserSpeedup(pcie, mm),
                  UserSpeedup(nvlink, mm)});
    table.AddRow({block, "add_func", UserSpeedup(pcie, add),
                  UserSpeedup(nvlink, add)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "A ~24x faster bus rewrites the placement decision for the\n"
      "low-complexity task: add_func flips from clearly GPU-losing to\n"
      "GPU-winning, while compute-bound matmul_func gains only ~15-30%%.\n"
      "Exactly the Section 5.5.2 point: the interconnect mitigates the\n"
      "CPU-GPU communication factor, but the multi-factor trade-off (and\n"
      "the OOM wall) remains.\n");
  return 0;
}
