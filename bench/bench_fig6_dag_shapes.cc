// Figure 6: DAG shapes of the two algorithm families. K-means (grid
// 4x1, 3 iterations) produces a narrow, deep DAG — low task
// parallelism, high dependency; Matmul (grid 4x4) produces a wide,
// shallow DAG — high task parallelism. Prints structural metrics and
// the Graphviz DOT of both DAGs.

#include "bench_common.h"

#include "algos/kmeans.h"
#include "algos/matmul.h"

namespace tb = taskbench;

int main() {
  tb::bench::PrintHeader("Figure 6",
                         "DAG shapes of K-means (4x1) and Matmul (4x4)");

  // K-means: 4 row blocks, 3 iterations (the paper's Figure 6a).
  auto kspec = tb::data::GridSpec::CreateFromGridDim(
      tb::data::PaperDatasets::KMeans10GB(), 4, 1);
  TB_CHECK_OK(kspec.status());
  tb::algos::KMeansOptions koptions;
  koptions.iterations = 3;
  auto kmeans = tb::algos::BuildKMeans(*kspec, koptions);
  TB_CHECK_OK(kmeans.status());

  // Matmul: 4x4 grid (the paper's Figure 6b).
  auto mspec = tb::data::GridSpec::CreateFromGridDim(
      tb::data::PaperDatasets::Matmul8GB(), 4, 4);
  TB_CHECK_OK(mspec.status());
  auto matmul = tb::algos::BuildMatmul(*mspec, tb::algos::MatmulOptions{});
  TB_CHECK_OK(matmul.status());

  tb::analysis::TextTable table(
      {"workflow", "tasks", "max width", "max height", "shape"});
  table.AddRow({"K-means 4x1, 3 iters",
                tb::StrFormat("%lld", static_cast<long long>(
                                          kmeans->graph.num_tasks())),
                tb::StrFormat("%lld", static_cast<long long>(
                                          kmeans->graph.MaxWidth())),
                tb::StrFormat("%lld", static_cast<long long>(
                                          kmeans->graph.MaxHeight())),
                "narrow & deep"});
  table.AddRow({"Matmul 4x4",
                tb::StrFormat("%lld", static_cast<long long>(
                                          matmul->graph.num_tasks())),
                tb::StrFormat("%lld", static_cast<long long>(
                                          matmul->graph.MaxWidth())),
                tb::StrFormat("%lld", static_cast<long long>(
                                          matmul->graph.MaxHeight())),
                "wide & shallow"});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("--- K-means DAG (DOT) ---\n%s\n",
              kmeans->graph.ToDot().c_str());
  std::printf("--- Matmul DAG (DOT, first 40 lines) ---\n");
  const std::string dot = matmul->graph.ToDot();
  int lines = 0;
  size_t pos = 0;
  while (pos < dot.size() && lines < 40) {
    const size_t next = dot.find('\n', pos);
    std::printf("%s\n", dot.substr(pos, next - pos).c_str());
    pos = next + 1;
    ++lines;
  }
  std::printf("... (%lld tasks total; run examples/matmul_workflow --dot "
              "for the full graph)\n",
              static_cast<long long>(matmul->graph.num_tasks()));
  return 0;
}
