// Table 1: factors and parameters affecting task-based workflow
// performance, organized by dimension, with the system functions each
// factor affects. Rendered from the library's factor model and
// cross-checked against the experiment framework: every factor in
// the table is a sweepable axis of analysis::ExperimentConfig.

#include "bench_common.h"

#include "analysis/factor_space.h"

namespace tb = taskbench;

int main() {
  tb::bench::PrintHeader("Table 1", "factors and parameters");

  tb::analysis::TextTable table(
      {"dimension", "factor", "parameters", "system functions affected"});
  table.AddRow({"Task algorithm", "a) block dimension",
                "block size, grid dimension, DAG shape",
                "device speedup, storage I/O, network I/O, CPU-GPU "
                "transfer, scheduling"});
  table.AddRow({"Task algorithm", "b) computational complexity", "-",
                "device speedup"});
  table.AddRow({"Task algorithm", "c) parallel fraction", "-",
                "device speedup"});
  table.AddRow({"Task algorithm", "d) algorithm-specific parameter", "-",
                "device speedup"});
  table.AddRow({"Dataset", "e) dataset dimension", "dataset size",
                "device speedup, storage I/O, network I/O, CPU-GPU "
                "transfer, scheduling"});
  table.AddRow({"Resources", "f) processor type (CPU or GPU)",
                "max #CPU cores per processor type", "device speedup"});
  table.AddRow({"Resources", "g) storage architecture", "-", "storage I/O"});
  table.AddRow({"System", "h) scheduling policy", "-",
                "network I/O, task scheduling"});
  std::printf("%s\n", table.ToString().c_str());

  // Demonstrate that every factor is sweepable: enumerate a tiny
  // full-factorial design across all eight axes.
  tb::analysis::FactorLists lists;
  lists.algorithms = {tb::analysis::Algorithm::kMatmul,     // complexity +
                      tb::analysis::Algorithm::kKMeans};    // parallel frac
  lists.datasets = {tb::data::PaperDatasets::Matmul128MB()};  // dataset dim
  lists.grids = {{1, 1}, {2, 1}};                             // block dim
  lists.clusters = {10, 100};  // algorithm-specific parameter
  lists.processors = {tb::Processor::kCpu, tb::Processor::kGpu};
  lists.storages = {tb::hw::StorageArchitecture::kLocalDisk,
                    tb::hw::StorageArchitecture::kSharedDisk};
  lists.policies = {tb::SchedulingPolicy::kTaskGenerationOrder,
                    tb::SchedulingPolicy::kDataLocality};
  const auto configs =
      tb::analysis::FullFactorial(lists, tb::analysis::ExperimentConfig());
  std::printf("full-factorial check: 2 algorithms x 1 dataset x 2 grids x "
              "2 params x 2 processors x 2 storages x 2 policies = %zu "
              "unique configs\n",
              configs.size());
  return 0;
}
