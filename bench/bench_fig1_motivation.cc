// Figure 1: performance of distributed K-means at different
// processing stages on CPUs and GPUs. The paper's motivating
// experiment: 10 GB dataset, 256 tasks, 128 CPU cores / 32 GPU
// devices. Reported values: parallel fraction speedup 5.69x, user
// code speedup 1.24x, parallel tasks speedup -1.20x (GPU slower).

#include "bench_common.h"

#include "algos/kmeans.h"
#include "perf/cost_model.h"

namespace tb = taskbench;
using tb::analysis::ExperimentConfig;

int main() {
  tb::bench::PrintHeader(
      "Figure 1", "distributed K-means stage speedups (GPU over CPU)");

  // Single-task stage metrics from the cost model (one 39 MB block,
  // 10 clusters), as in the paper's single-task bars.
  const tb::perf::CostModel model(tb::hw::MinotauroCluster());
  const int64_t rows_per_block = 12500000 / 256;
  const tb::perf::TaskCost cost =
      tb::algos::PartialSumCost(rows_per_block, 100, 10);

  const double pf_cpu = model.CpuParallelFraction(cost);
  const double pf_gpu = model.GpuParallelFraction(cost);
  const double serial = model.SerialFraction(cost);
  const double comm = model.CpuGpuComm(cost);
  const double user_cpu = serial + pf_cpu;
  const double user_gpu = serial + pf_gpu + comm;

  // Parallel tasks: full simulated runs (256 tasks, all resources).
  ExperimentConfig config;
  config.algorithm = tb::analysis::Algorithm::kKMeans;
  config.dataset = tb::data::PaperDatasets::KMeans10GB();
  config.grid_rows = 256;
  config.iterations = 1;
  config.processor = tb::Processor::kCpu;
  const auto cpu_run = tb::bench::MustRun(config);
  config.processor = tb::Processor::kGpu;
  const auto gpu_run = tb::bench::MustRun(config);
  TB_CHECK(!cpu_run.oom && !gpu_run.oom);

  tb::analysis::TextTable table(
      {"stage", "CPU time", "GPU time", "speedup", "paper"});
  table.AddRow({"parallel fraction (single task)", tb::HumanSeconds(pf_cpu),
                tb::HumanSeconds(pf_gpu),
                tb::analysis::FormatSpeedup(
                    tb::analysis::SignedSpeedup(pf_cpu, pf_gpu)),
                "5.69x"});
  table.AddRow({"task user code (single task)", tb::HumanSeconds(user_cpu),
                tb::HumanSeconds(user_gpu),
                tb::analysis::FormatSpeedup(
                    tb::analysis::SignedSpeedup(user_cpu, user_gpu)),
                "1.24x"});
  table.AddRow(
      {"parallel tasks (256 tasks)",
       tb::HumanSeconds(cpu_run.parallel_task_time),
       tb::HumanSeconds(gpu_run.parallel_task_time),
       tb::analysis::FormatSpeedup(tb::analysis::SignedSpeedup(
           cpu_run.parallel_task_time, gpu_run.parallel_task_time)),
       "-1.20x"});
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "Reading: thread parallelism gives GPUs a large win on the parallel\n"
      "fraction; the serial fraction and CPU-GPU communication shrink it at\n"
      "user-code level; and the 128-core vs 32-device gap in task\n"
      "parallelism turns it negative once tasks are distributed.\n");
  return 0;
}
