#include "storage/shm_arena.h"

#include <atomic>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "data/matrix.h"
#include "storage/serializer.h"

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace taskbench::storage {
namespace {

data::Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  data::Matrix m(rows, cols);
  Rng rng(seed);
  data::FillUniform(&m, &rng);
  return m;
}

TEST(ShmSegmentTest, CreateMapsZeroedMemory) {
  auto segment = ShmSegment::Create("test", 4096);
  ASSERT_TRUE(segment.ok()) << segment.status().ToString();
  ASSERT_TRUE(segment->valid());
  EXPECT_EQ(segment->bytes(), 4096u);
  for (uint64_t i = 0; i < segment->bytes(); ++i) {
    ASSERT_EQ(segment->base()[i], 0);
  }
  segment->base()[0] = 0xAB;  // writable
}

TEST(ShmSegmentTest, ZeroBytesRejected) {
  EXPECT_FALSE(ShmSegment::Create("test", 0).ok());
}

TEST(ShmSegmentTest, MoveTransfersOwnership) {
  auto segment = ShmSegment::Create("test", 4096);
  ASSERT_TRUE(segment.ok());
  ShmSegment moved = std::move(*segment);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(segment->valid());
}

TEST(ShmArenaTest, AllocationsAreAlignedAndDisjoint) {
  auto arena = ShmArena::Create("test", 1 << 16);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  auto a = arena->Allocate(100);
  auto b = arena->Allocate(1);
  auto c = arena->Allocate(64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*a % 64, 0u);
  EXPECT_EQ(*b % 64, 0u);
  EXPECT_EQ(*c % 64, 0u);
  // 100 rounds to 128, 1 to 64.
  EXPECT_EQ(*b - *a, 128u);
  EXPECT_EQ(*c - *b, 64u);
  EXPECT_GT(arena->used(), *c);
}

TEST(ShmArenaTest, ExhaustionIsResourceExhausted) {
  auto arena = ShmArena::Create("test", 256);
  ASSERT_TRUE(arena.ok());
  ASSERT_TRUE(arena->Allocate(128).ok());
  auto overflow = arena->Allocate(192);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(overflow.status().message().find("arena exhausted"),
            std::string::npos);
  // The failed reservation was backed out: small blocks still fit.
  EXPECT_TRUE(arena->Allocate(1).ok());
}

// Regression: Allocate used to fetch_add then fetch_sub on failure,
// transiently inflating the cursor — a concurrent small allocation
// that fit could spuriously see an exhausted arena, which workers
// escalate as fatal. The CAS loop never publishes an over-capacity
// cursor, so every small allocation below must succeed no matter how
// hard the failing thread hammers.
TEST(ShmArenaTest, FailingAllocationNeverStarvesConcurrentSmallOnes) {
  auto arena = ShmArena::Create("test", 1 << 16);  // 64 KiB
  ASSERT_TRUE(arena.ok());
  std::atomic<bool> stop{false};
  std::thread bully([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto huge = arena->Allocate(1 << 20);  // can never fit
      EXPECT_FALSE(huge.ok());
    }
  });
  for (int i = 0; i < 512; ++i) {  // 512 x 64 B = 32 KiB, all fit
    auto small = arena->Allocate(64);
    EXPECT_TRUE(small.ok()) << small.status().ToString();
  }
  stop.store(true, std::memory_order_relaxed);
  bully.join();
}

TEST(ShmArenaTest, OversizedBlockReportedDistinctly) {
  auto arena = ShmArena::Create("test", 256);
  ASSERT_TRUE(arena.ok());
  auto huge = arena->Allocate(1 << 20);
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(huge.status().message().find("exceeds the whole shm arena"),
            std::string::npos);
}

TEST(ShmArenaTest, SerializerRoundTripThroughArena) {
  auto arena = ShmArena::Create("test", 1 << 16);
  ASSERT_TRUE(arena.ok());
  const data::Matrix m = RandomMatrix(7, 5, /*seed=*/42);
  const uint64_t payload = Serializer::SerializedSize(m);
  auto offset = arena->Allocate(8 + payload);
  ASSERT_TRUE(offset.ok());
  uint8_t* record = arena->At(*offset);
  std::memcpy(record, &payload, sizeof(payload));
  Serializer::SerializeTo(m, record + 8);

  auto back = Serializer::Deserialize(record + 8, payload);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == m);  // bit-exact: the wire format is lossless
}

TEST(ShmArenaTest, SerializeToMatchesVectorSerialize) {
  const data::Matrix m = RandomMatrix(4, 9, /*seed=*/7);
  std::vector<uint8_t> expected;
  Serializer::Serialize(m, &expected);
  std::vector<uint8_t> got(expected.size(), 0xFF);
  Serializer::SerializeTo(m, got.data());
  EXPECT_EQ(got, expected);
}

#if !defined(_WIN32)
TEST(ShmArenaTest, BlockWrittenInChildProcessReadsBackInParent) {
  auto arena = ShmArena::Create("test", 1 << 16);
  ASSERT_TRUE(arena.ok());
  // The directory slot lives in shared memory too, exactly like the
  // executor's block directory.
  auto dir_segment = ShmSegment::Create("dir", 64);
  ASSERT_TRUE(dir_segment.ok());
  auto* directory = new (dir_segment->base()) std::atomic<uint64_t>(0);

  const data::Matrix m = RandomMatrix(6, 6, /*seed=*/11);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: allocate (bumping the shared cursor), serialize, publish.
    const uint64_t payload = Serializer::SerializedSize(m);
    auto offset = arena->Allocate(8 + payload);
    if (!offset.ok()) _exit(1);
    uint8_t* record = arena->At(*offset);
    std::memcpy(record, &payload, sizeof(payload));
    Serializer::SerializeTo(m, record + 8);
    directory->store(*offset + 1, std::memory_order_release);
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  const uint64_t tag = directory->load(std::memory_order_acquire);
  ASSERT_NE(tag, 0u);
  const uint8_t* record = arena->At(tag - 1);
  uint64_t payload = 0;
  std::memcpy(&payload, record, sizeof(payload));
  auto back = Serializer::Deserialize(record + 8, payload);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == m);
  // The child's bump advanced the shared cursor the parent sees.
  EXPECT_GE(arena->used(), 8 + payload);
}
#endif  // !_WIN32

}  // namespace
}  // namespace taskbench::storage
