#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace taskbench {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad block size");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad block size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad block size");
}

TEST(StatusTest, OutOfMemoryPredicate) {
  EXPECT_TRUE(Status::OutOfMemory("gpu full").IsOutOfMemory());
  EXPECT_FALSE(Status::Internal("x").IsOutOfMemory());
}

TEST(StatusTest, NotFoundPredicate) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::OK().IsNotFound());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::NotFound("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfMemory), "OutOfMemory");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    TB_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(StatusTest, WithContextPrependsAndKeepsCode) {
  const Status inner = Status::NotFound("block 7 missing");
  const Status outer = inner.WithContext("remote read");
  EXPECT_EQ(outer.code(), StatusCode::kNotFound);
  EXPECT_EQ(outer.message(), "remote read: block 7 missing");
  // The original is untouched (const& overload copies).
  EXPECT_EQ(inner.message(), "block 7 missing");
}

TEST(StatusTest, WithContextChains) {
  const Status status = Status::Internal("disk timeout")
                            .WithContext("task 12 (partial_sum)")
                            .WithContext("attempt 3");
  EXPECT_EQ(status.message(),
            "attempt 3: task 12 (partial_sum): disk timeout");
}

TEST(StatusTest, WithContextOnOkIsStillOk) {
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto produce = []() -> Result<int> { return 5; };
  auto consume = [&]() -> Result<int> {
    TB_ASSIGN_OR_RETURN(const int v, produce());
    return v * 2;
  };
  ASSERT_TRUE(consume().ok());
  EXPECT_EQ(*consume(), 10);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto produce = []() -> Result<int> { return Status::Internal("bad"); };
  auto consume = [&]() -> Result<int> {
    TB_ASSIGN_OR_RETURN(const int v, produce());
    return v;
  };
  EXPECT_FALSE(consume().ok());
  EXPECT_EQ(consume().status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r = std::string("payload");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace taskbench
