#include "hw/topology.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace taskbench::hw {
namespace {

namespace fs = std::filesystem;

std::vector<int> MustParse(const std::string& text) {
  auto cpus = ParseCpuList(text);
  EXPECT_TRUE(cpus.ok()) << cpus.status().ToString();
  return cpus.ok() ? *cpus : std::vector<int>{};
}

TEST(ParseCpuListTest, SingleCpu) {
  EXPECT_EQ(MustParse("0"), std::vector<int>({0}));
  EXPECT_EQ(MustParse("17"), std::vector<int>({17}));
}

TEST(ParseCpuListTest, Range) {
  EXPECT_EQ(MustParse("0-3"), std::vector<int>({0, 1, 2, 3}));
}

TEST(ParseCpuListTest, MixedEntriesAndRanges) {
  EXPECT_EQ(MustParse("0-2,8,10-11"), std::vector<int>({0, 1, 2, 8, 10, 11}));
}

TEST(ParseCpuListTest, TrailingNewlineAndSpaces) {
  // sysfs cpulist files end with a newline.
  EXPECT_EQ(MustParse("4-5\n"), std::vector<int>({4, 5}));
  EXPECT_EQ(MustParse("  1 , 3 \n"), std::vector<int>({1, 3}));
}

TEST(ParseCpuListTest, EmptyTextIsEmptyList) {
  EXPECT_TRUE(MustParse("").empty());
  EXPECT_TRUE(MustParse(" \n").empty());
}

TEST(ParseCpuListTest, SortsAndDeduplicates) {
  EXPECT_EQ(MustParse("3,1,2-3,1"), std::vector<int>({1, 2, 3}));
}

TEST(ParseCpuListTest, RejectsMalformedEntries) {
  EXPECT_FALSE(ParseCpuList("a").ok());
  EXPECT_FALSE(ParseCpuList("1,,2").ok());
  EXPECT_FALSE(ParseCpuList("-1").ok());    // parses as a bad range
  EXPECT_FALSE(ParseCpuList("5-2").ok());   // reversed range
  EXPECT_FALSE(ParseCpuList("0-999999").ok());  // implausibly wide
}

class ReadTopologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            (std::string("topo_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(root_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void WriteNode(int node, const std::string& cpulist) {
    const fs::path dir = root_ / ("node" + std::to_string(node));
    fs::create_directories(dir);
    std::ofstream out(dir / "cpulist");
    out << cpulist;
  }

  fs::path root_;
};

TEST_F(ReadTopologyTest, TwoDomains) {
  WriteNode(0, "0-3\n");
  WriteNode(1, "4-7\n");
  auto topo = ReadTopology(root_.string());
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  ASSERT_EQ(topo->num_domains(), 2);
  EXPECT_EQ(topo->domains[0].id, 0);
  EXPECT_EQ(topo->domains[0].cpus, std::vector<int>({0, 1, 2, 3}));
  EXPECT_EQ(topo->domains[1].cpus, std::vector<int>({4, 5, 6, 7}));
  EXPECT_EQ(topo->total_cpus(), 8);
}

TEST_F(ReadTopologyTest, SkipsCpuLessMemoryNodes) {
  WriteNode(0, "0-1\n");
  WriteNode(1, "\n");  // CXL-style memory-only node
  WriteNode(2, "2-3\n");
  auto topo = ReadTopology(root_.string());
  ASSERT_TRUE(topo.ok());
  ASSERT_EQ(topo->num_domains(), 2);
  EXPECT_EQ(topo->domains[0].id, 0);
  EXPECT_EQ(topo->domains[1].id, 2);
}

TEST_F(ReadTopologyTest, ProbeStopsAtFirstGap) {
  WriteNode(0, "0\n");
  WriteNode(2, "1\n");  // node1 missing: probe ends after node0
  auto topo = ReadTopology(root_.string());
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->num_domains(), 1);
}

TEST_F(ReadTopologyTest, NoNodesIsNotFound) {
  auto topo = ReadTopology(root_.string());
  ASSERT_FALSE(topo.ok());
  EXPECT_TRUE(topo.status().IsNotFound());
}

TEST_F(ReadTopologyTest, UnparsableCpulistFails) {
  WriteNode(0, "bogus\n");
  EXPECT_FALSE(ReadTopology(root_.string()).ok());
}

TEST(TopologyTest, DomainOfWorkerStripesContiguously) {
  Topology topo;
  topo.domains.push_back(NumaDomain{0, {0, 1}});
  topo.domains.push_back(NumaDomain{1, {2, 3}});
  // 4 workers over 2 domains: [0, 0, 1, 1].
  EXPECT_EQ(topo.domain_of_worker(0, 4), 0);
  EXPECT_EQ(topo.domain_of_worker(1, 4), 0);
  EXPECT_EQ(topo.domain_of_worker(2, 4), 1);
  EXPECT_EQ(topo.domain_of_worker(3, 4), 1);
  // Odd worker counts keep every domain within one worker of even.
  EXPECT_EQ(topo.domain_of_worker(0, 3), 0);
  EXPECT_EQ(topo.domain_of_worker(1, 3), 0);
  EXPECT_EQ(topo.domain_of_worker(2, 3), 1);
  // More workers than cpus still maps into range.
  EXPECT_EQ(topo.domain_of_worker(7, 8), 1);
  // Fewer workers than domains: each lands on its own domain.
  EXPECT_EQ(topo.domain_of_worker(0, 1), 0);
}

TEST(TopologyTest, SingleDomainFallback) {
  const Topology topo = SingleDomainTopology();
  ASSERT_EQ(topo.num_domains(), 1);
  EXPECT_GE(topo.total_cpus(), 1);
  EXPECT_EQ(topo.domain_of_worker(5, 8), 0);
}

TEST(TopologyTest, DetectTopologyNeverEmpty) {
  const Topology& topo = DetectTopology();
  EXPECT_GE(topo.num_domains(), 1);
  EXPECT_GE(topo.total_cpus(), 1);
  EXPECT_FALSE(topo.Describe().empty());
}

TEST(TopologyTest, PinToEmptyListIsOk) {
  EXPECT_TRUE(PinCurrentThreadToCpus({}).ok());
}

TEST(TopologyTest, PinToOwnCpusSucceedsOnLinux) {
#if defined(__linux__)
  // Pinning to every detected CPU is always admissible.
  EXPECT_TRUE(PinCurrentThreadToCpus(DetectTopology().domains[0].cpus).ok());
#else
  GTEST_SKIP() << "no sched_setaffinity";
#endif
}

}  // namespace
}  // namespace taskbench::hw
