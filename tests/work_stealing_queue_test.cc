// Chase–Lev deque edge cases: owner LIFO vs thief FIFO order,
// empty-steal and empty-pop, index wraparound far past the buffer
// capacity, growth under load, the one-element owner-vs-thief race,
// and multi-thread conservation (every pushed value surfaces exactly
// once). The concurrent cases are the payload of the TSan CI job —
// they hammer the top_/bottom_ protocol from several threads.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/work_stealing_queue.h"

namespace taskbench::runtime {
namespace {

TEST(WorkStealingQueueTest, PopIsLifoStealIsFifo) {
  WorkStealingQueue<int> q;
  for (int i = 0; i < 8; ++i) q.Push(i);
  int v = -1;
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 7);  // owner takes the newest
  ASSERT_TRUE(q.Steal(&v));
  EXPECT_EQ(v, 0);  // thief takes the oldest
  ASSERT_TRUE(q.Steal(&v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 6);
}

TEST(WorkStealingQueueTest, EmptyPopAndStealFail) {
  WorkStealingQueue<int> q;
  int v = 123;
  EXPECT_FALSE(q.Pop(&v));
  EXPECT_FALSE(q.Steal(&v));
  EXPECT_EQ(v, 123);  // failed ops never write the out param
  q.Push(42);
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 42);
  // Draining returns the deque to a state where both still fail.
  EXPECT_FALSE(q.Pop(&v));
  EXPECT_FALSE(q.Steal(&v));
}

TEST(WorkStealingQueueTest, SingleSlotWraparound) {
  // Alternating push/pop advances top_/bottom_ far beyond the buffer
  // capacity with at most one live element: every index maps through
  // the mask, so this sweeps the wraparound boundary many times.
  WorkStealingQueue<int> q(1);  // rounds up to the 64-slot minimum
  for (int i = 0; i < 1000; ++i) {
    q.Push(i);
    int v = -1;
    if (i % 2 == 0) {
      ASSERT_TRUE(q.Pop(&v)) << "iteration " << i;
    } else {
      ASSERT_TRUE(q.Steal(&v)) << "iteration " << i;
    }
    EXPECT_EQ(v, i);
    EXPECT_EQ(q.ApproxSize(), 0);
  }
}

TEST(WorkStealingQueueTest, GrowthPreservesEveryElement) {
  WorkStealingQueue<int> q(1);
  const int n = 500;  // forces several doublings past the 64 minimum
  for (int i = 0; i < n; ++i) q.Push(i);
  EXPECT_EQ(q.ApproxSize(), n);
  // Steal half (FIFO: 0..249), pop half (LIFO: 499..250).
  int v = -1;
  for (int i = 0; i < n / 2; ++i) {
    ASSERT_TRUE(q.Steal(&v));
    EXPECT_EQ(v, i);
  }
  for (int i = n - 1; i >= n / 2; --i) {
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.Pop(&v));
}

TEST(WorkStealingQueueTest, MoveBeforeConcurrencyCarriesContents) {
  // The executor move-constructs queues into a vector before any
  // worker starts; the moved-to queue must own the elements.
  std::vector<WorkStealingQueue<int>> queues;
  WorkStealingQueue<int> q;
  q.Push(1);
  q.Push(2);
  queues.push_back(std::move(q));
  int v = -1;
  ASSERT_TRUE(queues[0].Pop(&v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(queues[0].Steal(&v));
  EXPECT_EQ(v, 1);
}

// Thieves hammer an empty deque while the owner occasionally feeds
// single elements: exercises the t >= b early-out and the CAS-failure
// path without ever having more than one element in flight.
TEST(WorkStealingQueueTest, EmptyStealRace) {
  WorkStealingQueue<int> q;
  constexpr int kItems = 2000;
  constexpr int kThieves = 3;
  std::atomic<bool> done{false};
  std::atomic<int64_t> stolen_sum{0};
  std::atomic<int64_t> stolen_count{0};
  std::vector<std::thread> thieves;
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      int v = -1;
      while (!done.load(std::memory_order_acquire)) {
        if (q.Steal(&v)) {
          stolen_sum.fetch_add(v, std::memory_order_relaxed);
          stolen_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Final drain so nothing is stranded.
      while (q.Steal(&v)) {
        stolen_sum.fetch_add(v, std::memory_order_relaxed);
        stolen_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  int64_t popped_sum = 0;
  int64_t popped_count = 0;
  for (int i = 1; i <= kItems; ++i) {
    q.Push(i);
    // Every few pushes the owner tries to take its own work back,
    // racing the thieves for the single element.
    if (i % 3 == 0) {
      int v = -1;
      if (q.Pop(&v)) {
        popped_sum += v;
        ++popped_count;
      }
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();
  // Conservation: each value surfaced exactly once, nowhere twice.
  EXPECT_EQ(popped_count + stolen_count.load(), kItems);
  EXPECT_EQ(popped_sum + stolen_sum.load(),
            static_cast<int64_t>(kItems) * (kItems + 1) / 2);
}

// Full producer/consumer storm: owner pushes and pops, several
// thieves steal, every value must surface exactly once. Runs long
// enough to cross multiple growth and wraparound boundaries.
TEST(WorkStealingQueueTest, ConcurrentConservation) {
  WorkStealingQueue<int64_t> q(1);
  constexpr int64_t kItems = 20000;
  constexpr int kThieves = 4;
  std::atomic<bool> done{false};
  std::vector<std::vector<int64_t>> per_thief(kThieves);
  std::vector<std::thread> thieves;
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&, i] {
      int64_t v = -1;
      while (!done.load(std::memory_order_acquire)) {
        if (q.Steal(&v)) per_thief[static_cast<size_t>(i)].push_back(v);
      }
      while (q.Steal(&v)) per_thief[static_cast<size_t>(i)].push_back(v);
    });
  }
  std::vector<int64_t> owner_got;
  for (int64_t i = 0; i < kItems; ++i) {
    q.Push(i);
    if (i % 5 == 4) {
      int64_t v = -1;
      if (q.Pop(&v)) owner_got.push_back(v);
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();

  std::vector<int64_t> all = owner_got;
  for (const auto& got : per_thief) {
    all.insert(all.end(), got.begin(), got.end());
  }
  ASSERT_EQ(all.size(), static_cast<size_t>(kItems));
  std::sort(all.begin(), all.end());
  for (int64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(all[static_cast<size_t>(i)], i) << "lost or duplicated";
  }
  // Thieves see each victim's values in FIFO order (per-thief
  // subsequences of steals are increasing).
  for (const auto& got : per_thief) {
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  }
}

}  // namespace
}  // namespace taskbench::runtime
