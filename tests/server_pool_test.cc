#include "sim/server_pool.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace taskbench::sim {
namespace {

TEST(ServerPoolTest, GrantsFreeServerImmediately) {
  Simulator sim;
  ServerPool pool(&sim, 2, "cores");
  int granted = -1;
  pool.Acquire([&](int server) { granted = server; });
  sim.Run();
  EXPECT_EQ(granted, 0);
  EXPECT_EQ(pool.num_busy(), 1);
  EXPECT_EQ(pool.num_free(), 1);
}

TEST(ServerPoolTest, QueuesWhenFull) {
  Simulator sim;
  ServerPool pool(&sim, 1, "gpu");
  std::vector<int> grants;
  pool.Acquire([&](int s) { grants.push_back(s); });
  pool.Acquire([&](int s) { grants.push_back(s); });
  sim.Run();
  EXPECT_EQ(grants.size(), 1u);
  EXPECT_EQ(pool.queue_length(), 1u);

  pool.Release(0);
  sim.Run();
  EXPECT_EQ(grants.size(), 2u);
  EXPECT_EQ(pool.queue_length(), 0u);
}

TEST(ServerPoolTest, FifoGrantOrder) {
  Simulator sim;
  ServerPool pool(&sim, 1, "gpu");
  std::vector<int> order;
  pool.Acquire([&](int) { order.push_back(0); });
  for (int i = 1; i <= 3; ++i) {
    pool.Acquire([&, i](int) { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 3; ++i) {
    pool.Release(0);
    sim.Run();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ServerPoolTest, TracksBusyTime) {
  Simulator sim;
  ServerPool pool(&sim, 1, "core");
  pool.Acquire([&](int server) {
    sim.After(5.0, [&pool, server] { pool.Release(server); });
  });
  sim.Run();
  EXPECT_NEAR(pool.total_busy_time(), 5.0, 1e-9);
}

TEST(ServerPoolDeathTest, DoubleReleaseAborts) {
  Simulator sim;
  ServerPool pool(&sim, 1, "core");
  pool.Acquire([](int) {});
  sim.Run();
  pool.Release(0);
  EXPECT_DEATH(pool.Release(0), "double release");
}

TEST(ServerPoolTest, AllServersUsable) {
  Simulator sim;
  ServerPool pool(&sim, 4, "cores");
  std::vector<int> grants;
  for (int i = 0; i < 4; ++i) {
    pool.Acquire([&](int s) { grants.push_back(s); });
  }
  sim.Run();
  ASSERT_EQ(grants.size(), 4u);
  EXPECT_EQ(pool.num_free(), 0);
  // Distinct servers granted.
  std::sort(grants.begin(), grants.end());
  EXPECT_EQ(grants, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace taskbench::sim
