#include "analysis/observations.h"

#include <gtest/gtest.h>

#include "analysis/report.h"

namespace taskbench::analysis {
namespace {

TEST(ObservationsTest, O1HoldsForFlatSpeedups) {
  const auto check = CheckO1({1.2, 1.25, 1.3, 1.22, 1.28});
  EXPECT_TRUE(check.holds);
  EXPECT_EQ(check.id, "O1");
  EXPECT_FALSE(check.evidence.empty());
}

TEST(ObservationsTest, O1FailsForScalingSpeedups) {
  const auto check = CheckO1({2, 6, 12, 18, 21});
  EXPECT_FALSE(check.holds);
}

TEST(ObservationsTest, O1InsufficientData) {
  EXPECT_FALSE(CheckO1({1.0}).holds);
}

TEST(ObservationsTest, O2HoldsForPlateauThenNegativeShape) {
  // Positive plateau once the GPU pool saturates, negative at the
  // finest granularity (the Figure 7b parallel-task shape).
  std::vector<TaskCountSpeedup> points{
      {2, 1.20}, {8, 1.20}, {32, 1.12}, {128, -1.37}, {256, -1.35}};
  const auto check = CheckO2(points, /*gpu_slots=*/32);
  EXPECT_TRUE(check.holds) << check.evidence;
}

TEST(ObservationsTest, O2FailsWhenFineGrainWins) {
  std::vector<TaskCountSpeedup> points{
      {2, 0.5}, {32, 1.0}, {256, 3.0}};
  EXPECT_FALSE(CheckO2(points, 32).holds);
}

TEST(ObservationsTest, O2FailsWhenPlateauNegative) {
  std::vector<TaskCountSpeedup> points{
      {2, 1.5}, {32, -1.2}, {256, -1.5}};
  EXPECT_FALSE(CheckO2(points, 32).holds);
}

TEST(ObservationsTest, O2FailsWhenCoarseDwarfsPlateau) {
  std::vector<TaskCountSpeedup> points{
      {2, 12.0}, {32, 1.1}, {256, -1.3}};
  EXPECT_FALSE(CheckO2(points, 32).holds);
}

TEST(ObservationsTest, O3HoldsForFlatLowComplexity) {
  const auto check = CheckO3({-1.2, -1.3, -1.25, -1.2, -1.15});
  EXPECT_TRUE(check.holds);
}

TEST(ObservationsTest, O3FailsForScaling) {
  const auto check = CheckO3({1.0, 2.5, 5.0, 9.0});
  EXPECT_FALSE(check.holds);
}

TEST(ObservationsTest, O4HoldsForClusterScaling) {
  const auto check = CheckO4({1.24, 2.8, 7.5});
  EXPECT_TRUE(check.holds);
}

TEST(ObservationsTest, O4FailsWhenNotMonotone) {
  EXPECT_FALSE(CheckO4({1.24, 3.1, 2.0}).holds);
  EXPECT_FALSE(CheckO4({1.24, 1.3, 1.35}).holds);  // monotone but weak
}

TEST(ObservationsTest, MeanRelativeShiftBasics) {
  EXPECT_DOUBLE_EQ(MeanRelativeShift({1, 2}, {1, 2}), 0.0);
  EXPECT_NEAR(MeanRelativeShift({1}, {2}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(MeanRelativeShift({1, 2}, {1}), 0.0);  // mismatch: 0
}

TEST(ObservationsTest, O5HoldsForInsensitiveLocalDisk) {
  PolicySensitivityInput local;
  local.cpu_gen_order = {100, 200, 300};
  local.cpu_locality = {102, 198, 305};
  local.gpu_gen_order = {150, 250, 350};
  local.gpu_locality = {151, 255, 345};
  EXPECT_TRUE(CheckO5(local).holds);
}

TEST(ObservationsTest, O5FailsForSensitiveLocalDisk) {
  PolicySensitivityInput local;
  local.cpu_gen_order = {100, 200};
  local.cpu_locality = {160, 350};
  local.gpu_gen_order = {100, 200};
  local.gpu_locality = {100, 200};
  EXPECT_FALSE(CheckO5(local).holds);
}

TEST(ObservationsTest, O6ComparesSharedVsLocal) {
  PolicySensitivityInput local;
  local.cpu_gen_order = {100, 200};
  local.cpu_locality = {101, 202};
  local.gpu_gen_order = {150, 250};
  local.gpu_locality = {149, 251};
  PolicySensitivityInput shared = local;
  shared.cpu_locality = {130, 260};
  EXPECT_TRUE(CheckO6(local, shared).holds);
  EXPECT_FALSE(CheckO6(shared, local).holds);
}

TEST(ReportTest, TextTableAligns) {
  TextTable table({"block", "cpu", "gpu"});
  table.AddRow({"32", "1.0", "2.0"});
  table.AddRow({"2048", "10.0", "3.5"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("block"), std::string::npos);
  EXPECT_NE(rendered.find("2048"), std::string::npos);
  EXPECT_NE(rendered.find("---"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(ReportTest, TextTableHandlesRaggedRows) {
  TextTable table({"a", "b"});
  table.AddRow({"1"});
  table.AddRow({"1", "2", "3"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("3"), std::string::npos);
}

TEST(ReportTest, AsciiBarChartScales) {
  const std::string chart = AsciiBarChart({{"cpu", 2.0}, {"gpu", 1.0}}, 10);
  // cpu bar twice as long as gpu bar.
  EXPECT_NE(chart.find("##########"), std::string::npos);
  EXPECT_NE(chart.find("#####"), std::string::npos);
}

TEST(ReportTest, FormatSpeedupMatchesPaperStyle) {
  EXPECT_EQ(FormatSpeedup(5.69), "5.69x");
  EXPECT_EQ(FormatSpeedup(-1.2), "-1.20x");
}

TEST(ReportTest, AsciiGanttRendersLanes) {
  runtime::RunReport report;
  runtime::TaskRecord a;
  a.task = 0;
  a.type = "matmul_func";
  a.node = 0;
  a.start = 0.0;
  a.end = 1.0;
  runtime::TaskRecord b = a;
  b.task = 1;
  b.type = "add_func";
  b.start = 1.0;
  b.end = 2.0;
  runtime::TaskRecord c = a;  // overlaps a -> second lane on node 0
  c.task = 2;
  c.type = "matmul_func";
  report.records = {a, b, c};
  report.makespan = 2.0;
  const std::string gantt = AsciiGantt(report, 20);
  // Two lanes on node 0.
  EXPECT_NE(gantt.find("0:0"), std::string::npos);
  EXPECT_NE(gantt.find("0:1"), std::string::npos);
  // First halves show 'm', the later half of lane 0 shows 'a'.
  EXPECT_NE(gantt.find('m'), std::string::npos);
  EXPECT_NE(gantt.find('a'), std::string::npos);
  EXPECT_NE(gantt.find('.'), std::string::npos);
}

TEST(ReportTest, AsciiGanttEmptyRun) {
  runtime::RunReport report;
  EXPECT_EQ(AsciiGantt(report), "(empty run)\n");
}

TEST(ReportTest, AsciiGanttRowCap) {
  runtime::RunReport report;
  for (int i = 0; i < 10; ++i) {
    runtime::TaskRecord rec;
    rec.task = i;
    rec.type = "t";
    rec.node = i;  // one lane per node
    rec.start = 0;
    rec.end = 1;
    report.records.push_back(rec);
  }
  report.makespan = 1.0;
  const std::string gantt = AsciiGantt(report, 10, /*max_rows=*/3);
  EXPECT_NE(gantt.find("more lanes"), std::string::npos);
}

}  // namespace
}  // namespace taskbench::analysis
