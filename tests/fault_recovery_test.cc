// Fault-injection and recovery tests for the simulated executor:
// deterministic replay of seeded fault plans, node-crash recovery
// through lineage re-materialization, retry exhaustion surfacing as a
// clean Status (never a hang), and zero-fault bit-identity.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "common/status.h"
#include "data/generators.h"
#include "hw/cluster.h"
#include "runtime/fault.h"
#include "runtime/metrics.h"

namespace taskbench::analysis {
namespace {

using runtime::FaultEvent;
using runtime::FaultKind;
using runtime::FaultPlan;

ExperimentConfig SmallKMeans(Processor proc = Processor::kCpu,
                             int64_t grid = 32) {
  ExperimentConfig config;
  config.algorithm = Algorithm::kKMeans;
  config.dataset = data::PaperDatasets::KMeans100MB();
  config.grid_rows = grid;
  config.iterations = 2;
  config.clusters = 10;
  config.processor = proc;
  return config;
}

double FaultFreeMakespan(ExperimentConfig config) {
  config.run.faults = FaultPlan{};
  auto result = RunExperiment(config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->oom);
  return result->makespan;
}

FaultEvent Crash(double time, int node) {
  FaultEvent e;
  e.kind = FaultKind::kNodeCrash;
  e.time = time;
  e.node = node;
  return e;
}

TEST(FaultRecoveryTest, NodeCrashCompletesOnAllSchedulerStorageCombos) {
  for (hw::StorageArchitecture storage :
       {hw::StorageArchitecture::kLocalDisk,
        hw::StorageArchitecture::kSharedDisk}) {
    for (SchedulingPolicy policy :
         {SchedulingPolicy::kTaskGenerationOrder,
          SchedulingPolicy::kDataLocality}) {
      ExperimentConfig config = SmallKMeans();
      config.run.storage = storage;
      config.run.policy = policy;
      const double baseline = FaultFreeMakespan(config);

      // One node dies halfway through the fault-free schedule.
      config.run.faults.events.push_back(Crash(baseline / 2, 1));
      config.run.max_retries = 5;
      config.run.retry_backoff_s = 1e-3;
      auto result = RunExperiment(config);
      ASSERT_TRUE(result.ok())
          << hw::ToString(storage) << "/" << ToString(policy) << ": "
          << result.status().ToString();
      EXPECT_FALSE(result->oom);
      const runtime::FaultStats& faults = result->report.faults;
      EXPECT_EQ(faults.faults_injected, 1);
      EXPECT_EQ(faults.dead_nodes, 1);
      // Completing on 7 nodes (plus redone work) can only be slower.
      EXPECT_GE(result->makespan, baseline - 1e-9)
          << hw::ToString(storage) << "/" << ToString(policy);
      // Survivor placement never lands on the dead node after the
      // crash.
      for (const runtime::TaskRecord& rec : result->report.records) {
        if (rec.start >= baseline / 2) EXPECT_NE(rec.node, 1);
      }
      if (storage == hw::StorageArchitecture::kLocalDisk) {
        // Local-disk: the dead node's blocks are lost and lineage
        // recovery re-runs their producers.
        EXPECT_GT(faults.lost_blocks, 0);
      }
    }
  }
}

TEST(FaultRecoveryTest, NodeCrashKillsInFlightWorkAndRetries) {
  // Grid 64 saturates node 0 mid-run, so the crash is guaranteed to
  // catch live attempts.
  ExperimentConfig config = SmallKMeans(Processor::kCpu, 64);
  config.run.storage = hw::StorageArchitecture::kLocalDisk;
  const double baseline = FaultFreeMakespan(config);
  config.run.faults.events.push_back(Crash(baseline / 2, 0));
  config.run.max_retries = 5;
  config.run.retry_backoff_s = 1e-3;
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Mid-run the cluster is saturated, so the crash kills live
  // attempts; each shows up in the attempt log and retry counter.
  const runtime::RunReport& report = result->report;
  EXPECT_GT(report.faults.retries, 0);
  EXPECT_FALSE(report.attempts.empty());
  bool saw_node_lost = false;
  for (const runtime::TaskAttempt& attempt : report.attempts) {
    if (attempt.outcome == runtime::AttemptOutcome::kNodeLost) {
      EXPECT_EQ(attempt.node, 0);
      saw_node_lost = true;
    }
  }
  EXPECT_TRUE(saw_node_lost);
  // The re-run attempts are visible in the final records too.
  bool saw_retried = false;
  for (const runtime::TaskRecord& rec : report.records) {
    if (rec.attempt > 1) saw_retried = true;
  }
  EXPECT_TRUE(saw_retried);
}

TEST(FaultRecoveryTest, TransientStorageFaultsAbsorbedByRetries) {
  ExperimentConfig config = SmallKMeans();
  config.run.storage = hw::StorageArchitecture::kLocalDisk;
  config.run.faults.storage_fault_rate = 0.02;
  config.run.faults.seed = 7;
  config.run.max_retries = 8;
  config.run.retry_backoff_s = 1e-3;
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const runtime::FaultStats& faults = result->report.faults;
  EXPECT_GT(faults.storage_faults, 0);
  EXPECT_GE(faults.retries, faults.storage_faults);
}

TEST(FaultRecoveryTest, RetriesExhaustedFailCleanlyNeverHang) {
  ExperimentConfig config = SmallKMeans(Processor::kCpu, 64);
  const double baseline = FaultFreeMakespan(config);
  config.run.faults.events.push_back(Crash(baseline / 2, 0));
  config.run.max_retries = 0;  // fail fast: first killed attempt ends it
  auto result = RunExperiment(config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("attempt"), std::string::npos);
}

TEST(FaultRecoveryTest, GpuLossDegradesButCompletes) {
  ExperimentConfig config = SmallKMeans(Processor::kGpu, 64);
  const double baseline = FaultFreeMakespan(config);
  FaultEvent loss;
  loss.kind = FaultKind::kGpuLoss;
  loss.time = baseline / 2;
  loss.node = 0;
  config.run.faults.events.push_back(loss);
  config.run.max_retries = 3;
  config.run.retry_backoff_s = 1e-3;
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->report.faults.faults_injected, 1);
  EXPECT_GE(result->makespan, baseline - 1e-9);
}

TEST(FaultRecoveryTest, SlowNodeStretchesMakespan) {
  ExperimentConfig config = SmallKMeans(Processor::kCpu, 64);
  const double baseline = FaultFreeMakespan(config);
  FaultEvent slow;
  slow.kind = FaultKind::kSlowNode;
  slow.time = 0;
  slow.node = 0;
  slow.factor = 4.0;
  config.run.faults.events.push_back(slow);
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->makespan, baseline);
  EXPECT_EQ(result->report.faults.faults_injected, 1);
  EXPECT_EQ(result->report.faults.dead_nodes, 0);
}

void ExpectReportsIdentical(const runtime::RunReport& a,
                            const runtime::RunReport& b) {
  EXPECT_EQ(a.makespan, b.makespan);  // bitwise: simulation determinism
  EXPECT_EQ(a.faults.faults_injected, b.faults.faults_injected);
  EXPECT_EQ(a.faults.storage_faults, b.faults.storage_faults);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.recomputed_tasks, b.faults.recomputed_tasks);
  EXPECT_EQ(a.faults.lost_blocks, b.faults.lost_blocks);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].task, b.records[i].task);
    EXPECT_EQ(a.records[i].node, b.records[i].node);
    EXPECT_EQ(a.records[i].start, b.records[i].start);
    EXPECT_EQ(a.records[i].end, b.records[i].end);
    EXPECT_EQ(a.records[i].attempt, b.records[i].attempt);
  }
  ASSERT_EQ(a.attempts.size(), b.attempts.size());
  for (size_t i = 0; i < a.attempts.size(); ++i) {
    EXPECT_EQ(a.attempts[i].task, b.attempts[i].task);
    EXPECT_EQ(a.attempts[i].attempt, b.attempts[i].attempt);
    EXPECT_EQ(a.attempts[i].node, b.attempts[i].node);
    EXPECT_EQ(a.attempts[i].start, b.attempts[i].start);
    EXPECT_EQ(a.attempts[i].end, b.attempts[i].end);
    EXPECT_EQ(a.attempts[i].outcome, b.attempts[i].outcome);
  }
}

TEST(FaultRecoveryTest, SameFaultPlanReplaysIdentically) {
  ExperimentConfig config = SmallKMeans();
  config.run.storage = hw::StorageArchitecture::kLocalDisk;
  const double baseline = FaultFreeMakespan(config);
  config.run.faults.events.push_back(Crash(baseline / 2, 3));
  config.run.faults.storage_fault_rate = 0.01;
  config.run.faults.seed = 1234;
  config.run.max_retries = 6;
  config.run.retry_backoff_s = 1e-3;

  auto first = RunExperiment(config);
  auto second = RunExperiment(config);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ExpectReportsIdentical(first->report, second->report);
}

TEST(FaultRecoveryTest, EmptyPlanIsBitIdenticalToNoPlan) {
  ExperimentConfig vanilla = SmallKMeans();
  ExperimentConfig with_knobs = SmallKMeans();
  // Retry budget armed but no plan: the fault machinery must stay
  // entirely out of the event stream and the report.
  with_knobs.run.max_retries = 5;
  with_knobs.run.faults.seed = 99;  // unused without a fault rate

  auto a = RunExperiment(vanilla);
  auto b = RunExperiment(with_knobs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->report.attempts.empty());
  EXPECT_TRUE(b->report.attempts.empty());
  EXPECT_FALSE(b->report.faults.any());
  ExpectReportsIdentical(a->report, b->report);
}

TEST(FaultPlanTest, ParsesTheCliGrammar) {
  auto plan = FaultPlan::Parse("crash@2.5:n1,slow@0:n0:x2,storage:p0.001:s7");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->events.size(), 2u);
  EXPECT_EQ(plan->events[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(plan->events[0].time, 2.5);
  EXPECT_EQ(plan->events[0].node, 1);
  EXPECT_EQ(plan->events[1].kind, FaultKind::kSlowNode);
  EXPECT_EQ(plan->events[1].factor, 2.0);
  EXPECT_EQ(plan->storage_fault_rate, 0.001);
  EXPECT_EQ(plan->seed, 7u);

  // Round trip through ToString.
  auto again = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(again.ok()) << plan->ToString();
  EXPECT_EQ(again->events.size(), plan->events.size());
  EXPECT_EQ(again->storage_fault_rate, plan->storage_fault_rate);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("crash@oops:n1").ok());
  EXPECT_FALSE(FaultPlan::Parse("crash@1.0").ok());
  EXPECT_FALSE(FaultPlan::Parse("gpuloss@1.0:x2").ok());
  EXPECT_FALSE(FaultPlan::Parse("storage:p1.5").ok());
  EXPECT_FALSE(FaultPlan::Parse("meteor@1.0:n1").ok());
}

TEST(FaultPlanTest, ValidateRejectsOutOfRangeNodes) {
  auto plan = FaultPlan::Parse("crash@1.0:n9");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->Validate(8).ok());
  EXPECT_TRUE(plan->Validate(10).ok());
}

TEST(FaultPlanTest, CrashingEveryNodeFailsCleanly) {
  ExperimentConfig config = SmallKMeans();
  const double baseline = FaultFreeMakespan(config);
  for (int n = 0; n < config.cluster.num_nodes; ++n) {
    config.run.faults.events.push_back(Crash(baseline / 4, n));
  }
  config.run.max_retries = 100;
  config.run.retry_backoff_s = 1e-3;
  auto result = RunExperiment(config);
  // With zero surviving capacity the run must end in an error — a
  // stall diagnosis or exhausted retries — and never hang.
  ASSERT_FALSE(result.ok());
}

}  // namespace
}  // namespace taskbench::analysis
