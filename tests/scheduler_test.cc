#include "runtime/scheduler.h"

#include <gtest/gtest.h>

namespace taskbench::runtime {
namespace {

/// Builds a graph with `n` independent CPU tasks reading one block
/// each; block i lives on a configurable node.
struct Fixture {
  TaskGraph graph;
  std::vector<TaskId> ready;
  std::vector<int> free_cpu;
  std::vector<int> free_gpu;
  std::vector<int> data_home;

  explicit Fixture(int num_tasks, int num_nodes,
                   Processor processor = Processor::kCpu) {
    for (int i = 0; i < num_tasks; ++i) {
      const DataId in = graph.AddData(1024);
      const DataId out = graph.AddData(1024);
      TaskSpec spec;
      spec.type = "t";
      spec.processor = processor;
      spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
      auto id = graph.Submit(spec);
      EXPECT_TRUE(id.ok());
      ready.push_back(*id);
    }
    free_cpu.assign(static_cast<size_t>(num_nodes), 1);
    free_gpu.assign(static_cast<size_t>(num_nodes), 1);
    data_home.assign(static_cast<size_t>(graph.num_data()), -1);
  }

  SchedulerView View() const {
    SchedulerView view;
    view.graph = &graph;
    view.ready = &ready;
    view.free_cpu_slots = &free_cpu;
    view.free_gpu_slots = &free_gpu;
    view.data_home = &data_home;
    return view;
  }
};

TEST(SchedulerTest, FactoryReturnsMatchingPolicy) {
  EXPECT_EQ(MakeScheduler(SchedulingPolicy::kTaskGenerationOrder)->name(),
            "task-gen-order");
  EXPECT_EQ(MakeScheduler(SchedulingPolicy::kDataLocality)->name(),
            "data-locality");
}

TEST(SchedulerTest, LocalityCostsMorePerDecision) {
  TaskGenerationOrderScheduler gen;
  DataLocalityScheduler locality;
  for (auto storage : {hw::StorageArchitecture::kLocalDisk,
                       hw::StorageArchitecture::kSharedDisk}) {
    EXPECT_GT(locality.DecisionOverhead(storage),
              gen.DecisionOverhead(storage));
  }
  // Location lookups against the shared filesystem cost more than
  // the master's in-memory registry of node-local data.
  EXPECT_GT(locality.DecisionOverhead(hw::StorageArchitecture::kSharedDisk),
            locality.DecisionOverhead(hw::StorageArchitecture::kLocalDisk));
  // Generation-order dispatch never consults locations.
  EXPECT_EQ(gen.DecisionOverhead(hw::StorageArchitecture::kSharedDisk),
            gen.DecisionOverhead(hw::StorageArchitecture::kLocalDisk));
}

TEST(TaskGenOrderTest, PicksFirstReadyTaskFirstFreeNode) {
  Fixture fx(3, 2);
  TaskGenerationOrderScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->task, fx.ready[0]);
  EXPECT_EQ(a->node, 0);
}

TEST(TaskGenOrderTest, SkipsFullNodes) {
  Fixture fx(1, 3);
  fx.free_cpu = {0, 0, 1};
  TaskGenerationOrderScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 2);
}

TEST(TaskGenOrderTest, ReturnsNulloptWhenSaturated) {
  Fixture fx(2, 2);
  fx.free_cpu = {0, 0};
  TaskGenerationOrderScheduler scheduler;
  EXPECT_FALSE(scheduler.Decide(fx.View()).has_value());
}

TEST(TaskGenOrderTest, UsesGpuSlotsForGpuTasks) {
  Fixture fx(1, 2, Processor::kGpu);
  fx.free_cpu = {0, 0};  // no CPU slots needed
  fx.free_gpu = {0, 1};
  TaskGenerationOrderScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 1);
}

TEST(DataLocalityTest, PrefersNodeHoldingInputBytes) {
  Fixture fx(1, 3);
  // The task's input datum (id 0) lives on node 2.
  fx.data_home[0] = 2;
  DataLocalityScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 2);
}

TEST(DataLocalityTest, FallsBackWhenPreferredNodeBusy) {
  Fixture fx(1, 3);
  fx.data_home[0] = 2;
  fx.free_cpu = {1, 1, 0};  // preferred node full
  DataLocalityScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_NE(a->node, 2);
}

TEST(DataLocalityTest, WeighsBytesNotCounts) {
  // Task reads a small datum on node 0 and a large one on node 1.
  TaskGraph graph;
  const DataId small = graph.AddData(10);
  const DataId large = graph.AddData(1000000);
  const DataId out = graph.AddData(10);
  TaskSpec spec;
  spec.type = "t";
  spec.params = {{small, Dir::kIn}, {large, Dir::kIn}, {out, Dir::kOut}};
  auto id = graph.Submit(spec);
  ASSERT_TRUE(id.ok());

  std::vector<TaskId> ready{*id};
  std::vector<int> free_cpu{1, 1};
  std::vector<int> free_gpu{0, 0};
  std::vector<int> data_home{0, 1, -1};
  SchedulerView view;
  view.graph = &graph;
  view.ready = &ready;
  view.free_cpu_slots = &free_cpu;
  view.free_gpu_slots = &free_gpu;
  view.data_home = &data_home;

  DataLocalityScheduler scheduler;
  const auto a = scheduler.Decide(view);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 1);
}

TEST(DataLocalityTest, DeterministicAcrossCalls) {
  Fixture fx(4, 2);
  DataLocalityScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  const auto b = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->task, b->task);
  EXPECT_EQ(a->node, b->node);
}

}  // namespace
}  // namespace taskbench::runtime
