#include "runtime/scheduler.h"

#include <gtest/gtest.h>

#include "runtime/ready_queue.h"

namespace taskbench::runtime {
namespace {

/// Re-initializes `slots` so node n has counts[n] free slots.
void SetSlots(hw::SlotIndex* slots, const std::vector<int>& counts) {
  slots->Reset(static_cast<int>(counts.size()), 0);
  for (size_t n = 0; n < counts.size(); ++n) {
    for (int i = 0; i < counts[n]; ++i) slots->Release(static_cast<int>(n));
  }
}

/// Builds a graph with `n` independent tasks reading one block each;
/// block i lives on a configurable node.
struct Fixture {
  TaskGraph graph;
  ReadyQueue ready;
  hw::SlotIndex free_cpu;
  hw::SlotIndex free_gpu;
  std::vector<int> data_home;
  std::vector<TaskId> ids;

  explicit Fixture(int num_tasks, int num_nodes,
                   Processor processor = Processor::kCpu) {
    for (int i = 0; i < num_tasks; ++i) {
      const DataId in = graph.AddData(1024);
      const DataId out = graph.AddData(1024);
      TaskSpec spec;
      spec.type = "t";
      spec.processor = processor;
      spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
      auto id = graph.Submit(spec);
      EXPECT_TRUE(id.ok());
      ids.push_back(*id);
      ready.Push(*id, ClassifyTask(graph.task(*id).spec, /*hybrid=*/false,
                                   /*gpu_fits=*/true, /*cpu_spill_ok=*/true));
    }
    free_cpu.Reset(num_nodes, 1);
    free_gpu.Reset(num_nodes, 1);
    data_home.assign(static_cast<size_t>(graph.num_data()), -1);
  }

  SchedulerView View() {
    SchedulerView view;
    view.graph = &graph;
    view.ready = &ready;
    view.cpu_slots = &free_cpu;
    view.gpu_slots = &free_gpu;
    view.data_home = &data_home;
    return view;
  }
};

TEST(SchedulerTest, FactoryReturnsMatchingPolicy) {
  EXPECT_EQ(MakeScheduler(SchedulingPolicy::kTaskGenerationOrder)->name(),
            "task-gen-order");
  EXPECT_EQ(MakeScheduler(SchedulingPolicy::kDataLocality)->name(),
            "data-locality");
}

TEST(SchedulerTest, LocalityCostsMorePerDecision) {
  TaskGenerationOrderScheduler gen;
  DataLocalityScheduler locality;
  for (auto storage : {hw::StorageArchitecture::kLocalDisk,
                       hw::StorageArchitecture::kSharedDisk}) {
    EXPECT_GT(locality.DecisionOverhead(storage),
              gen.DecisionOverhead(storage));
  }
  // Location lookups against the shared filesystem cost more than
  // the master's in-memory registry of node-local data.
  EXPECT_GT(locality.DecisionOverhead(hw::StorageArchitecture::kSharedDisk),
            locality.DecisionOverhead(hw::StorageArchitecture::kLocalDisk));
  // Generation-order dispatch never consults locations.
  EXPECT_EQ(gen.DecisionOverhead(hw::StorageArchitecture::kSharedDisk),
            gen.DecisionOverhead(hw::StorageArchitecture::kLocalDisk));
}

TEST(SlotIndexTest, TracksAggregatesAndFirstFree) {
  hw::SlotIndex slots(3, 2);
  EXPECT_EQ(slots.total_free(), 6);
  EXPECT_EQ(slots.FirstFreeNode(), 0);
  slots.Acquire(0);
  slots.Acquire(0);
  EXPECT_EQ(slots.free_at(0), 0);
  EXPECT_EQ(slots.FirstFreeNode(), 1);
  EXPECT_EQ(slots.total_free(), 4);
  slots.Release(0);
  EXPECT_EQ(slots.FirstFreeNode(), 0);
  SetSlots(&slots, {0, 0, 3});
  EXPECT_EQ(slots.FirstFreeNode(), 2);
  EXPECT_EQ(slots.total_free(), 3);
}

TEST(SlotIndexTest, FirstFreePastOneMaskWord) {
  hw::SlotIndex slots(130, 1);
  for (int n = 0; n < 129; ++n) slots.Acquire(n);
  EXPECT_EQ(slots.FirstFreeNode(), 129);
  slots.Acquire(129);
  EXPECT_EQ(slots.FirstFreeNode(), -1);
  EXPECT_EQ(slots.total_free(), 0);
}

TEST(ReadyQueueTest, HeadsAreMinTaskIdPerClass) {
  ReadyQueue queue;
  EXPECT_TRUE(queue.empty());
  queue.Push(7, PlacementClass::kCpuOnly);
  queue.Push(3, PlacementClass::kCpuOnly);
  queue.Push(5, PlacementClass::kGpuOnly);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.Head(PlacementClass::kCpuOnly), 3);
  EXPECT_EQ(queue.Head(PlacementClass::kGpuOnly), 5);
  EXPECT_EQ(queue.Head(PlacementClass::kGpuOrCpu), -1);
  queue.PopHead(PlacementClass::kCpuOnly);
  EXPECT_EQ(queue.Head(PlacementClass::kCpuOnly), 7);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(ClassifyTaskTest, MapsSpecsToClasses) {
  TaskSpec cpu;
  cpu.processor = Processor::kCpu;
  TaskSpec gpu;
  gpu.processor = Processor::kGpu;
  EXPECT_EQ(ClassifyTask(cpu, false, true, true), PlacementClass::kCpuOnly);
  EXPECT_EQ(ClassifyTask(cpu, true, false, false), PlacementClass::kCpuOnly);
  EXPECT_EQ(ClassifyTask(gpu, false, false, false),
            PlacementClass::kGpuOnly);
  EXPECT_EQ(ClassifyTask(gpu, true, true, true), PlacementClass::kGpuOrCpu);
  EXPECT_EQ(ClassifyTask(gpu, true, true, false), PlacementClass::kGpuOnly);
  EXPECT_EQ(ClassifyTask(gpu, true, false, true), PlacementClass::kCpuSpill);
}

TEST(TaskGenOrderTest, PicksFirstReadyTaskFirstFreeNode) {
  Fixture fx(3, 2);
  TaskGenerationOrderScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->task, fx.ids[0]);
  EXPECT_EQ(a->node, 0);
}

TEST(TaskGenOrderTest, SkipsFullNodes) {
  Fixture fx(1, 3);
  SetSlots(&fx.free_cpu, {0, 0, 1});
  TaskGenerationOrderScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 2);
}

TEST(TaskGenOrderTest, ReturnsNulloptWhenSaturated) {
  Fixture fx(2, 2);
  SetSlots(&fx.free_cpu, {0, 0});
  TaskGenerationOrderScheduler scheduler;
  EXPECT_FALSE(scheduler.Decide(fx.View()).has_value());
}

TEST(TaskGenOrderTest, UsesGpuSlotsForGpuTasks) {
  Fixture fx(1, 2, Processor::kGpu);
  SetSlots(&fx.free_cpu, {0, 0});  // no CPU slots needed
  SetSlots(&fx.free_gpu, {0, 1});
  TaskGenerationOrderScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 1);
}

TEST(DataLocalityTest, PrefersNodeHoldingInputBytes) {
  Fixture fx(1, 3);
  // The task's input datum (id 0) lives on node 2.
  fx.data_home[0] = 2;
  DataLocalityScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 2);
}

TEST(DataLocalityTest, FallsBackWhenPreferredNodeBusy) {
  Fixture fx(1, 3);
  fx.data_home[0] = 2;
  SetSlots(&fx.free_cpu, {1, 1, 0});  // preferred node full
  DataLocalityScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_NE(a->node, 2);
}

TEST(DataLocalityTest, WeighsBytesNotCounts) {
  // Task reads a small datum on node 0 and a large one on node 1.
  TaskGraph graph;
  const DataId small = graph.AddData(10);
  const DataId large = graph.AddData(1000000);
  const DataId out = graph.AddData(10);
  TaskSpec spec;
  spec.type = "t";
  spec.params = {{small, Dir::kIn}, {large, Dir::kIn}, {out, Dir::kOut}};
  auto id = graph.Submit(spec);
  ASSERT_TRUE(id.ok());

  ReadyQueue ready;
  ready.Push(*id, PlacementClass::kCpuOnly);
  hw::SlotIndex free_cpu(2, 1);
  hw::SlotIndex free_gpu(2, 0);
  std::vector<int> data_home{0, 1, -1};
  SchedulerView view;
  view.graph = &graph;
  view.ready = &ready;
  view.cpu_slots = &free_cpu;
  view.gpu_slots = &free_gpu;
  view.data_home = &data_home;

  DataLocalityScheduler scheduler;
  const auto a = scheduler.Decide(view);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 1);
}

TEST(DataLocalityTest, DeterministicAcrossCalls) {
  Fixture fx(4, 2);
  DataLocalityScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  const auto b = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->task, b->task);
  EXPECT_EQ(a->node, b->node);
}

TEST(DataLocalityTest, CachedTallyMatchesAdHocAndTracksMoves) {
  Fixture fx(1, 3);
  fx.data_home[0] = 2;
  LocalityCache cache(fx.graph, &fx.data_home);
  SchedulerView view = fx.View();
  view.locality = &cache;
  DataLocalityScheduler scheduler;
  auto a = scheduler.Decide(view);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 2);

  // Move the datum; without invalidation the stale tally would still
  // point at node 2.
  fx.data_home[0] = 1;
  cache.OnDataHomeChanged(0);
  a = scheduler.Decide(view);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 1);
}

TEST(LocalityCacheTest, MergesBytesPerNodeSorted) {
  TaskGraph graph;
  const DataId a = graph.AddData(100);
  const DataId b = graph.AddData(30);
  const DataId c = graph.AddData(5);
  const DataId out = graph.AddData(1);
  TaskSpec spec;
  spec.type = "t";
  spec.params = {
      {a, Dir::kIn}, {b, Dir::kIn}, {c, Dir::kIn}, {out, Dir::kOut}};
  auto id = graph.Submit(spec);
  ASSERT_TRUE(id.ok());

  std::vector<int> data_home{2, 0, 2, -1};
  LocalityCache cache(graph, &data_home);
  const auto& tally = cache.TallyFor(*id);
  ASSERT_EQ(tally.size(), 2u);
  EXPECT_EQ(tally[0].first, 0);
  EXPECT_EQ(tally[0].second, 30u);
  EXPECT_EQ(tally[1].first, 2);
  EXPECT_EQ(tally[1].second, 105u);
}

TEST(HybridClassTest, SpillPicksCpuOnlyWhenDevicesBusy) {
  TaskGraph graph;
  const DataId in = graph.AddData(1024);
  const DataId out = graph.AddData(1024);
  TaskSpec spec;
  spec.type = "g";
  spec.processor = Processor::kGpu;
  spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
  auto id = graph.Submit(spec);
  ASSERT_TRUE(id.ok());

  ReadyQueue ready;
  ready.Push(*id, ClassifyTask(graph.task(*id).spec, /*hybrid=*/true,
                               /*gpu_fits=*/true, /*cpu_spill_ok=*/true));
  hw::SlotIndex free_cpu(2, 1);
  hw::SlotIndex free_gpu(2, 1);
  std::vector<int> data_home{-1, -1};
  SchedulerView view;
  view.graph = &graph;
  view.ready = &ready;
  view.cpu_slots = &free_cpu;
  view.gpu_slots = &free_gpu;
  view.data_home = &data_home;

  TaskGenerationOrderScheduler scheduler;
  auto a = scheduler.Decide(view);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->processor, Processor::kGpu);  // device free: prefer it

  SetSlots(&free_gpu, {0, 0});
  a = scheduler.Decide(view);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->processor, Processor::kCpu);  // all devices busy: spill
}

}  // namespace
}  // namespace taskbench::runtime
