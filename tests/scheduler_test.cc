#include "runtime/scheduler.h"

#include <gtest/gtest.h>

#include "runtime/ready_queue.h"

namespace taskbench::runtime {
namespace {

/// Re-initializes `slots` so node n has counts[n] free slots.
void SetSlots(hw::SlotIndex* slots, const std::vector<int>& counts) {
  slots->Reset(static_cast<int>(counts.size()), 0);
  for (size_t n = 0; n < counts.size(); ++n) {
    for (int i = 0; i < counts[n]; ++i) slots->Release(static_cast<int>(n));
  }
}

/// Builds a graph with `n` independent tasks reading one block each;
/// block i lives on a configurable node.
struct Fixture {
  TaskGraph graph;
  ReadyQueue ready;
  hw::SlotIndex free_cpu;
  hw::SlotIndex free_gpu;
  std::vector<int> data_home;
  std::vector<TaskId> ids;

  explicit Fixture(int num_tasks, int num_nodes,
                   Processor processor = Processor::kCpu) {
    for (int i = 0; i < num_tasks; ++i) {
      const DataId in = graph.AddData(1024);
      const DataId out = graph.AddData(1024);
      TaskSpec spec;
      spec.type = "t";
      spec.processor = processor;
      spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
      auto id = graph.Submit(spec);
      EXPECT_TRUE(id.ok());
      ids.push_back(*id);
      ready.Push(*id, ClassifyTask(graph.task(*id).spec, /*hybrid=*/false,
                                   /*gpu_fits=*/true, /*cpu_spill_ok=*/true));
    }
    free_cpu.Reset(num_nodes, 1);
    free_gpu.Reset(num_nodes, 1);
    data_home.assign(static_cast<size_t>(graph.num_data()), -1);
  }

  SchedulerView View() {
    SchedulerView view;
    view.graph = &graph;
    view.ready = &ready;
    view.cpu_slots = &free_cpu;
    view.gpu_slots = &free_gpu;
    view.data_home = &data_home;
    return view;
  }
};

TEST(SchedulerTest, FactoryReturnsMatchingPolicy) {
  EXPECT_EQ(MakeScheduler(SchedulingPolicy::kTaskGenerationOrder)->name(),
            "task-gen-order");
  EXPECT_EQ(MakeScheduler(SchedulingPolicy::kDataLocality)->name(),
            "data-locality");
  EXPECT_EQ(MakeScheduler(SchedulingPolicy::kCostModel)->name(),
            "cost-model");
}

TEST(SchedulerTest, ParseSchedulingPolicyAcceptsAliases) {
  for (const char* name : {"fifo", "gen", "gen-order", "task-gen-order"}) {
    const auto policy = ParseSchedulingPolicy(name);
    ASSERT_TRUE(policy.has_value()) << name;
    EXPECT_EQ(*policy, SchedulingPolicy::kTaskGenerationOrder) << name;
  }
  for (const char* name : {"locality", "data-locality"}) {
    const auto policy = ParseSchedulingPolicy(name);
    ASSERT_TRUE(policy.has_value()) << name;
    EXPECT_EQ(*policy, SchedulingPolicy::kDataLocality) << name;
  }
  for (const char* name : {"cost", "cost-model"}) {
    const auto policy = ParseSchedulingPolicy(name);
    ASSERT_TRUE(policy.has_value()) << name;
    EXPECT_EQ(*policy, SchedulingPolicy::kCostModel) << name;
  }
  EXPECT_FALSE(ParseSchedulingPolicy("").has_value());
  EXPECT_FALSE(ParseSchedulingPolicy("heft").has_value());
}

TEST(SchedulerTest, DecisionPhasesSumToOverheadForEveryPolicy) {
  // The simulator's conservation invariant (phases sum exactly to the
  // per-decision overhead) must hold for every policy x storage cell,
  // not just the two paper policies.
  for (auto policy : {SchedulingPolicy::kTaskGenerationOrder,
                      SchedulingPolicy::kDataLocality,
                      SchedulingPolicy::kCostModel}) {
    const auto scheduler = MakeScheduler(policy);
    for (auto storage : {hw::StorageArchitecture::kLocalDisk,
                         hw::StorageArchitecture::kSharedDisk}) {
      SCOPED_TRACE(testing::Message()
                   << scheduler->name() << "/" << hw::ToString(storage));
      const auto phases = scheduler->DecisionPhases(storage);
      EXPECT_DOUBLE_EQ(phases.total(), scheduler->DecisionOverhead(storage));
      EXPECT_GE(phases.ready_pop_s, 0);
      EXPECT_GE(phases.locality_s, 0);
      EXPECT_GE(phases.slot_pick_s, 0);
    }
  }
}

TEST(SchedulerTest, CostModelOverheadOrdering) {
  DataLocalityScheduler locality;
  CostModelScheduler cost;
  for (auto storage : {hw::StorageArchitecture::kLocalDisk,
                       hw::StorageArchitecture::kSharedDisk}) {
    // The cost model pays the locality lookup plus rank/slack scoring,
    // so it is strictly the most expensive dispatcher per decision.
    EXPECT_GT(cost.DecisionOverhead(storage),
              locality.DecisionOverhead(storage));
  }
  EXPECT_GT(cost.DecisionOverhead(hw::StorageArchitecture::kSharedDisk),
            cost.DecisionOverhead(hw::StorageArchitecture::kLocalDisk));
}

TEST(SchedulerTest, LocalityCostsMorePerDecision) {
  TaskGenerationOrderScheduler gen;
  DataLocalityScheduler locality;
  for (auto storage : {hw::StorageArchitecture::kLocalDisk,
                       hw::StorageArchitecture::kSharedDisk}) {
    EXPECT_GT(locality.DecisionOverhead(storage),
              gen.DecisionOverhead(storage));
  }
  // Location lookups against the shared filesystem cost more than
  // the master's in-memory registry of node-local data.
  EXPECT_GT(locality.DecisionOverhead(hw::StorageArchitecture::kSharedDisk),
            locality.DecisionOverhead(hw::StorageArchitecture::kLocalDisk));
  // Generation-order dispatch never consults locations.
  EXPECT_EQ(gen.DecisionOverhead(hw::StorageArchitecture::kSharedDisk),
            gen.DecisionOverhead(hw::StorageArchitecture::kLocalDisk));
}

TEST(SlotIndexTest, TracksAggregatesAndFirstFree) {
  hw::SlotIndex slots(3, 2);
  EXPECT_EQ(slots.total_free(), 6);
  EXPECT_EQ(slots.FirstFreeNode(), 0);
  slots.Acquire(0);
  slots.Acquire(0);
  EXPECT_EQ(slots.free_at(0), 0);
  EXPECT_EQ(slots.FirstFreeNode(), 1);
  EXPECT_EQ(slots.total_free(), 4);
  slots.Release(0);
  EXPECT_EQ(slots.FirstFreeNode(), 0);
  SetSlots(&slots, {0, 0, 3});
  EXPECT_EQ(slots.FirstFreeNode(), 2);
  EXPECT_EQ(slots.total_free(), 3);
}

TEST(SlotIndexTest, FirstFreePastOneMaskWord) {
  hw::SlotIndex slots(130, 1);
  for (int n = 0; n < 129; ++n) slots.Acquire(n);
  EXPECT_EQ(slots.FirstFreeNode(), 129);
  slots.Acquire(129);
  EXPECT_EQ(slots.FirstFreeNode(), -1);
  EXPECT_EQ(slots.total_free(), 0);
}

TEST(ReadyQueueTest, HeadsAreMinTaskIdPerClass) {
  ReadyQueue queue;
  EXPECT_TRUE(queue.empty());
  queue.Push(7, PlacementClass::kCpuOnly);
  queue.Push(3, PlacementClass::kCpuOnly);
  queue.Push(5, PlacementClass::kGpuOnly);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.Head(PlacementClass::kCpuOnly), 3);
  EXPECT_EQ(queue.Head(PlacementClass::kGpuOnly), 5);
  EXPECT_EQ(queue.Head(PlacementClass::kGpuOrCpu), -1);
  queue.PopHead(PlacementClass::kCpuOnly);
  EXPECT_EQ(queue.Head(PlacementClass::kCpuOnly), 7);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(ClassifyTaskTest, MapsSpecsToClasses) {
  TaskSpec cpu;
  cpu.processor = Processor::kCpu;
  TaskSpec gpu;
  gpu.processor = Processor::kGpu;
  EXPECT_EQ(ClassifyTask(cpu, false, true, true), PlacementClass::kCpuOnly);
  EXPECT_EQ(ClassifyTask(cpu, true, false, false), PlacementClass::kCpuOnly);
  EXPECT_EQ(ClassifyTask(gpu, false, false, false),
            PlacementClass::kGpuOnly);
  EXPECT_EQ(ClassifyTask(gpu, true, true, true), PlacementClass::kGpuOrCpu);
  EXPECT_EQ(ClassifyTask(gpu, true, true, false), PlacementClass::kGpuOnly);
  EXPECT_EQ(ClassifyTask(gpu, true, false, true), PlacementClass::kCpuSpill);
}

TEST(TaskGenOrderTest, PicksFirstReadyTaskFirstFreeNode) {
  Fixture fx(3, 2);
  TaskGenerationOrderScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->task, fx.ids[0]);
  EXPECT_EQ(a->node, 0);
}

TEST(TaskGenOrderTest, SkipsFullNodes) {
  Fixture fx(1, 3);
  SetSlots(&fx.free_cpu, {0, 0, 1});
  TaskGenerationOrderScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 2);
}

TEST(TaskGenOrderTest, ReturnsNulloptWhenSaturated) {
  Fixture fx(2, 2);
  SetSlots(&fx.free_cpu, {0, 0});
  TaskGenerationOrderScheduler scheduler;
  EXPECT_FALSE(scheduler.Decide(fx.View()).has_value());
}

TEST(TaskGenOrderTest, UsesGpuSlotsForGpuTasks) {
  Fixture fx(1, 2, Processor::kGpu);
  SetSlots(&fx.free_cpu, {0, 0});  // no CPU slots needed
  SetSlots(&fx.free_gpu, {0, 1});
  TaskGenerationOrderScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 1);
}

TEST(DataLocalityTest, PrefersNodeHoldingInputBytes) {
  Fixture fx(1, 3);
  // The task's input datum (id 0) lives on node 2.
  fx.data_home[0] = 2;
  DataLocalityScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 2);
}

TEST(DataLocalityTest, FallsBackWhenPreferredNodeBusy) {
  Fixture fx(1, 3);
  fx.data_home[0] = 2;
  SetSlots(&fx.free_cpu, {1, 1, 0});  // preferred node full
  DataLocalityScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_NE(a->node, 2);
}

TEST(DataLocalityTest, WeighsBytesNotCounts) {
  // Task reads a small datum on node 0 and a large one on node 1.
  TaskGraph graph;
  const DataId small = graph.AddData(10);
  const DataId large = graph.AddData(1000000);
  const DataId out = graph.AddData(10);
  TaskSpec spec;
  spec.type = "t";
  spec.params = {{small, Dir::kIn}, {large, Dir::kIn}, {out, Dir::kOut}};
  auto id = graph.Submit(spec);
  ASSERT_TRUE(id.ok());

  ReadyQueue ready;
  ready.Push(*id, PlacementClass::kCpuOnly);
  hw::SlotIndex free_cpu(2, 1);
  hw::SlotIndex free_gpu(2, 0);
  std::vector<int> data_home{0, 1, -1};
  SchedulerView view;
  view.graph = &graph;
  view.ready = &ready;
  view.cpu_slots = &free_cpu;
  view.gpu_slots = &free_gpu;
  view.data_home = &data_home;

  DataLocalityScheduler scheduler;
  const auto a = scheduler.Decide(view);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 1);
}

TEST(DataLocalityTest, DeterministicAcrossCalls) {
  Fixture fx(4, 2);
  DataLocalityScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  const auto b = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->task, b->task);
  EXPECT_EQ(a->node, b->node);
}

TEST(DataLocalityTest, CachedTallyMatchesAdHocAndTracksMoves) {
  Fixture fx(1, 3);
  fx.data_home[0] = 2;
  LocalityCache cache(fx.graph, &fx.data_home);
  SchedulerView view = fx.View();
  view.locality = &cache;
  DataLocalityScheduler scheduler;
  auto a = scheduler.Decide(view);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 2);

  // Move the datum; without invalidation the stale tally would still
  // point at node 2.
  fx.data_home[0] = 1;
  cache.OnDataHomeChanged(0);
  a = scheduler.Decide(view);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 1);
}

TEST(LocalityCacheTest, MergesBytesPerNodeSorted) {
  TaskGraph graph;
  const DataId a = graph.AddData(100);
  const DataId b = graph.AddData(30);
  const DataId c = graph.AddData(5);
  const DataId out = graph.AddData(1);
  TaskSpec spec;
  spec.type = "t";
  spec.params = {
      {a, Dir::kIn}, {b, Dir::kIn}, {c, Dir::kIn}, {out, Dir::kOut}};
  auto id = graph.Submit(spec);
  ASSERT_TRUE(id.ok());

  std::vector<int> data_home{2, 0, 2, -1};
  LocalityCache cache(graph, &data_home);
  const auto& tally = cache.TallyFor(*id);
  ASSERT_EQ(tally.size(), 2u);
  EXPECT_EQ(tally[0].first, 0);
  EXPECT_EQ(tally[0].second, 30u);
  EXPECT_EQ(tally[1].first, 2);
  EXPECT_EQ(tally[1].second, 105u);
}

TEST(ReadyQueueTest, ScorerOrdersHeadsByScoreThenLowestId) {
  ReadyQueue queue;
  // Score = 10 - id: lower ids score higher except task 4, which is
  // pinned to the top.
  queue.SetScorer([](TaskId id) { return id == 4 ? 100.0 : 10.0 - id; });
  queue.Push(7, PlacementClass::kCpuOnly);
  queue.Push(3, PlacementClass::kCpuOnly);
  queue.Push(4, PlacementClass::kCpuOnly);
  EXPECT_EQ(queue.Head(PlacementClass::kCpuOnly), 4);
  EXPECT_EQ(queue.HeadScore(PlacementClass::kCpuOnly), 100.0);
  queue.PopHead(PlacementClass::kCpuOnly);
  EXPECT_EQ(queue.Head(PlacementClass::kCpuOnly), 3);
  queue.PopHead(PlacementClass::kCpuOnly);
  EXPECT_EQ(queue.Head(PlacementClass::kCpuOnly), 7);
}

TEST(ReadyQueueTest, EqualScoresBreakTiesByLowestTaskId) {
  ReadyQueue queue;
  queue.SetScorer([](TaskId) { return 1.5; });
  queue.Push(9, PlacementClass::kCpuOnly);
  queue.Push(2, PlacementClass::kCpuOnly);
  queue.Push(5, PlacementClass::kCpuOnly);
  EXPECT_EQ(queue.Head(PlacementClass::kCpuOnly), 2);
  queue.PopHead(PlacementClass::kCpuOnly);
  EXPECT_EQ(queue.Head(PlacementClass::kCpuOnly), 5);
  queue.PopHead(PlacementClass::kCpuOnly);
  EXPECT_EQ(queue.Head(PlacementClass::kCpuOnly), 9);
}

TEST(CostModelTest, WithoutScorerMatchesGenerationOrder) {
  Fixture fx(3, 2);
  CostModelScheduler cost;
  TaskGenerationOrderScheduler gen;
  const auto a = cost.Decide(fx.View());
  const auto b = gen.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->task, b->task);
}

TEST(CostModelTest, PicksHighestScoredReadyTask) {
  Fixture fx(3, 2);
  // Re-push through a scorer that ranks the last submission first.
  fx.ready = ReadyQueue();
  fx.ready.SetScorer([](TaskId id) { return static_cast<double>(id); });
  for (TaskId id : fx.ids) {
    fx.ready.Push(id, PlacementClass::kCpuOnly);
  }
  CostModelScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->task, fx.ids.back());
}

TEST(CostModelTest, PlacesByLocalityLikeDataLocalityScheduler) {
  Fixture fx(1, 3);
  fx.data_home[0] = 2;
  CostModelScheduler scheduler;
  const auto a = scheduler.Decide(fx.View());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 2);
}

TEST(DataLocalityTest, ByteTiesBreakToLowestNodeAfterPartialRebuild) {
  // Regression: the node pick once leaned on TallyFor's vector order,
  // which is only node-ascending for a freshly built entry. After
  // OnDataHomeChanged rebuilds one consumer's tally while a byte tie
  // exists, the pick must still be the lowest tied node id — and must
  // agree with the cache-less (ad-hoc) scan.
  TaskGraph graph;
  const DataId a = graph.AddData(1000);
  const DataId b = graph.AddData(1000);
  const DataId out = graph.AddData(1);
  TaskSpec spec;
  spec.type = "t";
  spec.params = {{a, Dir::kIn}, {b, Dir::kIn}, {out, Dir::kOut}};
  auto id = graph.Submit(spec);
  ASSERT_TRUE(id.ok());

  hw::SlotIndex free_cpu(4, 1);
  hw::SlotIndex free_gpu(4, 0);
  std::vector<int> data_home{3, 3, -1};
  LocalityCache cache(graph, &data_home);
  SchedulerView view;
  view.graph = &graph;
  view.ready = nullptr;  // set below
  view.cpu_slots = &free_cpu;
  view.gpu_slots = &free_gpu;
  view.data_home = &data_home;
  view.locality = &cache;

  DataLocalityScheduler scheduler;
  ReadyQueue ready;
  ready.Push(*id, PlacementClass::kCpuOnly);
  view.ready = &ready;
  auto pick = scheduler.Decide(view);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->node, 3);  // both inputs on node 3

  // Move datum `a` to node 1: bytes now tie between nodes 1 and 3. A
  // stale tally would keep node 3 (2000 bytes); a tie broken by
  // anything but node id could land on 3 as well.
  data_home[static_cast<size_t>(a)] = 1;
  cache.OnDataHomeChanged(a);
  ReadyQueue ready2;
  ready2.Push(*id, PlacementClass::kCpuOnly);
  view.ready = &ready2;
  pick = scheduler.Decide(view);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->node, 1);  // lowest tied node, not tally order

  // The cache-less scan must agree with the cached one.
  view.locality = nullptr;
  ReadyQueue ready3;
  ready3.Push(*id, PlacementClass::kCpuOnly);
  view.ready = &ready3;
  const auto ad_hoc = scheduler.Decide(view);
  ASSERT_TRUE(ad_hoc.has_value());
  EXPECT_EQ(ad_hoc->node, pick->node);
}

TEST(LocalityCacheTest, VerifyTallyDetectsMissedInvalidations) {
  TaskGraph graph;
  const DataId in = graph.AddData(64);
  const DataId out = graph.AddData(64);
  TaskSpec spec;
  spec.type = "t";
  spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
  auto id = graph.Submit(spec);
  ASSERT_TRUE(id.ok());

  std::vector<int> data_home{0, -1};
  LocalityCache cache(graph, &data_home);
  EXPECT_TRUE(cache.VerifyTally(*id));

  // Mutating a home without OnDataHomeChanged leaves a stale tally —
  // exactly what the sampled invariant check in the simulator guards.
  data_home[static_cast<size_t>(in)] = 2;
  EXPECT_FALSE(cache.VerifyTally(*id));
  cache.OnDataHomeChanged(in);
  EXPECT_TRUE(cache.VerifyTally(*id));
}

TEST(HybridClassTest, SpillPicksCpuOnlyWhenDevicesBusy) {
  TaskGraph graph;
  const DataId in = graph.AddData(1024);
  const DataId out = graph.AddData(1024);
  TaskSpec spec;
  spec.type = "g";
  spec.processor = Processor::kGpu;
  spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
  auto id = graph.Submit(spec);
  ASSERT_TRUE(id.ok());

  ReadyQueue ready;
  ready.Push(*id, ClassifyTask(graph.task(*id).spec, /*hybrid=*/true,
                               /*gpu_fits=*/true, /*cpu_spill_ok=*/true));
  hw::SlotIndex free_cpu(2, 1);
  hw::SlotIndex free_gpu(2, 1);
  std::vector<int> data_home{-1, -1};
  SchedulerView view;
  view.graph = &graph;
  view.ready = &ready;
  view.cpu_slots = &free_cpu;
  view.gpu_slots = &free_gpu;
  view.data_home = &data_home;

  TaskGenerationOrderScheduler scheduler;
  auto a = scheduler.Decide(view);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->processor, Processor::kGpu);  // device free: prefer it

  SetSlots(&free_gpu, {0, 0});
  a = scheduler.Decide(view);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->processor, Processor::kCpu);  // all devices busy: spill
}

}  // namespace
}  // namespace taskbench::runtime
