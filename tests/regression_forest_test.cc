#include "stats/regression_forest.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace taskbench::stats {
namespace {

TEST(RegressionForestTest, RejectsBadOptions) {
  RegressionForestOptions options;
  options.num_trees = 0;
  EXPECT_FALSE(RegressionForest::Fit({{1.0}}, {1.0}, options).ok());
  options.num_trees = 5;
  options.sample_fraction = 0;
  EXPECT_FALSE(RegressionForest::Fit({{1.0}}, {1.0}, options).ok());
  EXPECT_FALSE(RegressionForest::Fit({}, {}).ok());
}

TEST(RegressionForestTest, DeterministicPerSeed) {
  Rng rng(3);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({rng.NextDouble(), rng.NextDouble()});
    targets.push_back(rows.back()[0] * 3 + rows.back()[1]);
  }
  auto a = RegressionForest::Fit(rows, targets);
  auto b = RegressionForest::Fit(rows, targets);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (double q = 0.05; q < 1.0; q += 0.1) {
    auto pa = a->Predict({q, 1 - q});
    auto pb = b->Predict({q, 1 - q});
    ASSERT_TRUE(pa.ok());
    ASSERT_TRUE(pb.ok());
    EXPECT_DOUBLE_EQ(*pa, *pb);
  }
  // A different seed gives a (slightly) different model.
  RegressionForestOptions other;
  other.seed = 999;
  auto c = RegressionForest::Fit(rows, targets, other);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (double q = 0.05; q < 1.0; q += 0.1) {
    if (*a->Predict({q, 1 - q}) != *c->Predict({q, 1 - q})) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RegressionForestTest, SmoothsSingleTreePredictions) {
  // Noisy linear data: the bagged mean generalizes at least as well
  // as a single fully-grown tree on held-out points.
  Rng rng(17);
  std::vector<std::vector<double>> rows, test_rows;
  std::vector<double> targets, test_targets;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Uniform(0, 1);
    const double y = 5 * x + rng.NextGaussian() * 0.5;
    if (i % 3 == 0) {
      test_rows.push_back({x});
      test_targets.push_back(5 * x);  // noiseless truth
    } else {
      rows.push_back({x});
      targets.push_back(y);
    }
  }
  RegressionTreeOptions deep;
  deep.min_samples_leaf = 1;
  deep.max_depth = 20;
  auto tree = RegressionTree::Fit(rows, targets, deep);
  RegressionForestOptions foptions;
  foptions.tree = deep;
  foptions.num_trees = 30;
  auto forest = RegressionForest::Fit(rows, targets, foptions);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(forest.ok());

  double tree_mse = 0, forest_mse = 0;
  for (size_t i = 0; i < test_rows.size(); ++i) {
    const double dt = *tree->Predict(test_rows[i]) - test_targets[i];
    const double df = *forest->Predict(test_rows[i]) - test_targets[i];
    tree_mse += dt * dt;
    forest_mse += df * df;
  }
  EXPECT_LT(forest_mse, tree_mse);
}

TEST(RegressionForestTest, ImportancesNormalized) {
  Rng rng(5);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 120; ++i) {
    rows.push_back({rng.NextDouble(), rng.NextDouble()});
    targets.push_back(rows.back()[1] > 0.5 ? 1.0 : 0.0);
  }
  auto forest = RegressionForest::Fit(rows, targets);
  ASSERT_TRUE(forest.ok());
  const auto importance = forest->FeatureImportance();
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_GT(importance[1], importance[0]);
  EXPECT_NEAR(importance[0] + importance[1], 1.0, 1e-9);
}

TEST(RegressionForestTest, SingleTreeForestMatchesShape) {
  RegressionForestOptions options;
  options.num_trees = 1;
  std::vector<std::vector<double>> rows{{1}, {2}, {3}, {4}, {5}, {6}};
  std::vector<double> targets{1, 1, 1, 9, 9, 9};
  auto forest = RegressionForest::Fit(rows, targets, options);
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->num_trees(), 1u);
  EXPECT_EQ(forest->num_features(), 1u);
}

}  // namespace
}  // namespace taskbench::stats
