#include "data/generators.h"

#include <cmath>

#include <gtest/gtest.h>

namespace taskbench::data {
namespace {

GridSpec SmallSpec(int64_t rows = 64, int64_t cols = 16, int64_t br = 16,
                   int64_t bc = 16) {
  auto spec = GridSpec::Create(DatasetSpec{"d", rows, cols}, br, bc);
  EXPECT_TRUE(spec.ok());
  return *spec;
}

TEST(GeneratorsTest, UniformIsDeterministicPerSeed) {
  const GridSpec spec = SmallSpec();
  auto a = UniformArray(spec, 42);
  auto b = UniformArray(spec, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int64_t bk = 0; bk < spec.grid_rows(); ++bk) {
    EXPECT_TRUE(a->block(bk, 0).ApproxEquals(b->block(bk, 0), 0));
  }
  auto c = UniformArray(spec, 43);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(a->block(0, 0).ApproxEquals(c->block(0, 0), 0));
}

TEST(GeneratorsTest, UniformValuesInUnitInterval) {
  const GridSpec spec = SmallSpec();
  auto a = UniformArray(spec, 1);
  ASSERT_TRUE(a.ok());
  auto m = a->Collect();
  ASSERT_TRUE(m.ok());
  for (int64_t r = 0; r < m->rows(); ++r) {
    for (int64_t c = 0; c < m->cols(); ++c) {
      EXPECT_GE(m->At(r, c), 0.0);
      EXPECT_LT(m->At(r, c), 1.0);
    }
  }
}

TEST(GeneratorsTest, BlockValuesIndependentOfPartitioning) {
  // The same dataset cut two ways must produce the same per-block
  // streams only when extents coincide; at minimum, the same spec
  // regenerated twice matches block-for-block (order independence).
  const GridSpec spec = SmallSpec(64, 16, 8, 16);
  auto a = UniformArray(spec, 7);
  ASSERT_TRUE(a.ok());
  // Regenerate only the last block via Generate and compare.
  auto b = DsArray::Generate(spec, [&](const BlockExtent& e, Matrix* m) {
    if (e.row0 == 56) {
      Rng rng(static_cast<uint64_t>(7) ^
              (static_cast<uint64_t>(e.row0) << 20) ^
              (static_cast<uint64_t>(e.col0) + 0x9e3779b9ULL));
      FillUniform(m, &rng);
    }
  });
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(
      a->block(7, 0).ApproxEquals(b->block(7, 0), 0));
}

TEST(GeneratorsTest, SkewZeroMatchesUniformStatistics) {
  Matrix u(100, 100);
  Matrix s(100, 100);
  Rng r1(5), r2(5);
  FillUniform(&u, &r1);
  FillSkewed(&s, &r2, 0.0);
  // skew=0 draws one extra uniform per element, so streams differ,
  // but the distribution support is identical.
  for (int64_t i = 0; i < s.size(); ++i) {
    EXPECT_GE(s.data()[i], 0.0);
    EXPECT_LT(s.data()[i], 1.0);
  }
}

TEST(GeneratorsTest, SkewConcentratesMass) {
  Matrix s(200, 200);
  Rng rng(5);
  FillSkewed(&s, &rng, 0.5);
  // Half the elements land within +-0.01 of 4 attractor points; count
  // elements near them.
  const double regions[] = {0.1, 0.35, 0.6, 0.85};
  int near = 0;
  for (int64_t i = 0; i < s.size(); ++i) {
    for (double c : regions) {
      if (std::abs(s.data()[i] - c) <= 0.0101) {
        ++near;
        break;
      }
    }
  }
  const double fraction = static_cast<double>(near) /
                          static_cast<double>(s.size());
  // 50% skewed + ~8% of uniform mass falling in the bands.
  EXPECT_GT(fraction, 0.45);
  EXPECT_LT(fraction, 0.65);
}

TEST(GeneratorsTest, BlobsClusterAroundCenters) {
  Matrix m(3000, 4);
  Rng rng(9);
  FillGaussianBlobs(&m, &rng, 3);
  // Every sample within ~6 sigma of one of 3 centers in [-10,10]^4:
  // values bounded.
  for (int64_t i = 0; i < m.size(); ++i) {
    EXPECT_LT(std::abs(m.data()[i]), 20.0);
  }
}

TEST(GeneratorsTest, SkewedArrayDeterministic) {
  const GridSpec spec = SmallSpec();
  auto a = SkewedArray(spec, 42, 0.5);
  auto b = SkewedArray(spec, 42, 0.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->block(1, 0).ApproxEquals(b->block(1, 0), 0));
}

TEST(GeneratorsTest, BlobsArrayUsesSameCentersAcrossBlocks) {
  const GridSpec spec = SmallSpec(64, 4, 16, 4);
  auto a = BlobsArray(spec, 42, 2);
  ASSERT_TRUE(a.ok());
  // All blocks drawn from the same mixture: global mean of each
  // feature should be similar across blocks (within a few sigma).
  for (int64_t bk = 1; bk < spec.grid_rows(); ++bk) {
    const double m0 = a->block(0, 0).Sum() / a->block(0, 0).size();
    const double mk = a->block(bk, 0).Sum() / a->block(bk, 0).size();
    EXPECT_NEAR(m0, mk, 8.0);
  }
}

}  // namespace
}  // namespace taskbench::data
