#include "runtime/trace.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "hw/cluster.h"
#include "obs/json.h"
#include "runtime/simulated_executor.h"

namespace taskbench::runtime {
namespace {

TaskRecord MakeRecord(TaskId id, const std::string& type, int node,
                      double start, double end) {
  TaskRecord rec;
  rec.task = id;
  rec.type = type;
  rec.node = node;
  rec.start = start;
  rec.end = end;
  rec.stages.deserialize = (end - start) * 0.25;
  rec.stages.parallel_fraction = (end - start) * 0.5;
  rec.stages.serialize = (end - start) * 0.25;
  return rec;
}

TEST(TraceTest, EmptyReportIsValidJson) {
  RunReport report;
  const std::string json = ChromeTraceJson(report);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("displayTimeUnit"), std::string::npos);
  EXPECT_TRUE(obs::ValidateJson(json).ok()) << json;
}

TEST(TraceTest, EveryDocumentParsesCleanly) {
  RunReport report;
  report.records.push_back(MakeRecord(0, "matmul_func", 0, 0.0, 2.0));
  report.records.push_back(MakeRecord(1, "kmeans", 1, 0.5, 2.5));
  EXPECT_TRUE(obs::ValidateJson(ChromeTraceJson(report)).ok());
}

TEST(TraceTest, EscapesHostileTaskTypeNames) {
  // A task type carrying quotes, backslashes and newlines must not
  // corrupt the document — this was the JsonEscape bug: names went
  // into the trace raw.
  RunReport report;
  report.records.push_back(
      MakeRecord(0, "evil \"type\" \\ with\nnewline", 0, 0.0, 1.0));
  const std::string json = ChromeTraceJson(report);
  EXPECT_TRUE(obs::ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\\\"type\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(TraceTest, ContainsTaskAndStageSlices) {
  RunReport report;
  report.records.push_back(MakeRecord(0, "matmul_func", 2, 1.0, 3.0));
  const std::string json = ChromeTraceJson(report);
  EXPECT_NE(json.find("matmul_func #0"), std::string::npos);
  EXPECT_NE(json.find("deserialize"), std::string::npos);
  EXPECT_NE(json.find("parallel fraction"), std::string::npos);
  EXPECT_NE(json.find("serialize"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_NE(json.find("node 2"), std::string::npos);
  // Durations are microseconds: 2 s task -> 2000000 us.
  EXPECT_NE(json.find("\"dur\": 2000000.000"), std::string::npos);
}

TEST(TraceTest, OverlappingTasksGetDistinctLanes) {
  RunReport report;
  report.records.push_back(MakeRecord(0, "a", 0, 0.0, 2.0));
  report.records.push_back(MakeRecord(1, "b", 0, 1.0, 3.0));  // overlaps
  report.records.push_back(MakeRecord(2, "c", 0, 2.5, 4.0));  // fits lane 0
  const std::string json = ChromeTraceJson(report);
  // Task b must be on a different lane than a; c reuses lane 0.
  EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
  const size_t first_tid0 = json.find("\"tid\": 0");
  EXPECT_NE(first_tid0, std::string::npos);
}

TEST(TraceTest, TasksOnDifferentNodesShareLaneNumbers) {
  RunReport report;
  report.records.push_back(MakeRecord(0, "a", 0, 0.0, 2.0));
  report.records.push_back(MakeRecord(1, "b", 1, 0.0, 2.0));
  const std::string json = ChromeTraceJson(report);
  // Both can be lane 0 because they live in different processes.
  EXPECT_EQ(json.find("\"tid\": 1"), std::string::npos);
}

TEST(TraceTest, WritesFile) {
  RunReport report;
  report.records.push_back(MakeRecord(0, "t", 0, 0.0, 1.0));
  const auto path =
      std::filesystem::temp_directory_path() / "tb_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(report, path.string()).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, ChromeTraceJson(report));
  std::filesystem::remove(path);
}

TEST(TraceTest, AssignLanesSeparatesEqualStartTimes) {
  std::vector<TaskRecord> records;
  records.push_back(MakeRecord(0, "a", 0, 0.0, 1.0));
  records.push_back(MakeRecord(1, "b", 0, 0.0, 1.0));
  records.push_back(MakeRecord(2, "c", 0, 0.0, 1.0));
  const std::vector<int> lanes = AssignLanes(records);
  ASSERT_EQ(lanes.size(), 3u);
  EXPECT_NE(lanes[0], lanes[1]);
  EXPECT_NE(lanes[0], lanes[2]);
  EXPECT_NE(lanes[1], lanes[2]);
}

TEST(TraceTest, AssignLanesHandlesZeroDurationRecords) {
  // Instantaneous records (start == end) must still get lanes and not
  // push genuinely overlapping work onto one lane.
  std::vector<TaskRecord> records;
  records.push_back(MakeRecord(0, "a", 0, 1.0, 1.0));
  records.push_back(MakeRecord(1, "b", 0, 1.0, 1.0));
  records.push_back(MakeRecord(2, "c", 0, 0.0, 3.0));
  const std::vector<int> lanes = AssignLanes(records);
  ASSERT_EQ(lanes.size(), 3u);
  // The long task overlaps both point records.
  EXPECT_NE(lanes[2], lanes[0]);
  EXPECT_NE(lanes[2], lanes[1]);
}

TEST(TraceTest, AssignLanesIsPerNode) {
  // Records interleaved across nodes: lane numbering restarts per
  // node, and back-to-back records on one node reuse a lane.
  std::vector<TaskRecord> records;
  records.push_back(MakeRecord(0, "a", 0, 0.0, 1.0));
  records.push_back(MakeRecord(1, "b", 1, 0.0, 1.0));
  records.push_back(MakeRecord(2, "c", 0, 1.5, 2.0));
  records.push_back(MakeRecord(3, "d", 1, 1.5, 2.0));
  const std::vector<int> lanes = AssignLanes(records);
  EXPECT_EQ(lanes, (std::vector<int>{0, 0, 0, 0}));
}

TEST(TraceTest, EndToEndWithSimulatedRun) {
  // A real simulated run produces a well-formed trace with every
  // executed task present.
  TaskGraph graph;
  for (int i = 0; i < 10; ++i) {
    const DataId in = graph.AddData(1'000'000);
    const DataId out = graph.AddData(1'000'000);
    TaskSpec spec;
    spec.type = "work";
    spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
    spec.cost.parallel.flops = 1e9;
    spec.cost.input_bytes = 1'000'000;
    spec.cost.output_bytes = 1'000'000;
    ASSERT_TRUE(graph.Submit(spec).ok());
  }
  SimulatedExecutor executor(hw::MinotauroCluster(),
                             RunOptions{});
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  const std::string json = ChromeTraceJson(*report);
  EXPECT_TRUE(obs::ValidateJson(json).ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(json.find("work #" + std::to_string(i)), std::string::npos);
  }
}

}  // namespace
}  // namespace taskbench::runtime
