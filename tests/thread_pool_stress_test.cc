#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/thread_pool_executor.h"
#include "storage/faulty_storage.h"

namespace taskbench::runtime {
namespace {

// Stress coverage of the work-stealing executor: task counts far
// beyond the worker count, wide and deep DAG shapes, both data-plane
// modes, and retry budgets over a fault-injecting backend. The goal
// is to shake races out of the lock-free scheduling structures (these
// are also the tests the TSan CI job runs).

KernelFn AddOneKernel() {
  return [](const std::vector<const data::Matrix*>& inputs,
            const std::vector<data::Matrix*>& outputs) -> Status {
    data::Matrix m = *inputs[0];
    for (int64_t i = 0; i < m.size(); ++i) m.data()[i] += 1.0;
    *outputs[0] = std::move(m);
    return Status::OK();
  };
}

KernelFn SumKernel() {
  return [](const std::vector<const data::Matrix*>& inputs,
            const std::vector<data::Matrix*>& outputs) -> Status {
    data::Matrix acc = *inputs[0];
    for (size_t i = 1; i < inputs.size(); ++i) {
      TB_ASSIGN_OR_RETURN(acc, data::Add(acc, *inputs[i]));
    }
    *outputs[0] = std::move(acc);
    return Status::OK();
  };
}

TaskSpec SimpleTask(DataId in, DataId out, KernelFn kernel) {
  TaskSpec spec;
  spec.type = "stress";
  spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
  spec.kernel = std::move(kernel);
  return spec;
}

class ThreadPoolStressModes : public ::testing::TestWithParam<bool> {};

TEST_P(ThreadPoolStressModes, WideGraphTasksFarExceedThreads) {
  // 2000 independent tasks on 8 workers: every root sits in some
  // worker's deque up front, so most claims are steals.
  constexpr int kTasks = 2000;
  TaskGraph graph;
  const DataId in = graph.AddData(data::Matrix(2, 2, 1.0));
  std::vector<DataId> outs;
  outs.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    const DataId out = graph.AddData(static_cast<uint64_t>(32));
    ASSERT_TRUE(graph.Submit(SimpleTask(in, out, AddOneKernel())).ok());
    outs.push_back(out);
  }

  RunOptions options;
  options.num_threads = 8;
  options.use_storage = GetParam();
  ThreadPoolExecutor executor(options);
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->records.size(), static_cast<size_t>(kTasks));
  EXPECT_TRUE(report->attempts.empty());  // no retry budget, no log
  for (const DataId out : outs) {
    auto result = executor.FetchData(graph, out);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->ApproxEquals(data::Matrix(2, 2, 2.0)));
  }
}

TEST_P(ThreadPoolStressModes, DeepChainSerializesCorrectly) {
  // A 600-deep chain: exactly one task is ever ready, so the pool
  // exercises the park/wake handshake on every completion.
  constexpr int kDepth = 600;
  TaskGraph graph;
  DataId current = graph.AddData(data::Matrix(2, 2, 0.0));
  for (int i = 0; i < kDepth; ++i) {
    const DataId next = graph.AddData(static_cast<uint64_t>(32));
    ASSERT_TRUE(graph.Submit(SimpleTask(current, next, AddOneKernel())).ok());
    current = next;
  }

  RunOptions options;
  options.num_threads = 8;
  options.use_storage = GetParam();
  ThreadPoolExecutor executor(options);
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  auto result = executor.FetchData(graph, current);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(
      result->ApproxEquals(data::Matrix(2, 2, static_cast<double>(kDepth))));

  // Wall-clock ordering along the chain.
  for (int i = 1; i < kDepth; ++i) {
    EXPECT_GE(report->records[static_cast<size_t>(i)].start,
              report->records[static_cast<size_t>(i - 1)].end - 1e-9);
  }
}

TEST_P(ThreadPoolStressModes, AlternatingFanOutFanIn) {
  // Wide waves joined by single fan-in tasks: the ready count swings
  // between 1 and the wave width, exercising bulk wakeups.
  constexpr int kWaves = 8;
  constexpr int kWidth = 64;
  TaskGraph graph;
  DataId current = graph.AddData(data::Matrix(2, 2, 1.0));
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<DataId> outs;
    for (int i = 0; i < kWidth; ++i) {
      const DataId out = graph.AddData(static_cast<uint64_t>(32));
      ASSERT_TRUE(graph.Submit(SimpleTask(current, out, AddOneKernel())).ok());
      outs.push_back(out);
    }
    const DataId joined = graph.AddData(static_cast<uint64_t>(32));
    TaskSpec join;
    join.type = "join";
    for (DataId out : outs) join.params.push_back({out, Dir::kIn});
    join.params.push_back({joined, Dir::kOut});
    join.kernel = SumKernel();
    ASSERT_TRUE(graph.Submit(join).ok());
    current = joined;
  }

  RunOptions options;
  options.num_threads = 8;
  options.use_storage = GetParam();
  ThreadPoolExecutor executor(options);
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(),
            static_cast<size_t>(kWaves) * (kWidth + 1));
  // Each wave maps x -> width * (x + 1): x0 = 1 -> 128, 8256, ...
  double expected = 1.0;
  for (int wave = 0; wave < kWaves; ++wave) {
    expected = kWidth * (expected + 1.0);
  }
  auto result = executor.FetchData(graph, current);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ApproxEquals(data::Matrix(2, 2, expected)));
}

TEST_P(ThreadPoolStressModes, RandomDagMatchesSingleThreadedRun) {
  // Random layered DAG; the 8-thread result must equal a 1-thread run
  // of an identical graph (scheduling must not change the answer).
  std::mt19937_64 rng(42);
  auto build = [&rng]() {
    std::mt19937_64 local = rng;  // same stream for both graphs
    TaskGraph graph;
    std::vector<DataId> prev = {graph.AddData(data::Matrix(2, 2, 1.0))};
    for (int layer = 0; layer < 6; ++layer) {
      std::uniform_int_distribution<int> pick(
          0, static_cast<int>(prev.size()) - 1);
      std::vector<DataId> next;
      for (int i = 0; i < 20; ++i) {
        const int fan_in = 1 + (i % 3);
        TaskSpec spec;
        spec.type = "rand";
        for (int f = 0; f < fan_in; ++f) {
          spec.params.push_back({prev[static_cast<size_t>(pick(local))],
                                 Dir::kIn});
        }
        const DataId out = graph.AddData(static_cast<uint64_t>(32));
        spec.params.push_back({out, Dir::kOut});
        spec.kernel = SumKernel();
        EXPECT_TRUE(graph.Submit(spec).ok());
        next.push_back(out);
      }
      prev = std::move(next);
    }
    return std::make_pair(std::move(graph), prev);
  };

  auto [graph_mt, outs_mt] = build();
  auto [graph_st, outs_st] = build();

  RunOptions options;
  options.use_storage = GetParam();
  options.num_threads = 8;
  ThreadPoolExecutor mt(options);
  ASSERT_TRUE(mt.Execute(graph_mt).ok());
  options.num_threads = 1;
  ThreadPoolExecutor st(options);
  ASSERT_TRUE(st.Execute(graph_st).ok());

  for (size_t i = 0; i < outs_mt.size(); ++i) {
    auto a = mt.FetchData(graph_mt, outs_mt[i]);
    auto b = st.FetchData(graph_st, outs_st[i]);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->MaxAbsDiff(*b), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(StorageModes, ThreadPoolStressModes,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "WithStorage" : "InMemory";
                         });

TEST(ThreadPoolStressTest, RetryBudgetSurvivesRecurringFaults) {
  // A storage backend that trips mid-run and injects a burst of three
  // consecutive read failures before healing; the retry budget must
  // absorb the burst and the attempt log must stay consistent.
  auto inner = std::make_shared<storage::InMemoryStorage>();
  auto faulty = std::make_shared<storage::FaultyStorage>(inner);
  faulty->ops_until_get_failure = 40;
  faulty->get_failures_remaining = 3;

  constexpr int kTasks = 120;
  TaskGraph graph;
  const DataId in = graph.AddData(data::Matrix(2, 2, 1.0));
  std::vector<DataId> outs;
  for (int i = 0; i < kTasks; ++i) {
    const DataId out = graph.AddData(static_cast<uint64_t>(32));
    EXPECT_TRUE(graph.Submit(SimpleTask(in, out, AddOneKernel())).ok());
    outs.push_back(out);
  }

  RunOptions options;
  options.num_threads = 8;
  options.use_storage = true;
  options.max_retries = 5;
  options.retry_backoff_s = 1e-4;
  ThreadPoolExecutor executor(options, faulty);
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->faults.retries, 0);

  // Attempt log: every task logs exactly one completed attempt, with
  // failed attempts preceding it numerically.
  std::vector<int> completed(static_cast<size_t>(graph.num_tasks()), 0);
  for (const TaskAttempt& attempt : report->attempts) {
    ASSERT_GE(attempt.task, 0);
    ASSERT_LT(attempt.task, graph.num_tasks());
    if (attempt.outcome == AttemptOutcome::kCompleted) {
      ++completed[static_cast<size_t>(attempt.task)];
    }
  }
  for (int count : completed) EXPECT_EQ(count, 1);

  for (const DataId out : outs) {
    auto result = executor.FetchData(graph, out);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->ApproxEquals(data::Matrix(2, 2, 2.0)));
  }
}

TEST(ThreadPoolStressTest, ExhaustedRetryBudgetFailsRun) {
  auto inner = std::make_shared<storage::InMemoryStorage>();
  auto faulty = std::make_shared<storage::FaultyStorage>(inner);
  faulty->ops_until_get_failure = 0;  // every read fails, forever

  TaskGraph graph;
  const DataId in = graph.AddData(data::Matrix(2, 2, 1.0));
  const DataId out = graph.AddData(static_cast<uint64_t>(32));
  ASSERT_TRUE(graph.Submit(SimpleTask(in, out, AddOneKernel())).ok());

  RunOptions options;
  options.num_threads = 4;
  options.use_storage = true;
  options.max_retries = 2;
  options.retry_backoff_s = 1e-4;
  ThreadPoolExecutor executor(options, faulty);
  auto report = executor.Execute(graph);
  ASSERT_FALSE(report.ok());
  // Failure context names the final attempt (budget + 1 runs).
  EXPECT_NE(report.status().ToString().find("attempt 3"), std::string::npos)
      << report.status().ToString();
}

}  // namespace
}  // namespace taskbench::runtime
