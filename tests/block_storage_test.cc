#include "storage/block_storage.h"

#include <atomic>
#include <filesystem>
#include <unistd.h>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace taskbench::storage {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> values) {
  return std::vector<uint8_t>(values);
}

/// Unique scratch directory per fixture instance so parallel ctest
/// processes never collide.
std::filesystem::path FreshDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tb_" + tag + "_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1)));
  std::filesystem::remove_all(dir);
  return dir;
}

template <typename T>
class BlockStorageTest : public ::testing::Test {
 protected:
  BlockStorageTest() {
    if constexpr (std::is_same_v<T, FileStorage>) {
      dir_ = FreshDir("storage_test");
      auto opened = FileStorage::Open(dir_.string());
      EXPECT_TRUE(opened.ok());
      storage_ = std::move(opened).value();
    } else {
      storage_ = std::make_unique<InMemoryStorage>();
    }
  }
  ~BlockStorageTest() override {
    storage_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }
  std::filesystem::path dir_;
  std::unique_ptr<BlockStorage> storage_;
};

using Implementations = ::testing::Types<InMemoryStorage, FileStorage>;
TYPED_TEST_SUITE(BlockStorageTest, Implementations);

TYPED_TEST(BlockStorageTest, PutGetRoundTrip) {
  ASSERT_TRUE(this->storage_->Put("k1", Bytes({1, 2, 3})).ok());
  auto got = this->storage_->Get("k1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Bytes({1, 2, 3}));
}

TYPED_TEST(BlockStorageTest, GetMissingIsNotFound) {
  auto got = this->storage_->Get("absent");
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound());
}

TYPED_TEST(BlockStorageTest, PutOverwrites) {
  ASSERT_TRUE(this->storage_->Put("k", Bytes({1})).ok());
  ASSERT_TRUE(this->storage_->Put("k", Bytes({9, 9})).ok());
  auto got = this->storage_->Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Bytes({9, 9}));
}

TYPED_TEST(BlockStorageTest, DeleteIsIdempotent) {
  ASSERT_TRUE(this->storage_->Put("k", Bytes({1})).ok());
  EXPECT_TRUE(this->storage_->Delete("k").ok());
  EXPECT_FALSE(this->storage_->Contains("k"));
  EXPECT_TRUE(this->storage_->Delete("k").ok());  // second delete fine
}

TYPED_TEST(BlockStorageTest, SizeTracksObjects) {
  EXPECT_EQ(this->storage_->Size(), 0u);
  ASSERT_TRUE(this->storage_->Put("a", Bytes({1})).ok());
  ASSERT_TRUE(this->storage_->Put("b", Bytes({2, 2})).ok());
  EXPECT_EQ(this->storage_->Size(), 2u);
  EXPECT_EQ(this->storage_->TotalBytes(), 3u);
}

TYPED_TEST(BlockStorageTest, ConcurrentPutsAndGets) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "_" + std::to_string(i);
        ASSERT_TRUE(this->storage_
                        ->Put(key, Bytes({static_cast<uint8_t>(t),
                                          static_cast<uint8_t>(i)}))
                        .ok());
        auto got = this->storage_->Get(key);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ((*got)[0], static_cast<uint8_t>(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(this->storage_->Size(),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST(FileStorageTest, SanitizesHostileKeys) {
  const auto dir =
      std::filesystem::temp_directory_path() / "tb_storage_hostile";
  std::filesystem::remove_all(dir);
  auto opened = FileStorage::Open(dir.string());
  ASSERT_TRUE(opened.ok());
  auto& storage = **opened;
  ASSERT_TRUE(storage.Put("../../etc/passwd", Bytes({1})).ok());
  // The object is stored inside the root dir, not outside.
  EXPECT_TRUE(storage.Contains("../../etc/passwd"));
  EXPECT_EQ(storage.Size(), 1u);
  bool outside = std::filesystem::exists(dir.parent_path() / "etc");
  EXPECT_FALSE(outside);
}

TEST(FileStorageTest, PersistsAcrossReopen) {
  const auto dir =
      std::filesystem::temp_directory_path() / "tb_storage_reopen";
  std::filesystem::remove_all(dir);
  {
    auto opened = FileStorage::Open(dir.string());
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE((*opened)->Put("persist", Bytes({4, 2})).ok());
  }
  auto reopened = FileStorage::Open(dir.string());
  ASSERT_TRUE(reopened.ok());
  auto got = (*reopened)->Get("persist");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Bytes({4, 2}));
}

}  // namespace
}  // namespace taskbench::storage
