#include "runtime/spsc_ring.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace taskbench::runtime {
namespace {

TEST(SpscRingTest, PushPopPreservesFifoOrder) {
  SpscRing<int, 8> ring;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.Push(i));
  EXPECT_EQ(ring.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    EXPECT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.Pop(&out));
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRingTest, PushFailsWhenFull) {
  SpscRing<int, 4> ring;
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.Push(i));
  EXPECT_FALSE(ring.Push(99));
  int out = -1;
  EXPECT_TRUE(ring.Pop(&out));
  EXPECT_TRUE(ring.Push(99));  // one slot freed, push succeeds again
}

TEST(SpscRingTest, CursorsWrapAroundManyTimes) {
  SpscRing<uint64_t, 4> ring;
  // Far more transfers than the capacity: the free-running counters
  // must mask correctly on every lap.
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.Push(i));
    uint64_t out = 0;
    ASSERT_TRUE(ring.Pop(&out));
    ASSERT_EQ(out, i);
  }
}

TEST(SpscRingTest, StructMessagesSurviveTransfer) {
  struct Msg {
    int64_t a;
    double b;
    char text[24];
  };
  SpscRing<Msg, 8> ring;
  Msg in{42, 2.5, "hello"};
  ASSERT_TRUE(ring.Push(in));
  Msg out{};
  ASSERT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out.a, 42);
  EXPECT_EQ(out.b, 2.5);
  EXPECT_STREQ(out.text, "hello");
}

TEST(SpscRingTest, ConcurrentProducerConsumerDeliversEverythingInOrder) {
  // One producer thread, one consumer thread, a ring much smaller
  // than the transfer count — the acquire/release pairs must carry
  // every slot write across, in order. This is the single-process
  // stand-in for the cross-process coordinator/worker rings (same
  // atomics, same memory ordering rules).
  constexpr uint64_t kMessages = 200000;
  SpscRing<uint64_t, 64> ring;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kMessages; ++i) {
      while (!ring.Push(i)) std::this_thread::yield();
    }
  });
  uint64_t received = 0;
  uint64_t sum = 0;
  while (received < kMessages) {
    uint64_t out = 0;
    if (!ring.Pop(&out)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(out, received);  // strict FIFO
    sum += out;
    ++received;
  }
  producer.join();
  EXPECT_EQ(sum, kMessages * (kMessages - 1) / 2);
  EXPECT_EQ(ring.size(), 0u);
}

}  // namespace
}  // namespace taskbench::runtime
