// Golden-fixture coverage of the WfFormat importer: the committed
// instances under tests/data/wf/ must import with exactly the task /
// edge / byte counts recorded here, re-export losslessly, build into
// runnable graphs, and run through the service layer; everything
// under tests/data/wf/bad/ must be rejected with InvalidArgument and
// a contextual message — no partial instance, no death.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "common/status.h"
#include "runtime/thread_pool_executor.h"
#include "service/workflow_service.h"
#include "wf/build.h"
#include "wf/import.h"
#include "wf/instance.h"

namespace taskbench::wf {
namespace {

std::string FixtureDir() { return std::string(TASKBENCH_TEST_DATA_DIR) + "/wf"; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Instance ImportFixture(const std::string& name) {
  auto result = ImportWfFormat(ReadFile(FixtureDir() + "/" + name));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : Instance{};
}

TEST(WfImportTest, DiamondGoldenCounts) {
  const Instance instance = ImportFixture("diamond.json");
  EXPECT_EQ(instance.name, "diamond");
  EXPECT_EQ(instance.schema, "1.4");
  auto stats = ComputeStats(instance);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->tasks, 4);
  EXPECT_EQ(stats->files, 6);
  EXPECT_EQ(stats->edges, 4);
  EXPECT_EQ(stats->total_bytes, 21504u);
  EXPECT_EQ(stats->height, 3);
  EXPECT_EQ(stats->width, 2);
  // Types from the WfCommons name convention, runtimes from the
  // execution section.
  EXPECT_EQ(instance.tasks[0].type, "prep");
  EXPECT_EQ(instance.tasks[0].runtime_s, 1.5);
  EXPECT_EQ(instance.tasks[3].type, "merge");
  EXPECT_EQ(instance.tasks[3].runtime_s, 0.75);
}

TEST(WfImportTest, FlatSchemaGoldenCounts) {
  const Instance instance = ImportFixture("chain_flat.json");
  EXPECT_EQ(instance.name, "chain-flat");
  auto stats = ComputeStats(instance);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->tasks, 3);
  EXPECT_EQ(stats->files, 3);
  EXPECT_EQ(stats->edges, 2);
  EXPECT_EQ(stats->total_bytes, 4096u + 8192u + 128u);
  EXPECT_EQ(stats->height, 3);
  EXPECT_EQ(stats->width, 1);
  // Flat instances carry the type in `category` and the runtime in
  // either `runtime` or `runtimeInSeconds`.
  EXPECT_EQ(instance.tasks[0].type, "generate");
  EXPECT_EQ(instance.tasks[1].type, "compute");
  EXPECT_EQ(instance.tasks[1].runtime_s, 2.5);
  EXPECT_EQ(instance.tasks[2].type, "archive");
  EXPECT_EQ(instance.tasks[2].runtime_s, 0.5);
}

TEST(WfImportTest, MontageTrimmedGoldenCounts) {
  const Instance instance = ImportFixture("montage_trimmed.json");
  auto stats = ComputeStats(instance);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->tasks, 17);
  EXPECT_EQ(stats->files, 23);
  EXPECT_EQ(stats->edges, 31);
  EXPECT_EQ(stats->total_bytes, 60129013u);
  EXPECT_EQ(stats->height, 8);
  EXPECT_EQ(stats->width, 4);
  // Per-stage type counts of the Montage pipeline.
  std::map<std::string, int> by_type;
  for (const WfTask& task : instance.tasks) ++by_type[task.type];
  EXPECT_EQ(by_type["mProject"], 4);
  EXPECT_EQ(by_type["mDiffFit"], 4);
  EXPECT_EQ(by_type["mConcatFit"], 1);
  EXPECT_EQ(by_type["mBgModel"], 1);
  EXPECT_EQ(by_type["mBackground"], 4);
  EXPECT_EQ(by_type["mImgtbl"], 1);
  EXPECT_EQ(by_type["mAdd"], 1);
  EXPECT_EQ(by_type["mViewer"], 1);
  // Spot-check a recorded runtime survived the execution join.
  for (const WfTask& task : instance.tasks) {
    if (task.name == "mAdd_00001") {
      EXPECT_EQ(task.runtime_s, 8.7);
    }
  }
}

TEST(WfImportTest, GoldenFixturesRoundTripThroughExport) {
  for (const char* name :
       {"diamond.json", "chain_flat.json", "montage_trimmed.json"}) {
    SCOPED_TRACE(name);
    const Instance original = ImportFixture(name);
    auto reimported = ImportWfFormat(ExportWfFormat(original));
    ASSERT_TRUE(reimported.ok()) << reimported.status().ToString();
    std::string why;
    EXPECT_TRUE(StructurallyEqual(original, *reimported, &why)) << why;
  }
}

TEST(WfImportTest, MontageBuildsAndRunsOnThreadPool) {
  const Instance instance = ImportFixture("montage_trimmed.json");
  auto built = BuildInstance(instance, BuildOptions{});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->graph.num_tasks(), 17);
  EXPECT_EQ(built->graph.MaxHeight(), 8);
  EXPECT_EQ(built->graph.MaxWidth(), 4);
  runtime::RunOptions options;
  options.num_threads = 4;
  runtime::ThreadPoolExecutor executor(options);
  auto report = executor.Execute(built->graph);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->records.size(), 17u);
  for (const runtime::DataId id : built->data) {
    auto value = executor.FetchData(built->graph, id);
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_GT(value->size(), 0);
  }
}

TEST(WfImportTest, ImportedWorkflowRunsThroughService) {
  const Instance instance = ImportFixture("diamond.json");
  auto built = BuildInstance(instance, BuildOptions{});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto executor = std::make_shared<runtime::ThreadPoolExecutor>(
      runtime::RunOptions{});
  service::WorkflowService svc(executor, service::ServiceOptions{});
  auto handle = svc.Submit(std::move(built->graph));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto report = svc.Wait(*handle);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->records.size(), 4u);
}

struct BadFixture {
  const char* file;
  const char* expected_substring;
};

TEST(WfImportTest, BadFixturesAreRejectedWithContext) {
  const BadFixture kCases[] = {
      {"cycle.json", "dependency cycle"},
      {"dangling_parent.json", "unknown parent 'ghost_1'"},
      {"self_parent.json", "lists itself as parent"},
      {"dup_task.json", "duplicate task 'a_1'"},
      {"dup_file.json", "duplicate file 'in.dat'"},
      {"neg_runtime.json", "runtime must be a finite non-negative"},
      {"inf_runtime.json", "runtime must be a finite non-negative"},
      {"string_runtime.json", "expected a number"},
      {"neg_bytes.json", "size must be a finite non-negative"},
      {"frac_bytes.json", "size must be an integral byte count"},
      {"two_writers.json", "written by both"},
      {"unknown_file.json", "unknown file 'missing.dat'"},
      {"io_file.json", "both input and output"},
      {"missing_tasks.json", "neither 'specification' nor 'tasks'"},
      {"truncated.json", "unterminated string"},
  };
  std::set<std::string> covered;
  for (const BadFixture& c : kCases) {
    SCOPED_TRACE(c.file);
    covered.insert(c.file);
    auto result =
        ImportWfFormat(ReadFile(FixtureDir() + "/bad/" + c.file));
    ASSERT_FALSE(result.ok()) << "bad fixture imported successfully";
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << result.status().ToString();
    EXPECT_NE(result.status().message().find(c.expected_substring),
              std::string::npos)
        << result.status().ToString();
  }
  // Every committed bad fixture must appear in the table above, so a
  // new one cannot land without a pinned error expectation.
  for (const auto& entry :
       std::filesystem::directory_iterator(FixtureDir() + "/bad")) {
    EXPECT_EQ(covered.count(entry.path().filename().string()), 1u)
        << entry.path() << " is not in the expectations table";
  }
}

TEST(WfImportTest, TruncationsNeverCrashAndNeverLeakPartialGraphs) {
  // Chop the diamond fixture at every 16-byte boundary: every prefix
  // must fail cleanly (the only valid document is the full one).
  const std::string full = ReadFile(FixtureDir() + "/diamond.json");
  for (size_t cut = 0; cut + 1 < full.size(); cut += 16) {
    auto result = ImportWfFormat(full.substr(0, cut));
    ASSERT_FALSE(result.ok()) << "prefix of " << cut << " bytes imported";
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WfImportTest, GarbageInputsAreRejected) {
  for (const char* text :
       {"", "   ", "null", "42", "\"wf\"", "[]", "{}",
        "{\"workflow\": []}", "{\"workflow\": {\"tasks\": 3}}",
        "{\"workflow\": {\"specification\": {\"tasks\": [], \"files\":"
        " []}}}",
        "{unquoted: true}", "\xff\xfe"}) {
    SCOPED_TRACE(text);
    auto result = ImportWfFormat(text);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_FALSE(result.status().message().empty());
  }
}

}  // namespace
}  // namespace taskbench::wf
