#include "data/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace taskbench::data {
namespace {

TEST(MatrixTest, ConstructsWithFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  EXPECT_EQ(m.bytes(), 48u);
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) EXPECT_EQ(m.At(r, c), 1.5);
  }
}

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.bytes(), 0u);
}

TEST(MatrixTest, SliceExtractsWindow) {
  Matrix m(4, 4);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 4; ++c) m.At(r, c) = r * 10.0 + c;
  }
  auto slice = m.Slice(1, 2, 2, 2);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->rows(), 2);
  EXPECT_EQ(slice->At(0, 0), 12.0);
  EXPECT_EQ(slice->At(1, 1), 23.0);
}

TEST(MatrixTest, SliceOutOfBoundsFails) {
  Matrix m(3, 3);
  EXPECT_FALSE(m.Slice(2, 2, 2, 2).ok());
  EXPECT_FALSE(m.Slice(-1, 0, 1, 1).ok());
  EXPECT_TRUE(m.Slice(0, 0, 3, 3).ok());
}

TEST(MatrixTest, AssignSliceRoundTrip) {
  Matrix m(4, 4, 0.0);
  Matrix block(2, 2, 7.0);
  ASSERT_TRUE(m.AssignSlice(1, 1, block).ok());
  EXPECT_EQ(m.At(1, 1), 7.0);
  EXPECT_EQ(m.At(2, 2), 7.0);
  EXPECT_EQ(m.At(0, 0), 0.0);
  EXPECT_EQ(m.At(3, 3), 0.0);
}

TEST(MatrixTest, AssignSliceOutOfBoundsFails) {
  Matrix m(3, 3);
  Matrix block(2, 2);
  EXPECT_FALSE(m.AssignSlice(2, 2, block).ok());
}

TEST(MatrixTest, ApproxEquals) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 1.0);
  b.At(1, 1) += 1e-12;
  EXPECT_TRUE(a.ApproxEquals(b, 1e-9));
  b.At(1, 1) += 1.0;
  EXPECT_FALSE(a.ApproxEquals(b, 1e-9));
  EXPECT_NEAR(a.MaxAbsDiff(b), 1.0, 1e-9);
}

TEST(MatrixTest, MaxAbsDiffShapeMismatchIsInfinite) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_TRUE(std::isinf(a.MaxAbsDiff(b)));
}

TEST(MatrixTest, MultiplyMatchesHandComputation) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double va = 1;
  for (int64_t r = 0; r < 2; ++r)
    for (int64_t c = 0; c < 3; ++c) a.At(r, c) = va++;
  double vb = 7;
  for (int64_t r = 0; r < 3; ++r)
    for (int64_t c = 0; c < 2; ++c) b.At(r, c) = vb++;
  auto c = Multiply(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->At(0, 0), 58.0);
  EXPECT_EQ(c->At(0, 1), 64.0);
  EXPECT_EQ(c->At(1, 0), 139.0);
  EXPECT_EQ(c->At(1, 1), 154.0);
}

TEST(MatrixTest, MultiplyDimensionMismatchFails) {
  EXPECT_FALSE(Multiply(Matrix(2, 3), Matrix(2, 3)).ok());
}

TEST(MatrixTest, MultiplyIdentityIsNoop) {
  Matrix a(3, 3);
  for (int64_t r = 0; r < 3; ++r)
    for (int64_t c = 0; c < 3; ++c) a.At(r, c) = r * 3.0 + c;
  Matrix eye(3, 3, 0.0);
  for (int64_t i = 0; i < 3; ++i) eye.At(i, i) = 1.0;
  auto c = Multiply(a, eye);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->ApproxEquals(a));
}

TEST(MatrixTest, AddElementwise) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 2.5);
  auto c = Add(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->At(0, 0), 3.5);
  EXPECT_EQ(c->At(1, 1), 3.5);
}

TEST(MatrixTest, AddShapeMismatchFails) {
  EXPECT_FALSE(Add(Matrix(2, 2), Matrix(2, 3)).ok());
}

TEST(MatrixTest, SumAccumulatesAll) {
  Matrix m(3, 3, 2.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 18.0);
}

}  // namespace
}  // namespace taskbench::data
