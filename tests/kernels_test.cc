#include "data/kernels.h"

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "data/matrix.h"

namespace taskbench::data {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = dist(rng);
  return m;
}

struct MatmulShape {
  int64_t m, k, n;
};

// Shapes chosen to hit every edge of the packed-panel GEMM: smaller
// than one register tile, exact MR/NR/KC multiples, ragged i/j/k
// edges, single rows/columns, and a k panel boundary (KC = 256).
const std::vector<MatmulShape> kMatmulShapes = {
    {1, 1, 1},    {3, 5, 7},     {4, 16, 16},  {8, 32, 32},
    {5, 17, 19},  {67, 65, 33},  {129, 31, 5}, {1, 300, 17},
    {257, 3, 1},  {3, 1, 257},   {64, 256, 48}, {50, 257, 50},
};

TEST(KernelsTest, BlockedMultiplyMatchesNaiveAcrossShapes) {
  for (const MatmulShape& s : kMatmulShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, 1000 + s.m);
    const Matrix b = RandomMatrix(s.k, s.n, 2000 + s.n);
    auto reference = naive::Multiply(a, b);
    auto fast = blocked::Multiply(a, b);
    ASSERT_TRUE(reference.ok()) << s.m << "x" << s.k << "x" << s.n;
    ASSERT_TRUE(fast.ok()) << s.m << "x" << s.k << "x" << s.n;
    EXPECT_EQ(fast->rows(), s.m);
    EXPECT_EQ(fast->cols(), s.n);
    // Summation order differs between the variants, so compare to
    // rounding error (k accumulations of O(1) terms).
    EXPECT_LT(reference->MaxAbsDiff(*fast), 1e-10)
        << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(KernelsTest, BlockedMultiplyHandlesEmptyOperands) {
  // k = 0: a well-formed product of all zeros.
  auto zero_k = blocked::Multiply(Matrix(5, 0), Matrix(0, 3));
  ASSERT_TRUE(zero_k.ok());
  EXPECT_EQ(zero_k->rows(), 5);
  EXPECT_EQ(zero_k->cols(), 3);
  for (int64_t i = 0; i < zero_k->size(); ++i) {
    EXPECT_EQ(zero_k->data()[i], 0.0);
  }
  // Empty result shapes.
  auto zero_m = blocked::Multiply(Matrix(0, 4), Matrix(4, 3));
  ASSERT_TRUE(zero_m.ok());
  EXPECT_EQ(zero_m->rows(), 0);
  auto zero_n = blocked::Multiply(Matrix(3, 4), Matrix(4, 0));
  ASSERT_TRUE(zero_n.ok());
  EXPECT_EQ(zero_n->cols(), 0);
}

TEST(KernelsTest, BlockedMultiplyRejectsInnerMismatch) {
  EXPECT_FALSE(blocked::Multiply(Matrix(2, 3), Matrix(2, 3)).ok());
  EXPECT_FALSE(naive::Multiply(Matrix(2, 3), Matrix(2, 3)).ok());
}

TEST(KernelsTest, BlockedAddBitIdenticalToNaive) {
  const std::vector<std::pair<int64_t, int64_t>> shapes = {
      {1, 1}, {3, 7}, {8, 8}, {5, 1023}, {127, 3}, {0, 0}, {0, 5}};
  for (const auto& [rows, cols] : shapes) {
    const Matrix a = RandomMatrix(rows, cols, 31 + rows);
    const Matrix b = RandomMatrix(rows, cols, 77 + cols);
    auto reference = naive::Add(a, b);
    auto fast = blocked::Add(a, b);
    ASSERT_TRUE(reference.ok());
    ASSERT_TRUE(fast.ok());
    ASSERT_EQ(fast->rows(), rows);
    ASSERT_EQ(fast->cols(), cols);
    for (int64_t i = 0; i < reference->size(); ++i) {
      // Same addition order => exactly the same doubles.
      EXPECT_EQ(reference->data()[i], fast->data()[i]);
    }
  }
}

TEST(KernelsTest, BlockedAddRejectsShapeMismatch) {
  EXPECT_FALSE(blocked::Add(Matrix(2, 2), Matrix(2, 3)).ok());
}

TEST(KernelsTest, BlockedTransposeBitIdenticalToNaive) {
  // Tile-multiple, ragged, and degenerate shapes (tile is 64x64).
  const std::vector<std::pair<int64_t, int64_t>> shapes = {
      {1, 1}, {64, 64}, {128, 64}, {65, 63}, {1, 200}, {200, 1},
      {0, 0}, {0, 7},   {7, 0},    {100, 259}};
  for (const auto& [rows, cols] : shapes) {
    const Matrix m = RandomMatrix(rows, cols, 11 + rows * 7 + cols);
    const Matrix reference = naive::Transpose(m);
    const Matrix fast = blocked::Transpose(m);
    ASSERT_EQ(fast.rows(), cols);
    ASSERT_EQ(fast.cols(), rows);
    for (int64_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference.data()[i], fast.data()[i]);
    }
  }
}

TEST(KernelsTest, TransposeRoundTripIsIdentity) {
  const Matrix m = RandomMatrix(37, 91, 5);
  const Matrix round_trip = blocked::Transpose(blocked::Transpose(m));
  ASSERT_EQ(round_trip.rows(), m.rows());
  ASSERT_EQ(round_trip.cols(), m.cols());
  for (int64_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(round_trip.data()[i], m.data()[i]);
  }
}

TEST(KernelsTest, DispatchDefaultsToBlocked) {
  EXPECT_EQ(DefaultKernelVariant(), KernelVariant::kBlocked);
}

TEST(KernelsTest, DispatchFollowsSelectedVariant) {
  const Matrix a = RandomMatrix(33, 47, 1);
  const Matrix b = RandomMatrix(47, 29, 2);

  SetDefaultKernelVariant(KernelVariant::kNaive);
  auto via_naive = Multiply(a, b);
  SetDefaultKernelVariant(KernelVariant::kBlocked);
  auto via_blocked = Multiply(a, b);

  ASSERT_TRUE(via_naive.ok());
  ASSERT_TRUE(via_blocked.ok());
  auto reference = naive::Multiply(a, b);
  auto fast = blocked::Multiply(a, b);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(fast.ok());
  // Pinning the variant reproduces that variant's exact doubles.
  for (int64_t i = 0; i < reference->size(); ++i) {
    EXPECT_EQ(via_naive->data()[i], reference->data()[i]);
    EXPECT_EQ(via_blocked->data()[i], fast->data()[i]);
  }
}

TEST(KernelsDeathTest, MatrixRejectsNegativeDimensions) {
  EXPECT_DEATH(Matrix(-1, 3), "non-negative");
  EXPECT_DEATH(Matrix(3, -2), "non-negative");
}

TEST(KernelsDeathTest, MatrixRejectsElementCountOverflow) {
  // 2^32 x 2^32 overflows int64_t element count (the historic bug:
  // rows * cols multiplied in int64_t before the size_t cast).
  const int64_t big = int64_t{1} << 32;
  EXPECT_DEATH(Matrix(big, big), "overflow");
}

}  // namespace
}  // namespace taskbench::data
