#include "runtime/thread_pool_executor.h"

#include <atomic>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace taskbench::runtime {
namespace {

KernelFn CopyKernel() {
  return [](const std::vector<const data::Matrix*>& inputs,
            const std::vector<data::Matrix*>& outputs) -> Status {
    *outputs[0] = *inputs[0];
    return Status::OK();
  };
}

KernelFn AddOneKernel() {
  return [](const std::vector<const data::Matrix*>& inputs,
            const std::vector<data::Matrix*>& outputs) -> Status {
    data::Matrix m = *inputs[0];
    for (int64_t i = 0; i < m.size(); ++i) m.data()[i] += 1.0;
    *outputs[0] = std::move(m);
    return Status::OK();
  };
}

TaskSpec SimpleTask(DataId in, DataId out, KernelFn kernel) {
  TaskSpec spec;
  spec.type = "simple";
  spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
  spec.kernel = std::move(kernel);
  return spec;
}

class ThreadPoolExecutorModes : public ::testing::TestWithParam<bool> {
 protected:
  ThreadPoolExecutor MakeExecutor(int threads = 4) {
    RunOptions options;
    options.num_threads = threads;
    options.use_storage = GetParam();
    return ThreadPoolExecutor(options);
  }
};

TEST_P(ThreadPoolExecutorModes, RunsSingleTask) {
  TaskGraph graph;
  const DataId in = graph.AddData(data::Matrix(3, 3, 2.0));
  const DataId out = graph.AddData(static_cast<uint64_t>(72));
  ASSERT_TRUE(graph.Submit(SimpleTask(in, out, AddOneKernel())).ok());

  ThreadPoolExecutor executor = MakeExecutor();
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(), 1u);
  EXPECT_GT(report->makespan, 0.0);

  auto result = executor.FetchData(graph, out);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ApproxEquals(data::Matrix(3, 3, 3.0)));
}

TEST_P(ThreadPoolExecutorModes, HonorsDependencyChain) {
  TaskGraph graph;
  const DataId d0 = graph.AddData(data::Matrix(2, 2, 0.0));
  const DataId d1 = graph.AddData(static_cast<uint64_t>(32));
  const DataId d2 = graph.AddData(static_cast<uint64_t>(32));
  const DataId d3 = graph.AddData(static_cast<uint64_t>(32));
  ASSERT_TRUE(graph.Submit(SimpleTask(d0, d1, AddOneKernel())).ok());
  ASSERT_TRUE(graph.Submit(SimpleTask(d1, d2, AddOneKernel())).ok());
  ASSERT_TRUE(graph.Submit(SimpleTask(d2, d3, AddOneKernel())).ok());

  ThreadPoolExecutor executor = MakeExecutor();
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  auto result = executor.FetchData(graph, d3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ApproxEquals(data::Matrix(2, 2, 3.0)));

  // Level ordering respected in wall-clock: each task starts after
  // its dependency ended.
  const auto& records = report->records;
  EXPECT_GE(records[1].start, records[0].end - 1e-9);
  EXPECT_GE(records[2].start, records[1].end - 1e-9);
}

TEST_P(ThreadPoolExecutorModes, RunsWideGraphsConcurrently) {
  TaskGraph graph;
  const DataId in = graph.AddData(data::Matrix(8, 8, 1.0));
  std::vector<DataId> outs;
  for (int i = 0; i < 32; ++i) {
    const DataId out = graph.AddData(static_cast<uint64_t>(512));
    ASSERT_TRUE(graph.Submit(SimpleTask(in, out, CopyKernel())).ok());
    outs.push_back(out);
  }
  ThreadPoolExecutor executor = MakeExecutor(8);
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(), 32u);
  for (const DataId out : outs) {
    auto result = executor.FetchData(graph, out);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->ApproxEquals(data::Matrix(8, 8, 1.0)));
  }
}

TEST_P(ThreadPoolExecutorModes, InOutUpdatesInPlace) {
  TaskGraph graph;
  const DataId acc = graph.AddData(data::Matrix(2, 2, 10.0));
  TaskSpec spec;
  spec.type = "bump";
  spec.params = {{acc, Dir::kInOut}};
  spec.kernel = [](const std::vector<const data::Matrix*>& inputs,
                   const std::vector<data::Matrix*>& outputs) -> Status {
    EXPECT_EQ(inputs.size(), 1u);
    EXPECT_EQ(inputs[0], outputs[0]);  // aliased view
    for (int64_t i = 0; i < outputs[0]->size(); ++i) {
      outputs[0]->data()[i] *= 2.0;
    }
    return Status::OK();
  };
  ASSERT_TRUE(graph.Submit(spec).ok());
  ASSERT_TRUE(graph.Submit(spec).ok());  // WAW chained second update

  ThreadPoolExecutor executor = MakeExecutor();
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  auto result = executor.FetchData(graph, acc);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ApproxEquals(data::Matrix(2, 2, 40.0)));
}

TEST_P(ThreadPoolExecutorModes, KernelFailureAbortsRun) {
  TaskGraph graph;
  const DataId in = graph.AddData(data::Matrix(2, 2, 1.0));
  const DataId out = graph.AddData(static_cast<uint64_t>(32));
  TaskSpec spec = SimpleTask(in, out, nullptr);
  spec.kernel = [](const std::vector<const data::Matrix*>&,
                   const std::vector<data::Matrix*>&) -> Status {
    return Status::Internal("kernel exploded");
  };
  ASSERT_TRUE(graph.Submit(spec).ok());

  ThreadPoolExecutor executor = MakeExecutor();
  auto report = executor.Execute(graph);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

TEST_P(ThreadPoolExecutorModes, MissingKernelIsFailedPrecondition) {
  TaskGraph graph;
  const DataId in = graph.AddData(data::Matrix(2, 2, 1.0));
  const DataId out = graph.AddData(static_cast<uint64_t>(32));
  TaskSpec spec;
  spec.type = "no-kernel";
  spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
  ASSERT_TRUE(graph.Submit(spec).ok());

  ThreadPoolExecutor executor = MakeExecutor();
  auto report = executor.Execute(graph);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST_P(ThreadPoolExecutorModes, RecordsStageTimes) {
  TaskGraph graph;
  const DataId in = graph.AddData(data::Matrix(64, 64, 1.0));
  const DataId out = graph.AddData(static_cast<uint64_t>(64 * 64 * 8));
  ASSERT_TRUE(graph.Submit(SimpleTask(in, out, CopyKernel())).ok());
  ThreadPoolExecutor executor = MakeExecutor(1);
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  const auto& rec = report->records[0];
  EXPECT_GE(rec.stages.parallel_fraction, 0.0);
  if (GetParam()) {
    // Storage mode measures real (de)serialization.
    EXPECT_GT(rec.stages.deserialize, 0.0);
    EXPECT_GT(rec.stages.serialize, 0.0);
  }
  EXPECT_GE(rec.end, rec.start);
}

TEST_P(ThreadPoolExecutorModes, EmptyGraphSucceeds) {
  TaskGraph graph;
  ThreadPoolExecutor executor = MakeExecutor();
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->records.empty());
  EXPECT_EQ(report->makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(StorageModes, ThreadPoolExecutorModes,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "WithStorage" : "InMemory";
                         });

TEST(ThreadPoolExecutorTest, ManyThreadsManyTasksStress) {
  TaskGraph graph;
  const DataId in = graph.AddData(data::Matrix(4, 4, 1.0));
  DataId current = in;
  // Alternating fan-out/fan-in waves.
  for (int wave = 0; wave < 5; ++wave) {
    std::vector<DataId> outs;
    for (int i = 0; i < 16; ++i) {
      const DataId out = graph.AddData(static_cast<uint64_t>(128));
      ASSERT_TRUE(graph.Submit(SimpleTask(current, out, AddOneKernel())).ok());
      outs.push_back(out);
    }
    // Fan-in: sum all outputs into one.
    const DataId joined = graph.AddData(static_cast<uint64_t>(128));
    TaskSpec join;
    join.type = "join";
    for (DataId out : outs) join.params.push_back({out, Dir::kIn});
    join.params.push_back({joined, Dir::kOut});
    join.kernel = [](const std::vector<const data::Matrix*>& inputs,
                     const std::vector<data::Matrix*>& outputs) -> Status {
      data::Matrix acc = *inputs[0];
      for (size_t i = 1; i < inputs.size(); ++i) {
        TB_ASSIGN_OR_RETURN(acc, data::Add(acc, *inputs[i]));
      }
      *outputs[0] = std::move(acc);
      return Status::OK();
    };
    ASSERT_TRUE(graph.Submit(join).ok());
    current = joined;
  }
  RunOptions options;
  options.num_threads = 8;
  options.use_storage = true;
  ThreadPoolExecutor executor(options);
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(), 5u * 17u);
  auto result = executor.FetchData(graph, current);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows(), 4);
}

}  // namespace
}  // namespace taskbench::runtime
