// Simulator-level behaviour of the cost-model scheduler family:
// CPU->GPU escalation in hybrid mode, speculative straggler hedging
// under a slow-node fault plan, and the fault-free no-op guarantees
// of both knobs.

#include <gtest/gtest.h>

#include "common/units.h"
#include "hw/cluster.h"
#include "runtime/fault.h"
#include "runtime/simulated_executor.h"

namespace taskbench::runtime {
namespace {

/// `n` independent CPU-targeted tasks of ~`cpu_seconds` on one core
/// that a device would finish ~`gpu_benefit`x faster (tuned via the
/// task's GPU efficiency curve, like hybrid_test's GpuTasks).
TaskGraph CpuTasks(int n, double cpu_seconds, double gpu_benefit) {
  TaskGraph graph;
  for (int i = 0; i < n; ++i) {
    const DataId in = graph.AddData(1024);
    const DataId out = graph.AddData(1024);
    TaskSpec spec;
    spec.type = "crunch";
    spec.processor = Processor::kCpu;
    spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
    spec.cost.parallel.flops = cpu_seconds * 16e9;
    spec.cost.gpu_curve.peak_fraction = gpu_benefit * 16e9 / 360e9;
    spec.cost.gpu_working_set_bytes = 64 * kMiB;
    spec.cost.input_bytes = 1024;
    spec.cost.output_bytes = 1024;
    EXPECT_TRUE(graph.Submit(std::move(spec)).ok());
  }
  return graph;
}

RunOptions CostOptions(bool hybrid) {
  RunOptions options;
  options.policy = SchedulingPolicy::kCostModel;
  options.hybrid = hybrid;
  options.storage = hw::StorageArchitecture::kLocalDisk;
  return options;
}

TEST(CostEscalationTest, UpgradesGpuFriendlyCpuTasksInHybridMode) {
  // 8 cores + 2 idle GPUs. 10 three-second CPU tasks that a device
  // finishes ~6x faster clear the 2x benefit threshold: escalation
  // moves some onto the GPUs and shortens the run.
  const hw::ClusterSpec cluster = hw::SingleNode(8, 2);
  const TaskGraph graph = CpuTasks(10, 3.0, 6.0);

  auto escalated =
      SimulatedExecutor(cluster, CostOptions(true)).Execute(graph);
  RunOptions no_escalation = CostOptions(true);
  no_escalation.sched.disable_escalation = true;
  auto disabled =
      SimulatedExecutor(cluster, no_escalation).Execute(graph);
  ASSERT_TRUE(escalated.ok()) << escalated.status().ToString();
  ASSERT_TRUE(disabled.ok()) << disabled.status().ToString();

  int on_gpu = 0;
  for (const TaskRecord& rec : escalated->records) {
    if (rec.processor == Processor::kGpu) ++on_gpu;
  }
  EXPECT_GT(on_gpu, 0);
  for (const TaskRecord& rec : disabled->records) {
    EXPECT_EQ(rec.processor, Processor::kCpu);
  }
  EXPECT_LT(escalated->makespan, disabled->makespan);
}

TEST(CostEscalationTest, NeverEscalatesOutsideHybridMode) {
  // Without hybrid placement the user's processor choice is a
  // contract: escalation must stay off even under the cost policy.
  const hw::ClusterSpec cluster = hw::SingleNode(8, 2);
  const TaskGraph graph = CpuTasks(10, 3.0, 6.0);
  auto report =
      SimulatedExecutor(cluster, CostOptions(false)).Execute(graph);
  ASSERT_TRUE(report.ok());
  for (const TaskRecord& rec : report->records) {
    EXPECT_EQ(rec.processor, Processor::kCpu);
  }
}

TEST(CostEscalationTest, SkipsTasksBelowBenefitThreshold) {
  // A device only ~1.5x faster than a core is under the default 2x
  // benefit bar: everything stays on the CPUs.
  const hw::ClusterSpec cluster = hw::SingleNode(8, 2);
  const TaskGraph graph = CpuTasks(10, 3.0, 1.2);
  auto report =
      SimulatedExecutor(cluster, CostOptions(true)).Execute(graph);
  ASSERT_TRUE(report.ok());
  for (const TaskRecord& rec : report->records) {
    EXPECT_EQ(rec.processor, Processor::kCpu);
  }
}

/// Slow-node plan: node 1 computes `factor` x slower from t=0.01 on.
FaultPlan SlowNodePlan(double factor) {
  FaultPlan plan;
  FaultEvent slow;
  slow.kind = FaultKind::kSlowNode;
  slow.time = 0.01;
  slow.node = 1;
  slow.factor = factor;
  plan.events.push_back(slow);
  return plan;
}

TEST(CostHedgingTest, DuplicatesStragglersAndShortensMakespan) {
  // 4 nodes x 2 cores, one node 10x slow, 24 one-second tasks: the
  // slow node's first wave blows past the 1.5x hedge threshold while
  // the healthy nodes keep producing scheduling edges, so twins
  // launch, win, and cancel the stragglers. The factor is large
  // enough that the task pool drains before the slow node frees up —
  // otherwise the final wave lands there with no later scheduling
  // edge left to hedge it on.
  hw::ClusterSpec cluster = hw::SingleNode(2, 0);
  cluster.num_nodes = 4;
  const TaskGraph graph = CpuTasks(24, 1.0, 0.0);

  RunOptions hedged = CostOptions(false);
  hedged.faults = SlowNodePlan(10.0);
  RunOptions unhedged = hedged;
  unhedged.sched.disable_hedging = true;

  auto with = SimulatedExecutor(cluster, hedged).Execute(graph);
  auto without = SimulatedExecutor(cluster, unhedged).Execute(graph);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  ASSERT_TRUE(without.ok()) << without.status().ToString();

  EXPECT_GT(with->faults.hedges, 0);
  EXPECT_EQ(without->faults.hedges, 0);
  EXPECT_LT(with->makespan, without->makespan);
  // Losing twins are logged as cancelled attempts, never as retries.
  int cancelled = 0;
  for (const TaskAttempt& a : with->attempts) {
    if (a.outcome == AttemptOutcome::kHedgeCancelled) ++cancelled;
  }
  EXPECT_GT(cancelled, 0);
  EXPECT_LE(cancelled, with->faults.hedges);
  EXPECT_EQ(with->faults.retries, 0);
  // Every task still completed exactly once in the record table.
  ASSERT_EQ(with->records.size(), static_cast<size_t>(graph.num_tasks()));
}

TEST(CostHedgingTest, FaultFreeRunsIgnoreTheHedgingKnob) {
  // Hedging is a fault-path feature: without a fault plan the report
  // must be identical whether the knob is on or off.
  hw::ClusterSpec cluster = hw::SingleNode(2, 0);
  cluster.num_nodes = 4;
  const TaskGraph graph = CpuTasks(12, 1.0, 0.0);
  RunOptions on = CostOptions(false);
  RunOptions off = CostOptions(false);
  off.sched.disable_hedging = true;
  auto a = SimulatedExecutor(cluster, on).Execute(graph);
  auto b = SimulatedExecutor(cluster, off).Execute(graph);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->makespan, b->makespan);
  EXPECT_EQ(a->scheduler_overhead, b->scheduler_overhead);
  EXPECT_EQ(a->faults.hedges, 0);
  EXPECT_EQ(b->faults.hedges, 0);
  ASSERT_EQ(a->records.size(), b->records.size());
  for (size_t i = 0; i < a->records.size(); ++i) {
    EXPECT_EQ(a->records[i].start, b->records[i].start);
    EXPECT_EQ(a->records[i].end, b->records[i].end);
    EXPECT_EQ(a->records[i].node, b->records[i].node);
  }
}

}  // namespace
}  // namespace taskbench::runtime
