// Unit tests for the taskbench::obs telemetry layer: the JSON
// validator, the metrics instruments/registry, and the streaming
// Chrome-trace writer.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace_writer.h"

namespace taskbench::obs {
namespace {

// ---------------------------------------------------------------------------
// ValidateJson

TEST(ValidateJsonTest, AcceptsScalars) {
  EXPECT_TRUE(ValidateJson("0").ok());
  EXPECT_TRUE(ValidateJson("-12").ok());
  EXPECT_TRUE(ValidateJson("3.5e-7").ok());
  EXPECT_TRUE(ValidateJson("true").ok());
  EXPECT_TRUE(ValidateJson("false").ok());
  EXPECT_TRUE(ValidateJson("null").ok());
  EXPECT_TRUE(ValidateJson("\"hi\"").ok());
}

TEST(ValidateJsonTest, AcceptsContainers) {
  EXPECT_TRUE(ValidateJson("{}").ok());
  EXPECT_TRUE(ValidateJson("[]").ok());
  EXPECT_TRUE(ValidateJson("[1, 2, 3]").ok());
  EXPECT_TRUE(ValidateJson("{\"a\": [1, {\"b\": null}], \"c\": \"d\"}").ok());
  EXPECT_TRUE(ValidateJson("  {\n\t\"k\" : [ ]\r}  ").ok());
}

TEST(ValidateJsonTest, AcceptsEscapes) {
  EXPECT_TRUE(ValidateJson("\"a\\\"b\\\\c\\n\\t\\u00e9\"").ok());
  EXPECT_TRUE(ValidateJson("\"\\/\\b\\f\\r\"").ok());
}

TEST(ValidateJsonTest, RejectsMalformed) {
  EXPECT_FALSE(ValidateJson("").ok());
  EXPECT_FALSE(ValidateJson("{").ok());
  EXPECT_FALSE(ValidateJson("[1,]").ok());
  EXPECT_FALSE(ValidateJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ValidateJson("{1: 2}").ok());     // non-string key
  EXPECT_FALSE(ValidateJson("\"open").ok());     // unterminated string
  EXPECT_FALSE(ValidateJson("01").ok());         // leading zero
  EXPECT_FALSE(ValidateJson("1.").ok());         // empty fraction
  EXPECT_FALSE(ValidateJson("1e").ok());         // empty exponent
  EXPECT_FALSE(ValidateJson("nul").ok());
  EXPECT_FALSE(ValidateJson("truefalse").ok());  // trailing content
  EXPECT_FALSE(ValidateJson("{} {}").ok());      // two documents
}

TEST(ValidateJsonTest, RejectsBadStrings) {
  EXPECT_FALSE(ValidateJson("\"a\nb\"").ok());    // raw control char
  EXPECT_FALSE(ValidateJson("\"\\x41\"").ok());   // invalid escape
  EXPECT_FALSE(ValidateJson("\"\\u12\"").ok());   // short \u escape
  EXPECT_FALSE(ValidateJson("\"\\u12gz\"").ok()); // non-hex \u escape
}

TEST(ValidateJsonTest, ErrorsCarryByteOffset) {
  const Status s = ValidateJson("[1, oops]");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("at byte 4"), std::string::npos)
      << s.ToString();
}

TEST(ValidateJsonTest, DeepNestingIsBounded) {
  // Just under the depth cap parses; far past it is rejected rather
  // than blowing the stack.
  std::string ok_doc(200, '[');
  ok_doc += std::string(200, ']');
  EXPECT_TRUE(ValidateJson(ok_doc).ok());
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(ValidateJson(deep).ok());
}

// ---------------------------------------------------------------------------
// Counter / Gauge / Histogram

TEST(CounterTest, AddAndMerge) {
  Counter a, b;
  a.Add();
  a.Add(4);
  b.Add(10);
  EXPECT_EQ(a.value(), 5);
  a.Merge(b);
  EXPECT_EQ(a.value(), 15);
}

TEST(GaugeTest, SetAndSetMax) {
  Gauge g;
  g.Set(3.0);
  g.SetMax(2.0);
  EXPECT_EQ(g.value(), 3.0);
  g.SetMax(7.5);
  EXPECT_EQ(g.value(), 7.5);
  g.Set(1.0);  // plain Set overwrites downward
  EXPECT_EQ(g.value(), 1.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  h.Record(2.0);
  h.Record(8.0);
  h.Record(0.5);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 10.5);
  EXPECT_EQ(h.min(), 0.5);
  EXPECT_EQ(h.max(), 8.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.5);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  Histogram h;
  h.Record(3.0);  // (2, 4] -> upper bound 4
  int populated = -1;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (h.bucket_count(i) > 0) {
      EXPECT_EQ(populated, -1) << "one value should fill one bucket";
      populated = i;
    }
  }
  ASSERT_NE(populated, -1);
  EXPECT_EQ(Histogram::BucketUpperBound(populated), 4.0);
  EXPECT_GE(3.0, Histogram::BucketUpperBound(populated) / 2);
}

TEST(HistogramTest, OutOfRangeValuesClampToEdgeBuckets) {
  Histogram h;
  h.Record(1e-300);  // far below 2^kMinExp
  h.Record(1e300);   // far above the top bucket
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 1);
  EXPECT_EQ(h.count(), 2);
}

TEST(HistogramTest, ZeroAndNegativeSkipBuckets) {
  Histogram h;
  h.Record(0.0);
  h.Record(-1.0);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.min(), -1.0);
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(h.bucket_count(i), 0);
  }
}

TEST(HistogramTest, Merge) {
  Histogram a, b;
  a.Record(1.0);
  a.Record(2.0);
  b.Record(16.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.sum(), 19.0);
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 16.0);
  // Merging an empty histogram is a no-op.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3);
  // Merging into an empty histogram copies the stats.
  Histogram c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 3);
  EXPECT_EQ(c.min(), 1.0);
}

TEST(HistogramTest, JsonIsValid) {
  Histogram h;
  h.Record(0.001);
  h.Record(0.002);
  h.Record(4.0);
  std::ostringstream out;
  h.WriteJson(out);
  EXPECT_TRUE(ValidateJson(out.str()).ok()) << out.str();
  EXPECT_NE(out.str().find("\"count\": 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, HandlesAreStableAndShared) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  Counter* c1 = reg.counter("x");
  Counter* c2 = reg.counter("x");
  EXPECT_EQ(c1, c2);  // same name -> same instrument
  c1->Add(3);
  EXPECT_EQ(reg.counter("x")->value(), 3);
  EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistryTest, MergeFromCombinesAndCreates) {
  MetricsRegistry a, b;
  a.counter("tasks")->Add(5);
  a.gauge("peak")->Set(2.0);
  b.counter("tasks")->Add(7);
  b.counter("steals")->Add(1);
  b.gauge("peak")->Set(9.0);
  b.histogram("lat")->Record(0.5);
  a.MergeFrom(b);
  EXPECT_EQ(a.counter("tasks")->value(), 12);
  EXPECT_EQ(a.counter("steals")->value(), 1);   // created by merge
  EXPECT_EQ(a.gauge("peak")->value(), 9.0);     // gauges merge by max
  EXPECT_EQ(a.histogram("lat")->count(), 1);
}

TEST(MetricsRegistryTest, MergeGaugeKeepsLocalMax) {
  MetricsRegistry a, b;
  a.gauge("peak")->Set(10.0);
  b.gauge("peak")->Set(4.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.gauge("peak")->value(), 10.0);
}

TEST(MetricsRegistryTest, JsonIsValidAndSorted) {
  MetricsRegistry reg;
  reg.counter("b.second")->Add(2);
  reg.counter("a.first")->Add(1);
  reg.gauge("g")->Set(1.5);
  reg.histogram("h")->Record(0.25);
  std::ostringstream out;
  reg.WriteJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(ValidateJson(json).ok()) << json;
  const size_t first = json.find("a.first");
  const size_t second = json.find("b.second");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
}

TEST(MetricsRegistryTest, JsonEscapesNames) {
  MetricsRegistry reg;
  reg.counter("weird \"name\" \\ here")->Add(1);
  std::ostringstream out;
  reg.WriteJson(out);
  EXPECT_TRUE(ValidateJson(out.str()).ok()) << out.str();
  EXPECT_NE(out.str().find("\\\"name\\\""), std::string::npos);
}

TEST(MetricsRegistryTest, EmptyRegistryJson) {
  MetricsRegistry reg;
  std::ostringstream out;
  reg.WriteJson(out);
  EXPECT_TRUE(ValidateJson(out.str()).ok()) << out.str();
}

// ---------------------------------------------------------------------------
// TraceWriter

TEST(TraceWriterTest, EmptyDocumentIsValid) {
  std::ostringstream out;
  {
    TraceWriter w(&out);
    w.Close();
  }
  EXPECT_TRUE(ValidateJson(out.str()).ok()) << out.str();
}

TEST(TraceWriterTest, EventsFormValidJson) {
  std::ostringstream out;
  TraceWriter w(&out);
  w.CompleteEvent("task #1 (CPU)", "task", 0, 1, 12.0, 340.5);
  w.CompleteEvent("deserialize", "stage", 0, 1, 12.0, 3.0);
  w.FlowStart("dep", 7, 0, 1, 352.5);
  w.FlowFinish("dep", 7, 0, 2, 400.0);
  w.ProcessName(0, "node 0");
  w.Close();
  const std::string json = out.str();
  EXPECT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_EQ(w.events_written(), 5u);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
}

TEST(TraceWriterTest, EscapesNames) {
  std::ostringstream out;
  TraceWriter w(&out);
  w.CompleteEvent("evil \"quoted\" \\ name", "cat\n", 0, 0, 0.0, 1.0);
  w.Close();
  EXPECT_TRUE(ValidateJson(out.str()).ok()) << out.str();
  EXPECT_NE(out.str().find("\\\"quoted\\\""), std::string::npos);
}

TEST(TraceWriterTest, CloseIsIdempotentAndDestructorCloses) {
  std::ostringstream out;
  {
    TraceWriter w(&out);
    w.CompleteEvent("t", "task", 0, 0, 0.0, 1.0);
    w.Close();
    w.Close();  // second Close must not duplicate the epilogue
  }             // destructor must not either
  EXPECT_TRUE(ValidateJson(out.str()).ok()) << out.str();
}

TEST(TraceWriterTest, DestructorClosesUnclosedDocument) {
  std::ostringstream out;
  {
    TraceWriter w(&out);
    w.CompleteEvent("t", "task", 0, 0, 0.0, 1.0);
  }
  EXPECT_TRUE(ValidateJson(out.str()).ok()) << out.str();
}

}  // namespace
}  // namespace taskbench::obs
