// Property tests of the analytic cost model: monotonicity and bound
// invariants that must hold for any task descriptor.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "perf/cost_model.h"

namespace taskbench::perf {
namespace {

TaskCost RandomCost(Rng* rng) {
  TaskCost cost;
  cost.parallel.flops = rng->Uniform(1e6, 1e13);
  cost.parallel.bytes = rng->Uniform(1e6, 1e11);
  cost.serial.flops = rng->Uniform(0, 1e10);
  cost.serial.bytes = rng->Uniform(0, 1e10);
  cost.h2d_bytes = rng->NextBounded(1'000'000'000);
  cost.d2h_bytes = rng->NextBounded(1'000'000'000);
  cost.num_transfers = 1 + static_cast<int>(rng->NextBounded(4));
  cost.num_kernels = 1 + static_cast<int>(rng->NextBounded(8));
  cost.input_bytes = cost.h2d_bytes;
  cost.output_bytes = cost.d2h_bytes;
  cost.gpu_working_set_bytes = rng->NextBounded(11ULL << 30);
  cost.gpu_curve.peak_fraction = rng->Uniform(0.1, 1.0);
  cost.gpu_curve.ramp_work = rng->Uniform(0, 1e11);
  return cost;
}

class CostModelPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  CostModel model_{hw::MinotauroCluster()};
};

TEST_P(CostModelPropertyTest, AllStagesNonNegativeAndFinite) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const TaskCost cost = RandomCost(&rng);
    for (double t : {model_.CpuParallelFraction(cost),
                     model_.GpuParallelFraction(cost),
                     model_.SerialFraction(cost), model_.CpuGpuComm(cost)}) {
      EXPECT_GE(t, 0.0);
      EXPECT_TRUE(std::isfinite(t));
    }
  }
}

TEST_P(CostModelPropertyTest, MoreWorkNeverRunsFaster) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    TaskCost cost = RandomCost(&rng);
    TaskCost bigger = cost;
    bigger.parallel.flops *= 2;
    bigger.parallel.bytes *= 2;
    EXPECT_GE(model_.CpuParallelFraction(bigger),
              model_.CpuParallelFraction(cost));
    EXPECT_GE(model_.GpuParallelFraction(bigger),
              model_.GpuParallelFraction(cost));
  }
}

TEST_P(CostModelPropertyTest, GpuSpeedupBoundedByPeakRatio) {
  // The parallel-fraction speedup can never exceed the larger of the
  // device peak ratios (flop roof 360/16, byte roof 160/6): efficiency
  // curves only reduce the GPU side.
  Rng rng(GetParam());
  const double max_ratio =
      std::max(360e9 / 16e9, 160e9 / 6e9);  // flop and byte roofs
  for (int i = 0; i < 100; ++i) {
    TaskCost cost = RandomCost(&rng);
    const double speedup = model_.CpuParallelFraction(cost) /
                           model_.GpuParallelFraction(cost);
    EXPECT_LE(speedup, max_ratio * 1.0001);
  }
}

TEST_P(CostModelPropertyTest, UtilizationMonotoneInWork) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    GpuCurve curve;
    curve.ramp_work = rng.Uniform(1e6, 1e12);
    curve.alpha = rng.Uniform(0.3, 1.5);
    double prev = 0;
    for (double w = 1e3; w < 1e15; w *= 10) {
      const double u = curve.UtilizationFor(w);
      EXPECT_GE(u, prev);
      EXPECT_GT(u, 0.0);
      EXPECT_LE(u, 1.0);
      prev = u;
    }
  }
}

TEST_P(CostModelPropertyTest, OomMonotoneInWorkingSet) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    TaskCost cost = RandomCost(&rng);
    if (model_.CheckGpuFit(cost).ok()) {
      TaskCost smaller = cost;
      smaller.gpu_working_set_bytes /= 2;
      EXPECT_TRUE(model_.CheckGpuFit(smaller).ok());
    } else {
      TaskCost bigger = cost;
      bigger.gpu_working_set_bytes *= 2;
      EXPECT_FALSE(model_.CheckGpuFit(bigger).ok());
    }
  }
}

TEST_P(CostModelPropertyTest, EstimateStagesConsistentWithParts) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const TaskCost cost = RandomCost(&rng);
    auto stages = model_.EstimateStages(
        cost, Processor::kCpu, hw::StorageArchitecture::kSharedDisk);
    ASSERT_TRUE(stages.ok());
    EXPECT_DOUBLE_EQ(stages->parallel_fraction,
                     model_.CpuParallelFraction(cost));
    EXPECT_DOUBLE_EQ(stages->serial_fraction, model_.SerialFraction(cost));
    EXPECT_DOUBLE_EQ(stages->deserialize,
                     model_.Deserialize(cost,
                                        hw::StorageArchitecture::kSharedDisk));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostModelPropertyTest,
                         ::testing::Values(1, 17, 42, 1337));

}  // namespace
}  // namespace taskbench::perf
