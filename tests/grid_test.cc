#include "data/grid.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "data/generators.h"

namespace taskbench::data {
namespace {

DatasetSpec Square(int64_t n) { return DatasetSpec{"square", n, n}; }

TEST(GridSpecTest, PaperExamplePartitioning) {
  // Figure 5: 8x8 dataset, 2x4 blocks -> 4x2 grid of 8 blocks.
  auto spec = GridSpec::Create(DatasetSpec{"d", 8, 8}, 2, 4);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->grid_rows(), 4);
  EXPECT_EQ(spec->grid_cols(), 2);
  EXPECT_EQ(spec->num_blocks(), 8);
  EXPECT_EQ(spec->full_block_bytes(), 2u * 4u * 8u);
  EXPECT_EQ(spec->GridDimString(), "4x2");
}

TEST(GridSpecTest, Eq2InverseProportionality) {
  // Section 3.5: k = i/m, l = j/n. Doubling the block dimension
  // halves the grid dimension.
  auto coarse = GridSpec::Create(Square(1024), 512, 512);
  auto fine = GridSpec::Create(Square(1024), 256, 256);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(coarse->grid_rows() * 2, fine->grid_rows());
  EXPECT_EQ(coarse->num_blocks() * 4, fine->num_blocks());
}

TEST(GridSpecTest, BlockLargerThanDatasetRejected) {
  // The paper's constraint: block dimension cannot exceed the dataset
  // dimension.
  EXPECT_FALSE(GridSpec::Create(Square(64), 128, 32).ok());
  EXPECT_FALSE(GridSpec::Create(Square(64), 32, 128).ok());
  EXPECT_TRUE(GridSpec::Create(Square(64), 64, 64).ok());
}

TEST(GridSpecTest, RejectsNonPositive) {
  EXPECT_FALSE(GridSpec::Create(Square(8), 0, 4).ok());
  EXPECT_FALSE(GridSpec::Create(Square(8), 4, -1).ok());
  EXPECT_FALSE(GridSpec::Create(DatasetSpec{"bad", 0, 8}, 1, 1).ok());
}

TEST(GridSpecTest, CreateFromGridDim) {
  auto spec = GridSpec::CreateFromGridDim(Square(32768), 16, 16);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->block_rows(), 2048);
  EXPECT_EQ(spec->block_cols(), 2048);
  EXPECT_EQ(spec->num_blocks(), 256);
  // 2048 x 2048 float64 = 32 MiB, the paper's "32 MB" Matmul block.
  EXPECT_EQ(spec->full_block_bytes(), 32u * kMiB);
}

TEST(GridSpecTest, CreateFromGridDimRejectsOversizedGrid) {
  EXPECT_FALSE(GridSpec::CreateFromGridDim(Square(4), 8, 1).ok());
}

TEST(GridSpecTest, RaggedEdgeExtents) {
  // 10 rows in blocks of 4 -> 3 grid rows, last block ragged (2 rows).
  auto spec = GridSpec::Create(DatasetSpec{"d", 10, 8}, 4, 8);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->grid_rows(), 3);
  EXPECT_EQ(spec->ExtentAt(0, 0).rows, 4);
  EXPECT_EQ(spec->ExtentAt(2, 0).rows, 2);
  EXPECT_EQ(spec->ExtentAt(2, 0).row0, 8);
}

TEST(GridSpecTest, ExtentsTileTheDataset) {
  auto spec = GridSpec::Create(DatasetSpec{"d", 100, 64}, 7, 16);
  ASSERT_TRUE(spec.ok());
  int64_t total_elements = 0;
  for (int64_t bk = 0; bk < spec->grid_rows(); ++bk) {
    for (int64_t bl = 0; bl < spec->grid_cols(); ++bl) {
      total_elements += spec->ExtentAt(bk, bl).num_elements();
    }
  }
  EXPECT_EQ(total_elements, spec->dataset().num_elements());
}

TEST(PaperDatasetsTest, SizesMatchTheirLabels) {
  // Matmul datasets are labeled in binary units.
  EXPECT_EQ(PaperDatasets::Matmul8GB().bytes(), 8u * kGiB);
  EXPECT_EQ(PaperDatasets::Matmul32GB().bytes(), 32u * kGiB);
  EXPECT_EQ(PaperDatasets::Matmul2GB().bytes(), 2u * kGiB);
  // K-means datasets are labeled in decimal units.
  EXPECT_EQ(PaperDatasets::KMeans10GB().bytes(), 10000000000u);
  EXPECT_EQ(PaperDatasets::KMeans100GB().bytes(), 100000000000u);
  EXPECT_EQ(PaperDatasets::KMeans1GB().bytes(), 1000000000u);
  EXPECT_EQ(PaperDatasets::KMeans100MB().bytes(), 100000000u);
  // 100-feature K-means layout.
  EXPECT_EQ(PaperDatasets::KMeans10GB().cols, 100);
}

class PaperGridSweep
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(PaperGridSweep, KMeans10GBGridsDivideEvenly) {
  const auto [rows, cols] = GetParam();
  auto spec =
      GridSpec::CreateFromGridDim(PaperDatasets::KMeans10GB(), rows, cols);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->num_blocks(), rows * cols);
  // Row-wise chunking only.
  EXPECT_EQ(spec->grid_cols(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperGrids, PaperGridSweep,
    ::testing::ValuesIn(std::vector<std::pair<int64_t, int64_t>>{
        {1, 1}, {2, 1}, {4, 1}, {8, 1}, {16, 1}, {32, 1}, {64, 1}, {128, 1},
        {256, 1}}));

}  // namespace
}  // namespace taskbench::data
