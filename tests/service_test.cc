// WorkflowService behaviour: admission control, weighted-fair
// dequeue, deadlines, cancellation through the session API, shutdown,
// and the deterministic per-tenant percentile report. Thread-pool
// backed tests gate the single runner on a blocking kernel so queue
// states are reached deterministically, never by sleeping.

#include <atomic>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "check/workload.h"
#include "hw/cluster.h"
#include "obs/json.h"
#include "runtime/executor_factory.h"
#include "runtime/simulated_executor.h"
#include "runtime/thread_pool_executor.h"
#include "service/token_bucket.h"
#include "service/workflow_service.h"

namespace taskbench::service {
namespace {

using runtime::DataId;
using runtime::Dir;
using runtime::KernelFn;
using runtime::TaskGraph;
using runtime::TaskSpec;

/// Shared gate: kernels built over it block until Open() is called.
/// Lets a test park the service's runner inside Executor::Run and
/// build up queue state behind it deterministically.
class Gate {
 public:
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void Await() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// One-task graph; the kernel optionally records `tag` into `order`
/// (mutex-protected) and optionally blocks on `gate`.
TaskGraph TaggedGraph(std::string tag, std::vector<std::string>* order,
                      std::mutex* order_mu, Gate* gate = nullptr,
                      std::atomic<bool>* entered = nullptr) {
  TaskGraph graph;
  const DataId in = graph.AddData(data::Matrix(2, 2, 1.0));
  const DataId out = graph.AddData(static_cast<uint64_t>(32));
  TaskSpec spec;
  spec.type = "tagged";
  spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
  spec.kernel = [tag = std::move(tag), order, order_mu, gate, entered](
                    const std::vector<const data::Matrix*>& inputs,
                    const std::vector<data::Matrix*>& outputs) -> Status {
    if (entered != nullptr) entered->store(true);
    if (gate != nullptr) gate->Await();
    if (order != nullptr) {
      std::lock_guard<std::mutex> lock(*order_mu);
      order->push_back(tag);
    }
    *outputs[0] = *inputs[0];
    return Status::OK();
  };
  EXPECT_TRUE(graph.Submit(std::move(spec)).ok());
  return graph;
}

std::shared_ptr<runtime::Executor> ThreadExecutor() {
  runtime::RunOptions options;
  options.num_threads = 2;
  options.use_storage = false;
  return std::make_shared<runtime::ThreadPoolExecutor>(options);
}

std::shared_ptr<runtime::Executor> SimExecutor() {
  return std::make_shared<runtime::SimulatedExecutor>(
      hw::MinotauroCluster(), runtime::RunOptions{});
}

TEST(PercentileTest, NearestRank) {
  std::vector<double> sorted;
  for (int i = 1; i <= 100; ++i) sorted.push_back(i);
  EXPECT_EQ(Percentile(sorted, 0.50), 50);
  EXPECT_EQ(Percentile(sorted, 0.95), 95);
  EXPECT_EQ(Percentile(sorted, 0.99), 99);
  EXPECT_EQ(Percentile(sorted, 1.0), 100);
  EXPECT_EQ(Percentile({7.0}, 0.5), 7.0);
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
}

TEST(StatusTest, RejectedAdmissionPredicate) {
  const Status status = Status::RejectedAdmission("full");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsRejectedAdmission());
  EXPECT_FALSE(Status::Cancelled("x").IsRejectedAdmission());
}

TEST(WorkflowServiceTest, SubmitWaitPollLifecycle) {
  WorkflowService service(SimExecutor(), ServiceOptions{});
  auto built = check::BuildWorkload(check::GenerateSpec(1));
  ASSERT_TRUE(built.ok());
  auto handle = service.Submit(std::move(built->graph));
  ASSERT_TRUE(handle.ok());
  auto report = service.Wait(*handle);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->makespan, 0.0);
  auto polled = service.Poll(*handle);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->state, SubmissionState::kDone);
  EXPECT_TRUE(polled->result.ok());
  // Unknown handles are errors, not hangs.
  EXPECT_FALSE(service.Wait(SubmissionHandle{999}).ok());
  EXPECT_FALSE(service.Poll(SubmissionHandle{999}).ok());
  EXPECT_FALSE(service.Cancel(SubmissionHandle{999}).ok());
}

TEST(WorkflowServiceTest, AdmissionCapRejectsAndCancelFreesSlot) {
  Gate gate;
  std::atomic<bool> entered{false};
  ServiceOptions options;
  options.num_runners = 1;
  options.max_in_flight = 2;
  WorkflowService service(ThreadExecutor(), options);

  // First submission occupies the runner; second fills the queue.
  auto running =
      service.Submit(TaggedGraph("r", nullptr, nullptr, &gate, &entered));
  ASSERT_TRUE(running.ok());
  while (!entered.load()) std::this_thread::yield();
  auto queued = service.Submit(TaggedGraph("q", nullptr, nullptr));
  ASSERT_TRUE(queued.ok());

  // At the cap: the third submission is rejected, not queued.
  auto rejected = service.Submit(TaggedGraph("x", nullptr, nullptr));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsRejectedAdmission())
      << rejected.status().ToString();

  // Cancelling the queued submission frees its slot immediately —
  // before any runner touches it.
  auto cancel = service.Cancel(*queued);
  ASSERT_TRUE(cancel.ok());
  EXPECT_TRUE(*cancel);
  auto admitted = service.Submit(TaggedGraph("y", nullptr, nullptr));
  EXPECT_TRUE(admitted.ok()) << admitted.status().ToString();

  gate.Open();
  EXPECT_TRUE(service.Wait(*running).ok());
  auto cancelled_result = service.Wait(*queued);
  ASSERT_FALSE(cancelled_result.ok());
  EXPECT_TRUE(cancelled_result.status().IsCancelled());
  EXPECT_TRUE(service.Wait(*admitted).ok());

  // Cancel after terminal: idempotent, reports "was already done".
  auto again = service.Cancel(*queued);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);

  const ServiceReport report = service.Report();
  EXPECT_EQ(report.submitted, 3);
  EXPECT_EQ(report.rejected, 1);
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.cancelled, 1);
}

TEST(WorkflowServiceTest, CancelRunningSubmission) {
  Gate gate;
  std::atomic<bool> entered{false};
  ServiceOptions options;
  options.num_runners = 1;
  WorkflowService service(ThreadExecutor(), options);

  // The blocking task plus a follow-up that reads its output, so the
  // tail cannot start before the gate opens: cancellation lands at
  // the scheduling edge between them once the kernel is released.
  // (An independent tail could finish first, and the run would then
  // complete the instant the gated task returns — a flaky race.)
  TaskGraph graph =
      TaggedGraph("first", nullptr, nullptr, &gate, &entered);
  const DataId first_out = 1;  // TaggedGraph: datum 0 = in, 1 = out
  const DataId out = graph.AddData(static_cast<uint64_t>(32));
  TaskSpec tail;
  tail.type = "tail";
  tail.params = {{first_out, Dir::kIn}, {out, Dir::kOut}};
  tail.kernel = [](const std::vector<const data::Matrix*>& inputs,
                   const std::vector<data::Matrix*>& outputs) -> Status {
    *outputs[0] = *inputs[0];
    return Status::OK();
  };
  ASSERT_TRUE(graph.Submit(std::move(tail)).ok());

  auto handle = service.Submit(std::move(graph));
  ASSERT_TRUE(handle.ok());
  while (!entered.load()) std::this_thread::yield();
  auto polled = service.Poll(*handle);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->state, SubmissionState::kRunning);

  auto cancel = service.Cancel(*handle);
  ASSERT_TRUE(cancel.ok());
  EXPECT_TRUE(*cancel);
  gate.Open();
  auto result = service.Wait(*handle);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_EQ(service.Report().cancelled, 1);
}

TEST(WorkflowServiceTest, DeadlineExceededBeforeDispatch) {
  Gate gate;
  std::atomic<bool> entered{false};
  ServiceOptions options;
  options.num_runners = 1;
  WorkflowService service(ThreadExecutor(), options);

  auto running =
      service.Submit(TaggedGraph("r", nullptr, nullptr, &gate, &entered));
  ASSERT_TRUE(running.ok());
  while (!entered.load()) std::this_thread::yield();

  SubmitOptions tight;
  tight.deadline_s = 1e-4;
  auto doomed = service.Submit(TaggedGraph("d", nullptr, nullptr), tight);
  ASSERT_TRUE(doomed.ok());
  // Hold the runner well past the deadline, then let it dispatch.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Open();
  auto result = service.Wait(*doomed);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_TRUE(service.Wait(*running).ok());
  const ServiceReport report = service.Report();
  EXPECT_EQ(report.expired, 1);
  EXPECT_EQ(report.completed, 1);
}

TEST(WorkflowServiceTest, WeightedFairDequeue) {
  // Park the single runner behind a gate tenant, queue 6 submissions
  // for heavy (weight 3) and 2 for light (weight 1), then drain. The
  // first four dispatches must split 3:1 in heavy's favour.
  Gate gate;
  std::atomic<bool> entered{false};
  std::vector<std::string> order;
  std::mutex order_mu;

  ServiceOptions options;
  options.num_runners = 1;
  options.tenants["heavy"].weight = 3;
  options.tenants["light"].weight = 1;
  WorkflowService service(ThreadExecutor(), options);

  auto gate_handle = service.Submit(
      TaggedGraph("gate", nullptr, nullptr, &gate, &entered),
      SubmitOptions{.tenant = "zz-gate"});
  ASSERT_TRUE(gate_handle.ok());
  while (!entered.load()) std::this_thread::yield();

  std::vector<SubmissionHandle> handles;
  for (int i = 0; i < 6; ++i) {
    auto h = service.Submit(TaggedGraph("heavy", &order, &order_mu),
                            SubmitOptions{.tenant = "heavy"});
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  for (int i = 0; i < 2; ++i) {
    auto h = service.Submit(TaggedGraph("light", &order, &order_mu),
                            SubmitOptions{.tenant = "light"});
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  gate.Open();
  ASSERT_TRUE(service.Wait(*gate_handle).ok());
  for (const SubmissionHandle h : handles) {
    ASSERT_TRUE(service.Wait(h).ok());
  }

  ASSERT_EQ(order.size(), 8u);
  int heavy_in_first_four = 0;
  for (int i = 0; i < 4; ++i) {
    if (order[static_cast<size_t>(i)] == "heavy") ++heavy_in_first_four;
  }
  EXPECT_EQ(heavy_in_first_four, 3) << "weighted-fair share violated";
}

TEST(WorkflowServiceTest, PriorityOrdersWithinTenant) {
  Gate gate;
  std::atomic<bool> entered{false};
  std::vector<std::string> order;
  std::mutex order_mu;

  ServiceOptions options;
  options.num_runners = 1;
  WorkflowService service(ThreadExecutor(), options);
  auto gate_handle = service.Submit(
      TaggedGraph("gate", nullptr, nullptr, &gate, &entered),
      SubmitOptions{.tenant = "zz-gate"});
  ASSERT_TRUE(gate_handle.ok());
  while (!entered.load()) std::this_thread::yield();

  std::vector<SubmissionHandle> handles;
  const struct {
    const char* tag;
    int priority;
  } subs[] = {{"low", 0}, {"high", 5}, {"mid", 3}, {"high2", 5}};
  for (const auto& s : subs) {
    auto h = service.Submit(TaggedGraph(s.tag, &order, &order_mu),
                            SubmitOptions{.priority = s.priority});
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  gate.Open();
  for (const SubmissionHandle h : handles) {
    ASSERT_TRUE(service.Wait(h).ok());
  }
  ASSERT_TRUE(service.Wait(*gate_handle).ok());
  // Priority desc, FIFO within equal priority.
  EXPECT_EQ(order,
            (std::vector<std::string>{"high", "high2", "mid", "low"}));
}

TEST(WorkflowServiceTest, ShutdownCancelsPendingAndRefusesNew) {
  Gate gate;
  std::atomic<bool> entered{false};
  ServiceOptions options;
  options.num_runners = 1;
  WorkflowService service(ThreadExecutor(), options);

  auto running =
      service.Submit(TaggedGraph("r", nullptr, nullptr, &gate, &entered));
  ASSERT_TRUE(running.ok());
  while (!entered.load()) std::this_thread::yield();
  auto queued = service.Submit(TaggedGraph("q", nullptr, nullptr));
  ASSERT_TRUE(queued.ok());

  std::thread shutdown_thread([&] { service.Shutdown(); });
  gate.Open();
  shutdown_thread.join();

  auto queued_result = service.Wait(*queued);
  ASSERT_FALSE(queued_result.ok());
  EXPECT_TRUE(queued_result.status().IsCancelled());
  auto refused = service.Submit(TaggedGraph("new", nullptr, nullptr));
  ASSERT_FALSE(refused.ok());
  EXPECT_FALSE(refused.status().IsRejectedAdmission());

  const ServiceReport report = service.Report();
  EXPECT_EQ(report.still_queued, 0);
  EXPECT_EQ(report.still_running, 0);
}

TEST(WorkflowServiceTest, ReportJsonValidates) {
  WorkflowService service(SimExecutor(), ServiceOptions{});
  for (uint64_t seed = 0; seed < 3; ++seed) {
    auto built = check::BuildWorkload(check::GenerateSpec(seed));
    ASSERT_TRUE(built.ok());
    SubmitOptions opts;
    opts.tenant = seed % 2 == 0 ? "even \"tenant\"" : "odd";
    auto handle = service.Submit(std::move(built->graph), opts);
    ASSERT_TRUE(handle.ok());
    ASSERT_TRUE(service.Wait(*handle).ok());
  }
  const std::string json = service.Report().ToJson();
  EXPECT_TRUE(obs::ValidateJson(json).ok()) << json;
}

/// Runs the same seeded submission set through a fresh sim-backed
/// service and returns the per-tenant makespan summaries.
ServiceReport RunDeterministicBatch(int runners) {
  ServiceOptions options;
  options.num_runners = runners;
  WorkflowService service(SimExecutor(), options);
  std::vector<SubmissionHandle> handles;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    auto built = check::BuildWorkload(check::GenerateSpec(seed));
    EXPECT_TRUE(built.ok());
    SubmitOptions opts;
    opts.tenant = seed % 3 == 0 ? "alpha" : (seed % 3 == 1 ? "beta" : "gamma");
    auto handle = service.Submit(std::move(built->graph), opts);
    EXPECT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  for (const SubmissionHandle h : handles) {
    EXPECT_TRUE(service.Wait(h).ok());
  }
  return service.Report();
}

TEST(WorkflowServiceTest, PerTenantPercentilesAreDeterministic) {
  // Sim-executor makespans are simulated seconds: bit-equal across
  // runs and independent of runner interleaving, so the per-tenant
  // percentile summaries must reproduce exactly — including across
  // different runner counts.
  const ServiceReport a = RunDeterministicBatch(2);
  const ServiceReport b = RunDeterministicBatch(2);
  const ServiceReport c = RunDeterministicBatch(4);
  ASSERT_EQ(a.tenants.size(), 3u);
  ASSERT_EQ(b.tenants.size(), 3u);
  ASSERT_EQ(c.tenants.size(), 3u);
  for (size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].tenant, b.tenants[i].tenant);
    EXPECT_EQ(a.tenants[i].makespan.p50, b.tenants[i].makespan.p50);
    EXPECT_EQ(a.tenants[i].makespan.p95, b.tenants[i].makespan.p95);
    EXPECT_EQ(a.tenants[i].makespan.p99, b.tenants[i].makespan.p99);
    EXPECT_EQ(a.tenants[i].makespan.mean, b.tenants[i].makespan.mean);
    EXPECT_EQ(a.tenants[i].makespan.p50, c.tenants[i].makespan.p50);
    EXPECT_EQ(a.tenants[i].makespan.p95, c.tenants[i].makespan.p95);
    EXPECT_EQ(a.tenants[i].makespan.p99, c.tenants[i].makespan.p99);
    EXPECT_GT(a.tenants[i].makespan.p50, 0.0);
  }
}

TEST(TokenBucketTest, DeterministicRefillAndBurst) {
  // Time is explicit, so the whole trajectory is exact arithmetic:
  // 2 tokens/s, burst 3, starting full at t=0.
  TokenBucket bucket(2.0, 3.0, 0.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0));  // burst exhausted
  EXPECT_FALSE(bucket.TryAcquire(0.0));
  // 0.25s refills half a token: still not enough for a whole one.
  EXPECT_FALSE(bucket.TryAcquire(0.25));
  EXPECT_TRUE(bucket.TryAcquire(0.5));  // one full token at t=0.5
  EXPECT_FALSE(bucket.TryAcquire(0.5));
  // Time going backwards refills nothing but never faults.
  EXPECT_FALSE(bucket.TryAcquire(0.1));
  // A long idle stretch caps at the burst ceiling, not rate * dt.
  EXPECT_EQ(bucket.TokensAt(1000.0), 3.0);
  EXPECT_TRUE(bucket.TryAcquire(1000.0));
  EXPECT_TRUE(bucket.TryAcquire(1000.0));
  EXPECT_TRUE(bucket.TryAcquire(1000.0));
  EXPECT_FALSE(bucket.TryAcquire(1000.0));

  // Default-constructed and zero-rate buckets are unlimited.
  TokenBucket unlimited;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.TryAcquire(0.0));
}

TEST(WorkflowServiceTest, RateLimitRejectsBurstOverflow) {
  // A near-zero refill rate makes the test time-independent: exactly
  // `burst` submissions are admitted no matter how fast or slow the
  // test runs, and the bucket never meaningfully refills.
  ServiceOptions options;
  options.default_tenant.rate_per_s = 1e-9;
  options.default_tenant.burst = 2;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  WorkflowService service(SimExecutor(), options);

  std::vector<SubmissionHandle> admitted;
  for (int i = 0; i < 2; ++i) {
    auto built = check::BuildWorkload(check::GenerateSpec(1));
    ASSERT_TRUE(built.ok());
    auto handle = service.Submit(std::move(built->graph));
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    admitted.push_back(*handle);
  }
  auto built = check::BuildWorkload(check::GenerateSpec(1));
  ASSERT_TRUE(built.ok());
  auto rejected = service.Submit(std::move(built->graph));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsRejectedAdmission())
      << rejected.status().ToString();
  for (const SubmissionHandle h : admitted) {
    EXPECT_TRUE(service.Wait(h).ok());
  }

  const ServiceReport report = service.Report();
  EXPECT_EQ(report.submitted, 2);
  EXPECT_EQ(report.rejected, 1);
  EXPECT_EQ(report.rate_limited, 1);
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(metrics.counter("service.rate_limited")->value(), 1);
  EXPECT_EQ(metrics.counter("service.rejected")->value(), 1);
  // The report JSON carries the new field and still validates.
  const std::string json = report.ToJson();
  EXPECT_TRUE(obs::ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"rate_limited\": 1"), std::string::npos) << json;
}

TEST(WorkflowServiceTest, ServiceMetricsSurfaceThroughObs) {
  Gate gate;
  std::atomic<bool> entered{false};
  obs::MetricsRegistry metrics;
  ServiceOptions options;
  options.num_runners = 1;
  options.max_in_flight = 2;
  options.metrics = &metrics;
  WorkflowService service(ThreadExecutor(), options);

  // Park the runner behind the gate and stack one submission behind
  // it, so queue/in-flight occupancy is observable deterministically.
  auto running =
      service.Submit(TaggedGraph("r", nullptr, nullptr, &gate, &entered));
  ASSERT_TRUE(running.ok());
  while (!entered.load()) std::this_thread::yield();
  auto queued = service.Submit(TaggedGraph("q", nullptr, nullptr));
  ASSERT_TRUE(queued.ok());
  EXPECT_EQ(metrics.gauge("service.tenant.default.queued")->value(), 1.0);
  EXPECT_EQ(metrics.gauge("service.tenant.default.in_flight")->value(), 2.0);

  // Over the in-flight cap: rejected, and the counter records it.
  auto bounced = service.Submit(TaggedGraph("x", nullptr, nullptr));
  ASSERT_FALSE(bounced.ok());
  EXPECT_TRUE(bounced.status().IsRejectedAdmission());
  EXPECT_EQ(metrics.counter("service.rejected")->value(), 1);

  gate.Open();
  EXPECT_TRUE(service.Wait(*running).ok());
  EXPECT_TRUE(service.Wait(*queued).ok());

  EXPECT_EQ(metrics.counter("service.admitted")->value(), 2);
  EXPECT_EQ(metrics.counter("service.completed")->value(), 2);
  EXPECT_EQ(metrics.histogram("service.queue_wait_s")->count(), 2);
  EXPECT_GE(metrics.histogram("service.queue_wait_s")->max(), 0.0);
  // Terminal gauges: nothing queued or in flight once everything
  // finished.
  EXPECT_EQ(metrics.gauge("service.tenant.default.queued")->value(), 0.0);
  EXPECT_EQ(metrics.gauge("service.tenant.default.in_flight")->value(), 0.0);
}

TEST(TenantConfigTest, ValidateAcceptsZeroRateAsUnlimited) {
  TenantConfig config;
  EXPECT_TRUE(ValidateTenantConfig(config).ok());
  config.rate_per_s = 0;
  config.burst = 0;
  EXPECT_TRUE(ValidateTenantConfig(config).ok());
  config.rate_per_s = 3.5;
  config.burst = 10;
  EXPECT_TRUE(ValidateTenantConfig(config).ok());
}

TEST(TenantConfigTest, ValidateRejectsNegativeAndNaNRateKnobs) {
  const double bad_values[] = {-1.0, -1e-9,
                               std::numeric_limits<double>::quiet_NaN(),
                               std::numeric_limits<double>::infinity()};
  for (double v : bad_values) {
    TenantConfig config;
    config.rate_per_s = v;
    EXPECT_FALSE(ValidateTenantConfig(config).ok()) << "rate " << v;
    config = TenantConfig{};
    config.burst = v;
    EXPECT_FALSE(ValidateTenantConfig(config).ok()) << "burst " << v;
  }
  TenantConfig config;
  config.weight = 0;
  EXPECT_FALSE(ValidateTenantConfig(config).ok());
  config.weight = -2;
  EXPECT_FALSE(ValidateTenantConfig(config).ok());
  config = TenantConfig{};
  config.max_queued = -1;
  EXPECT_FALSE(ValidateTenantConfig(config).ok());
}

TEST(WorkflowServiceTest, MisconfiguredTenantFailsSubmitNotClamped) {
  // A negative or NaN rate is a configuration error the caller must
  // see — not something to clamp into an always-empty bucket that
  // silently rejects every Submit as "rate limited".
  runtime::ExecutorSpec spec;
  spec.kind = runtime::ExecutorKind::kSim;
  auto executor = runtime::MakeExecutor(spec);
  ASSERT_TRUE(executor.ok());
  ServiceOptions options;
  options.tenants["bad-rate"].rate_per_s = -3;
  options.tenants["bad-burst"].rate_per_s = 1;
  options.tenants["bad-burst"].burst =
      std::numeric_limits<double>::quiet_NaN();
  WorkflowService service(std::move(*executor), options);

  for (const char* tenant : {"bad-rate", "bad-burst"}) {
    auto built = check::BuildWorkload(check::GenerateSpec(2));
    ASSERT_TRUE(built.ok());
    SubmitOptions submit;
    submit.tenant = tenant;
    auto handle = service.Submit(std::move(built->graph), submit);
    ASSERT_FALSE(handle.ok()) << tenant;
    EXPECT_TRUE(handle.status().IsInvalidArgument())
        << tenant << ": " << handle.status().ToString();
    EXPECT_FALSE(handle.status().IsRejectedAdmission()) << tenant;
  }
  // A well-configured tenant on the same service is unaffected.
  auto built = check::BuildWorkload(check::GenerateSpec(2));
  ASSERT_TRUE(built.ok());
  auto handle = service.Submit(std::move(built->graph));
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE(service.Wait(*handle).ok());
  const ServiceReport report = service.Report();
  for (const TenantReport& t : report.tenants) {
    if (t.tenant == "default") continue;
    EXPECT_EQ(t.rejected, 0) << t.tenant;  // config errors != load
    EXPECT_EQ(t.rate_limited, 0) << t.tenant;
  }
}

TEST(WorkflowServiceTest, PerTenantPolicyOverridesExecutorDefault) {
  // Two tenants share one simulated executor; the cost-model tenant's
  // runs must be scheduled by the cost-model dispatcher (visible as
  // its strictly higher modeled per-decision overhead), while the
  // other tenant stays on the executor's generation-order default.
  runtime::ExecutorSpec spec;
  spec.kind = runtime::ExecutorKind::kSim;
  auto executor = runtime::MakeExecutor(spec);
  ASSERT_TRUE(executor.ok());
  ServiceOptions options;
  options.num_runners = 1;
  options.tenants["cost"].policy = SchedulingPolicy::kCostModel;
  WorkflowService service(std::move(*executor), options);

  auto submit_as = [&](const std::string& tenant) {
    auto built = check::BuildWorkload(check::GenerateSpec(2));
    EXPECT_TRUE(built.ok());
    SubmitOptions submit;
    submit.tenant = tenant;
    return service.Submit(std::move(built->graph), submit);
  };
  auto default_handle = submit_as("default");
  auto cost_handle = submit_as("cost");
  ASSERT_TRUE(default_handle.ok());
  ASSERT_TRUE(cost_handle.ok());
  auto default_report = service.Wait(*default_handle);
  auto cost_report = service.Wait(*cost_handle);
  ASSERT_TRUE(default_report.ok());
  ASSERT_TRUE(cost_report.ok());
  EXPECT_GT(default_report->scheduler_overhead, 0);
  EXPECT_GT(cost_report->scheduler_overhead,
            default_report->scheduler_overhead);
}

TEST(WorkflowServiceTest, MakeExecutorBacksService) {
  runtime::ExecutorSpec spec;
  spec.kind = runtime::ExecutorKind::kSim;
  auto executor = runtime::MakeExecutor(spec);
  ASSERT_TRUE(executor.ok());
  WorkflowService service(std::move(*executor), ServiceOptions{});
  auto built = check::BuildWorkload(check::GenerateSpec(2));
  ASSERT_TRUE(built.ok());
  auto handle = service.Submit(std::move(built->graph));
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE(service.Wait(*handle).ok());
}

}  // namespace
}  // namespace taskbench::service
