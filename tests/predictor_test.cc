#include "analysis/predictor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/factor_space.h"
#include "data/generators.h"

namespace taskbench::analysis {
namespace {

ExperimentConfig KMeans(int64_t grid, Processor proc) {
  ExperimentConfig config;
  config.algorithm = Algorithm::kKMeans;
  config.dataset = data::PaperDatasets::KMeans10GB();
  config.grid_rows = grid;
  config.iterations = 1;
  config.processor = proc;
  return config;
}

/// Runs a compact training sweep (both algorithms, both processors).
std::vector<ExperimentResult> TrainingSamples() {
  std::vector<ExperimentResult> samples;
  for (Processor proc : {Processor::kCpu, Processor::kGpu}) {
    for (int64_t g : {2, 4, 8, 16}) {
      ExperimentConfig mm;
      mm.algorithm = Algorithm::kMatmul;
      mm.dataset = data::PaperDatasets::Matmul8GB();
      mm.grid_rows = mm.grid_cols = g;
      mm.processor = proc;
      auto r = RunExperiment(mm);
      EXPECT_TRUE(r.ok());
      samples.push_back(std::move(*r));
    }
    for (int64_t g : {8, 16, 32, 64, 128, 256}) {
      auto r = RunExperiment(KMeans(g, proc));
      EXPECT_TRUE(r.ok());
      samples.push_back(std::move(*r));
    }
  }
  return samples;
}

TEST(PredictorTest, NeedsEnoughSamples) {
  std::vector<ExperimentResult> few;
  auto r = RunExperiment(KMeans(64, Processor::kCpu));
  ASSERT_TRUE(r.ok());
  few.push_back(std::move(*r));
  EXPECT_FALSE(PerformancePredictor::Train(few).ok());
}

TEST(PredictorTest, FitsTrainingSetWell) {
  const auto samples = TrainingSamples();
  // Small training set spanning 3 orders of magnitude: let leaves
  // shrink to single samples for a tight in-sample fit.
  stats::RegressionTreeOptions options;
  options.min_samples_leaf = 1;
  options.max_depth = 16;
  auto predictor = PerformancePredictor::Train(samples, options);
  ASSERT_TRUE(predictor.ok());
  EXPECT_GE(predictor->training_size(), 18u);
  double worst_ratio = 1.0;
  for (const ExperimentResult& sample : samples) {
    if (sample.oom) continue;
    auto predicted = predictor->PredictSeconds(sample);
    ASSERT_TRUE(predicted.ok());
    const double ratio =
        std::max(*predicted / sample.parallel_task_time,
                 sample.parallel_task_time / *predicted);
    worst_ratio = std::max(worst_ratio, ratio);
  }
  // With single-sample leaves the in-sample fit is essentially exact
  // (variance-gain pruning may merge near-identical samples).
  EXPECT_LT(worst_ratio, 1.15);
}

TEST(PredictorTest, InterpolatesUnseenGrid) {
  const auto samples = TrainingSamples();
  auto predictor = PerformancePredictor::Train(samples);
  ASSERT_TRUE(predictor.ok());
  // 48x1 was not in the training sweep.
  auto truth = RunExperiment(KMeans(48, Processor::kCpu));
  ASSERT_TRUE(truth.ok());
  auto predicted = predictor->PredictSeconds(KMeans(48, Processor::kCpu));
  ASSERT_TRUE(predicted.ok());
  const double ratio = std::max(*predicted / truth->parallel_task_time,
                                truth->parallel_task_time / *predicted);
  EXPECT_LT(ratio, 3.0);
}

TEST(PredictorTest, RefusesOomConfigs) {
  const auto samples = TrainingSamples();
  auto predictor = PerformancePredictor::Train(samples);
  ASSERT_TRUE(predictor.ok());
  EXPECT_FALSE(predictor->PredictSeconds(KMeans(1, Processor::kGpu)).ok());
  EXPECT_TRUE(predictor->PredictSeconds(KMeans(1, Processor::kCpu)).ok());
}

TEST(PredictorTest, PredictBestPicksReasonableConfig) {
  const auto samples = TrainingSamples();
  auto predictor = PerformancePredictor::Train(samples);
  ASSERT_TRUE(predictor.ok());
  ExperimentConfig base = KMeans(1, Processor::kCpu);
  auto choice = predictor->PredictBest(base, KMeansPaperGrids());
  ASSERT_TRUE(choice.ok());
  // The chosen configuration's TRUE time must be within 50% of the
  // exhaustively-found optimum.
  ExperimentConfig chosen = base;
  chosen.grid_rows = choice->grid_rows;
  chosen.grid_cols = choice->grid_cols;
  chosen.processor = choice->processor;
  auto chosen_truth = RunExperiment(chosen);
  ASSERT_TRUE(chosen_truth.ok());
  double best_truth = 1e300;
  for (const auto& [gr, gc] : KMeansPaperGrids()) {
    for (Processor proc : {Processor::kCpu, Processor::kGpu}) {
      ExperimentConfig config = base;
      config.grid_rows = gr;
      config.grid_cols = gc;
      config.processor = proc;
      auto truth = RunExperiment(config);
      ASSERT_TRUE(truth.ok());
      if (!truth->oom) {
        best_truth = std::min(best_truth, truth->parallel_task_time);
      }
    }
  }
  EXPECT_LT(chosen_truth->parallel_task_time, 1.5 * best_truth);
}

TEST(PredictorTest, FeatureNamesMatchFeatureWidth) {
  const auto samples = TrainingSamples();
  auto predictor = PerformancePredictor::Train(samples);
  ASSERT_TRUE(predictor.ok());
  EXPECT_EQ(PerformancePredictor::FeatureNames().size(),
            predictor->tree().num_features());
  const auto importance = predictor->tree().FeatureImportance();
  double total = 0;
  for (double v : importance) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PredictorTest, ForestVariantWorks) {
  const auto samples = TrainingSamples();
  stats::RegressionForestOptions options;
  options.num_trees = 10;
  auto forest = PerformancePredictor::TrainForest(samples, options);
  ASSERT_TRUE(forest.ok());
  EXPECT_TRUE(forest->is_forest());
  auto predicted = forest->PredictSeconds(KMeans(48, Processor::kCpu));
  ASSERT_TRUE(predicted.ok());
  EXPECT_GT(*predicted, 0.0);
  // Feature importances come from the ensemble and normalize to 1.
  const auto importance = forest->FeatureImportance();
  double total = 0;
  for (double v : importance) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Best-config selection works on the forest too.
  auto choice = forest->PredictBest(KMeans(1, Processor::kCpu),
                                    KMeansPaperGrids());
  EXPECT_TRUE(choice.ok());
}

TEST(DescribeExperimentTest, FeaturesWithoutExecution) {
  auto described = DescribeExperiment(KMeans(64, Processor::kCpu));
  ASSERT_TRUE(described.ok());
  EXPECT_EQ(described->num_blocks, 64);
  EXPECT_GT(described->block_bytes, 0u);
  EXPECT_EQ(described->parallel_task_time, 0.0);  // not executed
  EXPECT_FALSE(described->oom);
  // GPU single-block is flagged OOM without running.
  auto oom = DescribeExperiment(KMeans(1, Processor::kGpu));
  ASSERT_TRUE(oom.ok());
  EXPECT_TRUE(oom->oom);
}

}  // namespace
}  // namespace taskbench::analysis
