#include "analysis/experiment.h"

#include <gtest/gtest.h>

#include "analysis/factor_space.h"
#include "data/generators.h"

namespace taskbench::analysis {
namespace {

ExperimentConfig KMeansConfig(int64_t grid_rows,
                              Processor processor = Processor::kCpu) {
  ExperimentConfig config;
  config.algorithm = Algorithm::kKMeans;
  config.dataset = data::PaperDatasets::KMeans10GB();
  config.grid_rows = grid_rows;
  config.grid_cols = 1;
  config.iterations = 1;
  config.processor = processor;
  return config;
}

ExperimentConfig MatmulConfig(int64_t grid,
                              Processor processor = Processor::kCpu) {
  ExperimentConfig config;
  config.algorithm = Algorithm::kMatmul;
  config.dataset = data::PaperDatasets::Matmul8GB();
  config.grid_rows = grid;
  config.grid_cols = grid;
  config.processor = processor;
  return config;
}

TEST(ExperimentTest, SignedSpeedupConvention) {
  EXPECT_NEAR(SignedSpeedup(10.0, 2.0), 5.0, 1e-12);
  EXPECT_NEAR(SignedSpeedup(2.0, 10.0), -5.0, 1e-12);
  EXPECT_NEAR(SignedSpeedup(3.0, 3.0), 1.0, 1e-12);
}

TEST(ExperimentTest, KMeansCpuRunProducesMetrics) {
  auto result = RunExperiment(KMeansConfig(256));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->oom);
  EXPECT_GT(result->parallel_task_time, 0.0);
  EXPECT_GT(result->makespan, 0.0);
  EXPECT_EQ(result->num_blocks, 256);
  EXPECT_EQ(result->dag_width, 256);
  ASSERT_TRUE(result->stages_by_type.count("partial_sum"));
  ASSERT_TRUE(result->stages_by_type.count("merge"));
  const auto& ps = result->stages_by_type.at("partial_sum");
  EXPECT_GT(ps.serial_fraction, 0.0);
  EXPECT_GT(ps.parallel_fraction, 0.0);
  EXPECT_EQ(ps.cpu_gpu_comm, 0.0);  // CPU run
  EXPECT_GT(ps.deserialize, 0.0);
}

TEST(ExperimentTest, KMeansGpuRunHasCommStage) {
  auto result = RunExperiment(KMeansConfig(256, Processor::kGpu));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->oom);
  const auto& ps = result->stages_by_type.at("partial_sum");
  EXPECT_GT(ps.cpu_gpu_comm, 0.0);
}

TEST(ExperimentTest, KMeansSingleBlockGpuIsOom) {
  // Figure 7b: the 10 GB dataset in one block exceeds K80 memory.
  auto result = RunExperiment(KMeansConfig(1, Processor::kGpu));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->oom);
  EXPECT_FALSE(result->oom_detail.empty());
}

TEST(ExperimentTest, MatmulMaxBlockGpuIsOom) {
  // Section 5.3: 8192 MB blocks need 24 GB on device.
  auto result = RunExperiment(MatmulConfig(1, Processor::kGpu));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->oom);
  // The same configuration on CPU runs fine.
  auto cpu = RunExperiment(MatmulConfig(1, Processor::kCpu));
  ASSERT_TRUE(cpu.ok());
  EXPECT_FALSE(cpu->oom);
}

TEST(ExperimentTest, MatmulStructuralFeatures) {
  auto result = RunExperiment(MatmulConfig(4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_blocks, 16);
  EXPECT_EQ(result->dag_width, 64);  // 4^3 parallel matmul_func
  EXPECT_EQ(result->parallel_fraction, 1.0);
  EXPECT_GT(result->complexity, 0.0);
}

TEST(ExperimentTest, KMeansParallelFractionBelowOne) {
  auto result = RunExperiment(KMeansConfig(256));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->parallel_fraction, 0.0);
  EXPECT_LT(result->parallel_fraction, 1.0);
}

TEST(FactorSpaceTest, PaperGridLists) {
  EXPECT_EQ(MatmulPaperGrids().size(), 5u);
  EXPECT_EQ(KMeansPaperGrids().size(), 9u);
  EXPECT_EQ(KMeansPaperGrids().back().first, 256);
}

TEST(FactorSpaceTest, FullFactorialCountsMultiply) {
  FactorLists lists;
  lists.algorithms = {Algorithm::kMatmul};
  lists.datasets = {data::PaperDatasets::Matmul128MB()};
  lists.grids = {{1, 1}, {2, 2}};
  lists.processors = {Processor::kCpu, Processor::kGpu};
  lists.storages = {hw::StorageArchitecture::kSharedDisk,
                    hw::StorageArchitecture::kLocalDisk};
  lists.policies = {SchedulingPolicy::kTaskGenerationOrder};
  const auto configs = FullFactorial(lists, ExperimentConfig());
  EXPECT_EQ(configs.size(), 2u * 2u * 2u);
  // Labels are unique.
  for (size_t i = 0; i < configs.size(); ++i) {
    for (size_t j = i + 1; j < configs.size(); ++j) {
      EXPECT_NE(configs[i].label, configs[j].label);
    }
  }
}

TEST(FactorSpaceTest, CorrelationSampleCountNearPaper) {
  // The paper uses 192 samples (Section 5.4).
  const auto configs = CorrelationSampleConfigs();
  EXPECT_GE(configs.size(), 180u);
  EXPECT_LE(configs.size(), 210u);
}

TEST(FactorSpaceTest, FeatureTableFromSmallSweep) {
  // A small but diverse sweep: both algorithms, both processors.
  std::vector<ExperimentConfig> configs;
  for (Processor p : {Processor::kCpu, Processor::kGpu}) {
    for (int64_t g : {4, 16}) {
      configs.push_back(MatmulConfig(g, p));
      configs.push_back(KMeansConfig(g * 16, p));
    }
  }
  auto table = BuildFeatureTable(configs);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), configs.size());
  // All Figure 11 feature groups present.
  EXPECT_TRUE(table->Column("parallel-task-exec-time").ok());
  EXPECT_TRUE(table->Column("block-size").ok());
  EXPECT_TRUE(table->Column("processor=CPU").ok());
  EXPECT_TRUE(table->Column("processor=GPU").ok());
  EXPECT_TRUE(table->Column("storage=shared-disk").ok());
  EXPECT_TRUE(table->Column("scheduling=task-gen-order").ok());

  auto matrix = table->SpearmanMatrix();
  ASSERT_TRUE(matrix.ok());
  // CPU and GPU one-hot columns perfectly anticorrelate (Figure 11).
  auto rho = matrix->At("processor=CPU", "processor=GPU");
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, -1.0, 1e-12);
}

TEST(FactorSpaceTest, OomSamplesAreDropped) {
  std::vector<ExperimentConfig> configs;
  configs.push_back(MatmulConfig(1, Processor::kGpu));  // OOM
  configs.push_back(MatmulConfig(4, Processor::kCpu));
  configs.push_back(MatmulConfig(4, Processor::kGpu));
  configs.push_back(MatmulConfig(8, Processor::kCpu));
  auto table = BuildFeatureTable(configs);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 3u);
}

}  // namespace
}  // namespace taskbench::analysis
