#include "common/random.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace taskbench {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformMeanNearCenter) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BoundedStaysBelowBound) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(5);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.NextBounded(8)];
  }
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(31337);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

}  // namespace
}  // namespace taskbench
