#include "runtime/task_graph.h"

#include <gtest/gtest.h>

namespace taskbench::runtime {
namespace {

TaskSpec Reader(DataId in, DataId out, const std::string& type = "t") {
  TaskSpec spec;
  spec.type = type;
  spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
  return spec;
}

TEST(TaskGraphTest, RegistersData) {
  TaskGraph graph;
  const DataId d0 = graph.AddData(1024, "block");
  const DataId d1 = graph.AddData(2048);
  EXPECT_EQ(d0, 0);
  EXPECT_EQ(d1, 1);
  EXPECT_EQ(graph.num_data(), 2);
  EXPECT_EQ(graph.data(d0).bytes, 1024u);
  EXPECT_EQ(graph.data(d0).name, "block");
  EXPECT_EQ(graph.data(d1).name, "d1");
}

TEST(TaskGraphTest, MaterializedDataCarriesValueAndBytes) {
  TaskGraph graph;
  const DataId d = graph.AddData(data::Matrix(4, 4, 1.0), "m");
  EXPECT_TRUE(graph.data(d).value.has_value());
  EXPECT_EQ(graph.data(d).bytes, 128u);
}

TEST(TaskGraphTest, RejectsEmptyParamsAndUnknownData) {
  TaskGraph graph;
  TaskSpec empty;
  empty.type = "empty";
  EXPECT_FALSE(graph.Submit(empty).ok());

  TaskSpec bad;
  bad.type = "bad";
  bad.params = {{99, Dir::kIn}};
  EXPECT_FALSE(graph.Submit(bad).ok());
}

TEST(TaskGraphTest, ReadAfterWriteDependency) {
  TaskGraph graph;
  const DataId in = graph.AddData(8);
  const DataId mid = graph.AddData(8);
  const DataId out = graph.AddData(8);
  auto t0 = graph.Submit(Reader(in, mid));
  auto t1 = graph.Submit(Reader(mid, out));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  EXPECT_TRUE(graph.task(*t0).deps.empty());
  ASSERT_EQ(graph.task(*t1).deps.size(), 1u);
  EXPECT_EQ(graph.task(*t1).deps[0], *t0);
  EXPECT_EQ(graph.task(*t0).successors,
            (std::vector<TaskId>{*t1}));
}

TEST(TaskGraphTest, IndependentReadersRunInParallel) {
  TaskGraph graph;
  const DataId in = graph.AddData(8);
  const DataId o1 = graph.AddData(8);
  const DataId o2 = graph.AddData(8);
  auto t0 = graph.Submit(Reader(in, o1));
  auto t1 = graph.Submit(Reader(in, o2));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  EXPECT_TRUE(graph.task(*t1).deps.empty());  // two readers: no dep
  EXPECT_EQ(graph.MaxWidth(), 2);
  EXPECT_EQ(graph.MaxHeight(), 1);
}

TEST(TaskGraphTest, WriteAfterReadAntiDependency) {
  TaskGraph graph;
  const DataId shared = graph.AddData(8);
  const DataId out = graph.AddData(8);
  auto reader = graph.Submit(Reader(shared, out));
  TaskSpec writer;
  writer.type = "writer";
  writer.params = {{shared, Dir::kOut}};
  auto w = graph.Submit(writer);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(graph.task(*w).deps.size(), 1u);
  EXPECT_EQ(graph.task(*w).deps[0], *reader);
}

TEST(TaskGraphTest, WriteAfterWriteDependency) {
  TaskGraph graph;
  const DataId d = graph.AddData(8);
  TaskSpec writer;
  writer.type = "writer";
  writer.params = {{d, Dir::kOut}};
  auto w0 = graph.Submit(writer);
  auto w1 = graph.Submit(writer);
  ASSERT_TRUE(w0.ok());
  ASSERT_TRUE(w1.ok());
  ASSERT_EQ(graph.task(*w1).deps.size(), 1u);
  EXPECT_EQ(graph.task(*w1).deps[0], *w0);
  EXPECT_EQ(graph.data(d).version, 2);
}

TEST(TaskGraphTest, InOutChainsIterations) {
  // The K-means pattern: readers of a datum, then an INOUT updater,
  // then next iteration's readers depend on the updater.
  TaskGraph graph;
  const DataId centroids = graph.AddData(8);
  const DataId block = graph.AddData(8);
  const DataId p0 = graph.AddData(8);

  TaskSpec read1;
  read1.type = "partial";
  read1.params = {{block, Dir::kIn}, {centroids, Dir::kIn}, {p0, Dir::kOut}};
  auto r1 = graph.Submit(read1);

  TaskSpec update;
  update.type = "merge";
  update.params = {{p0, Dir::kIn}, {centroids, Dir::kInOut}};
  auto u = graph.Submit(update);

  const DataId p1 = graph.AddData(8);
  TaskSpec read2;
  read2.type = "partial";
  read2.params = {{block, Dir::kIn}, {centroids, Dir::kIn}, {p1, Dir::kOut}};
  auto r2 = graph.Submit(read2);

  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(u.ok());
  ASSERT_TRUE(r2.ok());
  // merge depends on the partial both through p0 (RAW) and through
  // centroids (WAR).
  ASSERT_EQ(graph.task(*u).deps.size(), 1u);
  EXPECT_EQ(graph.task(*u).deps[0], *r1);
  // Second-iteration reader depends on merge (RAW on centroids).
  ASSERT_EQ(graph.task(*r2).deps.size(), 1u);
  EXPECT_EQ(graph.task(*r2).deps[0], *u);
  EXPECT_EQ(graph.MaxHeight(), 3);
}

TEST(TaskGraphTest, InOutDoesNotSelfDepend) {
  TaskGraph graph;
  const DataId d = graph.AddData(8);
  TaskSpec update;
  update.type = "inc";
  update.params = {{d, Dir::kInOut}};
  auto t = graph.Submit(update);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(graph.task(*t).deps.empty());
}

TEST(TaskGraphTest, LevelsFollowLongestPath) {
  TaskGraph graph;
  const DataId a = graph.AddData(8);
  const DataId b = graph.AddData(8);
  const DataId c = graph.AddData(8);
  const DataId d = graph.AddData(8);
  auto t0 = graph.Submit(Reader(a, b));  // level 0
  auto t1 = graph.Submit(Reader(b, c));  // level 1
  TaskSpec join;                         // reads a (lvl indep) and c
  join.type = "join";
  join.params = {{a, Dir::kIn}, {c, Dir::kIn}, {d, Dir::kOut}};
  auto t2 = graph.Submit(join);  // level 2 (longest path via t1)
  ASSERT_TRUE(t0.ok() && t1.ok() && t2.ok());
  EXPECT_EQ(graph.task(*t2).level, 2);
  const auto levels = graph.LevelSets();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0], (std::vector<TaskId>{*t0}));
  EXPECT_EQ(levels[2], (std::vector<TaskId>{*t2}));
}

TEST(TaskGraphTest, ToDotContainsTasksAndEdges) {
  TaskGraph graph;
  const DataId a = graph.AddData(8);
  const DataId b = graph.AddData(8);
  const DataId c = graph.AddData(8);
  auto t0 = graph.Submit(Reader(a, b, "produce"));
  auto t1 = graph.Submit(Reader(b, c, "consume"));
  ASSERT_TRUE(t0.ok() && t1.ok());
  const std::string dot = graph.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("produce"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
}

TEST(TaskGraphTest, ValidatePassesOnBuilderGraphs) {
  TaskGraph graph;
  const DataId a = graph.AddData(8);
  const DataId b = graph.AddData(8);
  ASSERT_TRUE(graph.Submit(Reader(a, b)).ok());
  EXPECT_TRUE(graph.Validate().ok());
}

}  // namespace
}  // namespace taskbench::runtime
