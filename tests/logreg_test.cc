#include "algos/logreg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "algos/kmeans.h"
#include "data/generators.h"
#include "perf/cost_model.h"
#include "runtime/thread_pool_executor.h"

namespace taskbench::algos {
namespace {

data::GridSpec RowSpec(int64_t rows, int64_t cols, int64_t grid_rows) {
  auto spec = data::GridSpec::CreateFromGridDim(
      data::DatasetSpec{"x", rows, cols}, grid_rows, 1);
  EXPECT_TRUE(spec.ok());
  return *spec;
}

TEST(LogRegBuildTest, DagShapeMirrorsKMeans) {
  LogRegOptions options;
  options.iterations = 3;
  auto wf = BuildLogReg(RowSpec(512, 5, 4), options);
  ASSERT_TRUE(wf.ok());
  EXPECT_EQ(wf->graph.num_tasks(), 3 * (4 + 1));
  EXPECT_EQ(wf->graph.MaxWidth(), 4);
  EXPECT_EQ(wf->graph.MaxHeight(), 6);
}

TEST(LogRegBuildTest, RejectsBadInputs) {
  EXPECT_FALSE(BuildLogReg(RowSpec(512, 1, 4), LogRegOptions{}).ok());
  LogRegOptions zero_iters;
  zero_iters.iterations = 0;
  EXPECT_FALSE(BuildLogReg(RowSpec(512, 5, 4), zero_iters).ok());
  auto col_spec =
      data::GridSpec::Create(data::DatasetSpec{"x", 64, 8}, 32, 4);
  ASSERT_TRUE(col_spec.ok());
  EXPECT_FALSE(BuildLogReg(*col_spec, LogRegOptions{}).ok());
}

TEST(LogRegRealTest, LearnsSeparableData) {
  LogRegOptions options;
  options.materialize = true;
  options.iterations = 60;
  options.learning_rate = 1.0;
  auto wf = BuildLogReg(RowSpec(2000, 5, 4), options);
  ASSERT_TRUE(wf.ok());

  runtime::ThreadPoolExecutor executor(runtime::RunOptions{});
  auto report = executor.Execute(wf->graph);
  ASSERT_TRUE(report.ok());

  auto weights = executor.FetchData(wf->graph, wf->weights);
  ASSERT_TRUE(weights.ok());

  // Evaluate training accuracy against the generated blocks.
  int correct = 0, total = 0;
  for (runtime::DataId block_id : wf->blocks) {
    const data::Matrix& block = *wf->graph.data(block_id).value;
    const int64_t f = block.cols() - 1;
    for (int64_t r = 0; r < block.rows(); ++r) {
      double z = weights->At(0, f);
      for (int64_t j = 0; j < f; ++j) {
        z += weights->At(0, j) * block.At(r, j);
      }
      const double prediction = z > 0 ? 1.0 : 0.0;
      if (prediction == block.At(r, f)) ++correct;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(LogRegRealTest, PartitioningInvariant) {
  // Batch gradient descent is partitioning-invariant: the same data
  // cut into different block counts yields identical weights.
  data::Matrix samples(600, 4);
  Rng rng(17);
  for (int64_t r = 0; r < 600; ++r) {
    double z = 0;
    for (int64_t j = 0; j < 3; ++j) {
      samples.At(r, j) = rng.Uniform(-1, 1);
      z += (j + 1) * samples.At(r, j);
    }
    samples.At(r, 3) = z > 0 ? 1.0 : 0.0;
  }
  data::Matrix weights_by_grid[2];
  int idx = 0;
  for (int64_t grid : {2, 8}) {
    LogRegOptions options;
    options.materialize = true;
    options.iterations = 10;
    options.samples_with_labels = &samples;
    auto wf = BuildLogReg(RowSpec(600, 4, grid), options);
    ASSERT_TRUE(wf.ok());
    runtime::ThreadPoolExecutor executor(
        runtime::RunOptions{});
    ASSERT_TRUE(executor.Execute(wf->graph).ok());
    auto weights = executor.FetchData(wf->graph, wf->weights);
    ASSERT_TRUE(weights.ok());
    weights_by_grid[idx++] = *weights;
  }
  EXPECT_TRUE(weights_by_grid[0].ApproxEquals(weights_by_grid[1], 1e-9));
}

TEST(LogRegCostTest, IntermediateParallelFraction) {
  // The parallel/serial ratio sits between K-means (low) and a fully
  // parallel task (infinite) — the Section 5.5.1 spectrum point.
  const perf::CostModel model(hw::MinotauroCluster());
  const perf::TaskCost logreg = GradFuncCost(48828, 101);
  const perf::TaskCost kmeans = PartialSumCost(48828, 100, 10);
  const double logreg_ratio = model.CpuParallelFraction(logreg) /
                              model.SerialFraction(logreg);
  const double kmeans_ratio = model.CpuParallelFraction(kmeans) /
                              model.SerialFraction(kmeans);
  EXPECT_GT(logreg_ratio, kmeans_ratio);
}

TEST(LogRegCostTest, ApplyGradIsSerialOnly) {
  const perf::TaskCost cost = ApplyGradCost(256, 101);
  EXPECT_EQ(cost.parallel.flops, 0.0);
  EXPECT_GT(cost.serial.bytes, 0.0);
}

TEST(LogRegCostTest, CommunicationBoundDespiteParallelism) {
  // Gradient descent streams each block once per iteration at ~2
  // flops/byte, so even though most of its user code parallelizes,
  // moving the block over PCIe costs more than computing on the CPU —
  // the GPU roughly breaks even or loses. A new point on the family
  // spectrum: high parallel fraction does NOT imply GPU gains when
  // arithmetic intensity is low (the add_func lesson, Section 5.2.1,
  // now on a partially parallel algorithm).
  const perf::CostModel model(hw::MinotauroCluster());
  const perf::TaskCost cost = GradFuncCost(12500000 / 16, 101);
  const double serial = model.SerialFraction(cost);
  const double cpu = model.CpuParallelFraction(cost) + serial;
  const double gpu = model.GpuParallelFraction(cost) + serial +
                     model.CpuGpuComm(cost);
  const double speedup = cpu / gpu;
  EXPECT_GT(speedup, 0.5);
  EXPECT_LT(speedup, 1.3);
  // The communication stage dominates the GPU's parallel fraction.
  EXPECT_GT(model.CpuGpuComm(cost), model.GpuParallelFraction(cost));
}

}  // namespace
}  // namespace taskbench::algos
