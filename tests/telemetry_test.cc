// End-to-end telemetry tests: both executors collecting into a
// MetricsRegistry, the scheduler phase breakdown, and the exported
// metrics/trace JSON documents.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "data/matrix.h"
#include "hw/cluster.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "runtime/metrics_export.h"
#include "runtime/run_options.h"
#include "runtime/simulated_executor.h"
#include "runtime/task_graph.h"
#include "runtime/thread_pool_executor.h"
#include "runtime/trace.h"

namespace taskbench::runtime {
namespace {

/// Two-level diamond per lane: lane chains exercise dependencies and
/// give the simulated scheduler a steady ready set.
TaskGraph SimGraph(int lanes, int levels, const char* type = "work") {
  TaskGraph graph;
  std::vector<DataId> front(static_cast<size_t>(lanes));
  for (int w = 0; w < lanes; ++w) front[w] = graph.AddData(1'000'000);
  for (int l = 0; l < levels; ++l) {
    for (int w = 0; w < lanes; ++w) {
      const DataId out = graph.AddData(1'000'000);
      TaskSpec spec;
      spec.type = type;
      spec.params = {{front[static_cast<size_t>(w)], Dir::kIn},
                     {out, Dir::kOut}};
      spec.cost.parallel.flops = 1e9;
      spec.cost.input_bytes = 1'000'000;
      spec.cost.output_bytes = 1'000'000;
      TB_CHECK_OK(graph.Submit(spec).status());
      front[static_cast<size_t>(w)] = out;
    }
  }
  return graph;
}

RunReport RunSim(const TaskGraph& graph, RunOptions options) {
  SimulatedExecutor executor(hw::MinotauroCluster(), options);
  auto report = executor.Execute(graph);
  TB_CHECK_OK(report.status());
  return std::move(*report);
}

TEST(TelemetryTest, SimulatedRunPopulatesRegistry) {
  const TaskGraph graph = SimGraph(4, 5);
  obs::MetricsRegistry registry;
  RunOptions options;
  options.metrics = &registry;
  const RunReport report = RunSim(graph, options);

  EXPECT_EQ(registry.counter("sched.decisions")->value(),
            graph.num_tasks());
  EXPECT_EQ(registry.histogram("sched.ready_tasks")->count(),
            graph.num_tasks());
  EXPECT_GE(registry.histogram("sched.ready_tasks")->min(), 1.0);
  EXPECT_GT(registry.gauge("sim.max_pending_events")->value(), 0.0);
  EXPECT_GT(registry.counter("sim.events")->value(), 0);

  // Per-type stage histograms: one sample per completed task.
  const auto* duration = registry.histogram("task.work.duration_s");
  EXPECT_EQ(duration->count(), static_cast<int64_t>(report.records.size()));
  EXPECT_GT(duration->sum(), 0.0);
  EXPECT_EQ(registry.histogram("task.work.compute_s")->count(),
            duration->count());
  EXPECT_EQ(registry.histogram("task.work.deserialize_s")->count(),
            duration->count());
  EXPECT_EQ(registry.histogram("task.work.serialize_s")->count(),
            duration->count());
}

TEST(TelemetryTest, TelemetryDoesNotChangeTheRun) {
  const TaskGraph graph = SimGraph(3, 4);
  RunOptions options;
  const RunReport off = RunSim(graph, options);
  obs::MetricsRegistry registry;
  options.metrics = &registry;
  const RunReport on = RunSim(graph, options);

  EXPECT_EQ(off.makespan, on.makespan);
  EXPECT_EQ(off.scheduler_overhead, on.scheduler_overhead);
  EXPECT_EQ(off.sim_events, on.sim_events);
  ASSERT_EQ(off.records.size(), on.records.size());
  for (size_t i = 0; i < off.records.size(); ++i) {
    EXPECT_EQ(off.records[i].task, on.records[i].task);
    EXPECT_EQ(off.records[i].start, on.records[i].start);
    EXPECT_EQ(off.records[i].end, on.records[i].end);
  }
}

TEST(TelemetryTest, PhaseBreakdownSumsToSchedulerOverhead) {
  const TaskGraph graph = SimGraph(4, 4);
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kTaskGenerationOrder,
        SchedulingPolicy::kDataLocality}) {
    for (const hw::StorageArchitecture storage :
         {hw::StorageArchitecture::kSharedDisk,
          hw::StorageArchitecture::kLocalDisk}) {
      RunOptions options;
      options.policy = policy;
      options.storage = storage;
      const RunReport report = RunSim(graph, options);
      ASSERT_GT(report.scheduler_overhead, 0.0);
      EXPECT_TRUE(report.sched_phases.any());
      const double total = report.sched_phases.total();
      EXPECT_NEAR(total, report.scheduler_overhead,
                  0.01 * report.scheduler_overhead)
          << "policy=" << ToString(policy)
          << " storage=" << hw::ToString(storage);
    }
  }
}

TEST(TelemetryTest, PhaseBreakdownScalesUnderOverrideKnob) {
  const TaskGraph graph = SimGraph(2, 3);
  RunOptions options;
  options.scheduler_overhead_override_s = 2e-3;
  const RunReport report = RunSim(graph, options);
  ASSERT_GT(report.scheduler_overhead, 0.0);
  EXPECT_NEAR(report.sched_phases.total(), report.scheduler_overhead,
              0.01 * report.scheduler_overhead);
  // The split keeps the policy's proportions: ready-pop dominates
  // slot-pick in the task-generation-order scheduler (0.5 : 0.3).
  EXPECT_GT(report.sched_phases.ready_pop_s,
            report.sched_phases.slot_pick_s);
}

TEST(TelemetryTest, ZeroOverrideZeroesTheBreakdown) {
  const TaskGraph graph = SimGraph(2, 2);
  RunOptions options;
  options.scheduler_overhead_override_s = 0;
  const RunReport report = RunSim(graph, options);
  EXPECT_EQ(report.scheduler_overhead, 0.0);
  EXPECT_FALSE(report.sched_phases.any());
  EXPECT_EQ(report.sched_phases.total(), 0.0);
}

TEST(TelemetryTest, FaultCountersAppearWhenFaultsFire) {
  const TaskGraph graph = SimGraph(2, 3);
  obs::MetricsRegistry registry;
  RunOptions options;
  options.metrics = &registry;
  options.max_retries = 8;
  options.faults.storage_fault_rate = 0.5;
  options.faults.seed = 7;
  const RunReport report = RunSim(graph, options);
  EXPECT_GT(report.faults.storage_faults, 0);
  EXPECT_GT(report.faults.retries, 0);
  EXPECT_EQ(registry.counter("faults.injected")->value(),
            report.faults.faults_injected);
  EXPECT_EQ(registry.counter("faults.retries")->value(),
            report.faults.retries);
  EXPECT_EQ(registry.counter("faults.storage_faults")->value(),
            report.faults.storage_faults);
}

TEST(TelemetryTest, ThreadPoolRunPopulatesRegistry) {
  TaskGraph graph;
  std::vector<DataId> chain;
  const int kTasks = 12;
  DataId cur = graph.AddData(data::Matrix(4, 4, 1.0));
  for (int i = 0; i < kTasks; ++i) {
    const DataId next = graph.AddData(static_cast<uint64_t>(128));
    TaskSpec spec;
    spec.type = "copy";
    spec.params = {{cur, Dir::kIn}, {next, Dir::kOut}};
    spec.kernel = [](const std::vector<const data::Matrix*>& inputs,
                     const std::vector<data::Matrix*>& outputs) -> Status {
      *outputs[0] = *inputs[0];
      return Status::OK();
    };
    TB_CHECK_OK(graph.Submit(spec).status());
    cur = next;
  }

  obs::MetricsRegistry registry;
  RunOptions options;
  options.num_threads = 3;
  options.metrics = &registry;
  ThreadPoolExecutor executor(options);
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());

  EXPECT_EQ(registry.counter("pool.tasks")->value(), kTasks);
  EXPECT_EQ(registry.gauge("pool.workers")->value(), 3.0);
  EXPECT_EQ(registry.histogram("task.copy.duration_s")->count(), kTasks);
  EXPECT_GT(registry.histogram("task.copy.duration_s")->sum(), 0.0);
  // The thread-pool path leaves the simulated-master breakdown empty.
  EXPECT_FALSE(report->sched_phases.any());
}

TEST(TelemetryTest, MetricsJsonIsValid) {
  const TaskGraph graph = SimGraph(3, 3);
  obs::MetricsRegistry registry;
  RunOptions options;
  options.metrics = &registry;
  const RunReport report = RunSim(graph, options);

  std::ostringstream out;
  StreamMetricsJson(report, &registry, out);
  const std::string json = out.str();
  EXPECT_TRUE(obs::ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"schema\": \"taskbench.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"scheduler_phases\""), std::string::npos);
  EXPECT_NE(json.find("sched.decisions"), std::string::npos);
}

TEST(TelemetryTest, MetricsJsonWithNullRegistryIsValid) {
  const TaskGraph graph = SimGraph(2, 2);
  const RunReport report = RunSim(graph, RunOptions{});
  std::ostringstream out;
  StreamMetricsJson(report, nullptr, out);
  EXPECT_TRUE(obs::ValidateJson(out.str()).ok()) << out.str();
  EXPECT_NE(out.str().find("\"metrics\": {}"), std::string::npos);
}

TEST(TelemetryTest, FlowEventsConnectProducersToConsumers) {
  const TaskGraph graph = SimGraph(2, 3);
  const RunReport report = RunSim(graph, RunOptions{});
  TraceOptions trace_options;
  trace_options.graph = &graph;
  trace_options.flow_events = true;
  const std::string json = ChromeTraceJson(report, trace_options);
  EXPECT_TRUE(obs::ValidateJson(json).ok()) << json;
  // Each of the 2 lanes has 2 dependency edges (3 levels) -> 4 flow
  // pairs.
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  // Without the flag the trace carries no flow events.
  const std::string plain = ChromeTraceJson(report);
  EXPECT_EQ(plain.find("\"ph\": \"s\""), std::string::npos);
}

}  // namespace
}  // namespace taskbench::runtime
