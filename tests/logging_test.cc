#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace taskbench {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LoggingTest, EmitsAtOrAboveThreshold) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  TB_LOG(Info) << "hidden message";
  TB_LOG(Warning) << "visible warning";
  TB_LOG(Error) << "visible error";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden message"), std::string::npos);
  EXPECT_NE(out.find("visible warning"), std::string::npos);
  EXPECT_NE(out.find("visible error"), std::string::npos);
  EXPECT_NE(out.find("[WARN"), std::string::npos);
}

TEST(LoggingTest, IncludesFileAndLine) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  TB_LOG(Info) << "locate me";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ TB_CHECK(1 == 2) << "math broke"; }, "math broke");
  EXPECT_DEATH({ TB_CHECK_OK(Status::Internal("bad state")); },
               "bad state");
}

TEST(LoggingTest, CheckPassesSilently) {
  ::testing::internal::CaptureStderr();
  TB_CHECK(true) << "never shown";
  TB_CHECK_OK(Status::OK());
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace taskbench
