#include "analysis/guidelines.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace taskbench::analysis {
namespace {

ExperimentConfig MatmulBase() {
  ExperimentConfig base;
  base.algorithm = Algorithm::kMatmul;
  base.dataset = data::PaperDatasets::Matmul8GB();
  return base;
}

TEST(GuidelinesTest, RejectsEmptyCandidates) {
  EXPECT_FALSE(RecommendConfiguration(MatmulBase(), {}).ok());
}

TEST(GuidelinesTest, RecommendsFeasibleFastestMatmul) {
  auto rec = RecommendConfiguration(
      MatmulBase(), {{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16}});
  ASSERT_TRUE(rec.ok());
  EXPECT_GT(rec->makespan, 0.0);
  // The recommended point is the minimum among evaluated feasible
  // candidates.
  for (const CandidateOutcome& c : rec->evaluated) {
    if (!c.oom) EXPECT_GE(c.makespan, rec->makespan - 1e-9);
  }
  // 1x1 on GPU is OOM and must be recorded as such, never chosen.
  bool saw_oom = false;
  for (const CandidateOutcome& c : rec->evaluated) {
    if (c.grid_rows == 1 && c.processor == Processor::kGpu) {
      EXPECT_TRUE(c.oom);
      saw_oom = true;
    }
  }
  EXPECT_TRUE(saw_oom);
  EXPECT_FALSE(rec->grid_rows == 1 && rec->processor == Processor::kGpu);
}

TEST(GuidelinesTest, GpuBenefitReportsProcessorChoiceValue) {
  auto rec = RecommendConfiguration(MatmulBase(), {{4, 4}, {8, 8}});
  ASSERT_TRUE(rec.ok());
  // Matmul is fully parallelizable: the tuner should find GPU
  // beneficial at these granularities.
  EXPECT_EQ(rec->processor, Processor::kGpu);
  EXPECT_GT(rec->gpu_benefit, 1.0);
}

TEST(GuidelinesTest, GpulessClusterRecommendsCpu) {
  ExperimentConfig base = MatmulBase();
  base.cluster = hw::SingleNode(16, 0);
  auto rec = RecommendConfiguration(base, {{4, 4}, {8, 8}});
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->processor, Processor::kCpu);
  EXPECT_DOUBLE_EQ(rec->gpu_benefit, 1.0);
}

TEST(GuidelinesTest, AllOomIsFailedPrecondition) {
  ExperimentConfig base = MatmulBase();
  // Shrink GPU memory so every evaluated GPU config OOMs, and make
  // candidates GPU-only infeasible... CPU is always feasible, so
  // instead verify the error path with a cluster whose every GPU
  // candidate OOMs but CPU works: the call still succeeds via CPU.
  base.cluster.gpu.memory_bytes = 1;  // everything OOMs on GPU
  auto rec = RecommendConfiguration(base, {{4, 4}});
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->processor, Processor::kCpu);
}

TEST(GuidelinesTest, KMeansPrefersFineGrainOverSingleBlock) {
  ExperimentConfig base;
  base.algorithm = Algorithm::kKMeans;
  base.dataset = data::PaperDatasets::KMeans10GB();
  base.iterations = 1;
  auto rec = RecommendConfiguration(base, {{1, 1}, {8, 1}, {64, 1}, {256, 1}});
  ASSERT_TRUE(rec.ok());
  // A single block wastes 127 cores; the tuner must pick a
  // finer-grained configuration.
  EXPECT_GT(rec->grid_rows, 1);
}

}  // namespace
}  // namespace taskbench::analysis
