#include "runtime/simulated_executor.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "hw/cluster.h"

namespace taskbench::runtime {
namespace {

/// A task spending exactly `cpu_seconds` in its parallel fraction on
/// one Minotauro CPU core (16 GF/s), reading/writing `io_bytes`.
TaskSpec TimedTask(TaskGraph* graph, DataId in, DataId out,
                   double cpu_seconds, Processor processor = Processor::kCpu,
                   uint64_t gpu_working_set = 0) {
  TaskSpec spec;
  spec.type = "timed";
  spec.processor = processor;
  spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
  spec.cost.parallel.flops = cpu_seconds * 16e9;
  spec.cost.input_bytes = graph->data(in).bytes;
  spec.cost.output_bytes = graph->data(out).bytes;
  spec.cost.h2d_bytes = graph->data(in).bytes;
  spec.cost.d2h_bytes = graph->data(out).bytes;
  spec.cost.num_transfers = 2;
  spec.cost.gpu_working_set_bytes = gpu_working_set;
  return spec;
}

RunOptions DefaultOptions() {
  RunOptions options;
  options.storage = hw::StorageArchitecture::kSharedDisk;
  options.policy = SchedulingPolicy::kTaskGenerationOrder;
  return options;
}

TEST(SimulatedExecutorTest, EmptyGraph) {
  SimulatedExecutor executor(hw::MinotauroCluster(), DefaultOptions());
  TaskGraph graph;
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->records.empty());
  EXPECT_EQ(report->makespan, 0.0);
}

TEST(SimulatedExecutorTest, SingleTaskStagesAddUp) {
  SimulatedExecutor executor(hw::MinotauroCluster(), DefaultOptions());
  TaskGraph graph;
  // Exactly 1 s of uncontended shared-disk streaming each way.
  const auto stream_bytes = static_cast<uint64_t>(
      hw::MinotauroCluster().shared_disk.per_stream_bw_bps);
  const DataId in = graph.AddData(stream_bytes);
  const DataId out = graph.AddData(stream_bytes);
  ASSERT_TRUE(graph.Submit(TimedTask(&graph, in, out, 2.0)).ok());

  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->records.size(), 1u);
  const TaskRecord& rec = report->records[0];
  EXPECT_NEAR(rec.stages.parallel_fraction, 2.0, 1e-9);
  EXPECT_NEAR(rec.stages.deserialize, 1.0, 0.01);
  EXPECT_NEAR(rec.stages.serialize, 1.0, 0.01);
  EXPECT_EQ(rec.stages.cpu_gpu_comm, 0.0);
  EXPECT_NEAR(rec.duration(), 4.0, 0.05);
  EXPECT_GT(report->scheduler_overhead, 0.0);
}

TEST(SimulatedExecutorTest, TaskParallelismBoundedByCores) {
  // 256 one-second CPU tasks on 128 cores take ~2 waves.
  RunOptions options = DefaultOptions();
  SimulatedExecutor executor(hw::MinotauroCluster(), options);
  TaskGraph graph;
  for (int i = 0; i < 256; ++i) {
    const DataId in = graph.AddData(8);
    const DataId out = graph.AddData(8);
    ASSERT_TRUE(graph.Submit(TimedTask(&graph, in, out, 1.0)).ok());
  }
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->makespan, 2.0);
  EXPECT_LT(report->makespan, 3.0);  // ~2 waves + small overheads
}

TEST(SimulatedExecutorTest, GpuParallelismBoundedByDevices) {
  // The same 256 tasks on GPU can only use 32 devices: 8 waves.
  // (GPU task time for this cost is close to the CPU time because the
  // descriptor has no ramp: 16e9 flops / 360 GF/s is fast, but comm
  // adds little; so bound the wave count structurally instead.)
  SimulatedExecutor executor(hw::MinotauroCluster(), DefaultOptions());
  TaskGraph graph;
  for (int i = 0; i < 64; ++i) {
    const DataId in = graph.AddData(8);
    const DataId out = graph.AddData(8);
    TaskSpec spec = TimedTask(&graph, in, out, 0.0, Processor::kGpu);
    spec.cost.parallel.flops = 360e9;  // exactly 1 s on the device
    ASSERT_TRUE(graph.Submit(spec).ok());
  }
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  // 64 tasks, 32 devices -> at least 2 serialized waves.
  EXPECT_GT(report->makespan, 2.0);
  EXPECT_LT(report->makespan, 3.5);
}

TEST(SimulatedExecutorTest, DependenciesSerializeExecution) {
  SimulatedExecutor executor(hw::MinotauroCluster(), DefaultOptions());
  TaskGraph graph;
  const DataId a = graph.AddData(8);
  const DataId b = graph.AddData(8);
  const DataId c = graph.AddData(8);
  ASSERT_TRUE(graph.Submit(TimedTask(&graph, a, b, 1.0)).ok());
  ASSERT_TRUE(graph.Submit(TimedTask(&graph, b, c, 1.0)).ok());
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  const auto& records = report->records;
  EXPECT_GE(records[1].start, records[0].end);
  EXPECT_GT(report->makespan, 2.0);
}

TEST(SimulatedExecutorTest, GpuOomSurfacesAsOutOfMemory) {
  SimulatedExecutor executor(hw::MinotauroCluster(), DefaultOptions());
  TaskGraph graph;
  const DataId in = graph.AddData(8);
  const DataId out = graph.AddData(8);
  ASSERT_TRUE(graph
                  .Submit(TimedTask(&graph, in, out, 1.0, Processor::kGpu,
                                    /*gpu_working_set=*/13ULL * kGiB))
                  .ok());
  auto report = executor.Execute(graph);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsOutOfMemory());
}

TEST(SimulatedExecutorTest, GpuTaskOnGpulessClusterStalls) {
  SimulatedExecutor executor(hw::SingleNode(4, 0), DefaultOptions());
  TaskGraph graph;
  const DataId in = graph.AddData(8);
  const DataId out = graph.AddData(8);
  ASSERT_TRUE(
      graph.Submit(TimedTask(&graph, in, out, 1.0, Processor::kGpu)).ok());
  auto report = executor.Execute(graph);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SimulatedExecutorTest, SharedDiskContentionSlowsFineGrain) {
  // 128 concurrent 600 MB reads through the 6 GB/s shared disk are
  // ~13x slower than one uncontended read.
  TaskGraph one_graph;
  {
    const DataId in = one_graph.AddData(600'000'000);
    const DataId out = one_graph.AddData(8);
    ASSERT_TRUE(one_graph.Submit(TimedTask(&one_graph, in, out, 0.0)).ok());
  }
  TaskGraph many_graph;
  for (int i = 0; i < 128; ++i) {
    const DataId in = many_graph.AddData(600'000'000);
    const DataId out = many_graph.AddData(8);
    ASSERT_TRUE(many_graph.Submit(TimedTask(&many_graph, in, out, 0.0)).ok());
  }
  SimulatedExecutor executor(hw::MinotauroCluster(), DefaultOptions());
  auto one = executor.Execute(one_graph);
  auto many = executor.Execute(many_graph);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(many.ok());
  EXPECT_GT(many->makespan, one->makespan * 8);
}

TEST(SimulatedExecutorTest, LocalDiskScalesBetterThanShared) {
  auto run = [](hw::StorageArchitecture storage) {
    TaskGraph graph;
    for (int i = 0; i < 128; ++i) {
      const DataId in = graph.AddData(600'000'000);
      const DataId out = graph.AddData(8);
      TaskSpec spec = TimedTask(&graph, in, out, 0.0);
      EXPECT_TRUE(graph.Submit(spec).ok());
    }
    RunOptions options;
    options.storage = storage;
    options.policy = SchedulingPolicy::kDataLocality;
    SimulatedExecutor executor(hw::MinotauroCluster(), options);
    auto report = executor.Execute(graph);
    EXPECT_TRUE(report.ok());
    return report->makespan;
  };
  // 8 local disks of 1.2 GB/s beat one 6 GB/s shared filesystem when
  // reads are local.
  EXPECT_LT(run(hw::StorageArchitecture::kLocalDisk),
            run(hw::StorageArchitecture::kSharedDisk));
}

TEST(SimulatedExecutorTest, DataLocalityAddsSchedulerOverhead) {
  auto run = [](SchedulingPolicy policy) {
    TaskGraph graph;
    for (int i = 0; i < 64; ++i) {
      const DataId in = graph.AddData(8);
      const DataId out = graph.AddData(8);
      EXPECT_TRUE(graph.Submit(TimedTask(&graph, in, out, 0.01)).ok());
    }
    RunOptions options;
    options.policy = policy;
    SimulatedExecutor executor(hw::MinotauroCluster(), options);
    auto report = executor.Execute(graph);
    EXPECT_TRUE(report.ok());
    return report->scheduler_overhead;
  };
  EXPECT_GT(run(SchedulingPolicy::kDataLocality),
            run(SchedulingPolicy::kTaskGenerationOrder));
}

TEST(SimulatedExecutorTest, DeterministicAcrossRuns) {
  TaskGraph graph;
  for (int i = 0; i < 50; ++i) {
    const DataId in = graph.AddData(1'000'000);
    const DataId out = graph.AddData(1'000'000);
    ASSERT_TRUE(graph.Submit(TimedTask(&graph, in, out, 0.05)).ok());
  }
  SimulatedExecutor executor(hw::MinotauroCluster(), DefaultOptions());
  auto a = executor.Execute(graph);
  auto b = executor.Execute(graph);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->makespan, b->makespan);
  ASSERT_EQ(a->records.size(), b->records.size());
  for (size_t i = 0; i < a->records.size(); ++i) {
    EXPECT_EQ(a->records[i].start, b->records[i].start);
    EXPECT_EQ(a->records[i].end, b->records[i].end);
    EXPECT_EQ(a->records[i].node, b->records[i].node);
  }
}

TEST(SimulatedExecutorTest, LevelStatsMatchDagLevels) {
  TaskGraph graph;
  const DataId a = graph.AddData(8);
  const DataId b = graph.AddData(8);
  const DataId c = graph.AddData(8);
  ASSERT_TRUE(graph.Submit(TimedTask(&graph, a, b, 0.5)).ok());
  ASSERT_TRUE(graph.Submit(TimedTask(&graph, b, c, 0.5)).ok());
  SimulatedExecutor executor(hw::MinotauroCluster(), DefaultOptions());
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  const auto levels = report->LevelStats();
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0].num_tasks, 1);
  EXPECT_EQ(levels[1].num_tasks, 1);
  EXPECT_GT(report->MeanLevelTime(), 0.5);
}

}  // namespace
}  // namespace taskbench::runtime
