#include "sim/bandwidth_resource.h"

#include <vector>

#include <gtest/gtest.h>

namespace taskbench::sim {
namespace {

constexpr double kTol = 1e-6;

BandwidthResourceOptions Opts(double capacity, double per_flow,
                              double latency = 0) {
  BandwidthResourceOptions o;
  o.capacity_bps = capacity;
  o.per_flow_cap_bps = per_flow;
  o.per_op_latency_s = latency;
  return o;
}

TEST(BandwidthResourceTest, SingleFlowLimitedByPerFlowCap) {
  Simulator sim;
  BandwidthResource disk(&sim, Opts(1000.0, 100.0));
  double done_at = -1;
  disk.Transfer(200, [&] { done_at = sim.Now(); });
  sim.Run();
  // 200 bytes at the 100 B/s per-flow cap, not the 1000 B/s aggregate.
  EXPECT_NEAR(done_at, 2.0, kTol);
}

TEST(BandwidthResourceTest, ManyFlowsSplitAggregate) {
  Simulator sim;
  BandwidthResource disk(&sim, Opts(1000.0, 1000.0));
  std::vector<double> done(4, -1);
  for (int i = 0; i < 4; ++i) {
    disk.Transfer(250, [&done, &sim, i] { done[static_cast<size_t>(i)] = sim.Now(); });
  }
  sim.Run();
  // 4 x 250 bytes sharing 1000 B/s -> each runs at 250 B/s, 1 s total.
  for (double t : done) EXPECT_NEAR(t, 1.0, kTol);
}

TEST(BandwidthResourceTest, LateArrivalSlowsEarlierFlow) {
  Simulator sim;
  BandwidthResource disk(&sim, Opts(100.0, 100.0));
  double first_done = -1, second_done = -1;
  disk.Transfer(100, [&] { first_done = sim.Now(); });
  sim.At(0.5, [&] {
    disk.Transfer(50, [&] { second_done = sim.Now(); });
  });
  sim.Run();
  // First flow: 50 bytes alone (0.5 s), then shares 100 B/s -> 50 B/s.
  // Remaining 50 bytes take 1 s -> done at 1.5 s. Second flow: 50
  // bytes at 50 B/s -> also done at 1.5 s.
  EXPECT_NEAR(first_done, 1.5, 1e-4);
  EXPECT_NEAR(second_done, 1.5, 1e-4);
}

TEST(BandwidthResourceTest, PerOpLatencyDelaysStart) {
  Simulator sim;
  BandwidthResource disk(&sim, Opts(100.0, 100.0, 0.25));
  double done_at = -1;
  disk.Transfer(100, [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_NEAR(done_at, 1.25, kTol);
}

TEST(BandwidthResourceTest, ZeroByteTransferPaysOnlyLatency) {
  Simulator sim;
  BandwidthResource disk(&sim, Opts(100.0, 100.0, 0.1));
  double done_at = -1;
  disk.Transfer(0, [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_NEAR(done_at, 0.1, kTol);
}

TEST(BandwidthResourceTest, TracksTotalsAndPeak) {
  Simulator sim;
  BandwidthResource disk(&sim, Opts(100.0, 100.0));
  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    disk.Transfer(100, [&] { ++completions; });
  }
  sim.Run();
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(disk.total_bytes(), 300u);
  EXPECT_EQ(disk.peak_flows(), 3);
  EXPECT_EQ(disk.active_flows(), 0);
}

TEST(BandwidthResourceTest, UnequalSizesCompleteInSizeOrder) {
  Simulator sim;
  BandwidthResource disk(&sim, Opts(100.0, 100.0));
  double small_done = -1, big_done = -1;
  disk.Transfer(50, [&] { small_done = sim.Now(); });
  disk.Transfer(150, [&] { big_done = sim.Now(); });
  sim.Run();
  // Shared 50 B/s each: small finishes at 1 s; big then speeds up to
  // 100 B/s for its remaining 100 bytes -> 2 s.
  EXPECT_NEAR(small_done, 1.0, 1e-4);
  EXPECT_NEAR(big_done, 2.0, 1e-4);
}

TEST(BandwidthResourceTest, CompletesAtLargeSimulationTimes) {
  // Regression: with Now() in the tens of thousands of seconds, the
  // sub-ULP completion sliver used to starve the wake loop (the event
  // could not advance the clock), hanging the simulation. Large
  // transfers late in a run must still complete.
  Simulator sim;
  BandwidthResourceOptions o;
  o.capacity_bps = 5e9;
  o.per_flow_cap_bps = 0.5e9;
  o.per_op_latency_s = 3e-3;
  BandwidthResource disk(&sim, o);
  int done = 0;
  sim.At(35184.0, [&] {
    disk.Transfer(34'359'738'368ULL, [&] { ++done; });
    disk.Transfer(34'359'738'368ULL, [&] { ++done; });
  });
  sim.Run();
  EXPECT_EQ(done, 2);
  // 2 x 32 GiB sharing... each capped at 0.5 GB/s: ~68.7 s each.
  EXPECT_NEAR(sim.Now(), 35184.0 + 0.003 + 68.72, 0.1);
  // The run terminates with a sane number of events (no wake storm).
  EXPECT_LT(sim.events_executed(), 100u);
}

TEST(BandwidthResourceTest, ContentionScalesMakespanLinearly) {
  // Property: with per-flow cap >= fair share, n identical concurrent
  // flows finish in n x the single-flow time.
  for (int n : {1, 2, 8, 32}) {
    Simulator sim;
    BandwidthResource disk(&sim, Opts(1e6, 1e6));
    int done = 0;
    for (int i = 0; i < n; ++i) {
      disk.Transfer(1e6, [&] { ++done; });
    }
    const double makespan = sim.Run();
    EXPECT_EQ(done, n);
    EXPECT_NEAR(makespan, static_cast<double>(n), 1e-3);
  }
}

}  // namespace
}  // namespace taskbench::sim
