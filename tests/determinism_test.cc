// Regression guard for the scheduling fast path: the simulated
// executor must be bit-deterministic. Every graph/cluster/options
// combination is executed twice and the two RunReports compared
// field-for-field — any divergence in the incremental ready queue,
// slot indexes or locality cache's tie-breaking shows up here as a
// report mismatch. (The cross-build variant of this check is
// tools/report_digest.cc.)

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/digest.h"
#include "hw/cluster.h"
#include "runtime/fault.h"
#include "runtime/multiproc_executor.h"
#include "runtime/simulated_executor.h"
#include "runtime/task_graph.h"
#include "runtime/thread_pool_executor.h"
#include "wf/build.h"
#include "wf/generator.h"
#include "wf/import.h"

namespace taskbench::runtime {
namespace {

perf::TaskCost CostFor(uint64_t bytes, bool gpu) {
  perf::TaskCost cost;
  cost.parallel.flops = static_cast<double>(bytes) * 8;
  cost.parallel.bytes = static_cast<double>(bytes);
  cost.serial.flops = static_cast<double>(bytes) / 4;
  cost.serial.bytes = static_cast<double>(bytes) / 4;
  cost.input_bytes = bytes;
  cost.output_bytes = bytes;
  if (gpu) {
    cost.h2d_bytes = bytes;
    cost.d2h_bytes = bytes;
    cost.num_transfers = 2;
    cost.gpu_working_set_bytes = 2 * bytes;
  }
  return cost;
}

/// A DAG mixing every dependency and placement pattern the executor
/// distinguishes: a shared-input fan of CPU and GPU tasks, a chain
/// over an INOUT accumulator, and a fan-in reduce. Wide enough that
/// tasks contend for slots (tie-breaks exercised), deep enough that
/// the ready set changes while tasks are in flight.
TaskGraph BuildGraph() {
  TaskGraph graph;
  std::vector<DataId> pool;
  for (int i = 0; i < 8; ++i) {
    pool.push_back(graph.AddData(1 << 20, "", i % 4));
  }
  std::vector<DataId> mids;
  for (int t = 0; t < 96; ++t) {
    const DataId out = graph.AddData(256 << 10);
    mids.push_back(out);
    TaskSpec spec;
    spec.type = t % 3 == 0 ? "gpu_stage" : "cpu_stage";
    spec.processor = t % 3 == 0 ? Processor::kGpu : Processor::kCpu;
    spec.cost = CostFor(256 << 10, spec.processor == Processor::kGpu);
    spec.params = {{pool[static_cast<size_t>(t % 8)], Dir::kIn},
                   {out, Dir::kOut}};
    EXPECT_TRUE(graph.Submit(std::move(spec)).ok());
  }
  const DataId acc = graph.AddData(1 << 20);
  for (int t = 0; t < 16; ++t) {
    TaskSpec spec;
    spec.type = "chain";
    spec.processor = Processor::kCpu;
    spec.cost = CostFor(128 << 10, false);
    spec.params = {{mids[static_cast<size_t>(t)], Dir::kIn},
                   {acc, Dir::kInOut}};
    EXPECT_TRUE(graph.Submit(std::move(spec)).ok());
  }
  TaskSpec reduce;
  reduce.type = "reduce";
  reduce.processor = Processor::kCpu;
  reduce.cost = CostFor(2 << 20, false);
  reduce.params.push_back({graph.AddData(64 << 10), Dir::kOut});
  reduce.params.push_back({acc, Dir::kIn});
  for (int t = 0; t < 96; t += 7) {
    reduce.params.push_back({mids[static_cast<size_t>(t)], Dir::kIn});
  }
  EXPECT_TRUE(graph.Submit(std::move(reduce)).ok());
  return graph;
}

void ExpectIdenticalReports(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.scheduler_overhead, b.scheduler_overhead);
  EXPECT_EQ(a.sim_events, b.sim_events);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    const TaskRecord& ra = a.records[i];
    const TaskRecord& rb = b.records[i];
    SCOPED_TRACE(testing::Message() << "record " << i);
    EXPECT_EQ(ra.task, rb.task);
    EXPECT_EQ(ra.type, rb.type);
    EXPECT_EQ(ra.level, rb.level);
    EXPECT_EQ(ra.processor, rb.processor);
    EXPECT_EQ(ra.node, rb.node);
    EXPECT_EQ(ra.slot, rb.slot);
    EXPECT_EQ(ra.start, rb.start);
    EXPECT_EQ(ra.end, rb.end);
    EXPECT_EQ(ra.stages.deserialize, rb.stages.deserialize);
    EXPECT_EQ(ra.stages.serial_fraction, rb.stages.serial_fraction);
    EXPECT_EQ(ra.stages.parallel_fraction, rb.stages.parallel_fraction);
    EXPECT_EQ(ra.stages.cpu_gpu_comm, rb.stages.cpu_gpu_comm);
    EXPECT_EQ(ra.stages.serialize, rb.stages.serialize);
    EXPECT_EQ(ra.attempt, rb.attempt);
  }
  ASSERT_EQ(a.attempts.size(), b.attempts.size());
  for (size_t i = 0; i < a.attempts.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "attempt " << i);
    EXPECT_EQ(a.attempts[i].task, b.attempts[i].task);
    EXPECT_EQ(a.attempts[i].attempt, b.attempts[i].attempt);
    EXPECT_EQ(a.attempts[i].node, b.attempts[i].node);
    EXPECT_EQ(a.attempts[i].start, b.attempts[i].start);
    EXPECT_EQ(a.attempts[i].end, b.attempts[i].end);
    EXPECT_EQ(a.attempts[i].outcome, b.attempts[i].outcome);
  }
  EXPECT_EQ(a.faults.faults_injected, b.faults.faults_injected);
  EXPECT_EQ(a.faults.storage_faults, b.faults.storage_faults);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.recomputed_tasks, b.faults.recomputed_tasks);
  EXPECT_EQ(a.faults.lost_blocks, b.faults.lost_blocks);
}

TEST(DeterminismTest, RepeatedRunsProduceIdenticalReports) {
  const TaskGraph graph = BuildGraph();
  for (auto policy : {SchedulingPolicy::kTaskGenerationOrder,
                      SchedulingPolicy::kDataLocality,
                      SchedulingPolicy::kCostModel}) {
    for (auto storage : {hw::StorageArchitecture::kSharedDisk,
                         hw::StorageArchitecture::kLocalDisk}) {
      for (bool hybrid : {false, true}) {
        SCOPED_TRACE(testing::Message()
                     << ToString(policy) << "/" << hw::ToString(storage)
                     << "/hybrid=" << hybrid);
        RunOptions options;
        options.policy = policy;
        options.storage = storage;
        options.hybrid = hybrid;
        SimulatedExecutor executor(hw::MinotauroCluster(), options);
        auto first = executor.Execute(graph);
        auto second = executor.Execute(graph);
        ASSERT_TRUE(first.ok()) << first.status().ToString();
        ASSERT_TRUE(second.ok()) << second.status().ToString();
        ExpectIdenticalReports(*first, *second);
      }
    }
  }
}

/// A fresh executor (not just a fresh run) must also reproduce the
/// report: no hidden state may leak through the const executor.
TEST(DeterminismTest, FreshExecutorReproducesReport) {
  const TaskGraph graph = BuildGraph();
  RunOptions options;
  options.policy = SchedulingPolicy::kDataLocality;
  options.storage = hw::StorageArchitecture::kLocalDisk;
  auto first = SimulatedExecutor(hw::MinotauroCluster(), options)
                   .Execute(graph);
  auto second = SimulatedExecutor(hw::MinotauroCluster(), options)
                    .Execute(graph);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectIdenticalReports(*first, *second);
}

/// The same bit-determinism must hold under fault injection: the
/// fault plan's events and the seeded storage-fault stream are part
/// of the deterministic event order, so a replay reproduces every
/// retry and recovery decision.
TEST(DeterminismTest, FaultPlansReplayIdentically) {
  const TaskGraph graph = BuildGraph();
  RunOptions baseline_options;
  baseline_options.storage = hw::StorageArchitecture::kLocalDisk;
  auto baseline = SimulatedExecutor(hw::MinotauroCluster(), baseline_options)
                      .Execute(graph);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (auto policy : {SchedulingPolicy::kTaskGenerationOrder,
                      SchedulingPolicy::kDataLocality,
                      SchedulingPolicy::kCostModel}) {
    SCOPED_TRACE(ToString(policy));
    RunOptions options;
    options.policy = policy;
    options.storage = hw::StorageArchitecture::kLocalDisk;
    options.max_retries = 6;
    options.retry_backoff_s = 1e-3;
    FaultEvent crash;
    crash.kind = FaultKind::kNodeCrash;
    crash.time = baseline->makespan / 2;
    crash.node = 1;
    options.faults.events.push_back(crash);
    // A slow node makes the cost-model policy launch speculative
    // hedges, whose dispatch/cancel edges must also replay exactly.
    FaultEvent slow;
    slow.kind = FaultKind::kSlowNode;
    slow.time = baseline->makespan / 10;
    slow.node = 2;
    slow.factor = 1.9;
    options.faults.events.push_back(slow);
    options.faults.storage_fault_rate = 0.01;
    options.faults.seed = 17;
    auto first = SimulatedExecutor(hw::MinotauroCluster(), options)
                     .Execute(graph);
    auto second = SimulatedExecutor(hw::MinotauroCluster(), options)
                      .Execute(graph);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    ExpectIdenticalReports(*first, *second);
  }
}

// ---- Imported / generated workflow determinism ----------------------

wf::Instance MontageFixture() {
  const std::string path =
      std::string(TASKBENCH_TEST_DATA_DIR) + "/wf/montage_trimmed.json";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream text;
  text << in.rdbuf();
  auto instance = wf::ImportWfFormat(text.str());
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return instance.ok() ? *instance : wf::Instance{};
}

/// FNV-1a over every datum's final bytes, in registration order — the
/// wall-clock-free fingerprint real executors are compared on (their
/// report timings can never be bit-stable across runner counts).
uint64_t ValueDigest(const Executor& executor, const TaskGraph& graph,
                     const std::vector<DataId>& data) {
  uint64_t digest = check::kFnvOffsetBasis;
  for (const DataId id : data) {
    auto value = executor.Fetch(graph, id);
    EXPECT_TRUE(value.ok()) << value.status().ToString();
    if (!value.ok()) continue;
    const int64_t dims[2] = {value->rows(), value->cols()};
    digest = check::FoldBytes(digest, dims, sizeof(dims));
    digest = check::FoldBytes(digest, value->data(),
                              static_cast<size_t>(value->size()) * 8);
  }
  return digest;
}

/// The simulated executor must replay an imported real-workflow trace
/// bit-identically — same guarantee the synthetic DAG above checks,
/// now over WfFormat-imported costs, types and GPU placements.
TEST(DeterminismTest, ImportedWorkflowSimReportsAreDeterministic) {
  const wf::Instance instance = MontageFixture();
  wf::BuildOptions options;
  options.materialize = false;  // sim-only: true WfFormat byte sizes
  for (auto policy : {SchedulingPolicy::kTaskGenerationOrder,
                      SchedulingPolicy::kDataLocality,
                      SchedulingPolicy::kCostModel}) {
    SCOPED_TRACE(ToString(policy));
    RunOptions run_options;
    run_options.policy = policy;
    auto first_build = wf::BuildInstance(instance, options);
    auto second_build = wf::BuildInstance(instance, options);
    ASSERT_TRUE(first_build.ok()) << first_build.status().ToString();
    ASSERT_TRUE(second_build.ok());
    auto first = SimulatedExecutor(hw::MinotauroCluster(), run_options)
                     .Execute(first_build->graph);
    auto second = SimulatedExecutor(hw::MinotauroCluster(), run_options)
                      .Execute(second_build->graph);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    ExpectIdenticalReports(*first, *second);
  }
}

/// The imported fixture's result values must be bit-identical across
/// runs, thread counts, and executors — thread pool (1/2/4 workers)
/// and the forked multi-process plane (2/4 workers) all land on one
/// digest, twice each.
TEST(DeterminismTest, ImportedWorkflowValuesBitExactAcrossExecutors) {
  const wf::Instance instance = MontageFixture();
  std::vector<uint64_t> digests;
  auto run_pool = [&](int threads) {
    auto built = wf::BuildInstance(instance, wf::BuildOptions{});
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    RunOptions options;
    options.num_threads = threads;
    ThreadPoolExecutor executor(options);
    auto report = executor.Execute(built->graph);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    digests.push_back(ValueDigest(executor, built->graph, built->data));
  };
  auto run_multiproc = [&](int workers) {
    auto built = wf::BuildInstance(instance, wf::BuildOptions{});
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    RunOptions options;
    options.num_threads = workers;
    MultiProcExecutor executor(options);
    auto report = executor.Execute(built->graph);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    digests.push_back(ValueDigest(executor, built->graph, built->data));
  };
  for (int repeat = 0; repeat < 2; ++repeat) {
    run_pool(1);
    run_pool(2);
    run_pool(4);
    if (MultiProcExecutor::Supported()) {
      run_multiproc(2);
      run_multiproc(4);
    }
  }
  ASSERT_GE(digests.size(), 6u);
  for (size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0]) << "leg " << i;
  }
}

/// Same bit-exactness for a generated WfBench instance with GPU task
/// types, heavy tails and stragglers in play.
TEST(DeterminismTest, GeneratedWorkflowValuesBitExactAcrossExecutors) {
  wf::GenOptions gen;
  gen.seed = 42;
  gen.levels = 5;
  gen.width = 4;
  gen.heavy_tail_alpha = 1.4;
  gen.straggler_fraction = 0.15;
  gen.types = wf::DefaultTaskTypes(2);
  const wf::Instance instance = wf::GenerateWfBench(gen);
  std::vector<uint64_t> digests;
  auto run_pool = [&](int threads) {
    auto built = wf::BuildInstance(instance, wf::BuildOptions{});
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    RunOptions options;
    options.num_threads = threads;
    ThreadPoolExecutor executor(options);
    auto report = executor.Execute(built->graph);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    digests.push_back(ValueDigest(executor, built->graph, built->data));
  };
  run_pool(1);
  run_pool(4);
  run_pool(4);
  if (MultiProcExecutor::Supported()) {
    auto built = wf::BuildInstance(instance, wf::BuildOptions{});
    ASSERT_TRUE(built.ok());
    RunOptions options;
    options.num_threads = 2;
    MultiProcExecutor executor(options);
    auto report = executor.Execute(built->graph);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    digests.push_back(ValueDigest(executor, built->graph, built->data));
  }
  for (size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0]) << "leg " << i;
  }
}

}  // namespace
}  // namespace taskbench::runtime
