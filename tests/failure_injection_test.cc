// Failure-injection tests: storage faults and hostile inputs must
// surface as Status errors, never crash or hang the runtime.

#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "algos/matmul.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool_executor.h"
#include "storage/block_storage.h"
#include "storage/faulty_storage.h"

namespace taskbench::runtime {
namespace {

using storage::FaultyStorage;

algos::MatmulWorkflow SmallWorkflow() {
  auto spec = data::GridSpec::CreateFromGridDim(
      data::DatasetSpec{"m", 32, 32}, 2, 2);
  EXPECT_TRUE(spec.ok());
  algos::MatmulOptions options;
  options.materialize = true;
  auto wf = algos::BuildMatmul(*spec, options);
  EXPECT_TRUE(wf.ok());
  return std::move(*wf);
}

RunOptions StorageOptions() {
  RunOptions options;
  options.num_threads = 4;
  options.use_storage = true;
  return options;
}

TEST(FailureInjectionTest, PutFailureSurfacesDuringStaging) {
  auto faulty = std::make_shared<FaultyStorage>(
      std::make_shared<storage::InMemoryStorage>());
  faulty->ops_until_put_failure = 2;  // fail staging the third block
  algos::MatmulWorkflow wf = SmallWorkflow();
  ThreadPoolExecutor executor(StorageOptions(), faulty);
  auto report = executor.Execute(wf.graph);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
  EXPECT_NE(report.status().message().find("injected"), std::string::npos);
}

TEST(FailureInjectionTest, PutFailureMidRunAborts) {
  auto faulty = std::make_shared<FaultyStorage>(
      std::make_shared<storage::InMemoryStorage>());
  faulty->ops_until_put_failure = 12;  // initial staging (8) + some tasks
  algos::MatmulWorkflow wf = SmallWorkflow();
  ThreadPoolExecutor executor(StorageOptions(), faulty);
  auto report = executor.Execute(wf.graph);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, GetFailureMidRunAborts) {
  auto faulty = std::make_shared<FaultyStorage>(
      std::make_shared<storage::InMemoryStorage>());
  faulty->ops_until_get_failure = 5;
  algos::MatmulWorkflow wf = SmallWorkflow();
  ThreadPoolExecutor executor(StorageOptions(), faulty);
  auto report = executor.Execute(wf.graph);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, CorruptedBlocksDetectedByChecksum) {
  auto faulty = std::make_shared<FaultyStorage>(
      std::make_shared<storage::InMemoryStorage>());
  faulty->corrupt_reads = true;
  algos::MatmulWorkflow wf = SmallWorkflow();
  ThreadPoolExecutor executor(StorageOptions(), faulty);
  auto report = executor.Execute(wf.graph);
  ASSERT_FALSE(report.ok());
  // The serializer's CRC turns silent corruption into a loud error.
  EXPECT_TRUE(report.status().IsInvalidArgument());
  EXPECT_NE(report.status().message().find("checksum"), std::string::npos);
}

TEST(FailureInjectionTest, RetriesRecoverFromTransientGetFaults) {
  // With a retry budget, a storage fault that heals after a few
  // injected failures is absorbed: the run completes and the report
  // carries the retry accounting.
  auto faulty = std::make_shared<FaultyStorage>(
      std::make_shared<storage::InMemoryStorage>());
  faulty->ops_until_get_failure = 5;
  faulty->get_failures_remaining = 2;  // heal after two failures
  algos::MatmulWorkflow wf = SmallWorkflow();
  RunOptions options = StorageOptions();
  options.max_retries = 3;
  options.retry_backoff_s = 1e-4;
  ThreadPoolExecutor executor(options, faulty);
  auto report = executor.Execute(wf.graph);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->faults.retries, 1);
  EXPECT_FALSE(report->attempts.empty());
  bool saw_failed_attempt = false;
  for (const TaskAttempt& attempt : report->attempts) {
    if (attempt.outcome == AttemptOutcome::kFailed) saw_failed_attempt = true;
  }
  EXPECT_TRUE(saw_failed_attempt);
  bool saw_retried_record = false;
  for (const TaskRecord& rec : report->records) {
    if (rec.attempt > 1) saw_retried_record = true;
  }
  EXPECT_TRUE(saw_retried_record);
}

TEST(FailureInjectionTest, RetriesExhaustedSurfaceCleanStatus) {
  // A permanent fault defeats the retry budget; the failure surfaces
  // as the task's final Status (with attempt context), never a hang.
  auto faulty = std::make_shared<FaultyStorage>(
      std::make_shared<storage::InMemoryStorage>());
  faulty->ops_until_get_failure = 5;  // permanent: default huge budget
  algos::MatmulWorkflow wf = SmallWorkflow();
  RunOptions options = StorageOptions();
  options.max_retries = 2;
  options.retry_backoff_s = 1e-4;
  ThreadPoolExecutor executor(options, faulty);
  auto report = executor.Execute(wf.graph);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
  EXPECT_NE(report.status().message().find("attempt"), std::string::npos);
}

// Versioned block cache under fault-driven INOUT retries: a failed
// write attempt must not leave a poisoned cache entry that the retry
// (or any later reader) can consume. The accumulator chain detects
// any stale serve as a wrong final value; the run's own cache-hit
// invariant check (on by default) cross-checks every hit against the
// version oracle while it runs.
TEST(FailureInjectionTest, BlockCacheStaysExactUnderInOutRetry) {
  const auto build = [] {
    TaskGraph graph;
    const DataId base = graph.AddData(data::Matrix(4, 4, 1.0));
    const DataId acc = graph.AddData(data::Matrix(4, 4, 0.0));
    for (int i = 0; i < 3; ++i) {
      TaskSpec spec;
      spec.type = "accumulate";
      spec.params = {{base, Dir::kIn}, {acc, Dir::kInOut}};
      spec.kernel = [](const std::vector<const data::Matrix*>& inputs,
                       const std::vector<data::Matrix*>& outputs) -> Status {
        data::Matrix& m = *outputs[0];  // aliases the INOUT input
        for (int64_t j = 0; j < m.size(); ++j) {
          m.data()[j] += inputs[0]->data()[j];
        }
        return Status::OK();
      };
      EXPECT_TRUE(graph.Submit(std::move(spec)).ok());
    }
    return std::make_pair(std::move(graph), acc);
  };

  // Put schedule: staging writes base and acc (2 puts), then each
  // link writes acc once. Failing the third put kills the first
  // link's write *after* it already populated the read cache, the
  // nastiest interleaving: the retry must re-read the accumulator at
  // its pre-write version and republish.
  auto faulty = std::make_shared<FaultyStorage>(
      std::make_shared<storage::InMemoryStorage>());
  faulty->ops_until_put_failure = 2;
  faulty->put_failures_remaining = 1;
  auto [graph, acc] = build();
  RunOptions options = StorageOptions();
  options.num_threads = 1;  // chain is serial anyway; determinism
  options.block_cache = true;
  options.max_retries = 2;
  options.retry_backoff_s = 1e-4;
  ThreadPoolExecutor executor(options, faulty);
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->faults.retries, 1);

  auto got = executor.FetchData(graph, acc);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*got == data::Matrix(4, 4, 3.0))
      << "retry consumed a stale or poisoned cached accumulator";

  // Same chain, cache off, clean storage: the cached faulted run must
  // match it bit-for-bit.
  auto [clean_graph, clean_acc] = build();
  RunOptions clean_options = StorageOptions();
  clean_options.num_threads = 1;
  ThreadPoolExecutor clean_executor(clean_options);
  ASSERT_TRUE(clean_executor.Execute(clean_graph).ok());
  auto want = clean_executor.FetchData(clean_graph, clean_acc);
  ASSERT_TRUE(want.ok());
  EXPECT_TRUE(*got == *want);
}

TEST(FailureInjectionTest, RecoveryAfterTransientFault) {
  // A fresh executor over intact storage succeeds after a failed run
  // (no poisoned global state).
  auto faulty = std::make_shared<FaultyStorage>(
      std::make_shared<storage::InMemoryStorage>());
  faulty->ops_until_get_failure = 3;
  {
    algos::MatmulWorkflow wf = SmallWorkflow();
    ThreadPoolExecutor executor(StorageOptions(), faulty);
    ASSERT_FALSE(executor.Execute(wf.graph).ok());
  }
  faulty->ops_until_get_failure = 1 << 30;
  algos::MatmulWorkflow wf = SmallWorkflow();
  ThreadPoolExecutor executor(StorageOptions(), faulty);
  EXPECT_TRUE(executor.Execute(wf.graph).ok());
}

}  // namespace
}  // namespace taskbench::runtime
