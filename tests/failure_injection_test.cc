// Failure-injection tests: storage faults and hostile inputs must
// surface as Status errors, never crash or hang the runtime.

#include <atomic>
#include <memory>

#include <gtest/gtest.h>

#include "algos/matmul.h"
#include "runtime/thread_pool_executor.h"
#include "storage/block_storage.h"
#include "storage/serializer.h"

namespace taskbench::runtime {
namespace {

/// Storage wrapper that starts failing after a configurable number of
/// successful operations, or corrupts payloads on read.
class FaultyStorage final : public storage::BlockStorage {
 public:
  explicit FaultyStorage(std::shared_ptr<storage::BlockStorage> inner)
      : inner_(std::move(inner)) {}

  // mutable: Get() is const in the interface but consumes fault
  // budget.
  mutable std::atomic<int> ops_until_put_failure{1 << 30};
  mutable std::atomic<int> ops_until_get_failure{1 << 30};
  std::atomic<bool> corrupt_reads{false};

  Status Put(const std::string& key, std::vector<uint8_t> bytes) override {
    if (ops_until_put_failure.fetch_sub(1) <= 0) {
      return Status::Internal("injected put failure");
    }
    return inner_->Put(key, std::move(bytes));
  }

  Result<std::vector<uint8_t>> Get(const std::string& key) const override {
    if (ops_until_get_failure.fetch_sub(1) <= 0) {
      return Status::Internal("injected get failure");
    }
    auto bytes = inner_->Get(key);
    if (bytes.ok() && corrupt_reads.load() && !bytes->empty()) {
      (*bytes)[bytes->size() / 2] ^= 0xff;
    }
    return bytes;
  }

  Status Delete(const std::string& key) override {
    return inner_->Delete(key);
  }
  bool Contains(const std::string& key) const override {
    return inner_->Contains(key);
  }
  size_t Size() const override { return inner_->Size(); }
  uint64_t TotalBytes() const override { return inner_->TotalBytes(); }

 private:
  std::shared_ptr<storage::BlockStorage> inner_;
};

algos::MatmulWorkflow SmallWorkflow() {
  auto spec = data::GridSpec::CreateFromGridDim(
      data::DatasetSpec{"m", 32, 32}, 2, 2);
  EXPECT_TRUE(spec.ok());
  algos::MatmulOptions options;
  options.materialize = true;
  auto wf = algos::BuildMatmul(*spec, options);
  EXPECT_TRUE(wf.ok());
  return std::move(*wf);
}

ThreadPoolExecutorOptions StorageOptions() {
  ThreadPoolExecutorOptions options;
  options.num_threads = 4;
  options.use_storage = true;
  return options;
}

TEST(FailureInjectionTest, PutFailureSurfacesDuringStaging) {
  auto faulty = std::make_shared<FaultyStorage>(
      std::make_shared<storage::InMemoryStorage>());
  faulty->ops_until_put_failure = 2;  // fail staging the third block
  algos::MatmulWorkflow wf = SmallWorkflow();
  ThreadPoolExecutor executor(StorageOptions(), faulty);
  auto report = executor.Execute(wf.graph);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
  EXPECT_NE(report.status().message().find("injected"), std::string::npos);
}

TEST(FailureInjectionTest, PutFailureMidRunAborts) {
  auto faulty = std::make_shared<FaultyStorage>(
      std::make_shared<storage::InMemoryStorage>());
  faulty->ops_until_put_failure = 12;  // initial staging (8) + some tasks
  algos::MatmulWorkflow wf = SmallWorkflow();
  ThreadPoolExecutor executor(StorageOptions(), faulty);
  auto report = executor.Execute(wf.graph);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, GetFailureMidRunAborts) {
  auto faulty = std::make_shared<FaultyStorage>(
      std::make_shared<storage::InMemoryStorage>());
  faulty->ops_until_get_failure = 5;
  algos::MatmulWorkflow wf = SmallWorkflow();
  ThreadPoolExecutor executor(StorageOptions(), faulty);
  auto report = executor.Execute(wf.graph);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, CorruptedBlocksDetectedByChecksum) {
  auto faulty = std::make_shared<FaultyStorage>(
      std::make_shared<storage::InMemoryStorage>());
  faulty->corrupt_reads = true;
  algos::MatmulWorkflow wf = SmallWorkflow();
  ThreadPoolExecutor executor(StorageOptions(), faulty);
  auto report = executor.Execute(wf.graph);
  ASSERT_FALSE(report.ok());
  // The serializer's CRC turns silent corruption into a loud error.
  EXPECT_TRUE(report.status().IsInvalidArgument());
  EXPECT_NE(report.status().message().find("checksum"), std::string::npos);
}

TEST(FailureInjectionTest, RecoveryAfterTransientFault) {
  // A fresh executor over intact storage succeeds after a failed run
  // (no poisoned global state).
  auto faulty = std::make_shared<FaultyStorage>(
      std::make_shared<storage::InMemoryStorage>());
  faulty->ops_until_get_failure = 3;
  {
    algos::MatmulWorkflow wf = SmallWorkflow();
    ThreadPoolExecutor executor(StorageOptions(), faulty);
    ASSERT_FALSE(executor.Execute(wf.graph).ok());
  }
  faulty->ops_until_get_failure = 1 << 30;
  algos::MatmulWorkflow wf = SmallWorkflow();
  ThreadPoolExecutor executor(StorageOptions(), faulty);
  EXPECT_TRUE(executor.Execute(wf.graph).ok());
}

}  // namespace
}  // namespace taskbench::runtime
