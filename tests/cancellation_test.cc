// Cancellation races across the executor matrix: a CancellationToken
// observed before dispatch, mid-execution, after completion, and
// during retry backoff must produce kCancelled (or leave a completed
// result untouched) on both the thread-pool and simulated executors.
// Kernels are never interrupted — cancellation lands at scheduling
// edges — so every blocking kernel below is released by the test.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/workload.h"
#include "hw/cluster.h"
#include "runtime/cancellation.h"
#include "runtime/executor_factory.h"
#include "runtime/multiproc_executor.h"
#include "runtime/simulated_executor.h"
#include "runtime/thread_pool_executor.h"

namespace taskbench::runtime {
namespace {

TaskSpec SimpleTask(DataId in, DataId out, KernelFn kernel) {
  TaskSpec spec;
  spec.type = "simple";
  spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
  spec.kernel = std::move(kernel);
  return spec;
}

KernelFn CopyKernel() {
  return [](const std::vector<const data::Matrix*>& inputs,
            const std::vector<data::Matrix*>& outputs) -> Status {
    *outputs[0] = *inputs[0];
    return Status::OK();
  };
}

/// A chain of `length` copy tasks rooted at one 2x2 matrix.
TaskGraph ChainGraph(int length) {
  TaskGraph graph;
  DataId prev = graph.AddData(data::Matrix(2, 2, 1.0));
  for (int i = 0; i < length; ++i) {
    const DataId next = graph.AddData(static_cast<uint64_t>(32));
    EXPECT_TRUE(graph.Submit(SimpleTask(prev, next, CopyKernel())).ok());
    prev = next;
  }
  return graph;
}

TEST(CancellationTokenTest, StickyAndCopyable) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  const CancellationToken copy = token;  // shares the flag
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTest, ThreadPoolCancelledBeforeDispatch) {
  TaskGraph graph = ChainGraph(4);
  RunOptions options;
  options.num_threads = 2;
  options.use_storage = false;
  ThreadPoolExecutor executor(options);

  CancellationToken token;
  token.Cancel();
  RunContext ctx;
  ctx.cancel = &token;
  auto report = executor.Run(graph, ctx);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCancelled()) << report.status().ToString();
}

TEST(CancellationTest, SimCancelledBeforeDispatch) {
  auto built = check::BuildWorkload(check::GenerateSpec(3));
  ASSERT_TRUE(built.ok());
  RunOptions options;
  SimulatedExecutor executor(hw::MinotauroCluster(), options);

  CancellationToken token;
  token.Cancel();
  RunContext ctx;
  ctx.cancel = &token;
  auto report = executor.Run(built->graph, ctx);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCancelled()) << report.status().ToString();
}

TEST(CancellationTest, ThreadPoolCancelledMidExecution) {
  // Task 1 blocks until the test has issued the cancel; the remaining
  // chain must then never dispatch and the run fails with kCancelled.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> entered{false};

  TaskGraph graph;
  const DataId d0 = graph.AddData(data::Matrix(2, 2, 1.0));
  const DataId d1 = graph.AddData(static_cast<uint64_t>(32));
  ASSERT_TRUE(
      graph
          .Submit(SimpleTask(
              d0, d1,
              [&](const std::vector<const data::Matrix*>& inputs,
                  const std::vector<data::Matrix*>& outputs) -> Status {
                entered.store(true);
                std::unique_lock<std::mutex> lock(mu);
                cv.wait(lock, [&] { return release; });
                *outputs[0] = *inputs[0];
                return Status::OK();
              }))
          .ok());
  DataId prev = d1;
  for (int i = 0; i < 4; ++i) {
    const DataId next = graph.AddData(static_cast<uint64_t>(32));
    ASSERT_TRUE(graph.Submit(SimpleTask(prev, next, CopyKernel())).ok());
    prev = next;
  }

  RunOptions options;
  options.num_threads = 1;  // nothing else can run while task 1 blocks
  options.use_storage = false;
  ThreadPoolExecutor executor(options);

  CancellationToken token;
  RunContext ctx;
  ctx.cancel = &token;
  std::thread runner_thread;
  Result<RunReport> report = Status::Internal("not run");
  runner_thread = std::thread([&] { report = executor.Run(graph, ctx); });
  while (!entered.load()) std::this_thread::yield();
  token.Cancel();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  runner_thread.join();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCancelled()) << report.status().ToString();
}

TEST(CancellationTest, SimCancelRace) {
  // The sim executor polls at ScheduleLoop edges; racing a cancel
  // against a fast run may land before, between, or after them. Any
  // interleaving must produce either a clean report or kCancelled —
  // never a hang, crash, or other status.
  auto built = check::BuildWorkload(check::GenerateSpec(5));
  ASSERT_TRUE(built.ok());
  RunOptions options;
  SimulatedExecutor executor(hw::MinotauroCluster(), options);
  for (int round = 0; round < 16; ++round) {
    CancellationToken token;
    RunContext ctx;
    ctx.cancel = &token;
    Result<RunReport> report = Status::Internal("not run");
    std::thread runner_thread(
        [&] { report = executor.Run(built->graph, ctx); });
    if (round % 2 == 0) std::this_thread::yield();
    token.Cancel();
    runner_thread.join();
    if (!report.ok()) {
      EXPECT_TRUE(report.status().IsCancelled())
          << report.status().ToString();
    }
  }
}

TEST(CancellationTest, AfterCompletionIsInert) {
  // Cancelling after a run finished must not disturb the result; the
  // now-cancelled token only affects *later* runs that reuse it.
  TaskGraph graph = ChainGraph(3);
  RunOptions options;
  options.num_threads = 2;
  options.use_storage = false;
  ThreadPoolExecutor executor(options);
  CancellationToken token;
  RunContext ctx;
  ctx.cancel = &token;
  auto report = executor.Run(graph, ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(), 3u);
  token.Cancel();
  EXPECT_EQ(report->records.size(), 3u);

  TaskGraph again = ChainGraph(3);
  auto second = executor.Run(again, ctx);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsCancelled());
}

TEST(CancellationTest, ThreadPoolCancelledDuringRetryBackoff) {
  // An always-failing kernel with a huge backoff parks the worker in
  // the retry sleep; Cancel must interrupt the sleep instead of
  // serving out the full 30s budget.
  std::atomic<bool> failed_once{false};
  TaskGraph graph;
  const DataId d0 = graph.AddData(data::Matrix(2, 2, 1.0));
  const DataId d1 = graph.AddData(static_cast<uint64_t>(32));
  ASSERT_TRUE(
      graph
          .Submit(SimpleTask(
              d0, d1,
              [&](const std::vector<const data::Matrix*>&,
                  const std::vector<data::Matrix*>&) -> Status {
                failed_once.store(true);
                return Status::Internal("injected");
              }))
          .ok());

  RunOptions options;
  options.num_threads = 1;
  options.use_storage = false;
  options.max_retries = 100;
  options.retry_backoff_s = 30.0;
  ThreadPoolExecutor executor(options);

  CancellationToken token;
  RunContext ctx;
  ctx.cancel = &token;
  const auto start = std::chrono::steady_clock::now();
  Result<RunReport> report = Status::Internal("not run");
  std::thread runner_thread([&] { report = executor.Run(graph, ctx); });
  while (!failed_once.load()) std::this_thread::yield();
  token.Cancel();
  runner_thread.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCancelled()) << report.status().ToString();
  EXPECT_LT(elapsed_s, 10.0) << "backoff sleep was not interrupted";
}

TEST(CancellationTest, ScopedRunsKeepDisjointStorageKeys) {
  // Two concurrent scoped runs through one storage-mode executor must
  // not clobber each other's blocks (scope-prefixed keys), and their
  // keys are deleted when each run retires.
  RunOptions options;
  options.num_threads = 2;
  options.use_storage = true;
  ThreadPoolExecutor executor(options);

  auto run_scoped = [&](uint64_t scope) {
    TaskGraph graph = ChainGraph(6);
    RunContext ctx;
    ctx.scope = scope;
    auto report = executor.Run(graph, ctx);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
  };
  std::thread a([&] { run_scoped(1); });
  std::thread b([&] { run_scoped(2); });
  a.join();
  b.join();
}

TEST(ExecutorFactoryTest, ParsesAndConstructsAllKinds) {
  EXPECT_FALSE(ParseExecutorKind("warp").ok());
  for (const char* name : {"threads", "sim", "procs"}) {
    auto kind = ParseExecutorKind(name);
    ASSERT_TRUE(kind.ok());
    EXPECT_EQ(ExecutorKindName(*kind), name);
    ExecutorSpec spec;
    spec.kind = *kind;
    auto executor = MakeExecutor(spec);
    if (*kind == ExecutorKind::kProcs && !MultiProcExecutor::Supported()) {
      EXPECT_FALSE(executor.ok());
      continue;
    }
    ASSERT_TRUE(executor.ok());
    EXPECT_FALSE((*executor)->name().empty());
  }
}

}  // namespace
}  // namespace taskbench::runtime
