#include "common/args.h"

#include <gtest/gtest.h>

namespace taskbench {
namespace {

Args Make(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, PositionalAndOptions) {
  const Args args = Make({"run", "--grid=4x4", "--processor", "GPU"});
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "run");
  EXPECT_EQ(args.GetString("grid"), "4x4");
  EXPECT_EQ(args.GetString("processor"), "GPU");
  EXPECT_EQ(args.GetString("missing", "dflt"), "dflt");
}

TEST(ArgsTest, BareFlagIsTrue) {
  const Args args = Make({"--verbose", "--csv=out.csv"});
  auto verbose = args.GetBool("verbose", false);
  ASSERT_TRUE(verbose.ok());
  EXPECT_TRUE(*verbose);
  auto absent = args.GetBool("quiet", false);
  ASSERT_TRUE(absent.ok());
  EXPECT_FALSE(*absent);
}

TEST(ArgsTest, IntParsing) {
  const Args args = Make({"--iters=12", "--bad=12x"});
  auto good = args.GetInt("iters", 0);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 12);
  EXPECT_FALSE(args.GetInt("bad", 0).ok());
  auto fallback = args.GetInt("absent", 7);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(*fallback, 7);
}

TEST(ArgsTest, DoubleParsing) {
  const Args args = Make({"--lr=0.5"});
  auto lr = args.GetDouble("lr", 0);
  ASSERT_TRUE(lr.ok());
  EXPECT_DOUBLE_EQ(*lr, 0.5);
}

TEST(ArgsTest, BoolRejectsGarbage) {
  const Args args = Make({"--flag=banana"});
  EXPECT_FALSE(args.GetBool("flag", false).ok());
}

TEST(ArgsTest, SpaceSeparatedValueNotConsumedForNextOption) {
  const Args args = Make({"--a", "--b=2"});
  auto a = args.GetBool("a", false);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(*a);
  EXPECT_EQ(args.GetString("b"), "2");
}

TEST(ArgsTest, UnknownKeysDetectsTypos) {
  const Args args = Make({"--grdi=4x4", "--processor=CPU"});
  const auto unknown = args.UnknownKeys({"grid", "processor"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "grdi");
}

}  // namespace
}  // namespace taskbench
