// Seeded open-loop arrival generator: determinism (same options +
// seed => identical delay stream), mean-rate parameterization (all
// three processes are scaled to the same offered rate), and the
// qualitative shape differences (burstiness, heavy tail).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "service/arrival.h"

namespace taskbench::service {
namespace {

std::vector<double> Draw(const ArrivalOptions& options, uint64_t seed,
                         int n) {
  ArrivalGenerator generator(options, seed);
  std::vector<double> delays;
  delays.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) delays.push_back(generator.NextDelay());
  return delays;
}

double Mean(const std::vector<double>& v) {
  double sum = 0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

/// Coefficient of variation: stddev / mean. 1 for exponential
/// interarrivals; > 1 for bursty and heavy-tailed ones.
double Cv(const std::vector<double>& v) {
  const double mean = Mean(v);
  double var = 0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  return std::sqrt(var) / mean;
}

TEST(ArrivalTest, ParseRoundTrips) {
  for (const char* name : {"poisson", "bursty", "heavytail"}) {
    auto process = ParseArrivalProcess(name);
    ASSERT_TRUE(process.ok()) << name;
    EXPECT_EQ(ArrivalProcessName(*process), name);
  }
  EXPECT_FALSE(ParseArrivalProcess("uniform").ok());
}

TEST(ArrivalTest, DeterministicPerSeed) {
  for (const ArrivalProcess process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty,
        ArrivalProcess::kHeavyTail}) {
    ArrivalOptions options;
    options.process = process;
    options.rate_hz = 25;
    const std::vector<double> a = Draw(options, 42, 500);
    const std::vector<double> b = Draw(options, 42, 500);
    EXPECT_EQ(a, b) << ArrivalProcessName(process);
    const std::vector<double> c = Draw(options, 43, 500);
    EXPECT_NE(a, c) << ArrivalProcessName(process);
  }
}

TEST(ArrivalTest, DelaysAreFiniteAndNonNegative) {
  for (const ArrivalProcess process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty,
        ArrivalProcess::kHeavyTail}) {
    ArrivalOptions options;
    options.process = process;
    options.rate_hz = 100;
    for (double d : Draw(options, 7, 2000)) {
      EXPECT_TRUE(std::isfinite(d));
      EXPECT_GE(d, 0.0);
    }
  }
}

TEST(ArrivalTest, AllProcessesMatchTheConfiguredMeanRate) {
  // 20k draws at 50/s: the empirical mean delay must sit near 1/50
  // for every process — swapping the pattern must not change the
  // offered load. Pareto converges slowly (alpha 1.5 has infinite
  // variance), hence the loose 25% band; the others get 10%.
  for (const ArrivalProcess process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty,
        ArrivalProcess::kHeavyTail}) {
    ArrivalOptions options;
    options.process = process;
    options.rate_hz = 50;
    const double mean = Mean(Draw(options, 11, 20000));
    const double tolerance =
        process == ArrivalProcess::kHeavyTail ? 0.25 : 0.10;
    EXPECT_NEAR(mean, 1.0 / 50, tolerance / 50)
        << ArrivalProcessName(process);
  }
}

TEST(ArrivalTest, BurstyAndHeavyTailAreOverdispersed) {
  ArrivalOptions options;
  options.rate_hz = 40;
  options.process = ArrivalProcess::kPoisson;
  const double cv_poisson = Cv(Draw(options, 3, 20000));
  options.process = ArrivalProcess::kBursty;
  const double cv_bursty = Cv(Draw(options, 3, 20000));
  options.process = ArrivalProcess::kHeavyTail;
  const double cv_heavy = Cv(Draw(options, 3, 20000));

  // Exponential CV is exactly 1 in the limit.
  EXPECT_NEAR(cv_poisson, 1.0, 0.1);
  EXPECT_GT(cv_bursty, cv_poisson + 0.1);
  EXPECT_GT(cv_heavy, cv_poisson + 0.1);
}

TEST(ArrivalTest, DegenerateParametersAreClamped) {
  // Hostile options must not divide by zero or hang.
  ArrivalOptions options;
  options.process = ArrivalProcess::kBursty;
  options.rate_hz = 0;
  options.burst_factor = 0;
  options.burst_fraction = 2.0;
  options.burst_mean_s = 0;
  ArrivalGenerator generator(options, 1);
  for (int i = 0; i < 100; ++i) {
    const double d = generator.NextDelay();
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_GE(d, 0.0);
  }

  options.process = ArrivalProcess::kHeavyTail;
  options.pareto_alpha = 0.5;  // clamped above 1: mean stays finite
  ArrivalGenerator pareto(options, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(std::isfinite(pareto.NextDelay()));
  }
}

}  // namespace
}  // namespace taskbench::service
