// Integration tests asserting the reproduced paper shapes end to end:
// each test encodes the qualitative claim of one figure and checks it
// against the full pipeline (workflow builder -> simulated cluster ->
// metrics), at reduced sweep sizes so the suite stays fast.

#include <gtest/gtest.h>

#include "algos/kmeans.h"
#include "algos/matmul.h"
#include "analysis/experiment.h"
#include "analysis/factor_space.h"
#include "analysis/observations.h"
#include "data/generators.h"
#include "perf/cost_model.h"
#include "stats/feature_table.h"

namespace taskbench::analysis {
namespace {

ExperimentConfig KMeans(int64_t grid, Processor proc, int clusters = 10) {
  ExperimentConfig config;
  config.algorithm = Algorithm::kKMeans;
  config.dataset = data::PaperDatasets::KMeans10GB();
  config.grid_rows = grid;
  config.iterations = 1;
  config.clusters = clusters;
  config.processor = proc;
  return config;
}

ExperimentConfig Matmul(int64_t grid, Processor proc) {
  ExperimentConfig config;
  config.algorithm = Algorithm::kMatmul;
  config.dataset = data::PaperDatasets::Matmul8GB();
  config.grid_rows = config.grid_cols = grid;
  config.processor = proc;
  return config;
}

double MustTime(const ExperimentConfig& config) {
  auto result = RunExperiment(config);
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result->oom);
  return result->parallel_task_time;
}

TEST(PaperShapesTest, Figure1StageSpeedups) {
  // Paper: 5.69x parallel fraction, 1.24x user code, -1.20x parallel
  // tasks (K-means 10 GB, 256 tasks).
  const perf::CostModel model(hw::MinotauroCluster());
  const perf::TaskCost cost = algos::PartialSumCost(12500000 / 256, 100, 10);
  const double pf =
      model.CpuParallelFraction(cost) / model.GpuParallelFraction(cost);
  EXPECT_NEAR(pf, 5.69, 1.5);

  const double serial = model.SerialFraction(cost);
  const double user = (model.CpuParallelFraction(cost) + serial) /
                      (model.GpuParallelFraction(cost) + serial +
                       model.CpuGpuComm(cost));
  EXPECT_NEAR(user, 1.24, 0.4);

  const double cpu_tasks = MustTime(KMeans(256, Processor::kCpu));
  const double gpu_tasks = MustTime(KMeans(256, Processor::kGpu));
  EXPECT_LT(SignedSpeedup(cpu_tasks, gpu_tasks), -1.0);  // GPU loses
}

TEST(PaperShapesTest, Figure7MatmulSpeedupsScaleUntilOom) {
  const perf::CostModel model(hw::MinotauroCluster());
  double prev = 0;
  for (int64_t g : {16, 8, 4, 2}) {  // increasing block size
    const int64_t n = 32768 / g;
    const auto cost = algos::MatmulFuncCost(n, n, n, false);
    const double speedup =
        model.CpuParallelFraction(cost) / model.GpuParallelFraction(cost);
    EXPECT_GT(speedup, prev) << "block order " << n;
    prev = speedup;
  }
  // Maximum granularity OOMs on GPU.
  auto oom = RunExperiment(Matmul(1, Processor::kGpu));
  ASSERT_TRUE(oom.ok());
  EXPECT_TRUE(oom->oom);
}

TEST(PaperShapesTest, Figure7ParallelTaskSpeedupNegativeAtFineGrain) {
  // Excess fine-grained tasks: GPU parallel-task speedup negative.
  const double cpu = MustTime(Matmul(16, Processor::kCpu));
  const double gpu = MustTime(Matmul(16, Processor::kGpu));
  EXPECT_LT(SignedSpeedup(cpu, gpu), 1.05);
  // Coarser grains: GPU wins clearly.
  const double cpu_c = MustTime(Matmul(4, Processor::kCpu));
  const double gpu_c = MustTime(Matmul(4, Processor::kGpu));
  EXPECT_GT(SignedSpeedup(cpu_c, gpu_c), 1.0);
}

TEST(PaperShapesTest, Figure7KmeansUserSpeedupsFlatAcrossBlockSize) {
  // O1: user-code speedups insensitive to block size for the
  // partially parallelizable algorithm.
  const perf::CostModel model(hw::MinotauroCluster());
  std::vector<double> speedups;
  for (int64_t g : {256, 64, 16, 4}) {
    const auto cost = algos::PartialSumCost(12500000 / g, 100, 10);
    const double serial = model.SerialFraction(cost);
    speedups.push_back((model.CpuParallelFraction(cost) + serial) /
                       (model.GpuParallelFraction(cost) + serial +
                        model.CpuGpuComm(cost)));
  }
  EXPECT_TRUE(CheckO1(speedups).holds);
}

TEST(PaperShapesTest, Figure8AddFuncNeverWinsOnGpu) {
  const perf::CostModel model(hw::MinotauroCluster());
  for (int64_t g : {16, 8, 4, 2}) {
    const int64_t n = 32768 / g;
    const auto cost = algos::AddFuncCost(n, n);
    EXPECT_GT(model.GpuParallelFraction(cost) + model.CpuGpuComm(cost),
              model.CpuParallelFraction(cost));
  }
}

TEST(PaperShapesTest, Figure9aSpeedupsScaleWithClustersNotBlockSize) {
  const perf::CostModel model(hw::MinotauroCluster());
  auto user_speedup = [&](int64_t grid, int clusters) {
    const auto cost = algos::PartialSumCost(12500000 / grid, 100, clusters);
    const double serial = model.SerialFraction(cost);
    return (model.CpuParallelFraction(cost) + serial) /
           (model.GpuParallelFraction(cost) + serial +
            model.CpuGpuComm(cost));
  };
  // Scales with clusters...
  const double s10 = user_speedup(64, 10);
  const double s100 = user_speedup(64, 100);
  const double s1000 = user_speedup(64, 1000);
  EXPECT_GT(s100, 1.8 * s10);
  EXPECT_GT(s1000, 1.8 * s100);
  EXPECT_NEAR(s1000 / s10, 7.0, 2.5);  // "up to 7x higher"
  // ...but not with block size.
  EXPECT_NEAR(user_speedup(256, 100), user_speedup(16, 100),
              0.25 * user_speedup(16, 100));
}

TEST(PaperShapesTest, Figure9aOomWallMovesWithClusters) {
  const perf::CostModel model(hw::MinotauroCluster());
  // 10 clusters: only the single-block configuration OOMs.
  EXPECT_TRUE(
      model.CheckGpuFit(algos::PartialSumCost(12500000 / 2, 100, 10)).ok());
  EXPECT_TRUE(model.CheckGpuFit(algos::PartialSumCost(12500000, 100, 10))
                  .IsOutOfMemory());
  // 1000 clusters: OOM from 8x1 (1250 MB blocks) on; 16x1 still fits.
  EXPECT_TRUE(
      model.CheckGpuFit(algos::PartialSumCost(12500000 / 16, 100, 1000))
          .ok());
  EXPECT_TRUE(
      model.CheckGpuFit(algos::PartialSumCost(12500000 / 8, 100, 1000))
          .IsOutOfMemory());
}

TEST(PaperShapesTest, Figure10PolicySensitivityO5O6) {
  auto sweep = [&](hw::StorageArchitecture storage) {
    PolicySensitivityInput input;
    for (int64_t g : {32, 128, 256}) {
      for (Processor proc : {Processor::kCpu, Processor::kGpu}) {
        for (SchedulingPolicy policy :
             {SchedulingPolicy::kTaskGenerationOrder,
              SchedulingPolicy::kDataLocality}) {
          ExperimentConfig config = KMeans(g, proc);
          config.run.storage = storage;
          config.run.policy = policy;
          auto result = RunExperiment(config);
          EXPECT_TRUE(result.ok());
          auto& series =
              proc == Processor::kCpu
                  ? (policy == SchedulingPolicy::kTaskGenerationOrder
                         ? input.cpu_gen_order
                         : input.cpu_locality)
                  : (policy == SchedulingPolicy::kTaskGenerationOrder
                         ? input.gpu_gen_order
                         : input.gpu_locality);
          series.push_back(result->parallel_task_time);
        }
      }
    }
    return input;
  };
  const auto local = sweep(hw::StorageArchitecture::kLocalDisk);
  const auto shared = sweep(hw::StorageArchitecture::kSharedDisk);
  EXPECT_TRUE(CheckO5(local).holds) << CheckO5(local).evidence;
  EXPECT_TRUE(CheckO6(local, shared).holds)
      << CheckO6(local, shared).evidence;
}

TEST(PaperShapesTest, Figure10SharedDiskSlowerThanLocal) {
  for (int64_t g : {64, 256}) {
    ExperimentConfig local = KMeans(g, Processor::kCpu);
    local.run.storage = hw::StorageArchitecture::kLocalDisk;
    ExperimentConfig shared = KMeans(g, Processor::kCpu);
    shared.run.storage = hw::StorageArchitecture::kSharedDisk;
    EXPECT_LT(MustTime(local), MustTime(shared)) << "grid " << g;
  }
}

TEST(PaperShapesTest, Figure11KeyCorrelationSigns) {
  // Reduced sample set, checking the signs of the paper's headline
  // coefficients.
  // K is kept at 10/100 here: the tiny sample keeps the paper's
  // mostly-low-cluster mix, where the block-size correlation is
  // positive (the full 200-sample set lives in bench_fig11).
  std::vector<ExperimentConfig> configs;
  for (Processor proc : {Processor::kCpu, Processor::kGpu}) {
    for (int64_t g : {4, 8, 16}) configs.push_back(Matmul(g, proc));
    for (int64_t g : {16, 64, 256}) {
      configs.push_back(KMeans(g, proc));
      configs.push_back(KMeans(g, proc, 100));
    }
  }
  auto table = BuildFeatureTable(configs);
  ASSERT_TRUE(table.ok());
  auto matrix = table->SpearmanMatrix();
  ASSERT_TRUE(matrix.ok());

  auto rho = [&](const char* a, const char* b) {
    auto r = matrix->At(a, b);
    EXPECT_TRUE(r.ok());
    return *r;
  };
  // Complexity is the strongest positive driver of execution time.
  EXPECT_GT(rho("parallel-task-exec-time", "computational-complexity"), 0.3);
  // Block size and grid dimension are inversely related (Eq. 2).
  EXPECT_LT(rho("block-size", "grid-dimension"), -0.5);
  // Grid dimension ~ DAG width (task parallelism).
  EXPECT_GT(rho("grid-dimension", "dag-max-width"), 0.8);
  // One-hot complements.
  EXPECT_NEAR(rho("processor=CPU", "processor=GPU"), -1.0, 1e-9);
  // The block-size and algorithm-specific-parameter coefficients are
  // sample-mix sensitive; they are validated on the full ~200-sample
  // design by bench_fig11_correlation instead.
}

TEST(PaperShapesTest, Figure12FmaFollowsMatmulTrends) {
  const perf::CostModel model(hw::MinotauroCluster());
  double prev = 0;
  for (int64_t g : {16, 8, 4, 2}) {
    const int64_t n = 32768 / g;
    const auto fma = algos::MatmulFuncCost(n, n, n, true);
    const auto plain = algos::MatmulFuncCost(n, n, n, false);
    const double fma_speedup =
        model.CpuParallelFraction(fma) /
        (model.GpuParallelFraction(fma) + model.CpuGpuComm(fma));
    const double plain_speedup =
        model.CpuParallelFraction(plain) /
        (model.GpuParallelFraction(plain) + model.CpuGpuComm(plain));
    EXPECT_GT(fma_speedup, prev);          // same growth trend
    EXPECT_LT(fma_speedup, plain_speedup); // slightly less efficient
    EXPECT_GT(fma_speedup, 0.7 * plain_speedup);
    prev = fma_speedup;
  }
}

}  // namespace
}  // namespace taskbench::analysis
