#include "storage/block_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "data/matrix.h"

namespace taskbench::storage {
namespace {

data::Matrix Filled(int64_t rows, int64_t cols, double fill) {
  return data::Matrix(rows, cols, fill);
}

TEST(BlockCacheTest, MissThenHitAtSameVersion) {
  BlockCache cache(1 << 20);
  EXPECT_EQ(cache.Get(7, 1), nullptr);
  cache.Put(7, 1, Filled(4, 4, 1.5));
  const BlockCache::ValuePtr hit = cache.Get(7, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->At(0, 0), 1.5);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(BlockCacheTest, VersionMismatchIsAMissAndLeavesEntryInPlace) {
  BlockCache cache(1 << 20);
  cache.Put(7, 1, Filled(2, 2, 1.0));
  // A reader expecting a different version must not see the entry...
  EXPECT_EQ(cache.Get(7, 2), nullptr);
  EXPECT_EQ(cache.Get(7, 0), nullptr);
  // ...but a reader at the stored version still does.
  EXPECT_NE(cache.Get(7, 1), nullptr);
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(BlockCacheTest, PutOverwritesPriorVersion) {
  BlockCache cache(1 << 20);
  cache.Put(3, 1, Filled(2, 2, 1.0));
  cache.Put(3, 2, Filled(2, 2, 9.0));
  EXPECT_EQ(cache.Get(3, 1), nullptr);  // the INOUT-rewrite pattern
  const BlockCache::ValuePtr hit = cache.Get(3, 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->At(1, 1), 9.0);
  EXPECT_EQ(cache.entry_count(), 1);
}

TEST(BlockCacheTest, LruEvictionDropsOldestFirst) {
  // Budget fits exactly two 2x2 blocks (32 bytes each).
  BlockCache cache(64);
  cache.Put(1, 1, Filled(2, 2, 1.0));
  cache.Put(2, 1, Filled(2, 2, 2.0));
  ASSERT_NE(cache.Get(1, 1), nullptr);  // touch 1: now 2 is LRU
  cache.Put(3, 1, Filled(2, 2, 3.0));
  EXPECT_NE(cache.Get(1, 1), nullptr);
  EXPECT_EQ(cache.Get(2, 1), nullptr);  // evicted
  EXPECT_NE(cache.Get(3, 1), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_LE(cache.stats().bytes, cache.budget_bytes());
}

TEST(BlockCacheTest, OverBudgetValueIsNotAdmitted) {
  BlockCache cache(64);
  cache.Put(1, 1, Filled(2, 2, 1.0));
  // 8x8 = 512 bytes > 64-byte budget: returned usable, not cached.
  const BlockCache::ValuePtr big = cache.Put(2, 1, Filled(8, 8, 2.0));
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(big->At(0, 0), 2.0);
  EXPECT_EQ(cache.Get(2, 1), nullptr);
  EXPECT_NE(cache.Get(1, 1), nullptr);  // small entry untouched
}

TEST(BlockCacheTest, EvictionNeverInvalidatesOutstandingHandles) {
  BlockCache cache(64);
  cache.Put(1, 1, Filled(2, 2, 4.0));
  const BlockCache::ValuePtr handle = cache.Get(1, 1);
  cache.Put(2, 1, Filled(2, 2, 5.0));
  cache.Put(3, 1, Filled(2, 2, 6.0));  // 1 evicted by now
  EXPECT_EQ(cache.Get(1, 1), nullptr);
  ASSERT_NE(handle, nullptr);  // the evicted block lives on
  EXPECT_EQ(handle->At(0, 0), 4.0);
}

TEST(BlockCacheTest, InvalidateDropsKey) {
  BlockCache cache(1 << 20);
  cache.Put(5, 1, Filled(2, 2, 1.0));
  EXPECT_TRUE(cache.Invalidate(5));
  EXPECT_FALSE(cache.Invalidate(5));
  EXPECT_EQ(cache.Get(5, 1), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(BlockCacheTest, EvictStaleDropsEntriesWhoseVersionMovedOn) {
  BlockCache cache(1 << 20);
  cache.Put(1, 1, Filled(2, 2, 1.0));
  cache.Put(2, 7, Filled(2, 2, 2.0));
  cache.Put(3, 3, Filled(2, 2, 3.0));
  // Directory says: 1 -> 1 (fresh), 2 -> 8 (republished), 3 -> 0
  // (gone).
  const int64_t dropped = cache.EvictStale([](uint64_t key) -> uint64_t {
    if (key == 1) return 1;
    if (key == 2) return 8;
    return 0;
  });
  EXPECT_EQ(dropped, 2);
  EXPECT_NE(cache.Get(1, 1), nullptr);
  EXPECT_EQ(cache.Get(2, 7), nullptr);
  EXPECT_EQ(cache.Get(3, 3), nullptr);
  EXPECT_EQ(cache.entry_count(), 1);
}

TEST(BlockCacheTest, ClearEmptiesEverything) {
  BlockCache cache(1 << 20);
  cache.Put(1, 1, Filled(2, 2, 1.0));
  cache.Put(2, 1, Filled(2, 2, 2.0));
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.Get(1, 1), nullptr);
}

TEST(BlockCacheTest, ByteAccountingTracksPeak) {
  BlockCache cache(1 << 20);
  cache.Put(1, 1, Filled(4, 4, 1.0));  // 128 bytes
  cache.Put(2, 1, Filled(4, 4, 2.0));  // 256 total
  cache.Invalidate(1);
  EXPECT_EQ(cache.stats().bytes, 128u);
  EXPECT_EQ(cache.stats().peak_bytes, 256u);
}

TEST(BlockCacheTest, SharedOwnershipNoCopyOnHit) {
  BlockCache cache(1 << 20);
  auto value = std::make_shared<const data::Matrix>(Filled(2, 2, 1.0));
  cache.Put(9, 1, value);
  const BlockCache::ValuePtr hit = cache.Get(9, 1);
  EXPECT_EQ(hit.get(), value.get());  // the same block, not a copy
}

}  // namespace
}  // namespace taskbench::storage
