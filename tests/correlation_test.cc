#include "stats/correlation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace taskbench::stats {
namespace {

TEST(RanksTest, SimpleOrdering) {
  EXPECT_EQ(Ranks({30, 10, 20}), (std::vector<double>{3, 1, 2}));
}

TEST(RanksTest, TiesGetAverageRank) {
  // 10 10 20 -> ranks 1.5 1.5 3
  EXPECT_EQ(Ranks({10, 10, 20}), (std::vector<double>{1.5, 1.5, 3}));
  // all equal -> all (n+1)/2
  EXPECT_EQ(Ranks({5, 5, 5, 5}), (std::vector<double>{2.5, 2.5, 2.5, 2.5}));
}

TEST(RanksTest, EmptyAndSingle) {
  EXPECT_TRUE(Ranks({}).empty());
  EXPECT_EQ(Ranks({42}), (std::vector<double>{1}));
}

TEST(PearsonTest, PerfectLinearCorrelation) {
  auto r = PearsonR({1, 2, 3, 4}, {10, 20, 30, 40});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 1.0, 1e-12);
  auto neg = PearsonR({1, 2, 3, 4}, {8, 6, 4, 2});
  ASSERT_TRUE(neg.ok());
  EXPECT_NEAR(*neg, -1.0, 1e-12);
}

TEST(PearsonTest, ConstantInputIsNaN) {
  auto r = PearsonR({1, 1, 1}, {1, 2, 3});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::isnan(*r));
}

TEST(PearsonTest, RejectsBadInputs) {
  EXPECT_FALSE(PearsonR({1, 2}, {1}).ok());
  EXPECT_FALSE(PearsonR({1}, {1}).ok());
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  // Spearman is rank-based: any monotone transform keeps rho = 1.
  // This robustness is why the paper picks it (Section 5.4).
  std::vector<double> x{1, 2, 3, 4, 5, 6};
  std::vector<double> y;
  for (double v : x) y.push_back(std::exp(v));
  auto rho = SpearmanRho(x, y);
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, 1.0, 1e-12);
}

TEST(SpearmanTest, AntitoneIsMinusOne) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{100, 50, 10, 5, 1};
  auto rho = SpearmanRho(x, y);
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, -1.0, 1e-12);
}

TEST(SpearmanTest, IndependentVariablesNearZero) {
  Rng rng(77);
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(rng.NextDouble());
    y.push_back(rng.NextDouble());
  }
  auto rho = SpearmanRho(x, y);
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, 0.0, 0.05);
}

TEST(SpearmanTest, RobustToOutliers) {
  // One wild outlier barely moves Spearman (unlike Pearson).
  std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<double> y{1, 2, 3, 4, 5, 6, 7, 8, 9, 1e9};
  auto rho = SpearmanRho(x, y);
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, 1.0, 1e-12);
}

TEST(StatsHelpersTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 6}), std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
}

}  // namespace
}  // namespace taskbench::stats
