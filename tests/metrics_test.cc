#include "runtime/metrics.h"

#include <gtest/gtest.h>

namespace taskbench::runtime {
namespace {

TaskRecord Rec(TaskId id, const std::string& type, int level, double start,
               double end, double deser = 0, double ser = 0) {
  TaskRecord rec;
  rec.task = id;
  rec.type = type;
  rec.level = level;
  rec.start = start;
  rec.end = end;
  rec.stages.deserialize = deser;
  rec.stages.serialize = ser;
  rec.stages.parallel_fraction = (end - start) - deser - ser;
  return rec;
}

RunReport TwoLevelReport() {
  RunReport report;
  report.records.push_back(Rec(0, "a", 0, 0.0, 2.0, 0.5, 0.1));
  report.records.push_back(Rec(1, "a", 0, 0.5, 3.0, 0.5, 0.1));
  report.records.push_back(Rec(2, "b", 1, 3.0, 4.0, 0.2, 0.2));
  report.makespan = 4.0;
  return report;
}

TEST(RunReportTest, CountByType) {
  const auto counts = TwoLevelReport().CountByType();
  EXPECT_EQ(counts.at("a"), 2);
  EXPECT_EQ(counts.at("b"), 1);
}

TEST(RunReportTest, MeanStagesByTypeAverages) {
  const auto means = TwoLevelReport().MeanStagesByType();
  EXPECT_DOUBLE_EQ(means.at("a").deserialize, 0.5);
  EXPECT_DOUBLE_EQ(means.at("b").deserialize, 0.2);
  // Type "a": parallel fractions are 1.4 and 1.9 -> mean 1.65.
  EXPECT_NEAR(means.at("a").parallel_fraction, 1.65, 1e-12);
}

TEST(RunReportTest, MeanStagesOverAll) {
  const auto mean = TwoLevelReport().MeanStages();
  EXPECT_NEAR(mean.deserialize, (0.5 + 0.5 + 0.2) / 3, 1e-12);
}

TEST(RunReportTest, MeanStagesEmptyReport) {
  RunReport report;
  EXPECT_DOUBLE_EQ(report.MeanStages().total(), 0.0);
  EXPECT_DOUBLE_EQ(report.MeanLevelTime(), 0.0);
  EXPECT_TRUE(report.LevelStats().empty());
}

TEST(RunReportTest, LevelStatsSpanMinStartToMaxEnd) {
  const auto stats = TwoLevelReport().LevelStats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].level, 0);
  EXPECT_EQ(stats[0].num_tasks, 2);
  EXPECT_DOUBLE_EQ(stats[0].duration, 3.0);  // [0.0, 3.0]
  EXPECT_EQ(stats[1].num_tasks, 1);
  EXPECT_DOUBLE_EQ(stats[1].duration, 1.0);
}

TEST(RunReportTest, MeanLevelTime) {
  EXPECT_DOUBLE_EQ(TwoLevelReport().MeanLevelTime(), 2.0);  // (3+1)/2
}

TEST(RunReportTest, TotalSerializationTimes) {
  const RunReport report = TwoLevelReport();
  EXPECT_NEAR(report.TotalDeserializeTime(), 1.2, 1e-12);
  EXPECT_NEAR(report.TotalSerializeTime(), 0.4, 1e-12);
}

TEST(RunReportTest, BusyTimeAndUtilization) {
  const RunReport report = TwoLevelReport();
  // Durations: 2.0 + 2.5 + 1.0 = 5.5 slot-seconds.
  EXPECT_DOUBLE_EQ(report.TotalBusyTime(), 5.5);
  // 2 slots over a 4 s makespan -> 5.5 / 8.
  EXPECT_DOUBLE_EQ(report.SlotUtilization(2), 5.5 / 8.0);
  EXPECT_DOUBLE_EQ(report.SlotUtilization(0), 0.0);
}

TEST(RunReportTest, BusyTimeByNode) {
  RunReport report;
  TaskRecord a = Rec(0, "t", 0, 0.0, 2.0);
  a.node = 1;
  TaskRecord b = Rec(1, "t", 0, 0.0, 3.0);
  b.node = 1;
  TaskRecord c = Rec(2, "t", 0, 0.0, 1.0);
  c.node = -1;  // unplaced records count toward node 0
  report.records = {a, b, c};
  const auto by_node = report.BusyTimeByNode();
  ASSERT_EQ(by_node.size(), 2u);
  EXPECT_DOUBLE_EQ(by_node[0], 1.0);
  EXPECT_DOUBLE_EQ(by_node[1], 5.0);
}

TEST(StageTimesTest, UserCodeExcludesDataMovement) {
  perf::StageTimes stages;
  stages.deserialize = 1;
  stages.serial_fraction = 2;
  stages.parallel_fraction = 3;
  stages.cpu_gpu_comm = 4;
  stages.serialize = 5;
  EXPECT_DOUBLE_EQ(stages.user_code(), 9.0);
  EXPECT_DOUBLE_EQ(stages.total(), 15.0);
}

TEST(TaskRecordTest, Duration) {
  const TaskRecord rec = Rec(0, "t", 0, 1.5, 4.0);
  EXPECT_DOUBLE_EQ(rec.duration(), 2.5);
}

}  // namespace
}  // namespace taskbench::runtime
