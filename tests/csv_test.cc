#include "analysis/csv.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "data/generators.h"

namespace taskbench::analysis {
namespace {

TEST(CsvEscapeTest, PlainFieldsUntouched) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, QuotesCommasAndQuotes) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

ExperimentResult FakeResult(bool oom) {
  ExperimentResult result;
  result.config.label = "kmeans,test";  // comma needs escaping
  result.config.algorithm = Algorithm::kKMeans;
  result.config.dataset = data::PaperDatasets::KMeans100MB();
  result.config.grid_rows = 8;
  result.oom = oom;
  result.block_bytes = 1234;
  result.num_blocks = 8;
  result.dag_width = 8;
  result.dag_height = 6;
  result.parallel_fraction = 0.28;
  result.complexity = 1e9;
  result.parallel_task_time = 1.5;
  result.makespan = 3.0;
  return result;
}

TEST(ExperimentsCsvTest, RendersRowsWithHeader) {
  const std::string csv = ExperimentsCsv({FakeResult(false)});
  const auto lines = Split(csv, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[0].find("parallel_task_time_s"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kmeans,test\""), std::string::npos);
  EXPECT_NE(lines[1].find(",0,1.5,3,"), std::string::npos);
}

TEST(ExperimentsCsvTest, OomRowsHaveEmptyMetrics) {
  const std::string csv = ExperimentsCsv({FakeResult(true)});
  const auto lines = Split(csv, '\n');
  EXPECT_NE(lines[1].find(",1,,,"), std::string::npos);
}

TEST(TaskRecordsCsvTest, OneRowPerRecord) {
  runtime::RunReport report;
  runtime::TaskRecord rec;
  rec.task = 3;
  rec.type = "partial_sum";
  rec.level = 1;
  rec.node = 2;
  rec.start = 0.5;
  rec.end = 1.5;
  rec.stages.deserialize = 0.25;
  report.records.push_back(rec);
  const std::string csv = TaskRecordsCsv(report);
  const auto lines = Split(csv, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[1].find("3,partial_sum,1,CPU,2,0.5,1.5,0.25"),
            std::string::npos);
}

TEST(CorrelationCsvTest, SquareWithNanBlank) {
  stats::FeatureTable table;
  ASSERT_TRUE(table.AddNumeric("a", {1, 2, 3}).ok());
  ASSERT_TRUE(table.AddNumeric("b", {7, 7, 7}).ok());  // constant -> NaN
  auto matrix = table.SpearmanMatrix();
  ASSERT_TRUE(matrix.ok());
  const std::string csv = CorrelationCsv(*matrix);
  const auto lines = Split(csv, '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0], "feature,a,b");
  EXPECT_NE(lines[1].find("a,1.000000,"), std::string::npos);
  // NaN rendered empty.
  EXPECT_EQ(lines[1].back(), ',');
}

TEST(WriteFileTest, RoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "tb_csv_test.csv";
  ASSERT_TRUE(WriteFile(path.string(), "x,y\n1,2\n").ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "x,y\n1,2\n");
  std::filesystem::remove(path);
}

TEST(WriteFileTest, BadPathFails) {
  EXPECT_FALSE(WriteFile("/nonexistent-dir-xyz/file.csv", "x").ok());
}

}  // namespace
}  // namespace taskbench::analysis
