// The post-hoc invariant checker must accept real reports from both
// executors and reject deliberately corrupted ones — each mutation
// here models a distinct executor bug class (lost record, time
// travel, phantom scheduler work, over-committed node, attempt-log
// corruption). Also covers the online checker's RunOptions wiring.

#include <gtest/gtest.h>

#include "check/invariants.h"
#include "check/workload.h"
#include "hw/cluster.h"
#include "runtime/run_options.h"
#include "runtime/simulated_executor.h"
#include "runtime/thread_pool_executor.h"

namespace taskbench::check {
namespace {

using runtime::RunReport;
using runtime::TaskGraph;

WorkloadSpec Spec() {
  WorkloadSpec spec;
  spec.family = Family::kFanOutFanIn;
  spec.seed = 4;
  spec.dim = 10;
  spec.width = 5;
  spec.gpu_every = 2;
  return spec;
}

struct SimRun {
  BuiltWorkload built;
  RunReport report;
  hw::ClusterSpec cluster;
};

SimRun RunSim() {
  auto built = BuildWorkload(Spec());
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  SimRun out{std::move(built).value(), {}, hw::MinotauroCluster()};
  runtime::RunOptions options;
  runtime::SimulatedExecutor executor(out.cluster, options);
  auto report = executor.Execute(out.built.graph);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  out.report = std::move(report).value();
  return out;
}

InvariantContext SimContext(const SimRun& run) {
  InvariantContext context;
  context.cluster = &run.cluster;
  context.simulated = true;
  return context;
}

TEST(VerifyReportTest, AcceptsGenuineSimulatedReport) {
  SimRun run = RunSim();
  Status s = VerifyReport(run.built.graph, run.report, SimContext(run));
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(VerifyReportTest, AcceptsGenuineThreadPoolReport) {
  auto built = BuildWorkload(Spec());
  ASSERT_TRUE(built.ok());
  runtime::RunOptions options;
  options.num_threads = 3;
  options.use_storage = true;
  runtime::ThreadPoolExecutor executor(options);
  auto report = executor.Execute(built->graph);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  InvariantContext context;
  context.num_threads = 3;
  Status s = VerifyReport(built->graph, *report, context);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(VerifyReportTest, RejectsMissingRecord) {
  SimRun run = RunSim();
  run.report.records.pop_back();
  EXPECT_FALSE(
      VerifyReport(run.built.graph, run.report, SimContext(run)).ok());
}

TEST(VerifyReportTest, RejectsRecordBeyondMakespan) {
  SimRun run = RunSim();
  run.report.records[0].end = run.report.makespan * 2 + 1;
  EXPECT_FALSE(
      VerifyReport(run.built.graph, run.report, SimContext(run)).ok());
}

TEST(VerifyReportTest, RejectsNegativeOrInvertedInterval) {
  SimRun run = RunSim();
  auto& rec = run.report.records[1];
  rec.start = rec.end + 1e-3;
  EXPECT_FALSE(
      VerifyReport(run.built.graph, run.report, SimContext(run)).ok());
}

TEST(VerifyReportTest, RejectsDependencyOrderViolation) {
  SimRun run = RunSim();
  // The fan-in reduce is the last task; pretend it started at 0,
  // before its producers finished.
  auto& rec = run.report.records.back();
  ASSERT_FALSE(run.built.graph.task(rec.task).deps.empty());
  rec.start = 0;
  EXPECT_FALSE(
      VerifyReport(run.built.graph, run.report, SimContext(run)).ok());
}

TEST(VerifyReportTest, RejectsPhantomSchedulerOverhead) {
  SimRun run = RunSim();
  run.report.scheduler_overhead += 1.0;  // phases no longer sum to it
  EXPECT_FALSE(
      VerifyReport(run.built.graph, run.report, SimContext(run)).ok());
}

TEST(VerifyReportTest, RejectsOverCommittedNode) {
  WorkloadSpec spec = Spec();
  spec.width = 20;  // 22 tasks > the 16 cores of one Minotauro node
  auto built = BuildWorkload(spec);
  ASSERT_TRUE(built.ok());
  const hw::ClusterSpec cluster = hw::MinotauroCluster();
  runtime::SimulatedExecutor executor(cluster, runtime::RunOptions{});
  auto result = executor.Execute(built->graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  RunReport report = std::move(result).value();
  ASSERT_GT(report.records.size(), 16u);
  // Cram every record onto node 0's cores spanning the full makespan:
  // busy time then exceeds makespan x core capacity. faulted=true
  // keeps the (also-broken) dependency ordering out of the way so the
  // busy-time check is what fires.
  for (auto& rec : report.records) {
    rec.node = 0;
    rec.processor = Processor::kCpu;
    rec.start = 0;
    rec.end = report.makespan;
  }
  InvariantContext context;
  context.cluster = &cluster;
  context.simulated = true;
  context.faulted = true;
  Status s = VerifyReport(built->graph, report, context);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("busy"), std::string::npos)
      << s.ToString();
}

TEST(VerifyReportTest, RejectsAttemptsOnFaultFreeSimRun) {
  SimRun run = RunSim();
  run.report.attempts.push_back({0, 1, 0, Processor::kCpu, 0, 0,
                                 runtime::AttemptOutcome::kCompleted});
  EXPECT_FALSE(
      VerifyReport(run.built.graph, run.report, SimContext(run)).ok());
}

TEST(VerifyReportTest, RejectsNonMonotonicAttemptNumbers) {
  SimRun run = RunSim();
  InvariantContext context = SimContext(run);
  context.faulted = true;
  run.report.faults.retries = 1;
  run.report.attempts.push_back({0, 2, 0, Processor::kCpu, 0.0, 0.1,
                                 runtime::AttemptOutcome::kStorageFault});
  run.report.attempts.push_back({0, 2, 0, Processor::kCpu, 0.2, 0.3,
                                 runtime::AttemptOutcome::kCompleted});
  EXPECT_FALSE(
      VerifyReport(run.built.graph, run.report, context).ok());
}

TEST(VerifyReportTest, OnlineSimCheckerPassesCleanRuns) {
  // check_invariants defaults on; an explicit off must also work and
  // produce the identical report (the checker observes, never steers).
  auto built = BuildWorkload(Spec());
  ASSERT_TRUE(built.ok());
  const hw::ClusterSpec cluster = hw::MinotauroCluster();
  runtime::RunOptions on;
  ASSERT_TRUE(on.check_invariants);
  runtime::RunOptions off;
  off.check_invariants = false;
  runtime::SimulatedExecutor with(cluster, on);
  runtime::SimulatedExecutor without(cluster, off);
  auto a = with.Execute(built->graph);
  auto b = without.Execute(built->graph);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->makespan, b->makespan);
  EXPECT_EQ(a->sim_events, b->sim_events);
}

TEST(VerifyReportTest, OnlineThreadPoolCheckerPassesCleanRuns) {
  for (bool use_storage : {false, true}) {
    auto built = BuildWorkload(Spec());
    ASSERT_TRUE(built.ok());
    runtime::RunOptions options;
    options.num_threads = 4;
    options.use_storage = use_storage;
    ASSERT_TRUE(options.check_invariants);
    runtime::ThreadPoolExecutor executor(options);
    auto report = executor.Execute(built->graph);
    EXPECT_TRUE(report.ok())
        << "storage=" << use_storage << ": " << report.status().ToString();
  }
}

}  // namespace
}  // namespace taskbench::check
