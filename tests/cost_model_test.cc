#include "perf/cost_model.h"

#include <gtest/gtest.h>

#include "algos/kmeans.h"
#include "algos/matmul.h"
#include "common/units.h"

namespace taskbench::perf {
namespace {

CostModel MinotauroModel() { return CostModel(hw::MinotauroCluster()); }

TaskCost SimpleCost() {
  TaskCost cost;
  cost.parallel.flops = 1e9;
  cost.parallel.bytes = 1e8;
  cost.serial.flops = 1e7;
  cost.serial.bytes = 1e7;
  cost.h2d_bytes = 50'000'000;
  cost.d2h_bytes = 10'000'000;
  cost.num_transfers = 2;
  cost.num_kernels = 1;
  cost.input_bytes = 50'000'000;
  cost.output_bytes = 10'000'000;
  cost.gpu_working_set_bytes = 200'000'000;
  return cost;
}

TEST(CostModelTest, CpuParallelFractionIsRoofline) {
  const CostModel model = MinotauroModel();
  TaskCost cost;
  cost.parallel.flops = 16e9;  // exactly 1 s of compute
  cost.parallel.bytes = 1e6;   // negligible memory side
  EXPECT_NEAR(model.CpuParallelFraction(cost), 1.0, 1e-9);
  cost.parallel.bytes = 60e9;  // 10 s of memory traffic dominates
  EXPECT_NEAR(model.CpuParallelFraction(cost), 10.0, 1e-9);
}

TEST(CostModelTest, SerialFractionUsesCpuRates) {
  const CostModel model = MinotauroModel();
  TaskCost cost;
  cost.serial.bytes = 6e9;
  EXPECT_NEAR(model.SerialFraction(cost), 1.0, 1e-9);
}

TEST(CostModelTest, CommScalesWithVolumeAndTransfers) {
  const CostModel model = MinotauroModel();
  TaskCost cost;
  // Exactly one second of bus transfer plus two transfer latencies.
  cost.h2d_bytes = static_cast<uint64_t>(hw::Pcie3().bandwidth_bps);
  cost.d2h_bytes = 0;
  cost.num_transfers = 2;
  const double expected_latency = 2 * hw::Pcie3().latency_s;
  EXPECT_NEAR(model.CpuGpuComm(cost), 1.0 + expected_latency, 1e-9);
}

TEST(CostModelTest, GpuFasterThanCpuOnLargeParallelWork) {
  const CostModel model = MinotauroModel();
  TaskCost cost = SimpleCost();
  cost.parallel.flops = 1e12;
  EXPECT_LT(model.GpuParallelFraction(cost),
            model.CpuParallelFraction(cost));
}

TEST(CostModelTest, UtilizationRampPenalizesSmallKernels) {
  const CostModel model = MinotauroModel();
  TaskCost small = SimpleCost();
  small.parallel.flops = 1e8;
  small.gpu_curve.ramp_work = 1e10;
  TaskCost large = small;
  large.parallel.flops = 1e13;
  // Effective throughput (flops/second of parallel fraction) must be
  // much higher for the large kernel.
  const double small_rate =
      small.parallel.flops / model.GpuParallelFraction(small);
  const double large_rate =
      large.parallel.flops / model.GpuParallelFraction(large);
  EXPECT_GT(large_rate, small_rate * 10);
}

TEST(CostModelTest, GpuCurveUtilizationBounds) {
  GpuCurve curve;
  curve.ramp_work = 1e9;
  EXPECT_GT(curve.UtilizationFor(1e6), 0.0);
  EXPECT_LT(curve.UtilizationFor(1e6), 0.05);
  EXPECT_GT(curve.UtilizationFor(1e12), 0.95);
  EXPECT_NEAR(curve.UtilizationFor(1e9), 0.5, 1e-9);  // half at ramp
  // No ramp -> always full utilization.
  GpuCurve flat;
  EXPECT_EQ(flat.UtilizationFor(123.0), 1.0);
}

TEST(CostModelTest, CheckGpuFitOomAboveDeviceMemory) {
  const CostModel model = MinotauroModel();
  TaskCost cost = SimpleCost();
  cost.gpu_working_set_bytes = 11ULL * kGiB;
  EXPECT_TRUE(model.CheckGpuFit(cost).ok());
  cost.gpu_working_set_bytes = 13ULL * kGiB;
  const Status status = model.CheckGpuFit(cost);
  EXPECT_TRUE(status.IsOutOfMemory());
}

TEST(CostModelTest, CheckGpuFitFailsWithoutGpus) {
  const CostModel model(hw::SingleNode(4, 0));
  EXPECT_EQ(model.CheckGpuFit(SimpleCost()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CostModelTest, EstimateStagesCpuHasNoComm) {
  const CostModel model = MinotauroModel();
  auto stages = model.EstimateStages(SimpleCost(), Processor::kCpu,
                                     hw::StorageArchitecture::kSharedDisk);
  ASSERT_TRUE(stages.ok());
  EXPECT_EQ(stages->cpu_gpu_comm, 0.0);
  EXPECT_GT(stages->deserialize, 0.0);
  EXPECT_GT(stages->serialize, 0.0);
  EXPECT_GT(stages->user_code(), 0.0);
  EXPECT_NEAR(stages->total(),
              stages->deserialize + stages->user_code() + stages->serialize,
              1e-12);
}

TEST(CostModelTest, EstimateStagesGpuPropagatesOom) {
  const CostModel model = MinotauroModel();
  TaskCost cost = SimpleCost();
  cost.gpu_working_set_bytes = 20ULL * kGiB;
  auto stages = model.EstimateStages(cost, Processor::kGpu,
                                     hw::StorageArchitecture::kSharedDisk);
  ASSERT_FALSE(stages.ok());
  EXPECT_TRUE(stages.status().IsOutOfMemory());
}

TEST(CostModelTest, LocalDiskFasterPerStreamThanShared) {
  const CostModel model = MinotauroModel();
  const TaskCost cost = SimpleCost();
  EXPECT_LT(model.Deserialize(cost, hw::StorageArchitecture::kLocalDisk),
            model.Deserialize(cost, hw::StorageArchitecture::kSharedDisk));
}

TEST(StageTimesTest, AccumulateAndAverage) {
  StageTimes a;
  a.deserialize = 1;
  a.parallel_fraction = 2;
  StageTimes b;
  b.deserialize = 3;
  b.cpu_gpu_comm = 4;
  a += b;
  EXPECT_EQ(a.deserialize, 4);
  EXPECT_EQ(a.cpu_gpu_comm, 4);
  const StageTimes half = a / 2.0;
  EXPECT_EQ(half.deserialize, 2);
  EXPECT_EQ(half.parallel_fraction, 1);
}

// ---- Paper-anchored calibration checks ----

TEST(CalibrationTest, MatmulFuncSpeedupGrowsToPaperCeiling) {
  // Figure 8: user-code speedup of matmul_func grows from ~5-8x at
  // 32 MB blocks to ~21x at 2048 MB.
  const CostModel model = MinotauroModel();
  auto user_speedup = [&](int64_t n) {
    const TaskCost cost = algos::MatmulFuncCost(n, n, n, false);
    const double cpu =
        model.CpuParallelFraction(cost) + model.SerialFraction(cost);
    const double gpu = model.GpuParallelFraction(cost) +
                       model.SerialFraction(cost) + model.CpuGpuComm(cost);
    return cpu / gpu;
  };
  const double fine = user_speedup(2048);     // 32 MB block
  const double coarse = user_speedup(16384);  // 2048 MB block
  EXPECT_GT(fine, 3.0);
  EXPECT_LT(fine, 9.0);
  EXPECT_GT(coarse, 15.0);
  EXPECT_LT(coarse, 25.0);
}

TEST(CalibrationTest, AddFuncGpuLosesAtAllPaperSizes) {
  // Figure 8: add_func GPU is slower than CPU at every block size.
  const CostModel model = MinotauroModel();
  for (int64_t n : {2048, 4096, 8192, 16384}) {
    const TaskCost cost = algos::AddFuncCost(n, n);
    const double cpu = model.CpuParallelFraction(cost);
    const double gpu =
        model.GpuParallelFraction(cost) + model.CpuGpuComm(cost);
    EXPECT_GT(gpu, cpu) << "block order " << n;
  }
}

TEST(CalibrationTest, KmeansFigure1SingleTaskSpeedups) {
  // Figure 1 anchors (10 GB dataset, 256 tasks, 10 clusters):
  // parallel fraction 5.69x, user code 1.24x.
  const CostModel model = MinotauroModel();
  const TaskCost cost = algos::PartialSumCost(12500000 / 256, 100, 10);
  const double pf_speedup =
      model.CpuParallelFraction(cost) / model.GpuParallelFraction(cost);
  EXPECT_NEAR(pf_speedup, 5.69, 1.2);

  const double cpu_user =
      model.CpuParallelFraction(cost) + model.SerialFraction(cost);
  const double gpu_user = model.GpuParallelFraction(cost) +
                          model.SerialFraction(cost) +
                          model.CpuGpuComm(cost);
  EXPECT_NEAR(cpu_user / gpu_user, 1.24, 0.35);
}

TEST(CalibrationTest, MatmulOomAtPaperBlockSizes) {
  // Section 5.3: 8192 MB blocks need 3 x 8 GB > 12 GB -> OOM, while
  // 2048 MB blocks fit.
  const CostModel model = MinotauroModel();
  EXPECT_TRUE(model
                  .CheckGpuFit(algos::MatmulFuncCost(16384, 16384, 16384,
                                                     false))
                  .ok());
  EXPECT_TRUE(model
                  .CheckGpuFit(algos::MatmulFuncCost(32768, 32768, 32768,
                                                     false))
                  .IsOutOfMemory());
}

TEST(CalibrationTest, KmeansOomScalesWithClusters) {
  // Figure 9a: 1000 clusters OOM at much smaller blocks than 10
  // clusters (the M x K distance matrix dominates).
  const CostModel model = MinotauroModel();
  const int64_t rows_8x1 = 12500000 / 8;  // 1250 MB blocks
  EXPECT_TRUE(model.CheckGpuFit(algos::PartialSumCost(rows_8x1, 100, 10))
                  .ok());
  EXPECT_TRUE(model.CheckGpuFit(algos::PartialSumCost(rows_8x1, 100, 1000))
                  .IsOutOfMemory());
}

}  // namespace
}  // namespace taskbench::perf
