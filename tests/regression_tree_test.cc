#include "stats/regression_tree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace taskbench::stats {
namespace {

double MustPredict(const RegressionTree& tree,
                   const std::vector<double>& x) {
  auto y = tree.Predict(x);
  EXPECT_TRUE(y.ok());
  return *y;
}

TEST(RegressionTreeTest, RejectsBadInput) {
  EXPECT_FALSE(RegressionTree::Fit({}, {}).ok());
  EXPECT_FALSE(RegressionTree::Fit({{1.0}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(RegressionTree::Fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(RegressionTree::Fit({{}, {}}, {1.0, 2.0}).ok());
}

TEST(RegressionTreeTest, ConstantTargetsGiveSingleLeaf) {
  std::vector<std::vector<double>> rows{{1}, {2}, {3}, {4}};
  auto tree = RegressionTree::Fit(rows, {5, 5, 5, 5});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_leaves(), 1u);
  EXPECT_DOUBLE_EQ(MustPredict(*tree, {100}), 5.0);
}

TEST(RegressionTreeTest, LearnsStepFunction) {
  RegressionTreeOptions options;
  options.min_samples_leaf = 1;
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({static_cast<double>(i)});
    targets.push_back(i < 10 ? 1.0 : 9.0);
  }
  auto tree = RegressionTree::Fit(rows, targets, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_DOUBLE_EQ(MustPredict(*tree, {3}), 1.0);
  EXPECT_DOUBLE_EQ(MustPredict(*tree, {15}), 9.0);
  // The split lands between 9 and 10.
  EXPECT_DOUBLE_EQ(MustPredict(*tree, {9.4}), 1.0);
  EXPECT_DOUBLE_EQ(MustPredict(*tree, {9.6}), 9.0);
}

TEST(RegressionTreeTest, PicksInformativeFeature) {
  // Feature 0 is noise, feature 1 decides the target.
  Rng rng(5);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 100; ++i) {
    const double informative = rng.NextDouble();
    rows.push_back({rng.NextDouble(), informative});
    targets.push_back(informative > 0.5 ? 10.0 : 0.0);
  }
  auto tree = RegressionTree::Fit(rows, targets);
  ASSERT_TRUE(tree.ok());
  const auto importance = tree->FeatureImportance();
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_GT(importance[1], 0.9);
  EXPECT_NEAR(importance[0] + importance[1], 1.0, 1e-9);
}

TEST(RegressionTreeTest, MonotoneTransformInvariance) {
  // Splits depend only on feature order: exponentiating a feature
  // yields identical predictions on correspondingly transformed
  // queries.
  Rng rng(7);
  std::vector<std::vector<double>> raw, transformed;
  std::vector<double> targets;
  for (int i = 0; i < 60; ++i) {
    const double x = rng.Uniform(0, 10);
    raw.push_back({x});
    transformed.push_back({std::exp(x)});
    targets.push_back(x * x);
  }
  auto t1 = RegressionTree::Fit(raw, targets);
  auto t2 = RegressionTree::Fit(transformed, targets);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  for (double q : {1.0, 3.5, 7.2, 9.9}) {
    EXPECT_DOUBLE_EQ(MustPredict(*t1, {q}), MustPredict(*t2, {std::exp(q)}));
  }
}

TEST(RegressionTreeTest, RespectsDepthAndLeafLimits) {
  RegressionTreeOptions options;
  options.max_depth = 2;
  options.min_samples_leaf = 5;
  Rng rng(3);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({rng.NextDouble(), rng.NextDouble()});
    targets.push_back(rng.NextDouble());
  }
  auto tree = RegressionTree::Fit(rows, targets, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->depth(), 2);
  EXPECT_LE(tree->num_leaves(), 4u);
}

TEST(RegressionTreeTest, DeterministicFits) {
  Rng rng(11);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 80; ++i) {
    rows.push_back({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
    targets.push_back(rows.back()[0] + 2 * rows.back()[2]);
  }
  auto a = RegressionTree::Fit(rows, targets);
  auto b = RegressionTree::Fit(rows, targets);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_nodes(), b->num_nodes());
  Rng probe(13);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> x{probe.NextDouble(), probe.NextDouble(),
                          probe.NextDouble()};
    EXPECT_DOUBLE_EQ(MustPredict(*a, x), MustPredict(*b, x));
  }
}

TEST(RegressionTreeTest, FitsSmoothFunctionReasonably) {
  Rng rng(23);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(0, 1);
    rows.push_back({x});
    targets.push_back(std::sin(2 * M_PI * x));
  }
  RegressionTreeOptions options;
  options.max_depth = 8;
  options.min_samples_leaf = 5;
  auto tree = RegressionTree::Fit(rows, targets, options);
  ASSERT_TRUE(tree.ok());
  double total_abs_err = 0;
  for (int i = 0; i < 100; ++i) {
    const double x = i / 100.0;
    total_abs_err += std::fabs(MustPredict(*tree, {x}) -
                               std::sin(2 * M_PI * x));
  }
  EXPECT_LT(total_abs_err / 100.0, 0.1);
}

TEST(RegressionTreeTest, PredictValidatesWidth) {
  auto tree = RegressionTree::Fit({{1, 2}, {3, 4}}, {1, 2});
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(tree->Predict({1}).ok());
  EXPECT_TRUE(tree->Predict({1, 2}).ok());
}

}  // namespace
}  // namespace taskbench::stats
