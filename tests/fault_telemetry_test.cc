// Fault x telemetry: a run that survives injected faults via retries
// must still produce well-formed observability output — a valid
// Chrome trace, a valid metrics document, a monotonic per-task
// attempt log — and pass the post-hoc invariant checker. Covers both
// executors: the thread pool over FaultyStorage and the simulator
// under a FaultPlan.

#include <map>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "check/invariants.h"
#include "check/workload.h"
#include "hw/cluster.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "runtime/fault.h"
#include "runtime/metrics_export.h"
#include "runtime/run_options.h"
#include "runtime/simulated_executor.h"
#include "runtime/thread_pool_executor.h"
#include "runtime/trace.h"
#include "storage/faulty_storage.h"

namespace taskbench {
namespace {

using runtime::RunReport;
using runtime::TaskAttempt;
using runtime::TaskGraph;
using runtime::TaskId;

check::WorkloadSpec SmallChain() {
  check::WorkloadSpec spec;
  spec.family = check::Family::kChain;
  spec.seed = 7;
  spec.dim = 12;
  spec.length = 10;
  spec.gpu_every = 0;
  return spec;
}

void ExpectValidExports(const RunReport& report) {
  std::ostringstream trace;
  runtime::StreamChromeTrace(report, trace);
  Status s = obs::ValidateJson(trace.str());
  EXPECT_TRUE(s.ok()) << "trace: " << s.ToString();

  obs::MetricsRegistry registry;
  std::ostringstream metrics;
  runtime::StreamMetricsJson(report, &registry, metrics);
  s = obs::ValidateJson(metrics.str());
  EXPECT_TRUE(s.ok()) << "metrics: " << s.ToString();
}

void ExpectMonotonicAttempts(const RunReport& report) {
  std::map<TaskId, int> last;
  for (const TaskAttempt& a : report.attempts) {
    EXPECT_GE(a.end, a.start);
    auto it = last.find(a.task);
    if (it != last.end()) {
      EXPECT_GT(a.attempt, it->second)
          << "task " << a.task << " attempt numbers must increase";
      it->second = a.attempt;
    } else {
      last[a.task] = a.attempt;
    }
  }
}

TEST(FaultTelemetryTest, ThreadPoolRetriedRunExportsCleanly) {
  auto built = check::BuildWorkload(SmallChain());
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  auto faulty = std::make_shared<storage::FaultyStorage>(
      std::make_shared<storage::InMemoryStorage>());
  // Arm after staging (one initial datum per chain step plus the
  // accumulator) so the injector fires inside the retryable region.
  faulty->ops_until_get_failure = 15;
  faulty->get_failures_remaining = 3;

  runtime::RunOptions options;
  options.num_threads = 3;
  options.use_storage = true;
  options.max_retries = 6;
  options.retry_backoff_s = 1e-4;
  runtime::ThreadPoolExecutor executor(options, faulty);
  auto report = executor.Execute(built->graph);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The injector actually fired and the run retried through it.
  EXPECT_GT(report->faults.retries, 0);
  EXPECT_FALSE(report->attempts.empty());
  ExpectMonotonicAttempts(*report);
  ExpectValidExports(*report);

  check::InvariantContext context;
  context.num_threads = options.num_threads;
  context.faulted = true;
  Status s = check::VerifyReport(built->graph, *report, context);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(FaultTelemetryTest, SimulatedFaultPlanExportsCleanly) {
  auto built = check::BuildWorkload(SmallChain());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const hw::ClusterSpec cluster = hw::MinotauroCluster();

  // Fault-free baseline fixes the crash time.
  runtime::RunOptions options;
  options.policy = SchedulingPolicy::kDataLocality;
  options.storage = hw::StorageArchitecture::kLocalDisk;
  double baseline;
  {
    runtime::SimulatedExecutor executor(cluster, options);
    auto report = executor.Execute(built->graph);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    baseline = report->makespan;
  }

  options.faults.events.push_back(
      {runtime::FaultKind::kNodeCrash, baseline * 0.4, 1, 1.0});
  options.faults.storage_fault_rate = 0.02;
  options.faults.seed = 99;
  options.max_retries = 8;
  options.retry_backoff_s = 1e-3;
  runtime::SimulatedExecutor executor(cluster, options);
  auto report = executor.Execute(built->graph);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_GT(report->faults.faults_injected, 0);
  EXPECT_FALSE(report->attempts.empty());
  ExpectMonotonicAttempts(*report);
  ExpectValidExports(*report);

  check::InvariantContext context;
  context.cluster = &cluster;
  context.simulated = true;
  context.faulted = true;
  Status s = check::VerifyReport(built->graph, *report, context);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

}  // namespace
}  // namespace taskbench
