#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace taskbench::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(3.0, [&] { order.push_back(3); });
  sim.At(1.0, [&] { order.push_back(1); });
  sim.At(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 3.0);
}

TEST(SimulatorTest, TiesFireInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, AfterSchedulesRelativeToNow) {
  Simulator sim;
  double fired_at = -1;
  sim.At(5.0, [&] {
    sim.After(2.5, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 100) sim.After(1.0, chain);
  };
  sim.After(1.0, chain);
  sim.Run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(sim.Now(), 100.0);
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(SimulatorTest, StopHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.At(1.0, [&] {
    ++fired;
    sim.Stop();
  });
  sim.At(2.0, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilRespectsDeadline) {
  Simulator sim;
  int fired = 0;
  sim.At(1.0, [&] { ++fired; });
  sim.At(5.0, [&] { ++fired; });
  sim.RunUntil(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, ZeroDelayEventRunsAtSameTime) {
  Simulator sim;
  double t = -1;
  sim.At(4.0, [&] { sim.After(0, [&] { t = sim.Now(); }); });
  sim.Run();
  EXPECT_DOUBLE_EQ(t, 4.0);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.At(5.0, [] {});
  sim.Run();
  EXPECT_DEATH(sim.At(1.0, [] {}), "past");
}

}  // namespace
}  // namespace taskbench::sim
