// Property-based tests of the simulated executor: invariants that
// must hold for ANY workflow, checked over randomized DAGs.

#include <gtest/gtest.h>

#include "common/random.h"
#include "hw/cluster.h"
#include "perf/cost_model.h"
#include "runtime/simulated_executor.h"

namespace taskbench::runtime {
namespace {

/// Builds a random layered DAG: `layers` levels of up to `width`
/// tasks, each task reading 1-3 data produced by earlier layers (or
/// initial data) and writing one output. Costs are random but
/// deterministic per seed.
TaskGraph RandomDag(uint64_t seed, int layers = 4, int width = 12) {
  Rng rng(seed);
  TaskGraph graph;
  std::vector<DataId> producible;
  for (int i = 0; i < 6; ++i) {
    producible.push_back(
        graph.AddData(1 + rng.NextBounded(50'000'000)));
  }
  for (int layer = 0; layer < layers; ++layer) {
    const int tasks = 1 + static_cast<int>(rng.NextBounded(
                              static_cast<uint64_t>(width)));
    std::vector<DataId> outputs;
    for (int t = 0; t < tasks; ++t) {
      TaskSpec spec;
      spec.type = "t" + std::to_string(layer);
      const int inputs = 1 + static_cast<int>(rng.NextBounded(3));
      for (int i = 0; i < inputs; ++i) {
        spec.params.push_back(
            {producible[rng.NextBounded(producible.size())], Dir::kIn});
      }
      const DataId out = graph.AddData(1 + rng.NextBounded(20'000'000));
      spec.params.push_back({out, Dir::kOut});
      spec.cost.parallel.flops = 1e8 + rng.NextDouble() * 5e9;
      spec.cost.serial.bytes = rng.NextDouble() * 1e8;
      spec.cost.input_bytes = 1'000'000;
      spec.cost.output_bytes = 1'000'000;
      EXPECT_TRUE(graph.Submit(std::move(spec)).ok());
      outputs.push_back(out);
    }
    for (DataId out : outputs) producible.push_back(out);
  }
  EXPECT_GT(graph.num_tasks(), 0);
  return graph;
}

class SimPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimPropertyTest, RecordsAreWellFormed) {
  TaskGraph graph = RandomDag(GetParam());
  SimulatedExecutor executor(hw::MinotauroCluster(),
                             RunOptions{});
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(static_cast<int64_t>(report->records.size()),
            graph.num_tasks());
  for (const TaskRecord& rec : report->records) {
    EXPECT_GE(rec.start, 0.0);
    EXPECT_GE(rec.end, rec.start);
    EXPECT_GE(rec.node, 0);
    EXPECT_LT(rec.node, 8);
    // Stage times fit inside the record span (allowing float slack).
    EXPECT_LE(rec.stages.total(), rec.duration() + 1e-6);
    EXPECT_LE(rec.end, report->makespan + 1e-12);
  }
}

TEST_P(SimPropertyTest, DependenciesNeverOverlap) {
  TaskGraph graph = RandomDag(GetParam());
  SimulatedExecutor executor(hw::MinotauroCluster(),
                             RunOptions{});
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  for (const TaskRecord& rec : report->records) {
    for (TaskId dep : graph.task(rec.task).deps) {
      EXPECT_GE(rec.start,
                report->records[static_cast<size_t>(dep)].end - 1e-9)
          << "task " << rec.task << " started before dep " << dep;
    }
  }
}

TEST_P(SimPropertyTest, MakespanAtLeastCriticalComputePath) {
  TaskGraph graph = RandomDag(GetParam());
  const perf::CostModel model(hw::MinotauroCluster());
  // Longest dependency chain of pure compute time is a lower bound
  // (I/O and queueing only add).
  std::vector<double> path(static_cast<size_t>(graph.num_tasks()), 0);
  double critical = 0;
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    const auto& task = graph.task(t);
    const double compute = model.SerialFraction(task.spec.cost) +
                           model.CpuParallelFraction(task.spec.cost);
    double longest_dep = 0;
    for (TaskId dep : task.deps) {
      longest_dep =
          std::max(longest_dep, path[static_cast<size_t>(dep)]);
    }
    path[static_cast<size_t>(t)] = longest_dep + compute;
    critical = std::max(critical, path[static_cast<size_t>(t)]);
  }
  SimulatedExecutor executor(hw::MinotauroCluster(),
                             RunOptions{});
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->makespan, critical - 1e-9);
}

TEST_P(SimPropertyTest, MakespanAtLeastTotalWorkOverSlots) {
  TaskGraph graph = RandomDag(GetParam());
  const hw::ClusterSpec cluster = hw::MinotauroCluster();
  const perf::CostModel model(cluster);
  double total_compute = 0;
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    total_compute += model.SerialFraction(graph.task(t).spec.cost) +
                     model.CpuParallelFraction(graph.task(t).spec.cost);
  }
  SimulatedExecutor executor(cluster, RunOptions{});
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->makespan,
            total_compute / cluster.total_cores() - 1e-9);
}

TEST_P(SimPropertyTest, PoliciesExecuteSameTasksDifferentTimes) {
  TaskGraph graph = RandomDag(GetParam());
  RunOptions gen;
  gen.policy = SchedulingPolicy::kTaskGenerationOrder;
  RunOptions loc;
  loc.policy = SchedulingPolicy::kDataLocality;
  auto a = SimulatedExecutor(hw::MinotauroCluster(), gen).Execute(graph);
  auto b = SimulatedExecutor(hw::MinotauroCluster(), loc).Execute(graph);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->records.size(), b->records.size());
  // Both executed every task exactly once.
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    EXPECT_EQ(a->records[static_cast<size_t>(t)].task, t);
    EXPECT_EQ(b->records[static_cast<size_t>(t)].task, t);
  }
}

TEST_P(SimPropertyTest, StorageArchitecturesBothComplete) {
  TaskGraph graph = RandomDag(GetParam());
  for (auto storage : {hw::StorageArchitecture::kLocalDisk,
                       hw::StorageArchitecture::kSharedDisk}) {
    RunOptions options;
    options.storage = storage;
    auto report =
        SimulatedExecutor(hw::MinotauroCluster(), options).Execute(graph);
    ASSERT_TRUE(report.ok());
    EXPECT_GT(report->makespan, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, SimPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace taskbench::runtime
