// WfBench-style generator properties: seeded determinism, knob
// behavior (shape, heavy tails, stragglers, GPU task types), WfFormat
// round-trip fidelity, and that every generated instance validates,
// builds, and runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "runtime/simulated_executor.h"
#include "runtime/thread_pool_executor.h"
#include "hw/cluster.h"
#include "wf/build.h"
#include "wf/generator.h"
#include "wf/import.h"
#include "wf/instance.h"

namespace taskbench::wf {
namespace {

TEST(WfGeneratorTest, SameSeedIsStructurallyIdentical) {
  GenOptions options;
  options.seed = 7;
  options.levels = 5;
  options.width = 4;
  const Instance a = GenerateWfBench(options);
  const Instance b = GenerateWfBench(options);
  std::string why;
  EXPECT_TRUE(StructurallyEqual(a, b, &why)) << why;
}

TEST(WfGeneratorTest, DifferentSeedsDiffer) {
  GenOptions a_options;
  a_options.seed = 1;
  GenOptions b_options;
  b_options.seed = 2;
  const Instance a = GenerateWfBench(a_options);
  const Instance b = GenerateWfBench(b_options);
  EXPECT_FALSE(StructurallyEqual(a, b, nullptr));
}

TEST(WfGeneratorTest, EveryGeneratedInstanceValidates) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    GenOptions options;
    options.seed = seed;
    options.levels = 3 + static_cast<int>(seed % 4);
    options.width = 2 + static_cast<int>(seed % 3);
    options.max_parents = 1 + static_cast<int>(seed % 3);
    if (seed % 3 == 0) options.heavy_tail_alpha = 1.5;
    if (seed % 4 == 0) options.straggler_fraction = 0.2;
    const Instance instance = GenerateWfBench(options);
    auto stats = ComputeStats(instance);
    ASSERT_TRUE(stats.ok()) << "seed " << seed << ": "
                            << stats.status().ToString();
    EXPECT_EQ(stats->height, options.levels) << "seed " << seed;
    EXPECT_GE(stats->width, 1) << "seed " << seed;
  }
}

TEST(WfGeneratorTest, LevelZeroIsExactlyWidthTasks) {
  GenOptions options;
  options.seed = 11;
  options.levels = 4;
  options.width = 6;
  const Instance instance = GenerateWfBench(options);
  auto stats = ComputeStats(instance);
  ASSERT_TRUE(stats.ok());
  // Level 0 is exact; later levels jitter by +-1 around width.
  EXPECT_GE(stats->width, 6);
}

TEST(WfGeneratorTest, HeavyTailStretchesRuntimes) {
  GenOptions base;
  base.seed = 3;
  base.levels = 6;
  base.width = 6;
  GenOptions tailed = base;
  tailed.heavy_tail_alpha = 0.5;  // very fat tail
  double base_max = 0;
  double tailed_max = 0;
  for (const WfTask& t : GenerateWfBench(base).tasks) {
    base_max = std::max(base_max, t.runtime_s);
  }
  for (const WfTask& t : GenerateWfBench(tailed).tasks) {
    tailed_max = std::max(tailed_max, t.runtime_s);
  }
  // Without a tail, runtimes stay within 1.25x of the largest type
  // mean (4.0 s); a Pareto(0.5) draw across 36+ tasks all but surely
  // exceeds that severalfold.
  EXPECT_GT(tailed_max, base_max * 2);
}

TEST(WfGeneratorTest, StragglersMultiplyRuntime) {
  GenOptions options;
  options.seed = 5;
  options.levels = 5;
  options.width = 6;
  options.straggler_fraction = 0.5;
  options.straggler_factor = 100;
  const Instance instance = GenerateWfBench(options);
  int stragglers = 0;
  for (const WfTask& t : instance.tasks) {
    if (t.runtime_s > 50) ++stragglers;  // means top out at 4 s
  }
  EXPECT_GT(stragglers, 0);
  EXPECT_LT(stragglers, static_cast<int>(instance.tasks.size()));
}

TEST(WfGeneratorTest, GpuTypesTargetTheGpuWhenBuilt) {
  GenOptions options;
  options.seed = 9;
  options.levels = 5;
  options.width = 5;
  options.types = DefaultTaskTypes(2);
  const Instance instance = GenerateWfBench(options);
  auto built = BuildInstance(instance, BuildOptions{});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  int gpu_tasks = 0;
  for (runtime::TaskId t = 0; t < built->graph.num_tasks(); ++t) {
    const runtime::Task& task = built->graph.task(t);
    const bool name_says_gpu =
        task.spec.type.find("gpu") != std::string::npos;
    EXPECT_EQ(task.spec.processor == Processor::kGpu, name_says_gpu);
    if (name_says_gpu) ++gpu_tasks;
  }
  // train_gpu + infer_gpu carry 4/12 of the draw weight; 20+ tasks
  // without a single GPU draw would mean the type library is ignored.
  EXPECT_GT(gpu_tasks, 0);
}

TEST(WfGeneratorTest, RoundTripsThroughWfFormat) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    GenOptions options;
    options.seed = seed;
    options.heavy_tail_alpha = seed % 2 == 0 ? 1.3 : 0.0;
    options.types = DefaultTaskTypes(static_cast<int>(seed % 3));
    const Instance original = GenerateWfBench(options);
    auto reimported = ImportWfFormat(ExportWfFormat(original));
    ASSERT_TRUE(reimported.ok())
        << "seed " << seed << ": " << reimported.status().ToString();
    std::string why;
    EXPECT_TRUE(StructurallyEqual(original, *reimported, &why))
        << "seed " << seed << ": " << why;
  }
}

TEST(WfGeneratorTest, GeneratedInstanceRunsOnThreadPoolAndSim) {
  GenOptions options;
  options.seed = 21;
  options.levels = 4;
  options.width = 3;
  const Instance instance = GenerateWfBench(options);

  auto materialized = BuildInstance(instance, BuildOptions{});
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  runtime::ThreadPoolExecutor pool(runtime::RunOptions{});
  auto pool_report = pool.Execute(materialized->graph);
  ASSERT_TRUE(pool_report.ok()) << pool_report.status().ToString();
  EXPECT_EQ(pool_report->records.size(), instance.tasks.size());

  // Simulation-only build keeps the true byte sizes.
  BuildOptions sim_options;
  sim_options.materialize = false;
  auto sim_built = BuildInstance(instance, sim_options);
  ASSERT_TRUE(sim_built.ok()) << sim_built.status().ToString();
  runtime::SimulatedExecutor sim(hw::MinotauroCluster(),
                                 runtime::RunOptions{});
  auto sim_report = sim.Execute(sim_built->graph);
  ASSERT_TRUE(sim_report.ok()) << sim_report.status().ToString();
  EXPECT_EQ(sim_report->records.size(), instance.tasks.size());
  EXPECT_GT(sim_report->makespan, 0);
}

TEST(WfGeneratorTest, SimOnlyBuildKeepsTrueBytes) {
  Instance instance;
  instance.files.push_back({"big.dat", 1ull << 30});
  instance.files.push_back({"out.dat", 512});
  WfTask task;
  task.name = "consume_00001";
  task.type = "consume";
  task.inputs = {"big.dat"};
  task.outputs = {"out.dat"};
  instance.tasks.push_back(task);

  BuildOptions sim_options;
  sim_options.materialize = false;
  auto sim_built = BuildInstance(instance, sim_options);
  ASSERT_TRUE(sim_built.ok());
  EXPECT_EQ(sim_built->graph.data(sim_built->file_ids[0]).bytes, 1ull << 30);

  // The materialized build miniaturizes instead of allocating 1 GiB.
  auto materialized = BuildInstance(instance, BuildOptions{});
  ASSERT_TRUE(materialized.ok());
  EXPECT_LE(materialized->graph.data(materialized->file_ids[0]).bytes,
            16u * 16u * 8u);
}

}  // namespace
}  // namespace taskbench::wf
