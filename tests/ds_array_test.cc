#include "data/ds_array.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"

namespace taskbench::data {
namespace {

Matrix Iota(int64_t rows, int64_t cols) {
  Matrix m(rows, cols);
  for (int64_t r = 0; r < rows; ++r)
    for (int64_t c = 0; c < cols; ++c) m.At(r, c) = r * 1000.0 + c;
  return m;
}

TEST(DsArrayTest, FromMatrixCollectRoundTrip) {
  const Matrix original = Iota(8, 8);
  auto array = DsArray::FromMatrix(original, 2, 4);
  ASSERT_TRUE(array.ok());
  EXPECT_EQ(array->grid_rows(), 4);
  EXPECT_EQ(array->grid_cols(), 2);
  auto collected = array->Collect();
  ASSERT_TRUE(collected.ok());
  EXPECT_TRUE(collected->ApproxEquals(original, 0));
}

TEST(DsArrayTest, RaggedRoundTrip) {
  const Matrix original = Iota(10, 7);
  auto array = DsArray::FromMatrix(original, 3, 2);
  ASSERT_TRUE(array.ok());
  EXPECT_EQ(array->grid_rows(), 4);
  EXPECT_EQ(array->grid_cols(), 4);
  // Edge blocks carry the remainder.
  EXPECT_EQ(array->block(3, 0).rows(), 1);
  EXPECT_EQ(array->block(0, 3).cols(), 1);
  auto collected = array->Collect();
  ASSERT_TRUE(collected.ok());
  EXPECT_TRUE(collected->ApproxEquals(original, 0));
}

TEST(DsArrayTest, BlockContentsMatchSlices) {
  const Matrix original = Iota(6, 6);
  auto array = DsArray::FromMatrix(original, 3, 3);
  ASSERT_TRUE(array.ok());
  auto expected = original.Slice(3, 3, 3, 3);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(array->block(1, 1).ApproxEquals(*expected, 0));
}

TEST(DsArrayTest, GenerateInvokesFillPerBlock) {
  auto spec = GridSpec::Create(DatasetSpec{"d", 4, 4}, 2, 2);
  ASSERT_TRUE(spec.ok());
  int fills = 0;
  auto array = DsArray::Generate(*spec, [&](const BlockExtent& e, Matrix* m) {
    ++fills;
    EXPECT_EQ(m->rows(), e.rows);
    EXPECT_EQ(m->cols(), e.cols);
  });
  ASSERT_TRUE(array.ok());
  EXPECT_EQ(fills, 4);
}

TEST(DsArrayTest, ZerosProducesZeroBlocks) {
  auto spec = GridSpec::Create(DatasetSpec{"d", 4, 4}, 2, 2);
  ASSERT_TRUE(spec.ok());
  auto array = DsArray::Zeros(*spec);
  ASSERT_TRUE(array.ok());
  auto collected = array->Collect();
  ASSERT_TRUE(collected.ok());
  EXPECT_DOUBLE_EQ(collected->Sum(), 0.0);
}

}  // namespace
}  // namespace taskbench::data
