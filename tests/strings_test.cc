#include "common/strings.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace taskbench {
namespace {

TEST(StringsTest, StrFormatBasic) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", "hello"), "hello");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrFormatLongOutput) {
  const std::string big(500, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 500u);
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(32 * kMiB), "32.0 MB");
  EXPECT_EQ(HumanBytes(12ULL * kGiB), "12.0 GB");
}

TEST(StringsTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(2.5), "2.500 s");
  EXPECT_EQ(HumanSeconds(0.012), "12.000 ms");
  EXPECT_EQ(HumanSeconds(34e-6), "34.000 us");
  EXPECT_EQ(HumanSeconds(5e-9), "5.0 ns");
  EXPECT_EQ(HumanSeconds(-0.5), "-500.000 ms");
}

TEST(StringsTest, JoinAndSplitRoundTrip) {
  const std::vector<std::string> parts{"a", "bb", "ccc"};
  EXPECT_EQ(Join(parts, ","), "a,bb,ccc");
  EXPECT_EQ(Split("a,bb,ccc", ','), parts);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, JoinEmpty) {
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");  // wider than field: unchanged
}

TEST(StringsTest, ParseInt64AcceptsIntegers) {
  auto v = ParseInt64("42");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(StringsTest, ParseInt64RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12abc").ok());   // trailing junk
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());     // not an integer
  EXPECT_FALSE(ParseInt64("99999999999999999999").ok());  // overflow
}

TEST(StringsTest, ParseDoubleAcceptsNumbers) {
  EXPECT_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_EQ(*ParseDouble("0"), 0.0);
}

TEST(StringsTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("2.5x").ok());
  EXPECT_FALSE(ParseDouble("oops").ok());
  EXPECT_FALSE(ParseDouble("1e99999").ok());  // out of range
}

TEST(UnitsTest, ElementConversions) {
  EXPECT_EQ(ElementsToBytes(1024), 8192u);
  EXPECT_EQ(BytesToElements(8192), 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
}

}  // namespace
}  // namespace taskbench
