#include "common/strings.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace taskbench {
namespace {

TEST(StringsTest, StrFormatBasic) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", "hello"), "hello");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrFormatLongOutput) {
  const std::string big(500, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 500u);
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(32 * kMiB), "32.0 MB");
  EXPECT_EQ(HumanBytes(12ULL * kGiB), "12.0 GB");
}

TEST(StringsTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(2.5), "2.500 s");
  EXPECT_EQ(HumanSeconds(0.012), "12.000 ms");
  EXPECT_EQ(HumanSeconds(34e-6), "34.000 us");
  EXPECT_EQ(HumanSeconds(5e-9), "5.0 ns");
  EXPECT_EQ(HumanSeconds(-0.5), "-500.000 ms");
}

TEST(StringsTest, JoinAndSplitRoundTrip) {
  const std::vector<std::string> parts{"a", "bb", "ccc"};
  EXPECT_EQ(Join(parts, ","), "a,bb,ccc");
  EXPECT_EQ(Split("a,bb,ccc", ','), parts);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, JoinEmpty) {
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");  // wider than field: unchanged
}

TEST(UnitsTest, ElementConversions) {
  EXPECT_EQ(ElementsToBytes(1024), 8192u);
  EXPECT_EQ(BytesToElements(8192), 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
}

}  // namespace
}  // namespace taskbench
