#include "common/strings.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace taskbench {
namespace {

TEST(StringsTest, StrFormatBasic) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", "hello"), "hello");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrFormatLongOutput) {
  const std::string big(500, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 500u);
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(32 * kMiB), "32.0 MB");
  EXPECT_EQ(HumanBytes(12ULL * kGiB), "12.0 GB");
}

TEST(StringsTest, HumanBytesRollsToNextUnitInsteadOfPrinting1024) {
  // A value a hair under the unit boundary used to render as
  // "1024.0 KB": the unit was chosen before rounding. Rounding to one
  // decimal must roll over to the next unit instead.
  EXPECT_EQ(HumanBytes(kMiB - 1), "1.0 MB");
  EXPECT_EQ(HumanBytes(kGiB - 1), "1.0 GB");
  EXPECT_EQ(HumanBytes(1024ULL * kGiB - 1), "1.0 TB");
  // Just below the rollover threshold stays in the smaller unit.
  EXPECT_EQ(HumanBytes(1023 * kKiB), "1023.0 KB");
  // Boundary values are exact.
  EXPECT_EQ(HumanBytes(kMiB), "1.0 MB");
  EXPECT_EQ(HumanBytes(1024), "1.0 KB");
}

TEST(StringsTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(2.5), "2.500 s");
  EXPECT_EQ(HumanSeconds(0.012), "12.000 ms");
  EXPECT_EQ(HumanSeconds(34e-6), "34.000 us");
  EXPECT_EQ(HumanSeconds(5e-9), "5.0 ns");
  EXPECT_EQ(HumanSeconds(-0.5), "-500.000 ms");
}

TEST(StringsTest, JoinAndSplitRoundTrip) {
  const std::vector<std::string> parts{"a", "bb", "ccc"};
  EXPECT_EQ(Join(parts, ","), "a,bb,ccc");
  EXPECT_EQ(Split("a,bb,ccc", ','), parts);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, JoinEmpty) {
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");  // wider than field: unchanged
}

TEST(StringsTest, ParseInt64AcceptsIntegers) {
  auto v = ParseInt64("42");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(StringsTest, ParseInt64RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12abc").ok());   // trailing junk
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());     // not an integer
  EXPECT_FALSE(ParseInt64("99999999999999999999").ok());  // overflow
}

TEST(StringsTest, ParseInt64RejectsLeadingWhitespace) {
  // strtoll silently skips leading whitespace; the parser must not —
  // " 5" in a config or CLI flag is a typo, not a number.
  EXPECT_FALSE(ParseInt64(" 5").ok());
  EXPECT_FALSE(ParseInt64("\t5").ok());
  EXPECT_FALSE(ParseInt64("\n5").ok());
  EXPECT_FALSE(ParseInt64("5 ").ok());  // trailing rejected as before
}

TEST(StringsTest, ParseDoubleAcceptsNumbers) {
  EXPECT_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_EQ(*ParseDouble("0"), 0.0);
}

TEST(StringsTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("2.5x").ok());
  EXPECT_FALSE(ParseDouble("oops").ok());
  EXPECT_FALSE(ParseDouble("1e99999").ok());  // out of range
}

TEST(StringsTest, ParseDoubleRejectsLeadingWhitespace) {
  EXPECT_FALSE(ParseDouble(" 2.5").ok());
  EXPECT_FALSE(ParseDouble("\t2.5").ok());
  EXPECT_FALSE(ParseDouble("2.5 ").ok());
}

TEST(StringsTest, ParseDoubleRejectsNonFinite) {
  // strtod happily parses "nan" and "inf"; every ParseDouble call
  // site expects a finite quantity (durations, rates, factors), so
  // non-finite spellings are rejected.
  EXPECT_FALSE(ParseDouble("nan").ok());
  EXPECT_FALSE(ParseDouble("NaN").ok());
  EXPECT_FALSE(ParseDouble("inf").ok());
  EXPECT_FALSE(ParseDouble("-inf").ok());
  EXPECT_FALSE(ParseDouble("infinity").ok());
}

TEST(StringsTest, JsonEscape) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(UnitsTest, ElementConversions) {
  EXPECT_EQ(ElementsToBytes(1024), 8192u);
  EXPECT_EQ(BytesToElements(8192), 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
}

}  // namespace
}  // namespace taskbench
