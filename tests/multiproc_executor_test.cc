#include "runtime/multiproc_executor.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/invariants.h"
#include "check/workload.h"
#include "obs/metrics.h"
#include "runtime/task_graph.h"
#include "runtime/thread_pool_executor.h"

#if !defined(_WIN32)
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <new>
#include <thread>
#endif

namespace taskbench::runtime {
namespace {

KernelFn AddOneKernel() {
  return [](const std::vector<const data::Matrix*>& inputs,
            const std::vector<data::Matrix*>& outputs) -> Status {
    data::Matrix m = *inputs[0];
    for (int64_t i = 0; i < m.size(); ++i) m.data()[i] += 1.0;
    *outputs[0] = std::move(m);
    return Status::OK();
  };
}

TaskSpec SimpleTask(DataId in, DataId out, KernelFn kernel) {
  TaskSpec spec;
  spec.type = "simple";
  spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
  spec.kernel = std::move(kernel);
  return spec;
}

RunOptions ProcOptions(int procs) {
  RunOptions options;
  options.num_procs = procs;
  return options;
}

TEST(MultiProcExecutorTest, SupportedOnThisPlatform) {
#if defined(_WIN32)
  EXPECT_FALSE(MultiProcExecutor::Supported());
#else
  EXPECT_TRUE(MultiProcExecutor::Supported());
#endif
}

#if !defined(_WIN32)

TEST(MultiProcExecutorTest, RunsDependencyChain) {
  TaskGraph graph;
  const DataId d0 = graph.AddData(data::Matrix(2, 2, 0.0));
  const DataId d1 = graph.AddData(static_cast<uint64_t>(32));
  const DataId d2 = graph.AddData(static_cast<uint64_t>(32));
  const DataId d3 = graph.AddData(static_cast<uint64_t>(32));
  ASSERT_TRUE(graph.Submit(SimpleTask(d0, d1, AddOneKernel())).ok());
  ASSERT_TRUE(graph.Submit(SimpleTask(d1, d2, AddOneKernel())).ok());
  ASSERT_TRUE(graph.Submit(SimpleTask(d2, d3, AddOneKernel())).ok());

  MultiProcExecutor executor(ProcOptions(2));
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->records.size(), 3u);
  EXPECT_GT(report->makespan, 0.0);
  EXPECT_FALSE(report->faults.any());
  EXPECT_TRUE(report->attempts.empty());
  for (const TaskRecord& rec : report->records) {
    EXPECT_GE(rec.node, 0);
    EXPECT_LT(rec.node, 2);
    EXPECT_LE(rec.start, rec.end);
  }

  auto result = executor.FetchData(graph, d3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result == data::Matrix(2, 2, 3.0));

  check::InvariantContext context;
  context.num_threads = 2;
  EXPECT_TRUE(check::VerifyReport(graph, *report, context).ok());
}

TEST(MultiProcExecutorTest, SimulationOnlyGraphIsRejected) {
  TaskGraph graph;
  const DataId a = graph.AddData(static_cast<uint64_t>(64));
  const DataId b = graph.AddData(static_cast<uint64_t>(64));
  TaskSpec spec;
  spec.type = "no_kernel";
  spec.params = {{a, Dir::kIn}, {b, Dir::kOut}};
  ASSERT_TRUE(graph.Submit(std::move(spec)).ok());
  MultiProcExecutor executor(ProcOptions(2));
  auto report = executor.Execute(graph);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

// The correctness bar of the scale-out plane: every check-workload
// family must produce bit-identical result values whether it runs on
// one thread, one forked worker, or four forked workers.
TEST(MultiProcExecutorTest, ValuesBitExactAcrossProcessCounts) {
  for (const uint64_t seed : {3u, 11u}) {
    const check::WorkloadSpec spec = check::GenerateSpec(seed);

    auto baseline_built = check::BuildWorkload(spec);
    ASSERT_TRUE(baseline_built.ok());
    RunOptions thread_options;
    thread_options.num_threads = 1;
    thread_options.use_storage = false;
    ThreadPoolExecutor baseline(thread_options);
    ASSERT_TRUE(baseline.Execute(baseline_built->graph).ok());

    for (const int procs : {1, 2, 4}) {
      auto built = check::BuildWorkload(spec);
      ASSERT_TRUE(built.ok());
      MultiProcExecutor executor(ProcOptions(procs));
      auto report = executor.Execute(built->graph);
      ASSERT_TRUE(report.ok())
          << procs << " procs, seed " << seed << ": "
          << report.status().ToString();

      check::InvariantContext context;
      context.num_threads = procs;
      ASSERT_TRUE(check::VerifyReport(built->graph, *report, context).ok());

      for (const DataId d : built->compare) {
        auto got = executor.FetchData(built->graph, d);
        auto want = baseline.FetchData(baseline_built->graph, d);
        ASSERT_TRUE(got.ok() && want.ok());
        ASSERT_TRUE(*got == *want)
            << "datum " << d << " diverged at " << procs
            << " procs on seed " << seed;
      }
    }
  }
}

TEST(MultiProcExecutorTest, TooSmallArenaFailsWithArenaMessage) {
  TaskGraph graph;
  const DataId in = graph.AddData(data::Matrix(64, 64, 1.0));  // 32 KiB
  const DataId out = graph.AddData(static_cast<uint64_t>(64 * 64 * 8));
  ASSERT_TRUE(graph.Submit(SimpleTask(in, out, AddOneKernel())).ok());

  RunOptions options = ProcOptions(2);
  options.shm_arena_bytes = 4096;  // cannot even stage the input
  MultiProcExecutor executor(options);
  auto report = executor.Execute(graph);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(report.status().message().find("shm arena"), std::string::npos);
}

TEST(MultiProcExecutorTest, ArenaExhaustionMidRunFailsTheRun) {
  // Blocks fit individually but the never-free arena cannot hold the
  // whole chain of versions.
  TaskGraph graph;
  const DataId d0 = graph.AddData(data::Matrix(16, 16, 0.0));  // 2 KiB each
  DataId prev = d0;
  for (int i = 0; i < 12; ++i) {
    const DataId next = graph.AddData(static_cast<uint64_t>(16 * 16 * 8));
    ASSERT_TRUE(graph.Submit(SimpleTask(prev, next, AddOneKernel())).ok());
    prev = next;
  }
  RunOptions options = ProcOptions(2);
  options.shm_arena_bytes = 8192;  // ~3 records of 2 KiB + framing
  MultiProcExecutor executor(options);
  auto report = executor.Execute(graph);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("arena"), std::string::npos);
}

// A worker killed mid-task (the kernel _exits the whole process, as a
// segfault or OOM kill would) must be detected via waitpid, its task
// re-dispatched to a surviving worker, and the run completed — with
// the loss visible in the fault counters and the attempt log.
TEST(MultiProcExecutorTest, WorkerCrashMidTaskIsRetriedOnSurvivor) {
  // MAP_SHARED counter mapped before graph construction, so the
  // kernel closure (inherited by every worker at fork) sees one
  // shared count: the first attempt dies, the retry completes.
  void* page = mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(page, MAP_FAILED);
  auto* crashes_left = new (page) std::atomic<int>(1);

  TaskGraph graph;
  const DataId in = graph.AddData(data::Matrix(4, 4, 1.0));
  const DataId out = graph.AddData(static_cast<uint64_t>(128));
  TaskSpec spec;
  spec.type = "crashy";
  spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
  spec.kernel = [crashes_left](
                    const std::vector<const data::Matrix*>& inputs,
                    const std::vector<data::Matrix*>& outputs) -> Status {
    if (crashes_left->fetch_sub(1, std::memory_order_acq_rel) > 0) {
      _exit(17);  // die mid-task, taking the whole worker process down
    }
    *outputs[0] = *inputs[0];
    return Status::OK();
  };
  ASSERT_TRUE(graph.Submit(std::move(spec)).ok());

  RunOptions options = ProcOptions(2);
  options.max_retries = 2;
  options.retry_backoff_s = 1e-4;
  MultiProcExecutor executor(options);
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->faults.dead_nodes, 1);
  EXPECT_GE(report->faults.retries, 1);
  EXPECT_EQ(report->faults.lost_blocks, 0);  // blocks live in the arena
  ASSERT_EQ(report->records.size(), 1u);
  EXPECT_EQ(report->records[0].attempt, 2);

  bool saw_node_lost = false;
  for (const TaskAttempt& attempt : report->attempts) {
    if (attempt.outcome == AttemptOutcome::kNodeLost) saw_node_lost = true;
  }
  EXPECT_TRUE(saw_node_lost);

  auto result = executor.FetchData(graph, out);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result == data::Matrix(4, 4, 1.0));

  check::InvariantContext context;
  context.num_threads = 2;
  context.faulted = true;
  EXPECT_TRUE(check::VerifyReport(graph, *report, context).ok());

  munmap(page, 4096);
}

// Crash-retry on INOUT accumulators must apply every task exactly
// once. Workers only *stage* outputs; the coordinator performs the
// directory stores when it consumes the completion, so a crashed
// attempt can never leak a half-applied update into its retry's
// input. A double-applied increment would show up as 4.0 instead of
// 3.0 in the final accumulator.
TEST(MultiProcExecutorTest, CrashedInOutAttemptIsAppliedExactlyOnce) {
  void* page = mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(page, MAP_FAILED);
  auto* crashes_left = new (page) std::atomic<int>(1);

  TaskGraph graph;
  const DataId acc = graph.AddData(data::Matrix(4, 4, 0.0));
  for (int i = 0; i < 3; ++i) {
    TaskSpec spec;
    spec.type = "accumulate";
    spec.params = {{acc, Dir::kInOut}};
    const bool crashy = i == 1;
    spec.kernel = [crashes_left, crashy](
                      const std::vector<const data::Matrix*>& inputs,
                      const std::vector<data::Matrix*>& outputs) -> Status {
      (void)inputs;
      if (crashy &&
          crashes_left->fetch_sub(1, std::memory_order_acq_rel) > 0) {
        _exit(17);  // die mid-chain, taking the worker down
      }
      data::Matrix& m = *outputs[0];  // aliases the INOUT input value
      for (int64_t j = 0; j < m.size(); ++j) m.data()[j] += 1.0;
      return Status::OK();
    };
    ASSERT_TRUE(graph.Submit(std::move(spec)).ok());
  }

  RunOptions options = ProcOptions(2);
  options.max_retries = 2;
  options.retry_backoff_s = 1e-4;
  MultiProcExecutor executor(options);
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->faults.dead_nodes, 1);
  EXPECT_GE(report->faults.retries, 1);
  ASSERT_EQ(report->records.size(), 3u);

  auto result = executor.FetchData(graph, acc);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result == data::Matrix(4, 4, 3.0))
      << "INOUT chain applied a crashed attempt's update twice";

  check::InvariantContext context;
  context.num_threads = 2;
  context.faulted = true;
  EXPECT_TRUE(check::VerifyReport(graph, *report, context).ok());

  munmap(page, 4096);
}

// The versioned block cache must stay coherent across the INOUT
// crash-retry exactly-once path. A crashed attempt stages its output
// and write-through-caches it under the staged tag, but the
// coordinator never publishes that tag into the directory, so the
// entry is unreachable by construction (and dies with the worker).
// Surviving workers hold cache entries for *earlier* versions of the
// accumulator; after the retry republishes it under a fresh tag,
// those entries must miss. A stale hit anywhere would double-apply
// or drop an increment — the accumulator is the detector.
TEST(MultiProcExecutorTest, BlockCacheStaysCoherentAcrossCrashRetry) {
  void* page = mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(page, MAP_FAILED);
  auto* crashes_left = new (page) std::atomic<int>(1);

  // Every task reads the same shared base block (the cache's bread
  // and butter) and accumulates it into one INOUT datum; the middle
  // task crashes its worker on the first attempt.
  TaskGraph graph;
  const DataId base = graph.AddData(data::Matrix(4, 4, 1.0));
  const DataId acc = graph.AddData(data::Matrix(4, 4, 0.0));
  for (int i = 0; i < 3; ++i) {
    TaskSpec spec;
    spec.type = "accumulate";
    spec.params = {{base, Dir::kIn}, {acc, Dir::kInOut}};
    const bool crashy = i == 1;
    spec.kernel = [crashes_left, crashy](
                      const std::vector<const data::Matrix*>& inputs,
                      const std::vector<data::Matrix*>& outputs) -> Status {
      if (crashy &&
          crashes_left->fetch_sub(1, std::memory_order_acq_rel) > 0) {
        _exit(17);  // die mid-chain, taking the worker down
      }
      data::Matrix& m = *outputs[0];  // aliases the INOUT input value
      for (int64_t j = 0; j < m.size(); ++j) {
        m.data()[j] += inputs[0]->data()[j];
      }
      return Status::OK();
    };
    ASSERT_TRUE(graph.Submit(std::move(spec)).ok());
  }

  obs::MetricsRegistry metrics;
  RunOptions options = ProcOptions(2);
  options.block_cache = true;
  options.max_retries = 2;
  options.retry_backoff_s = 1e-4;
  options.metrics = &metrics;
  MultiProcExecutor executor(options);
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->faults.dead_nodes, 1);
  EXPECT_GE(report->faults.retries, 1);
  ASSERT_EQ(report->records.size(), 3u);
  // The cache was actually in the loop: every first read of a block
  // on a worker is a miss.
  EXPECT_GE(metrics.counter("cache.misses")->value(), 1);

  auto result = executor.FetchData(graph, acc);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result == data::Matrix(4, 4, 3.0))
      << "a stale cached accumulator version leaked through crash-retry";

  check::InvariantContext context;
  context.num_threads = 2;
  context.faulted = true;
  EXPECT_TRUE(check::VerifyReport(graph, *report, context).ok());

  munmap(page, 4096);
}

// Without faults, INOUT republication is the hot invalidation path:
// the same datum is rewritten under a fresh tag on every link of the
// chain while also sitting in worker caches. One worker would serve
// the whole chain from cache if versioning were key-only — the
// version check must force a fresh read per link.
TEST(MultiProcExecutorTest, BlockCacheInOutRewriteNeverServesStale) {
  TaskGraph graph;
  const DataId acc = graph.AddData(data::Matrix(4, 4, 0.0));
  for (int i = 0; i < 6; ++i) {
    TaskSpec spec;
    spec.type = "increment";
    spec.params = {{acc, Dir::kInOut}};
    spec.kernel = [](const std::vector<const data::Matrix*>& inputs,
                     const std::vector<data::Matrix*>& outputs) -> Status {
      (void)inputs;
      data::Matrix& m = *outputs[0];
      for (int64_t j = 0; j < m.size(); ++j) m.data()[j] += 1.0;
      return Status::OK();
    };
    ASSERT_TRUE(graph.Submit(std::move(spec)).ok());
  }

  RunOptions options = ProcOptions(2);
  options.block_cache = true;
  MultiProcExecutor executor(options);
  auto report = executor.Execute(graph);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto result = executor.FetchData(graph, acc);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result == data::Matrix(4, 4, 6.0));

  check::InvariantContext context;
  context.num_threads = 2;
  EXPECT_TRUE(check::VerifyReport(graph, *report, context).ok());
}

#if defined(__linux__)
// fork() without exec from a multi-threaded process inherits other
// threads' locked mutexes into every worker; Execute must refuse
// with a clear error instead of letting workers deadlock.
TEST(MultiProcExecutorTest, MultiThreadedCallerIsRejected) {
  TaskGraph graph;
  const DataId in = graph.AddData(data::Matrix(2, 2, 0.0));
  const DataId out = graph.AddData(static_cast<uint64_t>(32));
  ASSERT_TRUE(graph.Submit(SimpleTask(in, out, AddOneKernel())).ok());

  std::atomic<bool> stop{false};
  std::thread lingering([&stop] {
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  MultiProcExecutor executor(ProcOptions(2));
  auto report = executor.Execute(graph);
  stop.store(true, std::memory_order_release);
  lingering.join();

  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(report.status().message().find("single-threaded"),
            std::string::npos);
}
#endif  // __linux__

TEST(MultiProcExecutorTest, CrashWithoutRetryBudgetFailsTheRun) {
  void* page = mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(page, MAP_FAILED);
  auto* unused = new (page) std::atomic<int>(0);
  (void)unused;

  TaskGraph graph;
  const DataId in = graph.AddData(data::Matrix(4, 4, 1.0));
  const DataId out = graph.AddData(static_cast<uint64_t>(128));
  TaskSpec spec;
  spec.type = "always_crashy";
  spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
  spec.kernel = [](const std::vector<const data::Matrix*>&,
                   const std::vector<data::Matrix*>&) -> Status {
    _exit(17);
  };
  ASSERT_TRUE(graph.Submit(std::move(spec)).ok());

  MultiProcExecutor executor(ProcOptions(2));  // max_retries = 0
  auto report = executor.Execute(graph);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("lost with worker"),
            std::string::npos);
  munmap(page, 4096);
}

#endif  // !_WIN32

}  // namespace
}  // namespace taskbench::runtime
