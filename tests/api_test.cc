#include "algos/api.h"

#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "runtime/run_options.h"
#include "runtime/thread_pool_executor.h"

namespace taskbench::algos {
namespace {

data::Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  data::Matrix m(rows, cols);
  Rng rng(seed);
  data::FillUniform(&m, &rng);
  return m;
}

// The one-call convenience shims were removed with the PR 2
// deprecations: construct an executor and use the Run* entry points.
Result<data::Matrix> Matmul(const data::Matrix& a, const data::Matrix& b,
                            runtime::RunOptions options = {}) {
  options.use_storage = false;  // in-memory pipeline, as the shims ran
  runtime::ThreadPoolExecutor executor(std::move(options));
  TB_ASSIGN_OR_RETURN(MatmulRun run, RunDistributedMatmul(executor, a, b));
  return std::move(run.product);
}

Result<KMeansFit> KMeans(const data::Matrix& samples, int k, int iterations,
                         runtime::RunOptions options = {}) {
  options.use_storage = false;
  runtime::ThreadPoolExecutor executor(std::move(options));
  TB_ASSIGN_OR_RETURN(KMeansRun run,
                      RunDistributedKMeans(executor, samples, k, iterations));
  return std::move(run.fit);
}

TEST(DistributedMatmulTest, MatchesDense) {
  const data::Matrix a = RandomMatrix(37, 23, 1);
  const data::Matrix b = RandomMatrix(23, 41, 2);
  auto c = Matmul(a, b);
  ASSERT_TRUE(c.ok());
  auto expected = data::Multiply(a, b);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(c->ApproxEquals(*expected, 1e-9));
}

TEST(DistributedMatmulTest, ExplicitBlockDim) {
  const data::Matrix a = RandomMatrix(16, 16, 1);
  const data::Matrix b = RandomMatrix(16, 16, 2);
  for (int64_t block : {1, 3, 8, 16, 100}) {
    runtime::RunOptions options;
    options.block_dim = block;
    auto c = Matmul(a, b, options);
    ASSERT_TRUE(c.ok()) << "block " << block;
    auto expected = data::Multiply(a, b);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(c->ApproxEquals(*expected, 1e-9)) << "block " << block;
  }
}

TEST(DistributedMatmulTest, RejectsBadShapes) {
  EXPECT_FALSE(Matmul(RandomMatrix(4, 3, 1), RandomMatrix(4, 3, 2)).ok());
  EXPECT_FALSE(Matmul(data::Matrix(), data::Matrix()).ok());
}

TEST(DistributedKMeansTest, FitsBlobs) {
  // Three well-separated blobs; the fit must recover 3 clusters with
  // low inertia and assign every sample.
  data::Matrix samples(300, 2);
  Rng rng(7);
  for (int64_t r = 0; r < 300; ++r) {
    const double cx = (r % 3 == 0) ? -10 : (r % 3 == 1 ? 0 : 10);
    samples.At(r, 0) = cx + rng.NextGaussian() * 0.5;
    samples.At(r, 1) = cx + rng.NextGaussian() * 0.5;
  }
  auto fit = KMeans(samples, 3, 10);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->centroids.rows(), 3);
  EXPECT_EQ(fit->assignments.size(), 300u);
  // All three clusters used.
  std::set<int> used(fit->assignments.begin(), fit->assignments.end());
  EXPECT_EQ(used.size(), 3u);
  // Inertia per sample is small for tight blobs.
  EXPECT_LT(fit->inertia / 300.0, 2.0);
}

TEST(DistributedKMeansTest, PartitioningInvariant) {
  const data::Matrix samples = RandomMatrix(120, 4, 3);
  runtime::RunOptions coarse;
  coarse.block_dim = 120;
  runtime::RunOptions fine;
  fine.block_dim = 10;
  auto a = KMeans(samples, 4, 5, coarse);
  auto b = KMeans(samples, 4, 5, fine);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same seeds (first k rows), same data -> identical centroids
  // regardless of block dimension.
  EXPECT_TRUE(a->centroids.ApproxEquals(b->centroids, 1e-9));
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_NEAR(a->inertia, b->inertia, 1e-6);
}

TEST(DistributedKMeansTest, RejectsBadK) {
  const data::Matrix samples = RandomMatrix(10, 2, 1);
  EXPECT_FALSE(KMeans(samples, 0, 3).ok());
  EXPECT_FALSE(KMeans(samples, 11, 3).ok());
  EXPECT_FALSE(KMeans(data::Matrix(), 2, 3).ok());
}

TEST(DistributedKMeansTest, SingleClusterIsMean) {
  const data::Matrix samples = RandomMatrix(50, 3, 9);
  auto fit = KMeans(samples, 1, 2);
  ASSERT_TRUE(fit.ok());
  for (int64_t f = 0; f < 3; ++f) {
    double mean = 0;
    for (int64_t r = 0; r < 50; ++r) mean += samples.At(r, f);
    mean /= 50;
    EXPECT_NEAR(fit->centroids.At(0, f), mean, 1e-9);
  }
}

}  // namespace
}  // namespace taskbench::algos
