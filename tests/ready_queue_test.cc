// Edge cases of the master's incremental ready set: per-class
// min-heap ordering, class-priority ties (the scheduler picks the
// lowest TaskId among the heads of the placeable classes, so
// cross-class ties must resolve by id, never by class), empty-class
// heads, and the ClassifyTask truth table.

#include <vector>

#include <gtest/gtest.h>

#include "runtime/ready_queue.h"

namespace taskbench::runtime {
namespace {

TaskSpec CpuSpec() {
  TaskSpec spec;
  spec.processor = Processor::kCpu;
  return spec;
}

TaskSpec GpuSpec() {
  TaskSpec spec;
  spec.processor = Processor::kGpu;
  return spec;
}

TEST(ClassifyTaskTest, TruthTable) {
  // CPU tasks are kCpuOnly regardless of every other input.
  for (bool hybrid : {false, true}) {
    for (bool fits : {false, true}) {
      for (bool spill : {false, true}) {
        EXPECT_EQ(ClassifyTask(CpuSpec(), hybrid, fits, spill),
                  PlacementClass::kCpuOnly);
      }
    }
  }
  // Non-hybrid GPU tasks never spill — even an over-memory one is
  // dispatched to a device (the GPU-OOM runs).
  EXPECT_EQ(ClassifyTask(GpuSpec(), false, false, false),
            PlacementClass::kGpuOnly);
  EXPECT_EQ(ClassifyTask(GpuSpec(), false, true, true),
            PlacementClass::kGpuOnly);
  // Hybrid, does not fit on the device: forced CPU spill.
  EXPECT_EQ(ClassifyTask(GpuSpec(), true, false, false),
            PlacementClass::kCpuSpill);
  EXPECT_EQ(ClassifyTask(GpuSpec(), true, false, true),
            PlacementClass::kCpuSpill);
  // Hybrid, fits: spill budget decides flexible vs GPU-pinned.
  EXPECT_EQ(ClassifyTask(GpuSpec(), true, true, true),
            PlacementClass::kGpuOrCpu);
  EXPECT_EQ(ClassifyTask(GpuSpec(), true, true, false),
            PlacementClass::kGpuOnly);
}

TEST(ReadyQueueTest, StartsEmptyWithNoHeads) {
  ReadyQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  for (size_t c = 0; c < kNumPlacementClasses; ++c) {
    EXPECT_EQ(q.Head(static_cast<PlacementClass>(c)), -1);
  }
}

TEST(ReadyQueueTest, HeadIsMinimumIdNotInsertionOrder) {
  ReadyQueue q;
  q.Push(7, PlacementClass::kCpuOnly);
  q.Push(3, PlacementClass::kCpuOnly);
  q.Push(11, PlacementClass::kCpuOnly);
  EXPECT_EQ(q.Head(PlacementClass::kCpuOnly), 3);
  q.PopHead(PlacementClass::kCpuOnly);
  EXPECT_EQ(q.Head(PlacementClass::kCpuOnly), 7);
  q.PopHead(PlacementClass::kCpuOnly);
  EXPECT_EQ(q.Head(PlacementClass::kCpuOnly), 11);
  q.PopHead(PlacementClass::kCpuOnly);
  EXPECT_EQ(q.Head(PlacementClass::kCpuOnly), -1);
  EXPECT_TRUE(q.empty());
}

TEST(ReadyQueueTest, ClassesAreIndependentAndSizeIsGlobal) {
  ReadyQueue q;
  q.Push(10, PlacementClass::kCpuOnly);
  q.Push(5, PlacementClass::kGpuOnly);
  q.Push(1, PlacementClass::kGpuOrCpu);
  q.Push(20, PlacementClass::kCpuSpill);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.Head(PlacementClass::kCpuOnly), 10);
  EXPECT_EQ(q.Head(PlacementClass::kGpuOnly), 5);
  EXPECT_EQ(q.Head(PlacementClass::kGpuOrCpu), 1);
  EXPECT_EQ(q.Head(PlacementClass::kCpuSpill), 20);
  q.PopHead(PlacementClass::kGpuOnly);
  EXPECT_EQ(q.size(), 3u);
  // Popping one class never disturbs another.
  EXPECT_EQ(q.Head(PlacementClass::kCpuOnly), 10);
  EXPECT_EQ(q.Head(PlacementClass::kGpuOnly), -1);
}

// The scheduler's FIFO-by-submission-id contract: the task the legacy
// full-scan would have picked is the minimum id over the heads of the
// placeable classes. Simulate that selection loop over a mixed
// workload and check the drained order is globally sorted whenever
// every class is placeable.
TEST(ReadyQueueTest, CrossClassTiesResolveByIdWhenAllClassesPlaceable) {
  ReadyQueue q;
  // Interleave ids across classes (id % 4 picks the class).
  std::vector<TaskId> ids = {12, 3, 7, 0, 9, 14, 1, 6, 2, 13, 4, 11};
  for (TaskId id : ids) {
    q.Push(id, static_cast<PlacementClass>(id % 4));
  }
  std::vector<TaskId> drained;
  while (!q.empty()) {
    TaskId best = -1;
    PlacementClass best_class = PlacementClass::kCpuOnly;
    for (size_t c = 0; c < kNumPlacementClasses; ++c) {
      const auto cls = static_cast<PlacementClass>(c);
      const TaskId head = q.Head(cls);
      if (head >= 0 && (best < 0 || head < best)) {
        best = head;
        best_class = cls;
      }
    }
    ASSERT_GE(best, 0);
    q.PopHead(best_class);
    drained.push_back(best);
  }
  std::vector<TaskId> expected = ids;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(drained, expected);
}

TEST(ReadyQueueTest, DuplicateIdsAcrossClassesKeepCountsStraight) {
  // The executor never double-pushes one task, but the structure
  // itself must stay consistent if two classes hold the same id
  // (e.g. a future requeue-after-fault path).
  ReadyQueue q;
  q.Push(5, PlacementClass::kCpuOnly);
  q.Push(5, PlacementClass::kGpuOnly);
  EXPECT_EQ(q.size(), 2u);
  q.PopHead(PlacementClass::kCpuOnly);
  EXPECT_EQ(q.Head(PlacementClass::kGpuOnly), 5);
  q.PopHead(PlacementClass::kGpuOnly);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace taskbench::runtime
