// The workload generator that feeds the fuzzer: specs must be
// deterministic per seed, cover every family across a seed sweep,
// build into executable graphs, and carry closed-form oracles where
// the family has one.

#include <set>

#include <gtest/gtest.h>

#include "check/workload.h"
#include "data/kernels.h"
#include "runtime/run_options.h"
#include "runtime/thread_pool_executor.h"

namespace taskbench::check {
namespace {

TEST(GenerateSpecTest, DeterministicPerSeed) {
  for (uint64_t seed : {0ull, 1ull, 17ull, 123456789ull}) {
    const WorkloadSpec a = GenerateSpec(seed);
    const WorkloadSpec b = GenerateSpec(seed);
    EXPECT_EQ(a.Describe(), b.Describe());
    EXPECT_EQ(a.family, b.family);
    EXPECT_EQ(a.seed, seed);
  }
}

TEST(GenerateSpecTest, SweepCoversEveryFamily) {
  std::set<Family> seen;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    seen.insert(GenerateSpec(seed).family);
  }
  EXPECT_EQ(seen.size(), 7u) << "64 seeds should hit all 7 families";
}

TEST(GenerateSpecTest, MatmulShapesDivideIntoBlocks) {
  for (uint64_t seed = 0; seed < 128; ++seed) {
    const WorkloadSpec spec = GenerateSpec(seed);
    if (spec.family != Family::kMatmul &&
        spec.family != Family::kMatmulFma) {
      continue;
    }
    EXPECT_EQ(spec.rows % spec.block_rows, 0) << spec.Describe();
    EXPECT_EQ(spec.inner % spec.block_cols, 0) << spec.Describe();
    EXPECT_EQ(spec.cols % spec.block_cols_b, 0) << spec.Describe();
  }
}

TEST(BuildWorkloadTest, EveryFamilyBuildsAndRuns) {
  for (int f = 0; f < 7; ++f) {
    WorkloadSpec spec = GenerateSpec(0);
    spec.family = static_cast<Family>(f);
    spec.seed = 5;
    auto built = BuildWorkload(spec);
    ASSERT_TRUE(built.ok()) << spec.Describe() << ": "
                            << built.status().ToString();
    EXPECT_GT(built->graph.num_tasks(), 0) << spec.Describe();
    EXPECT_FALSE(built->compare.empty()) << spec.Describe();

    runtime::RunOptions options;
    options.num_threads = 2;
    options.use_storage = false;
    runtime::ThreadPoolExecutor executor(options);
    auto report = executor.Execute(built->graph);
    EXPECT_TRUE(report.ok())
        << spec.Describe() << ": " << report.status().ToString();
  }
}

TEST(BuildWorkloadTest, SameSeedBuildsIdenticalInitialValues) {
  const WorkloadSpec spec = GenerateSpec(3);
  auto a = BuildWorkload(spec);
  auto b = BuildWorkload(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->graph.num_data(), b->graph.num_data());
  for (runtime::DataId d = 0; d < a->graph.num_data(); ++d) {
    const auto& va = a->graph.data(d).value;
    const auto& vb = b->graph.data(d).value;
    ASSERT_EQ(va.has_value(), vb.has_value());
    if (va.has_value()) {
      EXPECT_TRUE(*va == *vb) << "datum " << d << " differs";
    }
  }
}

TEST(BuildWorkloadTest, MatmulOracleMatchesExecution) {
  WorkloadSpec spec = GenerateSpec(0);
  spec.family = Family::kMatmul;
  spec.seed = 11;
  spec.rows = 24;
  spec.inner = 18;
  spec.cols = 12;
  spec.block_rows = 8;
  spec.block_cols = 6;
  spec.block_cols_b = 6;
  auto built = BuildWorkload(spec);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_FALSE(built->oracle.empty());

  runtime::RunOptions options;
  options.num_threads = 1;
  options.use_storage = false;
  runtime::ThreadPoolExecutor executor(options);
  auto report = executor.Execute(built->graph);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const OracleEntry& entry : built->oracle) {
    auto got = executor.FetchData(built->graph, entry.id);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->ApproxEquals(entry.expected, 1e-9))
        << "datum " << entry.id
        << " max diff: " << got->MaxAbsDiff(entry.expected);
  }
}

}  // namespace
}  // namespace taskbench::check
