// Fuzz smoke: a handful of seeds through the full differential
// matrix (the nightly job runs hundreds). Any divergence is a real
// bug in an executor, a kernel, a scheduler or the checker itself —
// the failure message carries the per-config detail and the seed is
// the complete repro.

#include <cstdlib>

#include <gtest/gtest.h>

#include "check/differential.h"
#include "check/workload.h"
#include "runtime/multiproc_executor.h"

namespace taskbench::check {
namespace {

TEST(DifferentialSmokeTest, FirstSeedsAgreeAcrossTheMatrix) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const WorkloadSpec spec = GenerateSpec(seed);
    const DifferentialResult result =
        RunDifferential(spec, DifferentialOptions{});
    EXPECT_TRUE(result.ok()) << "seed " << seed << " ("
                             << spec.Describe() << ") diverged:\n"
                             << result.Summary();
    EXPECT_GE(result.real_configs, 7);
    EXPECT_GE(result.sim_configs, 7);
  }
}

TEST(DifferentialSmokeTest, RealOnlyModeSkipsSimLegs) {
  DifferentialOptions options;
  options.include_sim = false;
  options.include_faults = false;
  const DifferentialResult result =
      RunDifferential(GenerateSpec(1), options);
  EXPECT_TRUE(result.ok()) << result.Summary();
  EXPECT_EQ(result.sim_configs, 0);
  // 9 thread-pool legs (6 base + 2 block-cache twins + the cost-model
  // hedging leg; the faulty-storage legs are excluded here) plus the
  // three forked multi-process legs where the platform supports them.
  const int expected =
      runtime::MultiProcExecutor::Supported() ? 12 : 9;
  EXPECT_EQ(result.real_configs, expected);
}

TEST(DifferentialSmokeTest, EveryFamilySurvivesOneSweep) {
  for (int f = 0; f < 7; ++f) {
    WorkloadSpec spec = GenerateSpec(2);
    spec.family = static_cast<Family>(f);
    DifferentialOptions options;
    options.include_faults = false;  // keep the smoke fast
    const DifferentialResult result = RunDifferential(spec, options);
    EXPECT_TRUE(result.ok()) << spec.Describe() << " diverged:\n"
                             << result.Summary();
  }
}

TEST(DifferentialSmokeTest, WfBenchSeedsAgreeAcrossTheMatrix) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const WorkloadSpec spec = GenerateWfSpec(seed);
    ASSERT_EQ(spec.family, Family::kWfBench);
    const DifferentialResult result =
        RunDifferential(spec, DifferentialOptions{});
    EXPECT_TRUE(result.ok()) << "wf seed " << seed << " ("
                             << spec.Describe() << ") diverged:\n"
                             << result.Summary();
    EXPECT_GE(result.real_configs, 7);
    EXPECT_GE(result.sim_configs, 7);
  }
}

TEST(DifferentialSmokeTest, WfImportSpecRunsTheMatrix) {
  // An inline WfFormat document through the kWfImport family: the
  // fixture-file variant of this path is wf_import_test; here the
  // differential matrix itself must accept imported graphs.
  WorkloadSpec spec;
  spec.family = Family::kWfImport;
  spec.wf_json = R"({
    "name": "inline-diamond",
    "schemaVersion": "1.4",
    "workflow": {
      "specification": {
        "tasks": [
          {"name": "src_1", "inputFiles": ["in.dat"],
           "outputFiles": ["a.dat", "b.dat"]},
          {"name": "left_gpu_1", "inputFiles": ["a.dat"],
           "outputFiles": ["l.dat"]},
          {"name": "right_1", "inputFiles": ["b.dat"],
           "outputFiles": ["r.dat"]},
          {"name": "sink_1", "inputFiles": ["l.dat", "r.dat"],
           "outputFiles": ["out.dat"]}
        ],
        "files": [
          {"id": "in.dat", "sizeInBytes": 4096},
          {"id": "a.dat", "sizeInBytes": 2048},
          {"id": "b.dat", "sizeInBytes": 2048},
          {"id": "l.dat", "sizeInBytes": 1024},
          {"id": "r.dat", "sizeInBytes": 1024},
          {"id": "out.dat", "sizeInBytes": 512}
        ]
      },
      "execution": {
        "tasks": [
          {"id": "src_1", "runtimeInSeconds": 0.5},
          {"id": "left_gpu_1", "runtimeInSeconds": 2.0},
          {"id": "right_1", "runtimeInSeconds": 1.0},
          {"id": "sink_1", "runtimeInSeconds": 0.25}
        ]
      }
    }
  })";
  const DifferentialResult result =
      RunDifferential(spec, DifferentialOptions{});
  EXPECT_TRUE(result.ok()) << result.Summary();
}

// Long sweep, excluded from a plain `ctest` run: skips unless
// TASKBENCH_STRESS=1 (the labeled CI step sets it; locally use
// `TASKBENCH_STRESS=1 ctest -L fuzz-smoke`).
TEST(DifferentialSmokeTest, LongRandomSweep) {
  if (std::getenv("TASKBENCH_STRESS") == nullptr) {
    GTEST_SKIP() << "set TASKBENCH_STRESS=1 to run the long sweep";
  }
  for (uint64_t seed = 6; seed < 40; ++seed) {
    const WorkloadSpec spec = GenerateSpec(seed);
    const DifferentialResult result =
        RunDifferential(spec, DifferentialOptions{});
    EXPECT_TRUE(result.ok()) << "seed " << seed << " ("
                             << spec.Describe() << ") diverged:\n"
                             << result.Summary();
  }
  for (uint64_t seed = 3; seed < 16; ++seed) {
    const WorkloadSpec spec = GenerateWfSpec(seed);
    const DifferentialResult result =
        RunDifferential(spec, DifferentialOptions{});
    EXPECT_TRUE(result.ok()) << "wf seed " << seed << " ("
                             << spec.Describe() << ") diverged:\n"
                             << result.Summary();
  }
}

}  // namespace
}  // namespace taskbench::check
