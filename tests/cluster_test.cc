#include "hw/cluster.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace taskbench::hw {
namespace {

TEST(ClusterTest, MinotauroMatchesPaperSetup) {
  // Section 4.4.1: 8 nodes x 16 cores + 4 K80 devices (12 GB each).
  const ClusterSpec spec = MinotauroCluster();
  EXPECT_EQ(spec.num_nodes, 8);
  EXPECT_EQ(spec.cores_per_node, 16);
  EXPECT_EQ(spec.gpus_per_node, 4);
  EXPECT_EQ(spec.total_cores(), 128);
  EXPECT_EQ(spec.total_gpus(), 32);
  EXPECT_EQ(spec.gpu.memory_bytes, 12ULL * kGiB);
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(ClusterTest, SingleNodeFactory) {
  const ClusterSpec spec = SingleNode(4, 1);
  EXPECT_EQ(spec.num_nodes, 1);
  EXPECT_EQ(spec.total_cores(), 4);
  EXPECT_EQ(spec.total_gpus(), 1);
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(ClusterTest, ValidateRejectsBadCounts) {
  ClusterSpec spec = MinotauroCluster();
  spec.num_nodes = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = MinotauroCluster();
  spec.cores_per_node = -1;
  EXPECT_FALSE(spec.Validate().ok());
  spec = MinotauroCluster();
  spec.gpus_per_node = -2;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(ClusterTest, ValidateRejectsBadProfiles) {
  ClusterSpec spec = MinotauroCluster();
  spec.cpu_core.flops_per_s = 0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = MinotauroCluster();
  spec.gpu.memory_bytes = 0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = MinotauroCluster();
  spec.bus.bandwidth_bps = -1;
  EXPECT_FALSE(spec.Validate().ok());

  spec = MinotauroCluster();
  spec.shared_disk.aggregate_bw_bps = 0;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(ClusterTest, GpulessNodeSkipsGpuValidation) {
  ClusterSpec spec = SingleNode(4, 0);
  spec.gpu.flops_per_s = 0;  // irrelevant without devices
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(ClusterTest, StorageArchitectureNames) {
  EXPECT_EQ(ToString(StorageArchitecture::kLocalDisk), "local-disk");
  EXPECT_EQ(ToString(StorageArchitecture::kSharedDisk), "shared-disk");
}

TEST(DeviceProfilesTest, SharedDiskSlowerPerStreamThanLocal) {
  // The GPFS model must have higher per-op latency and a lower
  // per-stream ceiling than node-local scratch — the architecture
  // difference behind observations O5/O6.
  const DiskProfile local = LocalNodeDisk();
  const DiskProfile shared = GpfsSharedDisk();
  EXPECT_GT(shared.per_op_latency_s, local.per_op_latency_s);
  EXPECT_LT(shared.per_stream_bw_bps, local.per_stream_bw_bps);
  // But the shared filesystem aggregates more than one local disk.
  EXPECT_GT(shared.aggregate_bw_bps, local.aggregate_bw_bps);
}

TEST(DeviceProfilesTest, GpuUtilizationRampIsMonotone) {
  const GpuDeviceProfile gpu = NvidiaK80();
  double prev = 0;
  for (double work = 1e6; work < 1e14; work *= 10) {
    const double util = gpu.UtilizationFor(work);
    EXPECT_GT(util, prev);
    EXPECT_LE(util, 1.0);
    prev = util;
  }
  EXPECT_EQ(gpu.UtilizationFor(0), 1.0);
}

TEST(DeviceProfilesTest, NvlinkFasterThanPcie) {
  EXPECT_GT(NvlinkClass().bandwidth_bps, Pcie3().bandwidth_bps);
  EXPECT_LT(NvlinkClass().latency_s, Pcie3().latency_s);
}

}  // namespace
}  // namespace taskbench::hw
