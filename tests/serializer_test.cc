#include "storage/serializer.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"

namespace taskbench::storage {
namespace {

data::Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  data::Matrix m(rows, cols);
  Rng rng(seed);
  data::FillUniform(&m, &rng);
  return m;
}

TEST(SerializerTest, RoundTripPreservesContents) {
  const data::Matrix original = RandomMatrix(13, 7, 3);
  std::vector<uint8_t> bytes;
  Serializer::Serialize(original, &bytes);
  EXPECT_EQ(bytes.size(), Serializer::SerializedSize(original));
  auto restored = Serializer::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->ApproxEquals(original, 0));
}

TEST(SerializerTest, EmptyMatrixRoundTrip) {
  const data::Matrix original;
  std::vector<uint8_t> bytes;
  Serializer::Serialize(original, &bytes);
  auto restored = Serializer::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->rows(), 0);
  EXPECT_EQ(restored->cols(), 0);
}

TEST(SerializerTest, DetectsTruncation) {
  const data::Matrix original = RandomMatrix(4, 4, 1);
  std::vector<uint8_t> bytes;
  Serializer::Serialize(original, &bytes);
  bytes.resize(bytes.size() - 8);
  EXPECT_FALSE(Serializer::Deserialize(bytes).ok());
  bytes.resize(5);
  EXPECT_FALSE(Serializer::Deserialize(bytes).ok());
}

TEST(SerializerTest, DetectsCorruptedPayload) {
  const data::Matrix original = RandomMatrix(4, 4, 1);
  std::vector<uint8_t> bytes;
  Serializer::Serialize(original, &bytes);
  bytes.back() ^= 0xff;  // flip payload bits
  const auto result = Serializer::Deserialize(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);
}

TEST(SerializerTest, DetectsBadMagic) {
  const data::Matrix original = RandomMatrix(2, 2, 1);
  std::vector<uint8_t> bytes;
  Serializer::Serialize(original, &bytes);
  bytes[0] ^= 0xff;
  EXPECT_FALSE(Serializer::Deserialize(bytes).ok());
}

TEST(SerializerTest, Crc32KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (IEEE check value).
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Serializer::Crc32(data, sizeof(data)), 0xCBF43926u);
}

TEST(SerializerTest, AppendsToExistingBuffer) {
  const data::Matrix a = RandomMatrix(2, 3, 1);
  const data::Matrix b = RandomMatrix(3, 2, 2);
  std::vector<uint8_t> bytes;
  Serializer::Serialize(a, &bytes);
  const size_t a_size = bytes.size();
  Serializer::Serialize(b, &bytes);
  EXPECT_EQ(bytes.size(), a_size + Serializer::SerializedSize(b));
  // First record still parses when isolated.
  std::vector<uint8_t> first(bytes.begin(), bytes.begin() + a_size);
  auto restored = Serializer::Deserialize(first);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->ApproxEquals(a, 0));
}

class SerializerSizeSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(SerializerSizeSweep, RoundTripAcrossSizes) {
  const int64_t n = GetParam();
  const data::Matrix original = RandomMatrix(n, n, 7);
  std::vector<uint8_t> bytes;
  Serializer::Serialize(original, &bytes);
  auto restored = Serializer::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->ApproxEquals(original, 0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerializerSizeSweep,
                         ::testing::Values(1, 2, 3, 8, 17, 64, 129));

}  // namespace
}  // namespace taskbench::storage
