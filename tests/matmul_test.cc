#include "algos/matmul.h"

#include <gtest/gtest.h>

#include "data/ds_array.h"
#include "data/generators.h"
#include "runtime/thread_pool_executor.h"

namespace taskbench::algos {
namespace {

data::GridSpec Spec(int64_t n, int64_t grid) {
  auto spec = data::GridSpec::CreateFromGridDim(
      data::DatasetSpec{"m", n, n}, grid, grid);
  EXPECT_TRUE(spec.ok());
  return *spec;
}

MatmulOptions RealOptions() {
  MatmulOptions options;
  options.materialize = true;
  return options;
}

/// Runs the workflow for real and compares against the dense product
/// of the collected inputs.
void CheckAgainstDense(const data::GridSpec& a_spec,
                       const data::GridSpec& b_spec) {
  auto wf = BuildMatmul(a_spec, b_spec, RealOptions());
  ASSERT_TRUE(wf.ok());

  runtime::RunOptions exec_options;
  exec_options.num_threads = 4;
  runtime::ThreadPoolExecutor executor(exec_options);
  auto report = executor.Execute(wf->graph);
  ASSERT_TRUE(report.ok());

  // Assemble dense A and B from the registered blocks.
  data::Matrix a_full(a_spec.dataset().rows, a_spec.dataset().cols);
  data::Matrix b_full(b_spec.dataset().rows, b_spec.dataset().cols);
  for (int64_t r = 0; r < a_spec.grid_rows(); ++r) {
    for (int64_t c = 0; c < a_spec.grid_cols(); ++c) {
      const auto e = a_spec.ExtentAt(r, c);
      auto block = executor.FetchData(wf->graph, wf->a[r][c]);
      ASSERT_TRUE(block.ok());
      ASSERT_TRUE(a_full.AssignSlice(e.row0, e.col0, *block).ok());
    }
  }
  for (int64_t r = 0; r < b_spec.grid_rows(); ++r) {
    for (int64_t c = 0; c < b_spec.grid_cols(); ++c) {
      const auto e = b_spec.ExtentAt(r, c);
      auto block = executor.FetchData(wf->graph, wf->b[r][c]);
      ASSERT_TRUE(block.ok());
      ASSERT_TRUE(b_full.AssignSlice(e.row0, e.col0, *block).ok());
    }
  }
  auto expected = data::Multiply(a_full, b_full);
  ASSERT_TRUE(expected.ok());

  data::Matrix c_full(a_spec.dataset().rows, b_spec.dataset().cols);
  for (size_t r = 0; r < wf->c.size(); ++r) {
    for (size_t c = 0; c < wf->c[r].size(); ++c) {
      auto block = executor.FetchData(wf->graph, wf->c[r][c]);
      ASSERT_TRUE(block.ok());
      const auto ea = a_spec.ExtentAt(static_cast<int64_t>(r), 0);
      const auto eb = b_spec.ExtentAt(0, static_cast<int64_t>(c));
      ASSERT_TRUE(c_full.AssignSlice(ea.row0, eb.col0, *block).ok());
    }
  }
  EXPECT_TRUE(c_full.ApproxEquals(*expected, 1e-8));
}

TEST(MatmulBuildTest, SingleBlockDegeneratesToOneTask) {
  auto wf = BuildMatmul(Spec(8, 1), MatmulOptions{});
  ASSERT_TRUE(wf.ok());
  EXPECT_EQ(wf->graph.num_tasks(), 1);
  EXPECT_EQ(wf->graph.task(0).spec.type, "matmul_func");
}

TEST(MatmulBuildTest, TaskCountsMatchGridAlgebra) {
  // g x g grid: g^3 matmul_func tasks and g^2 * (g - 1) add_func.
  for (int64_t g : {2, 3, 4}) {
    auto wf = BuildMatmul(Spec(32, g), MatmulOptions{});
    ASSERT_TRUE(wf.ok());
    int64_t matmuls = 0, adds = 0;
    for (runtime::TaskId t = 0; t < wf->graph.num_tasks(); ++t) {
      const auto& type = wf->graph.task(t).spec.type;
      if (type == "matmul_func") ++matmuls;
      if (type == "add_func") ++adds;
    }
    EXPECT_EQ(matmuls, g * g * g) << "grid " << g;
    EXPECT_EQ(adds, g * g * (g - 1)) << "grid " << g;
  }
}

TEST(MatmulBuildTest, DagIsWideAndShallow) {
  // Figure 6b: high task parallelism, few dependency levels.
  auto wf = BuildMatmul(Spec(64, 4), MatmulOptions{});
  ASSERT_TRUE(wf.ok());
  EXPECT_EQ(wf->graph.MaxWidth(), 64);      // all matmul_func parallel
  EXPECT_EQ(wf->graph.MaxHeight(), 3);      // matmul + 2 add levels
}

TEST(MatmulBuildTest, FmaVariantRenamesTasks) {
  MatmulOptions options;
  options.fma = true;
  auto wf = BuildMatmul(Spec(8, 2), options);
  ASSERT_TRUE(wf.ok());
  EXPECT_EQ(wf->graph.task(0).spec.type, "matmul_fma_func");
}

TEST(MatmulBuildTest, RejectsIncompatibleSpecs) {
  auto a = data::GridSpec::Create(data::DatasetSpec{"a", 8, 8}, 4, 4);
  auto b = data::GridSpec::Create(data::DatasetSpec{"b", 16, 8}, 4, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(BuildMatmul(*a, *b, MatmulOptions{}).ok());

  auto b2 = data::GridSpec::Create(data::DatasetSpec{"b", 8, 8}, 2, 4);
  ASSERT_TRUE(b2.ok());
  EXPECT_FALSE(BuildMatmul(*a, *b2, MatmulOptions{}).ok());
}

TEST(MatmulRealTest, SquareMatchesDense) {
  CheckAgainstDense(Spec(16, 2), Spec(16, 2));
  CheckAgainstDense(Spec(24, 3), Spec(24, 3));
}

TEST(MatmulRealTest, SingleBlockMatchesDense) {
  CheckAgainstDense(Spec(8, 1), Spec(8, 1));
}

TEST(MatmulRealTest, RectangularGridsMatchDense) {
  auto a = data::GridSpec::Create(data::DatasetSpec{"a", 12, 8}, 4, 4);
  auto b = data::GridSpec::Create(data::DatasetSpec{"b", 8, 20}, 4, 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  CheckAgainstDense(*a, *b);
}

TEST(MatmulCostTest, MatmulFuncIsComputeBoundCubic) {
  const perf::TaskCost cost = MatmulFuncCost(256, 256, 256, false);
  EXPECT_DOUBLE_EQ(cost.parallel.flops, 2.0 * 256 * 256 * 256);
  EXPECT_EQ(cost.serial.flops, 0.0);   // fully parallel task
  EXPECT_EQ(cost.serial.bytes, 0.0);
  EXPECT_EQ(cost.h2d_bytes, 2u * 256 * 256 * 8);
  EXPECT_EQ(cost.d2h_bytes, 1u * 256 * 256 * 8);
}

TEST(MatmulCostTest, AddFuncIsMemoryBoundLinear) {
  const perf::TaskCost cost = AddFuncCost(256, 256);
  EXPECT_DOUBLE_EQ(cost.parallel.flops, 256.0 * 256.0);
  EXPECT_DOUBLE_EQ(cost.parallel.bytes, 3.0 * 8.0 * 256 * 256);
  // Two orders of magnitude less compute than matmul_func on the
  // same block (the Section 5.2.1 complexity gap).
  const perf::TaskCost mm = MatmulFuncCost(256, 256, 256, false);
  EXPECT_GT(mm.parallel.flops / cost.parallel.flops, 100.0);
}

TEST(MatmulCostTest, WorkingSetTracksPaperRule) {
  // ~3x block bytes (Section 5.3).
  const perf::TaskCost cost = MatmulFuncCost(1024, 1024, 1024, false);
  const uint64_t block = 1024ULL * 1024 * 8;
  EXPECT_GE(cost.gpu_working_set_bytes, 3 * block);
  EXPECT_LE(cost.gpu_working_set_bytes, 4 * block);
}

}  // namespace
}  // namespace taskbench::algos
