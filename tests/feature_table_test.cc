#include "stats/feature_table.h"

#include <cmath>

#include <gtest/gtest.h>

namespace taskbench::stats {
namespace {

TEST(FeatureTableTest, AddNumericTracksShape) {
  FeatureTable table;
  ASSERT_TRUE(table.AddNumeric("a", {1, 2, 3}).ok());
  EXPECT_EQ(table.num_rows(), 3u);
  EXPECT_EQ(table.num_columns(), 1u);
  // Mismatched length rejected.
  EXPECT_FALSE(table.AddNumeric("b", {1, 2}).ok());
  // Duplicate name rejected.
  EXPECT_FALSE(table.AddNumeric("a", {4, 5, 6}).ok());
}

TEST(FeatureTableTest, ColumnLookup) {
  FeatureTable table;
  ASSERT_TRUE(table.AddNumeric("a", {1, 2, 3}).ok());
  auto col = table.Column("a");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(*col, (std::vector<double>{1, 2, 3}));
  EXPECT_FALSE(table.Column("missing").ok());
}

TEST(FeatureTableTest, OneHotEncoding) {
  FeatureTable table;
  ASSERT_TRUE(
      table.AddCategorical("proc", {"CPU", "GPU", "CPU", "GPU"}).ok());
  EXPECT_EQ(table.num_columns(), 2u);
  auto cpu = table.Column("proc=CPU");
  auto gpu = table.Column("proc=GPU");
  ASSERT_TRUE(cpu.ok());
  ASSERT_TRUE(gpu.ok());
  EXPECT_EQ(*cpu, (std::vector<double>{1, 0, 1, 0}));
  EXPECT_EQ(*gpu, (std::vector<double>{0, 1, 0, 1}));
}

TEST(FeatureTableTest, OneHotComplementaryColumnsAnticorrelate) {
  // The paper's Figure 11 shows exactly -1 between CPU and GPU (and
  // between the two storage / scheduling options).
  FeatureTable table;
  ASSERT_TRUE(
      table.AddCategorical("proc", {"CPU", "GPU", "CPU", "GPU"}).ok());
  auto matrix = table.SpearmanMatrix();
  ASSERT_TRUE(matrix.ok());
  auto rho = matrix->At("proc=CPU", "proc=GPU");
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, -1.0, 1e-12);
}

TEST(FeatureTableTest, DiagonalIsOne) {
  FeatureTable table;
  ASSERT_TRUE(table.AddNumeric("a", {1, 2, 3, 4}).ok());
  ASSERT_TRUE(table.AddNumeric("b", {4, 3, 2, 1}).ok());
  auto matrix = table.SpearmanMatrix();
  ASSERT_TRUE(matrix.ok());
  EXPECT_NEAR(matrix->values[0][0], 1.0, 1e-12);
  EXPECT_NEAR(matrix->values[1][1], 1.0, 1e-12);
  EXPECT_NEAR(matrix->values[0][1], -1.0, 1e-12);
  EXPECT_EQ(matrix->values[0][1], matrix->values[1][0]);  // symmetric
}

TEST(FeatureTableTest, DropConstantColumns) {
  FeatureTable table;
  ASSERT_TRUE(table.AddNumeric("varies", {1, 2, 3}).ok());
  ASSERT_TRUE(table.AddNumeric("constant", {7, 7, 7}).ok());
  const auto dropped = table.DropConstantColumns();
  EXPECT_EQ(dropped, (std::vector<std::string>{"constant"}));
  EXPECT_EQ(table.num_columns(), 1u);
  EXPECT_TRUE(table.Column("varies").ok());
}

TEST(FeatureTableTest, MatrixNeedsTwoSamples) {
  FeatureTable table;
  ASSERT_TRUE(table.AddNumeric("a", {1}).ok());
  EXPECT_FALSE(table.SpearmanMatrix().ok());
}

TEST(FeatureTableTest, AtUnknownNameFails) {
  FeatureTable table;
  ASSERT_TRUE(table.AddNumeric("a", {1, 2}).ok());
  ASSERT_TRUE(table.AddNumeric("b", {2, 1}).ok());
  auto matrix = table.SpearmanMatrix();
  ASSERT_TRUE(matrix.ok());
  EXPECT_FALSE(matrix->At("a", "nope").ok());
}

TEST(FeatureTableTest, ToStringRendersAllCells) {
  FeatureTable table;
  ASSERT_TRUE(table.AddNumeric("alpha", {1, 2, 3}).ok());
  ASSERT_TRUE(table.AddNumeric("beta", {3, 1, 2}).ok());
  auto matrix = table.SpearmanMatrix();
  ASSERT_TRUE(matrix.ok());
  const std::string rendered = matrix->ToString();
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("1.000"), std::string::npos);
}

TEST(FeatureTableTest, PearsonAndSpearmanDifferOnNonlinear) {
  FeatureTable table;
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.5 * i));
  }
  ASSERT_TRUE(table.AddNumeric("x", x).ok());
  ASSERT_TRUE(table.AddNumeric("y", y).ok());
  auto spearman = table.SpearmanMatrix();
  auto pearson = table.PearsonMatrix();
  ASSERT_TRUE(spearman.ok());
  ASSERT_TRUE(pearson.ok());
  EXPECT_NEAR(spearman->values[0][1], 1.0, 1e-12);
  EXPECT_LT(pearson->values[0][1], 0.95);  // linear fit is imperfect
}

}  // namespace
}  // namespace taskbench::stats
