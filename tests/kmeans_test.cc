#include "algos/kmeans.h"

#include <cmath>

#include <gtest/gtest.h>

#include "runtime/thread_pool_executor.h"

namespace taskbench::algos {
namespace {

data::GridSpec RowSpec(int64_t rows, int64_t cols, int64_t grid_rows) {
  auto spec = data::GridSpec::CreateFromGridDim(
      data::DatasetSpec{"x", rows, cols}, grid_rows, 1);
  EXPECT_TRUE(spec.ok());
  return *spec;
}

TEST(KMeansBuildTest, RejectsColumnChunking) {
  auto spec = data::GridSpec::Create(data::DatasetSpec{"x", 64, 8}, 32, 4);
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(BuildKMeans(*spec, KMeansOptions{}).ok());
}

TEST(KMeansBuildTest, RejectsBadParameters) {
  const data::GridSpec spec = RowSpec(64, 4, 4);
  KMeansOptions options;
  options.num_clusters = 0;
  EXPECT_FALSE(BuildKMeans(spec, options).ok());
  options.num_clusters = 2;
  options.iterations = 0;
  EXPECT_FALSE(BuildKMeans(spec, options).ok());
}

TEST(KMeansBuildTest, DagIsNarrowAndDeep) {
  // Figure 6a: one partial_sum level + merge per iteration.
  const data::GridSpec spec = RowSpec(64, 4, 4);
  KMeansOptions options;
  options.iterations = 3;
  auto wf = BuildKMeans(spec, options);
  ASSERT_TRUE(wf.ok());
  EXPECT_EQ(wf->graph.num_tasks(), 3 * (4 + 1));
  EXPECT_EQ(wf->graph.MaxWidth(), 4);
  EXPECT_EQ(wf->graph.MaxHeight(), 6);  // (partial, merge) x 3
}

TEST(KMeansBuildTest, TaskTypesAndProcessors) {
  const data::GridSpec spec = RowSpec(64, 4, 4);
  KMeansOptions options;
  options.processor = Processor::kGpu;
  options.iterations = 1;
  auto wf = BuildKMeans(spec, options);
  ASSERT_TRUE(wf.ok());
  int partials = 0, merges = 0;
  for (runtime::TaskId t = 0; t < wf->graph.num_tasks(); ++t) {
    const auto& task = wf->graph.task(t);
    if (task.spec.type == "partial_sum") {
      ++partials;
      EXPECT_EQ(task.spec.processor, Processor::kGpu);
    } else if (task.spec.type == "merge") {
      ++merges;
      // The reduction always stays on CPU.
      EXPECT_EQ(task.spec.processor, Processor::kCpu);
    }
  }
  EXPECT_EQ(partials, 4);
  EXPECT_EQ(merges, 1);
}

/// Reference (dense, single-threaded) Lloyd iteration for comparison.
data::Matrix ReferenceLloyd(const data::Matrix& samples,
                            data::Matrix centroids, int iterations) {
  const int64_t k = centroids.rows();
  const int64_t n = samples.cols();
  for (int it = 0; it < iterations; ++it) {
    data::Matrix sums(k, n + 1, 0.0);
    for (int64_t r = 0; r < samples.rows(); ++r) {
      int64_t best = 0;
      double best_dist = 1e300;
      for (int64_t c = 0; c < k; ++c) {
        double dist = 0;
        for (int64_t f = 0; f < n; ++f) {
          const double d = samples.At(r, f) - centroids.At(c, f);
          dist += d * d;
        }
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      for (int64_t f = 0; f < n; ++f) sums.At(best, f) += samples.At(r, f);
      sums.At(best, n) += 1.0;
    }
    for (int64_t c = 0; c < k; ++c) {
      if (sums.At(c, n) > 0) {
        for (int64_t f = 0; f < n; ++f) {
          centroids.At(c, f) = sums.At(c, f) / sums.At(c, n);
        }
      }
    }
  }
  return centroids;
}

TEST(KMeansRealTest, MatchesDenseReferenceAcrossPartitionings) {
  // The distributed result must be identical regardless of how many
  // blocks the dataset is cut into.
  for (int64_t grid_rows : {1, 2, 4, 8}) {
    const data::GridSpec spec = RowSpec(256, 4, grid_rows);
    KMeansOptions options;
    options.materialize = true;
    options.blobs = true;
    options.num_clusters = 3;
    options.iterations = 4;
    options.seed = 11;
    auto wf = BuildKMeans(spec, options);
    ASSERT_TRUE(wf.ok());

    // Dense reference input: collect the blocks.
    data::Matrix samples(256, 4);
    int64_t row = 0;
    for (runtime::DataId block_id : wf->blocks) {
      const auto& block = *wf->graph.data(block_id).value;
      ASSERT_TRUE(samples.AssignSlice(row, 0, block).ok());
      row += block.rows();
    }
    const data::Matrix init = *wf->graph.data(wf->centroids).value;

    runtime::RunOptions exec_options;
    exec_options.num_threads = 4;
    runtime::ThreadPoolExecutor executor(exec_options);
    auto report = executor.Execute(wf->graph);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    auto result = executor.FetchData(wf->graph, wf->centroids);
    ASSERT_TRUE(result.ok());
    const data::Matrix expected = ReferenceLloyd(samples, init, 4);
    EXPECT_TRUE(result->ApproxEquals(expected, 1e-9))
        << "grid rows " << grid_rows
        << ", max diff " << result->MaxAbsDiff(expected);
  }
}

TEST(KMeansRealTest, ConvergesOnBlobs) {
  const data::GridSpec spec = RowSpec(512, 3, 4);
  KMeansOptions options;
  options.materialize = true;
  options.blobs = true;
  options.num_clusters = 3;
  options.iterations = 10;
  auto wf = BuildKMeans(spec, options);
  ASSERT_TRUE(wf.ok());

  runtime::ThreadPoolExecutor executor(runtime::RunOptions{});
  auto report = executor.Execute(wf->graph);
  ASSERT_TRUE(report.ok());
  auto final_centroids = executor.FetchData(wf->graph, wf->centroids);
  ASSERT_TRUE(final_centroids.ok());

  // Another two iterations barely move the centroids (converged).
  KMeansOptions more = options;
  more.iterations = 12;
  auto wf2 = BuildKMeans(spec, more);
  ASSERT_TRUE(wf2.ok());
  runtime::ThreadPoolExecutor executor2(runtime::RunOptions{});
  ASSERT_TRUE(executor2.Execute(wf2->graph).ok());
  auto more_centroids = executor2.FetchData(wf2->graph, wf2->centroids);
  ASSERT_TRUE(more_centroids.ok());
  EXPECT_LT(final_centroids->MaxAbsDiff(*more_centroids), 0.5);
}

TEST(KMeansRealTest, SkewedDataRunsAndDiffersFromUniform) {
  const data::GridSpec spec = RowSpec(128, 4, 2);
  KMeansOptions uniform;
  uniform.materialize = true;
  uniform.num_clusters = 2;
  uniform.iterations = 2;
  KMeansOptions skewed = uniform;
  skewed.skew = 0.5;

  auto wf_u = BuildKMeans(spec, uniform);
  auto wf_s = BuildKMeans(spec, skewed);
  ASSERT_TRUE(wf_u.ok());
  ASSERT_TRUE(wf_s.ok());
  EXPECT_FALSE(wf_u->graph.data(wf_u->blocks[0])
                   .value->ApproxEquals(*wf_s->graph.data(wf_s->blocks[0])
                                             .value, 0));
  runtime::ThreadPoolExecutor executor(runtime::RunOptions{});
  EXPECT_TRUE(executor.Execute(wf_s->graph).ok());
}

TEST(KMeansCostTest, ParallelFractionScalesLinearlyWithClusters) {
  const perf::TaskCost c10 = PartialSumCost(1000, 100, 10);
  const perf::TaskCost c100 = PartialSumCost(1000, 100, 100);
  EXPECT_NEAR(c100.parallel.bytes / c10.parallel.bytes, 10.0, 1e-9);
  EXPECT_NEAR(c100.parallel.flops / c10.parallel.flops, 10.0, 1e-9);
}

TEST(KMeansCostTest, SerialFractionIndependentOfClusters) {
  const perf::TaskCost c10 = PartialSumCost(1000, 100, 10);
  const perf::TaskCost c1000 = PartialSumCost(1000, 100, 1000);
  EXPECT_DOUBLE_EQ(c10.serial.bytes, c1000.serial.bytes);
}

TEST(KMeansCostTest, PartiallyParallelShape) {
  // Partially parallel task (Figure 4b): both fractions present.
  const perf::TaskCost cost = PartialSumCost(48828, 100, 10);
  EXPECT_GT(cost.serial.bytes, 0.0);
  EXPECT_GT(cost.parallel.bytes, 0.0);
  EXPECT_GT(cost.gpu_working_set_bytes, 0u);
}

TEST(KMeansCostTest, MergeIsSerialOnly) {
  const perf::TaskCost cost = MergeCost(256, 100, 10);
  EXPECT_EQ(cost.parallel.flops, 0.0);
  EXPECT_GT(cost.serial.bytes, 0.0);
}

}  // namespace
}  // namespace taskbench::algos
