// Tests of hybrid CPU+GPU placement (RunOptions::hybrid):
// GPU-targeted tasks spill onto idle CPU cores when devices are busy
// and fall back to CPU when their working set cannot fit the device.

#include <gtest/gtest.h>

#include "common/units.h"
#include "hw/cluster.h"
#include "runtime/simulated_executor.h"

namespace taskbench::runtime {
namespace {

/// `n` independent GPU-targeted tasks; each takes ~`gpu_seconds` on a
/// device and `cpu_slowdown` times that on one CPU core (tuned via
/// the task's GPU efficiency curve).
TaskGraph GpuTasks(int n, double gpu_seconds, double cpu_slowdown = 2.0,
                   uint64_t working_set = 64 * kMiB) {
  TaskGraph graph;
  for (int i = 0; i < n; ++i) {
    const DataId in = graph.AddData(1024);
    const DataId out = graph.AddData(1024);
    TaskSpec spec;
    spec.type = "accel";
    spec.processor = Processor::kGpu;
    spec.params = {{in, Dir::kIn}, {out, Dir::kOut}};
    // CPU time = slowdown x gpu_seconds at the 16 GF/s core rate;
    // scale the task's effective GPU throughput to match gpu_seconds.
    spec.cost.parallel.flops = cpu_slowdown * gpu_seconds * 16e9;
    spec.cost.gpu_curve.peak_fraction = cpu_slowdown * 16e9 / 360e9;
    spec.cost.gpu_working_set_bytes = working_set;
    spec.cost.input_bytes = 1024;
    spec.cost.output_bytes = 1024;
    EXPECT_TRUE(graph.Submit(std::move(spec)).ok());
  }
  return graph;
}

RunOptions Hybrid(bool on) {
  RunOptions options;
  options.hybrid = on;
  return options;
}

TEST(HybridTest, SpillsOntoIdleCpusWhenDevicesBusy) {
  // 2 GPUs, 8 cores. 10 one-second GPU tasks at 2x CPU slowdown:
  // GPU-only needs 5 waves; hybrid runs 2 on GPUs and spreads the
  // rest over cores (2 s each, all parallel) -> faster end-to-end and
  // mixed placements.
  const hw::ClusterSpec cluster = hw::SingleNode(8, 2);
  TaskGraph graph = GpuTasks(10, 1.0);

  auto gpu_only = SimulatedExecutor(cluster, Hybrid(false)).Execute(graph);
  auto hybrid = SimulatedExecutor(cluster, Hybrid(true)).Execute(graph);
  ASSERT_TRUE(gpu_only.ok());
  ASSERT_TRUE(hybrid.ok());

  int on_cpu = 0, on_gpu = 0;
  for (const TaskRecord& rec : hybrid->records) {
    (rec.processor == Processor::kCpu ? on_cpu : on_gpu)++;
  }
  EXPECT_GT(on_cpu, 0);
  EXPECT_GT(on_gpu, 0);
  EXPECT_LT(hybrid->makespan, gpu_only->makespan);
  for (const TaskRecord& rec : gpu_only->records) {
    EXPECT_EQ(rec.processor, Processor::kGpu);
  }
}

TEST(HybridTest, DoesNotSpillSlowTasks) {
  // 20x CPU slowdown exceeds the 4x budget: spilling would create
  // stragglers, so hybrid keeps everything on the devices and matches
  // GPU-only exactly.
  const hw::ClusterSpec cluster = hw::SingleNode(8, 2);
  TaskGraph graph = GpuTasks(10, 1.0, /*cpu_slowdown=*/20.0);
  auto gpu_only = SimulatedExecutor(cluster, Hybrid(false)).Execute(graph);
  auto hybrid = SimulatedExecutor(cluster, Hybrid(true)).Execute(graph);
  ASSERT_TRUE(gpu_only.ok());
  ASSERT_TRUE(hybrid.ok());
  EXPECT_DOUBLE_EQ(hybrid->makespan, gpu_only->makespan);
  for (const TaskRecord& rec : hybrid->records) {
    EXPECT_EQ(rec.processor, Processor::kGpu);
  }
}

TEST(HybridTest, GpuStillPreferredWhenDevicesFree) {
  // Fewer tasks than devices: everything stays on GPU even in hybrid
  // mode (no reason to take the 8x slower cores).
  const hw::ClusterSpec cluster = hw::SingleNode(8, 4);
  TaskGraph graph = GpuTasks(3, 1.0);
  auto report = SimulatedExecutor(cluster, Hybrid(true)).Execute(graph);
  ASSERT_TRUE(report.ok());
  for (const TaskRecord& rec : report->records) {
    EXPECT_EQ(rec.processor, Processor::kGpu);
  }
}

TEST(HybridTest, OomTasksFallBackToCpuInsteadOfFailing) {
  const hw::ClusterSpec cluster = hw::SingleNode(8, 2);
  // A 30x slowdown would normally forbid spilling, but OOM tasks
  // must run on CPU regardless.
  TaskGraph graph = GpuTasks(4, 0.1, /*cpu_slowdown=*/30.0,
                             /*working_set=*/13ULL * kGiB);

  auto strict = SimulatedExecutor(cluster, Hybrid(false)).Execute(graph);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsOutOfMemory());

  auto hybrid = SimulatedExecutor(cluster, Hybrid(true)).Execute(graph);
  ASSERT_TRUE(hybrid.ok());
  for (const TaskRecord& rec : hybrid->records) {
    EXPECT_EQ(rec.processor, Processor::kCpu);  // nothing fit the GPU
  }
}

TEST(HybridTest, GpulessClusterRunsGpuTasksOnCpu) {
  const hw::ClusterSpec cluster = hw::SingleNode(8, 0);
  TaskGraph graph = GpuTasks(4, 0.1);
  auto strict = SimulatedExecutor(cluster, Hybrid(false)).Execute(graph);
  EXPECT_FALSE(strict.ok());  // stalls: no GPU pool at all
  auto hybrid = SimulatedExecutor(cluster, Hybrid(true)).Execute(graph);
  ASSERT_TRUE(hybrid.ok());
  EXPECT_EQ(hybrid->records.size(), 4u);
}

TEST(HybridTest, WorksWithDataLocalityScheduler) {
  RunOptions options = Hybrid(true);
  options.policy = SchedulingPolicy::kDataLocality;
  const hw::ClusterSpec cluster = hw::SingleNode(8, 2);
  TaskGraph graph = GpuTasks(12, 0.5);
  auto report = SimulatedExecutor(cluster, options).Execute(graph);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(), 12u);
}

TEST(HybridTest, ImprovesMakespanOnImbalancedClusters) {
  // Many cheap GPU tasks on the Minotauro 128:32 shape: hybrid should
  // beat GPU-only by using the idle 96+ cores.
  TaskGraph graph = GpuTasks(512, 0.2);
  auto gpu_only = SimulatedExecutor(hw::MinotauroCluster(), Hybrid(false))
                      .Execute(graph);
  auto hybrid = SimulatedExecutor(hw::MinotauroCluster(), Hybrid(true))
                    .Execute(graph);
  ASSERT_TRUE(gpu_only.ok());
  ASSERT_TRUE(hybrid.ok());
  EXPECT_LT(hybrid->makespan, gpu_only->makespan);
}

}  // namespace
}  // namespace taskbench::runtime
