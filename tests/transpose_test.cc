#include "algos/transpose.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "perf/cost_model.h"
#include "runtime/thread_pool_executor.h"

namespace taskbench::algos {
namespace {

data::GridSpec Spec(int64_t rows, int64_t cols, int64_t br, int64_t bc) {
  auto spec =
      data::GridSpec::Create(data::DatasetSpec{"t", rows, cols}, br, bc);
  EXPECT_TRUE(spec.ok());
  return *spec;
}

TEST(TransposeBuildTest, OneTaskPerBlockFullyParallelDag) {
  auto wf = BuildTranspose(Spec(64, 32, 16, 16), TransposeOptions{});
  ASSERT_TRUE(wf.ok());
  EXPECT_EQ(wf->graph.num_tasks(), 8);
  EXPECT_EQ(wf->graph.MaxWidth(), 8);   // all independent
  EXPECT_EQ(wf->graph.MaxHeight(), 1);  // single level
}

TEST(TransposeRealTest, MatchesDenseTranspose) {
  data::Matrix a(24, 18);
  Rng rng(3);
  data::FillUniform(&a, &rng);

  TransposeOptions options;
  options.materialize = true;
  options.values = &a;
  auto wf = BuildTranspose(Spec(24, 18, 8, 6), options);
  ASSERT_TRUE(wf.ok());

  runtime::ThreadPoolExecutor executor(runtime::RunOptions{});
  auto report = executor.Execute(wf->graph);
  ASSERT_TRUE(report.ok());

  // Reassemble and compare element-wise.
  data::Matrix t(18, 24);
  const auto& spec = Spec(24, 18, 8, 6);
  for (int64_t i = 0; i < spec.grid_rows(); ++i) {
    for (int64_t j = 0; j < spec.grid_cols(); ++j) {
      auto block = executor.FetchData(
          wf->graph,
          wf->out[static_cast<size_t>(j)][static_cast<size_t>(i)]);
      ASSERT_TRUE(block.ok());
      const auto e = spec.ExtentAt(i, j);
      ASSERT_TRUE(t.AssignSlice(e.col0, e.row0, *block).ok());
    }
  }
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(t.At(c, r), a.At(r, c));
    }
  }
}

TEST(TransposeRealTest, RaggedBlocksRoundTrip) {
  data::Matrix a(10, 7);
  Rng rng(9);
  data::FillUniform(&a, &rng);
  TransposeOptions options;
  options.materialize = true;
  options.values = &a;
  auto wf = BuildTranspose(Spec(10, 7, 4, 3), options);
  ASSERT_TRUE(wf.ok());
  runtime::ThreadPoolExecutor executor(runtime::RunOptions{});
  ASSERT_TRUE(executor.Execute(wf->graph).ok());
  auto corner = executor.FetchData(wf->graph, wf->out[2][2]);
  ASSERT_TRUE(corner.ok());
  EXPECT_EQ(corner->rows(), 1);  // 7 cols -> last block 1 col -> 1 row
  EXPECT_EQ(corner->cols(), 2);  // 10 rows -> last block 2 rows
}

TEST(TransposeCostTest, ZeroArithmeticIntensity) {
  const perf::TaskCost cost = TransposeFuncCost(1024, 1024);
  EXPECT_EQ(cost.parallel.flops, 0.0);
  EXPECT_GT(cost.parallel.bytes, 0.0);
  EXPECT_EQ(cost.serial.bytes, 0.0);  // fully parallel task
}

TEST(TransposeCostTest, GpuAlwaysLoses) {
  // The extreme end of the low-complexity family: pure data movement
  // means the GPU pays the bus twice for zero math.
  const perf::CostModel model(hw::MinotauroCluster());
  for (int64_t n : {1024, 4096, 16384}) {
    const perf::TaskCost cost = TransposeFuncCost(n, n);
    EXPECT_GT(model.GpuParallelFraction(cost) + model.CpuGpuComm(cost),
              model.CpuParallelFraction(cost))
        << n;
  }
}

TEST(TransposeBuildTest, ValuesShapeMismatchRejected) {
  data::Matrix wrong(5, 5);
  TransposeOptions options;
  options.materialize = true;
  options.values = &wrong;
  EXPECT_FALSE(BuildTranspose(Spec(24, 18, 8, 6), options).ok());
}

}  // namespace
}  // namespace taskbench::algos
