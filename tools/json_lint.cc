// json_lint — validates that each file argument is one well-formed
// JSON document. Exit 0 when every file parses, 1 otherwise, with one
// diagnostic line per bad file. The CI telemetry smoke job runs the
// trace and metrics exports through this linter.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: json_lint FILE...\n");
    return 2;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i]);
    if (!file) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ++bad;
      continue;
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    const std::string text = contents.str();
    const taskbench::Status status = taskbench::obs::ValidateJson(text);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i],
                   status.ToString().c_str());
      ++bad;
      continue;
    }
    std::printf("%s: ok (%zu bytes)\n", argv[i], text.size());
  }
  return bad == 0 ? 0 : 1;
}
