// Prints a canonical 64-bit digest of the simulated executor's
// RunReport for a battery of graph shapes, clusters and option
// combinations. Two builds that print identical digests made
// bit-identical scheduling, placement and timing decisions — the
// cross-build determinism check used to validate scheduler/executor
// refactors (the in-build variant lives in tests/determinism_test.cc).
//
// Usage: report_digest [--list]
//
// --list additionally splits every configuration's digest into its
// canonical sections (header / records / attempts) so a cross-build
// mismatch can be localized without diffing full reports.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "check/digest.h"
#include "common/logging.h"
#include "common/strings.h"
#include "hw/cluster.h"
#include "runtime/simulated_executor.h"
#include "runtime/task_graph.h"

namespace taskbench {
namespace {

using check::CanonicalReport;
using check::Fnv1a;
using check::kFnvOffsetBasis;
using runtime::DataId;
using runtime::Dir;
using runtime::RunReport;
using runtime::TaskGraph;
using runtime::TaskId;
using runtime::TaskSpec;

perf::TaskCost CostFor(uint64_t bytes, bool gpu) {
  perf::TaskCost cost;
  cost.parallel.flops = static_cast<double>(bytes) * 4;
  cost.parallel.bytes = static_cast<double>(bytes);
  cost.serial.flops = static_cast<double>(bytes) / 8;
  cost.serial.bytes = static_cast<double>(bytes) / 8;
  cost.input_bytes = bytes;
  cost.output_bytes = bytes;
  if (gpu) {
    cost.h2d_bytes = bytes;
    cost.d2h_bytes = bytes;
    cost.num_transfers = 2;
    cost.gpu_working_set_bytes = 2 * bytes;
  }
  return cost;
}

TaskSpec Spec(const std::string& type, std::vector<runtime::Param> params,
              uint64_t bytes, Processor proc) {
  TaskSpec spec;
  spec.type = type;
  spec.params = std::move(params);
  spec.processor = proc;
  spec.cost = CostFor(bytes, proc == Processor::kGpu);
  return spec;
}

/// Independent tasks over a shared input pool, CPU + GPU mix.
TaskGraph WideMixed(int n) {
  TaskGraph graph;
  std::vector<DataId> pool;
  for (int i = 0; i < 16; ++i) {
    pool.push_back(graph.AddData(1 << 20, "", i % 4));
  }
  for (int t = 0; t < n; ++t) {
    const DataId out = graph.AddData(512 << 10);
    const Processor proc = t % 3 == 0 ? Processor::kGpu : Processor::kCpu;
    TB_CHECK_OK(graph.Submit(Spec("wide", {{pool[static_cast<size_t>(t % 16)],
                                            Dir::kIn},
                                           {out, Dir::kOut}},
                                  256 << 10, proc)).status());
  }
  return graph;
}

/// Chain with INOUT accumulator — exercises WAR/WAW dependencies.
TaskGraph InoutChain(int n) {
  TaskGraph graph;
  const DataId acc = graph.AddData(2 << 20);
  for (int t = 0; t < n; ++t) {
    const DataId aux = graph.AddData(128 << 10);
    TB_CHECK_OK(graph.Submit(Spec("chain", {{aux, Dir::kIn},
                                            {acc, Dir::kInOut}},
                                  128 << 10, Processor::kCpu)).status());
  }
  return graph;
}

/// Fan-out / fan-in diamond: one producer, `width` middles, one reduce.
TaskGraph Diamond(int width) {
  TaskGraph graph;
  const DataId root = graph.AddData(4 << 20);
  std::vector<runtime::Param> reduce_params;
  std::vector<DataId> mids;
  for (int i = 0; i < width; ++i) {
    mids.push_back(graph.AddData(1 << 20));
  }
  std::vector<runtime::Param> fan_params{{root, Dir::kIn}};
  for (DataId m : mids) fan_params.push_back({m, Dir::kOut});
  TB_CHECK_OK(
      graph.Submit(Spec("fan", fan_params, 1 << 20, Processor::kCpu))
          .status());
  std::vector<DataId> outs;
  for (int i = 0; i < width; ++i) {
    const DataId out = graph.AddData(256 << 10);
    outs.push_back(out);
    const Processor proc = i % 2 == 0 ? Processor::kGpu : Processor::kCpu;
    TB_CHECK_OK(graph.Submit(Spec("mid", {{mids[static_cast<size_t>(i)],
                                           Dir::kIn},
                                          {out, Dir::kOut}},
                                  512 << 10, proc)).status());
  }
  reduce_params.push_back({graph.AddData(64 << 10), Dir::kOut});
  for (DataId o : outs) reduce_params.push_back({o, Dir::kIn});
  TB_CHECK_OK(
      graph.Submit(Spec("reduce", reduce_params, 2 << 20, Processor::kCpu))
          .status());
  return graph;
}

/// Pseudo-random layered DAG with mixed sizes and processors.
TaskGraph RandomDag(int n, uint32_t seed) {
  TaskGraph graph;
  std::mt19937 rng(seed);
  std::vector<DataId> producible;
  for (int i = 0; i < 8; ++i) {
    producible.push_back(graph.AddData(1 << 20));
  }
  for (int t = 0; t < n; ++t) {
    std::vector<runtime::Param> params;
    const int num_inputs = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < num_inputs; ++i) {
      params.push_back(
          {producible[rng() % producible.size()], Dir::kIn});
    }
    const uint64_t bytes = (64u << 10) << (rng() % 5);
    const DataId out = graph.AddData(bytes);
    params.push_back({out, Dir::kOut});
    const Processor proc = rng() % 4 == 0 ? Processor::kGpu : Processor::kCpu;
    TB_CHECK_OK(graph.Submit(Spec("rand", std::move(params), bytes, proc))
                    .status());
    producible.push_back(out);
  }
  return graph;
}

/// GPU tasks whose working set exceeds K80 memory in hybrid mode —
/// forced CPU spill; in non-hybrid mode the run fails with OOM.
TaskGraph OomWide(int n) {
  TaskGraph graph;
  const DataId in = graph.AddData(1 << 20);
  for (int t = 0; t < n; ++t) {
    const DataId out = graph.AddData(1 << 20);
    TaskSpec spec = Spec("oom", {{in, Dir::kIn}, {out, Dir::kOut}}, 1 << 20,
                         Processor::kGpu);
    spec.cost.gpu_working_set_bytes = 64ull << 30;  // > 12 GB K80
    TB_CHECK_OK(graph.Submit(std::move(spec)).status());
  }
  return graph;
}

void DigestAll(bool list) {
  struct NamedGraph {
    std::string name;
    TaskGraph graph;
  };
  std::vector<NamedGraph> graphs;
  graphs.push_back({"wide_mixed_200", WideMixed(200)});
  graphs.push_back({"inout_chain_100", InoutChain(100)});
  graphs.push_back({"diamond_64", Diamond(64)});
  graphs.push_back({"random_300", RandomDag(300, 1234)});
  graphs.push_back({"oom_wide_40", OomWide(40)});

  struct NamedCluster {
    std::string name;
    hw::ClusterSpec spec;
  };
  std::vector<NamedCluster> clusters;
  clusters.push_back({"minotauro", hw::MinotauroCluster()});
  hw::ClusterSpec tiny = hw::MinotauroCluster();
  tiny.name = "tiny";
  tiny.num_nodes = 2;
  tiny.cores_per_node = 3;
  tiny.gpus_per_node = 1;
  clusters.push_back({"tiny", tiny});

  uint64_t all = kFnvOffsetBasis;
  for (const NamedGraph& g : graphs) {
    for (const NamedCluster& c : clusters) {
      for (auto storage : {hw::StorageArchitecture::kSharedDisk,
                           hw::StorageArchitecture::kLocalDisk}) {
        for (auto policy : {SchedulingPolicy::kTaskGenerationOrder,
                            SchedulingPolicy::kDataLocality}) {
          for (bool hybrid : {false, true}) {
            runtime::RunOptions options;
            options.storage = storage;
            options.policy = policy;
            options.hybrid = hybrid;
            runtime::SimulatedExecutor executor(c.spec, options);
            auto report = executor.Execute(g.graph);
            std::string canonical;
            if (report.ok()) {
              canonical = CanonicalReport(*report);
            } else {
              canonical = StrFormat("status=%s\n",
                                    report.status().ToString().c_str());
            }
            const uint64_t digest = Fnv1a(kFnvOffsetBasis, canonical);
            all = Fnv1a(all, canonical);
            std::printf("%-16s %-10s %-6s %-16s hybrid=%d  %016llx\n",
                        g.name.c_str(), c.name.c_str(),
                        ToString(storage).c_str(), ToString(policy).c_str(),
                        hybrid ? 1 : 0,
                        static_cast<unsigned long long>(digest));
            if (list && report.ok()) {
              std::printf(
                  "  header=%016llx records=%016llx attempts=%016llx\n",
                  static_cast<unsigned long long>(Fnv1a(
                      kFnvOffsetBasis, check::CanonicalHeader(*report))),
                  static_cast<unsigned long long>(Fnv1a(
                      kFnvOffsetBasis, check::CanonicalRecords(*report))),
                  static_cast<unsigned long long>(Fnv1a(
                      kFnvOffsetBasis, check::CanonicalAttempts(*report))));
            }
          }
        }
      }
    }
  }
  std::printf("TOTAL %016llx\n", static_cast<unsigned long long>(all));
}

}  // namespace
}  // namespace taskbench

int main(int argc, char** argv) {
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else {
      std::fprintf(stderr, "usage: report_digest [--list]\n");
      return 2;
    }
  }
  taskbench::DigestAll(list);
  return 0;
}
