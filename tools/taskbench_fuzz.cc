// Randomized differential fuzzer: derives a workload from each seed
// (graph family, shapes, block sizes, processor mix) and executes it
// across the executor matrix — thread counts, storage backends,
// kernel variants, schedulers, storage architectures, fault injection
// — requiring every configuration to agree with the baseline and
// every report to pass the invariant checker. Any disagreement is a
// divergence: the tool prints the seed, the offending configuration
// and a single-seed repro command, then exits non-zero.
//
// Usage: taskbench_fuzz [--seeds A..B | --seeds N] [--wf-seeds A..B]
//                       [--threads T] [--no-faults] [--no-sim]
//                       [--no-multiproc] [--verbose]
//
//   --seeds 0..99    inclusive seed range (default 0..19)
//   --seeds 100      shorthand for 0..99
//   --wf-seeds A..B  also fuzz the WfBench workflow corpus
//                    (GenerateWfSpec: generate -> WfFormat round-trip
//                    -> build -> full differential matrix). Given
//                    without --seeds, only the wf corpus runs.
//   --threads T      worker count of the parallel legs (default 4)
//   --no-faults      skip the fault-injection legs
//   --no-sim         skip the simulated-executor matrix
//   --no-multiproc   skip the multi-process (shm arena) legs
//   --verbose        print every seed's workload and config counts

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/differential.h"
#include "check/workload.h"

namespace {

bool ParseSeeds(const char* arg, uint64_t* first, uint64_t* last) {
  const char* dots = std::strstr(arg, "..");
  char* end = nullptr;
  if (dots == nullptr) {
    const unsigned long long n = std::strtoull(arg, &end, 10);
    if (end == arg || *end != '\0' || n == 0) return false;
    *first = 0;
    *last = n - 1;
    return true;
  }
  const unsigned long long a = std::strtoull(arg, &end, 10);
  if (end != dots) return false;
  const char* rest = dots + 2;
  const unsigned long long b = std::strtoull(rest, &end, 10);
  if (end == rest || *end != '\0' || b < a) return false;
  *first = a;
  *last = b;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: taskbench_fuzz [--seeds A..B | --seeds N] "
               "[--wf-seeds A..B] [--threads T] [--no-faults] [--no-sim] "
               "[--no-multiproc] [--verbose]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t first = 0;
  uint64_t last = 19;
  bool have_seeds = false;
  uint64_t wf_first = 0;
  uint64_t wf_last = 0;
  bool have_wf_seeds = false;
  bool verbose = false;
  taskbench::check::DifferentialOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      if (!ParseSeeds(argv[++i], &first, &last)) return Usage();
      have_seeds = true;
    } else if (std::strcmp(argv[i], "--wf-seeds") == 0 && i + 1 < argc) {
      if (!ParseSeeds(argv[++i], &wf_first, &wf_last)) return Usage();
      have_wf_seeds = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
      if (options.threads < 1) return Usage();
    } else if (std::strcmp(argv[i], "--no-faults") == 0) {
      options.include_faults = false;
    } else if (std::strcmp(argv[i], "--no-sim") == 0) {
      options.include_sim = false;
    } else if (std::strcmp(argv[i], "--no-multiproc") == 0) {
      options.include_multiproc = false;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      return Usage();
    }
  }

  // --wf-seeds alone restricts the run to the wf corpus (the repro
  // command a wf divergence prints must not drag the base corpus in).
  const bool run_base = have_seeds || !have_wf_seeds;

  uint64_t divergent_seeds = 0;
  uint64_t total = 0;
  const auto run_corpus = [&](uint64_t lo, uint64_t hi, bool wf) {
    for (uint64_t seed = lo; seed <= hi; ++seed) {
      const taskbench::check::WorkloadSpec spec =
          wf ? taskbench::check::GenerateWfSpec(seed)
             : taskbench::check::GenerateSpec(seed);
      const taskbench::check::DifferentialResult result =
          taskbench::check::RunDifferential(spec, options);
      if (verbose || !result.ok()) {
        std::printf("%sseed %llu: %s (%d real + %d sim configs)%s\n",
                    wf ? "wf-" : "", static_cast<unsigned long long>(seed),
                    spec.Describe().c_str(), result.real_configs,
                    result.sim_configs, result.ok() ? " ok" : " DIVERGED");
      }
      if (!result.ok()) {
        ++divergent_seeds;
        std::fputs(result.Summary().c_str(), stdout);
        std::printf("  repro: taskbench_fuzz --%s %llu..%llu%s%s%s\n",
                    wf ? "wf-seeds" : "seeds",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(seed),
                    options.include_faults ? "" : " --no-faults",
                    options.include_sim ? "" : " --no-sim",
                    options.include_multiproc ? "" : " --no-multiproc");
      }
      ++total;
    }
  };
  if (run_base) run_corpus(first, last, /*wf=*/false);
  if (have_wf_seeds) run_corpus(wf_first, wf_last, /*wf=*/true);

  std::printf("%llu/%llu seeds clean\n",
              static_cast<unsigned long long>(total - divergent_seeds),
              static_cast<unsigned long long>(total));
  return divergent_seeds == 0 ? 0 : 1;
}
