// taskbench — command-line front end of the library.
//
// Subcommands:
//   run        Run one simulated experiment and print its metrics.
//   exec       Really execute a distributed matmul on this host, on
//              the in-process thread pool (--workers=4) or the forked
//              shared-memory workers (--workers=4proc). The executor
//              can also be named directly: --executor=threads|procs.
//   serve      Run the resident multi-tenant workflow service under a
//              seeded open-loop arrival stream and print its
//              per-tenant ServiceReport as JSON (stdout is the JSON
//              document; progress goes to stderr). Options:
//                --executor=threads|sim  (procs refuses: its workers
//                  are forked, see docs/SCALE_OUT.md)
//                --runners=N --duration=S --tenants=N
//                --rate=HZ --skew=F      tenant i offers rate*F^i /s
//                --arrivals=poisson|bursty|heavytail --seed=N
//                --max-in-flight=N --max-queued=N (admission caps)
//                --deadline=S --cancel-every=N (tenant 0 cancels
//                  every Nth of its own submissions)
//   import     Import a WfFormat (WfCommons) workflow instance, print
//              its structure, and run it. Options:
//                --executor=sim|threads|procs  (default sim: the
//                  simulation keeps the instance's true byte sizes;
//                  threads/procs execute a materialized miniature and
//                  print a bit-exact value digest)
//                --policy=gen-order|locality|cost  --workers=N
//                --export=PATH  re-serialize the imported instance as
//                  normalized WfFormat JSON (round-trip check)
//                --stats-only   validate + print structure, don't run
//   sweep      Sweep the paper's grid dimensions for one algorithm.
//   correlate  Run the correlation sample set; print/export the matrix.
//   recommend  Auto-tune block dimension + processor for a workload.
//   dag        Print the workflow DAG in Graphviz DOT format.
//
// Common options:
//   --algorithm=matmul|matmul-fma|kmeans|logreg|transpose
//   --dataset=matmul-8gb|matmul-32gb|kmeans-10gb|kmeans-100gb|...
//     or --rows=N --cols=N for a custom dataset
//   --grid=RxC          grid dimension (e.g. 16x16 or 256x1)
//   --clusters=K        K-means algorithm-specific parameter
//   --iterations=N      iterative algorithms' outer loop
//   --processor=cpu|gpu --storage=local|shared
//   --policy=gen-order|locality|cost --hybrid (CPU+GPU spill placement)
//   --disable-hedging   cost policy: no speculative straggler twins
//   --disable-escalation cost policy: no CPU->GPU upgrades (hybrid)
//   --faults=PLAN       fault-injection plan, comma-separated entries:
//                         crash@T:nN      node N crashes at time T
//                         gpuloss@T:nN    node N loses one GPU at T
//                         slow@T:nN:xF    node N computes F x slower
//                         storage:pP[:sS] disk ops fail w.p. P (seed S)
//   --retries=N         per-task retry budget under faults (default 0)
//   --retry-backoff=S   base of the exponential retry backoff, seconds
//   --csv=PATH          write results as CSV
//   --trace=PATH        write a chrome://tracing JSON of the run
//   --flow-events       add dependency arrows to the trace
//   --metrics-json=PATH write run telemetry (counters, histograms,
//                       scheduler phase breakdown) as JSON
//   --gantt             print an ASCII occupancy chart of the run
//
// Examples:
//   taskbench run --algorithm=kmeans --dataset=kmeans-10gb --grid=256x1
//       --processor=gpu --storage=shared --policy=gen-order
//   taskbench run --algorithm=kmeans --grid=256x1 --storage=local
//       --faults=crash@2.0:n3,storage:p0.001 --retries=3
//   taskbench sweep --algorithm=matmul --dataset=matmul-8gb --csv=out.csv
//   taskbench recommend --algorithm=kmeans --dataset=kmeans-10gb

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "algos/api.h"
#include "algos/kmeans.h"
#include "algos/logreg.h"
#include "algos/matmul.h"
#include "algos/transpose.h"
#include "analysis/csv.h"
#include "analysis/experiment.h"
#include "analysis/factor_space.h"
#include "analysis/guidelines.h"
#include "analysis/report.h"
#include "common/args.h"
#include "common/strings.h"
#include "data/generators.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "check/digest.h"
#include "runtime/executor_factory.h"
#include "runtime/fault.h"
#include "runtime/metrics_export.h"
#include "runtime/multiproc_executor.h"
#include "runtime/scheduler.h"
#include "runtime/simulated_executor.h"
#include "runtime/thread_pool_executor.h"
#include "runtime/trace.h"
#include "service/load.h"
#include "service/workflow_service.h"
#include "wf/build.h"
#include "wf/import.h"
#include "wf/instance.h"

namespace tb = taskbench;
using tb::analysis::Algorithm;
using tb::analysis::ExperimentConfig;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

tb::Result<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "matmul") return Algorithm::kMatmul;
  if (name == "matmul-fma") return Algorithm::kMatmulFma;
  if (name == "kmeans") return Algorithm::kKMeans;
  return tb::Status::InvalidArgument(
      "unknown --algorithm '" + name +
      "' (matmul, matmul-fma, kmeans; logreg/transpose support `dag`)");
}

tb::Result<tb::data::DatasetSpec> ParseDataset(const tb::Args& args,
                                               Algorithm algorithm) {
  using tb::data::PaperDatasets;
  const std::string name = args.GetString("dataset");
  if (name == "matmul-8gb") return PaperDatasets::Matmul8GB();
  if (name == "matmul-32gb") return PaperDatasets::Matmul32GB();
  if (name == "matmul-2gb") return PaperDatasets::Matmul2GB();
  if (name == "matmul-128mb") return PaperDatasets::Matmul128MB();
  if (name == "kmeans-10gb") return PaperDatasets::KMeans10GB();
  if (name == "kmeans-100gb") return PaperDatasets::KMeans100GB();
  if (name == "kmeans-1gb") return PaperDatasets::KMeans1GB();
  if (name == "kmeans-100mb") return PaperDatasets::KMeans100MB();
  if (!name.empty()) {
    return tb::Status::InvalidArgument("unknown --dataset '" + name + "'");
  }
  TB_ASSIGN_OR_RETURN(const int64_t rows, args.GetInt("rows", 0));
  TB_ASSIGN_OR_RETURN(const int64_t cols, args.GetInt("cols", 0));
  if (rows > 0 && cols > 0) {
    return tb::data::DatasetSpec{"custom", rows, cols};
  }
  // Sensible defaults per algorithm family.
  return algorithm == Algorithm::kKMeans ? PaperDatasets::KMeans10GB()
                                         : PaperDatasets::Matmul8GB();
}

tb::Result<std::pair<int64_t, int64_t>> ParseGrid(const std::string& text) {
  const auto parts = tb::Split(text, 'x');
  if (parts.size() != 2) {
    return tb::Status::InvalidArgument("--grid expects RxC, e.g. 16x16");
  }
  TB_ASSIGN_OR_RETURN(const int64_t r, tb::ParseInt64(parts[0]));
  TB_ASSIGN_OR_RETURN(const int64_t c, tb::ParseInt64(parts[1]));
  if (r <= 0 || c <= 0) {
    return tb::Status::InvalidArgument("--grid dimensions must be positive");
  }
  return std::make_pair(r, c);
}

tb::Result<ExperimentConfig> BuildConfig(const tb::Args& args) {
  ExperimentConfig config;
  TB_ASSIGN_OR_RETURN(config.algorithm,
                      ParseAlgorithm(args.GetString("algorithm", "matmul")));
  TB_ASSIGN_OR_RETURN(config.dataset, ParseDataset(args, config.algorithm));
  TB_ASSIGN_OR_RETURN(
      const auto grid,
      ParseGrid(args.GetString(
          "grid", config.algorithm == Algorithm::kKMeans ? "256x1" : "8x8")));
  config.grid_rows = grid.first;
  config.grid_cols = grid.second;
  TB_ASSIGN_OR_RETURN(const int64_t clusters, args.GetInt("clusters", 10));
  config.clusters = static_cast<int>(clusters);
  TB_ASSIGN_OR_RETURN(const int64_t iters, args.GetInt("iterations", 1));
  config.iterations = static_cast<int>(iters);

  const std::string processor = args.GetString("processor", "cpu");
  if (processor == "cpu") {
    config.processor = tb::Processor::kCpu;
  } else if (processor == "gpu") {
    config.processor = tb::Processor::kGpu;
  } else {
    return tb::Status::InvalidArgument("--processor expects cpu|gpu");
  }
  const std::string storage = args.GetString("storage", "shared");
  if (storage == "local") {
    config.run.storage = tb::hw::StorageArchitecture::kLocalDisk;
  } else if (storage == "shared") {
    config.run.storage = tb::hw::StorageArchitecture::kSharedDisk;
  } else {
    return tb::Status::InvalidArgument("--storage expects local|shared");
  }
  const std::string policy = args.GetString("policy", "gen-order");
  const auto parsed_policy = tb::runtime::ParseSchedulingPolicy(policy);
  if (!parsed_policy.has_value()) {
    return tb::Status::InvalidArgument(
        "--policy expects gen-order|locality|cost, got '" + policy + "'");
  }
  config.run.policy = *parsed_policy;
  TB_ASSIGN_OR_RETURN(config.run.sched.disable_hedging,
                      args.GetBool("disable-hedging", false));
  TB_ASSIGN_OR_RETURN(config.run.sched.disable_escalation,
                      args.GetBool("disable-escalation", false));
  if (args.Has("faults")) {
    TB_ASSIGN_OR_RETURN(config.run.faults,
                        tb::runtime::FaultPlan::Parse(
                            args.GetString("faults")));
  }
  TB_ASSIGN_OR_RETURN(const int64_t retries, args.GetInt("retries", 0));
  config.run.max_retries = static_cast<int>(retries);
  TB_ASSIGN_OR_RETURN(
      config.run.retry_backoff_s,
      args.GetDouble("retry-backoff", config.run.retry_backoff_s));
  config.label = tb::StrFormat(
      "%s/%s/%lldx%lld/%s/%s/%s",
      ToString(config.algorithm).c_str(), config.dataset.name.c_str(),
      static_cast<long long>(config.grid_rows),
      static_cast<long long>(config.grid_cols),
      tb::ToString(config.processor).c_str(),
      tb::hw::ToString(config.run.storage).c_str(),
      tb::ToString(config.run.policy).c_str());
  return config;
}

/// Builds the workflow DAG of `config` (also used to re-derive
/// dependency edges for --flow-events trace export).
tb::Result<tb::runtime::TaskGraph> BuildGraphFor(
    const ExperimentConfig& config) {
  TB_ASSIGN_OR_RETURN(
      tb::data::GridSpec spec,
      tb::data::GridSpec::CreateFromGridDim(config.dataset, config.grid_rows,
                                            config.grid_cols));
  if (config.algorithm == Algorithm::kKMeans) {
    tb::algos::KMeansOptions options;
    options.num_clusters = config.clusters;
    options.iterations = config.iterations;
    options.processor = config.processor;
    TB_ASSIGN_OR_RETURN(auto wf, tb::algos::BuildKMeans(spec, options));
    return std::move(wf.graph);
  }
  tb::algos::MatmulOptions options;
  options.processor = config.processor;
  options.fma = config.algorithm == Algorithm::kMatmulFma;
  TB_ASSIGN_OR_RETURN(auto wf, tb::algos::BuildMatmul(spec, options));
  return std::move(wf.graph);
}

/// Runs one experiment, optionally in hybrid placement mode
/// (--hybrid re-executes the built workflow with spilling enabled).
tb::Result<tb::analysis::ExperimentResult> RunMaybeHybrid(
    const tb::Args& args, const ExperimentConfig& config) {
  TB_ASSIGN_OR_RETURN(const bool hybrid, args.GetBool("hybrid", false));
  if (!hybrid) return tb::analysis::RunExperiment(config);

  TB_ASSIGN_OR_RETURN(tb::analysis::ExperimentResult result,
                      tb::analysis::DescribeExperiment(config));
  result.oom = false;  // hybrid degrades OOM tasks to CPU
  TB_ASSIGN_OR_RETURN(tb::runtime::TaskGraph graph, BuildGraphFor(config));
  tb::runtime::RunOptions exec = config.run;
  exec.hybrid = true;
  tb::runtime::SimulatedExecutor executor(config.cluster, exec);
  TB_ASSIGN_OR_RETURN(result.report, executor.Execute(graph));
  result.stages_by_type = result.report.MeanStagesByType();
  result.parallel_task_time = result.report.MeanLevelTime();
  result.makespan = result.report.makespan;
  return result;
}

int CmdRun(const tb::Args& args) {
  auto config = BuildConfig(args);
  if (!config.ok()) return Fail(config.status().ToString());
  tb::obs::MetricsRegistry registry;
  if (args.Has("metrics-json")) config->run.metrics = &registry;
  auto result = RunMaybeHybrid(args, *config);
  if (!result.ok()) return Fail(result.status().ToString());

  std::printf("experiment: %s\n", config->label.c_str());
  if (result->oom) {
    std::printf("GPU OOM: %s\n", result->oom_detail.c_str());
    return 0;
  }
  std::printf("block size: %s   blocks: %lld   DAG: width %lld, "
              "height %lld\n",
              tb::HumanBytes(result->block_bytes).c_str(),
              static_cast<long long>(result->num_blocks),
              static_cast<long long>(result->dag_width),
              static_cast<long long>(result->dag_height));
  std::printf("makespan: %s   parallel-task time: %s   scheduler "
              "overhead: %s\n",
              tb::HumanSeconds(result->makespan).c_str(),
              tb::HumanSeconds(result->parallel_task_time).c_str(),
              tb::HumanSeconds(result->report.scheduler_overhead).c_str());
  const tb::runtime::SchedulerPhaseBreakdown& phases =
      result->report.sched_phases;
  if (phases.any()) {
    std::printf("scheduler phases: ready-pop %s   locality %s   "
                "slot-pick %s\n",
                tb::HumanSeconds(phases.ready_pop_s).c_str(),
                tb::HumanSeconds(phases.locality_s).c_str(),
                tb::HumanSeconds(phases.slot_pick_s).c_str());
  }
  const tb::runtime::FaultStats& faults = result->report.faults;
  if (faults.any()) {
    std::printf(
        "faults: %lld injected (%lld storage)   retries: %lld   "
        "recomputed tasks: %lld   lost blocks: %lld   dead nodes: %lld"
        "   hedges: %lld\n",
        static_cast<long long>(faults.faults_injected),
        static_cast<long long>(faults.storage_faults),
        static_cast<long long>(faults.retries),
        static_cast<long long>(faults.recomputed_tasks),
        static_cast<long long>(faults.lost_blocks),
        static_cast<long long>(faults.dead_nodes),
        static_cast<long long>(faults.hedges));
  }
  tb::analysis::TextTable stages({"task type", "count", "deser", "serial",
                                  "parallel", "comm", "ser"});
  const auto counts = result->report.CountByType();
  for (const auto& [type, mean] : result->stages_by_type) {
    stages.AddRow({type, tb::StrFormat("%d", counts.at(type)),
                   tb::HumanSeconds(mean.deserialize),
                   tb::HumanSeconds(mean.serial_fraction),
                   tb::HumanSeconds(mean.parallel_fraction),
                   tb::HumanSeconds(mean.cpu_gpu_comm),
                   tb::HumanSeconds(mean.serialize)});
  }
  std::printf("%s", stages.ToString().c_str());

  auto gantt = args.GetBool("gantt", false);
  if (!gantt.ok()) return Fail(gantt.status().ToString());
  if (*gantt) {
    std::printf("\n%s", tb::analysis::AsciiGantt(result->report).c_str());
  }
  if (args.Has("trace")) {
    auto flow = args.GetBool("flow-events", false);
    if (!flow.ok()) return Fail(flow.status().ToString());
    tb::runtime::TraceOptions trace_options;
    tb::runtime::TaskGraph graph;
    if (*flow) {
      // The run consumed its graph; rebuild it (deterministic) to
      // recover the dependency edges the arrows are drawn from.
      auto rebuilt = BuildGraphFor(*config);
      if (!rebuilt.ok()) return Fail(rebuilt.status().ToString());
      graph = std::move(*rebuilt);
      trace_options.graph = &graph;
      trace_options.flow_events = true;
    }
    const tb::Status status = tb::runtime::WriteChromeTrace(
        result->report, args.GetString("trace"), trace_options);
    if (!status.ok()) return Fail(status.ToString());
    std::printf("trace written to %s\n", args.GetString("trace").c_str());
  }
  if (args.Has("metrics-json")) {
    const tb::Status status = tb::runtime::WriteMetricsJson(
        result->report, &registry, args.GetString("metrics-json"));
    if (!status.ok()) return Fail(status.ToString());
    std::printf("metrics written to %s\n",
                args.GetString("metrics-json").c_str());
  }
  if (args.Has("csv")) {
    const tb::Status status = tb::analysis::WriteFile(
        args.GetString("csv"),
        tb::analysis::TaskRecordsCsv(result->report));
    if (!status.ok()) return Fail(status.ToString());
    std::printf("task records written to %s\n",
                args.GetString("csv").c_str());
  }
  return 0;
}

/// `--workers=4` runs on the in-process thread pool; `--workers=4proc`
/// on the forked shared-memory workers (the scale-out plane).
tb::Result<std::pair<int, bool>> ParseWorkers(const std::string& text) {
  std::string digits = text;
  bool procs = false;
  if (digits.size() > 4 && digits.substr(digits.size() - 4) == "proc") {
    procs = true;
    digits = digits.substr(0, digits.size() - 4);
  }
  TB_ASSIGN_OR_RETURN(const int64_t n, tb::ParseInt64(digits));
  if (n <= 0 || n > 1024) {
    return tb::Status::InvalidArgument(
        "--workers expects N or Nproc with 0 < N <= 1024, got '" + text +
        "'");
  }
  return std::make_pair(static_cast<int>(n), procs);
}

int CmdExec(const tb::Args& args) {
  auto workers = ParseWorkers(args.GetString("workers", "2proc"));
  if (!workers.ok()) return Fail(workers.status().ToString());
  const auto n_or = args.GetInt("n", 512);
  if (!n_or.ok()) return Fail(n_or.status().ToString());
  // 0 = auto: one block per worker along the partitioned dimension.
  const auto block_dim_or = args.GetInt("block-dim", 0);
  if (!block_dim_or.ok()) return Fail(block_dim_or.status().ToString());

  tb::runtime::ExecutorSpec spec;
  spec.options.block_dim = *block_dim_or;
  // num_threads also feeds the auto block-dim choice, so set it for
  // both planes; num_procs only matters to the multi-process one.
  spec.options.num_threads = workers->first;
  spec.options.num_procs = workers->first;
  // --workers=Nproc picks the executor implicitly; an explicit
  // --executor=threads|procs wins.
  spec.kind = workers->second ? tb::runtime::ExecutorKind::kProcs
                              : tb::runtime::ExecutorKind::kThreads;
  if (args.Has("executor")) {
    auto kind = tb::runtime::ParseExecutorKind(args.GetString("executor"));
    if (!kind.ok()) return Fail(kind.status().ToString());
    if (*kind == tb::runtime::ExecutorKind::kSim) {
      return Fail(
          "exec computes real matrices; --executor expects threads|procs "
          "(use the `run` command for the simulator)");
    }
    spec.kind = *kind;
  }
  auto executor_or = tb::runtime::MakeExecutor(spec);
  if (!executor_or.ok()) return Fail(executor_or.status().ToString());
  std::unique_ptr<tb::runtime::Executor> executor = std::move(*executor_or);

  tb::data::Matrix a(*n_or, *n_or);
  tb::data::Matrix b(*n_or, *n_or);
  tb::Rng rng(7);
  tb::data::FillUniform(&a, &rng);
  tb::data::FillUniform(&b, &rng);

  auto run = tb::algos::RunDistributedMatmul(*executor, a, b);
  if (!run.ok()) return Fail(run.status().ToString());

  double checksum = 0;
  for (int64_t i = 0; i < run->product.size(); ++i) {
    checksum += run->product.data()[i];
  }
  std::printf("executor: %s   workers: %d   matmul n=%lld block-dim=%lld\n",
              executor->name().c_str(), workers->first,
              static_cast<long long>(*n_or),
              static_cast<long long>(*block_dim_or));
  std::printf("tasks: %zu   makespan: %s   checksum: %.6f\n",
              run->report.records.size(),
              tb::HumanSeconds(run->report.makespan).c_str(), checksum);
  const tb::runtime::FaultStats& faults = run->report.faults;
  if (faults.any()) {
    std::printf("retries: %lld   dead workers: %lld\n",
                static_cast<long long>(faults.retries),
                static_cast<long long>(faults.dead_nodes));
  }
  return 0;
}

/// Resident-service demo/soak driver: N tenants with geometrically
/// skewed offered rates push seeded open-loop load through one shared
/// executor for --duration wall seconds, then the drained service's
/// per-tenant report is printed as a single JSON document on stdout
/// (pipe it through json_lint). Exits non-zero if any submission is
/// still queued or running after the drain — a stuck submission is a
/// service bug, not load.
int CmdServe(const tb::Args& args) {
  auto kind = tb::runtime::ParseExecutorKind(args.GetString("executor", "sim"));
  if (!kind.ok()) return Fail(kind.status().ToString());
  if (*kind == tb::runtime::ExecutorKind::kProcs) {
    return Fail(
        "serve runs submissions from concurrent runner threads; the "
        "multi-process executor refuses multi-threaded callers (see "
        "docs/SCALE_OUT.md) — --executor expects threads|sim");
  }
  const auto duration_or = args.GetDouble("duration", 2.0);
  if (!duration_or.ok()) return Fail(duration_or.status().ToString());
  const auto tenants_or = args.GetInt("tenants", 3);
  if (!tenants_or.ok()) return Fail(tenants_or.status().ToString());
  const auto rate_or = args.GetDouble("rate", 8.0);
  if (!rate_or.ok()) return Fail(rate_or.status().ToString());
  const auto skew_or = args.GetDouble("skew", 2.0);
  if (!skew_or.ok()) return Fail(skew_or.status().ToString());
  const auto runners_or = args.GetInt("runners", 2);
  if (!runners_or.ok()) return Fail(runners_or.status().ToString());
  const auto seed_or = args.GetInt("seed", 1);
  if (!seed_or.ok()) return Fail(seed_or.status().ToString());
  const auto in_flight_or = args.GetInt("max-in-flight", 64);
  if (!in_flight_or.ok()) return Fail(in_flight_or.status().ToString());
  const auto max_queued_or = args.GetInt("max-queued", 0);
  if (!max_queued_or.ok()) return Fail(max_queued_or.status().ToString());
  const auto deadline_or = args.GetDouble("deadline", 0.0);
  if (!deadline_or.ok()) return Fail(deadline_or.status().ToString());
  const auto cancel_or = args.GetInt("cancel-every", 0);
  if (!cancel_or.ok()) return Fail(cancel_or.status().ToString());
  auto process = tb::service::ParseArrivalProcess(
      args.GetString("arrivals", "poisson"));
  if (!process.ok()) return Fail(process.status().ToString());
  if (*tenants_or < 1 || *tenants_or > 64) {
    return Fail("--tenants expects 1..64");
  }
  if (*duration_or <= 0) return Fail("--duration must be positive");

  tb::runtime::ExecutorSpec spec;
  spec.kind = *kind;
  auto executor_or = tb::runtime::MakeExecutor(spec);
  if (!executor_or.ok()) return Fail(executor_or.status().ToString());
  std::shared_ptr<tb::runtime::Executor> executor = std::move(*executor_or);

  tb::service::ServiceOptions service_options;
  service_options.num_runners = static_cast<int>(*runners_or);
  service_options.max_in_flight = static_cast<int>(*in_flight_or);
  service_options.max_queued = static_cast<int>(*max_queued_or);
  tb::service::WorkflowService service(executor, service_options);

  std::vector<tb::service::TenantLoad> loads;
  for (int64_t i = 0; i < *tenants_or; ++i) {
    tb::service::TenantLoad load;
    load.tenant = tb::StrFormat("tenant-%lld", static_cast<long long>(i));
    load.arrivals.process = *process;
    load.arrivals.rate_hz = *rate_or * std::pow(*skew_or, i);
    load.seed = static_cast<uint64_t>(*seed_or) * 7919 +
                static_cast<uint64_t>(i);
    load.deadline_s = *deadline_or;
    if (i == 0) load.cancel_every = static_cast<int>(*cancel_or);
    loads.push_back(std::move(load));
  }

  std::fprintf(stderr,
               "serve: %s executor, %d runners, %lld tenants, base rate "
               "%.3g/s (skew %.3g), %s arrivals, %.3gs window\n",
               executor->name().c_str(), service_options.num_runners,
               static_cast<long long>(*tenants_or), *rate_or, *skew_or,
               std::string(tb::service::ArrivalProcessName(*process)).c_str(),
               *duration_or);
  auto stats = tb::service::RunOpenLoad(&service, loads, *duration_or);
  if (!stats.ok()) return Fail(stats.status().ToString());
  service.Shutdown();

  const tb::service::ServiceReport report = service.Report();
  std::fprintf(stderr,
               "serve: offered %lld, admitted %lld, rejected %lld, "
               "driver-cancelled %lld; completed %lld, failed %lld, "
               "cancelled %lld, expired %lld\n",
               static_cast<long long>(stats->offered),
               static_cast<long long>(stats->admitted),
               static_cast<long long>(stats->rejected),
               static_cast<long long>(stats->cancelled),
               static_cast<long long>(report.completed),
               static_cast<long long>(report.failed),
               static_cast<long long>(report.cancelled),
               static_cast<long long>(report.expired));
  std::printf("%s\n", report.ToJson().c_str());
  if (report.still_queued != 0 || report.still_running != 0) {
    return Fail(tb::StrFormat(
        "stuck submissions after drain: %lld queued, %lld running",
        static_cast<long long>(report.still_queued),
        static_cast<long long>(report.still_running)));
  }
  return 0;
}

int CmdSweep(const tb::Args& args) {
  auto base = BuildConfig(args);
  if (!base.ok()) return Fail(base.status().ToString());
  const auto grids = base->algorithm == Algorithm::kKMeans
                         ? tb::analysis::KMeansPaperGrids()
                         : tb::analysis::MatmulPaperGrids();
  std::vector<tb::analysis::ExperimentResult> results;
  tb::analysis::TextTable table(
      {"grid", "block", "CPU p.tasks", "GPU p.tasks", "speedup"});
  for (const auto& [gr, gc] : grids) {
    ExperimentConfig config = *base;
    config.grid_rows = gr;
    config.grid_cols = gc;
    config.processor = tb::Processor::kCpu;
    auto cpu = tb::analysis::RunExperiment(config);
    if (!cpu.ok()) return Fail(cpu.status().ToString());
    config.processor = tb::Processor::kGpu;
    auto gpu = tb::analysis::RunExperiment(config);
    if (!gpu.ok()) return Fail(gpu.status().ToString());
    table.AddRow(
        {tb::StrFormat("%lldx%lld", static_cast<long long>(gr),
                       static_cast<long long>(gc)),
         tb::HumanBytes(cpu->block_bytes),
         cpu->oom ? "OOM" : tb::HumanSeconds(cpu->parallel_task_time),
         gpu->oom ? "GPU OOM" : tb::HumanSeconds(gpu->parallel_task_time),
         (cpu->oom || gpu->oom)
             ? "-"
             : tb::analysis::FormatSpeedup(tb::analysis::SignedSpeedup(
                   cpu->parallel_task_time, gpu->parallel_task_time))});
    results.push_back(std::move(*cpu));
    results.push_back(std::move(*gpu));
  }
  std::printf("%s", table.ToString().c_str());
  if (args.Has("csv")) {
    const tb::Status status = tb::analysis::WriteFile(
        args.GetString("csv"), tb::analysis::ExperimentsCsv(results));
    if (!status.ok()) return Fail(status.ToString());
    std::printf("results written to %s\n", args.GetString("csv").c_str());
  }
  return 0;
}

int CmdCorrelate(const tb::Args& args) {
  const auto configs = tb::analysis::CorrelationSampleConfigs();
  std::printf("running %zu configurations...\n", configs.size());
  std::vector<tb::analysis::ExperimentResult> results;
  for (const auto& config : configs) {
    auto result = tb::analysis::RunExperiment(config);
    if (!result.ok()) return Fail(result.status().ToString());
    results.push_back(std::move(*result));
  }
  auto table = tb::analysis::BuildFeatureTableFromResults(results);
  if (!table.ok()) return Fail(table.status().ToString());
  table->DropConstantColumns();
  auto matrix = table->SpearmanMatrix();
  if (!matrix.ok()) return Fail(matrix.status().ToString());
  std::printf("%s", matrix->ToString().c_str());
  if (args.Has("csv")) {
    const tb::Status status = tb::analysis::WriteFile(
        args.GetString("csv"), tb::analysis::CorrelationCsv(*matrix));
    if (!status.ok()) return Fail(status.ToString());
    std::printf("matrix written to %s\n", args.GetString("csv").c_str());
  }
  return 0;
}

int CmdRecommend(const tb::Args& args) {
  auto base = BuildConfig(args);
  if (!base.ok()) return Fail(base.status().ToString());
  const auto grids = base->algorithm == Algorithm::kKMeans
                         ? tb::analysis::KMeansPaperGrids()
                         : tb::analysis::MatmulPaperGrids();
  auto rec = tb::analysis::RecommendConfiguration(*base, grids);
  if (!rec.ok()) return Fail(rec.status().ToString());
  std::printf("recommended: grid %lldx%lld on %s (makespan %s, GPU "
              "benefit %.2fx)\n",
              static_cast<long long>(rec->grid_rows),
              static_cast<long long>(rec->grid_cols),
              tb::ToString(rec->processor).c_str(),
              tb::HumanSeconds(rec->makespan).c_str(), rec->gpu_benefit);
  return 0;
}

int CmdDag(const tb::Args& args) {
  const std::string algorithm = args.GetString("algorithm", "matmul");
  auto grid = ParseGrid(args.GetString(
      "grid", algorithm == "matmul" || algorithm == "matmul-fma" ? "4x4"
                                                                 : "4x1"));
  if (!grid.ok()) return Fail(grid.status().ToString());
  const auto iters_or = args.GetInt("iterations", 3);
  if (!iters_or.ok()) return Fail(iters_or.status().ToString());
  const int iters = static_cast<int>(*iters_or);

  if (algorithm == "kmeans" || algorithm == "logreg") {
    auto spec = tb::data::GridSpec::CreateFromGridDim(
        tb::data::DatasetSpec{"d", 1 << 16, 100}, grid->first, grid->second);
    if (!spec.ok()) return Fail(spec.status().ToString());
    if (algorithm == "kmeans") {
      tb::algos::KMeansOptions options;
      options.iterations = iters;
      auto wf = tb::algos::BuildKMeans(*spec, options);
      if (!wf.ok()) return Fail(wf.status().ToString());
      std::printf("%s", wf->graph.ToDot().c_str());
    } else {
      tb::algos::LogRegOptions options;
      options.iterations = iters;
      auto wf = tb::algos::BuildLogReg(*spec, options);
      if (!wf.ok()) return Fail(wf.status().ToString());
      std::printf("%s", wf->graph.ToDot().c_str());
    }
    return 0;
  }
  auto spec = tb::data::GridSpec::CreateFromGridDim(
      tb::data::DatasetSpec{"d", 1 << 14, 1 << 14}, grid->first,
      grid->second);
  if (!spec.ok()) return Fail(spec.status().ToString());
  if (algorithm == "transpose") {
    auto wf = tb::algos::BuildTranspose(*spec, tb::algos::TransposeOptions{});
    if (!wf.ok()) return Fail(wf.status().ToString());
    std::printf("%s", wf->graph.ToDot().c_str());
    return 0;
  }
  tb::algos::MatmulOptions options;
  options.fma = algorithm == "matmul-fma";
  auto wf = tb::algos::BuildMatmul(*spec, options);
  if (!wf.ok()) return Fail(wf.status().ToString());
  std::printf("%s", wf->graph.ToDot().c_str());
  return 0;
}

int CmdImport(const tb::Args& args) {
  if (args.positional().size() < 2) {
    return Fail("usage: taskbench import FILE [--executor=sim|threads|procs]"
                " [--policy=...] [--workers=N] [--export=PATH]"
                " [--stats-only]");
  }
  const std::string path = args.positional()[1];
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Fail("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();

  auto instance = tb::wf::ImportWfFormat(text.str());
  if (!instance.ok()) {
    return Fail("import of '" + path + "' failed: " +
                instance.status().ToString());
  }
  auto stats = tb::wf::ComputeStats(*instance);
  if (!stats.ok()) return Fail(stats.status().ToString());
  std::printf("workflow:    %s (schema %s)\n", instance->name.c_str(),
              instance->schema.c_str());
  std::printf("tasks:       %lld\n", static_cast<long long>(stats->tasks));
  std::printf("files:       %lld (%llu bytes)\n",
              static_cast<long long>(stats->files),
              static_cast<unsigned long long>(stats->total_bytes));
  std::printf("edges:       %lld\n", static_cast<long long>(stats->edges));
  std::printf("height:      %lld\n", static_cast<long long>(stats->height));
  std::printf("width:       %lld\n", static_cast<long long>(stats->width));
  std::map<std::string, int> by_type;
  for (const tb::wf::WfTask& task : instance->tasks) ++by_type[task.type];
  for (const auto& [type, count] : by_type) {
    std::printf("  type %-18s x%d\n", type.c_str(), count);
  }

  if (args.Has("export")) {
    const std::string out_path = args.GetString("export", "");
    std::ofstream out(out_path, std::ios::binary);
    if (!out.good()) return Fail("cannot write '" + out_path + "'");
    out << tb::wf::ExportWfFormat(*instance);
    std::printf("exported normalized WfFormat to %s\n", out_path.c_str());
  }
  if (args.Has("stats-only")) return 0;

  const std::string policy_name = args.GetString("policy", "gen-order");
  const auto policy = tb::runtime::ParseSchedulingPolicy(policy_name);
  if (!policy.has_value()) {
    return Fail("--policy expects gen-order|locality|cost, got '" +
                policy_name + "'");
  }
  const auto workers_or = args.GetInt("workers", 4);
  if (!workers_or.ok() || *workers_or < 1) return Fail("bad --workers");
  tb::runtime::RunOptions run_options;
  run_options.policy = *policy;
  run_options.num_threads = static_cast<int>(*workers_or);

  const std::string executor = args.GetString("executor", "sim");
  if (executor == "sim") {
    tb::wf::BuildOptions build_options;
    build_options.materialize = false;  // keep true WfFormat bytes
    auto built = tb::wf::BuildInstance(*instance, build_options);
    if (!built.ok()) return Fail(built.status().ToString());
    tb::runtime::SimulatedExecutor sim(tb::hw::MinotauroCluster(),
                                       run_options);
    auto report = sim.Execute(built->graph);
    if (!report.ok()) return Fail(report.status().ToString());
    std::printf("executor:    simulated (policy %s)\n",
                tb::ToString(run_options.policy).c_str());
    std::printf("makespan:    %.6f s\n", report->makespan);
    std::printf("report digest: %016llx\n",
                static_cast<unsigned long long>(
                    tb::check::DigestReport(*report)));
    return 0;
  }

  auto built = tb::wf::BuildInstance(*instance, tb::wf::BuildOptions{});
  if (!built.ok()) return Fail(built.status().ToString());
  std::unique_ptr<tb::runtime::Executor> real;
  if (executor == "threads") {
    real = std::make_unique<tb::runtime::ThreadPoolExecutor>(run_options);
  } else if (executor == "procs") {
    if (!tb::runtime::MultiProcExecutor::Supported()) {
      return Fail("--executor=procs is unsupported on this platform");
    }
    real = std::make_unique<tb::runtime::MultiProcExecutor>(run_options);
  } else {
    return Fail("--executor expects sim|threads|procs, got '" + executor +
                "'");
  }
  auto report = real->Run(built->graph);
  if (!report.ok()) return Fail(report.status().ToString());
  uint64_t digest = tb::check::kFnvOffsetBasis;
  for (const tb::runtime::DataId id : built->data) {
    auto value = real->Fetch(built->graph, id);
    if (!value.ok()) return Fail(value.status().ToString());
    const int64_t dims[2] = {value->rows(), value->cols()};
    digest = tb::check::FoldBytes(digest, dims, sizeof(dims));
    digest = tb::check::FoldBytes(digest, value->data(),
                                  static_cast<size_t>(value->size()) * 8);
  }
  std::printf("executor:    %s (%d workers, policy %s)\n",
              real->name().c_str(), run_options.num_threads,
              tb::ToString(run_options.policy).c_str());
  std::printf("tasks run:   %zu\n", report->records.size());
  std::printf("value digest: %016llx\n",
              static_cast<unsigned long long>(digest));
  return 0;
}

void PrintUsage() {
  std::printf(
      "taskbench — distributed GPU task-workflow performance testbed\n\n"
      "usage: taskbench "
      "<run|exec|serve|import|sweep|correlate|recommend|dag> "
      "[options]\n\n"
      "common options:\n"
      "  --algorithm=matmul|matmul-fma|kmeans   --dataset=NAME\n"
      "  --grid=RxC  --clusters=K  --iterations=N\n"
      "  --processor=cpu|gpu  --storage=local|shared\n"
      "  --policy=gen-order|locality|cost  --hybrid\n"
      "  --disable-hedging  --disable-escalation  (cost policy knobs)\n"
      "real execution (exec):\n"
      "  --executor=threads|procs  --workers=N|Nproc  --n=SIZE  "
      "--block-dim=D\n"
      "workflow import (import FILE):\n"
      "  --executor=sim|threads|procs  --workers=N  --policy=...\n"
      "  --export=PATH  --stats-only\n"
      "resident service (serve):\n"
      "  --executor=threads|sim  --runners=N  --duration=S\n"
      "  --tenants=N  --rate=HZ  --skew=F  "
      "--arrivals=poisson|bursty|heavytail\n"
      "  --seed=N  --max-in-flight=N  --max-queued=N  --deadline=S\n"
      "  --cancel-every=N\n"
      "fault tolerance:\n"
      "  --faults=crash@T:nN,gpuloss@T:nN,slow@T:nN:xF,storage:pP[:sS]\n"
      "  --retries=N  --retry-backoff=S\n"
      "output:\n"
      "  --csv=PATH  --trace=PATH  --flow-events  --metrics-json=PATH\n"
      "  --gantt\n"
      "see the header of tools/taskbench_cli.cc for details\n");
}

}  // namespace

int main(int argc, char** argv) {
  const tb::Args args = tb::Args::Parse(argc, argv);
  if (args.positional().empty()) {
    PrintUsage();
    return 1;
  }
  const std::string command = args.positional()[0];
  if (command == "run") return CmdRun(args);
  if (command == "exec") return CmdExec(args);
  if (command == "serve") return CmdServe(args);
  if (command == "import") return CmdImport(args);
  if (command == "sweep") return CmdSweep(args);
  if (command == "correlate") return CmdCorrelate(args);
  if (command == "recommend") return CmdRecommend(args);
  if (command == "dag") return CmdDag(args);
  PrintUsage();
  return Fail("unknown command '" + command + "'");
}
