file(REMOVE_RECURSE
  "CMakeFiles/taskbench.dir/taskbench_cli.cc.o"
  "CMakeFiles/taskbench.dir/taskbench_cli.cc.o.d"
  "taskbench"
  "taskbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
