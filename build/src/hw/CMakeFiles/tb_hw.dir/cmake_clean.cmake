file(REMOVE_RECURSE
  "CMakeFiles/tb_hw.dir/cluster.cc.o"
  "CMakeFiles/tb_hw.dir/cluster.cc.o.d"
  "CMakeFiles/tb_hw.dir/device_profiles.cc.o"
  "CMakeFiles/tb_hw.dir/device_profiles.cc.o.d"
  "libtb_hw.a"
  "libtb_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
