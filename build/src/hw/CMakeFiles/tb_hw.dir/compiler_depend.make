# Empty compiler generated dependencies file for tb_hw.
# This may be replaced when dependencies are built.
