file(REMOVE_RECURSE
  "libtb_hw.a"
)
