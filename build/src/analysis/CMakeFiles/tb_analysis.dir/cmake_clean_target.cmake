file(REMOVE_RECURSE
  "libtb_analysis.a"
)
