
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/csv.cc" "src/analysis/CMakeFiles/tb_analysis.dir/csv.cc.o" "gcc" "src/analysis/CMakeFiles/tb_analysis.dir/csv.cc.o.d"
  "/root/repo/src/analysis/experiment.cc" "src/analysis/CMakeFiles/tb_analysis.dir/experiment.cc.o" "gcc" "src/analysis/CMakeFiles/tb_analysis.dir/experiment.cc.o.d"
  "/root/repo/src/analysis/factor_space.cc" "src/analysis/CMakeFiles/tb_analysis.dir/factor_space.cc.o" "gcc" "src/analysis/CMakeFiles/tb_analysis.dir/factor_space.cc.o.d"
  "/root/repo/src/analysis/guidelines.cc" "src/analysis/CMakeFiles/tb_analysis.dir/guidelines.cc.o" "gcc" "src/analysis/CMakeFiles/tb_analysis.dir/guidelines.cc.o.d"
  "/root/repo/src/analysis/observations.cc" "src/analysis/CMakeFiles/tb_analysis.dir/observations.cc.o" "gcc" "src/analysis/CMakeFiles/tb_analysis.dir/observations.cc.o.d"
  "/root/repo/src/analysis/predictor.cc" "src/analysis/CMakeFiles/tb_analysis.dir/predictor.cc.o" "gcc" "src/analysis/CMakeFiles/tb_analysis.dir/predictor.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/analysis/CMakeFiles/tb_analysis.dir/report.cc.o" "gcc" "src/analysis/CMakeFiles/tb_analysis.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algos/CMakeFiles/tb_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/tb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/tb_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
