# Empty compiler generated dependencies file for tb_analysis.
# This may be replaced when dependencies are built.
