file(REMOVE_RECURSE
  "CMakeFiles/tb_analysis.dir/csv.cc.o"
  "CMakeFiles/tb_analysis.dir/csv.cc.o.d"
  "CMakeFiles/tb_analysis.dir/experiment.cc.o"
  "CMakeFiles/tb_analysis.dir/experiment.cc.o.d"
  "CMakeFiles/tb_analysis.dir/factor_space.cc.o"
  "CMakeFiles/tb_analysis.dir/factor_space.cc.o.d"
  "CMakeFiles/tb_analysis.dir/guidelines.cc.o"
  "CMakeFiles/tb_analysis.dir/guidelines.cc.o.d"
  "CMakeFiles/tb_analysis.dir/observations.cc.o"
  "CMakeFiles/tb_analysis.dir/observations.cc.o.d"
  "CMakeFiles/tb_analysis.dir/predictor.cc.o"
  "CMakeFiles/tb_analysis.dir/predictor.cc.o.d"
  "CMakeFiles/tb_analysis.dir/report.cc.o"
  "CMakeFiles/tb_analysis.dir/report.cc.o.d"
  "libtb_analysis.a"
  "libtb_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
