file(REMOVE_RECURSE
  "libtb_common.a"
)
