file(REMOVE_RECURSE
  "CMakeFiles/tb_common.dir/args.cc.o"
  "CMakeFiles/tb_common.dir/args.cc.o.d"
  "CMakeFiles/tb_common.dir/logging.cc.o"
  "CMakeFiles/tb_common.dir/logging.cc.o.d"
  "CMakeFiles/tb_common.dir/random.cc.o"
  "CMakeFiles/tb_common.dir/random.cc.o.d"
  "CMakeFiles/tb_common.dir/status.cc.o"
  "CMakeFiles/tb_common.dir/status.cc.o.d"
  "CMakeFiles/tb_common.dir/strings.cc.o"
  "CMakeFiles/tb_common.dir/strings.cc.o.d"
  "libtb_common.a"
  "libtb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
