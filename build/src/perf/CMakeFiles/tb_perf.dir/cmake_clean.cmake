file(REMOVE_RECURSE
  "CMakeFiles/tb_perf.dir/cost_model.cc.o"
  "CMakeFiles/tb_perf.dir/cost_model.cc.o.d"
  "libtb_perf.a"
  "libtb_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
