file(REMOVE_RECURSE
  "libtb_perf.a"
)
