# Empty dependencies file for tb_perf.
# This may be replaced when dependencies are built.
