
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/cost_model.cc" "src/perf/CMakeFiles/tb_perf.dir/cost_model.cc.o" "gcc" "src/perf/CMakeFiles/tb_perf.dir/cost_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/tb_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
