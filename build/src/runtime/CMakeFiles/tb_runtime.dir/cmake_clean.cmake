file(REMOVE_RECURSE
  "CMakeFiles/tb_runtime.dir/metrics.cc.o"
  "CMakeFiles/tb_runtime.dir/metrics.cc.o.d"
  "CMakeFiles/tb_runtime.dir/scheduler.cc.o"
  "CMakeFiles/tb_runtime.dir/scheduler.cc.o.d"
  "CMakeFiles/tb_runtime.dir/simulated_executor.cc.o"
  "CMakeFiles/tb_runtime.dir/simulated_executor.cc.o.d"
  "CMakeFiles/tb_runtime.dir/task_graph.cc.o"
  "CMakeFiles/tb_runtime.dir/task_graph.cc.o.d"
  "CMakeFiles/tb_runtime.dir/thread_pool_executor.cc.o"
  "CMakeFiles/tb_runtime.dir/thread_pool_executor.cc.o.d"
  "CMakeFiles/tb_runtime.dir/trace.cc.o"
  "CMakeFiles/tb_runtime.dir/trace.cc.o.d"
  "libtb_runtime.a"
  "libtb_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
