
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/metrics.cc" "src/runtime/CMakeFiles/tb_runtime.dir/metrics.cc.o" "gcc" "src/runtime/CMakeFiles/tb_runtime.dir/metrics.cc.o.d"
  "/root/repo/src/runtime/scheduler.cc" "src/runtime/CMakeFiles/tb_runtime.dir/scheduler.cc.o" "gcc" "src/runtime/CMakeFiles/tb_runtime.dir/scheduler.cc.o.d"
  "/root/repo/src/runtime/simulated_executor.cc" "src/runtime/CMakeFiles/tb_runtime.dir/simulated_executor.cc.o" "gcc" "src/runtime/CMakeFiles/tb_runtime.dir/simulated_executor.cc.o.d"
  "/root/repo/src/runtime/task_graph.cc" "src/runtime/CMakeFiles/tb_runtime.dir/task_graph.cc.o" "gcc" "src/runtime/CMakeFiles/tb_runtime.dir/task_graph.cc.o.d"
  "/root/repo/src/runtime/thread_pool_executor.cc" "src/runtime/CMakeFiles/tb_runtime.dir/thread_pool_executor.cc.o" "gcc" "src/runtime/CMakeFiles/tb_runtime.dir/thread_pool_executor.cc.o.d"
  "/root/repo/src/runtime/trace.cc" "src/runtime/CMakeFiles/tb_runtime.dir/trace.cc.o" "gcc" "src/runtime/CMakeFiles/tb_runtime.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/tb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/tb_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
