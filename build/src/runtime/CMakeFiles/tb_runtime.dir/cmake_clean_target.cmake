file(REMOVE_RECURSE
  "libtb_runtime.a"
)
