# Empty compiler generated dependencies file for tb_runtime.
# This may be replaced when dependencies are built.
