# Empty compiler generated dependencies file for tb_stats.
# This may be replaced when dependencies are built.
