file(REMOVE_RECURSE
  "libtb_stats.a"
)
