file(REMOVE_RECURSE
  "CMakeFiles/tb_stats.dir/correlation.cc.o"
  "CMakeFiles/tb_stats.dir/correlation.cc.o.d"
  "CMakeFiles/tb_stats.dir/feature_table.cc.o"
  "CMakeFiles/tb_stats.dir/feature_table.cc.o.d"
  "CMakeFiles/tb_stats.dir/regression_forest.cc.o"
  "CMakeFiles/tb_stats.dir/regression_forest.cc.o.d"
  "CMakeFiles/tb_stats.dir/regression_tree.cc.o"
  "CMakeFiles/tb_stats.dir/regression_tree.cc.o.d"
  "libtb_stats.a"
  "libtb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
