file(REMOVE_RECURSE
  "libtb_sim.a"
)
