file(REMOVE_RECURSE
  "CMakeFiles/tb_sim.dir/bandwidth_resource.cc.o"
  "CMakeFiles/tb_sim.dir/bandwidth_resource.cc.o.d"
  "CMakeFiles/tb_sim.dir/server_pool.cc.o"
  "CMakeFiles/tb_sim.dir/server_pool.cc.o.d"
  "CMakeFiles/tb_sim.dir/simulator.cc.o"
  "CMakeFiles/tb_sim.dir/simulator.cc.o.d"
  "libtb_sim.a"
  "libtb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
