
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/ds_array.cc" "src/data/CMakeFiles/tb_data.dir/ds_array.cc.o" "gcc" "src/data/CMakeFiles/tb_data.dir/ds_array.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/data/CMakeFiles/tb_data.dir/generators.cc.o" "gcc" "src/data/CMakeFiles/tb_data.dir/generators.cc.o.d"
  "/root/repo/src/data/grid.cc" "src/data/CMakeFiles/tb_data.dir/grid.cc.o" "gcc" "src/data/CMakeFiles/tb_data.dir/grid.cc.o.d"
  "/root/repo/src/data/matrix.cc" "src/data/CMakeFiles/tb_data.dir/matrix.cc.o" "gcc" "src/data/CMakeFiles/tb_data.dir/matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
