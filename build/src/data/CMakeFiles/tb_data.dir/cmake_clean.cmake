file(REMOVE_RECURSE
  "CMakeFiles/tb_data.dir/ds_array.cc.o"
  "CMakeFiles/tb_data.dir/ds_array.cc.o.d"
  "CMakeFiles/tb_data.dir/generators.cc.o"
  "CMakeFiles/tb_data.dir/generators.cc.o.d"
  "CMakeFiles/tb_data.dir/grid.cc.o"
  "CMakeFiles/tb_data.dir/grid.cc.o.d"
  "CMakeFiles/tb_data.dir/matrix.cc.o"
  "CMakeFiles/tb_data.dir/matrix.cc.o.d"
  "libtb_data.a"
  "libtb_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
