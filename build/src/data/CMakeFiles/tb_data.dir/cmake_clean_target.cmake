file(REMOVE_RECURSE
  "libtb_data.a"
)
