# Empty dependencies file for tb_data.
# This may be replaced when dependencies are built.
