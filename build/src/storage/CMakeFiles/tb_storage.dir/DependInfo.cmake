
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block_storage.cc" "src/storage/CMakeFiles/tb_storage.dir/block_storage.cc.o" "gcc" "src/storage/CMakeFiles/tb_storage.dir/block_storage.cc.o.d"
  "/root/repo/src/storage/serializer.cc" "src/storage/CMakeFiles/tb_storage.dir/serializer.cc.o" "gcc" "src/storage/CMakeFiles/tb_storage.dir/serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tb_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
