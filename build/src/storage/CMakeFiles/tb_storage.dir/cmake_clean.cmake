file(REMOVE_RECURSE
  "CMakeFiles/tb_storage.dir/block_storage.cc.o"
  "CMakeFiles/tb_storage.dir/block_storage.cc.o.d"
  "CMakeFiles/tb_storage.dir/serializer.cc.o"
  "CMakeFiles/tb_storage.dir/serializer.cc.o.d"
  "libtb_storage.a"
  "libtb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
