# Empty dependencies file for tb_algos.
# This may be replaced when dependencies are built.
