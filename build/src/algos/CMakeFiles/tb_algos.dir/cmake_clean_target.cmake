file(REMOVE_RECURSE
  "libtb_algos.a"
)
