file(REMOVE_RECURSE
  "CMakeFiles/tb_algos.dir/api.cc.o"
  "CMakeFiles/tb_algos.dir/api.cc.o.d"
  "CMakeFiles/tb_algos.dir/kmeans.cc.o"
  "CMakeFiles/tb_algos.dir/kmeans.cc.o.d"
  "CMakeFiles/tb_algos.dir/logreg.cc.o"
  "CMakeFiles/tb_algos.dir/logreg.cc.o.d"
  "CMakeFiles/tb_algos.dir/matmul.cc.o"
  "CMakeFiles/tb_algos.dir/matmul.cc.o.d"
  "CMakeFiles/tb_algos.dir/transpose.cc.o"
  "CMakeFiles/tb_algos.dir/transpose.cc.o.d"
  "libtb_algos.a"
  "libtb_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
