# Empty dependencies file for kmeans_pipeline.
# This may be replaced when dependencies are built.
