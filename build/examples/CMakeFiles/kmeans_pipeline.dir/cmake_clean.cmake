file(REMOVE_RECURSE
  "CMakeFiles/kmeans_pipeline.dir/kmeans_pipeline.cc.o"
  "CMakeFiles/kmeans_pipeline.dir/kmeans_pipeline.cc.o.d"
  "kmeans_pipeline"
  "kmeans_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
