file(REMOVE_RECURSE
  "CMakeFiles/matmul_workflow.dir/matmul_workflow.cc.o"
  "CMakeFiles/matmul_workflow.dir/matmul_workflow.cc.o.d"
  "matmul_workflow"
  "matmul_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
