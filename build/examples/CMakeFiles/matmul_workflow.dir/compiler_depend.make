# Empty compiler generated dependencies file for matmul_workflow.
# This may be replaced when dependencies are built.
