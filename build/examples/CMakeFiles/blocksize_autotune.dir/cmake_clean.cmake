file(REMOVE_RECURSE
  "CMakeFiles/blocksize_autotune.dir/blocksize_autotune.cc.o"
  "CMakeFiles/blocksize_autotune.dir/blocksize_autotune.cc.o.d"
  "blocksize_autotune"
  "blocksize_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocksize_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
