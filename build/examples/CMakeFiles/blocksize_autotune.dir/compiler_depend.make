# Empty compiler generated dependencies file for blocksize_autotune.
# This may be replaced when dependencies are built.
