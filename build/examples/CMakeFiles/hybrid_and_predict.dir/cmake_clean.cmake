file(REMOVE_RECURSE
  "CMakeFiles/hybrid_and_predict.dir/hybrid_and_predict.cc.o"
  "CMakeFiles/hybrid_and_predict.dir/hybrid_and_predict.cc.o.d"
  "hybrid_and_predict"
  "hybrid_and_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_and_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
