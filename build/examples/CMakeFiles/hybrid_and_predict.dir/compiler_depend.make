# Empty compiler generated dependencies file for hybrid_and_predict.
# This may be replaced when dependencies are built.
