file(REMOVE_RECURSE
  "CMakeFiles/server_pool_test.dir/server_pool_test.cc.o"
  "CMakeFiles/server_pool_test.dir/server_pool_test.cc.o.d"
  "server_pool_test"
  "server_pool_test.pdb"
  "server_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
