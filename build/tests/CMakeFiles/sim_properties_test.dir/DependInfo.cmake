
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_properties_test.cc" "tests/CMakeFiles/sim_properties_test.dir/sim_properties_test.cc.o" "gcc" "tests/CMakeFiles/sim_properties_test.dir/sim_properties_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/tb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/tb_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/tb_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/tb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
