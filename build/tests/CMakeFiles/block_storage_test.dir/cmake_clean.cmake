file(REMOVE_RECURSE
  "CMakeFiles/block_storage_test.dir/block_storage_test.cc.o"
  "CMakeFiles/block_storage_test.dir/block_storage_test.cc.o.d"
  "block_storage_test"
  "block_storage_test.pdb"
  "block_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
