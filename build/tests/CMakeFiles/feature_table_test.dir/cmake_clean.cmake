file(REMOVE_RECURSE
  "CMakeFiles/feature_table_test.dir/feature_table_test.cc.o"
  "CMakeFiles/feature_table_test.dir/feature_table_test.cc.o.d"
  "feature_table_test"
  "feature_table_test.pdb"
  "feature_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
