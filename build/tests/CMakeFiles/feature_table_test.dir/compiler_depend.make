# Empty compiler generated dependencies file for feature_table_test.
# This may be replaced when dependencies are built.
