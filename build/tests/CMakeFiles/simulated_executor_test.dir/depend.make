# Empty dependencies file for simulated_executor_test.
# This may be replaced when dependencies are built.
