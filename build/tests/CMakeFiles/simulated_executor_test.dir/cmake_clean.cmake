file(REMOVE_RECURSE
  "CMakeFiles/simulated_executor_test.dir/simulated_executor_test.cc.o"
  "CMakeFiles/simulated_executor_test.dir/simulated_executor_test.cc.o.d"
  "simulated_executor_test"
  "simulated_executor_test.pdb"
  "simulated_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulated_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
