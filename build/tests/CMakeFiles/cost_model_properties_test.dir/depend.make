# Empty dependencies file for cost_model_properties_test.
# This may be replaced when dependencies are built.
