# Empty dependencies file for bandwidth_resource_test.
# This may be replaced when dependencies are built.
