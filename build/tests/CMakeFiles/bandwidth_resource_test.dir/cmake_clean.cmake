file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_resource_test.dir/bandwidth_resource_test.cc.o"
  "CMakeFiles/bandwidth_resource_test.dir/bandwidth_resource_test.cc.o.d"
  "bandwidth_resource_test"
  "bandwidth_resource_test.pdb"
  "bandwidth_resource_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_resource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
