file(REMOVE_RECURSE
  "CMakeFiles/transpose_test.dir/transpose_test.cc.o"
  "CMakeFiles/transpose_test.dir/transpose_test.cc.o.d"
  "transpose_test"
  "transpose_test.pdb"
  "transpose_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transpose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
