file(REMOVE_RECURSE
  "CMakeFiles/guidelines_test.dir/guidelines_test.cc.o"
  "CMakeFiles/guidelines_test.dir/guidelines_test.cc.o.d"
  "guidelines_test"
  "guidelines_test.pdb"
  "guidelines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guidelines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
