# Empty dependencies file for guidelines_test.
# This may be replaced when dependencies are built.
