file(REMOVE_RECURSE
  "CMakeFiles/ds_array_test.dir/ds_array_test.cc.o"
  "CMakeFiles/ds_array_test.dir/ds_array_test.cc.o.d"
  "ds_array_test"
  "ds_array_test.pdb"
  "ds_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
