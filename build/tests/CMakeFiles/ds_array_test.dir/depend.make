# Empty dependencies file for ds_array_test.
# This may be replaced when dependencies are built.
