# Empty dependencies file for regression_tree_test.
# This may be replaced when dependencies are built.
