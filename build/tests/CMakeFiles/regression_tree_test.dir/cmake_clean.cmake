file(REMOVE_RECURSE
  "CMakeFiles/regression_tree_test.dir/regression_tree_test.cc.o"
  "CMakeFiles/regression_tree_test.dir/regression_tree_test.cc.o.d"
  "regression_tree_test"
  "regression_tree_test.pdb"
  "regression_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
