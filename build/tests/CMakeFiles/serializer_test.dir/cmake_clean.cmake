file(REMOVE_RECURSE
  "CMakeFiles/serializer_test.dir/serializer_test.cc.o"
  "CMakeFiles/serializer_test.dir/serializer_test.cc.o.d"
  "serializer_test"
  "serializer_test.pdb"
  "serializer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serializer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
