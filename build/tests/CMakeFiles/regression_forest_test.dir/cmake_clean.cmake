file(REMOVE_RECURSE
  "CMakeFiles/regression_forest_test.dir/regression_forest_test.cc.o"
  "CMakeFiles/regression_forest_test.dir/regression_forest_test.cc.o.d"
  "regression_forest_test"
  "regression_forest_test.pdb"
  "regression_forest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_forest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
