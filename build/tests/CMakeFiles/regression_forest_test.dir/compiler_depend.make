# Empty compiler generated dependencies file for regression_forest_test.
# This may be replaced when dependencies are built.
