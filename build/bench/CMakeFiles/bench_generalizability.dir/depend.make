# Empty dependencies file for bench_generalizability.
# This may be replaced when dependencies are built.
