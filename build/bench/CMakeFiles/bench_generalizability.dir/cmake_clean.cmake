file(REMOVE_RECURSE
  "CMakeFiles/bench_generalizability.dir/bench_generalizability.cc.o"
  "CMakeFiles/bench_generalizability.dir/bench_generalizability.cc.o.d"
  "bench_generalizability"
  "bench_generalizability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generalizability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
