# Empty compiler generated dependencies file for bench_fig6_dag_shapes.
# This may be replaced when dependencies are built.
