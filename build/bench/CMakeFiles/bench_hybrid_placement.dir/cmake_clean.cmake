file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_placement.dir/bench_hybrid_placement.cc.o"
  "CMakeFiles/bench_hybrid_placement.dir/bench_hybrid_placement.cc.o.d"
  "bench_hybrid_placement"
  "bench_hybrid_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
