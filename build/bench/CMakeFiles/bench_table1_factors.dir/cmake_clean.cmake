file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_factors.dir/bench_table1_factors.cc.o"
  "CMakeFiles/bench_table1_factors.dir/bench_table1_factors.cc.o.d"
  "bench_table1_factors"
  "bench_table1_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
