# Empty dependencies file for bench_ablation_sched_overhead.
# This may be replaced when dependencies are built.
