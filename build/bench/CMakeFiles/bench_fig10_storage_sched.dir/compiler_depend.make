# Empty compiler generated dependencies file for bench_fig10_storage_sched.
# This may be replaced when dependencies are built.
