file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_storage_sched.dir/bench_fig10_storage_sched.cc.o"
  "CMakeFiles/bench_fig10_storage_sched.dir/bench_fig10_storage_sched.cc.o.d"
  "bench_fig10_storage_sched"
  "bench_fig10_storage_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_storage_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
