file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9a_clusters.dir/bench_fig9a_clusters.cc.o"
  "CMakeFiles/bench_fig9a_clusters.dir/bench_fig9a_clusters.cc.o.d"
  "bench_fig9a_clusters"
  "bench_fig9a_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9a_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
