# Empty dependencies file for bench_fig9a_clusters.
# This may be replaced when dependencies are built.
