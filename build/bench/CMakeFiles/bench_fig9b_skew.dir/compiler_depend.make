# Empty compiler generated dependencies file for bench_fig9b_skew.
# This may be replaced when dependencies are built.
