file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_task_complexity.dir/bench_fig8_task_complexity.cc.o"
  "CMakeFiles/bench_fig8_task_complexity.dir/bench_fig8_task_complexity.cc.o.d"
  "bench_fig8_task_complexity"
  "bench_fig8_task_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_task_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
