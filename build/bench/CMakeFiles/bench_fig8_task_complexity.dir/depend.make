# Empty dependencies file for bench_fig8_task_complexity.
# This may be replaced when dependencies are built.
