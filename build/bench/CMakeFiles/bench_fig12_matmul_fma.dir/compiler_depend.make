# Empty compiler generated dependencies file for bench_fig12_matmul_fma.
# This may be replaced when dependencies are built.
