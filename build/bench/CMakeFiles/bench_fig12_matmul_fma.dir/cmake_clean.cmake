file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_matmul_fma.dir/bench_fig12_matmul_fma.cc.o"
  "CMakeFiles/bench_fig12_matmul_fma.dir/bench_fig12_matmul_fma.cc.o.d"
  "bench_fig12_matmul_fma"
  "bench_fig12_matmul_fma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_matmul_fma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
