#include "storage/serializer.h"

#include <array>
#include <cstring>

#include "common/strings.h"

namespace taskbench::storage {

namespace {

constexpr uint32_t kMagic = 0x544b4c42;  // 'TBLK' little-endian-ish tag
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8 + 4;

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

template <typename T>
void AppendPod(std::vector<uint8_t>* out, T value) {
  const auto* p = reinterpret_cast<const uint8_t*>(&value);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
T ReadPod(const uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

}  // namespace

uint32_t Serializer::Crc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

uint64_t Serializer::SerializedSize(const data::Matrix& m) {
  return kHeaderBytes + m.bytes();
}

void Serializer::Serialize(const data::Matrix& m, std::vector<uint8_t>* out) {
  out->reserve(out->size() + SerializedSize(m));
  AppendPod<uint32_t>(out, kMagic);
  AppendPod<uint32_t>(out, kVersion);
  AppendPod<int64_t>(out, m.rows());
  AppendPod<int64_t>(out, m.cols());
  const auto* payload = reinterpret_cast<const uint8_t*>(m.data());
  const size_t payload_bytes = m.bytes();
  AppendPod<uint32_t>(out, Crc32(payload, payload_bytes));
  out->insert(out->end(), payload, payload + payload_bytes);
}

void Serializer::SerializeTo(const data::Matrix& m, uint8_t* out) {
  auto write_pod = [&out](auto value) {
    std::memcpy(out, &value, sizeof(value));
    out += sizeof(value);
  };
  write_pod(kMagic);
  write_pod(kVersion);
  write_pod(m.rows());
  write_pod(m.cols());
  const auto* payload = reinterpret_cast<const uint8_t*>(m.data());
  const size_t payload_bytes = m.bytes();
  write_pod(Crc32(payload, payload_bytes));
  if (payload_bytes > 0) std::memcpy(out, payload, payload_bytes);
}

Result<data::Matrix> Serializer::Deserialize(
    const std::vector<uint8_t>& bytes) {
  return Deserialize(bytes.data(), bytes.size());
}

Result<data::Matrix> Serializer::Deserialize(const uint8_t* data,
                                             size_t size) {
  if (size < kHeaderBytes) {
    return Status::InvalidArgument(
        StrFormat("serialized block truncated: %zu bytes", size));
  }
  const uint8_t* p = data;
  const auto magic = ReadPod<uint32_t>(p);
  if (magic != kMagic) {
    return Status::InvalidArgument("bad magic in serialized block");
  }
  const auto version = ReadPod<uint32_t>(p + 4);
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported block version %u", version));
  }
  const auto rows = ReadPod<int64_t>(p + 8);
  const auto cols = ReadPod<int64_t>(p + 16);
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative dimensions in serialized block");
  }
  const auto crc = ReadPod<uint32_t>(p + 24);
  const uint64_t payload_bytes = static_cast<uint64_t>(rows) *
                                 static_cast<uint64_t>(cols) * 8;
  if (size != kHeaderBytes + payload_bytes) {
    return Status::InvalidArgument(StrFormat(
        "serialized block size mismatch: header says %llu payload bytes, "
        "buffer has %zu",
        static_cast<unsigned long long>(payload_bytes),
        size - kHeaderBytes));
  }
  const uint8_t* payload = p + kHeaderBytes;
  if (Crc32(payload, payload_bytes) != crc) {
    return Status::InvalidArgument("checksum mismatch in serialized block");
  }
  data::Matrix m(rows, cols);
  // 0x0 matrices have no payload and a null backing pointer; memcpy
  // requires non-null arguments even for zero sizes (UB otherwise).
  if (payload_bytes > 0) std::memcpy(m.data(), payload, payload_bytes);
  return m;
}

}  // namespace taskbench::storage
