#include "storage/shm_arena.h"

#include <cerrno>
#include <cstring>
#include <new>

#include "common/strings.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace taskbench::storage {

#if defined(_WIN32)

Result<ShmSegment> ShmSegment::Create(const std::string&, uint64_t) {
  return Status::Unimplemented("POSIX shared memory unavailable");
}
ShmSegment::~ShmSegment() = default;
ShmSegment::ShmSegment(ShmSegment&& other) noexcept { (void)other; }
ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  (void)other;
  return *this;
}

#else

Result<ShmSegment> ShmSegment::Create(const std::string& name_hint,
                                      uint64_t bytes) {
  if (bytes == 0) {
    return Status::InvalidArgument("shm segment needs a non-zero size");
  }
  // O_EXCL retry loop: the name only has to be unique for the instant
  // between shm_open and shm_unlink.
  int fd = -1;
  for (int attempt = 0; attempt < 64 && fd < 0; ++attempt) {
    const std::string name =
        StrFormat("/tb-%s-%d-%d", name_hint.c_str(),
                  static_cast<int>(::getpid()), attempt);
    fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd >= 0) {
      ::shm_unlink(name.c_str());
      break;
    }
    if (errno != EEXIST) {
      return Status::Internal(StrFormat("shm_open(%s) failed: %s",
                                        name.c_str(), std::strerror(errno)));
    }
  }
  if (fd < 0) {
    return Status::Internal("could not find a free shm object name");
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(StrFormat("ftruncate(%llu) on shm failed: %s",
                                      static_cast<unsigned long long>(bytes),
                                      std::strerror(err)));
  }
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  ::close(fd);  // the mapping keeps the object alive
  if (base == MAP_FAILED) {
    return Status::Internal(StrFormat("mmap(%llu shm bytes) failed: %s",
                                      static_cast<unsigned long long>(bytes),
                                      std::strerror(errno)));
  }
  ShmSegment segment;
  segment.base_ = base;
  segment.bytes_ = bytes;
  return segment;
}

ShmSegment::~ShmSegment() {
  if (base_ != nullptr) ::munmap(base_, bytes_);
}

ShmSegment::ShmSegment(ShmSegment&& other) noexcept
    : base_(other.base_), bytes_(other.bytes_) {
  other.base_ = nullptr;
  other.bytes_ = 0;
}

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(base_, bytes_);
    base_ = other.base_;
    bytes_ = other.bytes_;
    other.base_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

#endif  // !_WIN32

namespace {
constexpr uint64_t kAlign = 64;

uint64_t AlignUp(uint64_t n) { return (n + (kAlign - 1)) & ~(kAlign - 1); }
}  // namespace

Result<ShmArena> ShmArena::Create(const std::string& name_hint,
                                  uint64_t capacity) {
  const uint64_t header_bytes = AlignUp(sizeof(Header));
  TB_ASSIGN_OR_RETURN(ShmSegment segment,
                      ShmSegment::Create(name_hint,
                                         header_bytes + AlignUp(capacity)));
  ShmArena arena;
  arena.segment_ = std::move(segment);
  Header* header = new (arena.segment_.base()) Header;
  header->next.store(header_bytes, std::memory_order_relaxed);
  header->capacity = arena.segment_.bytes();
  return arena;
}

Result<uint64_t> ShmArena::Allocate(uint64_t bytes) {
  Header* h = header();
  const uint64_t need = AlignUp(bytes);
  // CAS loop instead of fetch_add + back-out: the cursor only ever
  // holds committed reservations, so a failing large allocation can
  // never transiently inflate it and make a concurrent smaller
  // allocation that would fit fail spuriously (workers treat
  // ResourceExhausted as fatal, so a spurious one kills the run).
  uint64_t offset = h->next.load(std::memory_order_relaxed);
  for (;;) {
    if (offset + need > h->capacity || offset + need < offset) {
      const uint64_t usable = h->capacity - AlignUp(sizeof(Header));
      if (need > usable) {
        return Status::ResourceExhausted(StrFormat(
            "block of %llu bytes exceeds the whole shm arena (%llu usable "
            "bytes); raise RunOptions::shm_arena_bytes",
            static_cast<unsigned long long>(bytes),
            static_cast<unsigned long long>(usable)));
      }
      return Status::ResourceExhausted(StrFormat(
          "shm arena exhausted: %llu of %llu bytes used, %llu more "
          "requested; raise RunOptions::shm_arena_bytes",
          static_cast<unsigned long long>(offset),
          static_cast<unsigned long long>(h->capacity),
          static_cast<unsigned long long>(bytes)));
    }
    if (h->next.compare_exchange_weak(offset, offset + need,
                                      std::memory_order_relaxed)) {
      return offset;
    }
  }
}

uint64_t ShmArena::capacity() const { return header()->capacity; }

uint64_t ShmArena::used() const {
  return header()->next.load(std::memory_order_relaxed);
}

}  // namespace taskbench::storage
