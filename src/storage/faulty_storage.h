#ifndef TASKBENCH_STORAGE_FAULTY_STORAGE_H_
#define TASKBENCH_STORAGE_FAULTY_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/block_storage.h"

namespace taskbench::storage {

/// Storage wrapper that starts failing after a configurable number of
/// successful operations, optionally heals after a bounded number of
/// injected failures (for exercising retry recovery), or corrupts
/// payloads on read. Thread-safe like every BlockStorage; used by the
/// failure-injection tests and the fault-recovery benchmark.
class FaultyStorage final : public BlockStorage {
 public:
  explicit FaultyStorage(std::shared_ptr<BlockStorage> inner)
      : inner_(std::move(inner)) {}

  // mutable: Get() is const in the interface but consumes fault
  // budget.
  mutable std::atomic<int> ops_until_put_failure{1 << 30};
  mutable std::atomic<int> ops_until_get_failure{1 << 30};
  /// How many failures to inject once triggered before the fault
  /// heals and operations pass through again. The (huge) default
  /// means a triggered fault is effectively permanent.
  mutable std::atomic<int> put_failures_remaining{1 << 30};
  mutable std::atomic<int> get_failures_remaining{1 << 30};
  std::atomic<bool> corrupt_reads{false};

  Status Put(const std::string& key, std::vector<uint8_t> bytes) override;
  Result<std::vector<uint8_t>> Get(const std::string& key) const override;
  // Fast paths forward to the inner backend's fast paths; one call
  // consumes exactly one op of fault budget, same as the owning
  // style, so retry tests behave identically through either API.
  Status Put(const std::string& key, const uint8_t* data,
             size_t size) override;
  Status GetInto(const std::string& key,
                 std::vector<uint8_t>* out) const override;
  Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  size_t Size() const override;
  uint64_t TotalBytes() const override;

 private:
  std::shared_ptr<BlockStorage> inner_;
};

}  // namespace taskbench::storage

#endif  // TASKBENCH_STORAGE_FAULTY_STORAGE_H_
