#ifndef TASKBENCH_STORAGE_BLOCK_CACHE_H_
#define TASKBENCH_STORAGE_BLOCK_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "data/matrix.h"

namespace taskbench::storage {

/// Per-worker cache budget used when RunOptions::block_cache_bytes
/// is left at 0.
inline constexpr uint64_t kDefaultBlockCacheBytes = 64ull << 20;  // 64 MiB

/// A bounded, byte-budgeted, *version-keyed* cache of deserialized
/// blocks. One instance per worker (single-threaded by design — no
/// locks on the hot path); the executor supplies the version it
/// expects for every lookup and the cache only ever answers with an
/// entry stored under exactly that version. Versions come from the
/// data-plane's own commit bookkeeping (writer ordinals on the thread
/// pool, immutable shared-memory directory tags on the multi-process
/// plane), so an INOUT rewrite or a crash-retry republication changes
/// the expected version and makes every stale entry unreachable — a
/// wrong-version hit is impossible by construction, not by protocol
/// discipline.
///
/// Hits hand out shared-ownership handles (`shared_ptr<const Matrix>`)
/// so no copy happens on the read path; eviction only drops the
/// cache's reference, never invalidates a handle a task still holds.
/// Entries are evicted LRU-first once the byte budget is exceeded.
/// A single value larger than the whole budget is not admitted.
class BlockCache {
 public:
  using Key = uint64_t;
  using Version = uint64_t;
  using ValuePtr = std::shared_ptr<const data::Matrix>;

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;      // capacity evictions (LRU)
    int64_t invalidations = 0;  // explicit Invalidate/EvictStale drops
    int64_t inserts = 0;
    uint64_t bytes = 0;       // currently resident payload bytes
    uint64_t peak_bytes = 0;  // high-water mark of `bytes`
  };

  explicit BlockCache(uint64_t budget_bytes) : budget_(budget_bytes) {}

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns the cached value iff `key` is present *and* was stored
  /// under exactly `version`; a version mismatch counts as a miss and
  /// leaves the entry in place (the resident version may still be the
  /// expected one for a concurrent reader at another ordinal — it
  /// stays until capacity or an explicit invalidation drops it).
  ValuePtr Get(Key key, Version version);

  /// Inserts (or overwrites) `key` at `version`. Values at or above
  /// the whole budget are not admitted (returns the pointer either
  /// way so callers can keep using it).
  ValuePtr Put(Key key, Version version, ValuePtr value);
  /// Convenience overload: takes ownership of a freshly built matrix.
  ValuePtr Put(Key key, Version version, data::Matrix&& value) {
    return Put(key, version,
               std::make_shared<const data::Matrix>(std::move(value)));
  }

  /// Drops `key` if present. Returns true when something was dropped.
  bool Invalidate(Key key);

  /// Drops every entry whose stored version no longer matches
  /// `current_version(key)` — the bulk-invalidation path the
  /// multi-process workers run when the coordinator's invalidation
  /// epoch advances. Returns the number of entries dropped.
  int64_t EvictStale(
      const std::function<Version(Key)>& current_version);

  /// Drops everything (budget and stats except counters retained).
  void Clear();

  const Stats& stats() const { return stats_; }
  uint64_t budget_bytes() const { return budget_; }
  int64_t entry_count() const { return static_cast<int64_t>(map_.size()); }

 private:
  struct Entry {
    Key key;
    Version version;
    ValuePtr value;
    uint64_t bytes;
  };
  using LruList = std::list<Entry>;

  void EvictLruUntilFits(uint64_t incoming_bytes);
  void DropEntry(LruList::iterator it, bool capacity_eviction);

  uint64_t budget_;
  LruList lru_;  // front = most recently used
  std::unordered_map<Key, LruList::iterator> map_;
  Stats stats_;
};

}  // namespace taskbench::storage

#endif  // TASKBENCH_STORAGE_BLOCK_CACHE_H_
