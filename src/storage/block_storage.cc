#include "storage/block_storage.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/strings.h"
#include "hw/topology.h"

namespace taskbench::storage {

namespace fs = std::filesystem;

namespace {
size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

size_t InMemoryStorage::DefaultShards() {
  const int cores = hw::DetectTopology().total_cpus();
  const size_t want = NextPow2(static_cast<size_t>(cores) * 4);
  return std::min<size_t>(256, std::max<size_t>(16, want));
}

InMemoryStorage::InMemoryStorage(size_t shards)
    : shards_(shards == 0 ? DefaultShards() : NextPow2(shards)) {}

Status BlockStorage::Put(const std::string& key, const uint8_t* data,
                         size_t size) {
  return Put(key, std::vector<uint8_t>(data, data + size));
}

Status BlockStorage::GetInto(const std::string& key,
                             std::vector<uint8_t>* out) const {
  TB_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, Get(key));
  *out = std::move(bytes);
  return Status::OK();
}

Status InMemoryStorage::Put(const std::string& key,
                            std::vector<uint8_t> bytes) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.objects.find(key);
  if (it != shard.objects.end()) shard.bytes -= it->second.size();
  shard.bytes += bytes.size();
  shard.objects[key] = std::move(bytes);
  return Status::OK();
}

Status InMemoryStorage::Put(const std::string& key, const uint8_t* data,
                            size_t size) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::vector<uint8_t>& slot = shard.objects[key];
  shard.bytes += size;
  shard.bytes -= slot.size();
  slot.assign(data, data + size);  // reuses the old value's capacity
  return Status::OK();
}

Result<std::vector<uint8_t>> InMemoryStorage::Get(
    const std::string& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.objects.find(key);
  if (it == shard.objects.end()) {
    return Status::NotFound(StrFormat("no object under key '%s'", key.c_str()));
  }
  return it->second;
}

Status InMemoryStorage::GetInto(const std::string& key,
                                std::vector<uint8_t>* out) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.objects.find(key);
  if (it == shard.objects.end()) {
    return Status::NotFound(StrFormat("no object under key '%s'", key.c_str()));
  }
  out->assign(it->second.begin(), it->second.end());
  return Status::OK();
}

Status InMemoryStorage::Delete(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.objects.find(key);
  if (it != shard.objects.end()) {
    shard.bytes -= it->second.size();
    shard.objects.erase(it);
  }
  return Status::OK();
}

bool InMemoryStorage::Contains(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.objects.count(key) > 0;
}

size_t InMemoryStorage::Size() const {
  size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    count += shard.objects.size();
  }
  return count;
}

uint64_t InMemoryStorage::TotalBytes() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

FileStorage::FileStorage(std::string root_dir)
    : root_dir_(std::move(root_dir)) {}

Result<std::unique_ptr<FileStorage>> FileStorage::Open(
    const std::string& root_dir) {
  std::error_code ec;
  fs::create_directories(root_dir, ec);
  if (ec) {
    return Status::Internal(StrFormat("cannot create storage dir '%s': %s",
                                      root_dir.c_str(),
                                      ec.message().c_str()));
  }
  return std::unique_ptr<FileStorage>(new FileStorage(root_dir));
}

std::string FileStorage::PathFor(const std::string& key) const {
  std::string safe;
  safe.reserve(key.size());
  for (char c : key) {
    safe += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
             c == '_' || c == '.')
                ? c
                : '_';
  }
  return root_dir_ + "/" + safe + ".blk";
}

Status FileStorage::Put(const std::string& key, std::vector<uint8_t> bytes) {
  return Put(key, bytes.data(), bytes.size());
}

Status FileStorage::Put(const std::string& key, const uint8_t* data,
                        size_t size) {
  const std::string path = PathFor(key);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal(StrFormat("cannot open '%s' for write",
                                      path.c_str()));
  }
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  if (!out) {
    return Status::Internal(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> FileStorage::Get(const std::string& key) const {
  std::vector<uint8_t> bytes;
  TB_RETURN_IF_ERROR(GetInto(key, &bytes));
  return bytes;
}

Status FileStorage::GetInto(const std::string& key,
                            std::vector<uint8_t>* out) const {
  const std::string path = PathFor(key);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound(StrFormat("no object under key '%s'", key.c_str()));
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(out->data()), size);
  if (!in) {
    return Status::Internal(StrFormat("short read from '%s'", path.c_str()));
  }
  return Status::OK();
}

Status FileStorage::Delete(const std::string& key) {
  std::error_code ec;
  fs::remove(PathFor(key), ec);  // absent file is fine (idempotent)
  return Status::OK();
}

bool FileStorage::Contains(const std::string& key) const {
  std::error_code ec;
  return fs::exists(PathFor(key), ec);
}

size_t FileStorage::Size() const {
  std::error_code ec;
  size_t count = 0;
  for (auto it = fs::directory_iterator(root_dir_, ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    if (it->path().extension() == ".blk") ++count;
  }
  return count;
}

uint64_t FileStorage::TotalBytes() const {
  std::error_code ec;
  uint64_t total = 0;
  for (auto it = fs::directory_iterator(root_dir_, ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    if (it->path().extension() == ".blk") {
      total += fs::file_size(it->path(), ec);
    }
  }
  return total;
}

}  // namespace taskbench::storage
