#ifndef TASKBENCH_STORAGE_BLOCK_STORAGE_H_
#define TASKBENCH_STORAGE_BLOCK_STORAGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace taskbench::storage {

/// Key/value storage for serialized blocks — the pluggable "storage
/// architecture" component (RocksDB-style interface). Implementations
/// must be thread-safe: the thread-pool executor issues concurrent
/// reads and writes, mirroring the concurrent (de)serialization
/// streams the paper measures.
///
/// Two access styles exist for the hot paths:
///  - the owning style (`Put(key, vector)` / `Get(key)`), which every
///    backend must implement, and
///  - the buffer-reusing style (`Put(key, ptr, size)` /
///    `GetInto(key, &buf)`), which defaults to the owning style but
///    lets backends (and callers holding pooled scratch buffers)
///    avoid allocating a fresh byte vector per operation.
class BlockStorage {
 public:
  virtual ~BlockStorage() = default;

  /// Stores `bytes` under `key`, replacing any previous value.
  virtual Status Put(const std::string& key, std::vector<uint8_t> bytes) = 0;

  /// Retrieves the value under `key`; NotFound when absent.
  virtual Result<std::vector<uint8_t>> Get(const std::string& key) const = 0;

  /// Stores `size` bytes at `data` under `key`. The caller keeps
  /// ownership of the buffer (it may be pooled scratch); backends
  /// overriding this should reuse the capacity of any value already
  /// stored under `key`. Default: copies into a vector and calls the
  /// owning Put, so wrappers stay fault-transparent.
  virtual Status Put(const std::string& key, const uint8_t* data, size_t size);

  /// Reads the value under `key` into `*out`, reusing its capacity.
  /// NotFound when absent. Default: calls the owning Get and moves.
  virtual Status GetInto(const std::string& key,
                         std::vector<uint8_t>* out) const;

  /// Removes `key`. OK even when absent (idempotent).
  virtual Status Delete(const std::string& key) = 0;

  /// True when `key` exists.
  virtual bool Contains(const std::string& key) const = 0;

  /// Number of stored objects.
  virtual size_t Size() const = 0;

  /// Total payload bytes currently stored.
  virtual uint64_t TotalBytes() const = 0;
};

/// Heap-backed storage. Used as the "memory" storage device and as the
/// backing for unit tests.
///
/// Sharded: keys hash onto independent (map, mutex) pairs so
/// concurrent Put/Get streams from the thread-pool workers contend
/// only when they land on the same stripe, not on one global lock.
/// The shard count is a construction-time knob (RunOptions::
/// storage_shards): 0 derives it from the detected core count, so
/// wider hosts automatically get wider striping.
class InMemoryStorage final : public BlockStorage {
 public:
  /// `shards` is rounded up to a power of two; 0 = DefaultShards().
  explicit InMemoryStorage(size_t shards = 0);

  /// Shard count derived from the host topology: enough stripes that
  /// every core can stream blocks with little collision probability,
  /// clamped to [16, 256] (16 is the pre-knob compile-time constant,
  /// so small hosts behave exactly as before).
  static size_t DefaultShards();

  size_t num_shards() const { return shards_.size(); }

  Status Put(const std::string& key, std::vector<uint8_t> bytes) override;
  Result<std::vector<uint8_t>> Get(const std::string& key) const override;
  Status Put(const std::string& key, const uint8_t* data,
             size_t size) override;
  Status GetInto(const std::string& key,
                 std::vector<uint8_t>* out) const override;
  Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  size_t Size() const override;
  uint64_t TotalBytes() const override;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::vector<uint8_t>> objects;
    uint64_t bytes = 0;
  };

  Shard& ShardFor(const std::string& key) const {
    return shards_[std::hash<std::string>{}(key) & (shards_.size() - 1)];
  }

  // Sized once at construction, never reallocated (Shard is immovable).
  mutable std::vector<Shard> shards_;
};

/// Filesystem-backed storage: one file per key under a root directory.
/// Keys are sanitized into file names. This is the "disk" storage
/// device of the real execution path.
class FileStorage final : public BlockStorage {
 public:
  /// Creates (or reuses) `root_dir` as the storage directory.
  static Result<std::unique_ptr<FileStorage>> Open(const std::string& root_dir);

  Status Put(const std::string& key, std::vector<uint8_t> bytes) override;
  Result<std::vector<uint8_t>> Get(const std::string& key) const override;
  Status Put(const std::string& key, const uint8_t* data,
             size_t size) override;
  Status GetInto(const std::string& key,
                 std::vector<uint8_t>* out) const override;
  Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  size_t Size() const override;
  uint64_t TotalBytes() const override;

 private:
  explicit FileStorage(std::string root_dir);
  std::string PathFor(const std::string& key) const;

  std::string root_dir_;
};

}  // namespace taskbench::storage

#endif  // TASKBENCH_STORAGE_BLOCK_STORAGE_H_
