#ifndef TASKBENCH_STORAGE_BLOCK_STORAGE_H_
#define TASKBENCH_STORAGE_BLOCK_STORAGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace taskbench::storage {

/// Key/value storage for serialized blocks — the pluggable "storage
/// architecture" component (RocksDB-style interface). Implementations
/// must be thread-safe: the thread-pool executor issues concurrent
/// reads and writes, mirroring the concurrent (de)serialization
/// streams the paper measures.
class BlockStorage {
 public:
  virtual ~BlockStorage() = default;

  /// Stores `bytes` under `key`, replacing any previous value.
  virtual Status Put(const std::string& key, std::vector<uint8_t> bytes) = 0;

  /// Retrieves the value under `key`; NotFound when absent.
  virtual Result<std::vector<uint8_t>> Get(const std::string& key) const = 0;

  /// Removes `key`. OK even when absent (idempotent).
  virtual Status Delete(const std::string& key) = 0;

  /// True when `key` exists.
  virtual bool Contains(const std::string& key) const = 0;

  /// Number of stored objects.
  virtual size_t Size() const = 0;

  /// Total payload bytes currently stored.
  virtual uint64_t TotalBytes() const = 0;
};

/// Heap-backed storage. Used as the "memory" storage device and as the
/// backing for unit tests.
class InMemoryStorage final : public BlockStorage {
 public:
  InMemoryStorage() = default;

  Status Put(const std::string& key, std::vector<uint8_t> bytes) override;
  Result<std::vector<uint8_t>> Get(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  size_t Size() const override;
  uint64_t TotalBytes() const override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<uint8_t>> objects_;
  uint64_t total_bytes_ = 0;
};

/// Filesystem-backed storage: one file per key under a root directory.
/// Keys are sanitized into file names. This is the "disk" storage
/// device of the real execution path.
class FileStorage final : public BlockStorage {
 public:
  /// Creates (or reuses) `root_dir` as the storage directory.
  static Result<std::unique_ptr<FileStorage>> Open(const std::string& root_dir);

  Status Put(const std::string& key, std::vector<uint8_t> bytes) override;
  Result<std::vector<uint8_t>> Get(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  size_t Size() const override;
  uint64_t TotalBytes() const override;

 private:
  explicit FileStorage(std::string root_dir);
  std::string PathFor(const std::string& key) const;

  std::string root_dir_;
};

}  // namespace taskbench::storage

#endif  // TASKBENCH_STORAGE_BLOCK_STORAGE_H_
