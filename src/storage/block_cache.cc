#include "storage/block_cache.h"

#include <utility>

namespace taskbench::storage {

BlockCache::ValuePtr BlockCache::Get(Key key, Version version) {
  auto it = map_.find(key);
  if (it == map_.end() || it->second->version != version) {
    ++stats_.misses;
    return nullptr;
  }
  // Move to the MRU position.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->value;
}

BlockCache::ValuePtr BlockCache::Put(Key key, Version version,
                                     ValuePtr value) {
  if (value == nullptr) return value;
  const uint64_t bytes = value->bytes();
  auto it = map_.find(key);
  if (it != map_.end()) DropEntry(it->second, /*capacity_eviction=*/false);
  if (bytes > budget_) return value;  // never admit an over-budget value
  EvictLruUntilFits(bytes);
  lru_.push_front(Entry{key, version, value, bytes});
  map_[key] = lru_.begin();
  stats_.bytes += bytes;
  ++stats_.inserts;
  if (stats_.bytes > stats_.peak_bytes) stats_.peak_bytes = stats_.bytes;
  return value;
}

bool BlockCache::Invalidate(Key key) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  DropEntry(it->second, /*capacity_eviction=*/false);
  ++stats_.invalidations;
  return true;
}

int64_t BlockCache::EvictStale(
    const std::function<Version(Key)>& current_version) {
  int64_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto next = std::next(it);
    if (current_version(it->key) != it->version) {
      DropEntry(it, /*capacity_eviction=*/false);
      ++stats_.invalidations;
      ++dropped;
    }
    it = next;
  }
  return dropped;
}

void BlockCache::Clear() {
  int64_t n = entry_count();
  lru_.clear();
  map_.clear();
  stats_.bytes = 0;
  stats_.invalidations += n;
}

void BlockCache::EvictLruUntilFits(uint64_t incoming_bytes) {
  while (!lru_.empty() && stats_.bytes + incoming_bytes > budget_) {
    DropEntry(std::prev(lru_.end()), /*capacity_eviction=*/true);
  }
}

void BlockCache::DropEntry(LruList::iterator it, bool capacity_eviction) {
  stats_.bytes -= it->bytes;
  if (capacity_eviction) ++stats_.evictions;
  map_.erase(it->key);
  lru_.erase(it);
}

}  // namespace taskbench::storage
