#ifndef TASKBENCH_STORAGE_SHM_ARENA_H_
#define TASKBENCH_STORAGE_SHM_ARENA_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace taskbench::storage {

/// A POSIX shared-memory segment (shm_open + mmap, MAP_SHARED). The
/// backing object is unlinked immediately after mapping, so the
/// memory lives exactly as long as the mappings do and nothing leaks
/// into /dev/shm on crash. Because the mapping is MAP_SHARED and
/// created *before* fork, every forked worker addresses the same
/// physical pages at the same virtual address — which is what lets
/// std::atomic objects placement-new'ed into the segment synchronize
/// across processes.
class ShmSegment {
 public:
  /// Maps `bytes` of zero-filled shared memory. `name_hint` seeds the
  /// (ephemeral) shm object name.
  static Result<ShmSegment> Create(const std::string& name_hint,
                                   uint64_t bytes);

  ShmSegment() = default;
  ~ShmSegment();
  ShmSegment(ShmSegment&& other) noexcept;
  ShmSegment& operator=(ShmSegment&& other) noexcept;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  uint8_t* base() const { return static_cast<uint8_t*>(base_); }
  uint64_t bytes() const { return bytes_; }
  bool valid() const { return base_ != nullptr; }

 private:
  void* base_ = nullptr;
  uint64_t bytes_ = 0;
};

/// Shared-memory block arena — the zero-copy data plane of the
/// multi-process executor. Workers serialize blocks (the existing
/// `storage::Serializer` wire format) straight into arena pages and
/// publish them by offset; readers deserialize straight out of the
/// same pages. Nothing ever moves through the coordinator.
///
/// Allocation is a cross-process lock-free bump pointer: one
/// fetch_add on an atomic cursor that lives in the segment itself.
/// Records are never freed individually — a datum overwritten by a
/// later task version gets a fresh record and the old one is
/// abandoned; the whole arena is reclaimed when the run's mappings
/// close. That makes write-after-read safe by construction: a reader
/// holding an old offset can keep deserializing while the new version
/// lands elsewhere.
///
/// Layout: [Header | 64-byte-aligned records...]. Each Allocate
/// returns a record offset; callers prefix their payload with
/// whatever framing they need (the executor stores a u64 byte count
/// ahead of each serialized block).
class ShmArena {
 public:
  /// An arena with `capacity` usable payload bytes.
  static Result<ShmArena> Create(const std::string& name_hint,
                                 uint64_t capacity);

  ShmArena() = default;
  ShmArena(ShmArena&&) noexcept = default;
  ShmArena& operator=(ShmArena&&) noexcept = default;

  /// Reserves `bytes` (rounded up to 64-byte alignment) and returns
  /// the record's offset. ResourceExhausted when the arena cannot
  /// hold it — including single blocks larger than the whole arena,
  /// which is reported distinctly so callers know resizing is needed
  /// rather than the run simply being too big.
  Result<uint64_t> Allocate(uint64_t bytes);

  /// Pointer to the record at `offset`. Valid in every process that
  /// inherited the mapping.
  uint8_t* At(uint64_t offset) const { return segment_.base() + offset; }

  uint64_t capacity() const;
  uint64_t used() const;
  bool valid() const { return segment_.valid(); }

 private:
  struct Header {
    std::atomic<uint64_t> next;  ///< bump cursor (offset of free space)
    uint64_t capacity = 0;       ///< total segment bytes
  };
  static_assert(std::atomic<uint64_t>::is_always_lock_free,
                "cross-process bump allocation needs a lock-free atomic");

  Header* header() const {
    return reinterpret_cast<Header*>(segment_.base());
  }

  ShmSegment segment_;
};

}  // namespace taskbench::storage

#endif  // TASKBENCH_STORAGE_SHM_ARENA_H_
