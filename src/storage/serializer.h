#ifndef TASKBENCH_STORAGE_SERIALIZER_H_
#define TASKBENCH_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/matrix.h"

namespace taskbench::storage {

/// Binary serialization of matrix blocks — the real counterpart of
/// the (de)serialization stage the paper identifies as a dominant
/// overhead (Section 5.1.2).
///
/// Wire format (little-endian):
///   magic  u32   'TBLK'
///   version u32  1
///   rows   i64
///   cols   i64
///   crc32  u32   of the payload
///   payload rows*cols float64
class Serializer {
 public:
  /// Appends the serialized form of `m` to `out`. Callers on the hot
  /// path clear and reuse one scratch vector per worker, so steady
  /// state serialization performs no allocation.
  static void Serialize(const data::Matrix& m, std::vector<uint8_t>* out);

  /// Writes exactly SerializedSize(m) bytes at `out`. Lets callers
  /// holding mapped destinations (the shared-memory arena) serialize
  /// in place with no staging copy.
  static void SerializeTo(const data::Matrix& m, uint8_t* out);

  /// Parses one serialized block from `bytes`. Fails on truncation,
  /// bad magic/version, or checksum mismatch.
  static Result<data::Matrix> Deserialize(const std::vector<uint8_t>& bytes);

  /// Same, from a raw buffer (pooled scratch on the hot path).
  static Result<data::Matrix> Deserialize(const uint8_t* data, size_t size);

  /// Size in bytes Serialize() will produce for `m`.
  static uint64_t SerializedSize(const data::Matrix& m);

  /// CRC-32 (IEEE 802.3 polynomial) of `data`.
  static uint32_t Crc32(const uint8_t* data, size_t size);
};

}  // namespace taskbench::storage

#endif  // TASKBENCH_STORAGE_SERIALIZER_H_
