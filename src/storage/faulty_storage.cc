#include "storage/faulty_storage.h"

#include <utility>

namespace taskbench::storage {

Status FaultyStorage::Put(const std::string& key,
                          std::vector<uint8_t> bytes) {
  if (ops_until_put_failure.fetch_sub(1) <= 0 &&
      put_failures_remaining.fetch_sub(1) > 0) {
    return Status::Internal("injected put failure");
  }
  return inner_->Put(key, std::move(bytes));
}

Result<std::vector<uint8_t>> FaultyStorage::Get(
    const std::string& key) const {
  if (ops_until_get_failure.fetch_sub(1) <= 0 &&
      get_failures_remaining.fetch_sub(1) > 0) {
    return Status::Internal("injected get failure");
  }
  auto bytes = inner_->Get(key);
  if (bytes.ok() && corrupt_reads.load() && !bytes->empty()) {
    (*bytes)[bytes->size() / 2] ^= 0xff;
  }
  return bytes;
}

Status FaultyStorage::Delete(const std::string& key) {
  return inner_->Delete(key);
}

bool FaultyStorage::Contains(const std::string& key) const {
  return inner_->Contains(key);
}

size_t FaultyStorage::Size() const { return inner_->Size(); }

uint64_t FaultyStorage::TotalBytes() const { return inner_->TotalBytes(); }

}  // namespace taskbench::storage
