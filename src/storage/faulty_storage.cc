#include "storage/faulty_storage.h"

#include <utility>

namespace taskbench::storage {

namespace {

/// One fault-budget draw: trigger countdown, then bounded failures.
bool DrawFault(std::atomic<int>& ops_until_failure,
               std::atomic<int>& failures_remaining) {
  return ops_until_failure.fetch_sub(1) <= 0 &&
         failures_remaining.fetch_sub(1) > 0;
}

}  // namespace

Status FaultyStorage::Put(const std::string& key,
                          std::vector<uint8_t> bytes) {
  if (DrawFault(ops_until_put_failure, put_failures_remaining)) {
    return Status::Internal("injected put failure");
  }
  return inner_->Put(key, std::move(bytes));
}

Status FaultyStorage::Put(const std::string& key, const uint8_t* data,
                          size_t size) {
  if (DrawFault(ops_until_put_failure, put_failures_remaining)) {
    return Status::Internal("injected put failure");
  }
  return inner_->Put(key, data, size);
}

Result<std::vector<uint8_t>> FaultyStorage::Get(
    const std::string& key) const {
  if (DrawFault(ops_until_get_failure, get_failures_remaining)) {
    return Status::Internal("injected get failure");
  }
  auto bytes = inner_->Get(key);
  if (bytes.ok() && corrupt_reads.load() && !bytes->empty()) {
    (*bytes)[bytes->size() / 2] ^= 0xff;
  }
  return bytes;
}

Status FaultyStorage::GetInto(const std::string& key,
                              std::vector<uint8_t>* out) const {
  if (DrawFault(ops_until_get_failure, get_failures_remaining)) {
    return Status::Internal("injected get failure");
  }
  TB_RETURN_IF_ERROR(inner_->GetInto(key, out));
  if (corrupt_reads.load() && !out->empty()) {
    (*out)[out->size() / 2] ^= 0xff;
  }
  return Status::OK();
}

Status FaultyStorage::Delete(const std::string& key) {
  return inner_->Delete(key);
}

bool FaultyStorage::Contains(const std::string& key) const {
  return inner_->Contains(key);
}

size_t FaultyStorage::Size() const { return inner_->Size(); }

uint64_t FaultyStorage::TotalBytes() const { return inner_->TotalBytes(); }

}  // namespace taskbench::storage
