#ifndef TASKBENCH_ALGOS_KMEANS_H_
#define TASKBENCH_ALGOS_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "data/grid.h"
#include "perf/task_cost.h"
#include "runtime/task_graph.h"

namespace taskbench::algos {

/// Options of the distributed K-means workflow.
struct KMeansOptions {
  /// The algorithm-specific parameter of the paper's analysis
  /// (Table 1 factor d; Figure 9a varies it over 10/100/1000).
  int num_clusters = 10;
  /// Lloyd iterations; each contributes one partial_sum level plus a
  /// merge to the DAG (Figure 6a's deep, narrow shape).
  int iterations = 3;
  /// Processor the partial_sum parallel fraction targets.
  Processor processor = Processor::kCpu;
  /// Materialize sample blocks and attach real kernels.
  bool materialize = false;
  uint64_t seed = 42;
  /// Fraction of skewed elements when materializing (Section 5.2.3);
  /// 0 = uniform. Values in [0, 1].
  double skew = 0.0;
  /// Generate Gaussian blobs instead of uniform noise (makes real
  /// runs converge meaningfully).
  bool blobs = false;
  /// When materializing, slice the sample blocks out of this matrix
  /// instead of generating data. Shape must match the spec. Not
  /// owned; must outlive BuildKMeans.
  const data::Matrix* samples = nullptr;
  /// Optional initial centroids (k x features); defaults to the first
  /// k rows of the first block. Not owned.
  const data::Matrix* initial_centroids = nullptr;
};

/// The built workflow: graph plus handles to the sample blocks and
/// the centroids datum (overwritten every iteration, which chains
/// the iterations through WAR/RAW dependencies exactly like the
/// PyCOMPSs version).
struct KMeansWorkflow {
  runtime::TaskGraph graph;
  std::vector<runtime::DataId> blocks;  ///< row blocks, top to bottom
  runtime::DataId centroids = -1;       ///< K x N matrix
  KMeansOptions options;
};

/// Builds the dislib-style K-means workflow on a row-wise partitioned
/// dataset (`spec.grid_cols()` must be 1 — the paper enforces one
/// block per grid row, Section 4.4.4). Each iteration runs one
/// `partial_sum` task per block (partially parallel user code,
/// Figure 4b) and a serial `merge` task on CPU that recomputes the
/// centroids.
Result<KMeansWorkflow> BuildKMeans(const data::GridSpec& spec,
                                   const KMeansOptions& options);

/// Cost descriptor of one partial_sum task on an m x n block with k
/// clusters: memory-bound parallel fraction of k distance passes plus
/// an interpreter-bound serial fraction (see perf/calibration.h).
perf::TaskCost PartialSumCost(int64_t m, int64_t n, int k);

/// Cost descriptor of the merge task combining `num_partials`
/// partial results of k x (n+1) values: serial CPU work.
perf::TaskCost MergeCost(int64_t num_partials, int64_t n, int k);

}  // namespace taskbench::algos

#endif  // TASKBENCH_ALGOS_KMEANS_H_
