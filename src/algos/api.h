#ifndef TASKBENCH_ALGOS_API_H_
#define TASKBENCH_ALGOS_API_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/matrix.h"

namespace taskbench::algos {

/// High-level one-call entry points (the dislib-equivalent user API):
/// each builds the task-based workflow, executes it on the thread
/// pool, and returns the result. Use the Build* functions directly
/// for control over execution, simulation and metrics.

/// Options shared by the high-level calls.
struct ExecuteOptions {
  /// Worker threads of the local execution.
  int num_threads = 4;
  /// Block dimension (square b x b blocks for matmul; b-row blocks
  /// for kmeans). 0 = pick one block per ~worker for matmul /
  /// 4 blocks per worker for kmeans.
  int64_t block_dim = 0;
};

/// C = A * B through the distributed blocked workflow. Fails on
/// dimension mismatch.
Result<data::Matrix> DistributedMatmul(const data::Matrix& a,
                                       const data::Matrix& b,
                                       const ExecuteOptions& options = {});

/// Result of a K-means fit.
struct KMeansFit {
  data::Matrix centroids;          ///< k x features
  std::vector<int> assignments;    ///< per-sample nearest centroid
  double inertia = 0;              ///< sum of squared distances
};

/// Lloyd's K-means over `samples` (rows = samples) through the
/// distributed workflow, seeded with the first k distinct rows.
Result<KMeansFit> DistributedKMeans(const data::Matrix& samples, int k,
                                    int iterations,
                                    const ExecuteOptions& options = {});

}  // namespace taskbench::algos

#endif  // TASKBENCH_ALGOS_API_H_
