#ifndef TASKBENCH_ALGOS_API_H_
#define TASKBENCH_ALGOS_API_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/matrix.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "runtime/run_options.h"

namespace taskbench::algos {

/// High-level one-call entry points (the dislib-equivalent user API):
/// each builds the task-based workflow and executes it through the
/// common `runtime::Executor` interface — the thread pool for real
/// results, the simulated executor for cluster-scale what-ifs; fault
/// plans and retry budgets ride along in the executor's RunOptions.
/// Use the Build* functions directly for full control over workflow
/// construction.

/// Outcome of one high-level workflow run: the execution report (with
/// fault/retry counters when a plan was active) plus the materialized
/// result when the executor computes real values.
struct MatmulRun {
  runtime::RunReport report;
  /// C = A * B; empty unless executor.materializes().
  data::Matrix product;
};

/// Result of a K-means fit.
struct KMeansFit {
  data::Matrix centroids;          ///< k x features
  std::vector<int> assignments;    ///< per-sample nearest centroid
  double inertia = 0;              ///< sum of squared distances
};

struct KMeansRun {
  runtime::RunReport report;
  /// Fit results; default-constructed unless executor.materializes().
  KMeansFit fit;
};

/// C = A * B through the distributed blocked workflow, executed on
/// `executor`. Fails on dimension mismatch. Partitioning comes from
/// executor.options() (block_dim, num_threads).
Result<MatmulRun> RunDistributedMatmul(runtime::Executor& executor,
                                       const data::Matrix& a,
                                       const data::Matrix& b);

/// Lloyd's K-means over `samples` (rows = samples) through the
/// distributed workflow, seeded with the first k distinct rows,
/// executed on `executor`.
Result<KMeansRun> RunDistributedKMeans(runtime::Executor& executor,
                                       const data::Matrix& samples, int k,
                                       int iterations);

}  // namespace taskbench::algos

#endif  // TASKBENCH_ALGOS_API_H_
