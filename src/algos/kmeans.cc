#include "algos/kmeans.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/strings.h"
#include "data/generators.h"
#include "perf/calibration.h"

namespace taskbench::algos {

namespace {

namespace calib = perf::calib;
using runtime::DataId;
using runtime::Dir;
using runtime::TaskSpec;

/// Kernel of partial_sum: assigns each sample row of the block to the
/// nearest centroid and accumulates per-cluster feature sums and
/// counts into a k x (n+1) partial (last column = count).
Status PartialSumKernel(const std::vector<const data::Matrix*>& inputs,
                        const std::vector<data::Matrix*>& outputs) {
  if (inputs.size() != 2 || outputs.size() != 1) {
    return Status::InvalidArgument("partial_sum expects 2 inputs, 1 output");
  }
  const data::Matrix& block = *inputs[0];
  const data::Matrix& centroids = *inputs[1];
  if (block.cols() != centroids.cols()) {
    return Status::InvalidArgument(StrFormat(
        "feature mismatch: block has %lld features, centroids %lld",
        static_cast<long long>(block.cols()),
        static_cast<long long>(centroids.cols())));
  }
  const int64_t k = centroids.rows();
  const int64_t n = block.cols();
  data::Matrix partial(k, n + 1, 0.0);
  for (int64_t r = 0; r < block.rows(); ++r) {
    int64_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (int64_t c = 0; c < k; ++c) {
      double dist = 0;
      for (int64_t f = 0; f < n; ++f) {
        const double d = block.At(r, f) - centroids.At(c, f);
        dist += d * d;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    for (int64_t f = 0; f < n; ++f) {
      partial.At(best, f) += block.At(r, f);
    }
    partial.At(best, n) += 1.0;
  }
  *outputs[0] = std::move(partial);
  return Status::OK();
}

/// Kernel of merge: sums the iteration's partials and recomputes the
/// centroids (clusters with no members keep their previous centroid).
/// inputs = [partial...; old centroids (aliasing outputs[0])].
Status MergeKernel(const std::vector<const data::Matrix*>& inputs,
                   const std::vector<data::Matrix*>& outputs) {
  if (inputs.size() < 2 || outputs.size() != 1) {
    return Status::InvalidArgument(
        "merge expects >= 1 partial plus centroids, 1 output");
  }
  data::Matrix& centroids = *outputs[0];
  const int64_t k = centroids.rows();
  const int64_t n = centroids.cols();
  data::Matrix sums(k, n + 1, 0.0);
  for (size_t p = 0; p + 1 < inputs.size(); ++p) {
    const data::Matrix& partial = *inputs[p];
    if (partial.rows() != k || partial.cols() != n + 1) {
      return Status::InvalidArgument("partial has wrong shape");
    }
    for (int64_t c = 0; c < k; ++c) {
      for (int64_t f = 0; f <= n; ++f) {
        sums.At(c, f) += partial.At(c, f);
      }
    }
  }
  for (int64_t c = 0; c < k; ++c) {
    const double count = sums.At(c, n);
    if (count > 0) {
      for (int64_t f = 0; f < n; ++f) {
        centroids.At(c, f) = sums.At(c, f) / count;
      }
    }  // empty cluster: keep the previous centroid
  }
  return Status::OK();
}

}  // namespace

perf::TaskCost PartialSumCost(int64_t m, int64_t n, int k) {
  perf::TaskCost cost;
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  const double block_bytes = 8.0 * dm * dn;
  const double centroid_bytes = 8.0 * dk * dn;
  const double partial_bytes = 8.0 * dk * (dn + 1);

  cost.parallel.flops =
      calib::kKmeansParallelFlopsPerElementPerCluster * dm * dn * dk;
  cost.parallel.bytes =
      calib::kKmeansParallelBytesPerElementPerCluster * dm * dn * dk;
  // Interpreter-bound serial bookkeeping streaming the block several
  // times (see calibration.h for the Figure 1 anchoring).
  cost.serial.flops = dm * dk;
  cost.serial.bytes = calib::kKmeansSerialStreamFactor * block_bytes;

  cost.h2d_bytes = static_cast<uint64_t>(block_bytes + centroid_bytes);
  cost.d2h_bytes = static_cast<uint64_t>(partial_bytes);
  cost.num_transfers = 3;
  cost.num_kernels = calib::kKmeansKernelLaunches;
  cost.input_bytes = static_cast<uint64_t>(block_bytes + centroid_bytes);
  cost.output_bytes = static_cast<uint64_t>(partial_bytes);
  cost.gpu_working_set_bytes = static_cast<uint64_t>(
      calib::kKmeansOomBlockFactor * block_bytes + 8.0 * dm * dk +
      centroid_bytes);
  cost.gpu_curve.peak_fraction = calib::kKmeansGpuPeakFraction;
  cost.gpu_curve.ramp_work = calib::kKmeansGpuRampWork;
  cost.gpu_curve.alpha = calib::kKmeansGpuAlpha;
  return cost;
}

perf::TaskCost MergeCost(int64_t num_partials, int64_t n, int k) {
  perf::TaskCost cost;
  const double volume = static_cast<double>(num_partials) *
                        static_cast<double>(k) *
                        (static_cast<double>(n) + 1) * 8.0;
  cost.serial.flops = volume / 8.0;
  cost.serial.bytes = 2.0 * volume;
  cost.input_bytes = static_cast<uint64_t>(
      volume + 8.0 * static_cast<double>(k) * static_cast<double>(n));
  cost.output_bytes =
      static_cast<uint64_t>(8.0 * static_cast<double>(k) *
                            static_cast<double>(n));
  cost.num_kernels = 1;
  return cost;
}

Result<KMeansWorkflow> BuildKMeans(const data::GridSpec& spec,
                                   const KMeansOptions& options) {
  if (spec.grid_cols() != 1) {
    return Status::InvalidArgument(StrFormat(
        "K-means requires row-wise chunking (grid cols == 1), got %s; "
        "the paper enforces one block per grid row (Section 4.4.4)",
        spec.GridDimString().c_str()));
  }
  if (options.num_clusters < 1) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (options.iterations < 1) {
    return Status::InvalidArgument("iterations must be >= 1");
  }
  const int64_t n = spec.dataset().cols;
  const int k = options.num_clusters;

  KMeansWorkflow wf;
  wf.options = options;

  if (options.samples != nullptr &&
      (options.samples->rows() != spec.dataset().rows ||
       options.samples->cols() != spec.dataset().cols)) {
    return Status::InvalidArgument(StrFormat(
        "samples are %lldx%lld but the spec describes %lldx%lld",
        static_cast<long long>(options.samples->rows()),
        static_cast<long long>(options.samples->cols()),
        static_cast<long long>(spec.dataset().rows),
        static_cast<long long>(spec.dataset().cols)));
  }

  // Sample blocks.
  for (int64_t b = 0; b < spec.grid_rows(); ++b) {
    const data::BlockExtent e = spec.ExtentAt(b, 0);
    const std::string name = StrFormat("X[%lld]", static_cast<long long>(b));
    if (options.materialize && options.samples != nullptr) {
      TB_ASSIGN_OR_RETURN(
          data::Matrix block,
          options.samples->Slice(e.row0, e.col0, e.rows, e.cols));
      wf.blocks.push_back(wf.graph.AddData(std::move(block), name));
    } else if (options.materialize) {
      data::Matrix block(e.rows, e.cols);
      Rng rng(options.seed ^ (static_cast<uint64_t>(b) * 0x9e3779b9ULL));
      if (options.blobs) {
        data::FillGaussianBlobs(&block, &rng, k);
      } else if (options.skew > 0) {
        data::FillSkewed(&block, &rng, options.skew);
      } else {
        data::FillUniform(&block, &rng);
      }
      wf.blocks.push_back(wf.graph.AddData(std::move(block), name));
    } else {
      wf.blocks.push_back(wf.graph.AddData(e.bytes(), name));
    }
  }

  // Centroids: K x N, user-provided or seeded from the first block's
  // first K rows.
  if (options.materialize && options.initial_centroids != nullptr) {
    if (options.initial_centroids->rows() != k ||
        options.initial_centroids->cols() != n) {
      return Status::InvalidArgument(StrFormat(
          "initial centroids are %lldx%lld, expected %dx%lld",
          static_cast<long long>(options.initial_centroids->rows()),
          static_cast<long long>(options.initial_centroids->cols()), k,
          static_cast<long long>(n)));
    }
    wf.centroids =
        wf.graph.AddData(*options.initial_centroids, "centroids");
  } else if (options.materialize) {
    const data::Matrix& first =
        *wf.graph.data(wf.blocks.front()).value;
    if (first.rows() < k) {
      return Status::InvalidArgument(StrFormat(
          "first block has %lld rows, cannot seed %d centroids",
          static_cast<long long>(first.rows()), k));
    }
    TB_ASSIGN_OR_RETURN(data::Matrix init, first.Slice(0, 0, k, n));
    wf.centroids = wf.graph.AddData(std::move(init), "centroids");
  } else {
    wf.centroids = wf.graph.AddData(
        static_cast<uint64_t>(k) * static_cast<uint64_t>(n) * 8,
        "centroids");
  }

  const uint64_t partial_bytes =
      static_cast<uint64_t>(k) * static_cast<uint64_t>(n + 1) * 8;
  for (int iter = 0; iter < options.iterations; ++iter) {
    std::vector<DataId> partials;
    for (int64_t b = 0; b < spec.grid_rows(); ++b) {
      const data::BlockExtent e = spec.ExtentAt(b, 0);
      const DataId partial = wf.graph.AddData(
          partial_bytes, StrFormat("P%d[%lld]", iter,
                                   static_cast<long long>(b)));
      TaskSpec task;
      task.type = "partial_sum";
      task.params = {{wf.blocks[static_cast<size_t>(b)], Dir::kIn},
                     {wf.centroids, Dir::kIn},
                     {partial, Dir::kOut}};
      if (options.materialize) task.kernel = PartialSumKernel;
      task.cost = PartialSumCost(e.rows, e.cols, k);
      task.processor = options.processor;
      TB_RETURN_IF_ERROR(wf.graph.Submit(std::move(task)).status());
      partials.push_back(partial);
    }

    TaskSpec merge;
    merge.type = "merge";
    for (DataId partial : partials) merge.params.push_back({partial, Dir::kIn});
    merge.params.push_back({wf.centroids, Dir::kInOut});
    if (options.materialize) merge.kernel = MergeKernel;
    merge.cost = MergeCost(static_cast<int64_t>(partials.size()), n, k);
    merge.processor = Processor::kCpu;  // reduction stays on CPU
    TB_RETURN_IF_ERROR(wf.graph.Submit(std::move(merge)).status());
  }
  return wf;
}

}  // namespace taskbench::algos
