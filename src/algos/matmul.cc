#include "algos/matmul.h"

#include <utility>

#include "common/strings.h"
#include "data/generators.h"
#include "perf/calibration.h"

namespace taskbench::algos {

namespace {

namespace calib = perf::calib;
using runtime::DataId;
using runtime::Dir;
using runtime::TaskSpec;

/// Kernel of matmul_func: out = in0 * in1.
Status MatmulKernel(const std::vector<const data::Matrix*>& inputs,
                    const std::vector<data::Matrix*>& outputs) {
  if (inputs.size() != 2 || outputs.size() != 1) {
    return Status::InvalidArgument("matmul_func expects 2 inputs, 1 output");
  }
  TB_ASSIGN_OR_RETURN(*outputs[0], data::Multiply(*inputs[0], *inputs[1]));
  return Status::OK();
}

/// Kernel of add_func: out = in0 + in1.
Status AddKernel(const std::vector<const data::Matrix*>& inputs,
                 const std::vector<data::Matrix*>& outputs) {
  if (inputs.size() != 2 || outputs.size() != 1) {
    return Status::InvalidArgument("add_func expects 2 inputs, 1 output");
  }
  TB_ASSIGN_OR_RETURN(*outputs[0], data::Add(*inputs[0], *inputs[1]));
  return Status::OK();
}

}  // namespace

perf::TaskCost MatmulFuncCost(int64_t m, int64_t n, int64_t q, bool fma) {
  perf::TaskCost cost;
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  const double dq = static_cast<double>(q);
  const double in_bytes = 8.0 * (dm * dn + dn * dq);
  const double out_bytes = 8.0 * dm * dq;
  cost.parallel.flops = calib::kMatmulFlopsPerMac * dm * dn * dq;
  cost.parallel.bytes = in_bytes + out_bytes;
  // Fully parallel user code (Figure 4c): no serial fraction.
  cost.h2d_bytes = static_cast<uint64_t>(in_bytes);
  cost.d2h_bytes = static_cast<uint64_t>(out_bytes);
  cost.num_transfers = 3;
  cost.num_kernels = 1;
  cost.input_bytes = static_cast<uint64_t>(in_bytes);
  cost.output_bytes = static_cast<uint64_t>(out_bytes);
  cost.gpu_working_set_bytes = static_cast<uint64_t>(
      calib::kMatmulOomTempMargin * (in_bytes + out_bytes));
  cost.gpu_curve.peak_fraction =
      fma ? calib::kMatmulFmaPeakFraction : 1.0;
  cost.gpu_curve.ramp_work = calib::kMatmulGpuRampWork;
  cost.gpu_curve.alpha = calib::kMatmulGpuAlpha;
  return cost;
}

perf::TaskCost AddFuncCost(int64_t m, int64_t q) {
  perf::TaskCost cost;
  const double elems = static_cast<double>(m) * static_cast<double>(q);
  cost.parallel.flops = calib::kAddFlopsPerElement * elems;
  cost.parallel.bytes = 3.0 * 8.0 * elems;  // two reads + one write
  cost.h2d_bytes = static_cast<uint64_t>(2.0 * 8.0 * elems);
  cost.d2h_bytes = static_cast<uint64_t>(8.0 * elems);
  cost.num_transfers = 3;
  cost.num_kernels = 1;
  cost.input_bytes = cost.h2d_bytes;
  cost.output_bytes = cost.d2h_bytes;
  cost.gpu_working_set_bytes = static_cast<uint64_t>(
      calib::kMatmulOomTempMargin * 3.0 * 8.0 * elems);
  // Single elementwise kernel: bandwidth-bound, no utilization ramp
  // worth modeling — GPU loses on CPU-GPU communication, not on
  // utilization (Section 5.2.1).
  return cost;
}

Result<MatmulWorkflow> BuildMatmul(const data::GridSpec& spec,
                                   const MatmulOptions& options) {
  return BuildMatmul(spec, spec, options);
}

Result<MatmulWorkflow> BuildMatmul(const data::GridSpec& a_spec,
                                   const data::GridSpec& b_spec,
                                   const MatmulOptions& options) {
  if (a_spec.dataset().cols != b_spec.dataset().rows) {
    return Status::InvalidArgument(StrFormat(
        "matmul inner dataset dimensions differ: A cols %lld, B rows %lld",
        static_cast<long long>(a_spec.dataset().cols),
        static_cast<long long>(b_spec.dataset().rows)));
  }
  if (a_spec.block_cols() != b_spec.block_rows()) {
    return Status::InvalidArgument(StrFormat(
        "matmul inner block dimensions differ: A block cols %lld, "
        "B block rows %lld",
        static_cast<long long>(a_spec.block_cols()),
        static_cast<long long>(b_spec.block_rows())));
  }

  MatmulWorkflow wf;
  const int64_t gk = a_spec.grid_rows();   // C grid rows
  const int64_t gl = a_spec.grid_cols();   // inner grid dimension
  const int64_t gq = b_spec.grid_cols();   // C grid cols

  const std::string func_name = options.fma ? "matmul_fma_func"
                                            : "matmul_func";

  // Register inputs: sliced from provided matrices, generated
  // randomly, or size-only (simulation mode).
  auto register_blocks = [&](const data::GridSpec& spec, const char* label,
                             uint64_t seed, const data::Matrix* values)
      -> Result<std::vector<std::vector<DataId>>> {
    if (values != nullptr &&
        (values->rows() != spec.dataset().rows ||
         values->cols() != spec.dataset().cols)) {
      return Status::InvalidArgument(StrFormat(
          "%s values are %lldx%lld but the spec describes %lldx%lld", label,
          static_cast<long long>(values->rows()),
          static_cast<long long>(values->cols()),
          static_cast<long long>(spec.dataset().rows),
          static_cast<long long>(spec.dataset().cols)));
    }
    std::vector<std::vector<DataId>> ids(
        static_cast<size_t>(spec.grid_rows()));
    for (int64_t r = 0; r < spec.grid_rows(); ++r) {
      for (int64_t c = 0; c < spec.grid_cols(); ++c) {
        const data::BlockExtent e = spec.ExtentAt(r, c);
        const std::string name =
            StrFormat("%s[%lld][%lld]", label, static_cast<long long>(r),
                      static_cast<long long>(c));
        if (options.materialize && values != nullptr) {
          TB_ASSIGN_OR_RETURN(data::Matrix block,
                              values->Slice(e.row0, e.col0, e.rows, e.cols));
          ids[static_cast<size_t>(r)].push_back(
              wf.graph.AddData(std::move(block), name));
        } else if (options.materialize) {
          data::Matrix block(e.rows, e.cols);
          Rng rng(seed ^ (static_cast<uint64_t>(r) << 24) ^
                  static_cast<uint64_t>(c));
          data::FillUniform(&block, &rng);
          ids[static_cast<size_t>(r)].push_back(
              wf.graph.AddData(std::move(block), name));
        } else {
          ids[static_cast<size_t>(r)].push_back(
              wf.graph.AddData(e.bytes(), name));
        }
      }
    }
    return ids;
  };

  TB_ASSIGN_OR_RETURN(
      wf.a, register_blocks(a_spec, "A", options.seed, options.a_values));
  TB_ASSIGN_OR_RETURN(
      wf.b, register_blocks(b_spec, "B", options.seed + 1,
                            options.b_values));

  wf.c.resize(static_cast<size_t>(gk));
  for (int64_t i = 0; i < gk; ++i) {
    for (int64_t j = 0; j < gq; ++j) {
      const int64_t m = a_spec.ExtentAt(i, 0).rows;
      const int64_t q = b_spec.ExtentAt(0, j).cols;
      const uint64_t out_bytes =
          static_cast<uint64_t>(m) * static_cast<uint64_t>(q) * 8;

      // One matmul_func per inner index k producing a partial product.
      std::vector<DataId> partials;
      for (int64_t k = 0; k < gl; ++k) {
        const int64_t n = a_spec.ExtentAt(i, k).cols;
        const DataId partial = wf.graph.AddData(
            out_bytes, StrFormat("P[%lld][%lld]k%lld",
                                 static_cast<long long>(i),
                                 static_cast<long long>(j),
                                 static_cast<long long>(k)));
        TaskSpec spec;
        spec.type = func_name;
        spec.params = {{wf.a[static_cast<size_t>(i)][static_cast<size_t>(k)],
                        Dir::kIn},
                       {wf.b[static_cast<size_t>(k)][static_cast<size_t>(j)],
                        Dir::kIn},
                       {partial, Dir::kOut}};
        if (options.materialize) spec.kernel = MatmulKernel;
        spec.cost = MatmulFuncCost(m, n, q, options.fma);
        spec.processor = options.processor;
        TB_RETURN_IF_ERROR(wf.graph.Submit(std::move(spec)).status());
        partials.push_back(partial);
      }

      // Pairwise add_func tree combining the partial products.
      while (partials.size() > 1) {
        std::vector<DataId> next;
        for (size_t p = 0; p + 1 < partials.size(); p += 2) {
          const DataId sum = wf.graph.AddData(
              out_bytes, StrFormat("S[%lld][%lld]", static_cast<long long>(i),
                                   static_cast<long long>(j)));
          TaskSpec spec;
          spec.type = "add_func";
          spec.params = {{partials[p], Dir::kIn},
                         {partials[p + 1], Dir::kIn},
                         {sum, Dir::kOut}};
          if (options.materialize) spec.kernel = AddKernel;
          spec.cost = AddFuncCost(m, q);
          spec.processor = options.processor;
          TB_RETURN_IF_ERROR(wf.graph.Submit(std::move(spec)).status());
          next.push_back(sum);
        }
        if (partials.size() % 2 == 1) next.push_back(partials.back());
        partials = std::move(next);
      }
      wf.c[static_cast<size_t>(i)].push_back(partials.front());
    }
  }
  return wf;
}

}  // namespace taskbench::algos
