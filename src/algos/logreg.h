#ifndef TASKBENCH_ALGOS_LOGREG_H_
#define TASKBENCH_ALGOS_LOGREG_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "data/grid.h"
#include "perf/task_cost.h"
#include "runtime/task_graph.h"

namespace taskbench::algos {

/// Options of the distributed logistic-regression training workflow
/// (batch gradient descent).
struct LogRegOptions {
  int iterations = 5;
  double learning_rate = 0.1;
  Processor processor = Processor::kCpu;
  bool materialize = false;
  uint64_t seed = 42;
  /// When materializing, slice sample blocks from this matrix where
  /// the LAST column is the binary label (0/1) and the remaining
  /// columns are features. Not owned. When null, synthetic separable
  /// data is generated.
  const data::Matrix* samples_with_labels = nullptr;
};

/// The built workflow: weights has `features + 1` entries (bias
/// last), updated in place each iteration.
struct LogRegWorkflow {
  runtime::TaskGraph graph;
  std::vector<runtime::DataId> blocks;  ///< row blocks incl. label col
  runtime::DataId weights = -1;         ///< 1 x (features + 1)
  LogRegOptions options;
};

/// Builds distributed logistic regression: per iteration one
/// `grad_func` task per row block (partially parallel: the
/// matrix-vector products parallelize, the loss bookkeeping does
/// not) plus a serial `apply_grad` update task. An intermediate data
/// point on the Section 5.5.1 spectrum: its parallel/serial ratio is
/// higher than K-means', yet its arithmetic intensity (~2 flops/byte,
/// one pass over the block per iteration) is so low that CPU-GPU
/// communication erases the GPU's parallel-fraction win — a partially
/// parallel algorithm where GPUs roughly break even.
Result<LogRegWorkflow> BuildLogReg(const data::GridSpec& spec,
                                   const LogRegOptions& options);

/// Cost descriptor of one grad_func task over an m x n block
/// (n = features + label column).
perf::TaskCost GradFuncCost(int64_t m, int64_t n);

/// Cost descriptor of the apply_grad task combining `num_partials`
/// gradients of `n` entries.
perf::TaskCost ApplyGradCost(int64_t num_partials, int64_t n);

}  // namespace taskbench::algos

#endif  // TASKBENCH_ALGOS_LOGREG_H_
