#include "algos/api.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "algos/kmeans.h"
#include "algos/matmul.h"
#include "common/strings.h"
#include "runtime/thread_pool_executor.h"

namespace taskbench::algos {

namespace {

int64_t DefaultBlockDim(int64_t rows, int64_t cols, int num_threads,
                        int64_t blocks_per_thread) {
  // Aim for blocks_per_thread blocks per worker along the partitioned
  // dimension(s), but never below 1 element.
  const int64_t target_blocks =
      std::max<int64_t>(1, num_threads * blocks_per_thread);
  const int64_t dim = std::max(rows, cols);
  return std::max<int64_t>(1, dim / target_blocks);
}

}  // namespace

Result<MatmulRun> RunDistributedMatmul(runtime::Executor& executor,
                                       const data::Matrix& a,
                                       const data::Matrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument(StrFormat(
        "matmul dimension mismatch: %lldx%lld * %lldx%lld",
        static_cast<long long>(a.rows()), static_cast<long long>(a.cols()),
        static_cast<long long>(b.rows()), static_cast<long long>(b.cols())));
  }
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("matmul inputs must be non-empty");
  }
  const runtime::RunOptions& options = executor.options();
  int64_t block = options.block_dim > 0
                      ? options.block_dim
                      : DefaultBlockDim(a.rows(), a.cols(),
                                        options.num_threads, 1);
  block = std::min({block, a.rows(), a.cols(), b.cols()});

  TB_ASSIGN_OR_RETURN(
      data::GridSpec a_spec,
      data::GridSpec::Create(data::DatasetSpec{"A", a.rows(), a.cols()},
                             block, block));
  TB_ASSIGN_OR_RETURN(
      data::GridSpec b_spec,
      data::GridSpec::Create(data::DatasetSpec{"B", b.rows(), b.cols()},
                             block, block));

  MatmulOptions build;
  build.materialize = executor.materializes();
  build.a_values = &a;
  build.b_values = &b;
  TB_ASSIGN_OR_RETURN(MatmulWorkflow wf, BuildMatmul(a_spec, b_spec, build));

  MatmulRun run;
  TB_ASSIGN_OR_RETURN(run.report, executor.Run(wf.graph));
  if (!executor.materializes()) return run;

  run.product = data::Matrix(a.rows(), b.cols());
  for (size_t r = 0; r < wf.c.size(); ++r) {
    for (size_t q = 0; q < wf.c[r].size(); ++q) {
      TB_ASSIGN_OR_RETURN(const data::Matrix block_value,
                          executor.Fetch(wf.graph, wf.c[r][q]));
      const auto ea = a_spec.ExtentAt(static_cast<int64_t>(r), 0);
      const auto eb = b_spec.ExtentAt(0, static_cast<int64_t>(q));
      TB_RETURN_IF_ERROR(
          run.product.AssignSlice(ea.row0, eb.col0, block_value));
    }
  }
  return run;
}

Result<KMeansRun> RunDistributedKMeans(runtime::Executor& executor,
                                       const data::Matrix& samples, int k,
                                       int iterations) {
  if (samples.empty()) {
    return Status::InvalidArgument("no samples");
  }
  if (k < 1 || k > samples.rows()) {
    return Status::InvalidArgument(
        StrFormat("k=%d out of range for %lld samples", k,
                  static_cast<long long>(samples.rows())));
  }
  const runtime::RunOptions& options = executor.options();
  int64_t block_rows =
      options.block_dim > 0
          ? options.block_dim
          : DefaultBlockDim(samples.rows(), 1, options.num_threads, 4);
  // The first block seeds the centroids, so it must hold >= k rows.
  block_rows = std::min(std::max<int64_t>(block_rows, k), samples.rows());

  TB_ASSIGN_OR_RETURN(
      data::GridSpec spec,
      data::GridSpec::Create(
          data::DatasetSpec{"X", samples.rows(), samples.cols()}, block_rows,
          samples.cols()));

  KMeansOptions build;
  build.materialize = executor.materializes();
  build.num_clusters = k;
  build.iterations = iterations;
  build.samples = &samples;
  TB_ASSIGN_OR_RETURN(KMeansWorkflow wf, BuildKMeans(spec, build));

  KMeansRun run;
  TB_ASSIGN_OR_RETURN(run.report, executor.Run(wf.graph));
  if (!executor.materializes()) return run;

  KMeansFit& fit = run.fit;
  TB_ASSIGN_OR_RETURN(fit.centroids,
                      executor.Fetch(wf.graph, wf.centroids));

  // Final assignment pass (serial; the per-iteration assignments live
  // inside the partial_sum tasks).
  fit.assignments.resize(static_cast<size_t>(samples.rows()));
  for (int64_t r = 0; r < samples.rows(); ++r) {
    int best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (int c = 0; c < k; ++c) {
      double dist = 0;
      for (int64_t f = 0; f < samples.cols(); ++f) {
        const double d = samples.At(r, f) - fit.centroids.At(c, f);
        dist += d * d;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    fit.assignments[static_cast<size_t>(r)] = best;
    fit.inertia += best_dist;
  }
  return run;
}

}  // namespace taskbench::algos
