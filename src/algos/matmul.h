#ifndef TASKBENCH_ALGOS_MATMUL_H_
#define TASKBENCH_ALGOS_MATMUL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "data/grid.h"
#include "perf/task_cost.h"
#include "runtime/task_graph.h"

namespace taskbench::algos {

/// Options of the distributed matrix multiplication workflow.
struct MatmulOptions {
  /// Processor the parallel task fractions target.
  Processor processor = Processor::kCpu;
  /// Use the Fused-Multiply-Add implementation variant the paper's
  /// generalizability study runs (Figure 12).
  bool fma = false;
  /// Materialize input blocks and attach real kernels so the graph
  /// can run on the thread-pool executor. Simulation-only graphs skip
  /// this (blocks are described by size only).
  bool materialize = false;
  uint64_t seed = 42;
  /// When materializing, slice the blocks out of these matrices
  /// instead of generating random data. Shapes must match the specs.
  /// Not owned; must outlive BuildMatmul.
  const data::Matrix* a_values = nullptr;
  const data::Matrix* b_values = nullptr;
};

/// The built workflow: graph plus the block handles of A, B and C.
struct MatmulWorkflow {
  runtime::TaskGraph graph;
  /// a[k][l] = block (k,l) of A, etc. C has A's grid rows and B's
  /// grid cols.
  std::vector<std::vector<runtime::DataId>> a;
  std::vector<std::vector<runtime::DataId>> b;
  std::vector<std::vector<runtime::DataId>> c;
};

/// Builds the dislib-style blocked matmul C = A * B: one
/// `matmul_func` task per (i, k, j) block triple producing a partial
/// product, combined per (i, j) by a tree of `add_func` tasks —
/// the wide, shallow DAG of Figure 6b. A 1x1 grid degenerates to a
/// single matmul_func and no add_func, as the paper notes for the
/// maximum granularity.
///
/// `a_spec` partitions A (i x j elements); `b_spec` partitions B and
/// must be block-compatible (B rows == A cols, B block rows == A
/// block cols).
Result<MatmulWorkflow> BuildMatmul(const data::GridSpec& a_spec,
                                   const data::GridSpec& b_spec,
                                   const MatmulOptions& options);

/// Convenience overload for the paper's square datasets: A and B share
/// `spec`.
Result<MatmulWorkflow> BuildMatmul(const data::GridSpec& spec,
                                   const MatmulOptions& options);

/// Cost descriptor of one matmul_func task on blocks
/// (m x n) * (n x q): O(N^3) flops, fully parallel user code
/// (Figure 4c).
perf::TaskCost MatmulFuncCost(int64_t m, int64_t n, int64_t q, bool fma);

/// Cost descriptor of one add_func task on an m x q block: O(N)
/// flops, memory-bound, fully parallel user code.
perf::TaskCost AddFuncCost(int64_t m, int64_t q);

}  // namespace taskbench::algos

#endif  // TASKBENCH_ALGOS_MATMUL_H_
