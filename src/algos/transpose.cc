#include "algos/transpose.h"

#include <utility>

#include "common/strings.h"
#include "data/generators.h"
#include "data/kernels.h"
#include "perf/calibration.h"

namespace taskbench::algos {

namespace {

using runtime::DataId;
using runtime::Dir;
using runtime::TaskSpec;

Status TransposeKernel(const std::vector<const data::Matrix*>& inputs,
                       const std::vector<data::Matrix*>& outputs) {
  if (inputs.size() != 1 || outputs.size() != 1) {
    return Status::InvalidArgument("transpose_func expects 1 input, 1 output");
  }
  // Dispatches through the kernel seam, so the executor runs the
  // cache-blocked transpose unless a caller pinned the naive variant.
  *outputs[0] = data::Transpose(*inputs[0]);
  return Status::OK();
}

}  // namespace

perf::TaskCost TransposeFuncCost(int64_t m, int64_t n) {
  perf::TaskCost cost;
  const double elems = static_cast<double>(m) * static_cast<double>(n);
  // Pure data movement: one read + one write per element, no math.
  cost.parallel.flops = 0;
  cost.parallel.bytes = 2.0 * 8.0 * elems;
  cost.h2d_bytes = static_cast<uint64_t>(8.0 * elems);
  cost.d2h_bytes = static_cast<uint64_t>(8.0 * elems);
  cost.num_transfers = 2;
  cost.num_kernels = 1;
  cost.input_bytes = cost.h2d_bytes;
  cost.output_bytes = cost.d2h_bytes;
  cost.gpu_working_set_bytes = static_cast<uint64_t>(
      perf::calib::kMatmulOomTempMargin * 2.0 * 8.0 * elems);
  return cost;
}

Result<TransposeWorkflow> BuildTranspose(const data::GridSpec& spec,
                                         const TransposeOptions& options) {
  if (options.values != nullptr &&
      (options.values->rows() != spec.dataset().rows ||
       options.values->cols() != spec.dataset().cols)) {
    return Status::InvalidArgument("values shape does not match the spec");
  }
  TransposeWorkflow wf;
  wf.a.resize(static_cast<size_t>(spec.grid_rows()));
  wf.out.resize(static_cast<size_t>(spec.grid_cols()));
  for (auto& row : wf.out) {
    row.resize(static_cast<size_t>(spec.grid_rows()), -1);
  }

  for (int64_t i = 0; i < spec.grid_rows(); ++i) {
    for (int64_t j = 0; j < spec.grid_cols(); ++j) {
      const data::BlockExtent e = spec.ExtentAt(i, j);
      const std::string name =
          StrFormat("A[%lld][%lld]", static_cast<long long>(i),
                    static_cast<long long>(j));
      DataId in;
      if (options.materialize && options.values != nullptr) {
        TB_ASSIGN_OR_RETURN(
            data::Matrix block,
            options.values->Slice(e.row0, e.col0, e.rows, e.cols));
        in = wf.graph.AddData(std::move(block), name);
      } else if (options.materialize) {
        data::Matrix block(e.rows, e.cols);
        Rng rng(options.seed ^ (static_cast<uint64_t>(i) << 20) ^
                static_cast<uint64_t>(j));
        data::FillUniform(&block, &rng);
        in = wf.graph.AddData(std::move(block), name);
      } else {
        in = wf.graph.AddData(e.bytes(), name);
      }
      wf.a[static_cast<size_t>(i)].push_back(in);

      const DataId out = wf.graph.AddData(
          e.bytes(), StrFormat("T[%lld][%lld]", static_cast<long long>(j),
                               static_cast<long long>(i)));
      wf.out[static_cast<size_t>(j)][static_cast<size_t>(i)] = out;

      TaskSpec task;
      task.type = "transpose_func";
      task.params = {{in, Dir::kIn}, {out, Dir::kOut}};
      if (options.materialize) task.kernel = TransposeKernel;
      task.cost = TransposeFuncCost(e.rows, e.cols);
      task.processor = options.processor;
      TB_RETURN_IF_ERROR(wf.graph.Submit(std::move(task)).status());
    }
  }
  return wf;
}

}  // namespace taskbench::algos
