#ifndef TASKBENCH_ALGOS_TRANSPOSE_H_
#define TASKBENCH_ALGOS_TRANSPOSE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "data/grid.h"
#include "perf/task_cost.h"
#include "runtime/task_graph.h"

namespace taskbench::algos {

/// Options of the blocked transpose workflow.
struct TransposeOptions {
  Processor processor = Processor::kCpu;
  bool materialize = false;
  uint64_t seed = 42;
  /// When materializing, slice blocks from this matrix. Not owned.
  const data::Matrix* values = nullptr;
};

/// The built workflow: T = A^T. out[j][i] holds the transpose of
/// block (i, j) of A.
struct TransposeWorkflow {
  runtime::TaskGraph graph;
  std::vector<std::vector<runtime::DataId>> a;    ///< a[i][j]
  std::vector<std::vector<runtime::DataId>> out;  ///< out[j][i]
};

/// Builds the blocked transpose: one fully parallel, zero-arithmetic
/// `transpose_func` task per block. This extends the paper's
/// fully-parallelizable family (Section 5.5.1) with a pure
/// data-movement member: no flops at all, so the GPU can only lose —
/// the extreme end of the add_func trend.
Result<TransposeWorkflow> BuildTranspose(const data::GridSpec& spec,
                                         const TransposeOptions& options);

/// Cost descriptor of one transpose_func task over an m x n block:
/// fully parallel, memory-bound, zero arithmetic intensity.
perf::TaskCost TransposeFuncCost(int64_t m, int64_t n);

}  // namespace taskbench::algos

#endif  // TASKBENCH_ALGOS_TRANSPOSE_H_
