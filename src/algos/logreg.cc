#include "algos/logreg.h"

#include <cmath>
#include <utility>

#include "common/strings.h"
#include "data/generators.h"
#include "perf/calibration.h"

namespace taskbench::algos {

namespace {

using runtime::DataId;
using runtime::Dir;
using runtime::TaskSpec;

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

/// grad_func: computes the logistic-loss gradient contribution of one
/// block. inputs = [block (m x (f+1), label last), weights
/// (1 x (f+1), bias last)]; output = 1 x (f+2): f+1 gradient entries
/// plus the sample count.
Status GradKernel(const std::vector<const data::Matrix*>& inputs,
                  const std::vector<data::Matrix*>& outputs) {
  if (inputs.size() != 2 || outputs.size() != 1) {
    return Status::InvalidArgument("grad_func expects 2 inputs, 1 output");
  }
  const data::Matrix& block = *inputs[0];
  const data::Matrix& weights = *inputs[1];
  const int64_t f = block.cols() - 1;  // last column is the label
  if (weights.rows() != 1 || weights.cols() != f + 1) {
    return Status::InvalidArgument(StrFormat(
        "weights must be 1x%lld, got %lldx%lld",
        static_cast<long long>(f + 1),
        static_cast<long long>(weights.rows()),
        static_cast<long long>(weights.cols())));
  }
  data::Matrix grad(1, f + 2, 0.0);
  for (int64_t r = 0; r < block.rows(); ++r) {
    double z = weights.At(0, f);  // bias
    for (int64_t j = 0; j < f; ++j) z += weights.At(0, j) * block.At(r, j);
    const double err = Sigmoid(z) - block.At(r, f);
    for (int64_t j = 0; j < f; ++j) {
      grad.At(0, j) += err * block.At(r, j);
    }
    grad.At(0, f) += err;  // bias gradient
  }
  grad.At(0, f + 1) = static_cast<double>(block.rows());
  *outputs[0] = std::move(grad);
  return Status::OK();
}

/// apply_grad: averages the partial gradients and takes one descent
/// step. inputs = [partials..., weights (aliasing outputs[0])].
Status ApplyGradKernel(double learning_rate,
                       const std::vector<const data::Matrix*>& inputs,
                       const std::vector<data::Matrix*>& outputs) {
  if (inputs.size() < 2 || outputs.size() != 1) {
    return Status::InvalidArgument(
        "apply_grad expects >= 1 partial plus weights, 1 output");
  }
  data::Matrix& weights = *outputs[0];
  const int64_t w = weights.cols();  // f + 1
  data::Matrix total(1, w + 1, 0.0);
  for (size_t p = 0; p + 1 < inputs.size(); ++p) {
    const data::Matrix& partial = *inputs[p];
    if (partial.rows() != 1 || partial.cols() != w + 1) {
      return Status::InvalidArgument("partial gradient has wrong shape");
    }
    for (int64_t j = 0; j <= w; ++j) total.At(0, j) += partial.At(0, j);
  }
  const double count = total.At(0, w);
  if (count <= 0) return Status::InvalidArgument("no samples in gradients");
  for (int64_t j = 0; j < w; ++j) {
    weights.At(0, j) -= learning_rate * total.At(0, j) / count;
  }
  return Status::OK();
}

/// Synthetic separable data: features uniform in [-1, 1], label from
/// a hidden weight vector (same for every block).
void FillLogRegBlock(data::Matrix* block, Rng* rng) {
  const int64_t f = block->cols() - 1;
  Rng truth_rng(987654321);
  std::vector<double> truth(static_cast<size_t>(f));
  for (auto& t : truth) t = truth_rng.Uniform(-2.0, 2.0);
  for (int64_t r = 0; r < block->rows(); ++r) {
    double z = 0;
    for (int64_t j = 0; j < f; ++j) {
      const double x = rng->Uniform(-1.0, 1.0);
      block->At(r, j) = x;
      z += truth[static_cast<size_t>(j)] * x;
    }
    block->At(r, f) = z + rng->NextGaussian() * 0.1 > 0 ? 1.0 : 0.0;
  }
}

}  // namespace

perf::TaskCost GradFuncCost(int64_t m, int64_t n) {
  perf::TaskCost cost;
  const double dm = static_cast<double>(m);
  const double df = static_cast<double>(n - 1);
  const double block_bytes = 8.0 * dm * static_cast<double>(n);
  // Two passes over the block per iteration: the dot products and the
  // gradient accumulation (both thread-parallelizable).
  cost.parallel.flops = 4.0 * dm * df;
  cost.parallel.bytes = 2.0 * block_bytes;
  // Per-row loss bookkeeping: interpreter-bound but much lighter than
  // K-means' serial fraction — the intermediate parallel/serial ratio.
  cost.serial.flops = dm;
  cost.serial.bytes = 4.0 * block_bytes;
  cost.h2d_bytes = static_cast<uint64_t>(block_bytes);
  cost.d2h_bytes = static_cast<uint64_t>(8.0 * (df + 2));
  cost.num_transfers = 3;
  cost.num_kernels = 4;
  cost.input_bytes = static_cast<uint64_t>(block_bytes + 8.0 * (df + 1));
  cost.output_bytes = cost.d2h_bytes;
  cost.gpu_working_set_bytes =
      static_cast<uint64_t>(1.2 * block_bytes);
  // Matrix-vector kernels reach a middle ground between cuBLAS DGEMM
  // and the K-means CuPy pipeline.
  cost.gpu_curve.peak_fraction = 0.6;
  cost.gpu_curve.ramp_work = perf::calib::kKmeansGpuRampWork;
  cost.gpu_curve.alpha = perf::calib::kKmeansGpuAlpha;
  return cost;
}

perf::TaskCost ApplyGradCost(int64_t num_partials, int64_t n) {
  perf::TaskCost cost;
  const double volume =
      static_cast<double>(num_partials) * 8.0 * static_cast<double>(n + 1);
  cost.serial.flops = volume / 8.0;
  cost.serial.bytes = 2.0 * volume;
  cost.input_bytes = static_cast<uint64_t>(volume);
  cost.output_bytes = static_cast<uint64_t>(8.0 * static_cast<double>(n));
  cost.num_kernels = 1;
  return cost;
}

Result<LogRegWorkflow> BuildLogReg(const data::GridSpec& spec,
                                   const LogRegOptions& options) {
  if (spec.grid_cols() != 1) {
    return Status::InvalidArgument(
        "logistic regression requires row-wise chunking (grid cols == 1)");
  }
  if (spec.dataset().cols < 2) {
    return Status::InvalidArgument(
        "need at least one feature column plus the label column");
  }
  if (options.iterations < 1) {
    return Status::InvalidArgument("iterations must be >= 1");
  }
  if (options.samples_with_labels != nullptr &&
      (options.samples_with_labels->rows() != spec.dataset().rows ||
       options.samples_with_labels->cols() != spec.dataset().cols)) {
    return Status::InvalidArgument("samples shape does not match the spec");
  }
  const int64_t n = spec.dataset().cols;
  const int64_t f = n - 1;

  LogRegWorkflow wf;
  wf.options = options;

  for (int64_t b = 0; b < spec.grid_rows(); ++b) {
    const data::BlockExtent e = spec.ExtentAt(b, 0);
    const std::string name = StrFormat("X[%lld]", static_cast<long long>(b));
    if (options.materialize && options.samples_with_labels != nullptr) {
      TB_ASSIGN_OR_RETURN(data::Matrix block,
                          options.samples_with_labels->Slice(
                              e.row0, e.col0, e.rows, e.cols));
      wf.blocks.push_back(wf.graph.AddData(std::move(block), name));
    } else if (options.materialize) {
      data::Matrix block(e.rows, e.cols);
      Rng rng(options.seed ^ (static_cast<uint64_t>(b) * 0x85ebca6bULL));
      FillLogRegBlock(&block, &rng);
      wf.blocks.push_back(wf.graph.AddData(std::move(block), name));
    } else {
      wf.blocks.push_back(wf.graph.AddData(e.bytes(), name));
    }
  }

  if (options.materialize) {
    wf.weights = wf.graph.AddData(data::Matrix(1, f + 1, 0.0), "weights");
  } else {
    wf.weights = wf.graph.AddData(static_cast<uint64_t>(f + 1) * 8,
                                  "weights");
  }

  const uint64_t partial_bytes = static_cast<uint64_t>(f + 2) * 8;
  const double lr = options.learning_rate;
  for (int iter = 0; iter < options.iterations; ++iter) {
    std::vector<DataId> partials;
    for (int64_t b = 0; b < spec.grid_rows(); ++b) {
      const data::BlockExtent e = spec.ExtentAt(b, 0);
      const DataId partial = wf.graph.AddData(
          partial_bytes,
          StrFormat("G%d[%lld]", iter, static_cast<long long>(b)));
      TaskSpec task;
      task.type = "grad_func";
      task.params = {{wf.blocks[static_cast<size_t>(b)], Dir::kIn},
                     {wf.weights, Dir::kIn},
                     {partial, Dir::kOut}};
      if (options.materialize) task.kernel = GradKernel;
      task.cost = GradFuncCost(e.rows, e.cols);
      task.processor = options.processor;
      TB_RETURN_IF_ERROR(wf.graph.Submit(std::move(task)).status());
      partials.push_back(partial);
    }

    TaskSpec apply;
    apply.type = "apply_grad";
    for (DataId partial : partials) apply.params.push_back({partial, Dir::kIn});
    apply.params.push_back({wf.weights, Dir::kInOut});
    if (options.materialize) {
      apply.kernel = [lr](const std::vector<const data::Matrix*>& in,
                          const std::vector<data::Matrix*>& out) {
        return ApplyGradKernel(lr, in, out);
      };
    }
    apply.cost = ApplyGradCost(static_cast<int64_t>(partials.size()), f + 1);
    apply.processor = Processor::kCpu;
    TB_RETURN_IF_ERROR(wf.graph.Submit(std::move(apply)).status());
  }
  return wf;
}

}  // namespace taskbench::algos
