#include "hw/cluster.h"

#include "common/strings.h"

namespace taskbench::hw {

std::string ToString(StorageArchitecture arch) {
  switch (arch) {
    case StorageArchitecture::kLocalDisk:
      return "local-disk";
    case StorageArchitecture::kSharedDisk:
      return "shared-disk";
  }
  return "unknown";
}

Status ClusterSpec::Validate() const {
  if (num_nodes <= 0) {
    return Status::InvalidArgument(
        StrFormat("num_nodes must be positive, got %d", num_nodes));
  }
  if (cores_per_node <= 0) {
    return Status::InvalidArgument(
        StrFormat("cores_per_node must be positive, got %d", cores_per_node));
  }
  if (gpus_per_node < 0) {
    return Status::InvalidArgument(
        StrFormat("gpus_per_node must be >= 0, got %d", gpus_per_node));
  }
  if (cpu_core.flops_per_s <= 0 || cpu_core.mem_bw_bps <= 0) {
    return Status::InvalidArgument("cpu core profile has non-positive rates");
  }
  if (gpus_per_node > 0) {
    if (gpu.flops_per_s <= 0 || gpu.mem_bw_bps <= 0) {
      return Status::InvalidArgument("gpu profile has non-positive rates");
    }
    if (gpu.memory_bytes == 0) {
      return Status::InvalidArgument("gpu profile has zero memory");
    }
    if (bus.bandwidth_bps <= 0) {
      return Status::InvalidArgument("bus profile has non-positive bandwidth");
    }
  }
  if (local_disk.aggregate_bw_bps <= 0 || shared_disk.aggregate_bw_bps <= 0) {
    return Status::InvalidArgument("disk profile has non-positive bandwidth");
  }
  return Status::OK();
}

ClusterSpec MinotauroCluster() {
  ClusterSpec spec;
  spec.name = "minotauro";
  spec.num_nodes = 8;
  spec.cores_per_node = 16;
  spec.gpus_per_node = 4;
  spec.cpu_core = XeonE52630Core();
  spec.gpu = NvidiaK80();
  spec.bus = Pcie3();
  spec.local_disk = LocalNodeDisk();
  spec.shared_disk = GpfsSharedDisk();
  return spec;
}

ClusterSpec SingleNode(int cores, int gpus) {
  ClusterSpec spec = MinotauroCluster();
  spec.name = StrFormat("single-node-%dc-%dg", cores, gpus);
  spec.num_nodes = 1;
  spec.cores_per_node = cores;
  spec.gpus_per_node = gpus;
  return spec;
}

}  // namespace taskbench::hw
