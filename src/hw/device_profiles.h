#ifndef TASKBENCH_HW_DEVICE_PROFILES_H_
#define TASKBENCH_HW_DEVICE_PROFILES_H_

#include <cstdint>
#include <string>

namespace taskbench::hw {

/// Roofline-style description of one CPU core.
///
/// Compute stages are costed as
///   time = max(flops / flops_per_s, bytes_touched / mem_bw_bps)
/// i.e. the slower of the compute roof and the memory roof.
struct CpuCoreProfile {
  std::string name = "cpu-core";
  /// Sustained double-precision throughput of one core on dense
  /// compute-bound kernels (BLAS-like), flop/s.
  double flops_per_s = 16e9;
  /// Sustained memory bandwidth available to one core, bytes/s.
  double mem_bw_bps = 6e9;
};

/// Roofline description of one dedicated GPU device, plus the
/// utilization ramp that models how small kernels underutilize the
/// device (few thread blocks -> idle SMs), and the device memory
/// capacity that produces the paper's "GPU OOM" walls.
struct GpuDeviceProfile {
  std::string name = "gpu";
  /// Peak effective double-precision throughput at full utilization.
  double flops_per_s = 360e9;
  /// Device memory bandwidth, bytes/s.
  double mem_bw_bps = 160e9;
  /// Device memory capacity, bytes. Working sets above this are OOM.
  uint64_t memory_bytes = 12ULL * 1024 * 1024 * 1024;
  /// Utilization ramp: a kernel performing W flops runs at
  /// utilization W / (W + util_ramp_flops). Half utilization at
  /// W == util_ramp_flops.
  double util_ramp_flops = 2e9;
  /// Fixed per-kernel launch overhead, seconds.
  double kernel_launch_s = 20e-6;

  /// Effective utilization for a kernel of `flops` work, in (0, 1).
  double UtilizationFor(double flops) const {
    if (flops <= 0) return 1.0;
    return flops / (flops + util_ramp_flops);
  }
};

/// Host <-> device interconnect (the CPU-GPU communication stage).
struct BusProfile {
  std::string name = "pcie3";
  /// Effective host-to-device / device-to-host bandwidth, bytes/s.
  /// Deliberately below the PCIe 3.0 x16 peak: the workflows the paper
  /// measures move pageable (unpinned) host arrays through CuPy.
  double bandwidth_bps = 1.7e9;
  /// Per-transfer setup latency, seconds.
  double latency_s = 30e-6;
};

/// One physical disk (or one shared filesystem), modeled as an
/// aggregate-bandwidth resource shared by concurrent streams.
struct DiskProfile {
  std::string name = "disk";
  /// Aggregate bandwidth across all concurrent streams, bytes/s.
  double aggregate_bw_bps = 1.2e9;
  /// Per-stream ceiling, bytes/s.
  double per_stream_bw_bps = 1.2e9;
  /// Fixed per-operation latency (metadata/network round trips), s.
  double per_op_latency_s = 0.0;
};

/// Profile factories for the hardware of the paper's testbed
/// (BSC Minotauro, Section 4.4.1) and variants used in ablations.

/// Intel Xeon E5-2630 core (2.3 GHz Sandy Bridge; AVX, no FMA).
CpuCoreProfile XeonE52630Core();

/// One NVIDIA K80 device (one GK210 die, 12 GB), throughput calibrated
/// to the paper's observed peak parallel-fraction speedup (~21x for
/// matmul_func over one Xeon core, Figure 8).
GpuDeviceProfile NvidiaK80();

/// PCIe 3.0 x16 with pageable-memory effective bandwidth.
BusProfile Pcie3();

/// NVLink-class bus (ablation: what the paper's Section 5.5.2 cites as
/// a mitigation for the CPU-GPU bottleneck).
BusProfile NvlinkClass();

/// Node-local scratch disk of one Minotauro node.
DiskProfile LocalNodeDisk();

/// GPFS-like shared filesystem: higher aggregate bandwidth than one
/// local disk but shared by the whole cluster, with network round-trip
/// latency per operation.
DiskProfile GpfsSharedDisk();

}  // namespace taskbench::hw

#endif  // TASKBENCH_HW_DEVICE_PROFILES_H_
