#include "hw/topology.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/strings.h"

#if defined(__linux__)
#include <sched.h>
#endif

namespace taskbench::hw {

namespace {

/// Reads a small text file; empty optional-style "" on failure is not
/// enough here — callers need to distinguish missing from empty, so
/// failure returns false.
bool ReadFileText(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return in.good() || in.eof();
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

int Topology::domain_of_worker(int worker, int num_workers) const {
  if (domains.empty() || num_workers <= 0) return 0;
  const int nd = num_domains();
  if (worker < 0) return 0;
  // Contiguous block striping: ceil-divided blocks so every domain
  // gets within one worker of an even share.
  return std::min(nd - 1,
                  static_cast<int>((static_cast<int64_t>(worker) * nd) /
                                   num_workers));
}

std::string Topology::Describe() const {
  return StrFormat("%d domain%s x %d cpu%s", num_domains(),
                   num_domains() == 1 ? "" : "s", total_cpus(),
                   total_cpus() == 1 ? "" : "s");
}

Result<std::vector<int>> ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  const std::string trimmed = Trim(text);
  if (trimmed.empty()) return cpus;
  for (const std::string& raw : Split(trimmed, ',')) {
    const std::string entry = Trim(raw);
    if (entry.empty()) {
      return Status::InvalidArgument("empty entry in cpulist '" + text + "'");
    }
    const size_t dash = entry.find('-');
    if (dash == std::string::npos) {
      TB_ASSIGN_OR_RETURN(const int64_t cpu, ParseInt64(entry));
      if (cpu < 0) {
        return Status::InvalidArgument("negative cpu in cpulist '" + text +
                                       "'");
      }
      cpus.push_back(static_cast<int>(cpu));
      continue;
    }
    TB_ASSIGN_OR_RETURN(const int64_t lo, ParseInt64(entry.substr(0, dash)));
    TB_ASSIGN_OR_RETURN(const int64_t hi, ParseInt64(entry.substr(dash + 1)));
    if (lo < 0 || hi < lo) {
      return Status::InvalidArgument(
          StrFormat("bad range '%s' in cpulist", entry.c_str()));
    }
    if (hi - lo > 4096) {
      return Status::InvalidArgument(
          StrFormat("implausible cpu range '%s' in cpulist", entry.c_str()));
    }
    for (int64_t cpu = lo; cpu <= hi; ++cpu) {
      cpus.push_back(static_cast<int>(cpu));
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Result<Topology> ReadTopology(const std::string& node_dir) {
  Topology topo;
  // Probe node0, node1, ... until the first gap. The kernel numbers
  // online nodes densely from 0; a sparse numbering (offlined nodes)
  // simply ends the probe early, which degrades to fewer domains, not
  // an error.
  for (int node = 0; node < 1024; ++node) {
    const std::string path =
        StrFormat("%s/node%d/cpulist", node_dir.c_str(), node);
    std::string text;
    if (!ReadFileText(path, &text)) break;
    TB_ASSIGN_OR_RETURN(std::vector<int> cpus, ParseCpuList(text));
    if (cpus.empty()) continue;  // CPU-less memory node
    topo.domains.push_back(NumaDomain{node, std::move(cpus)});
  }
  if (topo.domains.empty()) {
    return Status::NotFound("no usable node*/cpulist entries under " +
                            node_dir);
  }
  return topo;
}

Topology SingleDomainTopology() {
  Topology topo;
  const int n = std::max(1u, std::thread::hardware_concurrency());
  NumaDomain domain;
  domain.id = 0;
  domain.cpus.reserve(static_cast<size_t>(n));
  for (int cpu = 0; cpu < n; ++cpu) domain.cpus.push_back(cpu);
  topo.domains.push_back(std::move(domain));
  return topo;
}

const Topology& DetectTopology() {
  static const Topology topo = [] {
    auto detected = ReadTopology("/sys/devices/system/node");
    if (detected.ok()) return std::move(*detected);
    return SingleDomainTopology();
  }();
  return topo;
}

std::string HostCpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    return Trim(line.substr(colon + 1));
  }
  return "";
}

Status PinCurrentThreadToCpus(const std::vector<int>& cpus) {
  if (cpus.empty()) return Status::OK();
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  if (sched_setaffinity(0, sizeof(set), &set) != 0) {
    // A cpuset-restricted container may forbid some of the cpus; the
    // caller treats pinning as best-effort, so report, don't crash.
    return Status::Internal("sched_setaffinity failed");
  }
  return Status::OK();
#else
  return Status::Unimplemented("thread pinning unsupported on this platform");
#endif
}

}  // namespace taskbench::hw
