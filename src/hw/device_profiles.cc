#include "hw/device_profiles.h"

namespace taskbench::hw {

CpuCoreProfile XeonE52630Core() {
  CpuCoreProfile p;
  p.name = "xeon-e5-2630-core";
  // 2.3 GHz x 8 DP flops/cycle (AVX add+mul) ~= 18.4 GF/s peak;
  // sustained BLAS-like throughput ~85% of peak.
  p.flops_per_s = 16e9;
  // Share of the socket's ~42 GB/s DDR3 bandwidth one streaming core
  // sustains.
  p.mem_bw_bps = 6e9;
  return p;
}

GpuDeviceProfile NvidiaK80() {
  GpuDeviceProfile p;
  p.name = "nvidia-k80";
  // One GK210 die peaks at ~1.45 TF/s FP64; the effective CuPy kernel
  // throughput observed by the paper tops out much lower. 360 GF/s
  // reproduces the ~21x matmul_func ceiling over one Xeon core.
  p.flops_per_s = 360e9;
  // ~240 GB/s peak GDDR5, ~160 GB/s effective for strided kernels.
  p.mem_bw_bps = 160e9;
  p.memory_bytes = 12ULL * 1024 * 1024 * 1024;
  // Half utilization at 2 GFLOP of work per kernel: small blocks leave
  // most SMs idle, which flattens speedups for fine-grained tasks.
  p.util_ramp_flops = 2e9;
  p.kernel_launch_s = 20e-6;
  return p;
}

BusProfile Pcie3() {
  BusProfile p;
  p.name = "pcie3-x16-pageable";
  // Pageable (unpinned) NumPy buffers moved through CuPy transfer far
  // below the 16 GB/s link peak; 1.7 GB/s reproduces the ~20-35%
  // user-code damping relative to the parallel fraction that Figure 7
  // reports.
  p.bandwidth_bps = 1.7e9;
  p.latency_s = 30e-6;
  return p;
}

BusProfile NvlinkClass() {
  BusProfile p;
  p.name = "nvlink-class";
  p.bandwidth_bps = 40e9;
  p.latency_s = 10e-6;
  return p;
}

DiskProfile LocalNodeDisk() {
  DiskProfile p;
  p.name = "local-scratch";
  p.aggregate_bw_bps = 1.2e9;
  p.per_stream_bw_bps = 0.8e9;
  p.per_op_latency_s = 0.2e-3;
  return p;
}

DiskProfile GpfsSharedDisk() {
  DiskProfile p;
  p.name = "gpfs-shared";
  // The whole cluster shares one filesystem: the aggregate exceeds a
  // single local disk but must serve up to 128 concurrent streams,
  // and a single stream moves noticeably slower than node-local
  // scratch.
  p.aggregate_bw_bps = 5e9;
  p.per_stream_bw_bps = 0.5e9;
  // Network + metadata round trip for every open/read/write.
  p.per_op_latency_s = 3e-3;
  return p;
}

}  // namespace taskbench::hw
