#ifndef TASKBENCH_HW_CLUSTER_H_
#define TASKBENCH_HW_CLUSTER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "hw/device_profiles.h"

namespace taskbench::hw {

/// Storage architectures the paper compares (Section 3.4):
/// node-local scratch disks vs a cluster-wide shared filesystem.
enum class StorageArchitecture { kLocalDisk, kSharedDisk };

std::string ToString(StorageArchitecture arch);

/// Static description of a heterogeneous CPU-GPU cluster.
///
/// A cluster has `num_nodes` identical nodes, each with
/// `cores_per_node` CPU cores and `gpus_per_node` dedicated GPU
/// devices connected over `bus`. Storage is either one local disk per
/// node or one shared disk for the whole cluster.
struct ClusterSpec {
  std::string name = "cluster";
  int num_nodes = 1;
  int cores_per_node = 1;
  int gpus_per_node = 0;

  CpuCoreProfile cpu_core;
  GpuDeviceProfile gpu;
  BusProfile bus;
  DiskProfile local_disk;
  DiskProfile shared_disk;

  /// Total CPU cores in the cluster — the maximum number of CPU-based
  /// tasks that can run in parallel.
  int total_cores() const { return num_nodes * cores_per_node; }
  /// Total GPU devices — the maximum number of GPU-accelerated tasks
  /// that can run in parallel.
  int total_gpus() const { return num_nodes * gpus_per_node; }

  /// Validates structural invariants (positive counts, sane profiles).
  Status Validate() const;
};

/// The paper's testbed: 8 Minotauro nodes, 16 Xeon E5-2630 cores and
/// 4 NVIDIA K80 devices (12 GB each) per node, PCIe 3.0, local scratch
/// plus GPFS shared storage — 128 CPU slots vs 32 GPU slots
/// (Section 4.4.1).
ClusterSpec MinotauroCluster();

/// A single-machine spec (1 node) used by the single-task analyses.
ClusterSpec SingleNode(int cores, int gpus);

}  // namespace taskbench::hw

#endif  // TASKBENCH_HW_CLUSTER_H_
