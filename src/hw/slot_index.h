#ifndef TASKBENCH_HW_SLOT_INDEX_H_
#define TASKBENCH_HW_SLOT_INDEX_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace taskbench::hw {

/// Free-slot bookkeeping for one processor kind across a cluster's
/// nodes, with O(1) aggregate queries.
///
/// The scheduling fast path asks two questions per decision — "is any
/// slot of this kind free?" and "which is the lowest-numbered node
/// with a free slot?" — that used to cost a linear scan over the
/// per-node slot vector each. SlotIndex keeps the per-node counts
/// alongside an aggregate total and a bitmask of nodes with at least
/// one free slot, so both answers are O(1) (one find-first-set per
/// 64-node word).
class SlotIndex {
 public:
  SlotIndex() = default;
  SlotIndex(int num_nodes, int slots_per_node) {
    Reset(num_nodes, slots_per_node);
  }

  /// Re-initializes to `num_nodes` nodes with `slots_per_node` free
  /// slots each.
  void Reset(int num_nodes, int slots_per_node);

  int num_nodes() const { return static_cast<int>(free_.size()); }

  /// Total free slots across all nodes.
  int total_free() const { return total_free_; }

  /// Free slots on `node`.
  int free_at(int node) const { return free_[static_cast<size_t>(node)]; }

  /// Slots `node` was provisioned with, minus any removed by
  /// DrainNode / RemoveDevice (failure-aware scheduling input).
  int capacity_at(int node) const {
    return capacity_[static_cast<size_t>(node)];
  }

  /// Total remaining capacity across all nodes.
  int total_capacity() const { return total_capacity_; }

  /// Lowest-numbered node with a free slot, or -1 when all are busy.
  int FirstFreeNode() const {
    for (size_t w = 0; w < mask_.size(); ++w) {
      if (mask_[w] != 0) {
        return static_cast<int>(w * 64 +
                                static_cast<size_t>(std::countr_zero(mask_[w])));
      }
    }
    return -1;
  }

  /// Takes one slot on `node`. Requires free_at(node) > 0.
  void Acquire(int node);

  /// Returns one slot to `node`.
  void Release(int node);

  /// Removes `node` from service (node crash): its free slots leave
  /// the aggregates and its capacity drops to zero, so FirstFreeNode
  /// and total_free() never steer placement there again. Busy slots
  /// on the node must not be Released afterwards (their tasks died
  /// with the node).
  void DrainNode(int node);

  /// Removes one slot of capacity from `node` (single device loss).
  /// When a free slot exists it is taken; otherwise the caller must
  /// kill one running occupant and not Release its slot. Requires
  /// capacity_at(node) > 0.
  void RemoveDevice(int node);

 private:
  std::vector<int> free_;
  std::vector<int> capacity_;   ///< remaining provisioned slots
  std::vector<uint64_t> mask_;  ///< bit n set iff free_[n] > 0
  int total_free_ = 0;
  int total_capacity_ = 0;
};

}  // namespace taskbench::hw

#endif  // TASKBENCH_HW_SLOT_INDEX_H_
