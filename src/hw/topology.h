#ifndef TASKBENCH_HW_TOPOLOGY_H_
#define TASKBENCH_HW_TOPOLOGY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace taskbench::hw {

/// One NUMA memory domain: the id the kernel gave it and the CPUs
/// whose local memory it is.
struct NumaDomain {
  int id = 0;
  std::vector<int> cpus;
};

/// The machine's memory topology as the scale-out plane sees it:
/// NUMA domains play the role the paper's cluster nodes play — the
/// multi-process executor pins one worker group per domain and the
/// placement/steal policies prefer same-domain work, exactly like the
/// locality scheduler prefers the node holding a block.
struct Topology {
  std::vector<NumaDomain> domains;

  int num_domains() const { return static_cast<int>(domains.size()); }

  int total_cpus() const {
    int n = 0;
    for (const NumaDomain& d : domains) n += static_cast<int>(d.cpus.size());
    return n;
  }

  /// Domain a worker is assigned to when `num_workers` workers are
  /// striped over the domains in contiguous blocks (workers of the
  /// same domain get adjacent ids, so same-domain victim sweeps are
  /// cache-friendly). With one domain every worker maps to 0.
  int domain_of_worker(int worker, int num_workers) const;

  /// "2 domains x 8 cpus" — for logs and bench metadata.
  std::string Describe() const;
};

/// Parses the kernel's cpulist format: comma-separated entries, each
/// a cpu number or an inclusive range ("0-3,8,10-11"). Empty or
/// whitespace-only text yields an empty list.
Result<std::vector<int>> ParseCpuList(const std::string& text);

/// Reads the topology from a sysfs-style directory holding one
/// `nodeN/cpulist` file per memory domain (production:
/// /sys/devices/system/node). Domains with no CPUs (CPU-less memory
/// nodes) are dropped. Fails when the directory has no usable node
/// entries — callers normally want DetectTopology(), which falls back
/// instead.
Result<Topology> ReadTopology(const std::string& node_dir);

/// One domain holding cpus [0, n) where n = hardware concurrency —
/// the graceful fallback when sysfs is absent (non-Linux, containers
/// masking /sys) or unparsable. Single-domain topologies make every
/// topology-aware policy collapse to its pre-NUMA behaviour.
Topology SingleDomainTopology();

/// The host topology: /sys/devices/system/node when readable, the
/// single-domain fallback otherwise. Detected once and cached (the
/// data-plane geometry defaults consult it on every store
/// construction).
const Topology& DetectTopology();

/// CPU model string from /proc/cpuinfo ("model name"); empty when
/// unavailable. Recorded in bench JSON so committed trajectories say
/// what host produced them.
std::string HostCpuModel();

/// Pins the calling thread (or process, when called before spawning
/// threads) to `cpus`. No-op success on empty lists; Unimplemented on
/// platforms without sched_setaffinity.
Status PinCurrentThreadToCpus(const std::vector<int>& cpus);

}  // namespace taskbench::hw

#endif  // TASKBENCH_HW_TOPOLOGY_H_
