#include "hw/slot_index.h"

#include "common/logging.h"

namespace taskbench::hw {

void SlotIndex::Reset(int num_nodes, int slots_per_node) {
  TB_CHECK(num_nodes >= 0);
  TB_CHECK(slots_per_node >= 0);
  free_.assign(static_cast<size_t>(num_nodes), slots_per_node);
  mask_.assign((static_cast<size_t>(num_nodes) + 63) / 64, 0);
  total_free_ = num_nodes * slots_per_node;
  if (slots_per_node > 0) {
    for (int n = 0; n < num_nodes; ++n) {
      mask_[static_cast<size_t>(n) / 64] |= 1ull << (n % 64);
    }
  }
}

void SlotIndex::Acquire(int node) {
  const auto n = static_cast<size_t>(node);
  TB_CHECK(node >= 0 && n < free_.size() && free_[n] > 0)
      << "acquire on node without a free slot: " << node;
  if (--free_[n] == 0) mask_[n / 64] &= ~(1ull << (node % 64));
  --total_free_;
}

void SlotIndex::Release(int node) {
  const auto n = static_cast<size_t>(node);
  TB_CHECK(node >= 0 && n < free_.size());
  if (free_[n]++ == 0) mask_[n / 64] |= 1ull << (node % 64);
  ++total_free_;
}

}  // namespace taskbench::hw
