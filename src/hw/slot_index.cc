#include "hw/slot_index.h"

#include "common/logging.h"

namespace taskbench::hw {

void SlotIndex::Reset(int num_nodes, int slots_per_node) {
  TB_CHECK(num_nodes >= 0);
  TB_CHECK(slots_per_node >= 0);
  free_.assign(static_cast<size_t>(num_nodes), slots_per_node);
  capacity_.assign(static_cast<size_t>(num_nodes), slots_per_node);
  mask_.assign((static_cast<size_t>(num_nodes) + 63) / 64, 0);
  total_free_ = num_nodes * slots_per_node;
  total_capacity_ = total_free_;
  if (slots_per_node > 0) {
    for (int n = 0; n < num_nodes; ++n) {
      mask_[static_cast<size_t>(n) / 64] |= 1ull << (n % 64);
    }
  }
}

void SlotIndex::Acquire(int node) {
  const auto n = static_cast<size_t>(node);
  TB_CHECK(node >= 0 && n < free_.size() && free_[n] > 0)
      << "acquire on node without a free slot: " << node;
  if (--free_[n] == 0) mask_[n / 64] &= ~(1ull << (node % 64));
  --total_free_;
}

void SlotIndex::Release(int node) {
  const auto n = static_cast<size_t>(node);
  TB_CHECK(node >= 0 && n < free_.size());
  if (free_[n]++ == 0) mask_[n / 64] |= 1ull << (node % 64);
  ++total_free_;
}

void SlotIndex::DrainNode(int node) {
  const auto n = static_cast<size_t>(node);
  TB_CHECK(node >= 0 && n < free_.size());
  total_free_ -= free_[n];
  total_capacity_ -= capacity_[n];
  free_[n] = 0;
  capacity_[n] = 0;
  mask_[n / 64] &= ~(1ull << (node % 64));
}

void SlotIndex::RemoveDevice(int node) {
  const auto n = static_cast<size_t>(node);
  TB_CHECK(node >= 0 && n < free_.size() && capacity_[n] > 0)
      << "device removal on node without capacity: " << node;
  --capacity_[n];
  --total_capacity_;
  if (free_[n] > 0) {
    if (--free_[n] == 0) mask_[n / 64] &= ~(1ull << (node % 64));
    --total_free_;
  }
}

}  // namespace taskbench::hw
