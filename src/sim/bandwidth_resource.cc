#include "sim/bandwidth_resource.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace taskbench::sim {

namespace {
// Completions within this many seconds are treated as due; absorbs the
// floating-point drift of repeated remaining-byte updates.
constexpr double kTimeEpsilon = 1e-12;
// Flows with less than half a byte left are complete: transfer sizes
// are integral, and half a byte of slack keeps the wake loop from
// chasing sub-ULP remainders at large simulation times.
constexpr double kByteEpsilon = 0.5;
}  // namespace

BandwidthResource::BandwidthResource(Simulator* simulator,
                                     BandwidthResourceOptions options)
    : simulator_(simulator), options_(std::move(options)) {
  TB_CHECK(simulator_ != nullptr);
  TB_CHECK(options_.capacity_bps > 0);
  TB_CHECK(options_.per_flow_cap_bps > 0);
  TB_CHECK(options_.per_op_latency_s >= 0);
}

void BandwidthResource::Transfer(uint64_t bytes,
                                 std::function<void()> on_done) {
  TB_CHECK(on_done != nullptr);
  if (options_.per_op_latency_s > 0) {
    simulator_->After(options_.per_op_latency_s,
                      [this, bytes, cb = std::move(on_done)]() mutable {
                        Admit(bytes, std::move(cb));
                      });
  } else {
    Admit(bytes, std::move(on_done));
  }
}

void BandwidthResource::Admit(uint64_t bytes, std::function<void()> on_done) {
  total_bytes_ += bytes;
  if (bytes == 0) {
    simulator_->After(0, std::move(on_done));
    return;
  }
  // Bring existing flows up to date before the rate changes.
  Reschedule();
  flows_.push_back(Flow{static_cast<double>(bytes), std::move(on_done)});
  peak_flows_ = std::max(peak_flows_, static_cast<int>(flows_.size()));
  Reschedule();
}

double BandwidthResource::CurrentRatePerFlow() const {
  if (flows_.empty()) return 0.0;
  const double fair_share =
      options_.capacity_bps / static_cast<double>(flows_.size());
  return std::min(fair_share, options_.per_flow_cap_bps);
}

void BandwidthResource::Reschedule() {
  const SimTime now = simulator_->Now();
  const double elapsed = now - last_update_;
  if (elapsed > 0 && !flows_.empty()) {
    const double progressed = elapsed * CurrentRatePerFlow();
    for (auto& flow : flows_) {
      flow.remaining_bytes = std::max(0.0, flow.remaining_bytes - progressed);
    }
  }
  last_update_ = now;

  // Fire any flows that just finished.
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->remaining_bytes <= kByteEpsilon) {
      auto cb = std::move(it->on_done);
      it = flows_.erase(it);
      simulator_->After(0, std::move(cb));
    } else {
      ++it;
    }
  }

  ++generation_;
  if (flows_.empty()) return;

  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& flow : flows_) {
    min_remaining = std::min(min_remaining, flow.remaining_bytes);
  }
  const double next_completion =
      min_remaining / CurrentRatePerFlow() + kTimeEpsilon;
  // Guard against double-precision starvation: at large simulation
  // times the remaining sliver may be smaller than one ULP of Now(),
  // in which case the wake event could never advance the clock.
  // The sliver is far below any observable duration — finish it now.
  if (now + next_completion <= now) {
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (it->remaining_bytes <= min_remaining + kByteEpsilon) {
        auto cb = std::move(it->on_done);
        it = flows_.erase(it);
        simulator_->After(0, std::move(cb));
      } else {
        ++it;
      }
    }
    ++generation_;
    if (flows_.empty()) return;
    Reschedule();
    return;
  }
  const uint64_t gen = generation_;
  simulator_->After(next_completion, [this, gen]() { OnWake(gen); });
}

void BandwidthResource::OnWake(uint64_t generation) {
  if (generation != generation_) return;  // superseded by a newer event
  Reschedule();
}

}  // namespace taskbench::sim
