#include "sim/simulator.h"

#include <utility>

#include "common/logging.h"

namespace taskbench::sim {

void Simulator::At(SimTime t, Callback cb) {
  TB_CHECK(t >= now_) << "cannot schedule event in the past: t=" << t
                      << " now=" << now_;
  queue_.push(Event{t, next_seq_++, std::move(cb)});
  if (queue_.size() > max_pending_) max_pending_ = queue_.size();
}

void Simulator::After(SimTime delay, Callback cb) {
  TB_CHECK(delay >= 0) << "negative delay: " << delay;
  At(now_ + delay, std::move(cb));
}

SimTime Simulator::Run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // The callback may schedule new events, so pop before invoking.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++events_executed_;
    ev.cb();
  }
  return now_;
}

SimTime Simulator::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++events_executed_;
    ev.cb();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace taskbench::sim
