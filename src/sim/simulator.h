#ifndef TASKBENCH_SIM_SIMULATOR_H_
#define TASKBENCH_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace taskbench::sim {

/// Simulated time in seconds since simulation start.
using SimTime = double;

/// A deterministic discrete-event simulator.
///
/// Events are callbacks ordered by (time, insertion sequence); ties in
/// time fire in insertion order, which keeps runs bit-reproducible.
/// The simulated cluster executor and the storage/bus contention models
/// are built on top of this engine.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. 0.0 before any event has fired.
  SimTime Now() const { return now_; }

  /// Schedules `cb` at absolute time `t`. Requires t >= Now().
  void At(SimTime t, Callback cb);

  /// Schedules `cb` at Now() + delay. Requires delay >= 0.
  void After(SimTime delay, Callback cb);

  /// Runs events until the queue is empty or Stop() is called.
  /// Returns the time of the last event executed.
  SimTime Run();

  /// Runs events with time <= `deadline`.
  SimTime RunUntil(SimTime deadline);

  /// Stops Run() after the currently executing event returns.
  void Stop() { stopped_ = true; }

  /// Number of events executed so far (diagnostic).
  uint64_t events_executed() const { return events_executed_; }

  /// Number of events currently pending.
  size_t pending_events() const { return queue_.size(); }

  /// High-water mark of the pending-event queue over the run — the
  /// engine-side "queue depth" telemetry the run-metrics export
  /// reports (diagnostic; tracking it is one compare per push).
  size_t max_pending_events() const { return max_pending_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback cb;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  SimTime now_ = 0.0;
  size_t max_pending_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  bool stopped_ = false;
};

}  // namespace taskbench::sim

#endif  // TASKBENCH_SIM_SIMULATOR_H_
