#ifndef TASKBENCH_SIM_SERVER_POOL_H_
#define TASKBENCH_SIM_SERVER_POOL_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace taskbench::sim {

/// A pool of identical servers (e.g. the CPU cores of one node, or its
/// GPU devices) with a FIFO wait queue.
///
/// Acquire() grants a free server immediately (via a zero-delay event,
/// so grant order remains deterministic) or enqueues the request.
/// Release() hands the server to the oldest waiter, if any.
class ServerPool {
 public:
  using GrantCallback = std::function<void(int server_id)>;

  ServerPool(Simulator* simulator, int num_servers, std::string name);

  ServerPool(const ServerPool&) = delete;
  ServerPool& operator=(const ServerPool&) = delete;

  /// Requests any free server. `on_grant` receives the server id.
  void Acquire(GrantCallback on_grant);

  /// Returns `server_id` to the pool. Must match a prior grant.
  void Release(int server_id);

  int num_servers() const { return static_cast<int>(busy_.size()); }
  int num_busy() const { return num_busy_; }
  int num_free() const { return num_servers() - num_busy_; }
  size_t queue_length() const { return waiters_.size(); }
  const std::string& name() const { return name_; }

  /// Aggregate busy time across servers; divide by (num_servers *
  /// makespan) for utilization.
  double total_busy_time() const;

 private:
  void Grant(int server_id, GrantCallback cb);

  Simulator* simulator_;
  std::string name_;
  std::vector<bool> busy_;
  std::vector<SimTime> busy_since_;
  std::vector<double> accumulated_busy_;
  std::deque<GrantCallback> waiters_;
  int num_busy_ = 0;
};

}  // namespace taskbench::sim

#endif  // TASKBENCH_SIM_SERVER_POOL_H_
