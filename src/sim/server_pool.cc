#include "sim/server_pool.h"

#include <utility>

#include "common/logging.h"

namespace taskbench::sim {

ServerPool::ServerPool(Simulator* simulator, int num_servers, std::string name)
    : simulator_(simulator),
      name_(std::move(name)),
      busy_(static_cast<size_t>(num_servers), false),
      busy_since_(static_cast<size_t>(num_servers), 0.0),
      accumulated_busy_(static_cast<size_t>(num_servers), 0.0) {
  TB_CHECK(simulator_ != nullptr);
  TB_CHECK(num_servers > 0) << "pool " << name_ << " needs >= 1 server";
}

void ServerPool::Acquire(GrantCallback on_grant) {
  TB_CHECK(on_grant != nullptr);
  for (size_t i = 0; i < busy_.size(); ++i) {
    if (!busy_[i]) {
      Grant(static_cast<int>(i), std::move(on_grant));
      return;
    }
  }
  waiters_.push_back(std::move(on_grant));
}

void ServerPool::Release(int server_id) {
  TB_CHECK(server_id >= 0 && server_id < num_servers());
  TB_CHECK(busy_[static_cast<size_t>(server_id)])
      << "double release of server " << server_id << " in pool " << name_;
  busy_[static_cast<size_t>(server_id)] = false;
  accumulated_busy_[static_cast<size_t>(server_id)] +=
      simulator_->Now() - busy_since_[static_cast<size_t>(server_id)];
  --num_busy_;
  if (!waiters_.empty()) {
    GrantCallback cb = std::move(waiters_.front());
    waiters_.pop_front();
    Grant(server_id, std::move(cb));
  }
}

void ServerPool::Grant(int server_id, GrantCallback cb) {
  busy_[static_cast<size_t>(server_id)] = true;
  busy_since_[static_cast<size_t>(server_id)] = simulator_->Now();
  ++num_busy_;
  // Deliver through the event queue so grants interleave deterministically
  // with other same-time events.
  simulator_->After(0, [cb = std::move(cb), server_id]() { cb(server_id); });
}

double ServerPool::total_busy_time() const {
  double total = 0;
  for (size_t i = 0; i < busy_.size(); ++i) {
    total += accumulated_busy_[i];
    if (busy_[i]) total += simulator_->Now() - busy_since_[i];
  }
  return total;
}

}  // namespace taskbench::sim
