#ifndef TASKBENCH_SIM_BANDWIDTH_RESOURCE_H_
#define TASKBENCH_SIM_BANDWIDTH_RESOURCE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <string>

#include "sim/simulator.h"

namespace taskbench::sim {

/// Configuration for a shared-bandwidth resource.
struct BandwidthResourceOptions {
  /// Aggregate capacity in bytes/second shared by all active flows.
  double capacity_bps = 1e9;
  /// Upper bound on a single flow's rate (a lone client cannot exceed
  /// its own link/controller speed even if the aggregate allows more).
  double per_flow_cap_bps = 1e9;
  /// Fixed setup latency added before each transfer starts (e.g.
  /// network round-trip to a shared filesystem). Seconds.
  double per_op_latency_s = 0.0;
  /// Diagnostic name used in traces.
  std::string name = "bandwidth";
};

/// A processor-sharing bandwidth resource.
///
/// Active transfers share `capacity_bps` equally, each additionally
/// capped at `per_flow_cap_bps`. This reproduces the contention
/// behaviour the paper observes on storage: "an abundance of read/write
/// processes" saturates the disk, while a single coarse stream is
/// limited by the per-stream bandwidth and "cannot be parallelized"
/// (Section 5.1.2). Used for the shared GPFS-like disk (one global
/// instance), local disks (one instance per node) and as a building
/// block for network links.
class BandwidthResource {
 public:
  BandwidthResource(Simulator* simulator, BandwidthResourceOptions options);

  BandwidthResource(const BandwidthResource&) = delete;
  BandwidthResource& operator=(const BandwidthResource&) = delete;

  /// Starts a transfer of `bytes`; `on_done` fires (via the simulator)
  /// when the transfer completes. Zero-byte transfers complete after
  /// the per-op latency only.
  void Transfer(uint64_t bytes, std::function<void()> on_done);

  /// Number of flows currently being served (excludes latency phase).
  int active_flows() const { return static_cast<int>(flows_.size()); }

  /// Total bytes moved through this resource so far.
  uint64_t total_bytes() const { return total_bytes_; }

  /// Highest number of simultaneously active flows observed.
  int peak_flows() const { return peak_flows_; }

  const BandwidthResourceOptions& options() const { return options_; }

 private:
  struct Flow {
    double remaining_bytes;
    std::function<void()> on_done;
  };

  void Admit(uint64_t bytes, std::function<void()> on_done);
  /// Advances all flows to Now() at the current rate and reschedules
  /// the next completion event.
  void Reschedule();
  /// Fires completions that are due now; invoked by the wake event.
  void OnWake(uint64_t generation);
  double CurrentRatePerFlow() const;

  Simulator* simulator_;
  BandwidthResourceOptions options_;
  std::list<Flow> flows_;
  SimTime last_update_ = 0.0;
  uint64_t generation_ = 0;  // invalidates stale wake events
  uint64_t total_bytes_ = 0;
  int peak_flows_ = 0;
};

}  // namespace taskbench::sim

#endif  // TASKBENCH_SIM_BANDWIDTH_RESOURCE_H_
