#ifndef TASKBENCH_WF_GENERATOR_H_
#define TASKBENCH_WF_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "wf/instance.h"

namespace taskbench::wf {

/// One task type of a synthetic workflow: WfBench characterizes real
/// workflows by their per-type runtime and data-footprint
/// distributions; the generator draws tasks from these.
struct WfTaskType {
  std::string name = "work";
  double weight = 1.0;            ///< relative draw probability
  double mean_runtime_s = 1.0;
  uint64_t mean_output_bytes = 64 * 1024;
};

/// Knobs of the WfBench-style synthetic generator. Everything is
/// derived from `seed` through one deterministic stream: the same
/// options always generate the structurally identical instance (the
/// property the differential runner and the round-trip tests rely
/// on).
struct GenOptions {
  uint64_t seed = 1;
  std::string name = "wfbench";

  /// DAG shape: `levels` layers of ~`width` tasks; each non-root task
  /// reads the outputs of 1..max_parents distinct tasks of the
  /// previous level (plus occasional skip edges from earlier levels
  /// when max_parents > 1) — the level-structured topology WfBench
  /// synthesizes from real instances.
  int levels = 4;
  int width = 4;
  int max_parents = 3;

  /// Heavy-tailed runtimes: > 0 draws a Pareto(alpha) multiplier
  /// (capped at 50x) onto each task's type mean — small alpha = fat
  /// tail. 0 keeps runtimes within +-25% of the type mean.
  double heavy_tail_alpha = 0;

  /// Straggler injection: this fraction of tasks (drawn per task)
  /// runs `straggler_factor` times longer than the distribution says
  /// — the "one task holds the level" pathology the cost-model
  /// scheduler hedges against.
  double straggler_fraction = 0;
  double straggler_factor = 8;

  /// Mean size of the workflow-input files read by level-0 tasks.
  uint64_t input_bytes = 64 * 1024;

  /// Task-type library; empty selects DefaultTaskTypes(0).
  std::vector<WfTaskType> types;
};

/// A small built-in type library echoing the Montage-class mix:
/// project/diff/background/concat/reduce CPU stages. `gpu_types`
/// (0..2) appends that many GPU-targeted types ("train_gpu",
/// "infer_gpu") — a type whose name contains "gpu" is placed on the
/// GPU by BuildInstance.
std::vector<WfTaskType> DefaultTaskTypes(int gpu_types);

/// Generates a synthetic WfFormat-shaped instance. The output always
/// passes Validate and round-trips through ExportWfFormat ->
/// ImportWfFormat structurally unchanged.
Instance GenerateWfBench(const GenOptions& options);

}  // namespace taskbench::wf

#endif  // TASKBENCH_WF_GENERATOR_H_
