#ifndef TASKBENCH_WF_IMPORT_H_
#define TASKBENCH_WF_IMPORT_H_

#include <string_view>

#include "common/result.h"
#include "wf/instance.h"

namespace taskbench::wf {

/// Strict WfFormat JSON importer. Accepts the two shapes WfCommons
/// has published:
///
///   1.4+  `workflow.specification.tasks` (name, parents, inputFiles,
///         outputFiles) + `workflow.specification.files` (id,
///         sizeInBytes) + optional `workflow.execution.tasks` (id,
///         runtimeInSeconds; tasks without an execution entry default
///         to 1 s),
///   <=1.3 flat `workflow.tasks`, each task carrying `category`,
///         `runtime`/`runtimeInSeconds`, `parents` and inline
///         `files` ({name|id, link: input|output, size|sizeInBytes}).
///
/// Task types come from `category` when present, else from the name
/// convention ("mProject_00001" -> "mProject"). Types containing
/// "gpu" run on the GPU when built (see wf/build.h).
///
/// Strictness: malformed JSON (including truncation), wrong-typed
/// fields, negative/non-finite/non-integral sizes and runtimes,
/// duplicate task or file names, references to undeclared files or
/// parents, a file with two producers, and dependency cycles all
/// fail with InvalidArgument and a contextual message. On failure
/// nothing partial escapes — the Result carries no instance.
Result<Instance> ImportWfFormat(std::string_view json_text);

}  // namespace taskbench::wf

#endif  // TASKBENCH_WF_IMPORT_H_
