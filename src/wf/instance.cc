#include "wf/instance.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "common/strings.h"

namespace taskbench::wf {

namespace {

/// Name -> index maps plus the derived edge set, built once per
/// validation pass and shared by the stats/equality helpers.
struct Indexed {
  std::map<std::string, size_t> file_index;
  std::map<std::string, size_t> task_index;
  std::vector<int> producer;  ///< per file: producing task, -1 = input
  /// Unique (parent, child) task-index pairs, sorted.
  std::vector<std::pair<size_t, size_t>> edges;
};

/// The single validation pass: fills `out` and returns the first
/// violation (InvalidArgument, contextual message).
Status Index(const Instance& instance, Indexed* out) {
  if (instance.tasks.empty()) {
    return Status::InvalidArgument("instance has no tasks");
  }
  for (size_t i = 0; i < instance.files.size(); ++i) {
    const WfFile& file = instance.files[i];
    if (file.name.empty()) {
      return Status::InvalidArgument(
          StrFormat("file %zu has an empty name", i));
    }
    if (!out->file_index.emplace(file.name, i).second) {
      return Status::InvalidArgument("duplicate file '" + file.name + "'");
    }
  }
  out->producer.assign(instance.files.size(), -1);
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    const WfTask& task = instance.tasks[t];
    if (task.name.empty()) {
      return Status::InvalidArgument(
          StrFormat("task %zu has an empty name", t));
    }
    if (!out->task_index.emplace(task.name, t).second) {
      return Status::InvalidArgument("duplicate task '" + task.name + "'");
    }
    if (!std::isfinite(task.runtime_s) || task.runtime_s < 0) {
      return Status::InvalidArgument(StrFormat(
          "task '%s': runtime must be a finite non-negative number "
          "(got %g)",
          task.name.c_str(), task.runtime_s));
    }
  }
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    const WfTask& task = instance.tasks[t];
    std::set<std::string> reads;
    for (const std::string& f : task.inputs) {
      if (out->file_index.find(f) == out->file_index.end()) {
        return Status::InvalidArgument(
            "task '" + task.name + "': unknown file '" + f + "'");
      }
      reads.insert(f);
    }
    for (const std::string& f : task.outputs) {
      const auto it = out->file_index.find(f);
      if (it == out->file_index.end()) {
        return Status::InvalidArgument(
            "task '" + task.name + "': unknown file '" + f + "'");
      }
      if (reads.count(f) > 0) {
        return Status::InvalidArgument(
            "task '" + task.name + "': file '" + f +
            "' is both input and output");
      }
      int& producer = out->producer[it->second];
      if (producer >= 0) {
        return Status::InvalidArgument(
            "file '" + f + "' written by both '" +
            instance.tasks[static_cast<size_t>(producer)].name + "' and '" +
            task.name + "'");
      }
      producer = static_cast<int>(t);
    }
  }
  // Edges: file dataflow union explicit parents.
  std::set<std::pair<size_t, size_t>> edges;
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    const WfTask& task = instance.tasks[t];
    for (const std::string& f : task.inputs) {
      const int producer = out->producer[out->file_index.at(f)];
      if (producer >= 0) edges.emplace(static_cast<size_t>(producer), t);
    }
    for (const std::string& p : task.parents) {
      const auto it = out->task_index.find(p);
      if (it == out->task_index.end()) {
        return Status::InvalidArgument(
            "task '" + task.name + "': unknown parent '" + p + "'");
      }
      if (it->second == t) {
        return Status::InvalidArgument(
            "task '" + task.name + "' lists itself as parent");
      }
      edges.emplace(it->second, t);
    }
  }
  out->edges.assign(edges.begin(), edges.end());

  // Cycle check: Kahn's algorithm over the derived edges.
  std::vector<int> in_degree(instance.tasks.size(), 0);
  std::vector<std::vector<size_t>> children(instance.tasks.size());
  for (const auto& [parent, child] : out->edges) {
    ++in_degree[child];
    children[parent].push_back(child);
  }
  std::vector<size_t> frontier;
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    if (in_degree[t] == 0) frontier.push_back(t);
  }
  size_t processed = 0;
  while (!frontier.empty()) {
    const size_t t = frontier.back();
    frontier.pop_back();
    ++processed;
    for (const size_t child : children[t]) {
      if (--in_degree[child] == 0) frontier.push_back(child);
    }
  }
  if (processed != instance.tasks.size()) {
    for (size_t t = 0; t < instance.tasks.size(); ++t) {
      if (in_degree[t] > 0) {
        return Status::InvalidArgument(
            "dependency cycle involving task '" + instance.tasks[t].name +
            "'");
      }
    }
  }
  return Status::OK();
}

/// Per-task DAG level (longest path from any root), tasks assumed
/// acyclic (Index succeeded).
std::vector<int64_t> Levels(const Instance& instance, const Indexed& index) {
  std::vector<int64_t> level(instance.tasks.size(), 0);
  std::vector<int> in_degree(instance.tasks.size(), 0);
  std::vector<std::vector<size_t>> children(instance.tasks.size());
  for (const auto& [parent, child] : index.edges) {
    ++in_degree[child];
    children[parent].push_back(child);
  }
  std::vector<size_t> frontier;
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    if (in_degree[t] == 0) frontier.push_back(t);
  }
  while (!frontier.empty()) {
    const size_t t = frontier.back();
    frontier.pop_back();
    for (const size_t child : children[t]) {
      level[child] = std::max(level[child], level[t] + 1);
      if (--in_degree[child] == 0) frontier.push_back(child);
    }
  }
  return level;
}

}  // namespace

std::string TypeFromName(std::string_view task_name) {
  const size_t underscore = task_name.rfind('_');
  if (underscore == std::string_view::npos || underscore == 0) {
    return std::string(task_name);
  }
  std::string_view suffix = task_name.substr(underscore + 1);
  if (suffix.size() >= 2 && (suffix[0] == 'I' || suffix[0] == 'i') &&
      (suffix[1] == 'D' || suffix[1] == 'd')) {
    suffix = suffix.substr(2);
  }
  if (suffix.empty()) return std::string(task_name);
  for (const char c : suffix) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return std::string(task_name);
    }
  }
  return std::string(task_name.substr(0, underscore));
}

Status Validate(const Instance& instance) {
  Indexed index;
  return Index(instance, &index);
}

Result<InstanceStats> ComputeStats(const Instance& instance) {
  Indexed index;
  TB_RETURN_IF_ERROR(Index(instance, &index));
  InstanceStats stats;
  stats.tasks = static_cast<int64_t>(instance.tasks.size());
  stats.files = static_cast<int64_t>(instance.files.size());
  stats.edges = static_cast<int64_t>(index.edges.size());
  for (const WfFile& file : instance.files) stats.total_bytes += file.bytes;
  const std::vector<int64_t> levels = Levels(instance, index);
  std::map<int64_t, int64_t> per_level;
  for (const int64_t l : levels) {
    stats.height = std::max(stats.height, l + 1);
    stats.width = std::max(stats.width, ++per_level[l]);
  }
  return stats;
}

std::string ExportWfFormat(const Instance& instance) {
  Indexed index;
  // Exporting an invalid instance would hide the problem until the
  // re-import; fall back to empty edge derivation (the document still
  // serializes, and the importer rejects it with the real error).
  (void)Index(instance, &index);
  std::vector<std::vector<size_t>> parents(instance.tasks.size());
  std::vector<std::vector<size_t>> children(instance.tasks.size());
  for (const auto& [parent, child] : index.edges) {
    parents[child].push_back(parent);
    children[parent].push_back(child);
  }

  std::string out = "{\n";
  out += "  \"name\": \"" + JsonEscape(instance.name) + "\",\n";
  out += "  \"schemaVersion\": \"" + JsonEscape(instance.schema) + "\",\n";
  out += "  \"workflow\": {\n";
  out += "    \"specification\": {\n";
  out += "      \"tasks\": [\n";
  auto name_list = [&](const std::vector<size_t>& ids) {
    std::string text = "[";
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) text += ", ";
      text += '"';
      text += JsonEscape(instance.tasks[ids[i]].name);
      text += '"';
    }
    return text + "]";
  };
  auto file_list = [](const std::vector<std::string>& names) {
    std::string text = "[";
    for (size_t i = 0; i < names.size(); ++i) {
      if (i > 0) text += ", ";
      text += '"';
      text += JsonEscape(names[i]);
      text += '"';
    }
    return text + "]";
  };
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    const WfTask& task = instance.tasks[t];
    out += "        {\n";
    out += "          \"name\": \"" + JsonEscape(task.name) + "\",\n";
    // `category` preserves types the name convention cannot recover
    // (flat-schema imports); the importer prefers it over the name.
    out += "          \"category\": \"" + JsonEscape(task.type) + "\",\n";
    out += "          \"parents\": " + name_list(parents[t]) + ",\n";
    out += "          \"children\": " + name_list(children[t]) + ",\n";
    out += "          \"inputFiles\": " + file_list(task.inputs) + ",\n";
    out += "          \"outputFiles\": " + file_list(task.outputs) + "\n";
    out += StrFormat("        }%s\n",
                     t + 1 < instance.tasks.size() ? "," : "");
  }
  out += "      ],\n";
  out += "      \"files\": [\n";
  for (size_t f = 0; f < instance.files.size(); ++f) {
    const WfFile& file = instance.files[f];
    out += StrFormat("        {\"id\": \"%s\", \"sizeInBytes\": %llu}%s\n",
                     JsonEscape(file.name).c_str(),
                     static_cast<unsigned long long>(file.bytes),
                     f + 1 < instance.files.size() ? "," : "");
  }
  out += "      ]\n";
  out += "    },\n";
  out += "    \"execution\": {\n";
  out += "      \"tasks\": [\n";
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    const WfTask& task = instance.tasks[t];
    out += StrFormat(
        "        {\"id\": \"%s\", \"runtimeInSeconds\": %.17g}%s\n",
        JsonEscape(task.name).c_str(), task.runtime_s,
        t + 1 < instance.tasks.size() ? "," : "");
  }
  out += "      ]\n";
  out += "    }\n";
  out += "  }\n";
  out += "}\n";
  return out;
}

bool StructurallyEqual(const Instance& a, const Instance& b,
                       std::string* why) {
  auto fail = [why](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };
  Indexed ia, ib;
  if (Status s = Index(a, &ia); !s.ok()) {
    return fail("first instance invalid: " + s.ToString());
  }
  if (Status s = Index(b, &ib); !s.ok()) {
    return fail("second instance invalid: " + s.ToString());
  }
  if (a.name != b.name) {
    return fail("name '" + a.name + "' != '" + b.name + "'");
  }
  if (a.files.size() != b.files.size()) {
    return fail(StrFormat("file count %zu != %zu", a.files.size(),
                          b.files.size()));
  }
  for (const WfFile& file : a.files) {
    const auto it = ib.file_index.find(file.name);
    if (it == ib.file_index.end()) {
      return fail("file '" + file.name + "' missing from second instance");
    }
    if (b.files[it->second].bytes != file.bytes) {
      return fail(StrFormat("file '%s': %llu bytes != %llu",
                            file.name.c_str(),
                            static_cast<unsigned long long>(file.bytes),
                            static_cast<unsigned long long>(
                                b.files[it->second].bytes)));
    }
  }
  if (a.tasks.size() != b.tasks.size()) {
    return fail(StrFormat("task count %zu != %zu", a.tasks.size(),
                          b.tasks.size()));
  }
  for (const WfTask& task : a.tasks) {
    const auto it = ib.task_index.find(task.name);
    if (it == ib.task_index.end()) {
      return fail("task '" + task.name + "' missing from second instance");
    }
    const WfTask& other = b.tasks[it->second];
    if (task.type != other.type) {
      return fail("task '" + task.name + "': type '" + task.type +
                  "' != '" + other.type + "'");
    }
    if (task.runtime_s != other.runtime_s) {
      return fail(StrFormat("task '%s': runtime %.17g != %.17g",
                            task.name.c_str(), task.runtime_s,
                            other.runtime_s));
    }
    auto sorted = [](std::vector<std::string> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    if (sorted(task.inputs) != sorted(other.inputs)) {
      return fail("task '" + task.name + "': input file sets differ");
    }
    if (sorted(task.outputs) != sorted(other.outputs)) {
      return fail("task '" + task.name + "': output file sets differ");
    }
  }
  // Edge sets compared by name (indices differ when task order does).
  auto named_edges = [](const Instance& instance, const Indexed& index) {
    std::set<std::pair<std::string, std::string>> edges;
    for (const auto& [parent, child] : index.edges) {
      edges.emplace(instance.tasks[parent].name,
                    instance.tasks[child].name);
    }
    return edges;
  };
  if (named_edges(a, ia) != named_edges(b, ib)) {
    return fail("dependency edge sets differ");
  }
  return true;
}

}  // namespace taskbench::wf
