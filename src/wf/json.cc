#include "wf/json.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace taskbench::wf {

namespace {

constexpr int kMaxDepth = 96;

/// Recursive-descent parser over a string_view with a cursor. Every
/// error carries the byte offset it was detected at.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    TB_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("%s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      }
      case 't': return ParseLiteral("true", out);
      case 'f': return ParseLiteral("false", out);
      case 'n': return ParseLiteral("null", out);
      default: return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* literal, JsonValue* out) {
    const size_t len = std::strlen(literal);
    if (text_.size() - pos_ < len ||
        text_.compare(pos_, len, literal) != 0) {
      return Error("invalid literal");
    }
    pos_ += len;
    if (literal[0] == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
    } else if (literal[0] == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
    } else {
      out->kind = JsonValue::Kind::kNull;
    }
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      pos_ = start;
      return Error("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("digit required after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("digit required in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = std::strtod(token.c_str(), nullptr);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (AtEnd() || Peek() != '"') return Error("expected string");
    ++pos_;
    out->clear();
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) return Error("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            TB_RETURN_IF_ERROR(AppendUnicodeEscape(out));
            break;
          }
          default: return Error("invalid escape");
        }
        continue;
      }
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
  }

  Status AppendUnicodeEscape(std::string* out) {
    unsigned code = 0;
    TB_RETURN_IF_ERROR(ParseHex4(&code));
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (text_.size() - pos_ < 2 || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        return Error("unpaired surrogate");
      }
      pos_ += 2;
      unsigned low = 0;
      TB_RETURN_IF_ERROR(ParseHex4(&low));
      if (low < 0xDC00 || low > 0xDFFF) return Error("unpaired surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      return Error("unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return Status::OK();
  }

  Status ParseHex4(unsigned* out) {
    if (text_.size() - pos_ < 4) return Error("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      JsonValue item;
      SkipWhitespace();
      TB_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      out->items.push_back(std::move(item));
      SkipWhitespace();
      if (AtEnd()) return Error("unexpected end of input in array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      TB_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Error("expected ':' in object");
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      TB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Error("unexpected end of input in object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace taskbench::wf
