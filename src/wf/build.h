#ifndef TASKBENCH_WF_BUILD_H_
#define TASKBENCH_WF_BUILD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "runtime/task_graph.h"
#include "wf/instance.h"

namespace taskbench::wf {

/// Knobs of the Instance -> TaskGraph mapping.
struct BuildOptions {
  /// true: register materialized matrices + deterministic kernels so
  /// the graph runs on the real executors (thread pool, multi-proc)
  /// — file sizes are miniaturized to max_dim x max_dim blocks (the
  /// registered bytes and modeled costs shrink with them, keeping
  /// the shm arena auto-sizing and the sim conservation checks
  /// consistent). false: simulation-only graph carrying the true
  /// WfFormat byte sizes, for scheduler/storage studies at real
  /// scale.
  bool materialize = true;
  /// Edge length cap of materialized blocks (dim = sqrt(bytes/8),
  /// clamped to [1, max_dim]).
  int64_t max_dim = 16;
  /// Runtime -> modeled-work conversion: a task of R seconds gets
  /// R * flops_per_s parallel flops, so on a reference 1-core node
  /// the simulated compute time reproduces the recorded runtime.
  double flops_per_s = 16e9;
};

/// A built instance, ready for any runtime::Executor.
struct BuiltInstance {
  runtime::TaskGraph graph;
  /// Every registered datum, in registration order — the differential
  /// comparison set (workflow inputs, intermediates, outputs, control
  /// data).
  std::vector<runtime::DataId> data;
  /// Data id of each instance file, aligned with Instance::files.
  std::vector<runtime::DataId> file_ids;
  InstanceStats stats;
};

/// Maps a validated instance onto the runtime: one datum per file
/// (plus tiny control data for explicit parent edges no file
/// carries), one task per WfTask submitted in topological order so
/// the graph's access-history dependency derivation reproduces the
/// WfFormat edge set exactly. Tasks whose type contains "gpu" target
/// Processor::kGpu. Materialized kernels fold every input element
/// into a hash that deterministically fills the outputs, so any
/// missed or reordered dependency changes result bits — the property
/// the differential legs check. Fails with InvalidArgument when the
/// instance is invalid; never leaves a partial graph.
Result<BuiltInstance> BuildInstance(const Instance& instance,
                                    const BuildOptions& options);

}  // namespace taskbench::wf

#endif  // TASKBENCH_WF_BUILD_H_
