#include "wf/import.h"

#include <cmath>
#include <map>
#include <utility>

#include "common/strings.h"
#include "wf/json.h"

namespace taskbench::wf {

namespace {

Status TypeError(const std::string& context, const char* expected) {
  return Status::InvalidArgument(context + ": expected " + expected);
}

Result<const JsonValue*> RequireObject(const JsonValue& value,
                                       const std::string& context) {
  if (!value.IsObject()) return TypeError(context, "an object");
  return &value;
}

Result<const JsonValue*> RequireArray(const JsonValue* value,
                                      const std::string& context) {
  if (value == nullptr || !value->IsArray()) {
    return TypeError(context, "an array");
  }
  return value;
}

Result<std::string> RequireString(const JsonValue* value,
                                  const std::string& context) {
  if (value == nullptr || !value->IsString()) {
    return TypeError(context, "a string");
  }
  if (value->string_value.empty()) {
    return Status::InvalidArgument(context + ": must not be empty");
  }
  return value->string_value;
}

/// A WfFormat byte size: a non-negative integral JSON number small
/// enough to be exact in a double.
Result<uint64_t> RequireBytes(const JsonValue* value,
                              const std::string& context) {
  if (value == nullptr || !value->IsNumber()) {
    return TypeError(context, "a number");
  }
  const double v = value->number_value;
  if (!std::isfinite(v) || v < 0) {
    return Status::InvalidArgument(StrFormat(
        "%s: size must be a finite non-negative number (got %g)",
        context.c_str(), v));
  }
  if (v > 9007199254740992.0 || std::floor(v) != v) {
    return Status::InvalidArgument(StrFormat(
        "%s: size must be an integral byte count (got %.17g)",
        context.c_str(), v));
  }
  return static_cast<uint64_t>(v);
}

Result<double> RequireRuntime(const JsonValue* value,
                              const std::string& context) {
  if (value == nullptr || !value->IsNumber()) {
    return TypeError(context, "a number");
  }
  const double v = value->number_value;
  if (!std::isfinite(v) || v < 0) {
    return Status::InvalidArgument(StrFormat(
        "%s: runtime must be a finite non-negative number (got %g)",
        context.c_str(), v));
  }
  return v;
}

Result<std::vector<std::string>> StringList(const JsonValue* value,
                                            const std::string& context) {
  std::vector<std::string> out;
  if (value == nullptr) return out;  // absent = empty
  if (!value->IsArray()) return TypeError(context, "an array of strings");
  out.reserve(value->items.size());
  for (size_t i = 0; i < value->items.size(); ++i) {
    TB_ASSIGN_OR_RETURN(
        std::string name,
        RequireString(&value->items[i],
                      StrFormat("%s[%zu]", context.c_str(), i)));
    out.push_back(std::move(name));
  }
  return out;
}

/// WfFormat 1.4+: workflow.specification + workflow.execution.
Status ImportSpecification(const JsonValue& workflow, Instance* out) {
  TB_ASSIGN_OR_RETURN(
      const JsonValue* spec,
      RequireObject(*workflow.Find("specification"),
                    "workflow.specification"));
  TB_ASSIGN_OR_RETURN(
      const JsonValue* tasks,
      RequireArray(spec->Find("tasks"), "workflow.specification.tasks"));
  TB_ASSIGN_OR_RETURN(
      const JsonValue* files,
      RequireArray(spec->Find("files"), "workflow.specification.files"));

  for (size_t f = 0; f < files->items.size(); ++f) {
    const std::string context =
        StrFormat("workflow.specification.files[%zu]", f);
    TB_ASSIGN_OR_RETURN(const JsonValue* file,
                        RequireObject(files->items[f], context));
    WfFile entry;
    TB_ASSIGN_OR_RETURN(entry.name,
                        RequireString(file->Find("id"), context + ".id"));
    TB_ASSIGN_OR_RETURN(
        entry.bytes,
        RequireBytes(file->Find("sizeInBytes"),
                     context + ".sizeInBytes ('" + entry.name + "')"));
    out->files.push_back(std::move(entry));
  }

  for (size_t t = 0; t < tasks->items.size(); ++t) {
    const std::string context =
        StrFormat("workflow.specification.tasks[%zu]", t);
    TB_ASSIGN_OR_RETURN(const JsonValue* task,
                        RequireObject(tasks->items[t], context));
    WfTask entry;
    TB_ASSIGN_OR_RETURN(entry.name,
                        RequireString(task->Find("name"), context + ".name"));
    const std::string name_context = "task '" + entry.name + "'";
    if (const JsonValue* category = task->Find("category");
        category != nullptr) {
      TB_ASSIGN_OR_RETURN(
          entry.type, RequireString(category, name_context + ".category"));
    } else {
      entry.type = TypeFromName(entry.name);
    }
    TB_ASSIGN_OR_RETURN(
        entry.parents,
        StringList(task->Find("parents"), name_context + ".parents"));
    TB_ASSIGN_OR_RETURN(
        entry.inputs,
        StringList(task->Find("inputFiles"), name_context + ".inputFiles"));
    TB_ASSIGN_OR_RETURN(
        entry.outputs,
        StringList(task->Find("outputFiles"),
                   name_context + ".outputFiles"));
    // `children` is redundant with the other tasks' parents; tolerate
    // it but require well-formedness.
    TB_ASSIGN_OR_RETURN(
        const std::vector<std::string> children,
        StringList(task->Find("children"), name_context + ".children"));
    (void)children;
    out->tasks.push_back(std::move(entry));
  }

  // Execution runtimes, keyed by task id. Optional: simulation-only
  // instances without measurements keep the 1 s default.
  const JsonValue* execution = workflow.Find("execution");
  if (execution != nullptr) {
    TB_ASSIGN_OR_RETURN(const JsonValue* exec,
                        RequireObject(*execution, "workflow.execution"));
    TB_ASSIGN_OR_RETURN(
        const JsonValue* exec_tasks,
        RequireArray(exec->Find("tasks"), "workflow.execution.tasks"));
    std::map<std::string, size_t> task_index;
    for (size_t t = 0; t < out->tasks.size(); ++t) {
      task_index.emplace(out->tasks[t].name, t);
    }
    for (size_t t = 0; t < exec_tasks->items.size(); ++t) {
      const std::string context =
          StrFormat("workflow.execution.tasks[%zu]", t);
      TB_ASSIGN_OR_RETURN(const JsonValue* task,
                          RequireObject(exec_tasks->items[t], context));
      TB_ASSIGN_OR_RETURN(const std::string id,
                          RequireString(task->Find("id"), context + ".id"));
      const auto it = task_index.find(id);
      if (it == task_index.end()) {
        return Status::InvalidArgument(
            context + ": execution entry for unknown task '" + id + "'");
      }
      TB_ASSIGN_OR_RETURN(
          out->tasks[it->second].runtime_s,
          RequireRuntime(task->Find("runtimeInSeconds"),
                         "task '" + id + "'.runtimeInSeconds"));
    }
  }
  return Status::OK();
}

/// WfFormat <= 1.3: flat workflow.tasks with inline files.
Status ImportFlat(const JsonValue& workflow, Instance* out) {
  TB_ASSIGN_OR_RETURN(const JsonValue* tasks,
                      RequireArray(workflow.Find("tasks"),
                                   "workflow.tasks"));
  std::map<std::string, uint64_t> file_bytes;
  std::vector<std::string> file_order;
  for (size_t t = 0; t < tasks->items.size(); ++t) {
    const std::string context = StrFormat("workflow.tasks[%zu]", t);
    TB_ASSIGN_OR_RETURN(const JsonValue* task,
                        RequireObject(tasks->items[t], context));
    WfTask entry;
    TB_ASSIGN_OR_RETURN(entry.name,
                        RequireString(task->Find("name"), context + ".name"));
    const std::string name_context = "task '" + entry.name + "'";
    if (const JsonValue* category = task->Find("category");
        category != nullptr) {
      TB_ASSIGN_OR_RETURN(
          entry.type, RequireString(category, name_context + ".category"));
    } else {
      entry.type = TypeFromName(entry.name);
    }
    const JsonValue* runtime = task->Find("runtimeInSeconds");
    if (runtime == nullptr) runtime = task->Find("runtime");
    if (runtime != nullptr) {
      TB_ASSIGN_OR_RETURN(entry.runtime_s,
                          RequireRuntime(runtime, name_context + ".runtime"));
    }
    TB_ASSIGN_OR_RETURN(
        entry.parents,
        StringList(task->Find("parents"), name_context + ".parents"));
    if (const JsonValue* files = task->Find("files"); files != nullptr) {
      if (!files->IsArray()) {
        return TypeError(name_context + ".files", "an array");
      }
      for (size_t f = 0; f < files->items.size(); ++f) {
        const std::string file_context =
            StrFormat("%s.files[%zu]", name_context.c_str(), f);
        TB_ASSIGN_OR_RETURN(const JsonValue* file,
                            RequireObject(files->items[f], file_context));
        const JsonValue* id = file->Find("name");
        if (id == nullptr) id = file->Find("id");
        TB_ASSIGN_OR_RETURN(const std::string file_name,
                            RequireString(id, file_context + ".name"));
        const JsonValue* size = file->Find("sizeInBytes");
        if (size == nullptr) size = file->Find("size");
        TB_ASSIGN_OR_RETURN(
            const uint64_t bytes,
            RequireBytes(size, file_context + " ('" + file_name + "')"));
        TB_ASSIGN_OR_RETURN(
            const std::string link,
            RequireString(file->Find("link"), file_context + ".link"));
        if (link == "input") {
          entry.inputs.push_back(file_name);
        } else if (link == "output") {
          entry.outputs.push_back(file_name);
        } else {
          return Status::InvalidArgument(
              file_context + ".link: expected \"input\" or \"output\", got "
              "\"" + link + "\"");
        }
        const auto [it, inserted] = file_bytes.emplace(file_name, bytes);
        if (inserted) {
          file_order.push_back(file_name);
        } else if (it->second != bytes) {
          return Status::InvalidArgument(StrFormat(
              "file '%s': conflicting sizes %llu and %llu",
              file_name.c_str(),
              static_cast<unsigned long long>(it->second),
              static_cast<unsigned long long>(bytes)));
        }
      }
    }
    out->tasks.push_back(std::move(entry));
  }
  for (const std::string& name : file_order) {
    out->files.push_back({name, file_bytes.at(name)});
  }
  return Status::OK();
}

}  // namespace

Result<Instance> ImportWfFormat(std::string_view json_text) {
  TB_ASSIGN_OR_RETURN(const JsonValue root, ParseJson(json_text));
  if (!root.IsObject()) {
    return Status::InvalidArgument(
        "WfFormat document root must be an object");
  }
  Instance instance;
  if (const JsonValue* name = root.Find("name"); name != nullptr) {
    TB_ASSIGN_OR_RETURN(instance.name, RequireString(name, "name"));
  }
  const JsonValue* schema = root.Find("schemaVersion");
  if (schema == nullptr) schema = root.Find("schema");
  if (schema != nullptr && schema->IsString()) {
    instance.schema = schema->string_value;
  }
  const JsonValue* workflow = root.Find("workflow");
  if (workflow == nullptr || !workflow->IsObject()) {
    return Status::InvalidArgument(
        "missing 'workflow' object (not a WfFormat document?)");
  }
  if (workflow->Find("specification") != nullptr) {
    TB_RETURN_IF_ERROR(ImportSpecification(*workflow, &instance));
  } else if (workflow->Find("tasks") != nullptr) {
    TB_RETURN_IF_ERROR(ImportFlat(*workflow, &instance));
  } else {
    return Status::InvalidArgument(
        "workflow has neither 'specification' nor 'tasks'");
  }
  TB_RETURN_IF_ERROR(Validate(instance));
  return instance;
}

}  // namespace taskbench::wf
