#include "wf/build.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/strings.h"

namespace taskbench::wf {

namespace {

using runtime::DataId;
using runtime::Dir;
using runtime::Param;
using runtime::TaskSpec;

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Bit-exact hash -> double in [0, 1): 53 mantissa bits scaled by
/// 2^-53. Pure integer + power-of-two arithmetic, so every executor
/// and platform produces identical bits.
double UnitFromHash(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

int64_t DimForBytes(uint64_t bytes, int64_t max_dim) {
  const int64_t dim = static_cast<int64_t>(
      std::sqrt(static_cast<double>(bytes) / 8.0));
  return std::clamp<int64_t>(dim, 1, max_dim);
}

data::Matrix SeededMatrix(int64_t dim, uint64_t seed) {
  data::Matrix m(dim, dim);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = UnitFromHash(Mix64(seed + static_cast<uint64_t>(i)));
  }
  return m;
}

/// Kernel shared by every workflow task: folds all input bits into one
/// hash and fills each output deterministically from it. Any missed,
/// extra, or reordered dependency flips the fold and therefore every
/// downstream output bit.
runtime::KernelFn MakeKernel(uint64_t task_hash,
                             std::vector<int64_t> out_dims) {
  return [task_hash, out_dims = std::move(out_dims)](
             const std::vector<const data::Matrix*>& inputs,
             const std::vector<data::Matrix*>& outputs) -> Status {
    uint64_t fold = task_hash;
    for (const data::Matrix* in : inputs) {
      for (int64_t i = 0; i < in->size(); ++i) {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(double), "");
        std::memcpy(&bits, in->data() + i, sizeof(bits));
        fold = Mix64(fold ^ bits);
      }
    }
    if (outputs.size() != out_dims.size()) {
      return Status::Internal(StrFormat(
          "wf kernel: expected %zu outputs, got %zu", out_dims.size(),
          outputs.size()));
    }
    for (size_t o = 0; o < outputs.size(); ++o) {
      const int64_t dim = out_dims[o];
      data::Matrix m(dim, dim);
      const uint64_t out_seed = Mix64(fold + 0x10001ull * (o + 1));
      for (int64_t i = 0; i < m.size(); ++i) {
        m.data()[i] =
            UnitFromHash(Mix64(out_seed + static_cast<uint64_t>(i)));
      }
      *outputs[o] = std::move(m);
    }
    return Status::OK();
  };
}

bool IsGpuType(const std::string& type) {
  std::string lower = type;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower.find("gpu") != std::string::npos;
}

}  // namespace

Result<BuiltInstance> BuildInstance(const Instance& instance,
                                    const BuildOptions& options) {
  TB_ASSIGN_OR_RETURN(const InstanceStats stats, ComputeStats(instance));

  std::map<std::string, size_t> file_index;
  for (size_t f = 0; f < instance.files.size(); ++f) {
    file_index.emplace(instance.files[f].name, f);
  }
  std::map<std::string, size_t> task_index;
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    task_index.emplace(instance.tasks[t].name, t);
  }

  // Producer of each file (-1 = workflow input) — Validate() already
  // guaranteed uniqueness.
  std::vector<int64_t> producer(instance.files.size(), -1);
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    for (const std::string& out : instance.tasks[t].outputs) {
      producer[file_index.at(out)] = static_cast<int64_t>(t);
    }
  }

  // Edges already carried by file dataflow; explicit parents beyond
  // these need a control datum to surface in the access history.
  std::set<std::pair<size_t, size_t>> file_edges;
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    for (const std::string& in : instance.tasks[t].inputs) {
      const int64_t p = producer[file_index.at(in)];
      if (p >= 0) file_edges.emplace(static_cast<size_t>(p), t);
    }
  }

  // Topological order via Kahn on the full (file + parent) edge set;
  // seed and queue processed in index order for determinism.
  std::vector<std::vector<size_t>> children(instance.tasks.size());
  std::vector<int> indegree(instance.tasks.size(), 0);
  {
    std::set<std::pair<size_t, size_t>> edges = file_edges;
    for (size_t t = 0; t < instance.tasks.size(); ++t) {
      for (const std::string& parent : instance.tasks[t].parents) {
        edges.emplace(task_index.at(parent), t);
      }
    }
    for (const auto& [from, to] : edges) {
      children[from].push_back(to);
      ++indegree[to];
    }
  }
  std::vector<size_t> topo;
  topo.reserve(instance.tasks.size());
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    if (indegree[t] == 0) topo.push_back(t);
  }
  for (size_t head = 0; head < topo.size(); ++head) {
    for (const size_t child : children[topo[head]]) {
      if (--indegree[child] == 0) topo.push_back(child);
    }
  }
  if (topo.size() != instance.tasks.size()) {
    return Status::Internal("wf build: cycle survived validation");
  }

  BuiltInstance built;
  built.stats = stats;

  // One datum per file. Materialized graphs miniaturize to
  // max_dim x max_dim blocks; sim-only graphs carry the true bytes.
  std::vector<int64_t> dims(instance.files.size(), 1);
  built.file_ids.resize(instance.files.size(), -1);
  for (size_t f = 0; f < instance.files.size(); ++f) {
    const WfFile& file = instance.files[f];
    dims[f] = DimForBytes(file.bytes, options.max_dim);
    if (!options.materialize) {
      built.file_ids[f] =
          built.graph.AddData(std::max<uint64_t>(1, file.bytes), file.name);
    } else if (producer[f] < 0) {
      // Workflow input: materialized up front, content derived from
      // the file name so imports are reproducible byte-for-byte.
      built.file_ids[f] = built.graph.AddData(
          SeededMatrix(dims[f], HashString(file.name)), file.name);
    } else {
      // Produced file: registered by size, filled by its task.
      const uint64_t bytes =
          static_cast<uint64_t>(dims[f]) * static_cast<uint64_t>(dims[f]) * 8;
      built.file_ids[f] = built.graph.AddData(bytes, file.name);
    }
    built.data.push_back(built.file_ids[f]);
  }

  // Control data: one 1x1 datum per explicit-parent edge not implied
  // by files, written by the parent, read by the child.
  // ctrl_out[t] lists ctrl data task t must write; ctrl_in[t] those
  // it must read.
  std::vector<std::vector<DataId>> ctrl_out(instance.tasks.size());
  std::vector<std::vector<DataId>> ctrl_in(instance.tasks.size());
  for (size_t t = 0; t < instance.tasks.size(); ++t) {
    for (const std::string& parent : instance.tasks[t].parents) {
      const size_t p = task_index.at(parent);
      if (file_edges.count({p, t}) != 0) continue;
      const std::string name =
          StrFormat("ctrl:%s->%s", parent.c_str(),
                    instance.tasks[t].name.c_str());
      const DataId id = options.materialize
                            ? built.graph.AddData(uint64_t{8}, name)
                            : built.graph.AddData(uint64_t{1}, name);
      ctrl_out[p].push_back(id);
      ctrl_in[t].push_back(id);
      built.data.push_back(id);
    }
  }

  for (const size_t t : topo) {
    const WfTask& task = instance.tasks[t];
    TaskSpec spec;
    spec.type = task.type.empty() ? std::string("task") : task.type;
    spec.processor =
        IsGpuType(spec.type) ? Processor::kGpu : Processor::kCpu;

    uint64_t in_bytes = 0;
    uint64_t out_bytes = 0;
    std::vector<int64_t> out_dims;
    for (const std::string& in : task.inputs) {
      const size_t f = file_index.at(in);
      spec.params.push_back({built.file_ids[f], Dir::kIn});
      in_bytes += built.graph.data(built.file_ids[f]).bytes;
    }
    for (const DataId id : ctrl_in[t]) {
      spec.params.push_back({id, Dir::kIn});
      in_bytes += built.graph.data(id).bytes;
    }
    for (const std::string& out : task.outputs) {
      const size_t f = file_index.at(out);
      spec.params.push_back({built.file_ids[f], Dir::kOut});
      out_bytes += built.graph.data(built.file_ids[f]).bytes;
      out_dims.push_back(dims[f]);
    }
    for (const DataId id : ctrl_out[t]) {
      spec.params.push_back({id, Dir::kOut});
      out_bytes += built.graph.data(id).bytes;
      out_dims.push_back(1);
    }

    // Recorded runtime -> modeled work: mostly parallel with a small
    // serial fraction, so executor scaling studies stay meaningful.
    const double flops = task.runtime_s * options.flops_per_s;
    spec.cost.parallel.flops = flops;
    spec.cost.parallel.bytes = static_cast<double>(in_bytes + out_bytes);
    spec.cost.serial.flops = flops / 16.0;
    spec.cost.input_bytes = in_bytes;
    spec.cost.output_bytes = out_bytes;
    if (spec.processor == Processor::kGpu) {
      spec.cost.h2d_bytes = in_bytes;
      spec.cost.d2h_bytes = out_bytes;
      spec.cost.num_transfers = 2;
      spec.cost.gpu_working_set_bytes = in_bytes + out_bytes;
    }

    if (options.materialize) {
      spec.kernel = MakeKernel(HashString(task.name), std::move(out_dims));
    }
    TB_RETURN_IF_ERROR(built.graph.Submit(std::move(spec)).status());
  }

  return built;
}

}  // namespace taskbench::wf
