#include "wf/generator.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/random.h"
#include "common/strings.h"

namespace taskbench::wf {

namespace {

/// Pareto(alpha) multiplier >= 1, capped so one draw cannot dwarf the
/// whole workflow: inverse-transform sampling on (1-u)^(-1/alpha).
double HeavyTailMultiplier(Rng& rng, double alpha) {
  const double u = rng.NextDouble();
  const double draw = std::pow(1.0 - u, -1.0 / alpha);
  return std::min(draw, 50.0);
}

const WfTaskType& DrawType(Rng& rng, const std::vector<WfTaskType>& types) {
  double total = 0;
  for (const WfTaskType& type : types) total += type.weight;
  double draw = rng.NextDouble() * total;
  for (const WfTaskType& type : types) {
    draw -= type.weight;
    if (draw < 0) return type;
  }
  return types.back();
}

uint64_t ScaledBytes(Rng& rng, uint64_t mean) {
  const double scaled = static_cast<double>(mean) * (0.5 + rng.NextDouble());
  return std::max<uint64_t>(1, static_cast<uint64_t>(scaled));
}

}  // namespace

std::vector<WfTaskType> DefaultTaskTypes(int gpu_types) {
  std::vector<WfTaskType> types = {
      {"project", 3.0, 2.0, 128 * 1024},
      {"diff", 3.0, 0.6, 16 * 1024},
      {"background", 2.0, 1.2, 96 * 1024},
      {"concat", 1.0, 0.8, 32 * 1024},
      {"reduce", 1.0, 3.0, 64 * 1024},
  };
  if (gpu_types >= 1) types.push_back({"train_gpu", 2.0, 4.0, 256 * 1024});
  if (gpu_types >= 2) types.push_back({"infer_gpu", 2.0, 1.5, 64 * 1024});
  return types;
}

Instance GenerateWfBench(const GenOptions& options) {
  Rng rng(options.seed * 0x9e3779b97f4a7c15ull + 0x94d049bb133111ebull);
  const std::vector<WfTaskType> types =
      options.types.empty() ? DefaultTaskTypes(0) : options.types;
  const int levels = std::max(1, options.levels);
  const int width = std::max(1, options.width);
  const int max_parents = std::max(1, options.max_parents);

  Instance instance;
  instance.name = options.name;

  // Tasks per level, indexed for parent selection.
  std::vector<std::vector<size_t>> by_level;
  int task_counter = 0;
  int file_counter = 0;

  for (int level = 0; level < levels; ++level) {
    // +-1 jitter keeps layers from being perfectly rectangular while
    // guaranteeing at least one task per level (height == levels).
    const int level_width =
        level == 0 ? width
                   : std::max(1, width - 1 + static_cast<int>(
                                                 rng.NextBounded(3)));
    std::vector<size_t> here;
    for (int j = 0; j < level_width; ++j) {
      const WfTaskType& type = DrawType(rng, types);
      WfTask task;
      task.name = StrFormat("%s_%05d", type.name.c_str(), ++task_counter);
      task.type = type.name;

      double runtime = type.mean_runtime_s;
      if (options.heavy_tail_alpha > 0) {
        runtime *= HeavyTailMultiplier(rng, options.heavy_tail_alpha);
      } else {
        runtime *= 0.75 + 0.5 * rng.NextDouble();
      }
      if (options.straggler_fraction > 0 &&
          rng.NextDouble() < options.straggler_fraction) {
        runtime *= options.straggler_factor;
      }
      task.runtime_s = runtime;

      if (level == 0) {
        // Workflow inputs: fresh external files.
        const int num_inputs = 1 + static_cast<int>(rng.NextBounded(2));
        for (int f = 0; f < num_inputs; ++f) {
          const std::string file_name =
              StrFormat("input_%05d.dat", ++file_counter);
          instance.files.push_back(
              {file_name, ScaledBytes(rng, options.input_bytes)});
          task.inputs.push_back(file_name);
        }
      } else {
        // 1..max_parents distinct parents from the previous level;
        // the dependency is carried by the parent's first output
        // file, and the parent is also listed explicitly (both edge
        // encodings WfFormat uses must keep working).
        const std::vector<size_t>& prev = by_level.back();
        const int num_parents =
            1 + static_cast<int>(
                    rng.NextBounded(static_cast<uint64_t>(max_parents)));
        std::set<size_t> picked;
        for (int p = 0; p < num_parents; ++p) {
          picked.insert(prev[rng.NextBounded(prev.size())]);
        }
        // Occasional skip edge from a non-adjacent earlier level.
        if (max_parents > 1 && level > 1 && rng.NextDouble() < 0.2) {
          const std::vector<size_t>& earlier =
              by_level[rng.NextBounded(static_cast<uint64_t>(level - 1))];
          picked.insert(earlier[rng.NextBounded(earlier.size())]);
        }
        for (const size_t parent : picked) {
          task.inputs.push_back(instance.tasks[parent].outputs.front());
          task.parents.push_back(instance.tasks[parent].name);
        }
      }

      const int num_outputs = 1 + (rng.NextDouble() < 0.25 ? 1 : 0);
      for (int f = 0; f < num_outputs; ++f) {
        const std::string file_name =
            StrFormat("%s_out%d.dat", task.name.c_str(), f);
        instance.files.push_back(
            {file_name, ScaledBytes(rng, type.mean_output_bytes)});
        task.outputs.push_back(file_name);
      }

      here.push_back(instance.tasks.size());
      instance.tasks.push_back(std::move(task));
    }
    by_level.push_back(std::move(here));
  }
  return instance;
}

}  // namespace taskbench::wf
