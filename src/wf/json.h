#ifndef TASKBENCH_WF_JSON_H_
#define TASKBENCH_WF_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace taskbench::wf {

/// A parsed JSON document node. Unlike obs::ValidateJson (which only
/// scans), the wf importer must materialize values: WfFormat task
/// names, parent lists and byte sizes all come out of this tree.
/// Object members keep document order so error messages and
/// round-trip tests are stable.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> items;  ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsBool() const { return kind == Kind::kBool; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsObject() const { return kind == Kind::kObject; }

  /// First member named `key`, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;
};

/// Strict RFC 8259 parser: one value surrounded only by whitespace,
/// no trailing garbage, no NaN/Infinity literals, nesting capped at
/// 96 levels. Errors are InvalidArgument with the byte offset, so a
/// truncated WfFormat document fails with "unexpected end of input"
/// instead of importing a partial workflow.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace taskbench::wf

#endif  // TASKBENCH_WF_JSON_H_
