#ifndef TASKBENCH_WF_INSTANCE_H_
#define TASKBENCH_WF_INSTANCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace taskbench::wf {

/// One workflow file: a named datum with a byte size, the WfFormat
/// unit of data movement. Producers and consumers reference files by
/// name; a file with no producing task is workflow input.
struct WfFile {
  std::string name;
  uint64_t bytes = 0;
};

/// One workflow task, WfFormat-shaped: dependencies come from the
/// union of file dataflow (a task reading a file another task writes)
/// and the explicit `parents` list (control edges some instances
/// carry without a connecting file).
struct WfTask {
  std::string name;       ///< unique instance-wide, e.g. "mProject_00001"
  std::string type;       ///< task category; types containing "gpu" target GPUs
  double runtime_s = 1.0; ///< measured/estimated runtime, seconds
  std::vector<std::string> inputs;   ///< file names read
  std::vector<std::string> outputs;  ///< file names written
  std::vector<std::string> parents;  ///< explicit parent task names
};

/// A workflow instance — the in-memory equivalent of one WfFormat
/// JSON document, produced by ImportWfFormat or GenerateWfBench and
/// consumed by BuildInstance.
struct Instance {
  std::string name = "workflow";
  std::string schema = "1.4";
  std::vector<WfFile> files;
  std::vector<WfTask> tasks;
};

/// Structural summary of a validated instance.
struct InstanceStats {
  int64_t tasks = 0;
  int64_t files = 0;
  int64_t edges = 0;        ///< unique (parent, child) dependency pairs
  uint64_t total_bytes = 0; ///< sum of all file sizes
  int64_t height = 0;       ///< number of DAG levels (longest path)
  int64_t width = 0;        ///< max tasks in one level
};

/// Task category derived from a WfFormat task name: strips one
/// trailing "_<digits>" or "_ID<digits>" group, the convention
/// WfCommons instances use ("mProject_00001" -> "mProject").
std::string TypeFromName(std::string_view task_name);

/// Strict validation: non-empty unique task and file names, finite
/// non-negative runtimes, every referenced file/parent declared, one
/// producer per file, no self-edges, acyclic. InvalidArgument with a
/// contextual message on the first violation.
Status Validate(const Instance& instance);

/// Validates and summarizes (edge count, levels, width). The only
/// way to get stats, so stats always describe a valid instance.
Result<InstanceStats> ComputeStats(const Instance& instance);

/// Serializes to a WfFormat 1.4-style JSON document (specification
/// tasks/files + execution runtimes, full-precision runtimes so
/// export -> import round-trips bit-exactly). Used for fixture
/// generation from GenerateWfBench outputs.
std::string ExportWfFormat(const Instance& instance);

/// Structural equality: same task set (name, type, bit-equal
/// runtime, input/output file sets), same file sizes, and the same
/// derived dependency-edge set — the round-trip property (generate ->
/// export -> import must not change the workflow). On mismatch,
/// `why` (optional) receives a one-line description.
bool StructurallyEqual(const Instance& a, const Instance& b,
                       std::string* why = nullptr);

}  // namespace taskbench::wf

#endif  // TASKBENCH_WF_INSTANCE_H_
