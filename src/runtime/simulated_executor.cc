#include "runtime/simulated_executor.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "hw/slot_index.h"
#include "perf/cost_model.h"
#include "runtime/ready_queue.h"
#include "runtime/scheduler.h"
#include "sim/bandwidth_resource.h"
#include "sim/simulator.h"

namespace taskbench::runtime {

namespace {

/// All mutable state of one simulation run. The executor itself is
/// const/reusable; every Execute() builds a fresh SimState.
///
/// The scheduling path is built on incremental structures so one
/// decision costs O(log ready) instead of O(ready x nodes): the ready
/// set lives in per-placement-class heaps (ReadyQueue), free slots in
/// O(1)-aggregate SlotIndexes, and locality tallies in a
/// dirty-tracked per-task cache. docs/sched_fast_path.md derives the
/// equivalence with the legacy full-scan path.
class SimState {
 public:
  SimState(const hw::ClusterSpec& cluster,
           const SimulatedExecutorOptions& options, const TaskGraph& graph)
      : cluster_(cluster),
        options_(options),
        graph_(graph),
        model_(cluster),
        scheduler_(MakeScheduler(options.policy)) {
    const int nodes = cluster_.num_nodes;
    cpu_slots_.Reset(nodes, cluster_.cores_per_node);
    gpu_slots_.Reset(nodes, cluster_.gpus_per_node);

    sim::BandwidthResourceOptions shared_opts;
    shared_opts.capacity_bps = cluster_.shared_disk.aggregate_bw_bps;
    shared_opts.per_flow_cap_bps = cluster_.shared_disk.per_stream_bw_bps;
    shared_opts.per_op_latency_s = cluster_.shared_disk.per_op_latency_s;
    shared_opts.name = "shared-disk";
    shared_disk_ =
        std::make_unique<sim::BandwidthResource>(&simulator_, shared_opts);

    sim::BandwidthResourceOptions local_opts;
    local_opts.capacity_bps = cluster_.local_disk.aggregate_bw_bps;
    local_opts.per_flow_cap_bps = cluster_.local_disk.per_stream_bw_bps;
    local_opts.per_op_latency_s = cluster_.local_disk.per_op_latency_s;
    for (int n = 0; n < nodes; ++n) {
      local_opts.name = StrFormat("local-disk-%d", n);
      local_disks_.push_back(
          std::make_unique<sim::BandwidthResource>(&simulator_, local_opts));
    }

    sim::BandwidthResourceOptions net_opts;
    net_opts.capacity_bps = options_.network_aggregate_bps;
    net_opts.per_flow_cap_bps = options_.network_per_stream_bps;
    net_opts.per_op_latency_s = options_.network_latency_s;
    net_opts.name = "network";
    network_ =
        std::make_unique<sim::BandwidthResource>(&simulator_, net_opts);

    // Initial data placement: declared homes, else round-robin over
    // the true input data — the data whose first access is a read
    // (the runtime spreads the initial blocks across nodes).
    // Intermediates start unplaced; their home is set when produced.
    std::vector<bool> is_initial_input(
        static_cast<size_t>(graph_.num_data()), false);
    {
      std::vector<bool> seen(static_cast<size_t>(graph_.num_data()), false);
      for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
        for (const Param& p : graph_.task(t).spec.params) {
          const auto d = static_cast<size_t>(p.data);
          if (!seen[d]) {
            seen[d] = true;
            if (p.dir != Dir::kOut) is_initial_input[d] = true;
          }
        }
      }
    }
    data_home_.assign(static_cast<size_t>(graph_.num_data()), -1);
    int next_node = 0;
    for (DataId d = 0; d < graph_.num_data(); ++d) {
      const int declared = graph_.data(d).home_node;
      if (declared >= 0 && declared < nodes) {
        data_home_[static_cast<size_t>(d)] = declared;
      } else if (is_initial_input[static_cast<size_t>(d)]) {
        data_home_[static_cast<size_t>(d)] = next_node;
        next_node = (next_node + 1) % nodes;
      }
    }

    if (options_.policy == SchedulingPolicy::kDataLocality) {
      locality_ = std::make_unique<LocalityCache>(graph_, &data_home_);
    }

    remaining_deps_.resize(static_cast<size_t>(graph_.num_tasks()));
    records_.resize(static_cast<size_t>(graph_.num_tasks()));
    task_class_.resize(static_cast<size_t>(graph_.num_tasks()));
    for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
      const perf::TaskCost& cost = graph_.task(t).spec.cost;
      bool gpu_fits = false;
      bool cpu_spill_ok = true;
      if (cluster_.total_gpus() > 0) {
        gpu_fits = model_.CheckGpuFit(cost).ok();
        if (options_.hybrid) {
          const double gpu_time =
              model_.GpuParallelFraction(cost) + model_.CpuGpuComm(cost);
          cpu_spill_ok = model_.CpuParallelFraction(cost) <=
                         options_.hybrid_max_cpu_slowdown * gpu_time;
        }
      }
      task_class_[static_cast<size_t>(t)] = ClassifyTask(
          graph_.task(t).spec, options_.hybrid, gpu_fits, cpu_spill_ok);
      remaining_deps_[static_cast<size_t>(t)] =
          static_cast<int>(graph_.task(t).deps.size());
      if (remaining_deps_[static_cast<size_t>(t)] == 0) {
        ready_.Push(t, task_class_[static_cast<size_t>(t)]);
      }
    }
  }

  Result<RunReport> Run() {
    if (graph_.num_tasks() == 0) {
      return RunReport{};
    }
    TB_RETURN_IF_ERROR(graph_.Validate());
    ScheduleLoop();
    simulator_.Run();
    if (!failure_.ok()) return failure_;
    if (completed_ != graph_.num_tasks()) {
      return Status::FailedPrecondition(StrFormat(
          "workflow stalled: %lld of %lld tasks completed (a task type "
          "may target a processor the cluster lacks)",
          static_cast<long long>(completed_),
          static_cast<long long>(graph_.num_tasks())));
    }
    RunReport report;
    report.records = std::move(records_);
    report.makespan = makespan_;
    report.scheduler_overhead = scheduler_overhead_;
    report.sim_events = simulator_.events_executed();
    return report;
  }

 private:
  /// In-flight execution state of one dispatched task. Instances are
  /// pooled and recycled: at most slots-many are live at once, the
  /// hot loop never allocates one, and the continuation lambdas
  /// capture {this, raw pointer} — small enough for std::function's
  /// inline buffer, so per-event heap churn is gone too. Inputs and
  /// outputs are walked directly over the task's param list instead
  /// of being copied into per-run vectors.
  struct TaskRun {
    TaskId id = -1;
    int node = -1;
    Processor processor = Processor::kCpu;
    double dispatch_done = 0;
    double deser_start = 0;
    double deser_end = 0;
    double compute_end = 0;
    size_t next_input = 0;   ///< param index of the next input read
    size_t next_output = 0;  ///< param index of the next output write
    int join_pending = 0;    ///< disk+network legs of a remote read
  };

  TaskRun* AcquireRun() {
    if (free_runs_.empty()) {
      run_pool_.emplace_back();
      return &run_pool_.back();
    }
    TaskRun* run = free_runs_.back();
    free_runs_.pop_back();
    *run = TaskRun{};
    return run;
  }

  void ReleaseRun(TaskRun* run) { free_runs_.push_back(run); }

  void Fail(Status status) {
    if (failure_.ok()) failure_ = std::move(status);
    simulator_.Stop();
  }

  /// Drains the scheduler: keeps assigning ready tasks to free slots,
  /// serializing decision overhead through the master.
  void ScheduleLoop() {
    if (!failure_.ok()) return;
    SchedulerView view;
    view.graph = &graph_;
    view.ready = &ready_;
    view.cpu_slots = &cpu_slots_;
    view.gpu_slots = &gpu_slots_;
    view.data_home = &data_home_;
    view.locality = locality_.get();
    for (;;) {
      const auto assignment = scheduler_->Decide(view);
      if (!assignment.has_value()) return;

      const TaskId id = assignment->task;
      const int node = assignment->node;
      const Task& task = graph_.task(id);
      const PlacementClass cls = task_class_[static_cast<size_t>(id)];
      TB_CHECK(ready_.Head(cls) == id) << "scheduler picked non-ready task";
      ready_.PopHead(cls);
      TB_CHECK(options_.hybrid ||
               assignment->processor == task.spec.processor)
          << "non-hybrid scheduler changed a task's processor";
      auto& slots = assignment->processor == Processor::kCpu ? cpu_slots_
                                                             : gpu_slots_;
      slots.Acquire(node);  // checks the node has a free slot

      const double overhead =
          options_.scheduler_overhead_override_s >= 0
              ? options_.scheduler_overhead_override_s
              : scheduler_->DecisionOverhead(options_.storage);
      scheduler_overhead_ += overhead;
      master_free_at_ =
          std::max(master_free_at_, simulator_.Now()) + overhead;

      TaskRun* run = AcquireRun();
      run->id = id;
      run->node = node;
      run->processor = assignment->processor;
      simulator_.At(master_free_at_, [this, run]() { StartTask(run); });
    }
  }

  void StartTask(TaskRun* run) {
    run->dispatch_done = simulator_.Now();
    run->deser_start = simulator_.Now();
    ReadNextInput(run);
  }

  /// Inputs are deserialized sequentially by the worker core, as a
  /// COMPSs worker does.
  void ReadNextInput(TaskRun* run) {
    if (!failure_.ok()) return;
    const std::vector<Param>& params = graph_.task(run->id).spec.params;
    while (run->next_input < params.size() &&
           params[run->next_input].dir == Dir::kOut) {
      ++run->next_input;
    }
    if (run->next_input >= params.size()) {
      run->deser_end = simulator_.Now();
      Compute(run);
      return;
    }
    const DataId d = params[run->next_input++].data;
    const uint64_t bytes = graph_.data(d).bytes;
    auto cont = [this, run]() { ReadNextInput(run); };
    if (options_.storage == hw::StorageArchitecture::kSharedDisk) {
      shared_disk_->Transfer(bytes, std::move(cont));
      return;
    }
    int home = data_home_[static_cast<size_t>(d)];
    if (home < 0) home = run->node;  // defensively treat as local
    if (home == run->node) {
      local_disks_[static_cast<size_t>(home)]->Transfer(bytes,
                                                        std::move(cont));
    } else {
      // Remote block: the home node's disk and the network stream in
      // parallel (pipelined chunks), so the read completes when the
      // slower of the two finishes.
      run->join_pending = 2;
      auto join = [this, run]() {
        if (--run->join_pending == 0) ReadNextInput(run);
      };
      local_disks_[static_cast<size_t>(home)]->Transfer(bytes, join);
      network_->Transfer(bytes, join);
    }
  }

  void Compute(TaskRun* run) {
    if (!failure_.ok()) return;
    const Task& task = graph_.task(run->id);
    const perf::TaskCost& cost = task.spec.cost;
    double duration = model_.SerialFraction(cost);
    if (run->processor == Processor::kGpu) {
      const Status fit = model_.CheckGpuFit(cost);
      if (!fit.ok()) {
        Fail(Status(fit.code(), StrFormat("task %lld (%s): %s",
                                          static_cast<long long>(run->id),
                                          task.spec.type.c_str(),
                                          fit.message().c_str())));
        return;
      }
      duration += model_.GpuParallelFraction(cost) + model_.CpuGpuComm(cost);
    } else {
      duration += model_.CpuParallelFraction(cost);
    }
    simulator_.After(duration, [this, run]() {
      run->compute_end = simulator_.Now();
      WriteNextOutput(run);
    });
  }

  void WriteNextOutput(TaskRun* run) {
    if (!failure_.ok()) return;
    const std::vector<Param>& params = graph_.task(run->id).spec.params;
    while (run->next_output < params.size() &&
           params[run->next_output].dir == Dir::kIn) {
      ++run->next_output;
    }
    if (run->next_output >= params.size()) {
      FinishTask(run);
      return;
    }
    const DataId d = params[run->next_output++].data;
    const uint64_t bytes = graph_.data(d).bytes;
    // Outputs are written to the executing node's disk (local) or to
    // the shared filesystem; either way the datum's home becomes the
    // producing node for locality purposes.
    if (data_home_[static_cast<size_t>(d)] != run->node) {
      data_home_[static_cast<size_t>(d)] = run->node;
      if (locality_ != nullptr) locality_->OnDataHomeChanged(d);
    }
    auto cont = [this, run]() { WriteNextOutput(run); };
    if (options_.storage == hw::StorageArchitecture::kSharedDisk) {
      shared_disk_->Transfer(bytes, std::move(cont));
    } else {
      local_disks_[static_cast<size_t>(run->node)]->Transfer(bytes,
                                                             std::move(cont));
    }
  }

  void FinishTask(TaskRun* run) {
    const Task& task = graph_.task(run->id);
    const perf::TaskCost& cost = task.spec.cost;

    TaskRecord& rec = records_[static_cast<size_t>(run->id)];
    rec.task = run->id;
    rec.type = task.spec.type;
    rec.level = task.level;
    rec.processor = run->processor;
    rec.node = run->node;
    rec.start = run->dispatch_done;
    rec.end = simulator_.Now();
    rec.stages.deserialize = run->deser_end - run->deser_start;
    rec.stages.serialize = simulator_.Now() - run->compute_end;
    rec.stages.serial_fraction = model_.SerialFraction(cost);
    if (run->processor == Processor::kGpu) {
      rec.stages.parallel_fraction = model_.GpuParallelFraction(cost);
      rec.stages.cpu_gpu_comm = model_.CpuGpuComm(cost);
    } else {
      rec.stages.parallel_fraction = model_.CpuParallelFraction(cost);
    }
    makespan_ = std::max(makespan_, rec.end);

    auto& slots =
        run->processor == Processor::kCpu ? cpu_slots_ : gpu_slots_;
    slots.Release(run->node);
    ++completed_;

    for (TaskId succ : task.successors) {
      if (--remaining_deps_[static_cast<size_t>(succ)] == 0) {
        ready_.Push(succ, task_class_[static_cast<size_t>(succ)]);
      }
    }
    ReleaseRun(run);
    ScheduleLoop();
  }

  const hw::ClusterSpec& cluster_;
  const SimulatedExecutorOptions& options_;
  const TaskGraph& graph_;
  perf::CostModel model_;
  std::unique_ptr<Scheduler> scheduler_;

  sim::Simulator simulator_;
  std::unique_ptr<sim::BandwidthResource> shared_disk_;
  std::vector<std::unique_ptr<sim::BandwidthResource>> local_disks_;
  std::unique_ptr<sim::BandwidthResource> network_;

  hw::SlotIndex cpu_slots_;
  hw::SlotIndex gpu_slots_;
  std::vector<PlacementClass> task_class_;
  std::vector<int> data_home_;
  std::unique_ptr<LocalityCache> locality_;
  ReadyQueue ready_;
  std::vector<int> remaining_deps_;
  std::vector<TaskRecord> records_;

  std::deque<TaskRun> run_pool_;    ///< stable storage for live runs
  std::vector<TaskRun*> free_runs_;

  double master_free_at_ = 0;
  double scheduler_overhead_ = 0;
  double makespan_ = 0;
  int64_t completed_ = 0;
  Status failure_;
};

}  // namespace

SimulatedExecutor::SimulatedExecutor(hw::ClusterSpec cluster,
                                     SimulatedExecutorOptions options)
    : cluster_(std::move(cluster)), options_(options) {
  TB_CHECK_OK(cluster_.Validate());
}

Result<RunReport> SimulatedExecutor::Execute(const TaskGraph& graph) const {
  SimState state(cluster_, options_, graph);
  return state.Run();
}

}  // namespace taskbench::runtime
