#include "runtime/simulated_executor.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "hw/slot_index.h"
#include "obs/metrics.h"
#include "perf/cost_model.h"
#include "runtime/fault.h"
#include "runtime/invariant_check.h"
#include "runtime/ready_queue.h"
#include "runtime/scheduler.h"
#include "sim/bandwidth_resource.h"
#include "sim/simulator.h"

namespace taskbench::runtime {

namespace {

/// All mutable state of one simulation run. The executor itself is
/// const/reusable; every Execute() builds a fresh SimState.
///
/// The scheduling path is built on incremental structures so one
/// decision costs O(log ready) instead of O(ready x nodes): the ready
/// set lives in per-placement-class heaps (ReadyQueue), free slots in
/// O(1)-aggregate SlotIndexes, and locality tallies in a
/// dirty-tracked per-task cache. docs/sched_fast_path.md derives the
/// equivalence with the legacy full-scan path.
///
/// Fault tolerance: when the options carry a non-empty FaultPlan, its
/// events are injected as ordinary discrete events and failed task
/// attempts are retried with exponential backoff (see
/// docs/FAULT_TOLERANCE.md for the recovery semantics and the
/// determinism argument). Every fault branch is gated on
/// `faults_active_`, so a fault-free run executes the exact event
/// sequence of the pre-fault-tolerance executor and its report stays
/// bit-identical.
class SimState {
 public:
  SimState(const hw::ClusterSpec& cluster, const RunOptions& options,
           const TaskGraph& graph, const RunContext& ctx)
      : cluster_(cluster),
        options_(options),
        graph_(graph),
        cancel_(ctx.cancel),
        model_(cluster),
        policy_(ctx.policy.value_or(options.policy)),
        scheduler_(MakeScheduler(policy_)),
        // Dependency/version checks assume the fault-free execution
        // order; recovery legitimately re-opens completed deps and
        // republishes blocks, so they gate off under a fault plan.
        // The end-of-run conservation checks stay on either way.
        check_order_(options.check_invariants && options.faults.empty()),
        faults_active_(!options.faults.empty()),
        // Hedging only ever arms for the cost-model policy under an
        // active fault plan: without faults there are no slow nodes,
        // so a straggler can never exist and gating keeps fault-free
        // runs structurally identical with hedging on or off.
        hedging_(policy_ == SchedulingPolicy::kCostModel &&
                 !options.sched.disable_hedging && !options.faults.empty()),
        storage_rng_(options.faults.seed) {
    const int nodes = cluster_.num_nodes;
    cpu_slots_.Reset(nodes, cluster_.cores_per_node);
    gpu_slots_.Reset(nodes, cluster_.gpus_per_node);

    sim::BandwidthResourceOptions shared_opts;
    shared_opts.capacity_bps = cluster_.shared_disk.aggregate_bw_bps;
    shared_opts.per_flow_cap_bps = cluster_.shared_disk.per_stream_bw_bps;
    shared_opts.per_op_latency_s = cluster_.shared_disk.per_op_latency_s;
    shared_opts.name = "shared-disk";
    shared_disk_ =
        std::make_unique<sim::BandwidthResource>(&simulator_, shared_opts);

    sim::BandwidthResourceOptions local_opts;
    local_opts.capacity_bps = cluster_.local_disk.aggregate_bw_bps;
    local_opts.per_flow_cap_bps = cluster_.local_disk.per_stream_bw_bps;
    local_opts.per_op_latency_s = cluster_.local_disk.per_op_latency_s;
    for (int n = 0; n < nodes; ++n) {
      local_opts.name = StrFormat("local-disk-%d", n);
      local_disks_.push_back(
          std::make_unique<sim::BandwidthResource>(&simulator_, local_opts));
    }

    sim::BandwidthResourceOptions net_opts;
    net_opts.capacity_bps = options_.network_aggregate_bps;
    net_opts.per_flow_cap_bps = options_.network_per_stream_bps;
    net_opts.per_op_latency_s = options_.network_latency_s;
    net_opts.name = "network";
    network_ =
        std::make_unique<sim::BandwidthResource>(&simulator_, net_opts);

    // Initial data placement: declared homes, else round-robin over
    // the true input data — the data whose first access is a read
    // (the runtime spreads the initial blocks across nodes).
    // Intermediates start unplaced; their home is set when produced.
    is_initial_input_.assign(static_cast<size_t>(graph_.num_data()), 0);
    {
      std::vector<bool> seen(static_cast<size_t>(graph_.num_data()), false);
      for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
        for (const Param& p : graph_.task(t).spec.params) {
          const auto d = static_cast<size_t>(p.data);
          if (!seen[d]) {
            seen[d] = true;
            if (p.dir != Dir::kOut) is_initial_input_[d] = 1;
          }
        }
      }
    }
    data_home_.assign(static_cast<size_t>(graph_.num_data()), -1);
    int next_node = 0;
    for (DataId d = 0; d < graph_.num_data(); ++d) {
      const int declared = graph_.data(d).home_node;
      if (declared >= 0 && declared < nodes) {
        data_home_[static_cast<size_t>(d)] = declared;
      } else if (is_initial_input_[static_cast<size_t>(d)] != 0) {
        data_home_[static_cast<size_t>(d)] = next_node;
        next_node = (next_node + 1) % nodes;
      }
    }

    if (policy_ == SchedulingPolicy::kDataLocality ||
        policy_ == SchedulingPolicy::kCostModel) {
      locality_ = std::make_unique<LocalityCache>(graph_, &data_home_);
    }

    if (check_order_) {
      version_oracle_ = VersionOracle::Build(graph_);
      data_version_.assign(static_cast<size_t>(graph_.num_data()), 0);
    }

    node_dead_.assign(static_cast<size_t>(nodes), 0);
    node_slow_.assign(static_cast<size_t>(nodes), 1.0);
    remaining_deps_.resize(static_cast<size_t>(graph_.num_tasks()));
    records_.resize(static_cast<size_t>(graph_.num_tasks()));
    task_class_.resize(static_cast<size_t>(graph_.num_tasks()));
    attempt_count_.assign(static_cast<size_t>(graph_.num_tasks()), 0);
    completed_flag_.assign(static_cast<size_t>(graph_.num_tasks()), 0);
    pending_retry_.assign(static_cast<size_t>(graph_.num_tasks()), 0);
    active_run_.assign(static_cast<size_t>(graph_.num_tasks()), nullptr);
    const bool escalate = policy_ == SchedulingPolicy::kCostModel &&
                          options_.hybrid && !options_.sched.disable_escalation;
    for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
      const perf::TaskCost& cost = graph_.task(t).spec.cost;
      bool gpu_fits = false;
      bool cpu_spill_ok = true;
      if (cluster_.total_gpus() > 0) {
        gpu_fits = model_.CheckGpuFit(cost).ok();
        if (options_.hybrid) {
          const double gpu_time =
              model_.GpuParallelFraction(cost) + model_.CpuGpuComm(cost);
          cpu_spill_ok = model_.CpuParallelFraction(cost) <=
                         options_.hybrid_max_cpu_slowdown * gpu_time;
        }
      }
      task_class_[static_cast<size_t>(t)] = ClassifyTask(
          graph_.task(t).spec, options_.hybrid, gpu_fits, cpu_spill_ok);
      // CPU->GPU escalation (cost-model policy, hybrid mode): a
      // CPU-targeted task whose modeled CPU time dwarfs its GPU time
      // (benefit/cost >= escalate_benefit) and which fits device
      // memory is upgraded to the GPU-or-CPU class — it takes an idle
      // device when one is free and still falls back to a core.
      if (escalate && graph_.task(t).spec.processor == Processor::kCpu &&
          gpu_fits) {
        const double gpu_time =
            model_.GpuParallelFraction(cost) + model_.CpuGpuComm(cost);
        if (gpu_time > 0 && model_.CpuParallelFraction(cost) >=
                                options_.sched.escalate_benefit * gpu_time) {
          task_class_[static_cast<size_t>(t)] = PlacementClass::kGpuOrCpu;
        }
      }
      remaining_deps_[static_cast<size_t>(t)] =
          static_cast<int>(graph_.task(t).deps.size());
    }

    if (policy_ == SchedulingPolicy::kCostModel) {
      InstallCostScorer(options_.sched);
    }

    // Roots enter the ready set after the scorer (if any) is in
    // place, so their push keys are already scored.
    for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
      if (remaining_deps_[static_cast<size_t>(t)] == 0) {
        ready_.Push(t, task_class_[static_cast<size_t>(t)]);
      }
    }

    // Per-decision phase split: scheduler-provided, scaled to keep
    // summing to the per-decision overhead under an override. Applied
    // once per decision count at the end of the run, so profiling
    // costs the hot loop nothing.
    phase_split_ = scheduler_->DecisionPhases(options_.storage);
    if (options_.scheduler_overhead_override_s >= 0) {
      const double total = phase_split_.total();
      const double scale =
          total > 0 ? options_.scheduler_overhead_override_s / total : 0;
      phase_split_.ready_pop_s *= scale;
      phase_split_.locality_s *= scale;
      phase_split_.slot_pick_s *= scale;
    }

    // Telemetry: resolve instrument handles once; the hot paths then
    // pay a null test when disabled and pointer bumps when enabled.
    // A per-run registry in the context scopes the instruments to this
    // submission; the executor-wide RunOptions registry is the default.
    metrics_ = ctx.metrics != nullptr ? ctx.metrics : options_.metrics;
    if (metrics_ != nullptr) {
      m_decisions_ = metrics_->counter("sched.decisions");
      m_ready_size_ = metrics_->histogram("sched.ready_tasks");
      task_type_idx_.resize(static_cast<size_t>(graph_.num_tasks()));
      std::map<std::string, uint32_t> type_index;
      for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
        const std::string& type = graph_.task(t).spec.type;
        auto [it, inserted] =
            type_index.emplace(type, static_cast<uint32_t>(type_hists_.size()));
        if (inserted) {
          StageHists h;
          h.deserialize = metrics_->histogram(
              StrFormat("task.%s.deserialize_s", type.c_str()));
          h.compute =
              metrics_->histogram(StrFormat("task.%s.compute_s", type.c_str()));
          h.serialize = metrics_->histogram(
              StrFormat("task.%s.serialize_s", type.c_str()));
          h.duration = metrics_->histogram(
              StrFormat("task.%s.duration_s", type.c_str()));
          type_hists_.push_back(h);
        }
        task_type_idx_[static_cast<size_t>(t)] = it->second;
      }
    }
  }

  Result<RunReport> Run() {
    if (graph_.num_tasks() == 0) {
      return RunReport{};
    }
    TB_RETURN_IF_ERROR(graph_.Validate());
    if (faults_active_) {
      TB_RETURN_IF_ERROR(options_.faults.Validate(cluster_.num_nodes));
      for (const FaultEvent& e : options_.faults.events) {
        simulator_.At(e.time, [this, e]() { InjectFault(e); });
      }
    }
    ScheduleLoop();
    simulator_.Run();
    if (!failure_.ok()) return failure_;
    if (completed_ != graph_.num_tasks()) {
      return Status::FailedPrecondition(StrFormat(
          "workflow stalled: %lld of %lld tasks completed (a task type "
          "may target a processor the cluster lacks%s)",
          static_cast<long long>(completed_),
          static_cast<long long>(graph_.num_tasks()),
          faults_active_
              ? ", or injected faults removed every capable node"
              : ""));
    }
    if (options_.check_invariants) {
      TB_RETURN_IF_ERROR(CheckConservation());
    }
    RunReport report;
    report.records = std::move(records_);
    report.makespan = makespan_;
    report.scheduler_overhead = scheduler_overhead_;
    const double n = static_cast<double>(decisions_);
    report.sched_phases.ready_pop_s = phase_split_.ready_pop_s * n;
    report.sched_phases.locality_s = phase_split_.locality_s * n;
    report.sched_phases.slot_pick_s = phase_split_.slot_pick_s * n;
    report.sim_events = simulator_.events_executed();
    if (faults_active_) {
      report.faults = stats_;
      report.attempts = std::move(attempts_);
    }
    if (metrics_ != nullptr) {
      metrics_->gauge("sim.max_pending_events")
          ->SetMax(static_cast<double>(simulator_.max_pending_events()));
      metrics_->counter("sim.events")->Add(
          static_cast<int64_t>(simulator_.events_executed()));
      if (faults_active_) {
        metrics_->counter("faults.injected")->Add(stats_.faults_injected);
        metrics_->counter("faults.retries")->Add(stats_.retries);
        metrics_->counter("faults.storage_faults")->Add(stats_.storage_faults);
        metrics_->counter("faults.recomputed_tasks")
            ->Add(stats_.recomputed_tasks);
      }
    }
    return report;
  }

 private:
  /// In-flight execution state of one dispatched task attempt.
  /// Instances are pooled and recycled: at most slots-many are live at
  /// once, the hot loop never allocates one, and the continuation
  /// lambdas capture {this, raw pointer} — small enough for
  /// std::function's inline buffer, so per-event heap churn is gone
  /// too. Inputs and outputs are walked directly over the task's param
  /// list instead of being copied into per-run vectors.
  ///
  /// Cancellation: a fault may kill a run while its next continuation
  /// is already queued in the simulator. The run is then marked
  /// `cancelled` and kept until every outstanding continuation has
  /// drained through Enter() — a live run always has inflight >= 1
  /// (events fire between callbacks), so the drain always completes
  /// and the pooled slot is recycled exactly once.
  struct TaskRun {
    TaskId id = -1;
    int node = -1;
    Processor processor = Processor::kCpu;
    double dispatch_done = 0;
    double deser_start = 0;
    double deser_end = 0;
    double compute_end = 0;
    size_t next_input = 0;   ///< param index of the next input read
    size_t next_output = 0;  ///< param index of the next output write
    int join_pending = 0;    ///< disk+network legs of a remote read
    int attempt = 1;         ///< 1-based attempt number of this run
    int inflight = 0;        ///< scheduled continuations not yet fired
    size_t live_index = 0;   ///< position in live_runs_
    bool cancelled = false;  ///< killed by a fault; drains via Enter
    bool started = false;    ///< StartTask has run (dispatch_done set)
    /// Speculative hedging (cost-model policy, docs/SCHEDULERS.md).
    /// Once a straggling attempt is duplicated, both attempts carry
    /// hedged=true and point at each other via twin. A hedged attempt
    /// stages its output homes in staged_homes instead of publishing;
    /// the first attempt to finish applies its staged homes and
    /// cancels the twin, so the loser leaves no trace in placement
    /// state. When one attempt dies to a fault the pair detaches
    /// (twin=nullptr) and the survivor finishes alone — still staged,
    /// still applied at finish.
    bool hedged = false;
    TaskRun* twin = nullptr;
    std::vector<DataId> staged_homes;
  };

  TaskRun* AcquireRun() {
    if (free_runs_.empty()) {
      run_pool_.emplace_back();
      return &run_pool_.back();
    }
    TaskRun* run = free_runs_.back();
    free_runs_.pop_back();
    *run = TaskRun{};
    return run;
  }

  void ReleaseRun(TaskRun* run) { free_runs_.push_back(run); }

  /// Removes `run` from the live set (swap-remove) and clears its
  /// task's active-run pointer — but only when the pointer is still
  /// this run: under hedging two attempts of one task are live at
  /// once and retiring the second must not clobber the first's (or a
  /// detached survivor's) registration. Called exactly once per
  /// attempt, on completion or on any failure path.
  void RetireRun(TaskRun* run) {
    if (active_run_[static_cast<size_t>(run->id)] == run) {
      active_run_[static_cast<size_t>(run->id)] = nullptr;
    }
    TaskRun* last = live_runs_.back();
    live_runs_[run->live_index] = last;
    last->live_index = run->live_index;
    live_runs_.pop_back();
  }

  /// Continuation prologue: every simulator callback that resumes a
  /// run enters through here. Returns false when the run was cancelled
  /// by a fault; the last draining callback recycles the pooled slot.
  bool Enter(TaskRun* run) {
    --run->inflight;
    if (!run->cancelled) return true;
    if (run->inflight == 0) ReleaseRun(run);
    return false;
  }

  void Fail(Status status) {
    if (failure_.ok()) failure_ = std::move(status);
    simulator_.Stop();
  }

  /// Cooperative cancellation, polled at every master scheduling edge
  /// (ScheduleLoop runs once per dispatch wave: at start, after each
  /// task completion, and after each retry re-arm). A cancelled run
  /// stops the simulator and surfaces kCancelled; the SimState is torn
  /// down wholesale afterwards, so in-flight continuations need no
  /// drain. The flag may be set from another thread — simulated time
  /// runs orders of magnitude faster than wall time, so the next edge
  /// is never far away.
  bool CancelRequested() const {
    return cancel_ != nullptr && cancel_->cancelled();
  }

  bool DrawStorageFault() {
    return options_.faults.storage_fault_rate > 0 &&
           storage_rng_.NextDouble() < options_.faults.storage_fault_rate;
  }

  void RecordAttempt(const TaskRun* run, AttemptOutcome outcome) {
    if (!faults_active_) return;
    TaskAttempt a;
    a.task = run->id;
    a.attempt = run->attempt;
    a.node = run->node;
    a.processor = run->processor;
    a.start = run->dispatch_done;
    a.end = simulator_.Now();
    a.outcome = outcome;
    attempts_.push_back(a);
  }

  /// Modeled uncontended latency of one execution of `t` on the
  /// processor kind its placement class implies: compute stages plus
  /// (de)serialization through the configured storage. Precomputed per
  /// task (est_) for the cost-model policy.
  double EstTaskTime(TaskId t) const {
    const perf::TaskCost& cost = graph_.task(t).spec.cost;
    const PlacementClass cls = task_class_[static_cast<size_t>(t)];
    double compute = model_.SerialFraction(cost);
    if (cls == PlacementClass::kGpuOnly || cls == PlacementClass::kGpuOrCpu) {
      compute += model_.GpuParallelFraction(cost) + model_.CpuGpuComm(cost);
    } else {
      compute += model_.CpuParallelFraction(cost);
    }
    return compute + model_.Deserialize(cost, options_.storage) +
           model_.Serialize(cost, options_.storage);
  }

  /// Cost-model precomputation (docs/SCHEDULERS.md): per-task modeled
  /// time, upward rank (critical-path-to-sink, HEFT ranking), top
  /// length (critical-path-from-source) and the derived slack, folded
  /// into one static push key
  ///
  ///   key(t) = alpha * rank(t) - beta * slack(t) - gamma * ready_time
  ///
  /// installed on the ReadyQueue. Task ids are topological (deps have
  /// strictly lower ids — TaskGraph::Validate), so one forward and
  /// one backward pass over the id range suffice. O(V + E) total.
  void InstallCostScorer(const SchedulerConfig& sched) {
    const auto n = static_cast<size_t>(graph_.num_tasks());
    est_.resize(n);
    std::vector<double> toplen(n, 0.0);
    std::vector<double> rank(n, 0.0);
    for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
      est_[static_cast<size_t>(t)] = EstTaskTime(t);
    }
    for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
      const auto ts = static_cast<size_t>(t);
      for (TaskId dep : graph_.task(t).deps) {
        const auto ds = static_cast<size_t>(dep);
        toplen[ts] = std::max(toplen[ts], toplen[ds] + est_[ds]);
      }
    }
    double critical_path = 0.0;
    for (TaskId t = graph_.num_tasks() - 1; t >= 0; --t) {
      const auto ts = static_cast<size_t>(t);
      double succ_rank = 0.0;
      for (TaskId succ : graph_.task(t).successors) {
        succ_rank = std::max(succ_rank, rank[static_cast<size_t>(succ)]);
      }
      rank[ts] = est_[ts] + succ_rank;
      critical_path = std::max(critical_path, toplen[ts] + rank[ts]);
    }
    static_key_.resize(n);
    for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
      const auto ts = static_cast<size_t>(t);
      const double slack = critical_path - toplen[ts] - rank[ts];
      static_key_[ts] = sched.alpha * rank[ts] - sched.beta * slack;
    }
    const double gamma = sched.gamma;
    // Subtracting gamma * push-time makes earlier-ready tasks score
    // higher as simulated time advances — the age term — while
    // keeping every queued key constant, so heap order stays valid.
    scorer_ = [this, gamma](TaskId t) {
      return static_key_[static_cast<size_t>(t)] - gamma * simulator_.Now();
    };
    ready_.SetScorer(scorer_);
  }

  /// Drains the scheduler: keeps assigning ready tasks to free slots,
  /// serializing decision overhead through the master.
  void ScheduleLoop() {
    if (!failure_.ok()) return;
    if (CancelRequested()) {
      Fail(Status::Cancelled("run cancelled"));
      return;
    }
    SchedulerView view;
    view.graph = &graph_;
    view.ready = &ready_;
    view.cpu_slots = &cpu_slots_;
    view.gpu_slots = &gpu_slots_;
    view.data_home = &data_home_;
    view.locality = locality_.get();
    for (;;) {
      const auto assignment = scheduler_->Decide(view);
      if (!assignment.has_value()) break;

      const TaskId id = assignment->task;
      const int node = assignment->node;
      const Task& task = graph_.task(id);
      const PlacementClass cls = task_class_[static_cast<size_t>(id)];
      TB_CHECK(ready_.Head(cls) == id) << "scheduler picked non-ready task";
      ready_.PopHead(cls);
      // Sampled locality-staleness check (docs/TESTING.md): the tally
      // the decision just consulted must match a fresh recompute. A
      // mismatch means some data_home write path skipped
      // OnDataHomeChanged. Pure reads — the event sequence is
      // untouched.
      if (options_.check_invariants && locality_ != nullptr &&
          (decisions_ & 63) == 0 && !locality_->VerifyTally(id)) {
        Fail(Status::FailedPrecondition(StrFormat(
            "invariant violation: stale locality tally for task %lld "
            "(a data_home write path missed OnDataHomeChanged)",
            static_cast<long long>(id))));
        return;
      }
      TB_CHECK(options_.hybrid ||
               assignment->processor == task.spec.processor)
          << "non-hybrid scheduler changed a task's processor";
      auto& slots = assignment->processor == Processor::kCpu ? cpu_slots_
                                                             : gpu_slots_;
      slots.Acquire(node);  // checks the node has a free slot

      const double overhead =
          options_.scheduler_overhead_override_s >= 0
              ? options_.scheduler_overhead_override_s
              : scheduler_->DecisionOverhead(options_.storage);
      scheduler_overhead_ += overhead;
      ++decisions_;
      if (metrics_ != nullptr) {
        m_decisions_->Add(1);
        // +1: the popped task was part of the ready set this decision
        // looked at.
        m_ready_size_->Record(static_cast<double>(ready_.size()) + 1);
      }
      master_free_at_ =
          std::max(master_free_at_, simulator_.Now()) + overhead;

      TaskRun* run = AcquireRun();
      run->id = id;
      run->node = node;
      run->processor = assignment->processor;
      run->attempt = ++attempt_count_[static_cast<size_t>(id)];
      run->live_index = live_runs_.size();
      live_runs_.push_back(run);
      active_run_[static_cast<size_t>(id)] = run;
      run->inflight = 1;
      simulator_.At(master_free_at_, [this, run]() {
        if (!Enter(run)) return;
        StartTask(run);
      });
    }
    if (hedging_) MaybeHedge();
  }

  /// Scans the live attempts for stragglers (cost-model policy with
  /// an active fault plan only — see `hedging_`): an attempt on a
  /// degraded node whose elapsed time already exceeds hedge_threshold
  /// x its modeled (unslowed) duration gets a speculative duplicate
  /// on the lowest-id healthy node with a free matching slot. The
  /// duplicate dispatch goes through the master like any decision
  /// (overhead + serialization), so hedging is visible in the
  /// scheduler accounting, and the phase-sum invariant still holds.
  void MaybeHedge() {
    if (!failure_.ok()) return;
    // Snapshot: dispatching a twin appends to live_runs_. Ascending
    // task id keeps the hedge order deterministic and independent of
    // live-set swap-removal history.
    hedge_scan_.assign(live_runs_.begin(), live_runs_.end());
    std::sort(hedge_scan_.begin(), hedge_scan_.end(),
              [](const TaskRun* a, const TaskRun* b) { return a->id < b->id; });
    for (TaskRun* run : hedge_scan_) {
      if (run->hedged || run->cancelled || !run->started) continue;
      if (node_slow_[static_cast<size_t>(run->node)] <= 1.0) continue;
      const double elapsed = simulator_.Now() - run->dispatch_done;
      if (elapsed <=
          options_.sched.hedge_threshold * est_[static_cast<size_t>(run->id)]) {
        continue;
      }
      auto& slots =
          run->processor == Processor::kCpu ? cpu_slots_ : gpu_slots_;
      int node = -1;
      for (int n = 0; n < cluster_.num_nodes; ++n) {
        if (n == run->node || node_dead_[static_cast<size_t>(n)] != 0 ||
            node_slow_[static_cast<size_t>(n)] > 1.0) {
          continue;
        }
        if (slots.free_at(n) > 0) {
          node = n;
          break;
        }
      }
      if (node < 0) continue;  // nowhere healthy to duplicate to
      slots.Acquire(node);
      const double overhead =
          options_.scheduler_overhead_override_s >= 0
              ? options_.scheduler_overhead_override_s
              : scheduler_->DecisionOverhead(options_.storage);
      scheduler_overhead_ += overhead;
      ++decisions_;
      if (metrics_ != nullptr) m_decisions_->Add(1);
      master_free_at_ = std::max(master_free_at_, simulator_.Now()) + overhead;

      TaskRun* twin = AcquireRun();
      twin->id = run->id;
      twin->node = node;
      twin->processor = run->processor;
      twin->attempt = ++attempt_count_[static_cast<size_t>(run->id)];
      twin->hedged = true;
      twin->twin = run;
      run->hedged = true;
      run->twin = twin;
      twin->live_index = live_runs_.size();
      live_runs_.push_back(twin);
      ++stats_.hedges;
      twin->inflight = 1;
      simulator_.At(master_free_at_, [this, twin]() {
        if (!Enter(twin)) return;
        StartTask(twin);
      });
    }
  }

  /// First-finish-wins: `winner` just completed; its still-running
  /// twin is cancelled, its slot freed and its attempt logged as
  /// hedge-cancelled. The loser's queued continuations drain through
  /// Enter() and its staged output homes are simply discarded — no
  /// trace in placement state.
  void CancelHedge(TaskRun* winner) {
    TaskRun* loser = winner->twin;
    if (loser == nullptr) return;
    winner->twin = nullptr;
    loser->twin = nullptr;
    RecordAttempt(loser, AttemptOutcome::kHedgeCancelled);
    // A loser on a dead node would have been detached by KillRun
    // already, so this slot release is always against a live index.
    auto& slots =
        loser->processor == Processor::kCpu ? cpu_slots_ : gpu_slots_;
    slots.Release(loser->node);
    loser->cancelled = true;
    RetireRun(loser);
    TB_CHECK(loser->inflight > 0) << "cancelled a hedge with no queued event";
  }

  void StartTask(TaskRun* run) {
    if (check_order_) {
      for (TaskId dep : graph_.task(run->id).deps) {
        if (completed_flag_[static_cast<size_t>(dep)] == 0) {
          Fail(Status::FailedPrecondition(StrFormat(
              "invariant violation: task %lld started before dependency "
              "%lld completed",
              static_cast<long long>(run->id),
              static_cast<long long>(dep))));
          return;
        }
      }
    }
    run->started = true;
    run->dispatch_done = simulator_.Now();
    run->deser_start = simulator_.Now();
    ReadNextInput(run);
  }

  /// Inputs are deserialized sequentially by the worker core, as a
  /// COMPSs worker does.
  void ReadNextInput(TaskRun* run) {
    if (!failure_.ok()) return;
    const std::vector<Param>& params = graph_.task(run->id).spec.params;
    while (run->next_input < params.size() &&
           params[run->next_input].dir == Dir::kOut) {
      ++run->next_input;
    }
    if (run->next_input >= params.size()) {
      run->deser_end = simulator_.Now();
      Compute(run);
      return;
    }
    const size_t param_idx = run->next_input;
    const DataId d = params[run->next_input++].data;
    if (check_order_) {
      // An INOUT's read side expects the version preceding its own
      // write ordinal.
      const int expected =
          version_oracle_.ordinal(run->id, param_idx) -
          (params[param_idx].dir == Dir::kInOut ? 1 : 0);
      const int actual = data_version_[static_cast<size_t>(d)];
      if (actual != expected) {
        Fail(Status::FailedPrecondition(StrFormat(
            "invariant violation: task %lld read datum %lld at version "
            "%d, expected %d (stale or unpublished block)",
            static_cast<long long>(run->id), static_cast<long long>(d),
            actual, expected)));
        return;
      }
    }
    const uint64_t bytes = graph_.data(d).bytes;
    const bool faulty = DrawStorageFault();
    auto cont = [this, run, faulty]() {
      if (!Enter(run)) return;
      if (faulty) {
        OnStorageFault(run);
        return;
      }
      ReadNextInput(run);
    };
    if (options_.storage == hw::StorageArchitecture::kSharedDisk) {
      ++run->inflight;
      shared_disk_->Transfer(bytes, std::move(cont));
      return;
    }
    int home = data_home_[static_cast<size_t>(d)];
    if (home < 0) home = run->node;  // defensively treat as local
    if (home == run->node) {
      ++run->inflight;
      local_disks_[static_cast<size_t>(home)]->Transfer(bytes,
                                                        std::move(cont));
    } else {
      // Remote block: the home node's disk and the network stream in
      // parallel (pipelined chunks), so the read completes when the
      // slower of the two finishes. A transient storage fault covers
      // the whole logical Get, so both legs share one draw.
      run->join_pending = 2;
      run->inflight += 2;
      auto join = [this, run, faulty]() {
        if (!Enter(run)) return;
        if (--run->join_pending > 0) return;
        if (faulty) {
          OnStorageFault(run);
          return;
        }
        ReadNextInput(run);
      };
      local_disks_[static_cast<size_t>(home)]->Transfer(bytes, join);
      network_->Transfer(bytes, join);
    }
  }

  void Compute(TaskRun* run) {
    if (!failure_.ok()) return;
    const Task& task = graph_.task(run->id);
    const perf::TaskCost& cost = task.spec.cost;
    double duration = model_.SerialFraction(cost);
    if (run->processor == Processor::kGpu) {
      const Status fit = model_.CheckGpuFit(cost);
      if (!fit.ok()) {
        Fail(Status(fit.code(), fit.message())
                 .WithContext(StrFormat("task %lld (%s)",
                                        static_cast<long long>(run->id),
                                        task.spec.type.c_str())));
        return;
      }
      duration += model_.GpuParallelFraction(cost) + model_.CpuGpuComm(cost);
    } else {
      duration += model_.CpuParallelFraction(cost);
    }
    if (faults_active_) {
      // Slow-node degradation applies to compute that starts after the
      // fault fires; in-flight computations keep their old duration.
      duration *= node_slow_[static_cast<size_t>(run->node)];
    }
    ++run->inflight;
    simulator_.After(duration, [this, run]() {
      if (!Enter(run)) return;
      run->compute_end = simulator_.Now();
      WriteNextOutput(run);
    });
  }

  void WriteNextOutput(TaskRun* run) {
    if (!failure_.ok()) return;
    const std::vector<Param>& params = graph_.task(run->id).spec.params;
    while (run->next_output < params.size() &&
           params[run->next_output].dir == Dir::kIn) {
      ++run->next_output;
    }
    if (run->next_output >= params.size()) {
      FinishTask(run);
      return;
    }
    const size_t param_idx = run->next_output;
    const DataId d = params[run->next_output++].data;
    if (check_order_) {
      // Publish the writer ordinal (idempotent set, not increment).
      data_version_[static_cast<size_t>(d)] =
          version_oracle_.ordinal(run->id, param_idx);
    }
    const uint64_t bytes = graph_.data(d).bytes;
    // Outputs are written to the executing node's disk (local) or to
    // the shared filesystem; either way the datum's home becomes the
    // producing node for locality purposes. A hedged attempt stages
    // the home change instead — only the winning attempt's homes are
    // ever applied (FinishTask), so a cancelled loser leaves no trace
    // in placement state.
    if (run->hedged) {
      run->staged_homes.push_back(d);
    } else if (data_home_[static_cast<size_t>(d)] != run->node) {
      data_home_[static_cast<size_t>(d)] = run->node;
      if (locality_ != nullptr) locality_->OnDataHomeChanged(d);
    }
    const bool faulty = DrawStorageFault();
    auto cont = [this, run, faulty]() {
      if (!Enter(run)) return;
      if (faulty) {
        OnStorageFault(run);
        return;
      }
      WriteNextOutput(run);
    };
    ++run->inflight;
    if (options_.storage == hw::StorageArchitecture::kSharedDisk) {
      shared_disk_->Transfer(bytes, std::move(cont));
    } else {
      local_disks_[static_cast<size_t>(run->node)]->Transfer(bytes,
                                                             std::move(cont));
    }
  }

  void FinishTask(TaskRun* run) {
    const Task& task = graph_.task(run->id);
    const perf::TaskCost& cost = task.spec.cost;

    if (run->hedged) {
      // This attempt won (a loser is cancelled before it can reach
      // FinishTask): publish its staged output homes.
      for (DataId d : run->staged_homes) {
        if (data_home_[static_cast<size_t>(d)] != run->node) {
          data_home_[static_cast<size_t>(d)] = run->node;
          if (locality_ != nullptr) locality_->OnDataHomeChanged(d);
        }
      }
      // Cancel the loser before recording this completion when it is
      // the earlier attempt, after otherwise — the per-task attempt
      // log stays monotonic in attempt number either way.
      if (run->twin != nullptr && run->twin->attempt < run->attempt) {
        CancelHedge(run);
      }
    }

    TaskRecord& rec = records_[static_cast<size_t>(run->id)];
    rec.task = run->id;
    rec.type = task.spec.type;
    rec.level = task.level;
    rec.processor = run->processor;
    rec.node = run->node;
    rec.start = run->dispatch_done;
    rec.end = simulator_.Now();
    rec.attempt = run->attempt;
    rec.stages.deserialize = run->deser_end - run->deser_start;
    rec.stages.serialize = simulator_.Now() - run->compute_end;
    rec.stages.serial_fraction = model_.SerialFraction(cost);
    if (run->processor == Processor::kGpu) {
      rec.stages.parallel_fraction = model_.GpuParallelFraction(cost);
      rec.stages.cpu_gpu_comm = model_.CpuGpuComm(cost);
    } else {
      rec.stages.parallel_fraction = model_.CpuParallelFraction(cost);
    }
    makespan_ = std::max(makespan_, rec.end);
    if (metrics_ != nullptr) {
      const StageHists& h =
          type_hists_[task_type_idx_[static_cast<size_t>(run->id)]];
      h.deserialize->Record(rec.stages.deserialize);
      h.compute->Record(rec.stages.serial_fraction +
                        rec.stages.parallel_fraction +
                        rec.stages.cpu_gpu_comm);
      h.serialize->Record(rec.stages.serialize);
      h.duration->Record(rec.duration());
    }
    RecordAttempt(run, AttemptOutcome::kCompleted);
    if (run->hedged && run->twin != nullptr) CancelHedge(run);

    auto& slots =
        run->processor == Processor::kCpu ? cpu_slots_ : gpu_slots_;
    slots.Release(run->node);
    completed_flag_[static_cast<size_t>(run->id)] = 1;
    ++completed_;

    for (TaskId succ : task.successors) {
      const auto s = static_cast<size_t>(succ);
      // Under recovery a recomputed producer can finish after its
      // successors already completed or restarted; those must not be
      // re-armed. Impossible fault-free (a successor never runs before
      // all its deps), so the guard is gated off the hot path.
      if (faults_active_ &&
          (completed_flag_[s] != 0 || active_run_[s] != nullptr)) {
        continue;
      }
      if (--remaining_deps_[s] == 0) {
        if (faults_active_ && pending_retry_[s] != 0) continue;
        ready_.Push(succ, task_class_[s]);
      }
    }
    RetireRun(run);
    ReleaseRun(run);
    ScheduleLoop();
  }

  /// End-of-run conservation laws (RunOptions::check_invariants).
  /// Pure reads over state the run maintained anyway — nothing here
  /// can perturb the event sequence or the report.
  Status CheckConservation() const {
    // (1) Occupancy: a slot runs one task at a time, so per-node busy
    // time per processor class never exceeds makespan x capacity.
    // Holds under faults too — records hold only completed attempts
    // and capacity only ever shrinks.
    const double time_tol = 1e-9 * makespan_ + 1e-12;
    std::vector<double> cpu_busy(static_cast<size_t>(cluster_.num_nodes), 0);
    std::vector<double> gpu_busy(static_cast<size_t>(cluster_.num_nodes), 0);
    for (const TaskRecord& rec : records_) {
      if (rec.task < 0 || rec.node < 0) continue;
      auto& busy = rec.processor == Processor::kCpu ? cpu_busy : gpu_busy;
      busy[static_cast<size_t>(rec.node)] += rec.duration();
    }
    for (int n = 0; n < cluster_.num_nodes; ++n) {
      const double cpu_cap = makespan_ * cluster_.cores_per_node;
      const double gpu_cap = makespan_ * cluster_.gpus_per_node;
      if (cpu_busy[static_cast<size_t>(n)] >
              cpu_cap + time_tol * cluster_.cores_per_node ||
          gpu_busy[static_cast<size_t>(n)] >
              gpu_cap + time_tol * std::max(1, cluster_.gpus_per_node)) {
        return Status::FailedPrecondition(StrFormat(
            "invariant violation: node %d busy time (cpu=%.17g gpu=%.17g) "
            "exceeds makespan %.17g x slot capacity (%d cores, %d gpus)",
            n, cpu_busy[static_cast<size_t>(n)],
            gpu_busy[static_cast<size_t>(n)], makespan_,
            cluster_.cores_per_node, cluster_.gpus_per_node));
      }
    }

    // (2) Scheduler accounting: the per-phase split must sum to the
    // decision overhead (both are the same per-decision quantity
    // accumulated two ways, so they agree to rounding).
    const double n = static_cast<double>(decisions_);
    const double phase_total = (phase_split_.ready_pop_s +
                                phase_split_.locality_s +
                                phase_split_.slot_pick_s) *
                               n;
    const double overhead_tol = 1e-9 * (scheduler_overhead_ + 1e-12) * (n + 1);
    if (std::abs(phase_total - scheduler_overhead_) > overhead_tol) {
      return Status::FailedPrecondition(StrFormat(
          "invariant violation: DecisionPhases sum %.17g != scheduler "
          "overhead %.17g over %lld decisions",
          phase_total, scheduler_overhead_,
          static_cast<long long>(decisions_)));
    }

    // (3) Byte conservation: every param of every task crosses a
    // storage resource exactly once per access (reads through the
    // datum's disk, writes through the producer's), so the resources'
    // byte counters must add up to the graph's block sizes. Fault
    // runs re-read and re-write during recovery; skip.
    if (!faults_active_) {
      uint64_t expected = 0;
      uint64_t expected_reads = 0;
      for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
        for (const Param& p : graph_.task(t).spec.params) {
          const uint64_t bytes = graph_.data(p.data).bytes;
          if (p.dir != Dir::kOut) expected_reads += bytes;
          if (p.dir == Dir::kInOut) expected += 2 * bytes;
          else expected += bytes;
        }
      }
      uint64_t disk_total = 0;
      if (options_.storage == hw::StorageArchitecture::kSharedDisk) {
        disk_total = shared_disk_->total_bytes();
      } else {
        for (const auto& disk : local_disks_) {
          disk_total += disk->total_bytes();
        }
      }
      // Remote reads under local-disk storage additionally stream the
      // network; that leg duplicates (a subset of) the read bytes.
      if (disk_total != expected ||
          network_->total_bytes() > expected_reads) {
        return Status::FailedPrecondition(StrFormat(
            "invariant violation: storage moved %llu bytes, graph "
            "blocks demand %llu (network %llu of <= %llu read bytes)",
            static_cast<unsigned long long>(disk_total),
            static_cast<unsigned long long>(expected),
            static_cast<unsigned long long>(network_->total_bytes()),
            static_cast<unsigned long long>(expected_reads)));
      }
    }
    return Status::OK();
  }

  // ----------------------------------------------------------------
  // Fault injection & recovery. Nothing below runs on fault-free
  // configurations.
  // ----------------------------------------------------------------

  void InjectFault(const FaultEvent& e) {
    if (!failure_.ok()) return;
    switch (e.kind) {
      case FaultKind::kNodeCrash:
        OnNodeCrash(e.node);
        break;
      case FaultKind::kGpuLoss:
        OnGpuLoss(e.node);
        break;
      case FaultKind::kSlowNode:
        OnSlowNode(e.node, e.factor);
        break;
    }
  }

  /// Transient storage fault: the op consumed its full duration, then
  /// failed. The attempt is torn down (slot released — the node is
  /// still alive) and the task retried with backoff.
  void OnStorageFault(TaskRun* run) {
    ++stats_.storage_faults;
    RecordAttempt(run, AttemptOutcome::kStorageFault);
    auto& slots =
        run->processor == Processor::kCpu ? cpu_slots_ : gpu_slots_;
    slots.Release(run->node);
    const TaskId id = run->id;
    const int attempt = run->attempt;
    const int node = run->node;
    if (run->hedged && run->twin != nullptr) {
      // The twin is still running this task: detach the pair and let
      // it finish alone instead of burning a retry. Keep the task's
      // active-run registration pointing at the survivor so lineage
      // recovery still sees a live writer.
      DetachTwin(run);
      RetireRun(run);
      ReleaseRun(run);
      return;
    }
    RetireRun(run);
    ReleaseRun(run);
    RetryOrFail(id, attempt, node);
  }

  /// Detaches `run` from its hedge pair after `run` failed; the
  /// surviving twin keeps hedged=true (its outputs stay staged and
  /// publish when it finishes) and takes over the active-run slot.
  void DetachTwin(TaskRun* run) {
    TaskRun* twin = run->twin;
    run->twin = nullptr;
    twin->twin = nullptr;
    if (active_run_[static_cast<size_t>(run->id)] == run) {
      active_run_[static_cast<size_t>(run->id)] = twin;
    }
  }

  /// Kills a live run whose processor died under it. The slot is NOT
  /// released — the caller already drained / shrank the index — and
  /// the pooled TaskRun is recycled once its queued continuations
  /// drain through Enter().
  void KillRun(TaskRun* run, AttemptOutcome outcome) {
    RecordAttempt(run, outcome);
    run->cancelled = true;
    const TaskId id = run->id;
    const int attempt = run->attempt;
    const int node = run->node;
    if (run->hedged && run->twin != nullptr) {
      // The duplicate survives the fault that took this attempt down —
      // exactly the scenario hedging exists for. No retry needed.
      DetachTwin(run);
      RetireRun(run);
      TB_CHECK(run->inflight > 0) << "killed a run with no queued event";
      return;
    }
    RetireRun(run);
    TB_CHECK(run->inflight > 0) << "killed a run with no queued event";
    RetryOrFail(id, attempt, node);
  }

  /// Schedules attempt `attempt + 1` of `id` after exponential
  /// backoff, or fails the whole run when the retry budget is spent.
  void RetryOrFail(TaskId id, int attempt, int node) {
    if (attempt > options_.max_retries) {
      Fail(Status::ResourceExhausted(
               StrFormat("retries exhausted (max_retries=%d)",
                         options_.max_retries))
               .WithContext(StrFormat(
                   "task %lld (%s) attempt %d on node %d",
                   static_cast<long long>(id),
                   graph_.task(id).spec.type.c_str(), attempt, node)));
      return;
    }
    ++stats_.retries;
    pending_retry_[static_cast<size_t>(id)] = 1;
    const double delay =
        options_.retry_backoff_s *
        static_cast<double>(1ull << std::min(attempt - 1, 30));
    simulator_.After(delay, [this, id]() {
      if (!failure_.ok()) return;
      pending_retry_[static_cast<size_t>(id)] = 0;
      // A crash between failure and backoff expiry may have lost the
      // task's inputs; it then re-arms through the usual dependency
      // countdown once the producers are recomputed.
      if (remaining_deps_[static_cast<size_t>(id)] == 0) {
        ready_.Push(id, task_class_[static_cast<size_t>(id)]);
        ScheduleLoop();
      }
    });
  }

  void OnNodeCrash(int n) {
    if (node_dead_[static_cast<size_t>(n)] != 0) return;
    ++stats_.faults_injected;
    ++stats_.dead_nodes;
    node_dead_[static_cast<size_t>(n)] = 1;
    cpu_slots_.DrainNode(n);
    gpu_slots_.DrainNode(n);

    // Kill the node's in-flight attempts.
    std::vector<TaskRun*> victims;
    for (TaskRun* run : live_runs_) {
      if (run->node == n) victims.push_back(run);
    }
    for (TaskRun* run : victims) KillRun(run, AttemptOutcome::kNodeLost);
    if (!failure_.ok()) return;

    // Lineage recovery: every block homed on the dead node is lost;
    // re-materialize each by re-running its producing task off the
    // live TaskGraph (transitively, when the producer's own inputs
    // were lost too). Initial inputs have no producer — they are
    // re-read from their durable origin onto a live node.
    EnsureWritersIndex();
    if (rerun_marked_.empty()) {
      rerun_marked_.assign(static_cast<size_t>(graph_.num_tasks()), 0);
    }
    std::vector<TaskId> rerun;
    for (DataId d = 0; d < graph_.num_data(); ++d) {
      if (data_home_[static_cast<size_t>(d)] == n) LoseDatum(d, &rerun);
    }
    while (!rerun.empty()) {
      const TaskId w = rerun.back();
      rerun.pop_back();
      for (const Param& p : graph_.task(w).spec.params) {
        if (p.dir != Dir::kOut &&
            data_home_[static_cast<size_t>(p.data)] == n) {
          LoseDatum(p.data, &rerun);
        }
      }
    }
    for (TaskId t : rerun_marked_list_) {
      rerun_marked_[static_cast<size_t>(t)] = 0;
    }
    rerun_marked_list_.clear();

    RebuildAfterCrash();
  }

  /// Builds the datum -> writing-tasks index (ascending task id) the
  /// first time a crash needs lineage.
  void EnsureWritersIndex() {
    if (!writers_.empty() || graph_.num_data() == 0) return;
    writers_.resize(static_cast<size_t>(graph_.num_data()));
    for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
      for (const Param& p : graph_.task(t).spec.params) {
        if (p.dir != Dir::kIn) {
          writers_[static_cast<size_t>(p.data)].push_back(t);
        }
      }
    }
  }

  /// Handles one block lost with dead node `n` (its current home).
  /// INOUT approximation: the block's value is restored by re-running
  /// only the last completed writer, not the full INOUT chain — exact
  /// for single-assignment data, conservative-in-time otherwise.
  void LoseDatum(DataId d, std::vector<TaskId>* rerun) {
    ++stats_.lost_blocks;
    const auto ds = static_cast<size_t>(d);
    TaskId w = -1;
    const std::vector<TaskId>& writers = writers_[ds];
    for (auto it = writers.rbegin(); it != writers.rend(); ++it) {
      if (active_run_[static_cast<size_t>(*it)] != nullptr) {
        // A live writer is already re-producing the value on its own
        // node; nothing to recompute.
        data_home_[ds] = -1;
        if (locality_ != nullptr) locality_->OnDataHomeChanged(d);
        return;
      }
      if (completed_flag_[static_cast<size_t>(*it)] != 0 ||
          rerun_marked_[static_cast<size_t>(*it)] != 0) {
        w = *it;
        break;
      }
    }
    if (w < 0) {
      // No writer ever completed: the block still holds its durable
      // initial value; re-home it on a live node.
      data_home_[ds] = NextLiveNode();
      if (locality_ != nullptr) locality_->OnDataHomeChanged(d);
      return;
    }
    data_home_[ds] = -1;
    if (locality_ != nullptr) locality_->OnDataHomeChanged(d);
    if (rerun_marked_[static_cast<size_t>(w)] == 0) {
      rerun_marked_[static_cast<size_t>(w)] = 1;
      rerun_marked_list_.push_back(w);
      completed_flag_[static_cast<size_t>(w)] = 0;
      --completed_;
      ++stats_.recomputed_tasks;
      rerun->push_back(w);
    }
  }

  int NextLiveNode() {
    for (int i = 0; i < cluster_.num_nodes; ++i) {
      const int n = relocate_rr_;
      relocate_rr_ = (relocate_rr_ + 1) % cluster_.num_nodes;
      if (node_dead_[static_cast<size_t>(n)] == 0) return n;
    }
    return -1;  // every node is dead; the run will stall out cleanly
  }

  /// Recomputes the dependency countdown of every task that is
  /// neither completed nor in flight and rebuilds the ready queue to
  /// match, then resumes scheduling — a crash may have re-opened
  /// producers of tasks that were already ready (or queued).
  void RebuildAfterCrash() {
    ready_ = ReadyQueue();
    // A fresh ReadyQueue forgets the cost scorer; re-arm it before
    // re-pushing, or every post-crash push would score 0.
    if (scorer_) ready_.SetScorer(scorer_);
    for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
      const auto ts = static_cast<size_t>(t);
      if (completed_flag_[ts] != 0 || active_run_[ts] != nullptr) continue;
      int deps = 0;
      for (TaskId dep : graph_.task(t).deps) {
        if (completed_flag_[static_cast<size_t>(dep)] == 0) ++deps;
      }
      remaining_deps_[ts] = deps;
      if (deps == 0 && pending_retry_[ts] == 0) {
        ready_.Push(t, task_class_[ts]);
      }
    }
    ScheduleLoop();
  }

  void OnGpuLoss(int n) {
    const auto ns = static_cast<size_t>(n);
    if (node_dead_[ns] != 0 || gpu_slots_.capacity_at(n) == 0) return;
    ++stats_.faults_injected;
    if (gpu_slots_.free_at(n) > 0) {
      gpu_slots_.RemoveDevice(n);  // an idle device vanishes quietly
      return;
    }
    // Every device is busy: the lost one takes its task down with it.
    // Deterministic victim: the lowest task id among the node's live
    // GPU runs. Its slot is never released — RemoveDevice already
    // dropped the capacity it occupied.
    TaskRun* victim = nullptr;
    for (TaskRun* run : live_runs_) {
      if (run->node == n && run->processor == Processor::kGpu &&
          (victim == nullptr || run->id < victim->id)) {
        victim = run;
      }
    }
    if (victim == nullptr) return;
    gpu_slots_.RemoveDevice(n);
    KillRun(victim, AttemptOutcome::kDeviceLost);
  }

  void OnSlowNode(int n, double factor) {
    if (node_dead_[static_cast<size_t>(n)] != 0) return;
    ++stats_.faults_injected;
    node_slow_[static_cast<size_t>(n)] = factor;
  }

  const hw::ClusterSpec& cluster_;
  const RunOptions& options_;
  const TaskGraph& graph_;
  const CancellationToken* const cancel_;
  perf::CostModel model_;
  /// Effective policy: the per-run RunContext override when set, else
  /// RunOptions::policy (declared before scheduler_ — init order).
  const SchedulingPolicy policy_;
  std::unique_ptr<Scheduler> scheduler_;

  sim::Simulator simulator_;
  std::unique_ptr<sim::BandwidthResource> shared_disk_;
  std::vector<std::unique_ptr<sim::BandwidthResource>> local_disks_;
  std::unique_ptr<sim::BandwidthResource> network_;

  hw::SlotIndex cpu_slots_;
  hw::SlotIndex gpu_slots_;
  std::vector<PlacementClass> task_class_;
  std::vector<int> data_home_;
  std::vector<char> is_initial_input_;
  std::unique_ptr<LocalityCache> locality_;
  ReadyQueue ready_;
  std::vector<int> remaining_deps_;
  std::vector<TaskRecord> records_;

  // Cost-model policy state (empty for the paper's two policies).
  std::vector<double> est_;         ///< modeled per-task duration
  std::vector<double> static_key_;  ///< alpha*rank - beta*slack
  ReadyQueue::ScoreFn scorer_;      ///< kept to re-arm after a crash
  std::vector<TaskRun*> hedge_scan_;  ///< MaybeHedge scratch

  std::deque<TaskRun> run_pool_;    ///< stable storage for live runs
  std::vector<TaskRun*> free_runs_;
  std::vector<TaskRun*> live_runs_;

  // Online invariant checking (RunOptions::check_invariants). The
  // oracle and version vector exist only when the order checks are
  // active; CheckConservation reads run state that exists anyway.
  const bool check_order_;
  VersionOracle version_oracle_;
  std::vector<int> data_version_;

  // Fault-tolerance state. Allocated unconditionally (cheap), but only
  // mutated by fault paths; `faults_active_` gates every behavioural
  // branch so fault-free runs stay bit-identical.
  const bool faults_active_;
  const bool hedging_;
  Rng storage_rng_;
  std::vector<char> node_dead_;
  std::vector<double> node_slow_;
  std::vector<int> attempt_count_;
  std::vector<char> completed_flag_;
  std::vector<char> pending_retry_;
  std::vector<TaskRun*> active_run_;
  std::vector<std::vector<TaskId>> writers_;  ///< lazily built lineage
  std::vector<char> rerun_marked_;
  std::vector<TaskId> rerun_marked_list_;
  int relocate_rr_ = 0;
  FaultStats stats_;
  std::vector<TaskAttempt> attempts_;

  // Telemetry. All null/empty when options.metrics is null; the only
  // always-on additions are the decision counter and the phase split
  // (folded into the report after the run), neither of which touches
  // the event sequence.
  struct StageHists {
    obs::Histogram* deserialize = nullptr;
    obs::Histogram* compute = nullptr;
    obs::Histogram* serialize = nullptr;
    obs::Histogram* duration = nullptr;
  };
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_decisions_ = nullptr;
  obs::Histogram* m_ready_size_ = nullptr;
  std::vector<StageHists> type_hists_;
  std::vector<uint32_t> task_type_idx_;
  SchedulerPhaseBreakdown phase_split_;
  int64_t decisions_ = 0;

  double master_free_at_ = 0;
  double scheduler_overhead_ = 0;
  double makespan_ = 0;
  int64_t completed_ = 0;
  Status failure_;
};

}  // namespace

SimulatedExecutor::SimulatedExecutor(hw::ClusterSpec cluster,
                                     RunOptions options)
    : cluster_(std::move(cluster)), options_(std::move(options)) {
  TB_CHECK_OK(cluster_.Validate());
}

Result<RunReport> SimulatedExecutor::Execute(const TaskGraph& graph,
                                             const RunContext& ctx) const {
  SimState state(cluster_, options_, graph, ctx);
  return state.Run();
}

}  // namespace taskbench::runtime
