#ifndef TASKBENCH_RUNTIME_WORK_STEALING_QUEUE_H_
#define TASKBENCH_RUNTIME_WORK_STEALING_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace taskbench::runtime {

/// Chase–Lev work-stealing deque of trivially-copyable values.
///
/// One owner thread pushes and pops at the bottom; any number of
/// thief threads steal from the top. The owner sees LIFO order (good
/// locality: a task's successors run where their inputs were just
/// produced); thieves see FIFO order (they take the oldest — likely
/// largest-subtree — work).
///
/// Memory-ordering notes: this is the textbook formulation with
/// sequentially-consistent operations on `top_`/`bottom_` rather than
/// the weakest-orders refinement of Lê et al. — the strong orders
/// keep the invariants easy to audit and avoid standalone
/// atomic_thread_fence, which ThreadSanitizer cannot model (the TSan
/// CI job runs the executor tests over exactly this code). Slots are
/// std::atomic<T> accessed relaxed: the top_/bottom_ protocol, not
/// the slot access, carries the synchronization. For the executor's
/// task granularity the deque op cost is noise.
///
/// The buffer grows on demand (owner-side only). Retired buffers are
/// kept until destruction because a concurrent thief may still read a
/// stale buffer pointer; values for its in-range indices are
/// identical in old and new buffers, so a stale read is benign.
template <typename T>
class WorkStealingQueue {
 public:
  /// `capacity_hint` rounds up to a power of two (minimum 64).
  explicit WorkStealingQueue(size_t capacity_hint = 64) {
    size_t cap = 64;
    while (cap < capacity_hint) cap *= 2;
    buffer_.store(NewBuffer(cap), std::memory_order_relaxed);
  }

  WorkStealingQueue(const WorkStealingQueue&) = delete;
  WorkStealingQueue& operator=(const WorkStealingQueue&) = delete;
  // Move is only safe before any concurrent access begins (the
  // executor builds the vector of queues before starting workers).
  WorkStealingQueue(WorkStealingQueue&& other) noexcept {
    top_.store(other.top_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    bottom_.store(other.bottom_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    buffer_.store(other.buffer_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    other.buffer_.store(nullptr, std::memory_order_relaxed);
    retired_ = std::move(other.retired_);
  }

  ~WorkStealingQueue() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  /// Owner only: push a value at the bottom.
  void Push(T value) {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_seq_cst);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<int64_t>(buf->mask + 1)) {
      buf = Grow(buf, t, b);
    }
    buf->Put(b, value);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only: pop the most recently pushed value. False when
  /// empty.
  bool Pop(T* out) {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    // The seq_cst store publishes our claim on slot b before we look
    // at top_ (the Dekker handshake with concurrent Steal).
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // deque was empty
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return false;
    }
    if (t < b) {  // more than one element; no race possible on slot b
      *out = buf->Get(b);
      return true;
    }
    // Exactly one element: race the thieves for it via top_.
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_seq_cst);
    if (won) *out = buf->Get(b);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return won;
  }

  /// Any thread: steal the oldest value. False when empty or when a
  /// concurrent operation won the race (callers just move on to the
  /// next victim).
  bool Steal(T* out) {
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    // Load the buffer only after bottom_: the owner publishes a grown
    // buffer before the bottom_ store that made this index visible,
    // so the load here is guaranteed to see a buffer that can serve
    // index t.
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    const T value = buf->Get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      return false;
    }
    *out = value;
    return true;
  }

  /// Approximate size (owner's view is exact; thieves may see stale
  /// values). For diagnostics only.
  int64_t ApproxSize() const {
    return bottom_.load(std::memory_order_relaxed) -
           top_.load(std::memory_order_relaxed);
  }

 private:
  struct Buffer {
    size_t mask;  // capacity - 1 (capacity is a power of two)
    std::unique_ptr<std::atomic<T>[]> slots;

    T Get(int64_t index) const {
      return slots[static_cast<size_t>(index) & mask].load(
          std::memory_order_relaxed);
    }
    void Put(int64_t index, T value) {
      slots[static_cast<size_t>(index) & mask].store(
          value, std::memory_order_relaxed);
    }
  };

  static Buffer* NewBuffer(size_t capacity) {
    Buffer* buf = new Buffer;
    buf->mask = capacity - 1;
    buf->slots = std::make_unique<std::atomic<T>[]>(capacity);
    return buf;
  }

  Buffer* Grow(Buffer* old, int64_t t, int64_t b) {
    Buffer* bigger = NewBuffer(2 * (old->mask + 1));
    for (int64_t i = t; i < b; ++i) bigger->Put(i, old->Get(i));
    // Publish before the Push's bottom_ store; thieves that observe
    // the new bottom index also observe this buffer.
    buffer_.store(bigger, std::memory_order_release);
    retired_.push_back(old);
    return bigger;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  std::vector<Buffer*> retired_;  // owner-only; freed at destruction
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_WORK_STEALING_QUEUE_H_
