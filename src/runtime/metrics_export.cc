#include "runtime/metrics_export.h"

#include <fstream>
#include <ostream>

#include "common/strings.h"
#include "obs/metrics.h"

namespace taskbench::runtime {

namespace {

// %.9g round-trips every value the run section carries (seconds and
// counts well below 2^53) while keeping the document compact.
std::string Num(double v) { return StrFormat("%.9g", v); }

}  // namespace

void StreamMetricsJson(const RunReport& report,
                       const obs::MetricsRegistry* registry,
                       std::ostream& out) {
  out << "{\n\"schema\": \"taskbench.metrics.v1\",\n";
  out << "\"run\": {\n";
  out << "  \"makespan_s\": " << Num(report.makespan) << ",\n";
  out << "  \"scheduler_overhead_s\": " << Num(report.scheduler_overhead)
      << ",\n";
  out << "  \"scheduler_phases\": {\"ready_pop_s\": "
      << Num(report.sched_phases.ready_pop_s)
      << ", \"locality_s\": " << Num(report.sched_phases.locality_s)
      << ", \"slot_pick_s\": " << Num(report.sched_phases.slot_pick_s)
      << "},\n";
  out << "  \"tasks\": " << report.records.size() << ",\n";
  out << "  \"sim_events\": " << report.sim_events;
  if (report.faults.any()) {
    out << ",\n  \"faults\": {\"injected\": " << report.faults.faults_injected
        << ", \"storage_faults\": " << report.faults.storage_faults
        << ", \"retries\": " << report.faults.retries
        << ", \"recomputed_tasks\": " << report.faults.recomputed_tasks
        << ", \"lost_blocks\": " << report.faults.lost_blocks
        << ", \"dead_nodes\": " << report.faults.dead_nodes << "}";
  }
  out << "\n},\n";
  out << "\"metrics\": ";
  if (registry != nullptr && !registry->empty()) {
    registry->WriteJson(out);
  } else {
    out << "{}";
  }
  out << "\n}\n";
}

Status WriteMetricsJson(const RunReport& report,
                        const obs::MetricsRegistry* registry,
                        const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::Internal(
        StrFormat("cannot open metrics file '%s'", path.c_str()));
  }
  StreamMetricsJson(report, registry, file);
  if (!file) {
    return Status::Internal(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace taskbench::runtime
