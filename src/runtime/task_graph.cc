#include "runtime/task_graph.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "common/strings.h"

namespace taskbench::runtime {

DataId TaskGraph::AddData(uint64_t bytes, std::string name, int home_node) {
  DataEntry entry;
  entry.id = static_cast<DataId>(data_.size());
  entry.name = name.empty() ? StrFormat("d%lld", static_cast<long long>(entry.id))
                            : std::move(name);
  entry.bytes = bytes;
  entry.home_node = home_node;
  data_.push_back(std::move(entry));
  history_.emplace_back();
  return data_.back().id;
}

DataId TaskGraph::AddData(data::Matrix value, std::string name,
                          int home_node) {
  const uint64_t bytes = value.bytes();
  const DataId id = AddData(bytes, std::move(name), home_node);
  data_[static_cast<size_t>(id)].value = std::move(value);
  return id;
}

Result<TaskId> TaskGraph::Submit(TaskSpec spec) {
  if (spec.params.empty()) {
    return Status::InvalidArgument(
        StrFormat("task '%s' has no parameters", spec.type.c_str()));
  }
  for (const Param& param : spec.params) {
    if (param.data < 0 || param.data >= num_data()) {
      return Status::InvalidArgument(
          StrFormat("task '%s' references unknown data id %lld",
                    spec.type.c_str(), static_cast<long long>(param.data)));
    }
  }

  Task task;
  task.id = static_cast<TaskId>(tasks_.size());
  task.spec = std::move(spec);

  // Derive dependencies from each datum's access history.
  std::set<TaskId> deps;
  for (const Param& param : task.spec.params) {
    AccessHistory& h = history_[static_cast<size_t>(param.data)];
    if (param.dir == Dir::kIn || param.dir == Dir::kInOut) {
      // True dependency: read-after-write.
      if (h.last_writer >= 0) deps.insert(h.last_writer);
    }
    if (param.dir == Dir::kOut || param.dir == Dir::kInOut) {
      // Output dependency: write-after-write.
      if (h.last_writer >= 0) deps.insert(h.last_writer);
      // Anti dependency: write-after-read.
      for (TaskId reader : h.readers_since_write) deps.insert(reader);
    }
  }
  deps.erase(task.id);

  task.deps.assign(deps.begin(), deps.end());
  int level = 0;
  for (TaskId dep : task.deps) {
    level = std::max(level, tasks_[static_cast<size_t>(dep)].level + 1);
  }
  task.level = level;

  // Update access histories after dependency extraction so a task
  // reading and writing the same datum does not depend on itself.
  for (const Param& param : task.spec.params) {
    AccessHistory& h = history_[static_cast<size_t>(param.data)];
    if (param.dir == Dir::kOut || param.dir == Dir::kInOut) {
      h.last_writer = task.id;
      h.readers_since_write.clear();
      ++data_[static_cast<size_t>(param.data)].version;
    } else {
      h.readers_since_write.push_back(task.id);
    }
  }

  for (TaskId dep : task.deps) {
    tasks_[static_cast<size_t>(dep)].successors.push_back(task.id);
  }
  tasks_.push_back(std::move(task));
  return tasks_.back().id;
}

std::vector<std::vector<TaskId>> TaskGraph::LevelSets() const {
  std::vector<std::vector<TaskId>> levels;
  for (const Task& task : tasks_) {
    if (static_cast<size_t>(task.level) >= levels.size()) {
      levels.resize(static_cast<size_t>(task.level) + 1);
    }
    levels[static_cast<size_t>(task.level)].push_back(task.id);
  }
  return levels;
}

int64_t TaskGraph::MaxWidth() const {
  int64_t width = 0;
  for (const auto& level : LevelSets()) {
    width = std::max(width, static_cast<int64_t>(level.size()));
  }
  return width;
}

int64_t TaskGraph::MaxHeight() const {
  return static_cast<int64_t>(LevelSets().size());
}

std::string TaskGraph::ToDot() const {
  std::ostringstream out;
  out << "digraph workflow {\n  rankdir=TB;\n";
  for (const Task& task : tasks_) {
    out << "  t" << task.id << " [label=\"" << task.spec.type << " #"
        << task.id << "\"];\n";
  }
  for (const Task& task : tasks_) {
    for (TaskId dep : task.deps) {
      out << "  t" << dep << " -> t" << task.id << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

Status TaskGraph::Validate() const {
  for (const Task& task : tasks_) {
    for (TaskId dep : task.deps) {
      if (dep < 0 || dep >= num_tasks()) {
        return Status::Internal(StrFormat(
            "task %lld has out-of-range dependency %lld",
            static_cast<long long>(task.id), static_cast<long long>(dep)));
      }
      // Builder-created graphs only depend on earlier tasks, which
      // also guarantees acyclicity.
      if (dep >= task.id) {
        return Status::Internal(StrFormat(
            "task %lld depends on later task %lld (cycle risk)",
            static_cast<long long>(task.id), static_cast<long long>(dep)));
      }
    }
  }
  return Status::OK();
}

}  // namespace taskbench::runtime
