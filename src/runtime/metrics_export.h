#ifndef TASKBENCH_RUNTIME_METRICS_EXPORT_H_
#define TASKBENCH_RUNTIME_METRICS_EXPORT_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "runtime/metrics.h"

namespace taskbench::obs {
class MetricsRegistry;
}

namespace taskbench::runtime {

/// Streams the run-metrics JSON document:
///
///   {
///     "schema": "taskbench.metrics.v1",
///     "run": {
///       "makespan_s": ..., "scheduler_overhead_s": ...,
///       "scheduler_phases": {"ready_pop_s": ..., "locality_s": ...,
///                            "slot_pick_s": ...},
///       "tasks": ..., "sim_events": ...,
///       "faults": {...}            // only when any fault fired
///     },
///     "metrics": {"counters": ..., "gauges": ..., "histograms": ...}
///   }
///
/// `registry` may be null (telemetry disabled); "metrics" is then {}.
/// Every string is JSON-escaped and the document parses cleanly.
void StreamMetricsJson(const RunReport& report,
                       const obs::MetricsRegistry* registry,
                       std::ostream& out);

/// StreamMetricsJson to `path`.
Status WriteMetricsJson(const RunReport& report,
                        const obs::MetricsRegistry* registry,
                        const std::string& path);

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_METRICS_EXPORT_H_
