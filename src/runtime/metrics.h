#ifndef TASKBENCH_RUNTIME_METRICS_H_
#define TASKBENCH_RUNTIME_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "perf/cost_model.h"
#include "runtime/task_graph.h"

namespace taskbench::runtime {

/// Execution record of one task: placement, per-stage durations and
/// the start/end timestamps (simulated seconds for the simulated
/// executor, wall-clock seconds for the thread-pool executor).
struct TaskRecord {
  TaskId task = -1;
  std::string type;
  int level = 0;
  Processor processor = Processor::kCpu;
  int node = -1;
  int slot = -1;
  perf::StageTimes stages;
  double start = 0;
  double end = 0;
  /// Which attempt finally completed (1 = first try; > 1 means the
  /// task was retried after an injected fault).
  int attempt = 1;

  double duration() const { return end - start; }
};

/// Outcome of one task attempt under fault injection.
enum class AttemptOutcome : uint8_t {
  kCompleted,       ///< ran to completion
  kNodeLost,        ///< killed mid-flight by a node crash
  kDeviceLost,      ///< killed mid-flight by a GPU loss
  kStorageFault,    ///< a storage Get/Put failed transiently
  kFailed,          ///< non-recoverable failure (retries exhausted)
  kHedgeCancelled,  ///< speculative duplicate cancelled — its twin won
};

std::string ToString(AttemptOutcome outcome);

/// One task attempt: recorded only when a fault plan is active, so
/// fault-free runs produce byte-identical reports to the
/// pre-fault-tolerance executor.
struct TaskAttempt {
  TaskId task = -1;
  int attempt = 1;
  int node = -1;
  Processor processor = Processor::kCpu;
  double start = 0;
  double end = 0;
  AttemptOutcome outcome = AttemptOutcome::kCompleted;
};

/// Fault-tolerance counters for one run. All zero on fault-free runs.
struct FaultStats {
  int64_t faults_injected = 0;   ///< discrete fault events fired
  int64_t storage_faults = 0;    ///< transient storage op failures
  int64_t retries = 0;           ///< task attempts beyond the first
  int64_t recomputed_tasks = 0;  ///< completed tasks re-run to rebuild
                                 ///< blocks lost with a node
  int64_t lost_blocks = 0;       ///< data blocks lost with dead nodes
  int64_t dead_nodes = 0;        ///< nodes out of service at the end
  int64_t hedges = 0;            ///< speculative straggler duplicates
                                 ///< launched (cost-model policy)

  bool any() const {
    return faults_injected || storage_faults || retries ||
           recomputed_tasks || lost_blocks || dead_nodes || hedges;
  }
};

/// Master scheduling time split by decision phase — the breakdown of
/// the paper's `scheduler_overhead` scalar (Section 4.4.3's
/// "scheduler-side" accounting). Per decision the simulated master
/// spends time (a) popping the candidate off the ready heaps, (b)
/// consulting data locations (zero for location-blind policies, and
/// the dominant term for locality scheduling on shared storage, where
/// it is a metadata query), and (c) picking the target slot. The
/// three accumulators sum to `RunReport::scheduler_overhead` by
/// construction.
struct SchedulerPhaseBreakdown {
  double ready_pop_s = 0;   ///< candidate selection off the ready set
  double locality_s = 0;    ///< data-location lookups
  double slot_pick_s = 0;   ///< free-slot search / node assignment

  double total() const { return ready_pop_s + locality_s + slot_pick_s; }
  bool any() const {
    return ready_pop_s != 0 || locality_s != 0 || slot_pick_s != 0;
  }
};

/// Timing of one DAG level — the paper's "parallel task execution
/// time" is the average level duration (Section 4.2, task level
/// metrics), including all data movement overheads.
struct LevelStat {
  int level = 0;
  int num_tasks = 0;
  /// max(end) - min(start) over the level's tasks.
  double duration = 0;
};

/// Aggregated outcome of one workflow execution.
struct RunReport {
  std::vector<TaskRecord> records;
  /// Total execution time (last task end).
  double makespan = 0;
  /// Master time spent making scheduling decisions.
  double scheduler_overhead = 0;
  /// Per-phase split of scheduler_overhead (simulated executor only;
  /// all zero on the thread-pool path, which has no modeled master).
  SchedulerPhaseBreakdown sched_phases;
  /// Discrete events the simulator executed for this run (simulated
  /// executor only; 0 for the thread-pool path). Lets the scaling
  /// benches report events/second of the engine itself.
  uint64_t sim_events = 0;
  /// Fault-tolerance counters; all zero when no faults were injected.
  FaultStats faults;
  /// Per-task attempt log. Populated only when a fault plan is active
  /// (empty on fault-free runs, keeping them bit-identical to the
  /// pre-fault-tolerance executor).
  std::vector<TaskAttempt> attempts;

  /// Mean per-stage times per task type ("tasks running the same code
  /// are aggregated together", Section 4.2).
  std::map<std::string, perf::StageTimes> MeanStagesByType() const;

  /// Number of executed tasks per type.
  std::map<std::string, int> CountByType() const;

  /// Mean stages across all tasks.
  perf::StageTimes MeanStages() const;

  /// Per-level durations, ordered by level.
  std::vector<LevelStat> LevelStats() const;

  /// Mean level duration — the "parallel task execution time" metric.
  double MeanLevelTime() const;

  /// Total (de)serialization time summed over tasks — the data
  /// movement overhead the paper groups per CPU core.
  double TotalDeserializeTime() const;
  double TotalSerializeTime() const;

  /// Sum of all task durations (slot-seconds of occupied slots).
  double TotalBusyTime() const;

  /// Mean slot utilization over the run: TotalBusyTime divided by
  /// (total_slots x makespan). The "resource wastage" indicator —
  /// pure GPU execution on the Minotauro shape leaves ~120 of 160
  /// slots idle; hybrid placement closes the gap.
  double SlotUtilization(int total_slots) const;

  /// Busy slot-seconds per node (index = node id; -1 records land in
  /// node 0).
  std::vector<double> BusyTimeByNode() const;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_METRICS_H_
