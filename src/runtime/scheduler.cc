#include "runtime/scheduler.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/logging.h"

namespace taskbench::runtime {

namespace {

/// The task the legacy front-to-back ready scan would pick, plus the
/// processor it lands on: the lowest ready TaskId among the heads of
/// the placeable classes. A class is placeable iff the processor
/// kind(s) it may use have a free slot somewhere — an O(1) aggregate
/// lookup, so one decision never touches more than the four heads.
struct Candidate {
  TaskId id = -1;
  Processor processor = Processor::kCpu;
  PlacementClass cls = PlacementClass::kCpuOnly;
};

std::optional<Candidate> PickTask(const SchedulerView& view) {
  const bool cpu_free = view.cpu_slots->total_free() > 0;
  const bool gpu_free = view.gpu_slots->total_free() > 0;
  Candidate best;
  auto consider = [&](PlacementClass cls, bool placeable, Processor proc) {
    if (!placeable) return;
    const TaskId head = view.ready->Head(cls);
    if (head >= 0 && (best.id < 0 || head < best.id)) {
      best = Candidate{head, proc, cls};
    }
  };
  consider(PlacementClass::kCpuOnly, cpu_free, Processor::kCpu);
  consider(PlacementClass::kGpuOnly, gpu_free, Processor::kGpu);
  // A within-budget hybrid task prefers a device and spills to a core
  // only when every device is busy.
  consider(PlacementClass::kGpuOrCpu, gpu_free || cpu_free,
           gpu_free ? Processor::kGpu : Processor::kCpu);
  consider(PlacementClass::kCpuSpill, cpu_free, Processor::kCpu);
  if (best.id < 0) return std::nullopt;
  return best;
}

/// Scored variant of PickTask for the cost-model policy: the class
/// head with the highest push score among placeable classes, ties to
/// the lowest TaskId. With no scorer installed every score is 0 and
/// this degenerates to PickTask exactly.
std::optional<Candidate> PickScoredTask(const SchedulerView& view) {
  const bool cpu_free = view.cpu_slots->total_free() > 0;
  const bool gpu_free = view.gpu_slots->total_free() > 0;
  Candidate best;
  double best_score = -std::numeric_limits<double>::infinity();
  auto consider = [&](PlacementClass cls, bool placeable, Processor proc) {
    if (!placeable) return;
    const TaskId head = view.ready->Head(cls);
    if (head < 0) return;
    const double score = view.ready->HeadScore(cls);
    if (best.id < 0 || score > best_score ||
        (score == best_score && head < best.id)) {
      best = Candidate{head, proc, cls};
      best_score = score;
    }
  };
  consider(PlacementClass::kCpuOnly, cpu_free, Processor::kCpu);
  consider(PlacementClass::kGpuOnly, gpu_free, Processor::kGpu);
  consider(PlacementClass::kGpuOrCpu, gpu_free || cpu_free,
           gpu_free ? Processor::kGpu : Processor::kCpu);
  consider(PlacementClass::kCpuSpill, cpu_free, Processor::kCpu);
  if (best.id < 0) return std::nullopt;
  return best;
}

const hw::SlotIndex& SlotsFor(const SchedulerView& view, Processor p) {
  return p == Processor::kCpu ? *view.cpu_slots : *view.gpu_slots;
}

/// Locality-weighted node pick shared by the data-locality and
/// cost-model policies: among free nodes, the one holding the most of
/// `id`'s input bytes; ties (including the all-zero case) go to the
/// lowest node id. The tie-break is explicit and order-independent —
/// it must not lean on the tally's vector order, which is only
/// node-ascending for a freshly (re)built entry (a partially rebuilt
/// LocalityCache entry after OnDataHomeChanged once broke this; see
/// the regression test in scheduler_test.cc).
int PickLocalityNode(const SchedulerView& view, TaskId id,
                     const hw::SlotIndex& slots) {
  std::vector<std::pair<int, uint64_t>> scratch;
  const std::vector<std::pair<int, uint64_t>>* tally;
  if (view.locality != nullptr) {
    tally = &view.locality->TallyFor(id);
  } else {
    for (const Param& p : view.graph->task(id).spec.params) {
      if (p.dir == Dir::kOut) continue;
      const int home = (*view.data_home)[static_cast<size_t>(p.data)];
      if (home >= 0) scratch.emplace_back(home, view.graph->data(p.data).bytes);
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    size_t out = 0;
    for (size_t i = 0; i < scratch.size(); ++i) {
      if (out > 0 && scratch[out - 1].first == scratch[i].first) {
        scratch[out - 1].second += scratch[i].second;
      } else {
        scratch[out++] = scratch[i];
      }
    }
    scratch.resize(out);
    tally = &scratch;
  }

  // Seed with the first free node (the lowest free node id) and its
  // byte count, then let only strictly-better or lower-id-equal-bytes
  // nodes beat it. Both scans are order-independent.
  int best_node = slots.FirstFreeNode();
  TB_CHECK(best_node >= 0);
  uint64_t best_bytes = 0;
  for (const auto& [node, bytes] : *tally) {
    if (node == best_node) {
      best_bytes = bytes;
      break;
    }
  }
  for (const auto& [node, bytes] : *tally) {
    if (node >= slots.num_nodes() || slots.free_at(node) <= 0) continue;
    if (bytes > best_bytes || (bytes == best_bytes && node < best_node)) {
      best_node = node;
      best_bytes = bytes;
    }
  }
  return best_node;
}

}  // namespace

LocalityCache::LocalityCache(const TaskGraph& graph,
                             const std::vector<int>* data_home)
    : graph_(graph), data_home_(data_home) {
  TB_CHECK(data_home_ != nullptr);
  consumers_.resize(static_cast<size_t>(graph.num_data()));
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    for (const Param& p : graph.task(t).spec.params) {
      if (p.dir == Dir::kOut) continue;
      consumers_[static_cast<size_t>(p.data)].push_back(t);
    }
  }
  tally_.resize(static_cast<size_t>(graph.num_tasks()));
  dirty_.assign(static_cast<size_t>(graph.num_tasks()), true);
}

const std::vector<std::pair<int, uint64_t>>& LocalityCache::TallyFor(
    TaskId id) {
  const auto t = static_cast<size_t>(id);
  if (dirty_[t]) {
    auto& tally = tally_[t];
    tally.clear();
    for (const Param& p : graph_.task(id).spec.params) {
      if (p.dir == Dir::kOut) continue;
      const int home = (*data_home_)[static_cast<size_t>(p.data)];
      if (home >= 0) tally.emplace_back(home, graph_.data(p.data).bytes);
    }
    std::sort(tally.begin(), tally.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    // Merge duplicate nodes in place.
    size_t out = 0;
    for (size_t i = 0; i < tally.size(); ++i) {
      if (out > 0 && tally[out - 1].first == tally[i].first) {
        tally[out - 1].second += tally[i].second;
      } else {
        tally[out++] = tally[i];
      }
    }
    tally.resize(out);
    dirty_[t] = false;
  }
  return tally_[t];
}

void LocalityCache::OnDataHomeChanged(DataId d) {
  for (TaskId t : consumers_[static_cast<size_t>(d)]) {
    dirty_[static_cast<size_t>(t)] = true;
  }
}

bool LocalityCache::VerifyTally(TaskId id) {
  const std::vector<std::pair<int, uint64_t>>& cached = TallyFor(id);
  std::vector<std::pair<int, uint64_t>> fresh;
  for (const Param& p : graph_.task(id).spec.params) {
    if (p.dir == Dir::kOut) continue;
    const int home = (*data_home_)[static_cast<size_t>(p.data)];
    if (home >= 0) fresh.emplace_back(home, graph_.data(p.data).bytes);
  }
  std::sort(fresh.begin(), fresh.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t out = 0;
  for (size_t i = 0; i < fresh.size(); ++i) {
    if (out > 0 && fresh[out - 1].first == fresh[i].first) {
      fresh[out - 1].second += fresh[i].second;
    } else {
      fresh[out++] = fresh[i];
    }
  }
  fresh.resize(out);
  return fresh == cached;
}

std::unique_ptr<Scheduler> MakeScheduler(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kTaskGenerationOrder:
      return std::make_unique<TaskGenerationOrderScheduler>();
    case SchedulingPolicy::kDataLocality:
      return std::make_unique<DataLocalityScheduler>();
    case SchedulingPolicy::kCostModel:
      return std::make_unique<CostModelScheduler>();
  }
  return std::make_unique<TaskGenerationOrderScheduler>();
}

std::optional<SchedulingPolicy> ParseSchedulingPolicy(
    const std::string& name) {
  if (name == "fifo" || name == "gen" || name == "gen-order" ||
      name == "task-gen-order") {
    return SchedulingPolicy::kTaskGenerationOrder;
  }
  if (name == "locality" || name == "data-locality") {
    return SchedulingPolicy::kDataLocality;
  }
  if (name == "cost" || name == "cost-model") {
    return SchedulingPolicy::kCostModel;
  }
  return std::nullopt;
}

std::optional<Assignment> TaskGenerationOrderScheduler::Decide(
    const SchedulerView& view) {
  TB_CHECK(view.graph && view.ready && view.cpu_slots && view.gpu_slots);
  const auto pick = PickTask(view);
  if (!pick.has_value()) return std::nullopt;
  const int node = SlotsFor(view, pick->processor).FirstFreeNode();
  TB_CHECK(node >= 0);
  return Assignment{pick->id, node, pick->processor};
}

std::optional<Assignment> DataLocalityScheduler::Decide(
    const SchedulerView& view) {
  TB_CHECK(view.graph && view.ready && view.cpu_slots && view.gpu_slots &&
           view.data_home);
  const auto pick = PickTask(view);
  if (!pick.has_value()) return std::nullopt;
  const hw::SlotIndex& slots = SlotsFor(view, pick->processor);
  const int node = PickLocalityNode(view, pick->id, slots);
  return Assignment{pick->id, node, pick->processor};
}

std::optional<Assignment> CostModelScheduler::Decide(
    const SchedulerView& view) {
  TB_CHECK(view.graph && view.ready && view.cpu_slots && view.gpu_slots &&
           view.data_home);
  const auto pick = PickScoredTask(view);
  if (!pick.has_value()) return std::nullopt;
  const hw::SlotIndex& slots = SlotsFor(view, pick->processor);
  const int node = PickLocalityNode(view, pick->id, slots);
  return Assignment{pick->id, node, pick->processor};
}

}  // namespace taskbench::runtime
