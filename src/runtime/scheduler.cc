#include "runtime/scheduler.h"

#include <cstdint>
#include <map>

#include "common/logging.h"

namespace taskbench::runtime {

namespace {

/// Processor the scheduler should place `task` on, or nullopt when no
/// suitable slot is free anywhere. Honors hybrid fallback: a GPU task
/// that does not fit device memory is CPU-only; one that fits prefers
/// a GPU slot but may take a CPU core when every device is busy.
std::optional<Processor> ChooseProcessor(const SchedulerView& view,
                                         const Task& task) {
  auto any_free = [](const std::vector<int>& slots) {
    for (int free : slots) {
      if (free > 0) return true;
    }
    return false;
  };
  if (task.spec.processor == Processor::kCpu) {
    if (any_free(*view.free_cpu_slots)) return Processor::kCpu;
    return std::nullopt;
  }
  const bool fits =
      !view.hybrid || view.gpu_fits == nullptr ||
      (*view.gpu_fits)[static_cast<size_t>(task.id)];
  if (fits && any_free(*view.free_gpu_slots)) return Processor::kGpu;
  // Spill to a CPU core: mandatory when the task cannot fit the GPU,
  // otherwise only when the CPU slowdown is within budget.
  const bool spill_ok =
      !fits || view.cpu_spill_ok == nullptr ||
      (*view.cpu_spill_ok)[static_cast<size_t>(task.id)];
  if (view.hybrid && spill_ok && any_free(*view.free_cpu_slots)) {
    return Processor::kCpu;
  }
  return std::nullopt;
}

const std::vector<int>& SlotsFor(const SchedulerView& view, Processor p) {
  return p == Processor::kCpu ? *view.free_cpu_slots : *view.free_gpu_slots;
}

}  // namespace

std::unique_ptr<Scheduler> MakeScheduler(SchedulingPolicy policy) {
  if (policy == SchedulingPolicy::kTaskGenerationOrder) {
    return std::make_unique<TaskGenerationOrderScheduler>();
  }
  return std::make_unique<DataLocalityScheduler>();
}

std::optional<Assignment> TaskGenerationOrderScheduler::Decide(
    const SchedulerView& view) {
  TB_CHECK(view.graph && view.ready && view.free_cpu_slots &&
           view.free_gpu_slots);
  for (TaskId id : *view.ready) {
    const Task& task = view.graph->task(id);
    const auto processor = ChooseProcessor(view, task);
    if (!processor.has_value()) continue;
    const std::vector<int>& slots = SlotsFor(view, *processor);
    for (size_t node = 0; node < slots.size(); ++node) {
      if (slots[node] > 0) {
        return Assignment{id, static_cast<int>(node), *processor};
      }
    }
  }
  return std::nullopt;
}

std::optional<Assignment> DataLocalityScheduler::Decide(
    const SchedulerView& view) {
  TB_CHECK(view.graph && view.ready && view.free_cpu_slots &&
           view.free_gpu_slots && view.data_home);
  for (TaskId id : *view.ready) {
    const Task& task = view.graph->task(id);
    const auto processor = ChooseProcessor(view, task);
    if (!processor.has_value()) continue;
    const std::vector<int>& slots = SlotsFor(view, *processor);

    // Input bytes per node holding them.
    std::map<int, uint64_t> bytes_at_node;
    for (const Param& param : task.spec.params) {
      if (param.dir == Dir::kOut) continue;
      const int home = (*view.data_home)[static_cast<size_t>(param.data)];
      if (home >= 0) {
        bytes_at_node[home] += view.graph->data(param.data).bytes;
      }
    }

    int best_node = -1;
    uint64_t best_bytes = 0;
    for (size_t node = 0; node < slots.size(); ++node) {
      if (slots[node] <= 0) continue;
      const auto it = bytes_at_node.find(static_cast<int>(node));
      const uint64_t local = it == bytes_at_node.end() ? 0 : it->second;
      if (best_node < 0 || local > best_bytes) {
        best_node = static_cast<int>(node);
        best_bytes = local;
      }
    }
    if (best_node >= 0) {
      return Assignment{id, best_node, *processor};
    }
  }
  return std::nullopt;
}

}  // namespace taskbench::runtime
