#ifndef TASKBENCH_RUNTIME_SCHEDULER_CONFIG_H_
#define TASKBENCH_RUNTIME_SCHEDULER_CONFIG_H_

namespace taskbench::runtime {

/// Knobs of the cost-model scheduler family (docs/SCHEDULERS.md).
/// Consumed only when `RunOptions::policy == SchedulingPolicy::
/// kCostModel`; the paper's two policies ignore every field, so a
/// default-constructed config never perturbs existing runs.
///
/// The score of a ready task is
///
///   score(t) = alpha * rank(t) - beta * slack(t) + gamma * age(t)
///
/// where rank(t) is the task's upward rank (modeled time of the
/// longest dependency chain from t to any sink, t included — the
/// HEFT ranking), slack(t) = critical_path - toplevel(t) - rank(t)
/// is how far t sits off the critical path (0 for critical tasks),
/// and age(t) is how long t has been ready. rank and slack are
/// static per graph and age grows uniformly for all ready tasks, so
/// the relative order is fixed at ready time: the executor pushes
/// each task with the static key alpha*rank - beta*slack -
/// gamma*ready_time and the per-class heaps stay O(log ready).
struct SchedulerConfig {
  /// Weight of the remaining-critical-path (upward rank) term.
  double alpha = 1.0;
  /// Weight of the slack penalty: off-critical-path tasks yield to
  /// critical ones.
  double beta = 0.5;
  /// Weight of the age term (anti-starvation): 0 disables aging;
  /// larger values converge toward FIFO within a class.
  double gamma = 0.1;

  /// Ablation flag: disable speculative duplicate execution of
  /// straggler tasks. Hedging only ever activates for kCostModel runs
  /// with an active fault plan (simulated path) or multi-worker
  /// fault-free runs (thread pool), so fault-free simulated reports
  /// are identical with hedging on or off by construction — a
  /// differential leg enforces exactly that.
  bool disable_hedging = false;
  /// Ablation flag: disable CPU->GPU escalation (hybrid mode only).
  bool disable_escalation = false;

  /// Straggler threshold for the simulated path: a running attempt is
  /// hedged once its elapsed time exceeds this multiple of its
  /// modeled (unslowed) duration and its node is degraded.
  double hedge_threshold = 1.5;
  /// Straggler threshold for the thread pool, where there is no
  /// modeled duration: an idle worker duplicates a running task once
  /// it has been executing for at least this many wall-clock seconds.
  double hedge_min_s = 0.05;

  /// CPU->GPU escalation threshold (hybrid + kCostModel): a
  /// CPU-targeted task whose modeled CPU parallel time is at least
  /// this multiple of its GPU time (and which fits device memory) is
  /// classified GPU-or-CPU, so it takes an idle device instead of
  /// queueing for a core.
  double escalate_benefit = 2.0;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_SCHEDULER_CONFIG_H_
