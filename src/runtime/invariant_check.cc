#include "runtime/invariant_check.h"

namespace taskbench::runtime {

VersionOracle VersionOracle::Build(const TaskGraph& graph) {
  VersionOracle oracle;
  oracle.offsets_.reserve(static_cast<size_t>(graph.num_tasks()));
  std::vector<int> write_count(static_cast<size_t>(graph.num_data()), 0);
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    oracle.offsets_.push_back(oracle.ordinals_.size());
    for (const Param& p : graph.task(t).spec.params) {
      int& count = write_count[static_cast<size_t>(p.data)];
      if (p.dir == Dir::kIn) {
        oracle.ordinals_.push_back(count);
      } else {
        oracle.ordinals_.push_back(++count);
      }
    }
  }
  return oracle;
}

}  // namespace taskbench::runtime
