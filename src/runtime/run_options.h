#ifndef TASKBENCH_RUNTIME_RUN_OPTIONS_H_
#define TASKBENCH_RUNTIME_RUN_OPTIONS_H_

#include <cstdint>

#include "common/types.h"
#include "hw/cluster.h"
#include "runtime/fault.h"
#include "runtime/scheduler_config.h"

namespace taskbench::obs {
class MetricsRegistry;
}

namespace taskbench::runtime {

/// The one knob struct of workflow execution, consumed through the
/// common `runtime::Executor` interface by every executor, so
/// policies that cut across executors — fault injection, retry
/// budgets — plug in exactly once. Each executor reads the fields
/// that apply to it and ignores the rest. Per-*submission* knobs
/// (cancellation, metrics scoping, storage-key namespacing) live in
/// `RunContext` instead: one executor instance with fixed RunOptions
/// serves many concurrent runs with different contexts.
struct RunOptions {
  // ---------------------------------------------------------------
  // Shared: run telemetry.
  // ---------------------------------------------------------------
  /// When set, the executor records run telemetry (queue depths,
  /// ready-set sizes, steal counts, retries, per-stage time
  /// histograms by task type) into this registry. Null (the default)
  /// disables collection entirely — the hot paths then pay one
  /// pointer test per task, keeping fault-free runs bit-identical
  /// and performance-neutral. The registry is not thread-safe;
  /// executors with worker threads collect into per-worker instances
  /// and merge after join.
  obs::MetricsRegistry* metrics = nullptr;

  // ---------------------------------------------------------------
  // Shared: online invariant checking.
  // ---------------------------------------------------------------
  /// Verify runtime invariants while executing: every task starts only
  /// after all its dependencies completed, and every datum access
  /// observes exactly the version its writer ordinal predicts (no
  /// stale read, no read of a block that was never published). The
  /// simulated path additionally verifies conservation laws after the
  /// run: per-node busy time never exceeds makespan x slot capacity,
  /// storage-resource byte counters match the graph's block sizes, and
  /// the scheduler phase breakdown sums to the decision overhead.
  /// Violations fail the run with a FailedPrecondition status whose
  /// message starts with "invariant violation".
  ///
  /// On by default: the checks read counters that are maintained
  /// anyway, never perturb the event sequence or any floating-point
  /// accumulation, and cost well under 5% on the thread-pool stress
  /// suite. Dependency/version checks are skipped while a fault plan
  /// is active (recovery legitimately re-opens dependencies and
  /// republishes blocks); the conservation checks stay on.
  bool check_invariants = true;

  // ---------------------------------------------------------------
  // Shared: fault tolerance.
  // ---------------------------------------------------------------
  /// Fault-injection plan (simulated executor only; the thread-pool
  /// path takes real faults from its storage backend instead).
  FaultPlan faults;
  /// Failed task attempts are retried up to this many times before
  /// the whole run fails. 0 = fail fast (the pre-fault-tolerance
  /// behaviour).
  int max_retries = 0;
  /// Base of the exponential retry backoff: attempt k waits
  /// retry_backoff_s * 2^(k-1) before re-entering the ready queue
  /// (simulated seconds on the simulated path, wall-clock seconds on
  /// the thread pool).
  double retry_backoff_s = 0.05;

  // ---------------------------------------------------------------
  // Shared: workload partitioning hint of the high-level algos API.
  // ---------------------------------------------------------------
  /// Block dimension (square b x b blocks for matmul; b-row blocks
  /// for kmeans). 0 = pick one block per ~worker for matmul /
  /// 4 blocks per worker for kmeans.
  int64_t block_dim = 0;

  // ---------------------------------------------------------------
  // Thread-pool (real execution) path.
  // ---------------------------------------------------------------
  /// Worker threads (the "CPU cores" of the local mini-cluster).
  int num_threads = 4;
  /// When true, blocks move through storage between tasks (serialize
  /// on write, deserialize on read), exercising the data movement
  /// stages for real. When false, blocks are passed in memory and the
  /// (de)serialization stage times are zero.
  bool use_storage = true;

  // ---------------------------------------------------------------
  // Shared (storage-backed real execution): versioned block cache.
  // ---------------------------------------------------------------
  /// Cache deserialized blocks per worker (see docs/BLOCK_CACHE.md).
  /// Hot read-mostly inputs are then deserialized once per worker
  /// instead of once per read; entries are version-keyed against the
  /// data plane's own commit bookkeeping (writer ordinals on the
  /// thread pool, shm directory tags on the multi-process plane), so
  /// INOUT rewrites and crash-retry republication can never serve
  /// stale data. Cached values are bit-identical to a fresh
  /// deserialize (the wire format is lossless), so results are
  /// unchanged — the differential fuzzer holds cache-on legs
  /// bit-exact against cache-off baselines. Off by default: fault
  /// injection schedules (FaultyStorage op counts) and existing bench
  /// baselines assume the uncached storage-op sequence.
  bool block_cache = false;
  /// Per-worker cache budget in bytes. 0 = 64 MiB per worker.
  uint64_t block_cache_bytes = 0;

  // ---------------------------------------------------------------
  // Real-execution data-plane geometry. 0 = derive from the detected
  // topology (cores/domains), so bigger hosts automatically get wider
  // striping instead of the old compile-time constants.
  // ---------------------------------------------------------------
  /// Lock shards of the executor-private InMemoryStorage (storage
  /// mode). Rounded to a power of two by the store.
  int storage_shards = 0;
  /// Lock stripes of the memory-mode ShardedValueStore.
  int value_store_stripes = 0;

  // ---------------------------------------------------------------
  // Multi-process (scale-out) path — MultiProcExecutor.
  // ---------------------------------------------------------------
  /// Worker processes. Each worker is a forked single-threaded
  /// process executing tasks out of the shared-memory arena; the
  /// coordinator schedules over them with topology-aware placement
  /// (NUMA domains stand in for the paper's cluster nodes).
  int num_procs = 2;
  /// Shared-memory arena capacity in bytes. 0 = size automatically
  /// from the graph's registered block sizes (with headroom); raise
  /// explicitly when kernels emit blocks much larger than their
  /// registered nominal sizes.
  uint64_t shm_arena_bytes = 0;
  /// Pin each worker process (and, on multi-domain hosts, each
  /// thread-pool worker) to its NUMA domain's CPUs. Best effort —
  /// pinning failures degrade to unpinned workers, never fail a run.
  bool pin_workers = true;

  // ---------------------------------------------------------------
  // Simulated path.
  // ---------------------------------------------------------------
  /// Storage architecture the blocks are read from / written to.
  hw::StorageArchitecture storage = hw::StorageArchitecture::kSharedDisk;
  /// Scheduling policy the master uses.
  SchedulingPolicy policy = SchedulingPolicy::kTaskGenerationOrder;
  /// Knobs of the cost-model policy family (score weights, hedging
  /// and escalation thresholds, ablation flags). Ignored unless
  /// `policy == SchedulingPolicy::kCostModel`. Consumed by both the
  /// simulated and thread-pool paths (hedging applies to each).
  SchedulerConfig sched;
  /// Inter-node network used for remote block reads under local-disk
  /// storage (a node pulling a block that lives on another node).
  /// InfiniBand-class defaults (Minotauro); remote reads stream the
  /// disk and the network in parallel, so a fast fabric makes remote
  /// reads nearly as cheap as local ones — which is why scheduling
  /// policy barely matters on local disks (observation O5).
  double network_aggregate_bps = 40e9;
  double network_per_stream_bps = 3e9;
  double network_latency_s = 0.1e-3;
  /// When >= 0, overrides the policy's per-decision master overhead
  /// (seconds). Used by the scheduler-overhead ablation study.
  double scheduler_overhead_override_s = -1;
  /// Hybrid CPU+GPU placement: GPU-targeted tasks may run on free CPU
  /// cores when every device is busy, and fall back to CPU when their
  /// working set exceeds device memory (instead of failing with OOM).
  bool hybrid = false;
  /// Spill guard for hybrid mode: a fitting GPU task only takes a CPU
  /// core when its CPU compute time is at most this many times its
  /// GPU compute time — spilling a 20x-slower task to a core creates
  /// stragglers instead of helping. OOM tasks always spill.
  double hybrid_max_cpu_slowdown = 4.0;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_RUN_OPTIONS_H_
