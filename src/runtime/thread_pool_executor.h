#ifndef TASKBENCH_RUNTIME_THREAD_POOL_EXECUTOR_H_
#define TASKBENCH_RUNTIME_THREAD_POOL_EXECUTOR_H_

#include <memory>

#include "common/result.h"
#include "data/matrix.h"
#include "runtime/metrics.h"
#include "runtime/task_graph.h"
#include "storage/block_storage.h"

namespace taskbench::runtime {

/// Options of the real execution path.
struct ThreadPoolExecutorOptions {
  /// Worker threads (the "CPU cores" of the local mini-cluster).
  int num_threads = 4;
  /// When true, blocks move through `storage` between tasks
  /// (serialize on write, deserialize on read), exercising the data
  /// movement stages for real. When false, blocks are passed in
  /// memory and the (de)serialization stage times are zero.
  bool use_storage = true;
};

/// Executes a TaskGraph for real on host threads.
///
/// This is the genuine task-runtime path: kernels compute actual
/// matrices, dependencies are honored, and per-task stage times are
/// measured with a monotonic clock. Used by the examples and by the
/// correctness tests (distributed results must equal the dense
/// single-node computation); the simulated executor reuses the same
/// graphs to model cluster-scale behaviour.
class ThreadPoolExecutor {
 public:
  /// `storage` may be null when options.use_storage is false; a
  /// private InMemoryStorage is created otherwise.
  ThreadPoolExecutor(ThreadPoolExecutorOptions options,
                     std::shared_ptr<storage::BlockStorage> store = nullptr);

  /// Runs the graph. Initial data values are taken from the graph;
  /// results are fetched with FetchData afterwards. Fails on the
  /// first kernel error (remaining tasks are not started).
  Result<RunReport> Execute(TaskGraph& graph);

  /// Reads a datum's current value after Execute (deserializing from
  /// storage when enabled).
  Result<data::Matrix> FetchData(const TaskGraph& graph, DataId id) const;

 private:
  ThreadPoolExecutorOptions options_;
  std::shared_ptr<storage::BlockStorage> store_;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_THREAD_POOL_EXECUTOR_H_
