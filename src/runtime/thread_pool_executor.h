#ifndef TASKBENCH_RUNTIME_THREAD_POOL_EXECUTOR_H_
#define TASKBENCH_RUNTIME_THREAD_POOL_EXECUTOR_H_

#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "data/matrix.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "runtime/run_options.h"
#include "runtime/task_graph.h"
#include "storage/block_cache.h"
#include "storage/block_storage.h"

namespace taskbench::runtime {

/// Executes a TaskGraph for real on host threads.
///
/// This is the genuine task-runtime path: kernels compute actual
/// matrices, dependencies are honored, and per-task stage times are
/// measured with a monotonic clock. Used by the examples and by the
/// correctness tests (distributed results must equal the dense
/// single-node computation); the simulated executor reuses the same
/// graphs to model cluster-scale behaviour.
///
/// Fault tolerance: a failed task attempt (kernel error, storage
/// Get/Put failure — e.g. from a fault-injecting BlockStorage) is
/// retried up to `options.max_retries` times with exponential
/// wall-clock backoff before the run fails. The default budget of 0
/// preserves the historic fail-fast behaviour.
///
/// Concurrent Execute calls on one instance are safe: all run state
/// is call-local except the block store, whose keys are namespaced by
/// RunContext::scope — the property the resident WorkflowService
/// depends on to run many submissions through one executor at once.
/// Cancellation (RunContext::cancel) is polled between task claims,
/// between retry attempts and inside backoff waits; a cancelled run
/// fails with StatusCode::kCancelled without starting further tasks.
class ThreadPoolExecutor final : public Executor {
 public:
  /// `store` may be null when options.use_storage is false; a
  /// private InMemoryStorage is created otherwise.
  ThreadPoolExecutor(RunOptions options,
                     std::shared_ptr<storage::BlockStorage> store = nullptr);

  /// Runs the graph. Initial data values are taken from the graph;
  /// results are fetched with FetchData afterwards. Fails once a
  /// task's retry budget is exhausted (remaining tasks are not
  /// started).
  Result<RunReport> Execute(TaskGraph& graph, const RunContext& ctx);
  Result<RunReport> Execute(TaskGraph& graph) {
    return Execute(graph, RunContext{});
  }

  /// Reads a datum's current value after Execute (deserializing from
  /// storage when enabled). Scoped runs (RunContext::scope != 0)
  /// delete their storage keys when they finish — a resident service
  /// must not grow the store without bound — so post-run values of a
  /// scoped storage-mode run are read from the graph entries
  /// (memory mode writes them back) rather than fetched here.
  Result<data::Matrix> FetchData(const TaskGraph& graph, DataId id) const;

  // Executor interface.
  using Executor::Run;
  std::string name() const override { return "thread-pool"; }
  const RunOptions& options() const override { return options_; }
  Result<RunReport> Run(TaskGraph& graph, const RunContext& ctx) override {
    return Execute(graph, ctx);
  }
  bool materializes() const override { return true; }
  Result<data::Matrix> Fetch(const TaskGraph& graph,
                             DataId id) const override {
    return FetchData(graph, id);
  }

 private:
  RunOptions options_;
  std::shared_ptr<storage::BlockStorage> store_;
  /// Whether store_ is executor-private (constructed by us). The
  /// FetchData read cache below is only safe then: an externally
  /// shared store can be rewritten by another executor behind our
  /// back, and Fetch has no version source to detect it.
  bool private_store_ = false;
  /// Post-run Fetch cache (block_cache mode, storage only): repeated
  /// FetchData calls on the same result blocks — the bench baseline
  /// comparison pattern — deserialize once instead of per call.
  /// Cleared at the start of every Execute; guarded by fetch_mu_
  /// because Fetch is const and may race a concurrent Execute.
  mutable std::mutex fetch_mu_;
  mutable std::unique_ptr<storage::BlockCache> fetch_cache_;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_THREAD_POOL_EXECUTOR_H_
