#ifndef TASKBENCH_RUNTIME_EXECUTOR_H_
#define TASKBENCH_RUNTIME_EXECUTOR_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/result.h"
#include "data/matrix.h"
#include "runtime/cancellation.h"
#include "runtime/metrics.h"
#include "runtime/run_options.h"
#include "runtime/task_graph.h"

namespace taskbench::obs {
class MetricsRegistry;
}

namespace taskbench::runtime {

/// Per-run execution context — the knobs that vary per *submission*
/// where RunOptions vary per *executor*. A resident service runs many
/// graphs through one executor concurrently; each run carries its own
/// cancellation token, its own metrics sink, and a scope id that
/// namespaces storage keys so concurrent graphs never collide.
///
/// The default-constructed context is the exact legacy behaviour:
/// no cancellation, metrics from RunOptions::metrics, scope 0 (the
/// unprefixed storage keys) — so the single-graph batch path stays
/// bit-identical.
struct RunContext {
  /// Cooperative cancellation flag; null = not cancellable.
  const CancellationToken* cancel = nullptr;
  /// Per-run telemetry sink. Null = use options().metrics. Lets a
  /// multi-tenant service scope counters/histograms to one submission
  /// instead of mixing every tenant into the executor-wide registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Storage-key namespace. 0 = the legacy unprefixed keys; a service
  /// assigns each submission a unique nonzero scope so concurrent
  /// runs through one executor keep disjoint keys in the shared
  /// block store.
  uint64_t scope = 0;
  /// Per-submission scheduling-policy override. Unset = use
  /// RunOptions::policy. Lets a multi-tenant service give each tenant
  /// its own policy (TenantConfig::policy) over one shared executor.
  std::optional<SchedulingPolicy> policy;
};

/// The common executor interface: run a TaskGraph, get a RunReport.
///
/// Both execution paths implement it — `ThreadPoolExecutor` computes
/// real matrices on host threads, `SimulatedExecutor` replays the
/// graph on a modeled CPU-GPU cluster — so workload entry points
/// (`algos::RunDistributedMatmul`, `analysis::RunExperiment`, the
/// CLI) are written once against `Executor&` and work on either.
/// Cross-cutting execution policy (retry budgets, fault plans) lives
/// in the shared `RunOptions` and therefore plugs in exactly once;
/// per-submission policy (cancellation, metrics scoping) rides in the
/// RunContext.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Short human-readable identifier ("thread-pool", "simulated").
  virtual std::string name() const = 0;

  /// The options this executor was constructed with.
  virtual const RunOptions& options() const = 0;

  /// Runs `graph` to completion under `ctx` and returns the report.
  /// Implementations must either finish or fail with a Status — never
  /// hang — including under injected faults with retries exhausted.
  /// A cancelled context fails with StatusCode::kCancelled at the
  /// next scheduling point.
  virtual Result<RunReport> Run(TaskGraph& graph, const RunContext& ctx) = 0;

  /// Single-graph convenience: Run with the default context. This is
  /// the legacy batch entry point; its reports are bit-identical to
  /// the pre-RunContext executor.
  Result<RunReport> Run(TaskGraph& graph) { return Run(graph, RunContext{}); }

  /// True when Run computes real data (Fetch returns values).
  /// Simulation-only executors return false; callers that need the
  /// numeric result must check before fetching.
  virtual bool materializes() const { return false; }

  /// Reads a datum's current value after Run. Default: Unimplemented
  /// (simulation-only executors model timing, not values).
  virtual Result<data::Matrix> Fetch(const TaskGraph& graph,
                                     DataId id) const;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_EXECUTOR_H_
