#ifndef TASKBENCH_RUNTIME_EXECUTOR_H_
#define TASKBENCH_RUNTIME_EXECUTOR_H_

#include <string>

#include "common/result.h"
#include "data/matrix.h"
#include "runtime/metrics.h"
#include "runtime/run_options.h"
#include "runtime/task_graph.h"

namespace taskbench::runtime {

/// The common executor interface: run a TaskGraph, get a RunReport.
///
/// Both execution paths implement it — `ThreadPoolExecutor` computes
/// real matrices on host threads, `SimulatedExecutor` replays the
/// graph on a modeled CPU-GPU cluster — so workload entry points
/// (`algos::RunDistributedMatmul`, `analysis::RunExperiment`, the
/// CLI) are written once against `Executor&` and work on either.
/// Cross-cutting execution policy (retry budgets, fault plans) lives
/// in the shared `RunOptions` and therefore plugs in exactly once.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Short human-readable identifier ("thread-pool", "simulated").
  virtual std::string name() const = 0;

  /// The options this executor was constructed with.
  virtual const RunOptions& options() const = 0;

  /// Runs `graph` to completion and returns the report. Implementations
  /// must either finish or fail with a Status — never hang — including
  /// under injected faults with retries exhausted.
  virtual Result<RunReport> Run(TaskGraph& graph) = 0;

  /// True when Run computes real data (Fetch returns values).
  /// Simulation-only executors return false; callers that need the
  /// numeric result must check before fetching.
  virtual bool materializes() const { return false; }

  /// Reads a datum's current value after Run. Default: Unimplemented
  /// (simulation-only executors model timing, not values).
  virtual Result<data::Matrix> Fetch(const TaskGraph& graph,
                                     DataId id) const;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_EXECUTOR_H_
