#ifndef TASKBENCH_RUNTIME_FAULT_H_
#define TASKBENCH_RUNTIME_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace taskbench::runtime {

/// Kinds of perturbation the simulated cluster can suffer. These are
/// the failure modes a PyCOMPSs-class runtime survives on a real
/// cluster (task resubmission on worker loss) and the reason the
/// paper's measurements exist at all — a run that dies with the first
/// worker never produces a trace.
enum class FaultKind {
  /// The node leaves the cluster at `time`: its running tasks die,
  /// its slots are drained, and — under local-disk storage — every
  /// block homed on it is lost (triggering lineage recovery).
  kNodeCrash,
  /// One GPU device on `node` disappears at `time`. A busy device
  /// takes its task down with it; the task is retried elsewhere.
  kGpuLoss,
  /// From `time` on, compute on `node` runs `factor` times slower
  /// (thermal throttling / noisy-neighbour degradation).
  kSlowNode,
};

std::string ToString(FaultKind kind);

/// One scheduled perturbation.
struct FaultEvent {
  FaultKind kind = FaultKind::kNodeCrash;
  /// Simulated time (seconds) the fault fires.
  double time = 0;
  /// Target node.
  int node = -1;
  /// kSlowNode only: compute-time multiplier (> 1 slows down).
  double factor = 1.0;
};

/// A deterministic, seeded fault-injection plan. The plan is part of
/// `RunOptions`; an empty plan (no events, zero storage fault rate)
/// leaves the executor's behaviour — and its RunReport — bit-for-bit
/// identical to a build without the fault subsystem.
///
/// Determinism argument: scheduled events enter the simulator's
/// (time, insertion-sequence) queue like any other discrete event, and
/// transient storage faults are drawn from a private xoshiro stream
/// seeded with `seed`, consumed in event-execution order — which the
/// simulator already keeps deterministic. Same plan, same graph, same
/// cluster ⇒ same report, attempt-for-attempt.
struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Probability that one simulated disk read/write leg fails
  /// (transient storage fault; the op consumes its full duration
  /// before the failure is noticed, as a timed-out read would).
  double storage_fault_rate = 0;

  /// Seed of the storage-fault stream.
  uint64_t seed = 42;

  bool empty() const { return events.empty() && storage_fault_rate <= 0; }

  /// Structural validation against a cluster of `num_nodes` nodes.
  Status Validate(int num_nodes) const;

  /// Parses the CLI grammar — comma-separated entries:
  ///   crash@T:nN        node N crashes at simulated time T
  ///   gpuloss@T:nN      node N loses one GPU device at time T
  ///   slow@T:nN:xF      node N computes F times slower from time T
  ///   storage:pP[:sS]   disk ops fail with probability P (seed S)
  /// e.g. "crash@2.5:n1,slow@0:n0:x2,storage:p0.001:s7".
  static Result<FaultPlan> Parse(const std::string& spec);

  /// Round-trips back to the Parse grammar (diagnostics, labels).
  std::string ToString() const;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_FAULT_H_
