#include "runtime/executor.h"

#include "common/strings.h"

namespace taskbench::runtime {

Result<data::Matrix> Executor::Fetch(const TaskGraph& graph,
                                     DataId id) const {
  (void)graph;
  return Status::Unimplemented(StrFormat(
      "executor '%s' does not materialize data (datum %lld)",
      name().c_str(), static_cast<long long>(id)));
}

}  // namespace taskbench::runtime
